//! # meta-chaos-repro
//!
//! Umbrella crate for the Meta-Chaos reproduction workspace: it hosts the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`), and re-exports the member crates for convenience.
//!
//! See the workspace `README.md` for the project overview, `DESIGN.md` for
//! the system inventory and `EXPERIMENTS.md` for paper-vs-measured results.

pub use chaos;
pub use hpf;
pub use mcsim;
pub use meta_chaos;
pub use multiblock;
pub use tulip;

/// Shorthand used by examples and tests: a world over `p` ranks with the
/// zero-cost model (pure correctness, no timing).
pub fn test_world(p: usize) -> mcsim::World {
    mcsim::World::with_model(p, mcsim::MachineModel::zero())
}

/// Split a `p`-rank world into the canonical two coupled programs
/// (`p/2` and `p - p/2` ranks) plus their union, on the tests' base
/// context.  Parameterized over `p` so harnesses scale past the
/// historical hard-coded `split_two(2, 2, 32)`.
pub fn coupled_groups(p: usize) -> (mcsim::Group, mcsim::Group, mcsim::Group) {
    assert!(p >= 2, "need at least one rank per program");
    mcsim::Group::split_two(p / 2, p - p / 2, 32)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_world_builds() {
        let w = super::test_world(3);
        assert_eq!(w.size(), 3);
    }
}
