//! Peer-to-peer coupling of two separately written data-parallel programs
//! (paper §5.2 and the shipboard-fire scenario of the introduction).
//!
//! Program A owns a block-distributed "temperature" field (Multiblock
//! Parti); program B owns the same field irregularly distributed (Chaos)
//! and applies a relaxation to it.  Meta-Chaos couples them through a
//! named port: every step the field flows A→B, B updates it, and it flows
//! back B→A over the same (reversed) schedule.
//!
//! Run with `cargo run --example two_programs`.

use mcsim::group::{Comm, Group};
use mcsim::{MachineModel, World};
use meta_chaos::build::{compute_schedule, BuildMethod};
use meta_chaos::coupling::Coupler;
use meta_chaos::region::{IndexSet, RegularSection};
use meta_chaos::setof::SetOfRegions;
use meta_chaos::Side;

use chaos::{IrregArray, Partition};
use multiblock::MultiblockArray;

const N: usize = 1024;
const STEPS: usize = 6;

fn main() {
    let (pa_size, pb_size) = (2usize, 3usize);
    println!(
        "two coupled programs: A = {pa_size} procs (Multiblock Parti), \
         B = {pb_size} procs (Chaos), field of {N} points, {STEPS} steps\n"
    );

    let world = World::with_model(pa_size + pb_size, MachineModel::sp2());
    let out = world.run(move |ep| {
        let (pa, pb, un) = Group::split_two(pa_size, pb_size, 32);
        let reg_set = SetOfRegions::single(RegularSection::whole(&[N]));
        let irr_set = SetOfRegions::single(IndexSet::new((0..N).collect()));

        if pa.contains(ep.rank()) {
            // ---------------- program A ----------------
            let mut field = MultiblockArray::<f64>::new(&pa, ep.rank(), &[N]);
            field.fill_with(|c| 100.0 * (1.0 + (c[0] as f64 / N as f64).sin()));
            let sched = compute_schedule::<f64, MultiblockArray<f64>, IrregArray<f64>>(
                ep,
                &un,
                &pa,
                Some(Side::new(&field, &reg_set)),
                &pb,
                None,
                BuildMethod::Cooperation,
            )
            .expect("coupling schedule");
            let mut ports = Coupler::new();
            ports.bind("temperature", sched);

            let mut maxima = Vec::new();
            for _ in 0..STEPS {
                ports.put(ep, "temperature", &field).unwrap();
                ports.get_reverse(ep, "temperature", &mut field).unwrap();
                let local_max = field
                    .local()
                    .iter()
                    .copied()
                    .fold(f64::NEG_INFINITY, f64::max);
                let mut comm = Comm::new(ep, pa.clone());
                maxima.push(comm.allreduce_max_f64(local_max));
            }
            maxima
        } else {
            // ---------------- program B ----------------
            let mut mirror = {
                let mut comm = Comm::new(ep, pb.clone());
                IrregArray::create(&mut comm, N, Partition::Random(99), |_| 0.0)
            };
            let sched = compute_schedule::<f64, MultiblockArray<f64>, IrregArray<f64>>(
                ep,
                &un,
                &pa,
                None,
                &pb,
                Some(Side::new(&mirror, &irr_set)),
                BuildMethod::Cooperation,
            )
            .expect("coupling schedule");
            let mut ports = Coupler::new();
            ports.bind("temperature", sched);

            for _ in 0..STEPS {
                ports.get(ep, "temperature", &mut mirror).unwrap();
                // B's physics: relax toward the mean.
                let mean = {
                    let local: f64 = mirror.local().iter().sum();
                    let mut comm = Comm::new(ep, pb.clone());
                    comm.allreduce_sum(local) / N as f64
                };
                for v in mirror.local_mut() {
                    *v += 0.25 * (mean - *v);
                }
                ports.put_reverse(ep, "temperature", &mirror).unwrap();
            }
            Vec::new()
        }
    });

    println!("field maximum after each coupled step (relaxing toward the mean):");
    for (s, m) in out.results[0].iter().enumerate() {
        println!("  step {:2}: max = {m:10.4}", s + 1);
    }
    println!(
        "\nschedule built once, reused {}x in both directions; \
         simulated elapsed {:.2} ms",
        2 * STEPS,
        out.elapsed * 1e3
    );
}
