//! Client/server program interaction (paper §5.4): a sequential client
//! uses a parallel HPF program as a matrix–vector computation server,
//! with Meta-Chaos as the "Unix pipe" carrying the matrix once and then
//! one operand/result vector pair per multiply — the result returning
//! over the *same* schedule, reversed.
//!
//! Run with `cargo run --example client_server`.

use bench::clientserver::{client_local_matvec_ms, client_server, reference_checksum};

fn main() {
    let n = 256;
    let nvec = 8;
    println!(
        "matrix-vector service: {n}x{n} matrix, {nvec} vectors, \
         sequential client (simulated Alpha farm / ATM)\n"
    );

    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>14} {:>10}",
        "servers", "sched ms", "matrix ms", "server ms", "vectors ms", "total ms"
    );
    let mut best = (0usize, f64::INFINITY);
    for servers in [1, 2, 4, 8] {
        let r = client_server(1, servers, n, nvec);
        let want = reference_checksum(n, nvec);
        assert!(
            (r.checksum - want).abs() < 1e-6,
            "server result must match the sequential reference"
        );
        if r.total_ms() < best.1 {
            best = (servers, r.total_ms());
        }
        println!(
            "{:>8} {:>10.1} {:>12.1} {:>12.1} {:>14.1} {:>10.1}",
            servers,
            r.sched_ms,
            r.matrix_ms,
            r.server_ms,
            r.vector_ms,
            r.total_ms()
        );
    }
    let local = nvec as f64 * client_local_matvec_ms(1, n);
    println!("\ncomputing the {nvec} multiplies in the client instead: {local:.1} ms");
    println!(
        "best server configuration: {} processes ({:.1} ms, {:.1}x faster than local)",
        best.0,
        best.1,
        local / best.1
    );
    println!("\nresults verified against the sequential reference on every run.");
}
