//! Adding a brand-new data-parallel library to the framework — the
//! paper's extensibility claim ("all that is required is to provide the
//! interface functions for the new library"; the pC++ group did it in a
//! few days).
//!
//! This example defines `StripedVector`, a toy library whose elements are
//! striped backwards across the processors, implements the Meta-Chaos
//! interface for it in ~80 lines, and immediately exchanges data with
//! Multiblock Parti — no changes to any other crate.
//!
//! Run with `cargo run --example custom_library`.

use mcsim::error::SimError;
use mcsim::group::{Comm, Group};
use mcsim::prelude::Endpoint;
use mcsim::wire::{Wire, WireReader};
use mcsim::{MachineModel, World};

use meta_chaos::adapter::{Location, McDescriptor, McObject};
use meta_chaos::build::{compute_schedule, BuildMethod};
use meta_chaos::datamove::data_move;
use meta_chaos::region::{IndexSet, RegularSection};
use meta_chaos::setof::SetOfRegions;
use meta_chaos::{LocalAddr, Side};

use multiblock::MultiblockArray;

// ---------------------------------------------------------------- //
// The new library: a vector striped *backwards* over the program.  //
// Element g lives on rank (P-1) - (g % P), at local index g / P.   //
// ---------------------------------------------------------------- //

struct StripedVector {
    n: usize,
    members: Vec<usize>,
    my_local: usize,
    data: Vec<f64>,
}

impl StripedVector {
    fn new(prog: &Group, me: usize, n: usize) -> Self {
        let p = prog.size();
        let my_local = prog.local_of(me).expect("member");
        let stripe = (p - 1) - my_local;
        let count = n / p + usize::from(stripe < n % p);
        StripedVector {
            n,
            members: prog.members().to_vec(),
            my_local,
            data: vec![0.0; count],
        }
    }
    fn owner_local(&self, g: usize) -> usize {
        (self.members.len() - 1) - (g % self.members.len())
    }
}

// Step 1: a shippable descriptor with per-position lookup.
#[derive(Clone)]
struct StripedDesc {
    n: usize,
    members: Vec<usize>,
}

impl Wire for StripedDesc {
    fn write(&self, out: &mut Vec<u8>) {
        self.n.write(out);
        self.members.write(out);
    }
    fn read(r: &mut WireReader<'_>) -> Result<Self, SimError> {
        Ok(StripedDesc {
            n: usize::read(r)?,
            members: Vec::<usize>::read(r)?,
        })
    }
}

impl McDescriptor for StripedDesc {
    type Region = IndexSet;
    fn locate(&self, set: &SetOfRegions<IndexSet>, pos: usize) -> Location {
        let (ri, off) = set.locate_position(pos);
        let g = set.regions()[ri].index(off);
        let p = self.members.len();
        Location {
            rank: self.members[(p - 1) - (g % p)],
            addr: g / p,
        }
    }
}

// Step 2: the interface functions (this is the *entire* integration).
impl McObject<f64> for StripedVector {
    type Region = IndexSet;
    type Descriptor = StripedDesc;

    fn deref_owned(
        &self,
        comm: &mut Comm<'_>,
        set: &SetOfRegions<IndexSet>,
    ) -> Vec<(usize, LocalAddr)> {
        let mut out = Vec::new();
        let mut pos = 0;
        for r in set.regions() {
            for &g in r.indices() {
                if self.owner_local(g) == self.my_local {
                    out.push((pos, g / self.members.len()));
                }
                pos += 1;
            }
        }
        comm.ep().charge_owner_calc(pos);
        out
    }

    fn locate_positions(
        &self,
        comm: &mut Comm<'_>,
        set: &SetOfRegions<IndexSet>,
        positions: &[usize],
    ) -> Vec<Location> {
        let d = StripedDesc {
            n: self.n,
            members: self.members.clone(),
        };
        comm.ep().charge_owner_calc(positions.len());
        positions.iter().map(|&p| d.locate(set, p)).collect()
    }

    fn descriptor(&self, _comm: &mut Comm<'_>) -> StripedDesc {
        StripedDesc {
            n: self.n,
            members: self.members.clone(),
        }
    }

    fn pack(&self, ep: &mut Endpoint, addrs: &[LocalAddr], out: &mut Vec<f64>) {
        out.extend(addrs.iter().map(|&a| self.data[a]));
        ep.charge_copy_bytes(8 * addrs.len());
    }

    fn unpack(&mut self, ep: &mut Endpoint, addrs: &[LocalAddr], vals: &[f64]) {
        for (&a, &v) in addrs.iter().zip(vals) {
            self.data[a] = v;
        }
        ep.charge_copy_bytes(8 * addrs.len());
    }
}

// ---------------------------------------------------------------- //
// Use it immediately against an existing library.                  //
// ---------------------------------------------------------------- //

fn main() {
    let n = 24usize;
    println!("integrating a new library (StripedVector) with Meta-Chaos\n");

    let world = World::with_model(3, MachineModel::sp2());
    let out = world.run(move |ep| {
        let g = Group::world(ep.world_size());
        let mut mb = MultiblockArray::<f64>::new(&g, ep.rank(), &[n]);
        mb.fill_with(|c| (c[0] * c[0]) as f64);

        let mut sv = StripedVector::new(&g, ep.rank(), n);
        let sset = SetOfRegions::single(RegularSection::whole(&[n]));
        let dset = SetOfRegions::single(IndexSet::new((0..n).collect()));

        // Both build strategies work out of the box.
        for method in [BuildMethod::Cooperation, BuildMethod::Duplication] {
            let sched = compute_schedule(
                ep,
                &g,
                &g,
                Some(Side::new(&mb, &sset)),
                &g,
                Some(Side::new(&sv, &dset)),
                method,
            )
            .expect("schedule");
            data_move(ep, &sched, &mb, &mut sv);
        }
        // Report (global index, value) pairs.
        let p = g.size();
        let stripe = (p - 1) - g.local_of(ep.rank()).expect("member");
        sv.data
            .iter()
            .enumerate()
            .map(|(l, &v)| (l * p + stripe, v))
            .collect::<Vec<_>>()
    });

    let mut all: Vec<(usize, f64)> = out.results.into_iter().flatten().collect();
    all.sort_unstable_by_key(|&(g, _)| g);
    println!("striped vector contents after the copy (g, value = g^2):");
    for chunk in all.chunks(6) {
        let line: Vec<String> = chunk
            .iter()
            .map(|(g, v)| format!("({g:2},{v:4.0})"))
            .collect();
        println!("  {}", line.join("  "));
    }
    let ok = all.iter().all(|&(g, v)| v == (g * g) as f64);
    println!(
        "\nverification: {}",
        if ok {
            "every element correct"
        } else {
            "MISMATCH"
        }
    );
    assert!(ok);
    println!(
        "the whole integration is the ~100 lines of McObject/McDescriptor\n\
         impls above — no changes to Meta-Chaos or any other library."
    );
}
