//! The paper's motivating application (Figure 1): a structured mesh
//! (Multiblock Parti) and an unstructured mesh (Chaos) advanced together
//! in a time-step loop, with Meta-Chaos copying boundary data between
//! them every step.
//!
//! All four loops of the figure appear below: the structured sweep
//! (Loop 1), the regular→irregular exchange (Loop 2), the unstructured
//! edge sweep (Loop 3), and the irregular→regular exchange (Loop 4).
//! Schedules are built once (inspector) and reused every step (executor).
//!
//! Run with `cargo run --example cfd_coupling`.

use mcsim::group::{Comm, Group};
use mcsim::{MachineModel, World};
use meta_chaos::build::{compute_schedule, BuildMethod};
use meta_chaos::datamove::data_move;
use meta_chaos::region::{IndexSet, RegularSection};
use meta_chaos::setof::SetOfRegions;
use meta_chaos::Side;

use chaos::{IrregArray, IrregularSweep, Partition};
use multiblock::sweep::RegularSweep;
use multiblock::MultiblockArray;

const SIDE: usize = 64;
const NODES: usize = SIDE * SIDE;
const STEPS: usize = 5;

fn main() {
    let procs = 4;
    println!(
        "Coupled structured/unstructured simulation: {SIDE}x{SIDE} mesh, \
         {NODES} nodes, {} edges, {STEPS} steps, {procs} processors\n",
        2 * NODES
    );

    let world = World::with_model(procs, MachineModel::sp2());
    let out = world.run(move |ep| {
        let g = Group::world(ep.world_size());

        // The structured mesh, with a halo for the 5-point stencil.
        let mut a = MultiblockArray::<f64>::with_halo(&g, ep.rank(), &[SIDE, SIDE], 1);
        a.fill_with(|c| ((c[0] * 7 + c[1] * 3) % 11) as f64);

        // The unstructured mesh: node arrays x (values) and y (fluxes)
        // sharing one irregular distribution, plus a random edge list.
        let (x, mut y) = {
            let mut comm = Comm::new(ep, g.clone());
            let x = IrregArray::create(&mut comm, NODES, Partition::Random(11), |_| 0.0);
            let y = IrregArray::over_table(x.table().clone(), x.my_globals().to_vec(), |_| 0.0);
            (x, y)
        };
        let mut x = x;
        let edges: Vec<(usize, usize)> = (0..2 * NODES)
            .map(|e| ((e * 13 + 5) % NODES, (e * 31 + 7) % NODES))
            .collect();
        let me = g.local_of(ep.rank()).expect("member");
        let chunk = edges.len().div_ceil(g.size());
        let (lo, hi) = (
            (me * chunk).min(edges.len()),
            ((me + 1) * chunk).min(edges.len()),
        );

        // ---- inspectors: built once, reused every step ----
        let t0 = Comm::new(ep, g.clone()).sync_clocks();
        let reg_sweep = RegularSweep::new(ep, &a);
        let irr_sweep = {
            let mut comm = Comm::new(ep, g.clone());
            IrregularSweep::new(&mut comm, x.table(), &edges[lo..hi])
        };
        // The Reg2Irreg boundary mapping: mesh point k <-> node perm(k).
        let perm: Vec<usize> = (0..NODES).map(|k| (k * 29 + 3) % NODES).collect();
        let remap = compute_schedule(
            ep,
            &g,
            &g,
            Some(Side::new(
                &a,
                &SetOfRegions::single(RegularSection::whole(&[SIDE, SIDE])),
            )),
            &g,
            Some(Side::new(&x, &SetOfRegions::single(IndexSet::new(perm)))),
            BuildMethod::Cooperation,
        )
        .expect("remap schedule");
        let t1 = Comm::new(ep, g.clone()).sync_clocks();

        // ---- executor: the Figure 1 time-step loop ----
        let mut norms = Vec::new();
        for _ in 0..STEPS {
            reg_sweep.step(ep, &mut a); // Loop 1
            data_move(ep, &remap, &a, &mut x); // Loop 2
            {
                let mut comm = Comm::new(ep, g.clone());
                irr_sweep.step(&mut comm, &x, &mut y); // Loop 3
            }
            data_move(ep, &remap.reversed(), &y, &mut a); // Loop 4

            // Per-step diagnostic: global mesh sum.
            let local = a.local_sum();
            let mut comm = Comm::new(ep, g.clone());
            norms.push(comm.allreduce_sum(local));
        }
        let t2 = Comm::new(ep, g.clone()).sync_clocks();
        (norms, t1 - t0, (t2 - t1) / STEPS as f64)
    });

    let (norms, inspector, per_step) = &out.results[0];
    for (s, n) in norms.iter().enumerate() {
        println!("step {:2}: global mesh sum = {n:14.4}", s + 1);
    }
    println!(
        "\ninspector (schedules, built once): {:8.2} ms simulated",
        inspector * 1e3
    );
    println!(
        "executor  (per time step):         {:8.2} ms simulated",
        per_step * 1e3
    );
    println!("total messages during the run: {}", out.stats.total_msgs());
}
