//! Adaptive irregular computation: repartition and remap at runtime.
//!
//! Chaos's home turf (and the paper's motivation for point-wise
//! distributions) is *adaptive* irregular codes: after the mesh adapts,
//! the partitioner runs again and every array is **remapped** onto the new
//! distribution.  This example walks the full cycle:
//!
//! 1. partition mesh points geometrically with RCB,
//! 2. build the inspector (gather/scatter schedule) and sweep,
//! 3. "adapt": refine activity in one corner of the domain,
//! 4. repartition with RCB on the new activity weights, remap the arrays,
//!    rebuild the inspector, and keep sweeping — data intact.
//!
//! Run with `cargo run --example adaptive_irregular`.

use mcsim::group::{Comm, Group};
use mcsim::{MachineModel, World};

use chaos::partition::rcb_indices_of;
use chaos::{remap, IrregArray, IrregularSweep};

const SIDE: usize = 48;
const NODES: usize = SIDE * SIDE;

fn coords() -> Vec<(f64, f64)> {
    (0..NODES)
        .map(|k| ((k / SIDE) as f64, (k % SIDE) as f64))
        .collect()
}

/// Geometric edges concentrated by `focus`: 0 = uniform, 1 = bottom-left.
fn edges(focus: bool, m: usize) -> Vec<(usize, usize)> {
    let pick = |e: usize| -> (usize, usize) {
        let (i, j) = if focus {
            ((e * 13 + 5) % (SIDE / 2), (e * 31 + 7) % (SIDE / 2))
        } else {
            ((e * 13 + 5) % SIDE, (e * 31 + 7) % SIDE)
        };
        let ni = (i + 1).min(SIDE - 1);
        let nj = (j + 2).min(SIDE - 1);
        (i * SIDE + j, ni * SIDE + nj)
    };
    (0..m).map(pick).collect()
}

fn main() {
    let procs = 4;
    println!("adaptive irregular mesh: {NODES} points on {procs} processors\n");

    let world = World::with_model(procs, MachineModel::sp2());
    let out = world.run(move |ep| {
        let g = Group::world(procs);
        let me = g.local_of(ep.rank()).expect("member");

        // Phase 1: uniform activity, RCB partition on coordinates.
        let part1 = rcb_indices_of(&coords(), procs, me);
        let (mut x, mut y) = {
            let mut comm = Comm::new(ep, g.clone());
            let x = {
                let t =
                    std::sync::Arc::new(chaos::TranslationTable::build(&mut comm, NODES, &part1));
                IrregArray::over_table(t, part1.clone(), |gi| (gi % 10) as f64)
            };
            let y = IrregArray::over_table(x.table().clone(), x.my_globals().to_vec(), |_| 0.0);
            (x, y)
        };
        let e1 = edges(false, 2 * NODES);
        let my_e1: Vec<(usize, usize)> = {
            let mine: std::collections::HashSet<usize> = part1.iter().copied().collect();
            e1.into_iter().filter(|&(u, _)| mine.contains(&u)).collect()
        };
        let sweep1 = {
            let mut comm = Comm::new(ep, g.clone());
            IrregularSweep::new(&mut comm, x.table(), &my_e1)
        };
        let t0 = Comm::new(ep, g.clone()).sync_clocks();
        for _ in 0..3 {
            let mut comm = Comm::new(ep, g.clone());
            sweep1.step(&mut comm, &x, &mut y);
        }
        let t1 = Comm::new(ep, g.clone()).sync_clocks();

        // Phase 2: activity concentrates; repartition by weighted
        // coordinates (duplicate the hot corner's points in the RCB input
        // by weighting — here simply partition the hot subdomain's
        // points evenly by feeding RCB only their coordinates scaled up).
        let e2 = edges(true, 2 * NODES);
        let mut weighted = coords();
        for (u, v) in &e2 {
            // Pull the partitioner's attention to active points by
            // perturbing them toward their edge partners (a crude but
            // deterministic activity weighting).
            let (ui, uj) = (weighted[*u].0, weighted[*u].1);
            let (vi, vj) = (weighted[*v].0, weighted[*v].1);
            weighted[*u] = (ui * 0.999 + vi * 0.001, uj * 0.999 + vj * 0.001);
        }
        let part2 = rcb_indices_of(&weighted, procs, me);

        // Remap both arrays onto the new partition — values preserved.
        let (x2, mut y2) = {
            let mut comm = Comm::new(ep, g.clone());
            let x2 = remap(&mut comm, &x, part2.clone());
            let y2 = remap(&mut comm, &y, part2.clone());
            (x2, y2)
        };
        x = x2;
        let my_e2: Vec<(usize, usize)> = {
            let mine: std::collections::HashSet<usize> = part2.iter().copied().collect();
            e2.into_iter().filter(|&(u, _)| mine.contains(&u)).collect()
        };
        let sweep2 = {
            let mut comm = Comm::new(ep, g.clone());
            IrregularSweep::new(&mut comm, x.table(), &my_e2)
        };
        let t2 = Comm::new(ep, g.clone()).sync_clocks();
        for _ in 0..3 {
            let mut comm = Comm::new(ep, g.clone());
            sweep2.step(&mut comm, &x, &mut y2);
        }
        let t3 = Comm::new(ep, g.clone()).sync_clocks();

        let checksum = {
            let local: f64 = y2.local().iter().sum();
            let mut comm = Comm::new(ep, g.clone());
            comm.allreduce_sum(local)
        };
        (
            sweep1.num_ghosts(),
            sweep2.num_ghosts(),
            (t1 - t0) / 3.0,
            (t3 - t2) / 3.0,
            checksum,
        )
    });

    let ghosts1: usize = out.results.iter().map(|r| r.0).sum();
    let ghosts2: usize = out.results.iter().map(|r| r.1).sum();
    let (_, _, step1, step2, checksum) = out.results[0];
    println!(
        "phase 1 (uniform activity):   {ghosts1:5} ghosts, {:.2} ms/step",
        step1 * 1e3
    );
    println!(
        "phase 2 (after remap):        {ghosts2:5} ghosts, {:.2} ms/step",
        step2 * 1e3
    );
    println!("\nflux checksum after both phases: {checksum:.3}");
    println!(
        "the remap migrated every array element to its new owner (verified\n\
         by the chaos::remap test suite); schedules were rebuilt once and\n\
         reused for all subsequent steps."
    );
}
