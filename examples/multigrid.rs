//! Geometric multigrid on block-distributed grids — the multigrid /
//! multiblock application domain the paper's introduction names (P++,
//! GMD, LPARX, Multiblock Parti all serve it).
//!
//! Solves `-Δu = 2π² sin(πx) sin(πy)` on the unit square with a V-cycle
//! whose inter-grid transfers are strided regular-section schedules built
//! once and reused every cycle.
//!
//! Run with `cargo run --example multigrid`.

use mcsim::group::{Comm, Group};
use mcsim::{MachineModel, World};
use multiblock::Multigrid;

fn main() {
    let procs = 4;
    let n = 65; // finest grid: 65x65, levels 65 -> 33 -> 17 -> 9
    println!("multigrid Poisson solve: {n}x{n} finest grid, 4 levels, {procs} processors\n");

    let world = World::with_model(procs, MachineModel::sp2());
    let out = world.run(move |ep| {
        let g = Group::world(procs);
        let t0 = Comm::new(ep, g.clone()).sync_clocks();
        let mut mg = Multigrid::new(ep, &g, n, 4, 2, 2);
        let t1 = Comm::new(ep, g.clone()).sync_clocks();

        let pi = std::f64::consts::PI;
        mg.set_rhs(move |x, y| 2.0 * pi * pi * (pi * x).sin() * (pi * y).sin());

        let mut residuals = Vec::new();
        for _ in 0..8 {
            residuals.push(mg.v_cycle(ep, &g));
        }
        let t2 = Comm::new(ep, g.clone()).sync_clocks();

        // Error against the analytic solution sin(πx) sin(πy).
        let h = 1.0 / (n - 1) as f64;
        let mut worst = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                if mg.owns(&[i, j]) {
                    let want = (pi * i as f64 * h).sin() * (pi * j as f64 * h).sin();
                    worst = worst.max((mg.solution_at(&[i, j]) - want).abs());
                }
            }
        }
        let max_err = {
            let mut comm = Comm::new(ep, g.clone());
            comm.allreduce_max_f64(worst)
        };
        (residuals, max_err, t1 - t0, (t2 - t1) / 8.0)
    });

    let (residuals, max_err, setup, per_cycle) = &out.results[0];
    println!("residual 2-norm per V-cycle:");
    for (c, r) in residuals.iter().enumerate() {
        println!("  cycle {:2}: {r:12.3e}", c + 1);
    }
    let rate =
        (residuals[residuals.len() - 1] / residuals[0]).powf(1.0 / (residuals.len() - 1) as f64);
    println!("\nconvergence factor per cycle: {rate:.3}");
    println!(
        "max error vs analytic solution: {max_err:.2e} (O(h²) = {:.2e})",
        {
            let h = 1.0 / (n - 1) as f64;
            h * h
        }
    );
    println!(
        "\nsetup (grids + transfer schedules): {:7.2} ms simulated",
        setup * 1e3
    );
    println!(
        "one V-cycle:                        {:7.2} ms simulated",
        per_cycle * 1e3
    );
}
