//! Quickstart: the paper's Figure 9 scenario in miniature.
//!
//! Two HPF-style distributed arrays with *different* distributions
//! exchange an array section through Meta-Chaos:
//!
//! ```text
//! A[0:4, 1:7) = B[5:9, 5:11)
//! ```
//!
//! Run with `cargo run --example quickstart`.

use mcsim::group::Group;
use mcsim::{MachineModel, World};
use meta_chaos::build::{compute_schedule, BuildMethod};
use meta_chaos::datamove::data_move;
use meta_chaos::region::RegularSection;
use meta_chaos::setof::SetOfRegions;
use meta_chaos::Side;

use hpf::{DistKind, HpfArray, HpfDist};

fn main() {
    let procs = 4;
    println!("Meta-Chaos quickstart on {procs} simulated processors\n");

    let world = World::with_model(procs, MachineModel::sp2());
    let out = world.run(|ep| {
        let g = Group::world(ep.world_size());

        // B: 12x12, (BLOCK, BLOCK) over a 2x2 processor grid.
        let mut b = HpfArray::<f64>::new(&g, ep.rank(), HpfDist::block_block(12, 12, 2, 2));
        b.for_each_owned(|c, v| *v = (c[0] * 100 + c[1]) as f64);

        // A: 8x8, (CYCLIC, BLOCK) — a completely different distribution.
        let mut a = HpfArray::<f64>::new(
            &g,
            ep.rank(),
            HpfDist::new(
                vec![8, 8],
                vec![DistKind::Cyclic(1), DistKind::Block],
                vec![2, 2],
            ),
        );

        // Step 1+2: describe both sides as SetOfRegions.
        let src = SetOfRegions::single(RegularSection::of_bounds(&[(5, 9), (5, 11)]));
        let dst = SetOfRegions::single(RegularSection::of_bounds(&[(0, 4), (1, 7)]));

        // Step 3: build the communication schedule (collective).
        let sched = compute_schedule(
            ep,
            &g,
            &g,
            Some(Side::new(&b, &src)),
            &g,
            Some(Side::new(&a, &dst)),
            BuildMethod::Cooperation,
        )
        .expect("schedule");

        // Step 4: move the data (reusable as often as needed).
        data_move(ep, &sched, &b, &mut a);

        // Collect this rank's view of A for printing on rank 0.
        let mut mine = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                if a.owns(&[i, j]) {
                    mine.push((i, j, a.get(&[i, j])));
                }
            }
        }
        (mine, sched.msgs_out(), ep.clock())
    });

    // Reassemble and print the destination array.
    let mut grid = [[0.0f64; 8]; 8];
    let mut msgs = 0;
    for (vals, m, _) in &out.results {
        msgs += m;
        for &(i, j, v) in vals {
            grid[i][j] = v;
        }
    }
    println!("A after the copy (rows 0..8):");
    for row in &grid {
        let line: Vec<String> = row.iter().map(|v| format!("{v:4.0}")).collect();
        println!("  {}", line.join(" "));
    }
    println!("\nexpected: A[i][j] = B[i+5][j+4] = (i+5)*100 + (j+4) for i<4, 1<=j<7");
    println!(
        "total messages: {msgs}; simulated elapsed: {:.3} ms",
        out.elapsed * 1e3
    );
}
