//! Cross-library interoperability matrix: Meta-Chaos must copy correctly
//! between every pair of the four data-parallel libraries, with both
//! schedule-build strategies, inside one program.
//!
//! Each case copies a reversing permutation (`dst[k] = src[n-1-k]` in
//! linearization terms) so that any ordering mistake shows up.

use mcsim::group::{Comm, Group};
use meta_chaos::build::{compute_schedule, BuildMethod};
use meta_chaos::datamove::data_move;
use meta_chaos::region::{IndexSet, RegularSection};
use meta_chaos::setof::SetOfRegions;
use meta_chaos::Side;
use meta_chaos_repro::test_world;

use chaos::{IrregArray, Partition};
use hpf::{HpfArray, HpfDist};
use multiblock::MultiblockArray;
use tulip::DistributedCollection;

const N: usize = 48;

/// Gather `(global linear index, value)` pairs from a library object.
trait Probe {
    fn snapshot(&self) -> Vec<(usize, f64)>;
}

impl Probe for MultiblockArray<f64> {
    fn snapshot(&self) -> Vec<(usize, f64)> {
        let boxx = self.my_box();
        let shape1 = self.dist().shape()[1];
        let mut out = Vec::new();
        for i in boxx[0].0..boxx[0].1 {
            for j in boxx[1].0..boxx[1].1 {
                out.push((i * shape1 + j, self.get(&[i, j])));
            }
        }
        out
    }
}

impl Probe for IrregArray<f64> {
    fn snapshot(&self) -> Vec<(usize, f64)> {
        self.my_globals()
            .iter()
            .zip(self.local())
            .map(|(&g, &v)| (g, v))
            .collect()
    }
}

impl Probe for HpfArray<f64> {
    fn snapshot(&self) -> Vec<(usize, f64)> {
        let n = self.dist().shape()[0];
        (0..n)
            .filter(|&x| self.owns(&[x]))
            .map(|x| (x, self.get(&[x])))
            .collect()
    }
}

impl Probe for DistributedCollection<f64> {
    fn snapshot(&self) -> Vec<(usize, f64)> {
        let p = self.num_procs();
        let me = self.my_local();
        self.local()
            .iter()
            .enumerate()
            .map(|(l, &v)| (l * p + me, v))
            .collect()
    }
}

/// Check the reversing copy: element with global linear index g must hold
/// `src value of (N-1-g)` = 1000 + (N-1-g).
fn check(results: Vec<Vec<(usize, f64)>>) {
    let mut seen = vec![false; N];
    for vals in results {
        for (g, v) in vals {
            assert_eq!(v, 1000.0 + (N - 1 - g) as f64, "dst[{g}]");
            assert!(!seen[g], "dst[{g}] reported twice");
            seen[g] = true;
        }
    }
    assert!(seen.into_iter().all(|s| s), "some elements unreported");
}

/// 2-D regular source whose row-major linearization is reversed into the
/// destination's 1-D linearization.
fn src_mb(g: &Group, rank: usize) -> (MultiblockArray<f64>, SetOfRegions<RegularSection>) {
    let mut a = MultiblockArray::<f64>::new(g, rank, &[6, 8]);
    a.fill_with(|c| 1000.0 + (c[0] * 8 + c[1]) as f64);
    // Reversal happens on the destination side via its region order.
    (a, SetOfRegions::single(RegularSection::whole(&[6, 8])))
}

fn rev_index_set() -> SetOfRegions<IndexSet> {
    SetOfRegions::single(IndexSet::new((0..N).rev().collect()))
}

fn rev_section_1d() -> SetOfRegions<RegularSection> {
    // A strided section cannot express reversal, so for RegularSection
    // destinations we reverse on the *source* side instead (see callers).
    SetOfRegions::single(RegularSection::whole(&[N]))
}

#[test]
fn multiblock_to_chaos_both_methods() {
    for method in [BuildMethod::Cooperation, BuildMethod::Duplication] {
        for p in [1, 2, 4] {
            let out = test_world(p).run(move |ep| {
                let g = Group::world(p);
                let (a, sset) = src_mb(&g, ep.rank());
                let mut x = {
                    let mut comm = Comm::new(ep, g.clone());
                    IrregArray::create(&mut comm, N, Partition::Random(7), |_| 0.0)
                };
                let dset = rev_index_set();
                let sched = compute_schedule(
                    ep,
                    &g,
                    &g,
                    Some(Side::new(&a, &sset)),
                    &g,
                    Some(Side::new(&x, &dset)),
                    method,
                )
                .unwrap();
                data_move(ep, &sched, &a, &mut x);
                x.snapshot()
            });
            check(out.results);
        }
    }
}

#[test]
fn chaos_to_multiblock_both_methods() {
    for method in [BuildMethod::Cooperation, BuildMethod::Duplication] {
        for p in [2, 3] {
            let out = test_world(p).run(move |ep| {
                let g = Group::world(p);
                let mut x = {
                    let mut comm = Comm::new(ep, g.clone());
                    IrregArray::create(&mut comm, N, Partition::Cyclic, |gi| 1000.0 + gi as f64)
                };
                let sset = rev_index_set(); // reversed source linearization
                let mut a = MultiblockArray::<f64>::new(&g, ep.rank(), &[6, 8]);
                let dset = SetOfRegions::single(RegularSection::whole(&[6, 8]));
                let sched = compute_schedule(
                    ep,
                    &g,
                    &g,
                    Some(Side::new(&x, &sset)),
                    &g,
                    Some(Side::new(&a, &dset)),
                    method,
                )
                .unwrap();
                data_move(ep, &sched, &x, &mut a);
                let _ = &mut x;
                a.snapshot()
            });
            check(out.results);
        }
    }
}

#[test]
fn hpf_to_multiblock_and_back() {
    let out = test_world(4).run(|ep| {
        let g = Group::world(4);
        let mut h = HpfArray::<f64>::new(
            &g,
            ep.rank(),
            HpfDist::new(vec![N], vec![hpf::DistKind::Cyclic(3)], vec![4]),
        );
        h.for_each_owned(|c, v| *v = 1000.0 + c[0] as f64);
        let mut a = MultiblockArray::<f64>::new(&g, ep.rank(), &[6, 8]);
        // dst row-major position k receives src position N-1-k: express the
        // reversal with a descending strided walk... RegularSection cannot
        // reverse, so emulate with a per-element region list on the HPF
        // side using N single-element sections in reverse order.
        let sset = SetOfRegions::from_regions(
            (0..N)
                .rev()
                .map(|x| RegularSection::of_bounds(&[(x, x + 1)]))
                .collect(),
        );
        let dset = SetOfRegions::single(RegularSection::whole(&[6, 8]));
        let sched = compute_schedule(
            ep,
            &g,
            &g,
            Some(Side::new(&h, &sset)),
            &g,
            Some(Side::new(&a, &dset)),
            BuildMethod::Cooperation,
        )
        .unwrap();
        data_move(ep, &sched, &h, &mut a);

        // And back through the *reversed* schedule: h must be restored.
        let mut h2 = HpfArray::<f64>::new(&g, ep.rank(), h.dist().clone());
        data_move(ep, &sched.reversed(), &a, &mut h2);
        let restored = h
            .snapshot()
            .into_iter()
            .zip(h2.snapshot())
            .all(|((g1, v1), (g2, v2))| g1 == g2 && v1 == v2);
        assert!(restored, "round trip must restore the HPF array");
        a.snapshot()
    });
    check(out.results);
}

#[test]
fn tulip_to_hpf() {
    let out = test_world(3).run(|ep| {
        let g = Group::world(3);
        let mut c = DistributedCollection::<f64>::new(&g, ep.rank(), N);
        c.apply(|gi, v| *v = 1000.0 + gi as f64);
        let sset = rev_index_set();
        let mut h = HpfArray::<f64>::new(&g, ep.rank(), HpfDist::block_1d(N, 3));
        let dset = rev_section_1d();
        let sched = compute_schedule(
            ep,
            &g,
            &g,
            Some(Side::new(&c, &sset)),
            &g,
            Some(Side::new(&h, &dset)),
            BuildMethod::Duplication,
        )
        .unwrap();
        data_move(ep, &sched, &c, &mut h);
        h.snapshot()
    });
    check(out.results);
}

#[test]
fn chaos_to_tulip() {
    let out = test_world(2).run(|ep| {
        let g = Group::world(2);
        let mut x = {
            let mut comm = Comm::new(ep, g.clone());
            IrregArray::create(&mut comm, N, Partition::Random(19), |gi| 1000.0 + gi as f64)
        };
        let sset = rev_index_set();
        let mut c = DistributedCollection::<f64>::new(&g, ep.rank(), N);
        let dset = SetOfRegions::single(IndexSet::new((0..N).collect()));
        let sched = compute_schedule(
            ep,
            &g,
            &g,
            Some(Side::new(&x, &sset)),
            &g,
            Some(Side::new(&c, &dset)),
            BuildMethod::Cooperation,
        )
        .unwrap();
        data_move(ep, &sched, &x, &mut c);
        let _ = &mut x;
        c.snapshot()
    });
    check(out.results);
}

#[test]
fn multi_region_sets_spanning_libraries() {
    // Several regions on both sides, different shapes, one transfer.
    let out = test_world(4).run(|ep| {
        let g = Group::world(4);
        let mut a = MultiblockArray::<f64>::new(&g, ep.rank(), &[8, 8]);
        a.fill_with(|c| (c[0] * 8 + c[1]) as f64);
        // Source: two disjoint sections, 24 elements total.
        let sset = SetOfRegions::from_regions(vec![
            RegularSection::of_bounds(&[(0, 2), (0, 8)]), // 16 elems
            RegularSection::of_bounds(&[(4, 5), (0, 8)]), // 8 elems
        ]);
        let mut x = {
            let mut comm = Comm::new(ep, g.clone());
            IrregArray::create(&mut comm, 64, Partition::Random(3), |_| -1.0)
        };
        // Destination: three index-set regions, 24 elements total.
        let dset = SetOfRegions::from_regions(vec![
            IndexSet::new((40..48).collect()),
            IndexSet::new((0..8).collect()),
            IndexSet::new((56..64).collect()),
        ]);
        let sched = compute_schedule(
            ep,
            &g,
            &g,
            Some(Side::new(&a, &sset)),
            &g,
            Some(Side::new(&x, &dset)),
            BuildMethod::Cooperation,
        )
        .unwrap();
        data_move(ep, &sched, &a, &mut x);
        x.snapshot()
    });
    // Linearization: src positions 0..16 are rows 0-1; 16..24 are row 4.
    // Dst positions 0..8 -> globals 40..48, 8..16 -> 0..8, 16..24 -> 56..64.
    let src_val = |pos: usize| -> f64 {
        if pos < 16 {
            pos as f64
        } else {
            (4 * 8 + (pos - 16)) as f64
        }
    };
    for vals in out.results {
        for (g, v) in vals {
            let expect = match g {
                40..=47 => src_val(g - 40),
                0..=7 => src_val(8 + g),
                56..=63 => src_val(16 + g - 56),
                _ => -1.0,
            };
            assert_eq!(v, expect, "x[{g}]");
        }
    }
}
