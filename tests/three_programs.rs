//! Three separately running programs coupled pairwise by Meta-Chaos — the
//! paper's shipboard-fire scenario (structural mechanics + CFD + flame
//! codes) has exactly this shape.  Each coupling is an independent union
//! group; schedules are built pairwise and reused every step.
//!
//! Pipeline: A (Multiblock Parti) → B (Chaos) → C (HPF), with C's output
//! checked against a sequential composition of the three "physics" steps.

use mcsim::group::{Comm, Group};
use meta_chaos::build::{compute_schedule, BuildMethod};
use meta_chaos::datamove::{data_move_recv, data_move_send};
use meta_chaos::region::{IndexSet, RegularSection};
use meta_chaos::setof::SetOfRegions;
use meta_chaos::Side;
use meta_chaos_repro::test_world;

use chaos::{IrregArray, Partition};
use hpf::{HpfArray, HpfDist};
use multiblock::MultiblockArray;

const N: usize = 36;
const STEPS: usize = 4;

/// Sequential composition: A doubles, B adds its global index, C keeps.
fn reference() -> Vec<f64> {
    let mut field: Vec<f64> = (0..N).map(|g| g as f64).collect();
    let mut out = vec![0.0; N];
    for _ in 0..STEPS {
        for v in field.iter_mut() {
            *v *= 2.0; // A's physics
        }
        let staged: Vec<f64> = field
            .iter()
            .enumerate()
            .map(|(g, &v)| v + g as f64) // B's physics
            .collect();
        out.copy_from_slice(&staged); // C accumulates the latest view
    }
    out
}

#[test]
fn pipeline_of_three_programs() {
    let (pa, pb, pc) = (2usize, 2usize, 2usize);
    let world = test_world(pa + pb + pc);
    let out = world.run(move |ep| {
        // Global rank layout: A = 0..2, B = 2..4, C = 4..6.
        let ga = Group::new((0..pa).collect(), 40);
        let gb = Group::new((pa..pa + pb).collect(), 41);
        let gc = Group::new((pa + pb..pa + pb + pc).collect(), 42);
        let ab = Group::new((0..pa + pb).collect(), 43);
        let bc = Group::new((pa..pa + pb + pc).collect(), 44);

        let reg_set: SetOfRegions<RegularSection> =
            SetOfRegions::single(RegularSection::whole(&[N]));
        let idx_set: SetOfRegions<IndexSet> = SetOfRegions::single(IndexSet::new((0..N).collect()));

        let me = ep.rank();
        if ga.contains(me) {
            // -------- program A: owns the field, doubles it each step ----
            let mut f = MultiblockArray::<f64>::new(&ga, me, &[N]);
            f.fill_with(|c| c[0] as f64);
            let to_b = compute_schedule::<f64, MultiblockArray<f64>, IrregArray<f64>>(
                ep,
                &ab,
                &ga,
                Some(Side::new(&f, &reg_set)),
                &gb,
                None,
                BuildMethod::Cooperation,
            )
            .unwrap();
            for _ in 0..STEPS {
                for v in f.local_mut() {
                    *v *= 2.0;
                }
                data_move_send(ep, &to_b, &f).unwrap();
            }
            Vec::new()
        } else if gb.contains(me) {
            // -------- program B: mirror + add-index, forward to C --------
            let mut mirror = {
                let mut comm = Comm::new(ep, gb.clone());
                IrregArray::create(&mut comm, N, Partition::Random(7), |_| 0.0)
            };
            let from_a = compute_schedule::<f64, MultiblockArray<f64>, IrregArray<f64>>(
                ep,
                &ab,
                &ga,
                None,
                &gb,
                Some(Side::new(&mirror, &idx_set)),
                BuildMethod::Cooperation,
            )
            .unwrap();
            let to_c = compute_schedule::<f64, IrregArray<f64>, HpfArray<f64>>(
                ep,
                &bc,
                &gb,
                Some(Side::new(&mirror, &idx_set)),
                &gc,
                None,
                BuildMethod::Cooperation,
            )
            .unwrap();
            for _ in 0..STEPS {
                data_move_recv(ep, &from_a, &mut mirror).unwrap();
                let globals = mirror.my_globals().to_vec();
                for (a, v) in mirror.local_mut().iter_mut().enumerate() {
                    *v += globals[a] as f64;
                }
                data_move_send(ep, &to_c, &mirror).unwrap();
            }
            Vec::new()
        } else {
            // -------- program C: receives the processed field ------------
            let mut sink = HpfArray::<f64>::new(&gc, me, HpfDist::block_1d(N, pc));
            let from_b = compute_schedule::<f64, IrregArray<f64>, HpfArray<f64>>(
                ep,
                &bc,
                &gb,
                None,
                &gc,
                Some(Side::new(&sink, &reg_set)),
                BuildMethod::Cooperation,
            )
            .unwrap();
            for _ in 0..STEPS {
                data_move_recv(ep, &from_b, &mut sink).unwrap();
            }
            (0..N)
                .filter(|&x| sink.owns(&[x]))
                .map(|x| (x, sink.get(&[x])))
                .collect::<Vec<(usize, f64)>>()
        }
    });

    let want = reference();
    let mut seen = 0;
    for vals in &out.results[pa + pb..] {
        for &(g, v) in vals {
            assert_eq!(v, want[g], "sink[{g}]");
            seen += 1;
        }
    }
    assert_eq!(seen, N);
}
