//! The paper's Figure 9, transliterated through the paper-flavoured API
//! (`meta_chaos::api`): two HPF programs exchanging an array section.
//!
//! Amusingly, the figure's literal bounds do not pair up:
//! `B(50:100, 50:100)` is 51×51 = 2601 elements while
//! `A(1:50, 10:60)` is 50×51 = 2550.  The first test shows Meta-Chaos
//! *catching* that erratum (the "only constraint" of §4.1.2); the second
//! runs the corrected transfer end to end.

use mcsim::group::Group;
use meta_chaos::api::{
    create_region_hpf, mc_add_region_2_set, mc_compute_sched_dst, mc_compute_sched_src,
    mc_data_move_recv, mc_data_move_send, mc_new_set_of_region,
};
use meta_chaos::McError;
use meta_chaos_repro::test_world;

use hpf::{HpfArray, HpfDist};

#[test]
fn paper_figure9_bounds_are_mismatched_and_detected() {
    let out = test_world(4).run(|ep| {
        let (src_prog, dst_prog, un) = Group::split_two(2, 2, 32);
        if src_prog.contains(ep.rank()) {
            // program source: B(200,100), distribute (block, block)
            let b =
                HpfArray::<f64>::new(&src_prog, ep.rank(), HpfDist::block_block(200, 100, 2, 1));
            // Rleft = (50, 50); Rright = (100, 100)
            let region = create_region_hpf(&[50, 50], &[100, 100]);
            let mut set = mc_new_set_of_region();
            mc_add_region_2_set(region, &mut set);
            mc_compute_sched_src::<f64, HpfArray<f64>, HpfArray<f64>>(
                ep, &un, &src_prog, &b, &set, &dst_prog,
            )
            .unwrap_err()
        } else {
            // program destination: A(50,60), distribute (block, block)
            let a = HpfArray::<f64>::new(&dst_prog, ep.rank(), HpfDist::block_block(50, 60, 2, 1));
            // Rleft = (1, 10); Rright = (50, 60)
            let region = create_region_hpf(&[1, 10], &[50, 60]);
            let mut set = mc_new_set_of_region();
            mc_add_region_2_set(region, &mut set);
            mc_compute_sched_dst::<f64, HpfArray<f64>, HpfArray<f64>>(
                ep, &un, &src_prog, &dst_prog, &a, &set,
            )
            .unwrap_err()
        }
    });
    for e in out.results {
        assert_eq!(
            e,
            McError::LengthMismatch {
                src: 51 * 51,
                dst: 50 * 51
            }
        );
    }
}

#[test]
fn corrected_figure9_transfer_runs() {
    // Shrink the source's first dimension by one: B(51:100, 50:100).
    // Parameterized over the world size: the same harness runs at the
    // paper's 2+2 and at larger splits.
    for p in [4usize, 8] {
        corrected_figure9_transfer_at(p);
    }
}

fn corrected_figure9_transfer_at(p: usize) {
    let pa = p / 2;
    let out = test_world(p).run(move |ep| {
        let (src_prog, dst_prog, un) = Group::split_two(pa, p - pa, 32);
        if src_prog.contains(ep.rank()) {
            let mut b =
                HpfArray::<f64>::new(&src_prog, ep.rank(), HpfDist::block_block(200, 100, pa, 1));
            b.for_each_owned(|c, v| *v = (c[0] * 1000 + c[1]) as f64);
            let region = create_region_hpf(&[51, 50], &[100, 100]);
            let mut set = mc_new_set_of_region();
            mc_add_region_2_set(region, &mut set);
            let sched = mc_compute_sched_src::<f64, HpfArray<f64>, HpfArray<f64>>(
                ep, &un, &src_prog, &b, &set, &dst_prog,
            )
            .unwrap();
            mc_data_move_send(ep, &sched, &b).unwrap();
            Vec::new()
        } else {
            let mut a = HpfArray::<f64>::new(
                &dst_prog,
                ep.rank(),
                HpfDist::block_block(50, 60, p - pa, 1),
            );
            let region = create_region_hpf(&[1, 10], &[50, 60]);
            let mut set = mc_new_set_of_region();
            mc_add_region_2_set(region, &mut set);
            let sched = mc_compute_sched_dst::<f64, HpfArray<f64>, HpfArray<f64>>(
                ep, &un, &src_prog, &dst_prog, &a, &set,
            )
            .unwrap();
            mc_data_move_recv(ep, &sched, &mut a).unwrap();
            let mut got = Vec::new();
            for i in 0..50 {
                for j in 0..60 {
                    if a.owns(&[i, j]) {
                        got.push((i, j, a.get(&[i, j])));
                    }
                }
            }
            got
        }
    });
    // A[1:50, 10:60] (1-based incl) = A[0..50, 9..60) receives
    // B[51:100, 50:100] = B[50..100, 49..100).
    for vals in &out.results[pa..] {
        for &(i, j, v) in vals {
            let expect = if (9..60).contains(&j) {
                ((i + 50) * 1000 + (j - 9 + 49)) as f64
            } else {
                0.0
            };
            assert_eq!(v, expect, "A[{i}][{j}]");
        }
    }
}
