//! Scaling and determinism properties of the cooperative M:N runner.
//!
//! The contract under test (DESIGN.md §4j): the virtual clock drives a
//! **total order** over rank execution — a rank runs until it blocks on a
//! communication op, parks, and the scheduler resumes the runnable rank
//! with the lowest `(virtual_time, rank)` key.  The worker-pool size is a
//! hosting detail, so the same seed must produce byte-identical traces and
//! `NetStats` whether the pool has 1 worker, 4, or one per logical CPU —
//! and must agree with the legacy thread-per-rank runner, whose real-time
//! races the virtual clock was designed to make irrelevant.
//!
//! Also here: the P=1024 memory budget (a big world must stay cheap until
//! ranks actually run — lazy coroutine stacks, lazy flight rings, capped
//! timelines) and the topology model's determinism under contention.

use mcsim::fault::{test_seeds, FaultPlan, FaultRates};
use mcsim::model::{MachineModel, Topology};
use mcsim::prelude::Endpoint;
use mcsim::reliable::{reliable_recv, reliable_send, StreamTag};
use mcsim::stats::NetStats;
use mcsim::trace::TraceEvent;
use mcsim::world::World;

const P: usize = 64;

/// Worker-pool sizes to cross-check: serial, small, and one per CPU.
fn worker_pools() -> Vec<usize> {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut pools = vec![1, 4, cpus];
    pools.dedup();
    pools.sort_unstable();
    pools.dedup();
    pools
}

/// Tiny keyed xorshift so every (seed, rank, round, hop) gets its own
/// payload without any external RNG.
fn mix(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut x = seed ^ (a << 40) ^ (b << 20) ^ c ^ 0x9e37_79b9_7f4a_7c15;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x.max(1)
}

/// SPMD workload with enough cross-rank structure to expose ordering bugs:
/// three rounds of reliable-stream exchange at hop distances 1 and 17
/// (coprime with 64, so messages cross the whole rank space), payload
/// sizes varied per edge.  Returns a checksum of everything received.
fn exchange_workload(ep: &mut Endpoint, seed: u64) -> u64 {
    let p = ep.world_size();
    let me = ep.rank();
    let mut sum = 0u64;
    for round in 0..3u64 {
        let st = StreamTag::new(0x5CA1, round as u32);
        for &hop in &[1usize, 17 % p.max(1)] {
            let to = (me + hop) % p;
            let n = (mix(seed, me as u64, round, hop as u64) % 96 + 8) as usize;
            let payload: Vec<u8> = (0..n)
                .map(|i| mix(seed, to as u64, round, i as u64) as u8)
                .collect();
            reliable_send(ep, to, st, payload).unwrap();
        }
        for &hop in &[1usize, 17 % p.max(1)] {
            let from = (me + p - hop) % p;
            let got = reliable_recv(ep, from, st).unwrap();
            sum = sum.wrapping_add(
                got.iter()
                    .fold(0u64, |acc, &b| acc.wrapping_mul(31).wrapping_add(b as u64)),
            );
        }
    }
    sum
}

/// One full observation of a run: everything that must be identical for
/// two runs to count as "the same execution".
#[derive(Debug, PartialEq)]
struct Fingerprint {
    results: Vec<u64>,
    clocks: Vec<f64>,
    elapsed: f64,
    stats: NetStats,
    traces: Vec<Vec<TraceEvent>>,
}

fn run_fingerprint(world: World, seed: u64) -> Fingerprint {
    let out = world.run(move |ep| exchange_workload(ep, seed));
    Fingerprint {
        results: out.results,
        clocks: out.clocks,
        elapsed: out.elapsed,
        stats: out.stats,
        traces: out.traces,
    }
}

/// Tentpole determinism claim: the coop scheduler's worker count is pure
/// hosting.  Same seed ⇒ byte-identical traces, NetStats, clocks across
/// pools {1, 4, num_cpus} at P=64, for every committed fault seed.
#[test]
fn coop_worker_pool_size_is_invisible_at_p64() {
    for seed in test_seeds() {
        let mut baseline: Option<(usize, Fingerprint)> = None;
        for workers in worker_pools() {
            let world = World::with_model(P, MachineModel::sp2())
                .with_workers(workers)
                .with_faults(FaultPlan::new(seed).rates(FaultRates {
                    drop: 0.04,
                    dup: 0.03,
                    delay: 0.05,
                    delay_secs: 2e-4,
                    ..FaultRates::default()
                }))
                .with_trace();
            let fp = run_fingerprint(world, seed);
            match &baseline {
                None => baseline = Some((workers, fp)),
                Some((w0, fp0)) => assert_eq!(
                    fp0, &fp,
                    "seed {seed}: {workers}-worker run diverged from {w0}-worker run"
                ),
            }
        }
    }
}

/// Strip a trace down to the events whose order is program-defined: data
/// sends/recvs, spans, marks.  Protocol-plane bookkeeping (acks, window
/// advances, retransmit timers) is pumped opportunistically, so under the
/// threaded runner its interleaving into the timeline depends on
/// wall-clock races — two identical threaded runs disagree on it.
fn data_plane(traces: &[Vec<TraceEvent>]) -> Vec<Vec<TraceEvent>> {
    traces
        .iter()
        .map(|t| {
            t.iter()
                .filter(|e| match e {
                    TraceEvent::Send { tag, .. } | TraceEvent::Recv { tag, .. } => {
                        tag.class() != mcsim::Tag::CLASS_RELIABLE_CTRL
                    }
                    TraceEvent::Retransmit { .. }
                    | TraceEvent::WindowAdvance { .. }
                    | TraceEvent::WindowStall { .. }
                    | TraceEvent::RetransmitBurst { .. } => false,
                    _ => true,
                })
                .cloned()
                .collect()
        })
        .collect()
}

/// Ablation parity: the legacy thread-per-rank runner — real OS threads,
/// real races — must reproduce the cooperative runner's execution on every
/// observable the threaded runner can itself reproduce: results, virtual
/// clocks, traffic matrices, session/recovery counters, ack counts, and
/// the data-plane trace.  (Protocol tail accounting like
/// `window_advances` is excluded: it depends on when the pump drains
/// relative to each rank's exit snapshot, and is not stable even between
/// two threaded runs — making it deterministic is exactly what the coop
/// runner adds.)
#[test]
fn coop_matches_threaded_runner_at_p64() {
    for seed in test_seeds() {
        let coop = run_fingerprint(
            World::with_model(P, MachineModel::sp2())
                .with_workers(4)
                .with_trace(),
            seed,
        );
        let threaded = run_fingerprint(
            World::with_model(P, MachineModel::sp2())
                .threaded()
                .with_trace(),
            seed,
        );
        assert_eq!(coop.results, threaded.results, "seed {seed}: results");
        assert_eq!(coop.clocks, threaded.clocks, "seed {seed}: clocks");
        assert_eq!(coop.elapsed, threaded.elapsed, "seed {seed}: elapsed");
        assert_eq!(coop.stats.msgs, threaded.stats.msgs, "seed {seed}: msgs");
        assert_eq!(coop.stats.bytes, threaded.stats.bytes, "seed {seed}: bytes");
        assert_eq!(
            coop.stats.session, threaded.stats.session,
            "seed {seed}: session stats"
        );
        assert_eq!(
            coop.stats.recovery, threaded.stats.recovery,
            "seed {seed}: recovery stats"
        );
        assert_eq!(
            coop.stats.faults.acks_sent, threaded.stats.faults.acks_sent,
            "seed {seed}: acks (one per data frame, timing-independent)"
        );
        assert_eq!(
            data_plane(&coop.traces),
            data_plane(&threaded.traces),
            "seed {seed}: data-plane traces"
        );
    }
}

/// A 1024-rank world must build and run a neighbor exchange within the
/// documented memory budget: peak RSS (VmHWM) under 512 MiB.  The budget
/// holds because coroutine stacks are raw-allocated and never pre-touched
/// (~2 resident pages each until a rank runs), flight rings allocate
/// lazily and shrink to 16 slots past P=256, and the per-rank O(P)
/// traffic counters total ~16 MiB at P=1024.
#[test]
fn p1024_world_fits_memory_budget() {
    const P_BIG: usize = 1024;
    let world = World::with_model(P_BIG, MachineModel::zero());
    let out = world.run(|ep| {
        let p = ep.world_size();
        let me = ep.rank();
        let t = mcsim::Tag::new(9, 1);
        ep.send((me + 1) % p, t, vec![me as u8; 32]);
        let got = ep.recv((me + p - 1) % p, t);
        got.len() as u64 + got[0] as u64
    });
    assert_eq!(out.results.len(), P_BIG);
    for (r, &v) in out.results.iter().enumerate() {
        let left = (r + P_BIG - 1) % P_BIG;
        assert_eq!(v, 32 + (left as u8) as u64, "rank {r}");
    }

    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").unwrap();
        let hwm_kb: u64 = status
            .lines()
            .find(|l| l.starts_with("VmHWM:"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .expect("VmHWM in /proc/self/status");
        assert!(
            hwm_kb < 512 * 1024,
            "P=1024 run peaked at {hwm_kb} kB RSS, budget is 512 MiB"
        );
    }
}

/// Past P=256 the flight ring shrinks so the always-on crash forensics
/// stay O(P·16) instead of O(P·64).
#[test]
fn big_worlds_shrink_the_flight_ring() {
    let big = World::with_model(300, MachineModel::zero());
    let out = big.run(|ep| {
        let t = mcsim::Tag::new(9, 2);
        // Overfill the ring: its len can never exceed the shrunk cap.
        for i in 0..40u32 {
            ep.send(ep.rank(), t, vec![0u8; 8]);
            let _ = ep.recv(ep.rank(), t);
            let _ = i;
        }
        ep.flight_dump().len()
    });
    for (r, &n) in out.results.iter().enumerate() {
        assert!(
            n <= mcsim::FLIGHT_RING_CAP / 4,
            "rank {r}: flight ring held {n} events, cap should be {}",
            mcsim::FLIGHT_RING_CAP / 4
        );
    }
}

/// Topology end-to-end: an 8×8 torus under an incast (everyone sends to
/// rank 0) must charge link contention on the virtual clock, finish later
/// than the contention-free crossbar, and stay deterministic across
/// worker-pool sizes.
#[test]
fn torus_incast_queues_deterministically() {
    fn incast(ep: &mut Endpoint) -> f64 {
        let t = mcsim::Tag::new(11, 3);
        if ep.rank() == 0 {
            for src in 1..ep.world_size() {
                let _ = ep.recv(src, t);
            }
        } else {
            ep.send(0, t, vec![0xA5; 4096]);
        }
        ep.clock()
    }

    let mut fingerprints = Vec::new();
    for workers in worker_pools() {
        let world = World::with_model(P, MachineModel::sp2())
            .with_topology(Topology::Torus2D { cols: 8, rows: 8 })
            .with_workers(workers)
            .with_trace();
        let out = world.run(incast);
        assert!(
            out.contended_secs > 0.0,
            "64-to-1 incast on a torus must contend somewhere"
        );
        fingerprints.push((
            workers,
            out.elapsed,
            out.clocks,
            out.traces,
            out.stats,
            out.contended_secs,
        ));
    }
    for pair in fingerprints.windows(2) {
        assert_eq!(
            (&pair[0].1, &pair[0].2, &pair[0].3, &pair[0].4, &pair[0].5),
            (&pair[1].1, &pair[1].2, &pair[1].3, &pair[1].4, &pair[1].5),
            "torus incast diverged between {} and {} workers",
            pair[0].0,
            pair[1].0
        );
    }

    let crossbar = World::with_model(P, MachineModel::sp2()).run(incast);
    assert!(
        fingerprints[0].1 > crossbar.elapsed,
        "torus incast ({}) should finish after the contention-free crossbar ({})",
        fingerprints[0].1,
        crossbar.elapsed
    );
}

/// `attribute_links` folds a traced run onto the topology's routes; the
/// per-link message totals must account for every cross-rank send.
#[test]
fn link_attribution_accounts_for_every_send() {
    let topo = Topology::Torus2D { cols: 4, rows: 4 };
    let model = MachineModel::sp2();
    let world = World::with_model(16, model)
        .with_topology(topo)
        .with_trace();
    let out = world.run(|ep| {
        let t = mcsim::Tag::new(11, 4);
        let p = ep.world_size();
        let to = (ep.rank() + 5) % p;
        ep.send(to, t, vec![1u8; 256]);
        let _ = ep.recv((ep.rank() + p - 5) % p, t);
    });
    let loads = mcsim::attribute_links(&out.traces, topo, &model);
    assert!(!loads.is_empty());
    let hops: u64 = loads.values().map(|l| l.msgs).sum();
    let min_hops: u64 = (0..16u64)
        .map(|r| topo.hops(r as usize, ((r + 5) % 16) as usize) as u64)
        .sum();
    assert_eq!(
        hops, min_hops,
        "every send must appear on every link of its route"
    );
    assert!(loads.values().all(|l| l.wire_secs > 0.0 && l.bytes > 0));
}
