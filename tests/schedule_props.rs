//! Property-based tests of the Meta-Chaos core invariants:
//!
//! * a copy always equals the sequential reference `dst[perm_d[k]] =
//!   src[perm_s[k]]`, for random region structures and distributions;
//! * cooperation and duplication build identical data motion;
//! * every destination element is delivered exactly once;
//! * reversing a schedule and copying back restores the source;
//! * block/cyclic owner arithmetic is self-consistent.

use proptest::prelude::*;

use mcsim::group::{Comm, Group};
use meta_chaos::build::{compute_schedule, BuildMethod};
use meta_chaos::datamove::data_move;
use meta_chaos::region::{IndexSet, Region, RegularSection};
use meta_chaos::setof::SetOfRegions;
use meta_chaos::Side;
use meta_chaos_repro::test_world;

use chaos::{IrregArray, Partition};
use hpf::{DistKind, HpfArray, HpfDist};

/// A random ordered selection of `k` distinct indices from `0..n`.
fn selection(n: usize, k: usize, seed: u64) -> Vec<usize> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut all: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    all.shuffle(&mut rng);
    all.truncate(k);
    all
}

/// Split a list of indices into 1–4 IndexSet regions at random points.
fn random_regions(indices: &[usize], cuts_seed: u64) -> SetOfRegions<IndexSet> {
    let n = indices.len();
    let mut cuts = vec![0, n];
    if n > 2 {
        cuts.push(1 + (cuts_seed as usize) % (n - 1));
        cuts.push(1 + (cuts_seed as usize * 7) % (n - 1));
    }
    cuts.sort_unstable();
    cuts.dedup();
    let mut regions = Vec::new();
    for w in cuts.windows(2) {
        regions.push(IndexSet::new(indices[w[0]..w[1]].to_vec()));
    }
    SetOfRegions::from_regions(regions)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, .. ProptestConfig::default()
    })]

    #[test]
    fn random_chaos_copy_matches_reference(
        n in 8usize..48,
        k_frac in 1usize..=4,
        p in 1usize..=4,
        src_seed in 0u64..1000,
        dst_seed in 0u64..1000,
        part_seed in 0u64..1000,
        method_pick in 0u8..2,
    ) {
        let k = (n * k_frac / 4).max(1);
        let src_idx = selection(n, k, src_seed);
        let dst_idx = selection(n, k, dst_seed);
        let method = if method_pick == 0 {
            BuildMethod::Cooperation
        } else {
            BuildMethod::Duplication
        };
        let (si, di) = (src_idx.clone(), dst_idx.clone());
        let out = test_world(p).run(move |ep| {
            let g = Group::world(p);
            let src = {
                let mut comm = Comm::new(ep, g.clone());
                IrregArray::create(&mut comm, n, Partition::Random(part_seed), |gi| {
                    gi as f64 * 2.0
                })
            };
            let mut dst = {
                let mut comm = Comm::new(ep, g.clone());
                IrregArray::create(&mut comm, n, Partition::Random(part_seed ^ 0xabc), |_| {
                    f64::NAN
                })
            };
            let sset = random_regions(&si, src_seed ^ 1);
            let dset = random_regions(&di, dst_seed ^ 2);
            // Region splits may disagree between sides; only totals matter.
            prop_assert_eq!(sset.total_len(), dset.total_len());
            let sched = compute_schedule(
                ep,
                &g,
                &g,
                Some(Side::new(&src, &sset)),
                &g,
                Some(Side::new(&dst, &dset)),
                method,
            )
            .unwrap();

            // Invariant: delivered elements (messages + local pairs) equal
            // the transfer size, rank-summed.
            let delivered = sched.elems_in() + sched.elems_local();
            data_move(ep, &sched, &src, &mut dst);
            let snap: Vec<(usize, f64)> = dst
                .my_globals()
                .iter()
                .zip(dst.local())
                .map(|(&g, &v)| (g, v))
                .collect();
            Ok((delivered, snap))
        });
        let results: Vec<_> = out.results.into_iter().collect::<Result<Vec<_>, _>>()?;
        let total_delivered: usize = results.iter().map(|(d, _)| d).sum();
        prop_assert_eq!(total_delivered, k);

        // Reference semantics.
        let mut expect = vec![f64::NAN; n];
        for (s, d) in src_idx.iter().zip(&dst_idx) {
            expect[*d] = *s as f64 * 2.0;
        }
        for (_, snap) in results {
            for (gi, v) in snap {
                if expect[gi].is_nan() {
                    prop_assert!(v.is_nan(), "dst[{}] written unexpectedly", gi);
                } else {
                    prop_assert_eq!(v, expect[gi], "dst[{}]", gi);
                }
            }
        }
    }

    #[test]
    fn coop_equals_dup_motion(
        n in 8usize..40,
        p in 2usize..=4,
        seed in 0u64..500,
    ) {
        let k = n / 2;
        let src_idx = selection(n, k, seed);
        let dst_idx = selection(n, k, seed ^ 999);
        let (si, di) = (src_idx.clone(), dst_idx.clone());
        let out = test_world(p).run(move |ep| {
            let g = Group::world(p);
            let src = {
                let mut comm = Comm::new(ep, g.clone());
                IrregArray::create(&mut comm, n, Partition::Random(seed), |gi| gi as f64)
            };
            let dst = {
                let mut comm = Comm::new(ep, g.clone());
                IrregArray::create(&mut comm, n, Partition::Cyclic, |_| 0.0)
            };
            let sset = SetOfRegions::single(IndexSet::new(si.clone()));
            let dset = SetOfRegions::single(IndexSet::new(di.clone()));
            let mut scheds = Vec::new();
            for method in [BuildMethod::Cooperation, BuildMethod::Duplication] {
                scheds.push(
                    compute_schedule(
                        ep,
                        &g,
                        &g,
                        Some(Side::new(&src, &sset)),
                        &g,
                        Some(Side::new(&dst, &dset)),
                        method,
                    )
                    .unwrap(),
                );
            }
            let a = &scheds[0];
            let b = &scheds[1];
            (a.sends == b.sends, a.recvs == b.recvs, a.local_pairs == b.local_pairs)
        });
        for (s, r, l) in out.results {
            prop_assert!(s && r && l);
        }
    }

    #[test]
    fn reverse_round_trip_restores_source(
        n in 8usize..32,
        p in 1usize..=3,
        seed in 0u64..500,
    ) {
        let k = (n / 2).max(1);
        let src_idx = selection(n, k, seed);
        let dst_idx = selection(n, k, seed ^ 77);
        let (si, di) = (src_idx, dst_idx);
        let out = test_world(p).run(move |ep| {
            let g = Group::world(p);
            let mut h = HpfArray::<f64>::new(&g, ep.rank(), HpfDist::block_1d(n, p));
            h.for_each_owned(|c, v| *v = 100.0 + c[0] as f64);
            let mut x = {
                let mut comm = Comm::new(ep, g.clone());
                IrregArray::create(&mut comm, n, Partition::Random(seed), |_| 0.0)
            };
            // HPF side: per-element sections in the chosen order.
            let sset = SetOfRegions::from_regions(
                si.iter()
                    .map(|&i| RegularSection::of_bounds(&[(i, i + 1)]))
                    .collect(),
            );
            let dset = SetOfRegions::single(IndexSet::new(di.clone()));
            let sched = compute_schedule(
                ep,
                &g,
                &g,
                Some(Side::new(&h, &sset)),
                &g,
                Some(Side::new(&x, &dset)),
                BuildMethod::Cooperation,
            )
            .unwrap();
            data_move(ep, &sched, &h, &mut x);
            // Perturb h, then restore it from x via the reversed schedule.
            let before: Vec<(usize, f64)> = (0..n)
                .filter(|&i| h.owns(&[i]))
                .map(|i| (i, h.get(&[i])))
                .collect();
            h.for_each_owned(|_, v| *v = -1.0);
            data_move(ep, &sched.reversed(), &x, &mut h);
            let after: Vec<(usize, f64)> = (0..n)
                .filter(|&i| h.owns(&[i]))
                .map(|i| (i, h.get(&[i])))
                .collect();
            let si = si.clone();
            let touched: Vec<usize> = si.clone();
            (before, after, touched)
        });
        for (before, after, touched) in out.results {
            for ((i, b), (j, a)) in before.into_iter().zip(after) {
                prop_assert_eq!(i, j);
                if touched.contains(&i) {
                    prop_assert_eq!(a, b, "restored h[{}]", i);
                } else {
                    prop_assert_eq!(a, -1.0, "untouched h[{}]", i);
                }
            }
        }
    }

    #[test]
    fn hpf_owner_arithmetic_consistent(
        n in 1usize..200,
        g in 1usize..8,
        kind_pick in 0u8..3,
        chunk in 1usize..5,
    ) {
        let kind = match kind_pick {
            0 => DistKind::Block,
            1 => DistKind::Cyclic(chunk),
            _ => DistKind::Collapsed,
        };
        let g = if matches!(kind, DistKind::Collapsed) { 1 } else { g };
        prop_assume!(!matches!(kind, DistKind::Block) || n >= g);
        let mut counts = vec![0usize; g];
        for x in 0..n {
            let o = kind.owner(n, g, x);
            prop_assert!(o < g);
            let l = kind.local(n, g, x);
            prop_assert!(l < kind.local_count(n, g, o), "x={} owner={} local={}", x, o, l);
            counts[o] += 1;
        }
        for (c, &count) in counts.iter().enumerate() {
            prop_assert_eq!(count, kind.local_count(n, g, c));
        }
    }

    #[test]
    fn regular_section_linearization_bijective(
        lo0 in 0usize..5, cnt0 in 1usize..6, st0 in 1usize..4,
        lo1 in 0usize..5, cnt1 in 1usize..6, st1 in 1usize..4,
    ) {
        let sec = RegularSection::new(vec![
            meta_chaos::DimSlice::strided(lo0, lo0 + cnt0 * st0, st0),
            meta_chaos::DimSlice::strided(lo1, lo1 + cnt1 * st1, st1),
        ]);
        let mut seen = std::collections::HashSet::new();
        for k in 0..sec.len() {
            let c = sec.coords_of(k);
            prop_assert_eq!(sec.position_of(&c), Some(k));
            prop_assert!(seen.insert(c));
        }
        prop_assert_eq!(seen.len(), sec.len());
    }
}
