//! Property-style tests of the Meta-Chaos core invariants, run as seeded
//! deterministic loops (no external property-testing framework):
//!
//! * a copy always equals the sequential reference `dst[perm_d[k]] =
//!   src[perm_s[k]]`, for random region structures and distributions;
//! * cooperation and duplication build identical data motion;
//! * every destination element is delivered exactly once;
//! * reversing a schedule and copying back restores the source;
//! * block/cyclic owner arithmetic is self-consistent;
//! * run-compressed address lists enumerate exactly the element lists the
//!   builders were given.

use mcsim::group::{Comm, Group};
use mcsim::rng::Rng;
use meta_chaos::build::{compute_schedule, BuildMethod};
use meta_chaos::datamove::data_move;
use meta_chaos::region::{IndexSet, Region, RegularSection};
use meta_chaos::schedule::AddrRuns;
use meta_chaos::setof::SetOfRegions;
use meta_chaos::Side;
use meta_chaos_repro::test_world;

use chaos::{IrregArray, Partition};
use hpf::{DistKind, HpfArray, HpfDist};

/// A random ordered selection of `k` distinct indices from `0..n`.
fn selection(n: usize, k: usize, seed: u64) -> Vec<usize> {
    let mut all: Vec<usize> = (0..n).collect();
    let mut rng = Rng::seed_from_u64(seed);
    rng.shuffle(&mut all);
    all.truncate(k);
    all
}

/// Split a list of indices into 1–4 IndexSet regions at random points.
fn random_regions(indices: &[usize], cuts_seed: u64) -> SetOfRegions<IndexSet> {
    let n = indices.len();
    let mut cuts = vec![0, n];
    if n > 2 {
        cuts.push(1 + (cuts_seed as usize) % (n - 1));
        cuts.push(1 + (cuts_seed as usize * 7) % (n - 1));
    }
    cuts.sort_unstable();
    cuts.dedup();
    let mut regions = Vec::new();
    for w in cuts.windows(2) {
        regions.push(IndexSet::new(indices[w[0]..w[1]].to_vec()));
    }
    SetOfRegions::from_regions(regions)
}

#[test]
fn random_chaos_copy_matches_reference() {
    let mut rng = Rng::seed_from_u64(0xc0ffee);
    for _case in 0..24 {
        let n = 8 + rng.gen_range(40);
        let k_frac = 1 + rng.gen_range(4);
        let p = 1 + rng.gen_range(4);
        let src_seed = rng.next_u64() % 1000;
        let dst_seed = rng.next_u64() % 1000;
        let part_seed = rng.next_u64() % 1000;
        let method = if rng.gen_range(2) == 0 {
            BuildMethod::Cooperation
        } else {
            BuildMethod::Duplication
        };
        let k = (n * k_frac / 4).max(1);
        let src_idx = selection(n, k, src_seed);
        let dst_idx = selection(n, k, dst_seed);
        let (si, di) = (src_idx.clone(), dst_idx.clone());
        let out = test_world(p).run(move |ep| {
            let g = Group::world(p);
            let src = {
                let mut comm = Comm::new(ep, g.clone());
                IrregArray::create(&mut comm, n, Partition::Random(part_seed), |gi| {
                    gi as f64 * 2.0
                })
            };
            let mut dst = {
                let mut comm = Comm::new(ep, g.clone());
                IrregArray::create(&mut comm, n, Partition::Random(part_seed ^ 0xabc), |_| {
                    f64::NAN
                })
            };
            let sset = random_regions(&si, src_seed ^ 1);
            let dset = random_regions(&di, dst_seed ^ 2);
            // Region splits may disagree between sides; only totals matter.
            assert_eq!(sset.total_len(), dset.total_len());
            let sched = compute_schedule(
                ep,
                &g,
                &g,
                Some(Side::new(&src, &sset)),
                &g,
                Some(Side::new(&dst, &dset)),
                method,
            )
            .unwrap();

            // Invariant: delivered elements (messages + local pairs) equal
            // the transfer size, rank-summed.
            let delivered = sched.elems_in() + sched.elems_local();
            data_move(ep, &sched, &src, &mut dst);
            let snap: Vec<(usize, f64)> = dst
                .my_globals()
                .iter()
                .zip(dst.local())
                .map(|(&g, &v)| (g, v))
                .collect();
            (delivered, snap)
        });
        let total_delivered: usize = out.results.iter().map(|(d, _)| d).sum();
        assert_eq!(total_delivered, k);

        // Reference semantics.
        let mut expect = vec![f64::NAN; n];
        for (s, d) in src_idx.iter().zip(&dst_idx) {
            expect[*d] = *s as f64 * 2.0;
        }
        for (_, snap) in out.results {
            for (gi, v) in snap {
                if expect[gi].is_nan() {
                    assert!(v.is_nan(), "dst[{gi}] written unexpectedly");
                } else {
                    assert_eq!(v, expect[gi], "dst[{gi}]");
                }
            }
        }
    }
}

#[test]
fn coop_equals_dup_motion() {
    let mut rng = Rng::seed_from_u64(0xdeed);
    for _case in 0..12 {
        let n = 8 + rng.gen_range(32);
        let p = 2 + rng.gen_range(3);
        let seed = rng.next_u64() % 500;
        let k = n / 2;
        let src_idx = selection(n, k, seed);
        let dst_idx = selection(n, k, seed ^ 999);
        let (si, di) = (src_idx, dst_idx);
        let out = test_world(p).run(move |ep| {
            let g = Group::world(p);
            let src = {
                let mut comm = Comm::new(ep, g.clone());
                IrregArray::create(&mut comm, n, Partition::Random(seed), |gi| gi as f64)
            };
            let dst = {
                let mut comm = Comm::new(ep, g.clone());
                IrregArray::create(&mut comm, n, Partition::Cyclic, |_| 0.0)
            };
            let sset = SetOfRegions::single(IndexSet::new(si.clone()));
            let dset = SetOfRegions::single(IndexSet::new(di.clone()));
            let mut scheds = Vec::new();
            for method in [BuildMethod::Cooperation, BuildMethod::Duplication] {
                scheds.push(
                    compute_schedule(
                        ep,
                        &g,
                        &g,
                        Some(Side::new(&src, &sset)),
                        &g,
                        Some(Side::new(&dst, &dset)),
                        method,
                    )
                    .unwrap(),
                );
            }
            let a = &scheds[0];
            let b = &scheds[1];
            (
                a.sends == b.sends,
                a.recvs == b.recvs,
                a.local_pairs == b.local_pairs,
            )
        });
        for (s, r, l) in out.results {
            assert!(s && r && l);
        }
    }
}

#[test]
fn reverse_round_trip_restores_source() {
    let mut rng = Rng::seed_from_u64(0xfade);
    for _case in 0..12 {
        let n = 8 + rng.gen_range(24);
        let p = 1 + rng.gen_range(3);
        let seed = rng.next_u64() % 500;
        let k = (n / 2).max(1);
        let src_idx = selection(n, k, seed);
        let dst_idx = selection(n, k, seed ^ 77);
        let (si, di) = (src_idx, dst_idx);
        let out = test_world(p).run(move |ep| {
            let g = Group::world(p);
            let mut h = HpfArray::<f64>::new(&g, ep.rank(), HpfDist::block_1d(n, p));
            h.for_each_owned(|c, v| *v = 100.0 + c[0] as f64);
            let mut x = {
                let mut comm = Comm::new(ep, g.clone());
                IrregArray::create(&mut comm, n, Partition::Random(seed), |_| 0.0)
            };
            // HPF side: per-element sections in the chosen order.
            let sset = SetOfRegions::from_regions(
                si.iter()
                    .map(|&i| RegularSection::of_bounds(&[(i, i + 1)]))
                    .collect(),
            );
            let dset = SetOfRegions::single(IndexSet::new(di.clone()));
            let sched = compute_schedule(
                ep,
                &g,
                &g,
                Some(Side::new(&h, &sset)),
                &g,
                Some(Side::new(&x, &dset)),
                BuildMethod::Cooperation,
            )
            .unwrap();
            data_move(ep, &sched, &h, &mut x);
            // Perturb h, then restore it from x via the reversed schedule.
            let before: Vec<(usize, f64)> = (0..n)
                .filter(|&i| h.owns(&[i]))
                .map(|i| (i, h.get(&[i])))
                .collect();
            h.for_each_owned(|_, v| *v = -1.0);
            data_move(ep, &sched.reversed(), &x, &mut h);
            let after: Vec<(usize, f64)> = (0..n)
                .filter(|&i| h.owns(&[i]))
                .map(|i| (i, h.get(&[i])))
                .collect();
            let touched: Vec<usize> = si.clone();
            (before, after, touched)
        });
        for (before, after, touched) in out.results {
            for ((i, b), (j, a)) in before.into_iter().zip(after) {
                assert_eq!(i, j);
                if touched.contains(&i) {
                    assert_eq!(a, b, "restored h[{i}]");
                } else {
                    assert_eq!(a, -1.0, "untouched h[{i}]");
                }
            }
        }
    }
}

#[test]
fn hpf_owner_arithmetic_consistent() {
    let mut rng = Rng::seed_from_u64(0xabcd);
    let mut cases = 0;
    while cases < 24 {
        let n = 1 + rng.gen_range(199);
        let g = 1 + rng.gen_range(7);
        let chunk = 1 + rng.gen_range(4);
        let kind = match rng.gen_range(3) {
            0 => DistKind::Block,
            1 => DistKind::Cyclic(chunk),
            _ => DistKind::Collapsed,
        };
        let g = if matches!(kind, DistKind::Collapsed) {
            1
        } else {
            g
        };
        if matches!(kind, DistKind::Block) && n < g {
            continue;
        }
        cases += 1;
        let mut counts = vec![0usize; g];
        for x in 0..n {
            let o = kind.owner(n, g, x);
            assert!(o < g);
            let l = kind.local(n, g, x);
            assert!(l < kind.local_count(n, g, o), "x={x} owner={o} local={l}");
            counts[o] += 1;
        }
        for (c, &count) in counts.iter().enumerate() {
            assert_eq!(count, kind.local_count(n, g, c));
        }
    }
}

#[test]
fn regular_section_linearization_bijective() {
    let mut rng = Rng::seed_from_u64(0x600d);
    for _case in 0..24 {
        let (lo0, cnt0, st0) = (rng.gen_range(5), 1 + rng.gen_range(5), 1 + rng.gen_range(3));
        let (lo1, cnt1, st1) = (rng.gen_range(5), 1 + rng.gen_range(5), 1 + rng.gen_range(3));
        let sec = RegularSection::new(vec![
            meta_chaos::DimSlice::strided(lo0, lo0 + cnt0 * st0, st0),
            meta_chaos::DimSlice::strided(lo1, lo1 + cnt1 * st1, st1),
        ]);
        let mut seen = std::collections::HashSet::new();
        for k in 0..sec.len() {
            let c = sec.coords_of(k);
            assert_eq!(sec.position_of(&c), Some(k));
            assert!(seen.insert(c));
        }
        assert_eq!(seen.len(), sec.len());
    }
}

/// Run compression is lossless: an [`AddrRuns`] built from any address
/// list enumerates exactly that list, reports the same length, and
/// compresses a strided-but-regular list into few runs.
#[test]
fn addr_runs_roundtrip_random_lists() {
    let mut rng = Rng::seed_from_u64(0x1234);
    for _case in 0..50 {
        let len = rng.gen_range(200);
        let mut addrs = Vec::with_capacity(len);
        let mut cur = rng.gen_range(50);
        for _ in 0..len {
            // Mix of contiguous advances and jumps, both directions.
            cur = match rng.gen_range(4) {
                0 | 1 => cur + 1,
                2 => cur + 2 + rng.gen_range(10),
                _ => cur.saturating_sub(1 + rng.gen_range(7)),
            };
            addrs.push(cur);
        }
        let runs: AddrRuns = addrs.iter().copied().collect();
        assert_eq!(runs.len(), addrs.len());
        assert_eq!(runs.is_empty(), addrs.is_empty());
        let back: Vec<usize> = runs.iter().collect();
        assert_eq!(back, addrs);
    }
    // Fully contiguous list -> exactly one run.
    let runs: AddrRuns = (100..1100).collect();
    assert_eq!(runs.runs().len(), 1);
    assert_eq!(runs.runs()[0], (100, 1000));
    assert_eq!(runs.len(), 1000);
}
