//! Schedule-parity property test for the run-based inspector: for every
//! source→destination pair of the four libraries and several seeds, the
//! interval-arithmetic `compute_schedule` must produce a **byte-identical**
//! [`Schedule`] — same sends/recvs/local_pairs, same seq/epoch/elem_tag
//! provenance — as the element-wise `compute_schedule_reference`, and the
//! executed `data_move` must put exactly the same message counts and sizes
//! on the wire.
//!
//! Each build runs in its own fresh `World` so the per-thread schedule
//! sequence counters start from the same state and the seq numbers are
//! comparable across implementations.

use mcsim::group::{Comm, Group};
use mcsim::prelude::Endpoint;
use meta_chaos::build::{compute_schedule, compute_schedule_reference, BuildMethod};
use meta_chaos::datamove::data_move;
use meta_chaos::region::{IndexSet, RegularSection};
use meta_chaos::schedule::Schedule;
use meta_chaos::setof::SetOfRegions;
use meta_chaos::{McObject, Side};
use meta_chaos_repro::test_world;

use chaos::{IrregArray, Partition};
use hpf::{HpfArray, HpfDist};
use multiblock::MultiblockArray;
use tulip::DistributedCollection;

const N: usize = 48;
const P: usize = 4;
const SEEDS: [u64; 3] = [7, 19, 31];

/// Everything observable about one rank's schedule and the wire traffic
/// of executing it once.
#[derive(Debug, Clone, PartialEq)]
struct SchedDump {
    seq: u32,
    total_elems: usize,
    src_epoch: u64,
    dst_epoch: u64,
    elem_tag: u64,
    elem_size: u32,
    sends: Vec<(usize, Vec<(usize, usize)>)>,
    recvs: Vec<(usize, Vec<(usize, usize)>)>,
    local_pairs: Vec<(usize, usize, usize)>,
    /// `data_move` NetStats delta: messages sent to each peer.
    move_msgs_to: Vec<u64>,
    /// `data_move` NetStats delta: bytes sent to each peer.
    move_bytes_to: Vec<u64>,
}

fn dump(sched: &Schedule, move_msgs_to: Vec<u64>, move_bytes_to: Vec<u64>) -> SchedDump {
    SchedDump {
        seq: sched.seq(),
        total_elems: sched.total_elems,
        src_epoch: sched.src_epoch(),
        dst_epoch: sched.dst_epoch(),
        elem_tag: sched.elem_tag(),
        elem_size: sched.elem_size(),
        sends: sched
            .sends
            .iter()
            .map(|(p, a)| (*p, a.runs().to_vec()))
            .collect(),
        recvs: sched
            .recvs
            .iter()
            .map(|(p, a)| (*p, a.runs().to_vec()))
            .collect(),
        local_pairs: sched.local_pairs.runs().to_vec(),
        move_msgs_to,
        move_bytes_to,
    }
}

/// Seeded Fisher–Yates permutation of `0..N` (tiny LCG, no external RNG).
fn permutation(seed: u64) -> Vec<usize> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut v: Vec<usize> = (0..N).collect();
    for i in (1..N).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
    v
}

fn mk_multiblock(
    _ep: &mut Endpoint,
    g: &Group,
    rank: usize,
    _seed: u64,
) -> (MultiblockArray<f64>, SetOfRegions<RegularSection>) {
    let mut a = MultiblockArray::<f64>::new(g, rank, &[6, 8]);
    a.fill_with(|c| (c[0] * 8 + c[1]) as f64);
    (a, SetOfRegions::single(RegularSection::whole(&[6, 8])))
}

fn mk_hpf(
    _ep: &mut Endpoint,
    g: &Group,
    rank: usize,
    _seed: u64,
) -> (HpfArray<f64>, SetOfRegions<RegularSection>) {
    let mut h = HpfArray::<f64>::new(
        g,
        rank,
        HpfDist::new(vec![N], vec![hpf::DistKind::Cyclic(3)], vec![P]),
    );
    h.for_each_owned(|c, v| *v = c[0] as f64);
    (h, SetOfRegions::single(RegularSection::whole(&[N])))
}

fn mk_tulip(
    _ep: &mut Endpoint,
    g: &Group,
    rank: usize,
    seed: u64,
) -> (DistributedCollection<f64>, SetOfRegions<IndexSet>) {
    let mut c = DistributedCollection::<f64>::new(g, rank, N);
    c.apply(|gi, v| *v = gi as f64);
    (c, SetOfRegions::single(IndexSet::new(permutation(seed))))
}

fn mk_chaos(
    ep: &mut Endpoint,
    g: &Group,
    _rank: usize,
    seed: u64,
) -> (IrregArray<f64>, SetOfRegions<IndexSet>) {
    let x = {
        let mut comm = Comm::new(ep, g.clone());
        IrregArray::create(&mut comm, N, Partition::Random(seed), |gi| gi as f64)
    };
    (
        x,
        SetOfRegions::single(IndexSet::new(permutation(seed.wrapping_add(3)))),
    )
}

/// Build the same transfer through one inspector implementation and run
/// it once, returning every rank's schedule dump.
fn one_world<S, D, MS, MD>(
    mk_src: MS,
    mk_dst: MD,
    method: BuildMethod,
    seed: u64,
    reference: bool,
) -> Vec<SchedDump>
where
    S: McObject<f64> + 'static,
    D: McObject<f64> + 'static,
    MS: Fn(&mut Endpoint, &Group, usize, u64) -> (S, SetOfRegions<S::Region>) + Send + Sync,
    MD: Fn(&mut Endpoint, &Group, usize, u64) -> (D, SetOfRegions<D::Region>) + Send + Sync,
{
    test_world(P)
        .run(move |ep| {
            let g = Group::world(P);
            let (src, sset) = mk_src(ep, &g, ep.rank(), seed);
            let (mut dst, dset) = mk_dst(ep, &g, ep.rank(), seed.wrapping_add(17));
            let sched = if reference {
                compute_schedule_reference(
                    ep,
                    &g,
                    &g,
                    Some(Side::new(&src, &sset)),
                    &g,
                    Some(Side::new(&dst, &dset)),
                    method,
                )
            } else {
                compute_schedule(
                    ep,
                    &g,
                    &g,
                    Some(Side::new(&src, &sset)),
                    &g,
                    Some(Side::new(&dst, &dset)),
                    method,
                )
            }
            .expect("schedule builds");
            let before = ep.stats_snapshot();
            data_move(ep, &sched, &src, &mut dst);
            let delta = ep.stats_snapshot().since(&before);
            dump(&sched, delta.msgs_to.clone(), delta.bytes_to.clone())
        })
        .results
}

macro_rules! parity_case {
    ($name:ident, $mk_src:ident, $mk_dst:ident) => {
        #[test]
        fn $name() {
            for method in [BuildMethod::Cooperation, BuildMethod::Duplication] {
                for seed in SEEDS {
                    let runs = one_world($mk_src, $mk_dst, method, seed, false);
                    let refs = one_world($mk_src, $mk_dst, method, seed, true);
                    assert_eq!(runs.len(), refs.len());
                    for (rank, (a, b)) in runs.iter().zip(&refs).enumerate() {
                        assert_eq!(
                            a,
                            b,
                            "{}: rank {rank} diverges (seed {seed}, {method:?})",
                            stringify!($name)
                        );
                    }
                }
            }
        }
    };
}

parity_case!(multiblock_to_multiblock, mk_multiblock, mk_multiblock);
parity_case!(multiblock_to_hpf, mk_multiblock, mk_hpf);
parity_case!(multiblock_to_tulip, mk_multiblock, mk_tulip);
parity_case!(multiblock_to_chaos, mk_multiblock, mk_chaos);
parity_case!(hpf_to_multiblock, mk_hpf, mk_multiblock);
parity_case!(hpf_to_hpf, mk_hpf, mk_hpf);
parity_case!(hpf_to_tulip, mk_hpf, mk_tulip);
parity_case!(hpf_to_chaos, mk_hpf, mk_chaos);
parity_case!(tulip_to_multiblock, mk_tulip, mk_multiblock);
parity_case!(tulip_to_hpf, mk_tulip, mk_hpf);
parity_case!(tulip_to_tulip, mk_tulip, mk_tulip);
parity_case!(tulip_to_chaos, mk_tulip, mk_chaos);
parity_case!(chaos_to_multiblock, mk_chaos, mk_multiblock);
parity_case!(chaos_to_hpf, mk_chaos, mk_hpf);
parity_case!(chaos_to_tulip, mk_chaos, mk_tulip);
parity_case!(chaos_to_chaos, mk_chaos, mk_chaos);
