//! Two separately running data-parallel programs coupled by Meta-Chaos
//! (paper §4.3 Figure 9 and §5.2): cross-program schedule construction,
//! send/receive halves, schedule symmetry, and the named-port coupler.

use mcsim::group::{Comm, Group};
use meta_chaos::build::{compute_schedule, BuildMethod};
use meta_chaos::coupling::Coupler;
use meta_chaos::datamove::{data_move_recv, data_move_send};
use meta_chaos::region::{IndexSet, RegularSection};
use meta_chaos::setof::SetOfRegions;
use meta_chaos::Side;
use meta_chaos_repro::test_world;

use chaos::{IrregArray, Partition};
use hpf::{HpfArray, HpfDist};
use multiblock::MultiblockArray;

/// The paper's Figure 9: two HPF programs, B[49:99)x[49:99) -> A[0:50)x[9:59).
#[test]
fn fig9_hpf_to_hpf_across_programs() {
    let (pa, pb) = (3usize, 2usize);
    let out = test_world(pa + pb).run(move |ep| {
        let (src_prog, dst_prog, un) = Group::split_two(pa, pb, 32);
        let sset = SetOfRegions::single(RegularSection::of_bounds(&[(49, 99), (49, 99)]));
        let dset = SetOfRegions::single(RegularSection::of_bounds(&[(0, 50), (9, 59)]));
        if src_prog.contains(ep.rank()) {
            let mut b =
                HpfArray::<f64>::new(&src_prog, ep.rank(), HpfDist::block_block(200, 100, 3, 1));
            b.for_each_owned(|c, v| *v = (c[0] * 1000 + c[1]) as f64);
            let sched = compute_schedule::<f64, HpfArray<f64>, HpfArray<f64>>(
                ep,
                &un,
                &src_prog,
                Some(Side::new(&b, &sset)),
                &dst_prog,
                None,
                BuildMethod::Cooperation,
            )
            .unwrap();
            data_move_send(ep, &sched, &b).unwrap();
            Vec::new()
        } else {
            let mut a =
                HpfArray::<f64>::new(&dst_prog, ep.rank(), HpfDist::block_block(50, 60, 2, 1));
            let sched = compute_schedule::<f64, HpfArray<f64>, HpfArray<f64>>(
                ep,
                &un,
                &src_prog,
                None,
                &dst_prog,
                Some(Side::new(&a, &dset)),
                BuildMethod::Cooperation,
            )
            .unwrap();
            data_move_recv(ep, &sched, &mut a).unwrap();
            let mut got = Vec::new();
            for i in 0..50 {
                for j in 0..60 {
                    if a.owns(&[i, j]) {
                        got.push((i, j, a.get(&[i, j])));
                    }
                }
            }
            got
        }
    });
    for vals in &out.results[3..] {
        for &(i, j, v) in vals {
            let expect = if (9..59).contains(&j) {
                ((i + 49) * 1000 + (j - 9 + 49)) as f64
            } else {
                0.0
            };
            assert_eq!(v, expect, "A[{i}][{j}]");
        }
    }
}

/// Peer-to-peer coupling with the named-port registry, including the
/// symmetric reverse direction — the shipboard-fire-style exchange loop.
#[test]
fn coupler_ports_and_reverse_flow() {
    let n = 30usize;
    let steps = 3usize;
    let out = test_world(4).run(move |ep| {
        let (pa, pb, un) = Group::split_two(2, 2, 32);
        let set_all: SetOfRegions<RegularSection> =
            SetOfRegions::single(RegularSection::whole(&[n]));
        let iset: SetOfRegions<IndexSet> = SetOfRegions::single(IndexSet::new((0..n).collect()));
        if pa.contains(ep.rank()) {
            // Program A: a block vector (multiblock 1-D).
            let mut v = MultiblockArray::<f64>::new(&pa, ep.rank(), &[n]);
            v.fill_with(|c| c[0] as f64);
            let sched = compute_schedule::<f64, MultiblockArray<f64>, IrregArray<f64>>(
                ep,
                &un,
                &pa,
                Some(Side::new(&v, &set_all)),
                &pb,
                None,
                BuildMethod::Cooperation,
            )
            .unwrap();
            let mut ports = Coupler::new();
            ports.bind("field", sched);
            for _ in 0..steps {
                // Send the field over, receive the updated field back.
                ports.put(ep, "field", &v).unwrap();
                ports.get_reverse(ep, "field", &mut v).unwrap();
            }
            let boxx = v.my_box();
            (boxx[0].0..boxx[0].1).map(|x| (x, v.get(&[x]))).collect()
        } else {
            // Program B: the same field, irregularly distributed.
            let mut w = {
                let mut comm = Comm::new(ep, pb.clone());
                IrregArray::create(&mut comm, n, Partition::Random(13), |_| 0.0)
            };
            let sched = compute_schedule::<f64, MultiblockArray<f64>, IrregArray<f64>>(
                ep,
                &un,
                &pa,
                None,
                &pb,
                Some(Side::new(&w, &iset)),
                BuildMethod::Cooperation,
            )
            .unwrap();
            let mut ports = Coupler::new();
            ports.bind("field", sched);
            for _ in 0..steps {
                ports.get(ep, "field", &mut w).unwrap();
                // "Physics": increment every point, then return it.
                for v in w.local_mut() {
                    *v += 1.0;
                }
                ports.put_reverse(ep, "field", &w).unwrap();
            }
            Vec::new()
        }
    });
    // After `steps` round trips each point gained +1 per step.
    for vals in &out.results[..2] {
        for &(x, v) in vals {
            assert_eq!(v, x as f64 + steps as f64, "v[{x}]");
        }
    }
}

/// Cross-program duplication uses the descriptor-exchange path; for
/// regular descriptors this is cheap and must agree with cooperation.
#[test]
fn cross_program_duplication_matches_cooperation() {
    let n = 24usize;
    for method in [BuildMethod::Cooperation, BuildMethod::Duplication] {
        let out = test_world(3).run(move |ep| {
            let (pa, pb, un) = Group::split_two(1, 2, 32);
            let set: SetOfRegions<RegularSection> =
                SetOfRegions::single(RegularSection::whole(&[n]));
            if pa.contains(ep.rank()) {
                let mut v = MultiblockArray::<f64>::new(&pa, ep.rank(), &[n]);
                v.fill_with(|c| 7.0 + c[0] as f64);
                let sched = compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                    ep,
                    &un,
                    &pa,
                    Some(Side::new(&v, &set)),
                    &pb,
                    None,
                    method,
                )
                .unwrap();
                data_move_send(ep, &sched, &v).unwrap();
                Vec::new()
            } else {
                let mut h = HpfArray::<f64>::new(
                    &pb,
                    ep.rank(),
                    HpfDist::new(vec![n], vec![hpf::DistKind::Cyclic(2)], vec![2]),
                );
                let sched = compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                    ep,
                    &un,
                    &pa,
                    None,
                    &pb,
                    Some(Side::new(&h, &set)),
                    method,
                )
                .unwrap();
                data_move_recv(ep, &sched, &mut h).unwrap();
                (0..n)
                    .filter(|&x| h.owns(&[x]))
                    .map(|x| (x, h.get(&[x])))
                    .collect::<Vec<_>>()
            }
        });
        for vals in &out.results[1..] {
            for &(x, v) in vals {
                assert_eq!(v, 7.0 + x as f64, "{method:?} h[{x}]");
            }
        }
    }
}

/// Length mismatches across programs are reported consistently everywhere.
#[test]
fn cross_program_length_mismatch() {
    let out = test_world(2).run(|ep| {
        let (pa, pb, un) = Group::split_two(1, 1, 32);
        if pa.contains(ep.rank()) {
            let v = MultiblockArray::<f64>::new(&pa, ep.rank(), &[10]);
            let set = SetOfRegions::single(RegularSection::whole(&[10]));
            compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                ep,
                &un,
                &pa,
                Some(Side::new(&v, &set)),
                &pb,
                None,
                BuildMethod::Cooperation,
            )
            .unwrap_err()
        } else {
            let h = HpfArray::<f64>::new(&pb, ep.rank(), HpfDist::block_1d(8, 1));
            let set = SetOfRegions::single(RegularSection::whole(&[8]));
            compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                ep,
                &un,
                &pa,
                None,
                &pb,
                Some(Side::new(&h, &set)),
                BuildMethod::Cooperation,
            )
            .unwrap_err()
        }
    });
    for e in out.results {
        assert_eq!(e, meta_chaos::McError::LengthMismatch { src: 10, dst: 8 });
    }
}
