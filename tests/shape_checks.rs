//! Shape checks: the paper's qualitative claims, asserted at reduced
//! problem sizes so the suite stays fast.  The full-size reproductions
//! live in `crates/bench/benches/` (see EXPERIMENTS.md).

use bench::clientserver::{break_even, client_server};
use bench::meshes::{table1, table2, table34};
use bench::regular::table5;

#[test]
fn table1_shape_executor_scales() {
    let r2 = table1(2, 48, 2, 2);
    let r8 = table1(8, 48, 2, 2);
    assert!(r8.executor_ms < r2.executor_ms);
    assert!(r8.inspector_ms < r2.inspector_ms);
}

#[test]
fn table2_shape_methods() {
    let r = table2(4, 64);
    // Duplication ≈ 2× cooperation (second dereference + descriptor).
    assert!(r.dup_sched_ms > 1.4 * r.coop_sched_ms);
    // Cooperation tracks the native Chaos build.
    assert!(r.coop_sched_ms < 1.6 * r.chaos_sched_ms);
    assert!(r.coop_sched_ms > 0.6 * r.chaos_sched_ms);
    // Meta-Chaos copies are faster (no extra copy/indirection).
    assert!(r.coop_copy_ms < r.chaos_copy_ms);
}

#[test]
fn table34_shape_scaling() {
    // Build time scales with the irregular side, not the regular side.
    let c22 = table34(2, 2, 48);
    let c24 = table34(2, 4, 48);
    let c42 = table34(4, 2, 48);
    assert!(
        c24.sched_ms < 0.8 * c22.sched_ms,
        "more irregular procs must speed the build: {} vs {}",
        c24.sched_ms,
        c22.sched_ms
    );
    let rel = (c42.sched_ms - c22.sched_ms).abs() / c22.sched_ms;
    assert!(
        rel < 0.25,
        "regular procs should barely matter: {} vs {}",
        c42.sched_ms,
        c22.sched_ms
    );
    // Copy time is limited by the smaller program.  Compare at a mesh
    // large enough that payload dominates the transactional session
    // handshake (manifest + verdict frames are a fixed per-pair cost,
    // and the 4x4 coupling has 4x the pairs of the 2x2 one).
    let c22_big = table34(2, 2, 96);
    let c44 = table34(4, 4, 96);
    assert!(c44.copy_ms < c22_big.copy_ms);
}

#[test]
fn table5_shape_ordering() {
    let r = table5(4, 200);
    assert!(r.parti_sched_ms <= r.dup_sched_ms);
    assert!(r.dup_sched_ms < r.coop_sched_ms);
    // Copies are essentially the same for all three methods.
    let max = r.parti_copy_ms.max(r.coop_copy_ms).max(r.dup_copy_ms);
    let min = r.parti_copy_ms.min(r.coop_copy_ms).min(r.dup_copy_ms);
    assert!(max - min < 0.15 * max + 1e-9);
}

#[test]
fn client_server_shape() {
    // The matrix transfer dominates a single vector round trip, and
    // per-vector costs grow with the server size while compute shrinks.
    let small = client_server(1, 2, 192, 1);
    let big = client_server(1, 8, 192, 1);
    assert!(small.matrix_ms > small.vector_ms);
    assert!(big.server_ms < small.server_ms);
    assert!(big.vector_ms > small.vector_ms);
    // Results are identical regardless of the server size.
    assert!((small.checksum - big.checksum).abs() < 1e-9);
}

#[test]
fn break_even_improves_with_servers() {
    let be4 = break_even(1, 4, 384).expect("4-server break-even exists");
    let be8 = break_even(1, 8, 384).expect("8-server break-even exists");
    assert!(
        be8 <= be4,
        "more servers should amortize faster: {be8} vs {be4}"
    );
}
