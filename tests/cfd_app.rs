//! End-to-end test of the paper's motivating application (Figure 1): a
//! time-step loop sweeping a structured mesh (Multiblock Parti) and an
//! unstructured mesh (Chaos), exchanging boundary data through Meta-Chaos
//! between the sweeps.
//!
//! The same computation is run three ways and must produce *identical*
//! results:
//!
//! 1. sequentially (plain Rust reference),
//! 2. as one SPMD program using both libraries,
//! 3. as two separate programs coupled by Meta-Chaos.

use mcsim::group::{Comm, Group};
use meta_chaos::build::{compute_schedule, BuildMethod};
use meta_chaos::datamove::{data_move, data_move_recv, data_move_send};
use meta_chaos::region::{IndexSet, RegularSection};
use meta_chaos::setof::SetOfRegions;
use meta_chaos::Side;
use meta_chaos_repro::test_world;

use chaos::{IrregArray, IrregularSweep, Partition};
use multiblock::sweep::RegularSweep;
use multiblock::MultiblockArray;

const SIDE: usize = 12;
const NODES: usize = SIDE * SIDE;
const STEPS: usize = 3;

/// Boundary mapping: mesh point (i,j) <-> irregular node perm(i*SIDE+j).
fn mapping() -> Vec<usize> {
    (0..NODES).map(|k| (k * 29 + 3) % NODES).collect() // 29 coprime to 144
}

fn edges() -> Vec<(usize, usize)> {
    (0..2 * NODES)
        .map(|e| ((e * 13 + 5) % NODES, (e * 31 + 7) % NODES))
        .collect()
}

fn init_mesh(i: usize, j: usize) -> f64 {
    ((i * 7 + j * 3) % 11) as f64
}

/// Plain sequential reference of the Figure-1 loop.
fn reference() -> Vec<f64> {
    let perm = mapping();
    let edge_list = edges();
    let mut a: Vec<Vec<f64>> = (0..SIDE)
        .map(|i| (0..SIDE).map(|j| init_mesh(i, j)).collect())
        .collect();
    let mut x = vec![0.0f64; NODES];
    let mut y = vec![0.0f64; NODES];
    for _ in 0..STEPS {
        // Loop 1: structured sweep (Jacobi, scaled by 1/4).
        let old = a.clone();
        for i in 1..SIDE - 1 {
            for j in 1..SIDE - 1 {
                a[i][j] = 0.25 * (old[i][j - 1] + old[i - 1][j] + old[i + 1][j] + old[i][j + 1]);
            }
        }
        // Loop 2: regular -> irregular boundary exchange.
        for k in 0..NODES {
            x[perm[k]] = a[k / SIDE][k % SIDE];
        }
        // Loop 3: unstructured sweep (accumulating).
        for &(u, v) in &edge_list {
            let c = 0.25 * (x[u] + x[v]);
            y[u] += c;
            y[v] += c;
        }
        // Loop 4: irregular -> regular exchange (of y this time, so the
        // meshes genuinely interact across steps).
        for k in 0..NODES {
            a[k / SIDE][k % SIDE] = y[perm[k]];
        }
    }
    // Flattened final mesh.
    (0..NODES).map(|k| a[k / SIDE][k % SIDE]).collect()
}

/// One SPMD program using both libraries.
fn one_program(p: usize) -> Vec<f64> {
    let out = test_world(p).run(move |ep| {
        let g = Group::world(p);
        let perm = mapping();
        let edge_list = edges();
        let mut a = MultiblockArray::<f64>::with_halo(&g, ep.rank(), &[SIDE, SIDE], 1);
        a.fill_with(|c| init_mesh(c[0], c[1]));
        let (x, mut y) = {
            let mut comm = Comm::new(ep, g.clone());
            let x = IrregArray::create(&mut comm, NODES, Partition::Random(5), |_| 0.0);
            let y = IrregArray::over_table(x.table().clone(), x.my_globals().to_vec(), |_| 0.0);
            (x, y)
        };
        let mut x = x;
        let me = g.local_of(ep.rank()).expect("member");
        let chunk = edge_list.len().div_ceil(p);
        let lo = (me * chunk).min(edge_list.len());
        let hi = ((me + 1) * chunk).min(edge_list.len());

        // Inspectors.
        let reg = RegularSweep::new(ep, &a);
        let irr = {
            let mut comm = Comm::new(ep, g.clone());
            IrregularSweep::new(&mut comm, x.table(), &edge_list[lo..hi])
        };
        let mesh_set = SetOfRegions::single(RegularSection::whole(&[SIDE, SIDE]));
        let node_set = SetOfRegions::single(IndexSet::new(perm.clone()));
        let to_irreg = compute_schedule(
            ep,
            &g,
            &g,
            Some(Side::new(&a, &mesh_set)),
            &g,
            Some(Side::new(&x, &node_set)),
            BuildMethod::Cooperation,
        )
        .unwrap();

        // Executor loop.
        for _ in 0..STEPS {
            reg.step(ep, &mut a);
            data_move(ep, &to_irreg, &a, &mut x);
            let mut comm = Comm::new(ep, g.clone());
            irr.step(&mut comm, &x, &mut y);
            // Loop 4 copies y back into the mesh through the reversed
            // schedule (y shares x's distribution).
            data_move(ep, &to_irreg.reversed(), &y, &mut a);
        }
        let boxx = a.my_box();
        let mut out = Vec::new();
        for i in boxx[0].0..boxx[0].1 {
            for j in boxx[1].0..boxx[1].1 {
                out.push((i * SIDE + j, a.get(&[i, j])));
            }
        }
        out
    });
    let mut flat = vec![f64::NAN; NODES];
    for vals in out.results {
        for (k, v) in vals {
            flat[k] = v;
        }
    }
    flat
}

/// Two separate programs coupled by Meta-Chaos.
fn two_programs(preg: usize, pirreg: usize) -> Vec<f64> {
    let out = test_world(preg + pirreg).run(move |ep| {
        let (pa, pb, un) = Group::split_two(preg, pirreg, 32);
        let perm = mapping();
        let edge_list = edges();
        let mesh_set = SetOfRegions::single(RegularSection::whole(&[SIDE, SIDE]));
        let node_set = SetOfRegions::single(IndexSet::new(perm.clone()));
        if pa.contains(ep.rank()) {
            // Structured-mesh program.
            let mut a = MultiblockArray::<f64>::with_halo(&pa, ep.rank(), &[SIDE, SIDE], 1);
            a.fill_with(|c| init_mesh(c[0], c[1]));
            let reg = RegularSweep::new(ep, &a);
            let sched = compute_schedule::<f64, MultiblockArray<f64>, IrregArray<f64>>(
                ep,
                &un,
                &pa,
                Some(Side::new(&a, &mesh_set)),
                &pb,
                None,
                BuildMethod::Cooperation,
            )
            .unwrap();
            for _ in 0..STEPS {
                reg.step(ep, &mut a);
                data_move_send(ep, &sched, &a).unwrap();
                data_move_recv(ep, &sched.reversed(), &mut a).unwrap();
            }
            let boxx = a.my_box();
            let mut out = Vec::new();
            for i in boxx[0].0..boxx[0].1 {
                for j in boxx[1].0..boxx[1].1 {
                    out.push((i * SIDE + j, a.get(&[i, j])));
                }
            }
            out
        } else {
            // Unstructured-mesh program.
            let (mut x, mut y, irr) = {
                let mut comm = Comm::new(ep, pb.clone());
                let x = IrregArray::create(&mut comm, NODES, Partition::Random(5), |_| 0.0);
                let y = IrregArray::over_table(x.table().clone(), x.my_globals().to_vec(), |_| 0.0);
                let me = comm.rank();
                let chunk = edge_list.len().div_ceil(pb.size());
                let lo = (me * chunk).min(edge_list.len());
                let hi = ((me + 1) * chunk).min(edge_list.len());
                let irr = IrregularSweep::new(&mut comm, x.table(), &edge_list[lo..hi]);
                (x, y, irr)
            };
            let sched = compute_schedule::<f64, MultiblockArray<f64>, IrregArray<f64>>(
                ep,
                &un,
                &pa,
                None,
                &pb,
                Some(Side::new(&x, &node_set)),
                BuildMethod::Cooperation,
            )
            .unwrap();
            for _ in 0..STEPS {
                data_move_recv(ep, &sched, &mut x).unwrap();
                let mut comm = Comm::new(ep, pb.clone());
                irr.step(&mut comm, &x, &mut y);
                data_move_send(ep, &sched.reversed(), &y).unwrap();
            }
            Vec::new()
        }
    });
    let mut flat = vec![f64::NAN; NODES];
    for vals in out.results {
        for (k, v) in vals {
            flat[k] = v;
        }
    }
    flat
}

#[test]
fn one_program_matches_sequential_reference() {
    let want = reference();
    for p in [1, 2, 4] {
        let got = one_program(p);
        for k in 0..NODES {
            assert!(
                (got[k] - want[k]).abs() < 1e-9,
                "p={p} mesh[{k}]: {} vs {}",
                got[k],
                want[k]
            );
        }
    }
}

#[test]
fn two_programs_match_sequential_reference() {
    let want = reference();
    for (preg, pirreg) in [(1, 2), (2, 2), (2, 3)] {
        let got = two_programs(preg, pirreg);
        for k in 0..NODES {
            assert!(
                (got[k] - want[k]).abs() < 1e-9,
                "({preg},{pirreg}) mesh[{k}]: {} vs {}",
                got[k],
                want[k]
            );
        }
    }
}
