//! Robustness properties, run as seeded deterministic loops: hostile wire
//! input never panics, distribution arithmetic round-trips under random
//! parameters, HPF shifts agree with their sequential semantics, and
//! communication traces account for every message.

use mcsim::group::Group;
use mcsim::rng::Rng;
use mcsim::trace::summarize;
use mcsim::wire::Wire;
use meta_chaos_repro::test_world;

use hpf::{cshift, HpfArray, HpfDist};
use multiblock::{BlockDist, ProcGrid};

/// Decoding arbitrary bytes must fail cleanly, never panic or
/// over-allocate.
#[test]
fn wire_decode_never_panics() {
    let mut rng = Rng::seed_from_u64(0xbad_b17e5);
    for _case in 0..64 {
        let len = rng.gen_range(64);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = Vec::<f64>::from_bytes(&bytes);
        let _ = Vec::<u32>::from_bytes(&bytes);
        let _ = String::from_bytes(&bytes);
        let _ = Vec::<(usize, u32)>::from_bytes(&bytes);
        let _ = Option::<Vec<u64>>::from_bytes(&bytes);
        let _ = meta_chaos::region::RegularSection::from_bytes(&bytes);
        let _ = meta_chaos::region::IndexSet::from_bytes(&bytes);
        let _ = meta_chaos::schedule::AddrRuns::from_bytes(&bytes);
        let _ = multiblock::BlockDesc::from_bytes(&bytes);
        let _ = chaos::IrregDesc::from_bytes(&bytes);
        let _ = hpf::HpfDesc::from_bytes(&bytes);
        let _ = tulip::TulipDesc::from_bytes(&bytes);
    }
}

/// Every wire value must survive an encode/decode round trip.
#[test]
fn wire_roundtrip_structured() {
    let mut rng = Rng::seed_from_u64(0x0471);
    for _case in 0..64 {
        let len = rng.gen_range(20);
        let v: Vec<(u32, f64)> = (0..len)
            .map(|_| {
                let bits = rng.next_u64();
                (rng.next_u64() as u32, f64::from_bits(bits))
            })
            .collect();
        let b = v.to_bytes();
        let back = Vec::<(u32, f64)>::from_bytes(&b).unwrap();
        assert_eq!(back.len(), v.len());
        for ((a1, b1), (a2, b2)) in v.iter().zip(&back) {
            assert_eq!(a1, a2);
            assert!((b1 == b2) || (b1.is_nan() && b2.is_nan()));
        }
        let slen = rng.gen_range(25);
        let owned: String = (0..slen)
            .map(|_| {
                let alphabet = b"abcdefghijklmnopqrstuvwxyzABC 0123456789";
                alphabet[rng.gen_range(alphabet.len())] as char
            })
            .collect();
        assert_eq!(String::from_bytes(&owned.to_bytes()).unwrap(), owned);
    }
}

/// Block distribution owner/local-address arithmetic must be a bijection
/// between owned coordinates and dense local addresses.
#[test]
fn block_dist_addressing_bijective() {
    let mut rng = Rng::seed_from_u64(0xb10c);
    let mut cases = 0;
    while cases < 32 {
        let (n0, n1) = (1 + rng.gen_range(11), 1 + rng.gen_range(11));
        let (g0, g1) = (1 + rng.gen_range(3), 1 + rng.gen_range(3));
        let halo = rng.gen_range(3);
        if n0 < g0 || n1 < g1 {
            continue;
        }
        cases += 1;
        let d = BlockDist::new(vec![n0, n1], ProcGrid::new(vec![g0, g1]), halo);
        for rank in 0..g0 * g1 {
            let mut seen = std::collections::HashSet::new();
            let boxx = d.owned_box(rank);
            for i in boxx[0].0..boxx[0].1 {
                for j in boxx[1].0..boxx[1].1 {
                    assert_eq!(d.owner(&[i, j]), rank);
                    let a = d.local_addr(rank, &[i, j]);
                    assert!(a < d.local_alloc_len(rank));
                    assert!(seen.insert(a), "addr {a} reused");
                    assert_eq!(d.global_coords(rank, a), Some(vec![i, j]));
                }
            }
        }
    }
}

/// Parallel CSHIFT equals the sequential definition for random sizes,
/// shifts and process counts.
#[test]
fn cshift_matches_sequential() {
    let mut rng = Rng::seed_from_u64(0x5317);
    let mut cases = 0;
    while cases < 24 {
        let n = 2 + rng.gen_range(18);
        let p = 1 + rng.gen_range(3);
        let shift = rng.gen_range(51) as isize - 25;
        if n < p {
            continue;
        }
        cases += 1;
        let out = test_world(p).run(move |ep| {
            let g = Group::world(p);
            let mut a = HpfArray::<f64>::new(&g, ep.rank(), HpfDist::block_1d(n, p));
            a.for_each_owned(|c, v| *v = (c[0] * 3) as f64);
            let r = cshift(ep, &g, &a, 0, shift);
            (0..n)
                .filter(|&x| r.owns(&[x]))
                .map(|x| (x, r.get(&[x])))
                .collect::<Vec<_>>()
        });
        for vals in out.results {
            for (i, v) in vals {
                let want = ((i as isize + shift).rem_euclid(n as isize) * 3) as f64;
                assert_eq!(v, want, "n={n} p={p} shift={shift} r[{i}]");
            }
        }
    }
}

/// Trace accounting: sends on one side equal receives on the other, with
/// matching byte totals, through a full Meta-Chaos transfer.
#[test]
fn traces_balance_across_ranks() {
    use chaos::{IrregArray, Partition};
    use mcsim::group::Comm;
    use meta_chaos::build::{compute_schedule, BuildMethod};
    use meta_chaos::datamove::data_move;
    use meta_chaos::region::{IndexSet, RegularSection};
    use meta_chaos::setof::SetOfRegions;
    use meta_chaos::Side;
    use multiblock::MultiblockArray;

    let n = 36;
    let out = test_world(3).run(move |ep| {
        ep.enable_trace();
        let g = Group::world(3);
        let mut a = MultiblockArray::<f64>::new(&g, ep.rank(), &[n]);
        a.fill_with(|c| c[0] as f64);
        let mut x = {
            let mut comm = Comm::new(ep, g.clone());
            IrregArray::create(&mut comm, n, Partition::Random(5), |_| 0.0)
        };
        let sset = SetOfRegions::single(RegularSection::whole(&[n]));
        let dset = SetOfRegions::single(IndexSet::new((0..n).rev().collect()));
        let sched = compute_schedule(
            ep,
            &g,
            &g,
            Some(Side::new(&a, &sset)),
            &g,
            Some(Side::new(&x, &dset)),
            BuildMethod::Cooperation,
        )
        .unwrap();
        data_move(ep, &sched, &a, &mut x);
        summarize(&ep.take_trace())
    });
    let sends: usize = out.results.iter().map(|s| s.sends).sum();
    let recvs: usize = out.results.iter().map(|s| s.recvs).sum();
    let bytes_out: usize = out.results.iter().map(|s| s.bytes_out).sum();
    let bytes_in: usize = out.results.iter().map(|s| s.bytes_in).sum();
    assert_eq!(sends, recvs, "every send must be received");
    assert_eq!(bytes_out, bytes_in, "every byte must be received");
    assert!(sends > 0);
}
