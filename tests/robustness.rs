//! Robustness properties, run as seeded deterministic loops: hostile wire
//! input never panics, distribution arithmetic round-trips under random
//! parameters, HPF shifts agree with their sequential semantics, and
//! communication traces account for every message.
//!
//! Each loop seeds its RNG from [`mcsim::test_seed`] XOR a per-test
//! constant, so the whole suite re-rolls under an `MC_FAULT_SEED`
//! override (the same knob the fault matrix and the fuzz driver honor)
//! while staying deterministic for any fixed value.

use mcsim::group::Group;
use mcsim::rng::Rng;
use mcsim::trace::summarize;
use mcsim::wire::Wire;
use meta_chaos_repro::test_world;

use hpf::{cshift, HpfArray, HpfDist};
use multiblock::{BlockDist, ProcGrid};

/// Decoding arbitrary bytes must fail cleanly, never panic or
/// over-allocate.
#[test]
fn wire_decode_never_panics() {
    let mut rng = Rng::seed_from_u64(mcsim::test_seed() ^ 0xbad_b17e5);
    for _case in 0..64 {
        let len = rng.gen_range(64);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = Vec::<f64>::from_bytes(&bytes);
        let _ = Vec::<u32>::from_bytes(&bytes);
        let _ = String::from_bytes(&bytes);
        let _ = Vec::<(usize, u32)>::from_bytes(&bytes);
        let _ = Option::<Vec<u64>>::from_bytes(&bytes);
        let _ = meta_chaos::region::RegularSection::from_bytes(&bytes);
        let _ = meta_chaos::region::IndexSet::from_bytes(&bytes);
        let _ = meta_chaos::schedule::AddrRuns::from_bytes(&bytes);
        let _ = multiblock::BlockDesc::from_bytes(&bytes);
        let _ = chaos::IrregDesc::from_bytes(&bytes);
        let _ = hpf::HpfDesc::from_bytes(&bytes);
        let _ = tulip::TulipDesc::from_bytes(&bytes);
    }
}

/// Every wire value must survive an encode/decode round trip.
#[test]
fn wire_roundtrip_structured() {
    let mut rng = Rng::seed_from_u64(mcsim::test_seed() ^ 0x0471);
    for _case in 0..64 {
        let len = rng.gen_range(20);
        let v: Vec<(u32, f64)> = (0..len)
            .map(|_| {
                let bits = rng.next_u64();
                (rng.next_u64() as u32, f64::from_bits(bits))
            })
            .collect();
        let b = v.to_bytes();
        let back = Vec::<(u32, f64)>::from_bytes(&b).unwrap();
        assert_eq!(back.len(), v.len());
        for ((a1, b1), (a2, b2)) in v.iter().zip(&back) {
            assert_eq!(a1, a2);
            assert!((b1 == b2) || (b1.is_nan() && b2.is_nan()));
        }
        let slen = rng.gen_range(25);
        let owned: String = (0..slen)
            .map(|_| {
                let alphabet = b"abcdefghijklmnopqrstuvwxyzABC 0123456789";
                alphabet[rng.gen_range(alphabet.len())] as char
            })
            .collect();
        assert_eq!(String::from_bytes(&owned.to_bytes()).unwrap(), owned);
    }
}

/// Block distribution owner/local-address arithmetic must be a bijection
/// between owned coordinates and dense local addresses.
#[test]
fn block_dist_addressing_bijective() {
    let mut rng = Rng::seed_from_u64(mcsim::test_seed() ^ 0xb10c);
    let mut cases = 0;
    while cases < 32 {
        let (n0, n1) = (1 + rng.gen_range(11), 1 + rng.gen_range(11));
        let (g0, g1) = (1 + rng.gen_range(3), 1 + rng.gen_range(3));
        let halo = rng.gen_range(3);
        if n0 < g0 || n1 < g1 {
            continue;
        }
        cases += 1;
        let d = BlockDist::new(vec![n0, n1], ProcGrid::new(vec![g0, g1]), halo);
        for rank in 0..g0 * g1 {
            let mut seen = std::collections::HashSet::new();
            let boxx = d.owned_box(rank);
            for i in boxx[0].0..boxx[0].1 {
                for j in boxx[1].0..boxx[1].1 {
                    assert_eq!(d.owner(&[i, j]), rank);
                    let a = d.local_addr(rank, &[i, j]);
                    assert!(a < d.local_alloc_len(rank));
                    assert!(seen.insert(a), "addr {a} reused");
                    assert_eq!(d.global_coords(rank, a), Some(vec![i, j]));
                }
            }
        }
    }
}

/// Parallel CSHIFT equals the sequential definition for random sizes,
/// shifts and process counts.
#[test]
fn cshift_matches_sequential() {
    let mut rng = Rng::seed_from_u64(mcsim::test_seed() ^ 0x5317);
    let mut cases = 0;
    while cases < 24 {
        let n = 2 + rng.gen_range(18);
        let p = 1 + rng.gen_range(3);
        let shift = rng.gen_range(51) as isize - 25;
        if n < p {
            continue;
        }
        cases += 1;
        let out = test_world(p).run(move |ep| {
            let g = Group::world(p);
            let mut a = HpfArray::<f64>::new(&g, ep.rank(), HpfDist::block_1d(n, p));
            a.for_each_owned(|c, v| *v = (c[0] * 3) as f64);
            let r = cshift(ep, &g, &a, 0, shift);
            (0..n)
                .filter(|&x| r.owns(&[x]))
                .map(|x| (x, r.get(&[x])))
                .collect::<Vec<_>>()
        });
        for vals in out.results {
            for (i, v) in vals {
                let want = ((i as isize + shift).rem_euclid(n as isize) * 3) as f64;
                assert_eq!(v, want, "n={n} p={p} shift={shift} r[{i}]");
            }
        }
    }
}

/// A peer that dies mid-transfer must poison its partners: every rank
/// either finishes its part or observes [`McError::PeerFailed`] — nobody
/// hangs, and the failing rank's own panic is reported, not propagated.
#[test]
fn peer_crash_mid_data_move_propagates_as_error() {
    use mcsim::group::Group;
    use meta_chaos::build::{compute_schedule, BuildMethod};
    use meta_chaos::datamove::{data_move_recv, data_move_send};
    use meta_chaos::region::RegularSection;
    use meta_chaos::setof::SetOfRegions;
    use meta_chaos::{McError, Side};
    use multiblock::MultiblockArray;

    let n = 256usize;
    let report = test_world(4).run_result(move |ep| {
        let (pa, pb, un) = Group::split_two(2, 2, 32);
        let set: SetOfRegions<RegularSection> = SetOfRegions::single(RegularSection::whole(&[n]));
        if pa.contains(ep.rank()) {
            let mut v = MultiblockArray::<f64>::new(&pa, ep.rank(), &[n]);
            v.fill_with(|c| c[0] as f64);
            let sched = compute_schedule::<f64, MultiblockArray<f64>, hpf::HpfArray<f64>>(
                ep,
                &un,
                &pa,
                Some(Side::new(&v, &set)),
                &pb,
                None,
                BuildMethod::Cooperation,
            )
            .unwrap();
            if ep.rank() == 1 {
                // Wait until the healthy pair 0 -> 2 has finished (so its
                // outcome cannot race this poison), then die before sending
                // this half — the paired receiver (rank 3) is left waiting.
                let _ = ep.recv(2, mcsim::Tag::user(77));
                panic!("boom: rank 1 gives up");
            }
            data_move_send(ep, &sched, &v)
        } else {
            let mut h = hpf::HpfArray::<f64>::new(&pb, ep.rank(), hpf::HpfDist::block_1d(n, 2));
            let sched = compute_schedule::<f64, MultiblockArray<f64>, hpf::HpfArray<f64>>(
                ep,
                &un,
                &pa,
                None,
                &pb,
                Some(Side::new(&h, &set)),
                BuildMethod::Cooperation,
            )
            .unwrap();
            let r = data_move_recv(ep, &sched, &mut h);
            if ep.rank() == 2 {
                // Tell rank 1 the healthy transfer is complete.
                ep.send(1, mcsim::Tag::user(77), Vec::new());
            }
            r
        }
    });
    // The faulty rank's own panic is captured, verbatim.
    match &report.outcomes[1] {
        Err(mcsim::SimError::PeerFailed { rank: 1, reason }) => {
            assert!(reason.contains("boom"), "got reason {reason:?}");
        }
        other => panic!("rank 1: expected its own panic, got {other:?}"),
    }
    // Its partner observed the failure as a value, not a hang or panic.
    match &report.outcomes[3] {
        Ok(Err(McError::PeerFailed { rank: 1, reason })) => {
            assert!(reason.contains("boom"), "got reason {reason:?}");
        }
        other => panic!("rank 3: expected PeerFailed {{rank: 1}}, got {other:?}"),
    }
    // The untouched pair 0 -> 2 completed its transfer.
    assert!(matches!(&report.outcomes[0], Ok(Ok(()))), "rank 0 failed");
    assert!(matches!(&report.outcomes[2], Ok(Ok(()))), "rank 2 failed");
}

/// A scripted crash from a [`FaultPlan`] fires at its virtual time and is
/// observed by the peer as a recoverable error.
#[test]
fn scripted_crash_fires_and_peer_recovers() {
    use mcsim::{FaultPlan, MachineModel, SimError, Tag, World};

    let t_crash = 1e-3;
    let report = World::with_model(2, MachineModel::sp2())
        .with_faults(FaultPlan::new(7).crash(1, t_crash))
        .run_result(move |ep| {
            let t = Tag::user(4);
            let me = ep.rank();
            let peer = 1 - me;
            // Ping-pong until the scripted crash kills rank 1; rank 0 then
            // sees the poison as a value on its result-returning receive.
            for i in 0..100_000 {
                if me == 0 || i > 0 {
                    ep.send(peer, t, vec![0u8; 64]);
                }
                match ep.recv_result(peer, t) {
                    Ok(_) => {}
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        });
    match &report.outcomes[1] {
        Err(SimError::PeerFailed { rank: 1, reason }) => {
            assert!(
                reason.contains("crashed by fault plan"),
                "got reason {reason:?}"
            );
        }
        other => panic!("rank 1: expected scripted crash, got {other:?}"),
    }
    match &report.outcomes[0] {
        Ok(Err(SimError::PeerFailed { rank: 1, .. })) => {}
        other => panic!("rank 0: expected PeerFailed {{rank: 1}}, got {other:?}"),
    }
    // The crash fired no earlier than scripted.
    assert!(report.clocks[1] >= t_crash);
}

/// `recv_timeout` semantics: a virtually-late message is left stashed and
/// reported as [`SimError::PeerTimeout`], after which a plain receive still
/// takes it; a peer that never sends at all trips the wall-clock liveness
/// cap instead of hanging.
#[test]
fn recv_timeout_virtual_deadline_and_liveness_cap() {
    use mcsim::{MachineModel, SimError, Tag, World};

    // Late message: rank 1 burns virtual time before sending, so the
    // arrival lands past rank 0's deadline.
    let out = World::with_model(2, MachineModel::sp2()).run(|ep| {
        let t = Tag::user(9);
        if ep.rank() == 1 {
            ep.charge(5e-3);
            ep.send(0, t, vec![1, 2, 3]);
            return (true, Vec::new());
        }
        let r = ep.recv_timeout(1, t, 1e-3);
        assert!(
            matches!(r, Err(SimError::PeerTimeout { rank: 1 })),
            "expected timeout, got {r:?}"
        );
        // The late message is still there for an undeadlined receive.
        let bytes = ep.recv(1, t);
        (false, bytes)
    });
    assert_eq!(out.results[0].1, vec![1, 2, 3]);

    // Never-sent: the virtual clock cannot advance on silence, so the
    // real-time liveness cap converts it into the same PeerTimeout.
    let out = World::with_model(2, MachineModel::sp2()).run(|ep| {
        if ep.rank() == 0 {
            let r = ep.recv_timeout(1, Tag::user(10), 1e-6);
            return matches!(r, Err(SimError::PeerTimeout { rank: 1 }));
        }
        true
    });
    assert!(out.results.iter().all(|&ok| ok));
}

/// Trace accounting: sends on one side equal receives on the other, with
/// matching byte totals, through a full Meta-Chaos transfer.
#[test]
fn traces_balance_across_ranks() {
    use chaos::{IrregArray, Partition};
    use mcsim::group::Comm;
    use meta_chaos::build::{compute_schedule, BuildMethod};
    use meta_chaos::datamove::data_move;
    use meta_chaos::region::{IndexSet, RegularSection};
    use meta_chaos::setof::SetOfRegions;
    use meta_chaos::Side;
    use multiblock::MultiblockArray;

    let n = 36;
    let out = test_world(3).run(move |ep| {
        ep.enable_trace();
        let g = Group::world(3);
        let mut a = MultiblockArray::<f64>::new(&g, ep.rank(), &[n]);
        a.fill_with(|c| c[0] as f64);
        let mut x = {
            let mut comm = Comm::new(ep, g.clone());
            IrregArray::create(&mut comm, n, Partition::Random(5), |_| 0.0)
        };
        let sset = SetOfRegions::single(RegularSection::whole(&[n]));
        let dset = SetOfRegions::single(IndexSet::new((0..n).rev().collect()));
        let sched = compute_schedule(
            ep,
            &g,
            &g,
            Some(Side::new(&a, &sset)),
            &g,
            Some(Side::new(&x, &dset)),
            BuildMethod::Cooperation,
        )
        .unwrap();
        data_move(ep, &sched, &a, &mut x);
        summarize(&ep.take_trace())
    });
    let sends: usize = out.results.iter().map(|s| s.sends).sum();
    let recvs: usize = out.results.iter().map(|s| s.recvs).sum();
    let bytes_out: usize = out.results.iter().map(|s| s.bytes_out).sum();
    let bytes_in: usize = out.results.iter().map(|s| s.bytes_in).sum();
    assert_eq!(sends, recvs, "every send must be received");
    assert_eq!(bytes_out, bytes_in, "every byte must be received");
    assert!(sends > 0);
}

/// A sender that outruns a tiny window must stall at the window edge,
/// resume as acks retire frames, and still deliver every byte in order —
/// under a 2-frame window, the stop-and-wait ablation (window of 1), and
/// the default config, all on the same payload.
#[test]
fn window_full_stall_blocks_then_drains_in_order() {
    use mcsim::reliable::{flush_send, reliable_recv, reliable_send, StreamTag};
    use mcsim::{MachineModel, ReliableConfig, World};

    let tiny = ReliableConfig {
        window_frames: 2,
        ..ReliableConfig::default()
    };
    for (label, cfg, must_stall) in [
        ("2-frame window", tiny, true),
        ("stop-and-wait", ReliableConfig::stop_and_wait(), true),
        ("default window", ReliableConfig::default(), false),
    ] {
        let msgs = 8usize;
        let bytes = 16usize << 10;
        let out = World::with_model(2, MachineModel::sp2())
            .with_reliable_config(cfg)
            .run(move |ep| {
                let st = StreamTag::new(52, 4);
                if ep.rank() == 0 {
                    for m in 0..msgs {
                        let mut b = ep.take_buf();
                        b.extend((0..bytes).map(|i| (m * 59 + i) as u8));
                        reliable_send(ep, 1, st, b).expect("stall send");
                    }
                    flush_send(ep, 1, st).expect("stall flush");
                } else {
                    for m in 0..msgs {
                        let b = reliable_recv(ep, 0, st).expect("stall recv");
                        assert_eq!(b.len(), bytes, "{m}: length");
                        assert!(
                            b.iter().enumerate().all(|(i, &x)| x == (m * 59 + i) as u8),
                            "message {m} must drain in order through the stall"
                        );
                        ep.recycle_buf(b);
                    }
                }
            });
        let f = &out.stats.faults;
        if must_stall {
            assert!(
                f.window_stalls > 0,
                "{label}: 8 frames through a tiny window must stall: {f:?}"
            );
        }
        assert!(
            f.window_advances > 0,
            "{label}: acks must advance the window: {f:?}"
        );
        assert_eq!(f.retransmits, 0, "{label}: fault-free run retransmits");
        assert_eq!(f.timeouts, 0, "{label}: fault-free run times out");
    }
}
