//! Misuse must fail loudly and helpfully: wrong-side data moves, ranks
//! outside the union, inconsistent Side options — plus a larger-world
//! smoke test exercising thread scaling.

use mcsim::group::{Comm, Group};
use meta_chaos::build::{compute_schedule, BuildMethod};
use meta_chaos::datamove::{data_move, data_move_recv, data_move_send};
use meta_chaos::error::McError;
use meta_chaos::region::{IndexSet, RegularSection};
use meta_chaos::setof::SetOfRegions;
use meta_chaos::Side;
use meta_chaos_repro::test_world;

use chaos::{IrregArray, Partition};
use multiblock::MultiblockArray;

fn build_two_program_sched(
    ep: &mut mcsim::Endpoint,
) -> (Group, Group, meta_chaos::Schedule, MultiblockArray<f64>) {
    let (pa, pb, un) = Group::split_two(1, 1, 32);
    let set = SetOfRegions::single(RegularSection::whole(&[8]));
    let a = MultiblockArray::<f64>::new(
        if pa.contains(ep.rank()) { &pa } else { &pb },
        ep.rank(),
        &[8],
    );
    let sched = if pa.contains(ep.rank()) {
        compute_schedule::<f64, MultiblockArray<f64>, MultiblockArray<f64>>(
            ep,
            &un,
            &pa,
            Some(Side::new(&a, &set)),
            &pb,
            None,
            BuildMethod::Cooperation,
        )
        .unwrap()
    } else {
        compute_schedule::<f64, MultiblockArray<f64>, MultiblockArray<f64>>(
            ep,
            &un,
            &pa,
            None,
            &pb,
            Some(Side::new(&a, &set)),
            BuildMethod::Cooperation,
        )
        .unwrap()
    };
    (pa, pb, sched, a)
}

#[test]
fn wrong_side_half_moves_return_errors() {
    test_world(2).run(|ep| {
        let (pa, _pb, sched, mut a) = build_two_program_sched(ep);
        if pa.contains(ep.rank()) {
            // This rank is the source: receiving here is the misuse.
            let err = data_move_recv(ep, &sched, &mut a).unwrap_err();
            assert!(
                matches!(err, McError::RecvSideHasSends { peers } if peers == 1),
                "unexpected error: {err}"
            );
        } else {
            // This rank is the destination: sending here is the misuse.
            let err = data_move_send(ep, &sched, &a).unwrap_err();
            assert!(
                matches!(err, McError::SendSideHasReceives { peers } if peers == 1),
                "unexpected error: {err}"
            );
        }
        // Neither guard performed any communication, so the (still valid)
        // schedule remains usable with the correct calls afterwards.
        if pa.contains(ep.rank()) {
            data_move_send(ep, &sched, &a).unwrap();
        } else {
            data_move_recv(ep, &sched, &mut a).unwrap();
        }
    });
}

#[test]
fn half_move_on_intra_program_schedule_is_rejected() {
    // A same-program copy produces local pairs; the half-move entry
    // points are for cross-program coupling only and must refuse it.
    test_world(1).run(|ep| {
        let g = Group::world(1);
        let mut a = MultiblockArray::<f64>::new(&g, ep.rank(), &[8]);
        let b = MultiblockArray::<f64>::new(&g, ep.rank(), &[8]);
        let set = SetOfRegions::single(RegularSection::whole(&[8]));
        let sched = compute_schedule(
            ep,
            &g,
            &g,
            Some(Side::new(&b, &set)),
            &g,
            Some(Side::new(&a, &set)),
            BuildMethod::Cooperation,
        )
        .unwrap();
        let err = data_move_send(ep, &sched, &b).unwrap_err();
        assert!(
            matches!(err, McError::LocalPairsInCrossProgramMove { pairs: 8 }),
            "unexpected error: {err}"
        );
        let err = data_move_recv(ep, &sched, &mut a).unwrap_err();
        assert!(
            matches!(err, McError::LocalPairsInCrossProgramMove { pairs: 8 }),
            "unexpected error: {err}"
        );
    });
}

#[test]
#[should_panic(expected = "src side must be Some")]
fn missing_side_is_rejected() {
    test_world(1).run(|ep| {
        let g = Group::world(1);
        let a = MultiblockArray::<f64>::new(&g, ep.rank(), &[4]);
        let set = SetOfRegions::single(RegularSection::whole(&[4]));
        let _ = compute_schedule::<f64, MultiblockArray<f64>, MultiblockArray<f64>>(
            ep,
            &g,
            &g,
            None, // should be Some: this rank is in the source program
            &g,
            Some(Side::new(&a, &set)),
            BuildMethod::Cooperation,
        );
    });
}

/// 24 simulated processors (heavily oversubscribed on small hosts): the
/// machinery must stay correct and deterministic at larger scale.
#[test]
fn twenty_four_rank_smoke() {
    let n = 240;
    let run = || {
        let out = test_world(24).run(move |ep| {
            let g = Group::world(24);
            let mut a = MultiblockArray::<f64>::new(&g, ep.rank(), &[n]);
            a.fill_with(|c| c[0] as f64);
            let mut x = {
                let mut comm = Comm::new(ep, g.clone());
                IrregArray::create(&mut comm, n, Partition::Random(3), |_| 0.0)
            };
            let sset = SetOfRegions::single(RegularSection::whole(&[n]));
            let dset = SetOfRegions::single(IndexSet::new((0..n).rev().collect()));
            let sched = compute_schedule(
                ep,
                &g,
                &g,
                Some(Side::new(&a, &sset)),
                &g,
                Some(Side::new(&x, &dset)),
                BuildMethod::Cooperation,
            )
            .unwrap();
            data_move(ep, &sched, &a, &mut x);
            let local: f64 = x
                .my_globals()
                .iter()
                .zip(x.local())
                .map(|(&g, &v)| v * (g as f64 + 1.0))
                .sum();
            let mut comm = Comm::new(ep, g.clone());
            comm.allreduce_sum(local)
        });
        out.results[0]
    };
    let want: f64 = (0..n).map(|g| (n - 1 - g) as f64 * (g as f64 + 1.0)).sum();
    let a = run();
    assert!((a - want).abs() < 1e-9);
    // Determinism across runs.
    assert_eq!(a.to_bits(), run().to_bits());
}

/// Direct coverage of the `locate_positions` interface for the two
/// communication-bearing libraries.
#[test]
fn locate_positions_agrees_with_deref() {
    use meta_chaos::McObject;
    test_world(3).run(|ep| {
        let g = Group::world(3);
        let x = {
            let mut comm = Comm::new(ep, g.clone());
            IrregArray::create(&mut comm, 21, Partition::Random(13), |gi| gi as f64)
        };
        let set = SetOfRegions::single(IndexSet::new((0..21).rev().collect()));
        let owned = {
            let mut comm = Comm::new(ep, g.clone());
            x.deref_owned(&mut comm, &set)
        };
        // Ask for ALL positions from every rank.
        let all: Vec<usize> = (0..21).collect();
        let locs = {
            let mut comm = Comm::new(ep, g.clone());
            x.locate_positions(&mut comm, &set, &all)
        };
        for &(pos, addr) in &owned {
            assert_eq!(locs[pos].rank, ep.rank());
            assert_eq!(locs[pos].addr, addr);
        }
        // And every position must resolve to SOME member of the program.
        assert!(locs.iter().all(|l| g.contains(l.rank)));
    });
}
