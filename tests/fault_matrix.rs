//! Fault-injection matrix for the reliable coupling path: every fault kind
//! (drop, duplicate, corrupt, delay), under both schedule builders and
//! several seeds, must leave a coupled transfer byte-identical to the
//! fault-free baseline with bounded, deterministic retries — and a
//! permanent partition must degrade into [`McError::PeerTimeout`] on both
//! sides instead of a hang.

use mcsim::stats::FaultStats;
use mcsim::{FaultPlan, FaultRates, MachineModel, World};
use meta_chaos::build::{compute_schedule, BuildMethod};
use meta_chaos::coupling::Coupler;
use meta_chaos::datamove::{data_move_recv, data_move_send};
use meta_chaos::region::RegularSection;
use meta_chaos::setof::SetOfRegions;
use meta_chaos::{McError, Side};

use hpf::{HpfArray, HpfDist};
use multiblock::MultiblockArray;

const N: usize = 4096;
const REPS: usize = 3;
/// The acceptance-mix rates are low (10%/5%/2%), so that test repeats the
/// transfer more times to make "at least one drop" a statistical certainty
/// (~48 faultable copies at 10% each).
const REPS_MIX: usize = 12;
const SEEDS: [u64; 3] = [11, 42, 20260805];

/// The deterministic (sender-side) slice of the fault counters: what the
/// injector did and how the senders reacted.  Receiver-side tail counters
/// (late duplicate frames, stale acks) depend on drain timing and are
/// deliberately excluded.
fn deterministic_counters(f: &FaultStats) -> (u64, u64, u64, u64, u64, u64) {
    (
        f.drops_injected,
        f.dups_injected,
        f.corrupts_injected,
        f.delays_injected,
        f.retransmits,
        f.timeouts,
    )
}

/// Two programs of 2 ranks each, coupled over the whole index space:
/// senders {0,1} hold a Multiblock vector, receivers {2,3} an HPF vector,
/// both block-distributed, so rank 0 feeds rank 2 and rank 1 feeds rank 3.
/// Runs `REPS` transfers and returns each receiver's `(index, value)`
/// pairs plus the aggregate fault counters.
fn coupled_transfer(
    plan: Option<FaultPlan>,
    method: BuildMethod,
) -> (Vec<Vec<(usize, f64)>>, FaultStats) {
    let mut world = World::with_model(4, MachineModel::sp2());
    if let Some(p) = plan {
        world = world.with_faults(p);
    }
    let out = world.run(move |ep| {
        let (pa, pb, un) = mcsim::group::Group::split_two(2, 2, 32);
        let set: SetOfRegions<RegularSection> = SetOfRegions::single(RegularSection::whole(&[N]));
        if pa.contains(ep.rank()) {
            let mut v = MultiblockArray::<f64>::new(&pa, ep.rank(), &[N]);
            v.fill_with(|c| (c[0] * 3 + 1) as f64);
            let sched = compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                ep,
                &un,
                &pa,
                Some(Side::new(&v, &set)),
                &pb,
                None,
                method,
            )
            .unwrap();
            for _ in 0..REPS {
                data_move_send(ep, &sched, &v).unwrap();
            }
            Vec::new()
        } else {
            let mut h = HpfArray::<f64>::new(&pb, ep.rank(), HpfDist::block_1d(N, 2));
            let sched = compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                ep,
                &un,
                &pa,
                None,
                &pb,
                Some(Side::new(&h, &set)),
                method,
            )
            .unwrap();
            for _ in 0..REPS {
                data_move_recv(ep, &sched, &mut h).unwrap();
            }
            (0..N)
                .filter(|&x| h.owns(&[x]))
                .map(|x| (x, h.get(&[x])))
                .collect::<Vec<_>>()
        }
    });
    (out.results, out.stats.faults)
}

fn assert_byte_identical(got: &[Vec<(usize, f64)>], baseline: &[Vec<(usize, f64)>], label: &str) {
    for (rank, (g, b)) in got.iter().zip(baseline).enumerate() {
        assert_eq!(g.len(), b.len(), "{label}: rank {rank} element count");
        for ((xi, vi), (xj, vj)) in g.iter().zip(b) {
            assert_eq!(xi, xj, "{label}: rank {rank} index set");
            assert_eq!(
                vi.to_bits(),
                vj.to_bits(),
                "{label}: rank {rank} value at {xi}"
            );
        }
    }
}

/// {drop, dup, corrupt, delay} × {cooperation, duplication} × seeds: the
/// destination is byte-identical to the fault-free baseline and the
/// counters show the injector and the recovery machinery actually ran.
#[test]
fn fault_matrix_every_kind_is_survived() {
    let kinds: [(&str, FaultRates); 4] = [
        (
            "drop",
            FaultRates {
                drop: 0.30,
                ..FaultRates::default()
            },
        ),
        (
            "dup",
            FaultRates {
                dup: 0.35,
                ..FaultRates::default()
            },
        ),
        (
            "corrupt",
            FaultRates {
                corrupt: 0.30,
                ..FaultRates::default()
            },
        ),
        (
            "delay",
            FaultRates {
                delay: 0.35,
                delay_secs: 0.05,
                ..FaultRates::default()
            },
        ),
    ];
    for method in [BuildMethod::Cooperation, BuildMethod::Duplication] {
        let (baseline, clean) = coupled_transfer(None, method);
        assert_eq!(
            deterministic_counters(&clean),
            (0, 0, 0, 0, 0, 0),
            "fault-free run must not count faults"
        );
        for (name, rates) in kinds {
            for seed in SEEDS {
                let label = format!("{name}/{method:?}/seed {seed}");
                let plan = FaultPlan::new(seed).rates(rates);
                let (got, faults) = coupled_transfer(Some(plan), method);
                assert_byte_identical(&got, &baseline, &label);
                match name {
                    "drop" => {
                        assert!(faults.drops_injected > 0, "{label}: no drops injected");
                        assert!(faults.retransmits > 0, "{label}: drops need retransmits");
                    }
                    "dup" => {
                        assert!(faults.dups_injected > 0, "{label}: no dups injected");
                    }
                    "corrupt" => {
                        assert!(faults.corrupts_injected > 0, "{label}: no corruption");
                        assert!(faults.retransmits > 0, "{label}: corruption needs retransmits");
                    }
                    "delay" => {
                        assert!(faults.delays_injected > 0, "{label}: no delays injected");
                        assert!(faults.timeouts > 0, "{label}: late acks must count timeouts");
                    }
                    _ => unreachable!(),
                }
            }
        }
    }
}

/// The acceptance mix from the issue — 10% drop + 5% corrupt + 2% dup —
/// through the named-port coupler: byte-identical result, retransmits
/// happened, and the deterministic counters repeat exactly per seed.
#[test]
fn acceptance_mix_through_coupler_is_deterministic() {
    let rates = FaultRates {
        drop: 0.10,
        corrupt: 0.05,
        dup: 0.02,
        ..FaultRates::default()
    };
    let run = |plan: Option<FaultPlan>| {
        let mut world = World::with_model(4, MachineModel::sp2());
        if let Some(p) = plan {
            world = world.with_faults(p);
        }
        let out = world.run(move |ep| {
            let (pa, pb, un) = mcsim::group::Group::split_two(2, 2, 32);
            let set: SetOfRegions<RegularSection> =
                SetOfRegions::single(RegularSection::whole(&[N]));
            if pa.contains(ep.rank()) {
                let mut v = MultiblockArray::<f64>::new(&pa, ep.rank(), &[N]);
                v.fill_with(|c| (c[0] * 7 + 2) as f64);
                let sched = compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                    ep,
                    &un,
                    &pa,
                    Some(Side::new(&v, &set)),
                    &pb,
                    None,
                    BuildMethod::Cooperation,
                )
                .unwrap();
                let mut ports = Coupler::new();
                ports.bind("field", sched);
                for _ in 0..REPS_MIX {
                    ports.put(ep, "field", &v).unwrap();
                }
                Vec::new()
            } else {
                let mut h = HpfArray::<f64>::new(&pb, ep.rank(), HpfDist::block_1d(N, 2));
                let sched = compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                    ep,
                    &un,
                    &pa,
                    None,
                    &pb,
                    Some(Side::new(&h, &set)),
                    BuildMethod::Cooperation,
                )
                .unwrap();
                let mut ports = Coupler::new();
                ports.bind("field", sched);
                for _ in 0..REPS_MIX {
                    ports.get(ep, "field", &mut h).unwrap();
                }
                (0..N)
                    .filter(|&x| h.owns(&[x]))
                    .map(|x| (x, h.get(&[x])))
                    .collect::<Vec<_>>()
            }
        });
        (out.results, out.stats.faults)
    };

    let (baseline, _) = run(None);
    for seed in SEEDS {
        let (r1, f1) = run(Some(FaultPlan::new(seed).rates(rates)));
        let (r2, f2) = run(Some(FaultPlan::new(seed).rates(rates)));
        let label = format!("acceptance mix seed {seed}");
        assert_byte_identical(&r1, &baseline, &label);
        assert_byte_identical(&r2, &r1, &format!("{label} (rerun)"));
        assert_eq!(
            deterministic_counters(&f1),
            deterministic_counters(&f2),
            "{label}: counters must repeat exactly"
        );
        assert!(f1.drops_injected > 0, "{label}: mix must drop something");
        assert!(f1.retransmits > 0, "{label}: recovery must retransmit");
    }
}

/// A permanent partition (100% loss on the faulted classes) exhausts the
/// retry budget: the sender gets [`McError::PeerTimeout`], the receiver is
/// told via GIVEUP and gets [`McError::PeerTimeout`] too — nobody hangs.
#[test]
fn permanent_partition_times_out_both_sides() {
    let plan = FaultPlan::new(3).rates(FaultRates {
        drop: 1.0,
        ..FaultRates::default()
    });
    let out = World::with_model(4, MachineModel::sp2())
        .with_faults(plan)
        .run(move |ep| {
            let (pa, pb, un) = mcsim::group::Group::split_two(2, 2, 32);
            let set: SetOfRegions<RegularSection> =
                SetOfRegions::single(RegularSection::whole(&[N]));
            if pa.contains(ep.rank()) {
                let mut v = MultiblockArray::<f64>::new(&pa, ep.rank(), &[N]);
                v.fill_with(|c| c[0] as f64);
                let sched = compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                    ep,
                    &un,
                    &pa,
                    Some(Side::new(&v, &set)),
                    &pb,
                    None,
                    BuildMethod::Cooperation,
                )
                .unwrap();
                data_move_send(ep, &sched, &v)
            } else {
                let mut h = HpfArray::<f64>::new(&pb, ep.rank(), HpfDist::block_1d(N, 2));
                let sched = compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                    ep,
                    &un,
                    &pa,
                    None,
                    &pb,
                    Some(Side::new(&h, &set)),
                    BuildMethod::Cooperation,
                )
                .unwrap();
                data_move_recv(ep, &sched, &mut h)
            }
        });
    // Schedule construction runs on unfaulted library traffic, so every
    // rank reaches the transfer and then times out against its peer.
    for (rank, r) in out.results.iter().enumerate() {
        match r {
            Err(McError::PeerTimeout { rank: peer }) => {
                let expect = (rank + 2) % 4;
                assert_eq!(*peer, expect, "rank {rank} should time out on its pair");
            }
            other => panic!("rank {rank}: expected PeerTimeout, got {other:?}"),
        }
    }
    assert!(
        out.stats.faults.retransmits > 0,
        "the sender must have tried before giving up"
    );
}

/// Unbound coupler ports are reported as values on every method — no
/// panic, and no communication that could strand the peer.
#[test]
fn unbound_ports_are_reported_not_panicked() {
    let out = meta_chaos_repro::test_world(2).run(|ep| {
        let ports = Coupler::new();
        let mut v = MultiblockArray::<f64>::new(&mcsim::group::Group::world(2), ep.rank(), &[8]);
        let a = ports.put(ep, "nope", &v).unwrap_err();
        let b = ports.get(ep, "nope", &mut v).unwrap_err();
        let c = ports.put_reverse(ep, "nope", &v).unwrap_err();
        let d = ports.get_reverse(ep, "nope", &mut v).unwrap_err();
        (a, b, c, d)
    });
    for (a, b, c, d) in out.results {
        for e in [a, b, c, d] {
            assert_eq!(
                e,
                McError::UnboundPort {
                    port: "nope".into()
                }
            );
        }
    }
}
