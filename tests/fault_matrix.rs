//! Fault-injection matrix for the reliable coupling path: every fault kind
//! (drop, duplicate, corrupt, delay), under both schedule builders and
//! several seeds, must leave a coupled transfer byte-identical to the
//! fault-free baseline with bounded, deterministic retries — and a
//! permanent partition must degrade into [`McError::PeerTimeout`] on both
//! sides instead of a hang.

use mcsim::stats::FaultStats;
use mcsim::{FaultPlan, FaultRates, MachineModel, World};
use meta_chaos::build::{compute_schedule, BuildMethod};
use meta_chaos::coupling::Coupler;
use meta_chaos::datamove::{data_move_recv, data_move_send};
use meta_chaos::region::RegularSection;
use meta_chaos::setof::SetOfRegions;
use meta_chaos::{McError, Side};

use hpf::{HpfArray, HpfDist};
use multiblock::MultiblockArray;

const N: usize = 4096;
const REPS: usize = 3;
/// The acceptance-mix rates are low (10%/5%/2%), so that test repeats the
/// transfer more times to make "at least one drop" a statistical certainty
/// (~48 faultable copies at 10% each).
const REPS_MIX: usize = 12;

/// Seeds for the fault-injection sweeps — the workspace-wide helper, so
/// this suite, `tests/robustness.rs`, and the fuzz driver all honor the
/// same `MC_FAULT_SEED` override (which narrows the run to one seed so
/// `scripts/verify.sh` can loop seeds from outside).
use mcsim::test_seeds as seeds;

/// The deterministic (sender-side) slice of the fault counters: what the
/// injector did and how the senders reacted.  Receiver-side tail counters
/// (late duplicate frames, stale acks) depend on drain timing and are
/// deliberately excluded.
fn deterministic_counters(f: &FaultStats) -> (u64, u64, u64, u64, u64, u64) {
    (
        f.drops_injected,
        f.dups_injected,
        f.corrupts_injected,
        f.delays_injected,
        f.retransmits,
        f.timeouts,
    )
}

/// Two programs of 2 ranks each, coupled over the whole index space:
/// senders {0,1} hold a Multiblock vector, receivers {2,3} an HPF vector,
/// both block-distributed, so rank 0 feeds rank 2 and rank 1 feeds rank 3.
/// Runs `REPS` transfers and returns each receiver's `(index, value)`
/// pairs plus the aggregate fault counters.
fn coupled_transfer(
    plan: Option<FaultPlan>,
    method: BuildMethod,
) -> (Vec<Vec<(usize, f64)>>, FaultStats) {
    let mut world = World::with_model(4, MachineModel::sp2());
    if let Some(p) = plan {
        world = world.with_faults(p);
    }
    let out = world.run(move |ep| {
        let (pa, pb, un) = mcsim::group::Group::split_two(2, 2, 32);
        let set: SetOfRegions<RegularSection> = SetOfRegions::single(RegularSection::whole(&[N]));
        if pa.contains(ep.rank()) {
            let mut v = MultiblockArray::<f64>::new(&pa, ep.rank(), &[N]);
            v.fill_with(|c| (c[0] * 3 + 1) as f64);
            let sched = compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                ep,
                &un,
                &pa,
                Some(Side::new(&v, &set)),
                &pb,
                None,
                method,
            )
            .unwrap();
            for _ in 0..REPS {
                data_move_send(ep, &sched, &v).unwrap();
            }
            Vec::new()
        } else {
            let mut h = HpfArray::<f64>::new(&pb, ep.rank(), HpfDist::block_1d(N, 2));
            let sched = compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                ep,
                &un,
                &pa,
                None,
                &pb,
                Some(Side::new(&h, &set)),
                method,
            )
            .unwrap();
            for _ in 0..REPS {
                data_move_recv(ep, &sched, &mut h).unwrap();
            }
            (0..N)
                .filter(|&x| h.owns(&[x]))
                .map(|x| (x, h.get(&[x])))
                .collect::<Vec<_>>()
        }
    });
    (out.results, out.stats.faults)
}

fn assert_byte_identical(got: &[Vec<(usize, f64)>], baseline: &[Vec<(usize, f64)>], label: &str) {
    for (rank, (g, b)) in got.iter().zip(baseline).enumerate() {
        assert_eq!(g.len(), b.len(), "{label}: rank {rank} element count");
        for ((xi, vi), (xj, vj)) in g.iter().zip(b) {
            assert_eq!(xi, xj, "{label}: rank {rank} index set");
            assert_eq!(
                vi.to_bits(),
                vj.to_bits(),
                "{label}: rank {rank} value at {xi}"
            );
        }
    }
}

/// {drop, dup, corrupt, delay} × {cooperation, duplication} × seeds: the
/// destination is byte-identical to the fault-free baseline and the
/// counters show the injector and the recovery machinery actually ran.
#[test]
fn fault_matrix_every_kind_is_survived() {
    let kinds: [(&str, FaultRates); 4] = [
        (
            "drop",
            FaultRates {
                drop: 0.30,
                ..FaultRates::default()
            },
        ),
        (
            "dup",
            FaultRates {
                dup: 0.35,
                ..FaultRates::default()
            },
        ),
        (
            "corrupt",
            FaultRates {
                corrupt: 0.30,
                ..FaultRates::default()
            },
        ),
        (
            "delay",
            FaultRates {
                delay: 0.35,
                delay_secs: 0.05,
                ..FaultRates::default()
            },
        ),
    ];
    for method in [BuildMethod::Cooperation, BuildMethod::Duplication] {
        let (baseline, clean) = coupled_transfer(None, method);
        assert_eq!(
            deterministic_counters(&clean),
            (0, 0, 0, 0, 0, 0),
            "fault-free run must not count faults"
        );
        for (name, rates) in kinds {
            for seed in seeds() {
                let label = format!("{name}/{method:?}/seed {seed}");
                let plan = FaultPlan::new(seed).rates(rates);
                let (got, faults) = coupled_transfer(Some(plan), method);
                assert_byte_identical(&got, &baseline, &label);
                match name {
                    "drop" => {
                        assert!(faults.drops_injected > 0, "{label}: no drops injected");
                        assert!(faults.retransmits > 0, "{label}: drops need retransmits");
                    }
                    "dup" => {
                        assert!(faults.dups_injected > 0, "{label}: no dups injected");
                    }
                    "corrupt" => {
                        assert!(faults.corrupts_injected > 0, "{label}: no corruption");
                        assert!(
                            faults.retransmits > 0,
                            "{label}: corruption needs retransmits"
                        );
                    }
                    "delay" => {
                        assert!(faults.delays_injected > 0, "{label}: no delays injected");
                        assert!(
                            faults.timeouts > 0,
                            "{label}: late acks must count timeouts"
                        );
                    }
                    _ => unreachable!(),
                }
            }
        }
    }
}

/// Every injected fault kind is visible on the event timeline: a traced
/// faulted run records [`TraceEvent::Fault`] with the matching
/// [`FaultKind`], and recovery shows up as retransmit events on the wire
/// (drop/corrupt) without perturbing the delivered bytes.
#[test]
fn fault_kinds_appear_as_trace_events() {
    use mcsim::trace::{FaultKind, TraceEvent};

    let kinds: [(FaultKind, FaultRates); 4] = [
        (
            FaultKind::Drop,
            FaultRates {
                drop: 0.30,
                ..FaultRates::default()
            },
        ),
        (
            FaultKind::Duplicate,
            FaultRates {
                dup: 0.35,
                ..FaultRates::default()
            },
        ),
        (
            FaultKind::Corrupt,
            FaultRates {
                corrupt: 0.30,
                ..FaultRates::default()
            },
        ),
        (
            FaultKind::Delay,
            FaultRates {
                delay: 0.35,
                delay_secs: 0.05,
                ..FaultRates::default()
            },
        ),
    ];
    for (kind, rates) in kinds {
        let plan = FaultPlan::new(seeds()[0]).rates(rates);
        let world = World::with_model(4, MachineModel::sp2())
            .with_faults(plan)
            .with_trace();
        let out = world.run(move |ep| {
            let (pa, pb, un) = mcsim::group::Group::split_two(2, 2, 32);
            let set: SetOfRegions<RegularSection> =
                SetOfRegions::single(RegularSection::whole(&[N]));
            if pa.contains(ep.rank()) {
                let mut v = MultiblockArray::<f64>::new(&pa, ep.rank(), &[N]);
                v.fill_with(|c| (c[0] * 3 + 1) as f64);
                let sched = compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                    ep,
                    &un,
                    &pa,
                    Some(Side::new(&v, &set)),
                    &pb,
                    None,
                    BuildMethod::Cooperation,
                )
                .unwrap();
                for _ in 0..REPS {
                    data_move_send(ep, &sched, &v).unwrap();
                }
            } else {
                let mut h = HpfArray::<f64>::new(&pb, ep.rank(), HpfDist::block_1d(N, 2));
                let sched = compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                    ep,
                    &un,
                    &pa,
                    None,
                    &pb,
                    Some(Side::new(&h, &set)),
                    BuildMethod::Cooperation,
                )
                .unwrap();
                for _ in 0..REPS {
                    data_move_recv(ep, &sched, &mut h).unwrap();
                }
            }
        });
        assert_eq!(out.traces.len(), 4, "{kind:?}: tracing was enabled");
        let injected = out
            .traces
            .iter()
            .flatten()
            .filter(|e| matches!(e, TraceEvent::Fault { kind: k, .. } if *k == kind))
            .count() as u64;
        assert!(injected > 0, "{kind:?}: no fault events on any timeline");
        let counted = match kind {
            FaultKind::Drop => out.stats.faults.drops_injected,
            FaultKind::Duplicate => out.stats.faults.dups_injected,
            FaultKind::Corrupt => out.stats.faults.corrupts_injected,
            FaultKind::Delay => out.stats.faults.delays_injected,
        };
        assert_eq!(
            injected, counted,
            "{kind:?}: every counted injection must appear as a trace event"
        );
        if matches!(kind, FaultKind::Drop | FaultKind::Corrupt) {
            let resent = out
                .traces
                .iter()
                .flatten()
                .filter(|e| matches!(e, TraceEvent::Retransmit { .. }))
                .count() as u64;
            assert_eq!(
                resent, out.stats.faults.retransmits,
                "{kind:?}: recovery retransmits must appear as trace events"
            );
            assert!(resent > 0, "{kind:?}: loss must force retransmission");
        }
    }
}

/// The acceptance mix from the issue — 10% drop + 5% corrupt + 2% dup —
/// through the named-port coupler: byte-identical result, retransmits
/// happened, and the deterministic counters repeat exactly per seed.
#[test]
fn acceptance_mix_through_coupler_is_deterministic() {
    let rates = FaultRates {
        drop: 0.10,
        corrupt: 0.05,
        dup: 0.02,
        ..FaultRates::default()
    };
    let run = |plan: Option<FaultPlan>| {
        let mut world = World::with_model(4, MachineModel::sp2());
        if let Some(p) = plan {
            world = world.with_faults(p);
        }
        let out = world.run(move |ep| {
            let (pa, pb, un) = mcsim::group::Group::split_two(2, 2, 32);
            let set: SetOfRegions<RegularSection> =
                SetOfRegions::single(RegularSection::whole(&[N]));
            if pa.contains(ep.rank()) {
                let mut v = MultiblockArray::<f64>::new(&pa, ep.rank(), &[N]);
                v.fill_with(|c| (c[0] * 7 + 2) as f64);
                let sched = compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                    ep,
                    &un,
                    &pa,
                    Some(Side::new(&v, &set)),
                    &pb,
                    None,
                    BuildMethod::Cooperation,
                )
                .unwrap();
                let mut ports = Coupler::new();
                ports.bind("field", sched);
                for _ in 0..REPS_MIX {
                    ports.put(ep, "field", &v).unwrap();
                }
                Vec::new()
            } else {
                let mut h = HpfArray::<f64>::new(&pb, ep.rank(), HpfDist::block_1d(N, 2));
                let sched = compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                    ep,
                    &un,
                    &pa,
                    None,
                    &pb,
                    Some(Side::new(&h, &set)),
                    BuildMethod::Cooperation,
                )
                .unwrap();
                let mut ports = Coupler::new();
                ports.bind("field", sched);
                for _ in 0..REPS_MIX {
                    ports.get(ep, "field", &mut h).unwrap();
                }
                (0..N)
                    .filter(|&x| h.owns(&[x]))
                    .map(|x| (x, h.get(&[x])))
                    .collect::<Vec<_>>()
            }
        });
        (out.results, out.stats.faults)
    };

    let (baseline, _) = run(None);
    for seed in seeds() {
        let (r1, f1) = run(Some(FaultPlan::new(seed).rates(rates)));
        let (r2, f2) = run(Some(FaultPlan::new(seed).rates(rates)));
        let label = format!("acceptance mix seed {seed}");
        assert_byte_identical(&r1, &baseline, &label);
        assert_byte_identical(&r2, &r1, &format!("{label} (rerun)"));
        assert_eq!(
            deterministic_counters(&f1),
            deterministic_counters(&f2),
            "{label}: counters must repeat exactly"
        );
        assert!(f1.drops_injected > 0, "{label}: mix must drop something");
        assert!(f1.retransmits > 0, "{label}: recovery must retransmit");
    }
}

/// A permanent partition (100% loss on the faulted classes) exhausts the
/// retry budget: the sender gets [`McError::PeerTimeout`], the receiver is
/// told via GIVEUP and gets [`McError::PeerTimeout`] too — nobody hangs.
/// Every aborting rank also leaves a non-empty flight-recorder dump
/// behind, naming the failing pair in its final `abort` mark.
#[test]
fn permanent_partition_times_out_both_sides() {
    let plan = FaultPlan::new(3).rates(FaultRates {
        drop: 1.0,
        ..FaultRates::default()
    });
    let out = World::with_model(4, MachineModel::sp2())
        .with_faults(plan)
        .run(move |ep| {
            let (pa, pb, un) = mcsim::group::Group::split_two(2, 2, 32);
            let set: SetOfRegions<RegularSection> =
                SetOfRegions::single(RegularSection::whole(&[N]));
            if pa.contains(ep.rank()) {
                let mut v = MultiblockArray::<f64>::new(&pa, ep.rank(), &[N]);
                v.fill_with(|c| c[0] as f64);
                let sched = compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                    ep,
                    &un,
                    &pa,
                    Some(Side::new(&v, &set)),
                    &pb,
                    None,
                    BuildMethod::Cooperation,
                )
                .unwrap();
                let r = data_move_send(ep, &sched, &v);
                (r, meta_chaos::obs::take_last_abort(ep))
            } else {
                let mut h = HpfArray::<f64>::new(&pb, ep.rank(), HpfDist::block_1d(N, 2));
                let sched = compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                    ep,
                    &un,
                    &pa,
                    None,
                    &pb,
                    Some(Side::new(&h, &set)),
                    BuildMethod::Cooperation,
                )
                .unwrap();
                let r = data_move_recv(ep, &sched, &mut h);
                (r, meta_chaos::obs::take_last_abort(ep))
            }
        });
    // Schedule construction runs on unfaulted library traffic, so every
    // rank reaches the transfer and then times out against its peer.
    for (rank, (r, dump)) in out.results.iter().enumerate() {
        let expect = (rank + 2) % 4;
        match r {
            Err(McError::PeerTimeout { rank: peer }) => {
                assert_eq!(*peer, expect, "rank {rank} should time out on its pair");
            }
            other => panic!("rank {rank}: expected PeerTimeout, got {other:?}"),
        }
        // Every abort snapshots the flight recorder — even with tracing
        // off, the bounded ring is always on.
        let report = dump
            .as_ref()
            .unwrap_or_else(|| panic!("rank {rank}: abort left no flight-recorder dump"));
        assert_eq!(report.rank, rank);
        assert!(
            !report.events.is_empty(),
            "rank {rank}: flight dump must not be empty"
        );
        let rendered = report.render();
        assert!(
            rendered.contains(&format!("peer rank {expect}"))
                || rendered.contains(&format!("peer={expect}"))
                || report.error.contains(&expect.to_string()),
            "rank {rank}: dump should name the failing pair:\n{rendered}"
        );
        // The dump ends on the abort itself.
        assert!(
            matches!(
                report.events.last(),
                Some(mcsim::trace::TraceEvent::Mark { label, .. }) if label.starts_with("abort error=")
            ),
            "rank {rank}: last flight event must be the abort mark"
        );
    }
    assert!(
        out.stats.faults.retransmits > 0,
        "the sender must have tried before giving up"
    );
}

/// Unbound coupler ports are reported as values on every method — no
/// panic, and no communication that could strand the peer.
#[test]
fn unbound_ports_are_reported_not_panicked() {
    let out = meta_chaos_repro::test_world(2).run(|ep| {
        let ports = Coupler::new();
        let mut v = MultiblockArray::<f64>::new(&mcsim::group::Group::world(2), ep.rank(), &[8]);
        let a = ports.put(ep, "nope", &v).unwrap_err();
        let b = ports.get(ep, "nope", &mut v).unwrap_err();
        let c = ports.put_reverse(ep, "nope", &v).unwrap_err();
        let d = ports.get_reverse(ep, "nope", &mut v).unwrap_err();
        (a, b, c, d)
    });
    for (a, b, c, d) in out.results {
        for e in [a, b, c, d] {
            assert_eq!(
                e,
                McError::UnboundPort {
                    port: "nope".into()
                }
            );
        }
    }
}

/// Epoch guards, direct path: a schedule built before a redistribution is
/// refused with [`McError::StaleSchedule`] before any element moves, and
/// the epoch-keyed `mc_*` cache rebuilds (miss) after every remap while
/// repeat calls with unchanged epochs still hit.
#[test]
fn stale_schedules_rejected_direct_and_rebuilt_cached() {
    use chaos::{remap, IrregArray, Partition};
    use mcsim::group::{Comm, Group};
    use meta_chaos::api::{mc_compute_sched, mc_copy, mc_sched_cache_len};
    use meta_chaos::region::IndexSet;

    let n = 96usize;
    let out = World::with_model(2, MachineModel::sp2()).run(move |ep| {
        let g = Group::world(2);
        let mut a = MultiblockArray::<f64>::new(&g, ep.rank(), &[n]);
        a.fill_with(|c| (c[0] * 3 + 1) as f64);
        let mut x = {
            let mut comm = Comm::new(ep, g.clone());
            IrregArray::create(&mut comm, n, Partition::Random(5), |_| 0.0)
        };
        let sset = SetOfRegions::single(RegularSection::whole(&[n]));
        let dset = SetOfRegions::single(IndexSet::new((0..n).collect()));

        let sched = mc_compute_sched(ep, &g, &a, &sset, &x, &dset).unwrap();
        mc_copy(ep, &sched, &a, &mut x).unwrap();
        assert_eq!(mc_sched_cache_len(ep), 1);

        let mut cache_len = 1;
        for round in 0..3u64 {
            // Redistribute the destination: its epoch advances...
            x = {
                let mut comm = Comm::new(ep, g.clone());
                let mine = Partition::Random(40 + round).indices_of(n, 2, comm.rank());
                remap(&mut comm, &x, mine)
            };
            assert_eq!(x.epoch(), round + 1);
            // ...so the pre-remap schedule is refused, untouched data intact.
            match mc_copy(ep, &sched, &a, &mut x) {
                Err(McError::StaleSchedule {
                    object_epoch,
                    schedule_epoch: 0,
                }) => assert_eq!(object_epoch, round + 1),
                other => panic!("round {round}: expected StaleSchedule, got {other:?}"),
            }
            // The cached path rebuilds instead: every remap is a miss...
            let fresh = mc_compute_sched(ep, &g, &a, &sset, &x, &dset).unwrap();
            cache_len += 1;
            assert_eq!(fresh.dst_epoch(), x.epoch());
            assert_eq!(
                mc_sched_cache_len(ep),
                cache_len,
                "round {round}: remap must force a cache rebuild"
            );
            // ...and a repeat call with unchanged epochs is a hit.
            let again = mc_compute_sched(ep, &g, &a, &sset, &x, &dset).unwrap();
            assert_eq!(again.seq(), fresh.seq());
            assert_eq!(
                mc_sched_cache_len(ep),
                cache_len,
                "round {round}: unchanged epochs must hit the cache"
            );
            mc_copy(ep, &fresh, &a, &mut x).unwrap();
        }
        // The last rebuilt schedule moved real data.
        for (&gidx, &v) in x.my_globals().iter().zip(x.local()) {
            assert_eq!(v, (gidx * 3 + 1) as f64, "x[{gidx}]");
        }
    });
    // Each rank refused the stale schedule once per round.
    assert_eq!(out.stats.session.stale_schedules, 6);
}

/// Coupled programs whose port bindings disagree (the two sides bound
/// different builds of the same coupling) abort symmetrically with
/// [`McError::ScheduleMismatch`] — no deadlock, no data moved — and the
/// transfer succeeds once the stale side rebinds the agreed schedule.
#[test]
fn mismatched_ports_abort_both_sides_then_rebind_retries() {
    use mcsim::group::Group;

    let out = World::with_model(4, MachineModel::sp2()).run(move |ep| {
        let (pa, pb, un) = Group::split_two(2, 2, 32);
        let set: SetOfRegions<RegularSection> = SetOfRegions::single(RegularSection::whole(&[N]));
        if pa.contains(ep.rank()) {
            let mut v = MultiblockArray::<f64>::new(&pa, ep.rank(), &[N]);
            v.fill_with(|c| (c[0] * 5 + 3) as f64);
            let build = |ep: &mut _| {
                compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                    ep,
                    &un,
                    &pa,
                    Some(Side::new(&v, &set)),
                    &pb,
                    None,
                    BuildMethod::Cooperation,
                )
                .unwrap()
            };
            // Two builds of the same coupling: same pairs, distinct
            // transactions (sequence numbers).
            let s1 = build(ep);
            let s2 = build(ep);
            assert_ne!(s1.seq(), s2.seq());
            let mut ports = Coupler::new();
            // This program bound the stale build; the peer bound the fresh
            // one.  Both sides must observe the disagreement as a value.
            ports.try_bind("field", s1).unwrap();
            let e = ports.put(ep, "field", &v).unwrap_err();
            assert!(
                matches!(e, McError::ScheduleMismatch { .. }),
                "sender must see the mismatch, got {e:?}"
            );
            // Recover: displace the stale binding and retry.
            let displaced = ports.bind("field", s2);
            assert!(
                displaced.is_some(),
                "rebinding must hand back the stale schedule"
            );
            ports.put(ep, "field", &v).unwrap();
            Vec::new()
        } else {
            let mut h = HpfArray::<f64>::new(&pb, ep.rank(), HpfDist::block_1d(N, 2));
            let build = |ep: &mut _| {
                compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                    ep,
                    &un,
                    &pa,
                    None,
                    &pb,
                    Some(Side::new(&h, &set)),
                    BuildMethod::Cooperation,
                )
                .unwrap()
            };
            let s1 = build(ep);
            let s2 = build(ep);
            drop(s1);
            let mut ports = Coupler::new();
            ports.try_bind("field", s2).unwrap();
            let e = ports.get(ep, "field", &mut h).unwrap_err();
            assert!(
                matches!(e, McError::ScheduleMismatch { .. }),
                "receiver must see the mismatch, got {e:?}"
            );
            // The aborted attempt staged nothing into the destination.
            assert!((0..N).filter(|&x| h.owns(&[x])).all(|x| h.get(&[x]) == 0.0));
            // This side already holds the agreed build; cycle the port
            // through unbind/try_bind and retry.
            let kept = ports.unbind("field").expect("port was bound");
            ports.try_bind("field", kept).unwrap();
            ports.get(ep, "field", &mut h).unwrap();
            (0..N)
                .filter(|&x| h.owns(&[x]))
                .map(|x| (x, h.get(&[x])))
                .collect::<Vec<_>>()
        }
    });
    for vals in &out.results[2..] {
        assert!(!vals.is_empty());
        for &(x, v) in vals {
            assert_eq!(v, (x * 5 + 3) as f64, "after retry, h[{x}]");
        }
    }
}

/// All-or-nothing delivery: a sender that crashes after the transaction
/// settled but before its data frames leaves every destination
/// bit-identical to its pre-transfer state — including receivers that had
/// already staged the healthy sender's halves — and the abort is visible
/// as [`McError::PeerFailed`], not a hang.
#[test]
fn mid_transfer_crash_leaves_destinations_untouched() {
    use chaos::{IrregArray, Partition};
    use mcsim::group::{Comm, Group};
    use meta_chaos::datamove::data_move_send_verify_only;
    use meta_chaos::region::IndexSet;

    const SENTINEL: f64 = -7.5;
    let report = World::with_model(4, MachineModel::sp2()).run_result(move |ep| {
        let (pa, pb, un) = Group::split_two(2, 2, 32);
        let sset: SetOfRegions<RegularSection> = SetOfRegions::single(RegularSection::whole(&[N]));
        // Random partition on the receive side: every receiver pairs with
        // BOTH senders, so a receiver that staged rank 0's half still has
        // to roll it back when rank 1 dies.
        let dset = SetOfRegions::single(IndexSet::new((0..N).collect()));
        if pa.contains(ep.rank()) {
            let mut v = MultiblockArray::<f64>::new(&pa, ep.rank(), &[N]);
            v.fill_with(|c| (c[0] * 3 + 1) as f64);
            let sched = compute_schedule::<f64, MultiblockArray<f64>, IrregArray<f64>>(
                ep,
                &un,
                &pa,
                Some(Side::new(&v, &sset)),
                &pb,
                None,
                BuildMethod::Cooperation,
            )
            .unwrap();
            if ep.rank() == 1 {
                // Settle the transaction (manifests + verdicts), then die
                // in the window all-or-nothing delivery exists for: after
                // "agreed", before any data.  The handshake pins the order:
                // rank 0's full send already completed, so its halves are
                // staged (or in flight and acked) at the receivers.
                data_move_send_verify_only(ep, &sched, &v).unwrap();
                let _ = ep.recv(0, mcsim::Tag::user(91));
                panic!("boom: sender dies mid-transfer");
            }
            let r = data_move_send(ep, &sched, &v);
            ep.send(1, mcsim::Tag::user(91), Vec::new());
            r.map(|()| Vec::new())
        } else {
            let mut x = {
                let mut comm = Comm::new(ep, pb.clone());
                IrregArray::create(&mut comm, N, Partition::Random(11), |_| SENTINEL)
            };
            let sched = compute_schedule::<f64, MultiblockArray<f64>, IrregArray<f64>>(
                ep,
                &un,
                &pa,
                None,
                &pb,
                Some(Side::new(&x, &dset)),
                BuildMethod::Cooperation,
            )
            .unwrap();
            let r = data_move_recv(ep, &sched, &mut x);
            let vals: Vec<f64> = x.local().to_vec();
            r.map(|()| vals)
        }
    });
    // The healthy sender finished; the crasher's own panic is captured.
    assert!(matches!(&report.outcomes[0], Ok(Ok(_))), "rank 0 failed");
    assert!(matches!(
        &report.outcomes[1],
        Err(mcsim::SimError::PeerFailed { rank: 1, .. })
    ));
    // Both receivers observed the failure as a value, with the destination
    // bit-identical to its pre-transfer state.
    for rank in [2, 3] {
        match &report.outcomes[rank] {
            Ok(Err(McError::PeerFailed { rank: 1, .. })) => {}
            other => panic!("rank {rank}: expected PeerFailed {{rank: 1}}, got {other:?}"),
        }
    }
    // The staged-then-rolled-back halves are visible in the counters.
    assert!(
        report.stats.session.frames_staged >= 2,
        "both receivers staged rank 0's half: {:?}",
        report.stats.session
    );
    assert!(
        report.stats.session.transfers_aborted >= 2,
        "both receivers aborted: {:?}",
        report.stats.session
    );
}

/// Idempotent retry: a data half replayed from an attempt that died before
/// commit is discarded by transfer-epoch dedup, and the retried transfer
/// delivers exactly the fresh attempt's data.
#[test]
fn retried_transfer_dedups_replayed_halves() {
    use mcsim::group::Group;
    use meta_chaos::datamove::data_move_send_unverified;

    let out = World::with_model(2, MachineModel::sp2()).run(move |ep| {
        let (pa, pb, un) = Group::split_two(1, 1, 32);
        let set: SetOfRegions<RegularSection> = SetOfRegions::single(RegularSection::whole(&[N]));
        if pa.contains(ep.rank()) {
            let mut v = MultiblockArray::<f64>::new(&pa, ep.rank(), &[N]);
            v.fill_with(|c| (c[0] * 3 + 1) as f64);
            let sched = compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                ep,
                &un,
                &pa,
                Some(Side::new(&v, &set)),
                &pb,
                None,
                BuildMethod::Cooperation,
            )
            .unwrap();
            // A half from an attempt that died before commit (no manifest,
            // no verdict — just the orphaned data frame on the wire)...
            data_move_send_unverified(ep, &sched, &v).unwrap();
            // ...then the retry, exactly as the application would issue it.
            data_move_send(ep, &sched, &v).unwrap();
            Vec::new()
        } else {
            let mut h = HpfArray::<f64>::new(&pb, ep.rank(), HpfDist::block_1d(N, 1));
            let sched = compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                ep,
                &un,
                &pa,
                None,
                &pb,
                Some(Side::new(&h, &set)),
                BuildMethod::Cooperation,
            )
            .unwrap();
            data_move_recv(ep, &sched, &mut h).unwrap();
            (0..N)
                .filter(|&x| h.owns(&[x]))
                .map(|x| (x, h.get(&[x])))
                .collect::<Vec<_>>()
        }
    });
    for &(x, v) in &out.results[1] {
        assert_eq!(v, (x * 3 + 1) as f64, "after retry, h[{x}]");
    }
    // The orphaned half was dropped by dedup, the fresh one staged.
    assert_eq!(
        out.stats.session.stale_halves_dropped, 1,
        "replayed half must be discarded: {:?}",
        out.stats.session
    );
    assert!(out.stats.session.frames_staged >= 1);
}

/// Raw two-rank reliable stream for the window-edge tests: rank 0 streams
/// `msgs` messages of `bytes` bytes each to rank 1 under `cfg`, and rank 1
/// verifies every byte of every message in order.  Integrity is asserted
/// inside; the caller inspects the returned counters for the edge it
/// provoked.
fn raw_stream(
    plan: Option<FaultPlan>,
    cfg: mcsim::ReliableConfig,
    msgs: usize,
    bytes: usize,
) -> FaultStats {
    use mcsim::reliable::{flush_send, reliable_recv, reliable_send, StreamTag};
    let mut world = World::with_model(2, MachineModel::sp2()).with_reliable_config(cfg);
    if let Some(p) = plan {
        world = world.with_faults(p);
    }
    let out = world.run(move |ep| {
        let st = StreamTag::new(50, 9);
        if ep.rank() == 0 {
            for m in 0..msgs {
                let mut b = ep.take_buf();
                b.extend((0..bytes).map(|i| (m * 131 + i) as u8));
                reliable_send(ep, 1, st, b).expect("window-edge send");
            }
            flush_send(ep, 1, st).expect("window-edge flush");
        } else {
            for m in 0..msgs {
                let b = reliable_recv(ep, 0, st).expect("window-edge recv");
                assert_eq!(b.len(), bytes, "message {m} length");
                assert!(
                    b.iter().enumerate().all(|(i, &x)| x == (m * 131 + i) as u8),
                    "message {m} must arrive intact and in order"
                );
                ep.recycle_buf(b);
            }
        }
    });
    out.stats.faults
}

/// Window edge: duplicated frames and duplicated acks.  A replayed data
/// frame must be re-acked (not redelivered) and a replayed cumulative ack
/// retires nothing — both sides absorb the duplicates and the stream stays
/// byte-perfect.
#[test]
fn window_edge_duplicate_acks_and_frames_are_idempotent() {
    let rates = FaultRates {
        dup: 0.50,
        ..FaultRates::default()
    };
    for seed in seeds() {
        let f = raw_stream(
            Some(FaultPlan::new(seed).rates(rates)),
            mcsim::ReliableConfig::default(),
            8,
            16 << 10,
        );
        assert!(f.dups_injected > 0, "seed {seed}: no duplicates injected");
        assert!(
            f.dup_frames_dropped + f.stale_acks_dropped > 0,
            "seed {seed}: a 50% dup rate must replay a frame or an ack: {f:?}"
        );
    }
}

/// Window edge: a NACK that names an already-retired sequence.  Drops make
/// the receiver report losses; duplicates replay those NACKs after the
/// retransmission has already retired the frame.  The sender must treat
/// the stale report as a no-op instead of dying or re-sending garbage.
#[test]
fn window_edge_stale_nack_for_retired_seq_is_harmless() {
    let rates = FaultRates {
        drop: 0.25,
        dup: 0.35,
        ..FaultRates::default()
    };
    for seed in seeds() {
        let f = raw_stream(
            Some(FaultPlan::new(seed).rates(rates)),
            mcsim::ReliableConfig::default(),
            8,
            16 << 10,
        );
        assert!(f.drops_injected > 0, "seed {seed}: no drops injected");
        assert!(f.dups_injected > 0, "seed {seed}: no dups injected");
        assert!(
            f.retransmits > 0,
            "seed {seed}: losses must force retransmission"
        );
        // Which signal reports the loss depends on where the drop lands: a
        // mid-stream gap is nacked, a trailing or ctrl-frame loss only
        // expires a deadline.  Either way the loss must have been signaled.
        assert!(
            f.nacks_sent + f.timeouts > 0,
            "seed {seed}: every loss must be signaled somehow: {f:?}"
        );
    }
}

/// Window edge: frames arriving out of order inside an open window.  A
/// dropped frame leaves its successors queued in the receiver's reorder
/// buffer; the retransmission must slot into the gap and release the whole
/// run in order (integrity is asserted per byte inside the harness).
#[test]
fn window_edge_out_of_order_within_window_is_reordered() {
    let rates = FaultRates {
        drop: 0.30,
        ..FaultRates::default()
    };
    for seed in seeds() {
        let f = raw_stream(
            Some(FaultPlan::new(seed).rates(rates)),
            mcsim::ReliableConfig::default(),
            12,
            16 << 10,
        );
        assert!(f.drops_injected > 0, "seed {seed}: no drops injected");
        assert!(
            f.retransmits > 0,
            "seed {seed}: gaps must be repaired by retransmits"
        );
        assert!(
            f.nacks_sent > 0,
            "seed {seed}: a gap behind the window edge must be nacked: {f:?}"
        );
    }
}

/// Window protocol events surface on the timeline with exact count parity
/// against the net counters: every `WindowAdvance`, `WindowStall`, and
/// `RetransmitBurst` counted in [`FaultStats`] appears as a trace event,
/// and a universal 50 ms ack delay is guaranteed to blow a whole window of
/// deadlines at once — a retransmit burst, not frame-by-frame decay.
#[test]
fn window_events_trace_with_count_parity() {
    use mcsim::reliable::{flush_send, reliable_recv, reliable_send, StreamTag};
    use mcsim::trace::TraceEvent;

    let plan = FaultPlan::new(seeds()[0]).rates(FaultRates {
        delay: 1.0,
        delay_secs: 0.05,
        ..FaultRates::default()
    });
    let out = World::with_model(2, MachineModel::sp2())
        .with_faults(plan)
        .with_trace()
        .run(move |ep| {
            let st = StreamTag::new(51, 3);
            if ep.rank() == 0 {
                for m in 0..16 {
                    let mut b = ep.take_buf();
                    b.extend((0..4096).map(|i| (m * 37 + i) as u8));
                    reliable_send(ep, 1, st, b).expect("burst send");
                }
                flush_send(ep, 1, st).expect("burst flush");
            } else {
                for _ in 0..16 {
                    let b = reliable_recv(ep, 0, st).expect("burst recv");
                    ep.recycle_buf(b);
                }
            }
        });
    let count = |pred: fn(&TraceEvent) -> bool| -> u64 {
        out.traces.iter().flatten().filter(|e| pred(e)).count() as u64
    };
    let f = &out.stats.faults;
    assert_eq!(
        count(|e| matches!(e, TraceEvent::WindowAdvance { .. })),
        f.window_advances,
        "every counted window advance must appear on the timeline"
    );
    assert_eq!(
        count(|e| matches!(e, TraceEvent::WindowStall { .. })),
        f.window_stalls,
        "every counted window stall must appear on the timeline"
    );
    assert_eq!(
        count(|e| matches!(e, TraceEvent::RetransmitBurst { .. })),
        f.retransmit_bursts,
        "every counted retransmit burst must appear on the timeline"
    );
    assert!(
        f.window_advances > 0,
        "acks must retire frames and advance the window: {f:?}"
    );
    assert!(
        f.retransmit_bursts > 0,
        "a universal 50 ms ack delay must expire several deadlines at once: {f:?}"
    );
}

/// Drop/dup/delay aimed squarely at the one-sided control class (0x7)
/// — which the default mask deliberately excludes — via an explicit
/// `classes` override: every `get` either completes or returns a typed
/// error within its bounded retry budget, and the world's virtual-clock
/// deadline turns any hang into a visible failure instead of a wedged
/// test run.  Puts ride the (unfaulted here) reliable data plane and
/// must stay exact throughout.  (Corruption is not in the mix: 0x7
/// frames are unchecksummed, so the injector structurally refuses to
/// corrupt them — see `FaultState::draw`.)
#[test]
fn onesided_ctrl_class_faults_complete_or_typed_error() {
    use mcsim::onesided::{expose, get, put_flush, put_notify, wait_notify};
    use mcsim::{SimError, Tag};

    const WIN: u32 = 6;
    const WLEN: usize = 256;
    const GETS: usize = 6;
    fn wbyte(i: usize) -> u8 {
        (i * 11 % 251) as u8
    }

    let kinds: [(&str, FaultRates); 3] = [
        (
            "drop",
            FaultRates {
                drop: 0.30,
                ..FaultRates::default()
            },
        ),
        (
            "dup",
            FaultRates {
                dup: 0.35,
                ..FaultRates::default()
            },
        ),
        (
            "delay",
            FaultRates {
                delay: 0.35,
                delay_secs: 0.02,
                ..FaultRates::default()
            },
        ),
    ];
    for (name, rates) in kinds {
        for seed in seeds() {
            let label = format!("0x7 {name}/seed {seed}");
            let inner = label.clone();
            let plan = FaultPlan::new(seed)
                .rates(rates)
                .classes(1 << Tag::CLASS_ONESIDED_CTRL);
            let out = World::with_model(2, MachineModel::sp2())
                .with_faults(plan)
                .with_deadline(60.0)
                .run(move |ep| {
                    let ctx = Tag::FIRST_USER_CTX;
                    if ep.rank() == 0 {
                        expose(ep, WIN, (0..WLEN).map(wbyte).collect());
                        // Stay alive until the origin finishes: its final
                        // notifying put rides the unfaulted reliable data
                        // plane and sequences after every get attempt.
                        wait_notify(ep, WIN, 1).unwrap();
                        0usize
                    } else {
                        let mut completed = 0usize;
                        for k in 0..GETS {
                            let off = k * 24;
                            match get(ep, 0, ctx, WIN, off, 16) {
                                Ok(data) => {
                                    // Re-sends reuse the request id, so a
                                    // lost, duplicated, or late reply never
                                    // changes the bytes delivered.
                                    let want: Vec<u8> = (off..off + 16).map(wbyte).collect();
                                    assert_eq!(data, want, "{inner}: get {k} bytes");
                                    completed += 1;
                                }
                                Err(SimError::PeerTimeout { rank: 0 }) => {}
                                Err(e) => panic!("{inner}: get {k}: unexpected error {e:?}"),
                            }
                        }
                        put_notify(ep, 0, ctx, WIN, 0, &[1]).unwrap();
                        put_flush(ep, 0, ctx, WIN).unwrap();
                        completed
                    }
                });
            // The injector really hit the control class...
            let f = &out.stats.faults;
            let injected = match name {
                "drop" => f.drops_injected,
                "dup" => f.dups_injected,
                _ => f.delays_injected,
            };
            assert!(injected > 0, "{label}: no faults injected: {f:?}");
            // ...and a bounded retry still lands most requests.
            assert!(
                out.results[1] >= 1,
                "{label}: every get failed — retry is not doing its job"
            );
        }
    }
}

/// A fully partitioned control plane (100% drop on class 0x7): `get`
/// exhausts its retry budget and returns [`SimError::PeerTimeout`] —
/// a typed value, not a hang — while `expose`, `put`, and `put_flush`
/// on the untouched reliable classes complete exactly.
#[test]
fn onesided_partitioned_ctrl_plane_times_out_typed() {
    use mcsim::onesided::{expose, get, put_flush, put_notify, wait_notify, window_bytes};
    use mcsim::{SimError, Tag};

    let plan = FaultPlan::new(mcsim::test_seed())
        .rates(FaultRates {
            drop: 1.0,
            ..FaultRates::default()
        })
        .classes(1 << Tag::CLASS_ONESIDED_CTRL);
    let out = World::with_model(2, MachineModel::sp2())
        .with_faults(plan)
        .with_deadline(60.0)
        .run(move |ep| {
            let ctx = Tag::FIRST_USER_CTX;
            if ep.rank() == 0 {
                expose(ep, 7, vec![5u8; 32]);
                wait_notify(ep, 7, 1).unwrap();
                (Ok(Vec::new()), window_bytes(ep, 7))
            } else {
                let r = get(ep, 0, ctx, 7, 0, 8);
                // The put data plane (class 0x5) is untouched by the 0x7
                // partition and must still deliver bit-exactly.
                put_notify(ep, 0, ctx, 7, 4, &[9u8; 4]).unwrap();
                put_flush(ep, 0, ctx, 7).unwrap();
                (r, None)
            }
        });
    match &out.results[1].0 {
        Err(SimError::PeerTimeout { rank: 0 }) => {}
        other => panic!("partitioned get must time out typed, got {other:?}"),
    }
    let win = out.results[0].1.as_ref().expect("window withdrawn");
    assert_eq!(
        &win[4..8],
        &[9u8; 4],
        "put must land despite the 0x7 partition"
    );
    assert!(
        out.stats.faults.drops_injected > 0,
        "the 0x7 partition must actually drop control frames"
    );
}
