//! Crash-recovery acceptance: a rank killed in ANY transfer phase and
//! respawned by the world supervisor must leave the destination
//! bit-identical to the fault-free run, with every half committed
//! exactly once.
//!
//! The harness runs a supervised, traced baseline first and mines the
//! victim's phase spans ([`mcsim::pair_spans`]) for crash times — the
//! virtual clock is deterministic, so a time inside a baseline span
//! lands inside the same span in the crash run.

use mcsim::group::{Comm, Group};
use mcsim::prelude::Endpoint;
use mcsim::{pair_spans, MachineModel, Phase, RecoveryConfig, RunOutput, World};
use meta_chaos::build::{compute_schedule, BuildMethod};
use meta_chaos::region::{IndexSet, RegularSection};
use meta_chaos::setof::SetOfRegions;
use meta_chaos::{McObject, RecoverySession, Side};

use chaos::{IrregArray, Partition};
use hpf::{HpfArray, HpfDist};
use multiblock::MultiblockArray;
use tulip::DistributedCollection;

use mcsim::test_seeds as seeds;
use std::time::Duration;

/// Phase-matrix problem size (multiblock -> HPF, 2 senders, 2 receivers).
const N: usize = 256;
const STEPS: u64 = 3;

/// Library-matrix problem size (smaller: 16 pairs x seeds runs).
const M: usize = 64;
const STEPS_M: u64 = 2;

/// Step-dependent source data, so resuming at the wrong step is visible.
fn value(k: u64, x: usize) -> f64 {
    ((k + 1) * 1000 + 3 * x as u64 + 1) as f64
}

/// A fast failure detector so evictions (and thus the whole suite) fit
/// in test time: 3 missed 20 ms leases evict.
fn detector() -> RecoveryConfig {
    RecoveryConfig {
        lease_window: Duration::from_millis(20),
        lease_misses: 3,
        ..RecoveryConfig::default()
    }
}

/// Arm a scripted crash once per rank: the flag rides the checkpoint
/// store, so a restarted life does not crash again.
fn arm_once(ep: &mut Endpoint, crashes: &[(usize, f64)]) {
    for &(victim, at) in crashes {
        if ep.rank() == victim && !ep.ckpt_has("crash-armed") {
            ep.ckpt_put("crash-armed", Vec::new());
            ep.arm_crash(at);
        }
    }
}

/// The phase-matrix world: programs {0,1} (Multiblock source) and {2,3}
/// (HPF destination) coupled over the whole index space, driven through
/// `STEPS` resumable steps with step-dependent data.  Every rank
/// checkpoints its schedule and object so a restarted life rejoins
/// without re-running the collective build.
fn phase_world(crashes: Vec<(usize, f64)>) -> RunOutput<Vec<(usize, f64)>> {
    World::with_model(4, MachineModel::sp2())
        .with_supervisor(2)
        .with_recovery_config(detector())
        .with_trace()
        .run(move |ep| {
            arm_once(ep, &crashes);
            let (pa, pb, un) = Group::split_two(2, 2, 32);
            let set: SetOfRegions<RegularSection> =
                SetOfRegions::single(RegularSection::whole(&[N]));
            let mut ses = RecoverySession::new("field");
            if pa.contains(ep.rank()) {
                let mut v: MultiblockArray<f64> = match ses.restore_object(ep) {
                    Some(o) => o,
                    None => {
                        let o = MultiblockArray::<f64>::new(&pa, ep.rank(), &[N]);
                        ses.checkpoint_object(ep, &o);
                        o
                    }
                };
                let sched = match ses.restore_schedule(ep) {
                    Some(s) => s,
                    None => {
                        let s = compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                            ep,
                            &un,
                            &pa,
                            Some(Side::new(&v, &set)),
                            &pb,
                            None,
                            BuildMethod::Cooperation,
                        )
                        .unwrap();
                        ses.checkpoint_schedule(ep, &s);
                        s
                    }
                };
                for k in 0..STEPS {
                    v.fill_with(|c| value(k, c[0]));
                    ses.send_step(ep, &sched, &v, k).unwrap();
                }
                ses.finish(ep, &sched, STEPS).unwrap();
                Vec::new()
            } else {
                let mut h: HpfArray<f64> = match ses.restore_object(ep) {
                    Some(o) => o,
                    None => {
                        let o = HpfArray::<f64>::new(&pb, ep.rank(), HpfDist::block_1d(N, 2));
                        ses.checkpoint_object(ep, &o);
                        o
                    }
                };
                let sched = match ses.restore_schedule(ep) {
                    Some(s) => s,
                    None => {
                        let s = compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                            ep,
                            &un,
                            &pa,
                            None,
                            &pb,
                            Some(Side::new(&h, &set)),
                            BuildMethod::Cooperation,
                        )
                        .unwrap();
                        ses.checkpoint_schedule(ep, &s);
                        s
                    }
                };
                for k in 0..STEPS {
                    ses.recv_step(ep, &sched, &mut h, k).unwrap();
                }
                ses.finish(ep, &sched, STEPS).unwrap();
                (0..N)
                    .filter(|&x| h.owns(&[x]))
                    .map(|x| (x, h.get(&[x])))
                    .collect::<Vec<_>>()
            }
        })
}

fn assert_byte_identical(got: &[Vec<(usize, f64)>], baseline: &[Vec<(usize, f64)>], label: &str) {
    for (rank, (g, b)) in got.iter().zip(baseline).enumerate() {
        assert_eq!(g.len(), b.len(), "{label}: rank {rank} element count");
        for ((xi, vi), (xj, vj)) in g.iter().zip(b) {
            assert_eq!(xi, xj, "{label}: rank {rank} index set");
            assert_eq!(
                vi.to_bits(),
                vj.to_bits(),
                "{label}: rank {rank} value at {xi}"
            );
        }
    }
}

/// Spans of one phase in one rank's baseline trace, mined for crash
/// times.  Only the transfer phases count — build-time spans (Inspect,
/// Transfer wrappers) are excluded by construction of the filter.
fn phase_spans(out: &RunOutput<Vec<(usize, f64)>>, rank: usize, phase: Phase) -> Vec<(f64, f64)> {
    pair_spans(&out.traces[rank])
        .into_iter()
        .filter(|s| s.phase == phase)
        .map(|s| (s.begin, s.end))
        .collect()
}

/// A crash time inside span `which` (index scaled into the list) of the
/// given phase, at fraction `frac` of the span.
fn crash_time(spans: &[(f64, f64)], which: usize, of: usize, frac: f64) -> f64 {
    assert!(
        !spans.is_empty(),
        "baseline recorded no spans of this phase"
    );
    let idx = (which * spans.len() / of).min(spans.len() - 1);
    let (b, e) = spans[idx];
    b + (e - b) * frac
}

/// Tentpole oracle: crash a rank inside each of the five transfer
/// phases (sync/manifest, pack, wire, stage, commit), across the
/// workspace seeds, and require the recovered run to be bit-identical
/// to the fault-free baseline with the exact same number of commits
/// (exactly-once), plus the final-step values in every destination.
#[test]
fn crash_in_every_phase_converges_bit_identical() {
    let baseline = phase_world(Vec::new());
    // The fault-free run itself must deliver the last step's values.
    for vals in &baseline.results[2..] {
        for &(x, v) in vals {
            assert_eq!(v, value(STEPS - 1, x), "baseline dst[{x}]");
        }
    }
    let committed = baseline.stats.session.transfers_committed;
    assert_eq!(committed, 2 * STEPS, "one commit per receiver per step");

    // Sender phases crash a source rank; receiver phases a destination.
    let cases: [(Phase, usize, &str); 5] = [
        (Phase::Manifest, 0, "manifest"),
        (Phase::Pack, 0, "pack"),
        (Phase::Wire, 0, "wire"),
        (Phase::Stage, 2, "stage"),
        (Phase::Commit, 3, "commit"),
    ];
    for (si, _seed) in seeds().iter().enumerate() {
        let frac = 0.3 + 0.15 * si as f64;
        for (phase, victim, label) in &cases {
            let spans = phase_spans(&baseline, *victim, *phase);
            let at = crash_time(&spans, si, seeds().len(), frac);
            let out = phase_world(vec![(*victim, at)]);
            let tag = format!("{label} crash rank {victim} at t={at:.6}");
            assert_byte_identical(&out.results, &baseline.results, &tag);
            assert!(
                out.stats.recovery.ranks_recovered >= 1,
                "{tag}: no recovery happened"
            );
            assert_eq!(
                out.stats.session.transfers_committed, committed,
                "{tag}: commits diverged (duplicate or lost commit)"
            );
        }
    }
}

/// Double fault: a sender AND a receiver die (at baseline-mined times in
/// different phases) and both recover; the run still converges.
#[test]
fn double_fault_converges() {
    let baseline = phase_world(Vec::new());
    let pack = phase_spans(&baseline, 0, Phase::Pack);
    let stage = phase_spans(&baseline, 3, Phase::Stage);
    let crashes = vec![
        (0, crash_time(&pack, 1, 3, 0.5)),
        (3, crash_time(&stage, 2, 3, 0.5)),
    ];
    let out = phase_world(crashes);
    assert_byte_identical(&out.results, &baseline.results, "double fault");
    assert!(
        out.stats.recovery.ranks_recovered >= 2,
        "both victims must recover (got {})",
        out.stats.recovery.ranks_recovered
    );
    assert_eq!(
        out.stats.session.transfers_committed, baseline.stats.session.transfers_committed,
        "double fault: commits diverged"
    );
}

/// Satellite 2 parity oracle: every recovery counter must equal the
/// count of its trace events, summed over ranks — the metrics registry
/// and the chrome-trace view must tell the same story.
#[test]
fn recovery_trace_counters_match_stats() {
    let baseline = phase_world(Vec::new());
    // A commit-phase crash exercises the absorb path, so all four
    // counters (heartbeats, leases, recoveries, replays) are non-zero.
    let spans = phase_spans(&baseline, 3, Phase::Commit);
    let at = crash_time(&spans, 1, 3, 0.5);
    let out = phase_world(vec![(3, at)]);

    let mut heartbeats = 0usize;
    let mut leases = 0usize;
    let mut recoveries = 0usize;
    let mut replays = 0usize;
    for trace in &out.traces {
        let s = mcsim::summarize(trace);
        heartbeats += s.heartbeats;
        leases += s.leases_expired;
        recoveries += s.recoveries;
        replays += s.parts_replayed;
    }
    let r = &out.stats.recovery;
    assert_eq!(r.heartbeats_sent, heartbeats as u64, "heartbeat parity");
    assert_eq!(r.leases_expired, leases as u64, "lease-expiry parity");
    assert_eq!(r.ranks_recovered, recoveries as u64, "recovery parity");
    assert_eq!(r.parts_replayed, replays as u64, "part-replay parity");
    assert!(r.heartbeats_sent > 0, "supervised run must heartbeat");
    assert!(r.ranks_recovered >= 1, "the scripted crash must recover");
    assert!(
        r.parts_replayed >= 1,
        "a commit-phase crash must absorb a replayed half"
    );
}

// ---------------------------------------------------------------------
// Library matrix: every (source library, destination library) pair must
// survive a crash, for all four libraries on both sides.
// ---------------------------------------------------------------------

/// What the 16-pair driver needs from a library object: build it inside
/// one program (restoring collective state is the caller's job — build
/// only runs in a rank's first life), refill it for a step, describe
/// the whole index space as regions, and report `(global, value)`.
trait RecObj: McObject<f64> + Clone + Send + Sized + 'static {
    fn build(ep: &mut Endpoint, g: &Group) -> Self;
    fn fill(&mut self, k: u64);
    fn set() -> SetOfRegions<Self::Region>;
    fn snapshot(&self) -> Vec<(usize, f64)>;
}

impl RecObj for MultiblockArray<f64> {
    fn build(ep: &mut Endpoint, g: &Group) -> Self {
        MultiblockArray::<f64>::new(g, ep.rank(), &[M])
    }
    fn fill(&mut self, k: u64) {
        self.fill_with(|c| value(k, c[0]));
    }
    fn set() -> SetOfRegions<RegularSection> {
        SetOfRegions::single(RegularSection::whole(&[M]))
    }
    fn snapshot(&self) -> Vec<(usize, f64)> {
        let b = self.my_box();
        (b[0].0..b[0].1).map(|x| (x, self.get(&[x]))).collect()
    }
}

impl RecObj for HpfArray<f64> {
    fn build(ep: &mut Endpoint, g: &Group) -> Self {
        HpfArray::<f64>::new(g, ep.rank(), HpfDist::block_1d(M, 2))
    }
    fn fill(&mut self, k: u64) {
        self.for_each_owned(|c, v| *v = value(k, c[0]));
    }
    fn set() -> SetOfRegions<RegularSection> {
        SetOfRegions::single(RegularSection::whole(&[M]))
    }
    fn snapshot(&self) -> Vec<(usize, f64)> {
        (0..M)
            .filter(|&x| self.owns(&[x]))
            .map(|x| (x, self.get(&[x])))
            .collect()
    }
}

impl RecObj for IrregArray<f64> {
    fn build(ep: &mut Endpoint, g: &Group) -> Self {
        let mut comm = Comm::new(ep, g.clone());
        IrregArray::create(&mut comm, M, Partition::Random(7), |_| 0.0)
    }
    fn fill(&mut self, k: u64) {
        let globals: Vec<usize> = self.my_globals().to_vec();
        for (g, v) in globals.iter().zip(self.local_mut()) {
            *v = value(k, *g);
        }
    }
    fn set() -> SetOfRegions<IndexSet> {
        SetOfRegions::single(IndexSet::new((0..M).collect()))
    }
    fn snapshot(&self) -> Vec<(usize, f64)> {
        self.my_globals()
            .iter()
            .zip(self.local())
            .map(|(&g, &v)| (g, v))
            .collect()
    }
}

impl RecObj for DistributedCollection<f64> {
    fn build(ep: &mut Endpoint, g: &Group) -> Self {
        DistributedCollection::<f64>::new(g, ep.rank(), M)
    }
    fn fill(&mut self, k: u64) {
        self.apply(|gi, v| *v = value(k, gi));
    }
    fn set() -> SetOfRegions<IndexSet> {
        SetOfRegions::single(IndexSet::new((0..M).collect()))
    }
    fn snapshot(&self) -> Vec<(usize, f64)> {
        let p = self.num_procs();
        let me = self.my_local();
        self.local()
            .iter()
            .enumerate()
            .map(|(l, &v)| (l * p + me, v))
            .collect()
    }
}

fn run_matrix<S, D>(crashes: Vec<(usize, f64)>) -> RunOutput<Vec<(usize, f64)>>
where
    S: RecObj,
    D: RecObj,
{
    World::with_model(4, MachineModel::sp2())
        .with_supervisor(2)
        .with_recovery_config(detector())
        .with_trace()
        .run(move |ep| {
            arm_once(ep, &crashes);
            let (pa, pb, un) = Group::split_two(2, 2, 32);
            let mut ses = RecoverySession::new("matrix");
            if pa.contains(ep.rank()) {
                let mut a: S = match ses.restore_object(ep) {
                    Some(o) => o,
                    None => {
                        let o = S::build(ep, &pa);
                        ses.checkpoint_object(ep, &o);
                        o
                    }
                };
                let sset = S::set();
                let sched = match ses.restore_schedule(ep) {
                    Some(s) => s,
                    None => {
                        let s = compute_schedule::<f64, S, D>(
                            ep,
                            &un,
                            &pa,
                            Some(Side::new(&a, &sset)),
                            &pb,
                            None,
                            BuildMethod::Cooperation,
                        )
                        .unwrap();
                        ses.checkpoint_schedule(ep, &s);
                        s
                    }
                };
                for k in 0..STEPS_M {
                    a.fill(k);
                    ses.send_step(ep, &sched, &a, k).unwrap();
                }
                ses.finish(ep, &sched, STEPS_M).unwrap();
                Vec::new()
            } else {
                let mut d: D = match ses.restore_object(ep) {
                    Some(o) => o,
                    None => {
                        let o = D::build(ep, &pb);
                        ses.checkpoint_object(ep, &o);
                        o
                    }
                };
                let dset = D::set();
                let sched = match ses.restore_schedule(ep) {
                    Some(s) => s,
                    None => {
                        let s = compute_schedule::<f64, S, D>(
                            ep,
                            &un,
                            &pa,
                            None,
                            &pb,
                            Some(Side::new(&d, &dset)),
                            BuildMethod::Cooperation,
                        )
                        .unwrap();
                        ses.checkpoint_schedule(ep, &s);
                        s
                    }
                };
                for k in 0..STEPS_M {
                    ses.recv_step(ep, &sched, &mut d, k).unwrap();
                }
                ses.finish(ep, &sched, STEPS_M).unwrap();
                d.snapshot()
            }
        })
}

/// One library pair, all seeds: baseline then a crash run per seed,
/// victim and crash time varied by seed index.
fn matrix_case<S, D>(label: &str)
where
    S: RecObj,
    D: RecObj,
{
    let baseline = run_matrix::<S, D>(Vec::new());
    let mut seen = vec![false; M];
    for vals in &baseline.results[2..] {
        for &(x, v) in vals {
            assert_eq!(v, value(STEPS_M - 1, x), "{label} baseline dst[{x}]");
            assert!(!seen[x], "{label} baseline dst[{x}] reported twice");
            seen[x] = true;
        }
    }
    assert!(
        seen.into_iter().all(|s| s),
        "{label} baseline left elements unreported"
    );

    // One victim per seed: a receiver's stage, a sender's pack, the
    // other sender's position wait.
    let picks: [(usize, Phase); 3] = [(2, Phase::Stage), (0, Phase::Pack), (1, Phase::Manifest)];
    for (si, _seed) in seeds().iter().enumerate() {
        let (victim, phase) = picks[si % picks.len()];
        let spans = phase_spans(&baseline, victim, phase);
        let at = crash_time(&spans, si, seeds().len(), 0.5);
        let out = run_matrix::<S, D>(vec![(victim, at)]);
        let tag = format!("{label}: crash rank {victim} at t={at:.6}");
        assert_byte_identical(&out.results, &baseline.results, &tag);
        assert!(
            out.stats.recovery.ranks_recovered >= 1,
            "{tag}: no recovery happened"
        );
        assert_eq!(
            out.stats.session.transfers_committed, baseline.stats.session.transfers_committed,
            "{tag}: commits diverged"
        );
    }
}

macro_rules! matrix_test {
    ($name:ident, $s:ty, $d:ty) => {
        #[test]
        fn $name() {
            matrix_case::<$s, $d>(stringify!($name));
        }
    };
}

matrix_test!(rec_mb_to_mb, MultiblockArray<f64>, MultiblockArray<f64>);
matrix_test!(rec_mb_to_chaos, MultiblockArray<f64>, IrregArray<f64>);
matrix_test!(rec_mb_to_hpf, MultiblockArray<f64>, HpfArray<f64>);
matrix_test!(
    rec_mb_to_tulip,
    MultiblockArray<f64>,
    DistributedCollection<f64>
);
matrix_test!(rec_chaos_to_mb, IrregArray<f64>, MultiblockArray<f64>);
matrix_test!(rec_chaos_to_chaos, IrregArray<f64>, IrregArray<f64>);
matrix_test!(rec_chaos_to_hpf, IrregArray<f64>, HpfArray<f64>);
matrix_test!(
    rec_chaos_to_tulip,
    IrregArray<f64>,
    DistributedCollection<f64>
);
matrix_test!(rec_hpf_to_mb, HpfArray<f64>, MultiblockArray<f64>);
matrix_test!(rec_hpf_to_chaos, HpfArray<f64>, IrregArray<f64>);
matrix_test!(rec_hpf_to_hpf, HpfArray<f64>, HpfArray<f64>);
matrix_test!(rec_hpf_to_tulip, HpfArray<f64>, DistributedCollection<f64>);
matrix_test!(
    rec_tulip_to_mb,
    DistributedCollection<f64>,
    MultiblockArray<f64>
);
matrix_test!(
    rec_tulip_to_chaos,
    DistributedCollection<f64>,
    IrregArray<f64>
);
matrix_test!(rec_tulip_to_hpf, DistributedCollection<f64>, HpfArray<f64>);
matrix_test!(
    rec_tulip_to_tulip,
    DistributedCollection<f64>,
    DistributedCollection<f64>
);
