//! Every schedule builder in the workspace — Meta-Chaos cooperation and
//! duplication, native Multiblock Parti, native Chaos — must produce
//! schedules that pass the collective global validation (pairwise send/
//! receive agreement, full coverage, consistent sequence numbers).

use mcsim::group::{Comm, Group};
use meta_chaos::build::{compute_schedule, BuildMethod};
use meta_chaos::region::{IndexSet, RegularSection};
use meta_chaos::setof::SetOfRegions;
use meta_chaos::validate::validate_schedule;
use meta_chaos::Side;
use meta_chaos_repro::test_world;

use chaos::native_copy::build_chaos_copy_schedule;
use chaos::{IrregArray, Partition};
use multiblock::native_move::build_copy_schedule;
use multiblock::MultiblockArray;

#[test]
fn all_builders_produce_globally_consistent_schedules() {
    let n = 48usize;
    test_world(4).run(move |ep| {
        let g = Group::world(4);
        let mut a = MultiblockArray::<f64>::new(&g, ep.rank(), &[n]);
        a.fill_with(|c| c[0] as f64);
        let b = MultiblockArray::<f64>::new(&g, ep.rank(), &[n]);
        let x = {
            let mut comm = Comm::new(ep, g.clone());
            IrregArray::create(&mut comm, n, Partition::Random(5), |_| 0.0)
        };

        // Meta-Chaos, both methods, regular -> irregular.
        let sset = SetOfRegions::single(RegularSection::whole(&[n]));
        let dset = SetOfRegions::single(IndexSet::new((0..n).rev().collect()));
        for method in [BuildMethod::Cooperation, BuildMethod::Duplication] {
            let sched = compute_schedule(
                ep,
                &g,
                &g,
                Some(Side::new(&a, &sset)),
                &g,
                Some(Side::new(&x, &dset)),
                method,
            )
            .unwrap();
            assert!(
                validate_schedule(ep, &sched).is_empty(),
                "{method:?} schedule invalid"
            );
        }

        // Native Parti section copy.
        let ssec = RegularSection::of_bounds(&[(0, n / 2)]);
        let dsec = RegularSection::of_bounds(&[(n / 2, n)]);
        let parti = build_copy_schedule(ep, &g, &a, &ssec, &b, &dsec);
        assert!(validate_schedule(ep, &parti).is_empty(), "parti invalid");
        assert!(
            validate_schedule(ep, &parti.reversed()).is_empty(),
            "reversed parti invalid"
        );

        // Native Chaos copy.
        let src_map: Vec<usize> = (0..n).collect();
        let dst_map: Vec<usize> = (0..n).map(|k| (k * 7 + 1) % n).collect();
        let chaos_sched = {
            let mut comm = Comm::new(ep, g.clone());
            build_chaos_copy_schedule(&mut comm, x.table(), &src_map, x.my_globals(), &dst_map)
        };
        assert!(
            validate_schedule(ep, &chaos_sched).is_empty(),
            "chaos invalid"
        );
    });
}
