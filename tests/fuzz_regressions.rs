//! Regression corpus: shrunk fuzz repros and hand-picked generated
//! scenarios, replayed deterministically through every oracle on each
//! test run (DESIGN.md §4g).
//!
//! Each JSON file under `tests/corpus/` is either a bare scenario or a
//! full repro document (scenario under the `"scenario"` key).  A
//! scenario lands here once a fuzz failure has been fixed — from then
//! on the corpus keeps the fix honest without re-running the fuzzer.
//!
//! Replay a single file by hand with:
//! `cargo run --release -p fuzz -- --replay tests/corpus/<name>.json`

use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .filter_map(|e| {
            let p = e.expect("readable dir entry").path();
            (p.extension().is_some_and(|x| x == "json")).then_some(p)
        })
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_is_nonempty() {
    assert!(
        corpus_files().len() >= 3,
        "regression corpus must hold at least three scenarios"
    );
}

#[test]
fn corpus_replays_clean() {
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let sc = fuzz::parse_repro(&text)
            .unwrap_or_else(|e| panic!("{}: parse failed: {e}", path.display()));
        if let Some(f) = fuzz::oracle::check(&sc) {
            panic!(
                "{} regressed ({}): {}\n{}",
                path.display(),
                f.phase,
                f.detail,
                f.post_mortem.join("\n"),
            );
        }
    }
}

#[test]
fn corpus_post_mortem_carries_critical_path_summary() {
    // Replaying a corpus entry must produce a post-mortem that embeds
    // the one-paragraph critical-path summary, and that summary must be
    // self-consistent (its built-in attribution tiling check passed and
    // every recv was causally matched to a send copy).
    let path = corpus_dir().join("same-prog-bumps-hpf-to-hpf.json");
    let text = std::fs::read_to_string(&path).expect("readable corpus file");
    let sc = fuzz::parse_repro(&text).expect("parseable");
    let run = fuzz::exec::run_scenario(&sc, false, false);
    let cp = run
        .critical_path
        .as_deref()
        .expect("traced replay records transfer spans");
    assert!(cp.starts_with("critical path:"), "summary: {cp}");
    assert!(cp.contains("attribution=ok"), "summary: {cp}");
    assert!(cp.contains("dominant bottleneck"), "summary: {cp}");
    let pm = fuzz::oracle::post_mortem(&run);
    assert_eq!(
        pm.last().map(String::as_str),
        Some(cp),
        "post-mortem must end with the critical-path paragraph"
    );
}

#[test]
fn corpus_scenarios_replay_deterministically() {
    // A corpus entry must also round-trip: serializing the parsed
    // scenario and parsing it back yields the same scenario, so repros
    // stay self-contained as the schema evolves.
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let sc = fuzz::parse_repro(&text).expect("parseable");
        let again = fuzz::scenario::Scenario::from_json(&sc.to_json())
            .unwrap_or_else(|e| panic!("{}: reserialize failed: {e}", path.display()));
        assert_eq!(again, sc, "{}: lossy round-trip", path.display());
    }
}
