//! The paper's §4.1.4 claim: "A set of messages crafted by hand ... would
//! require exactly the same number of messages as the set created by
//! Meta-Chaos.  Moreover, the sizes of the messages ... are also the
//! same."  These tests compute the hand-coded minimum (one message per
//! communicating owner pair, payload = element count × 8 bytes + the
//! length header) and assert the executed data move matches it exactly.

use std::collections::HashMap;

use mcsim::group::{Comm, Group};
use meta_chaos::build::{compute_schedule, BuildMethod};
use meta_chaos::datamove::data_move;
use meta_chaos::region::{IndexSet, RegularSection};
use meta_chaos::setof::SetOfRegions;
use meta_chaos::Side;
use meta_chaos_repro::test_world;

use chaos::{IrregArray, Partition};
use multiblock::MultiblockArray;

/// Hand-computed transfer matrix: `(src_rank, dst_rank) -> element count`
/// for `dst[dst_idx[k]] = src[src_idx[k]]` with known owner functions.
fn hand_pairs(
    src_owner: impl Fn(usize) -> usize,
    dst_owner: impl Fn(usize) -> usize,
    src_idx: &[usize],
    dst_idx: &[usize],
) -> HashMap<(usize, usize), u64> {
    let mut pairs = HashMap::new();
    for (s, d) in src_idx.iter().zip(dst_idx) {
        let so = src_owner(*s);
        let dd = dst_owner(*d);
        if so != dd {
            *pairs.entry((so, dd)).or_insert(0u64) += 1;
        }
    }
    pairs
}

#[test]
fn message_counts_and_sizes_match_hand_coded() {
    let n = 64usize;
    let p = 4usize;
    let src_idx: Vec<usize> = (0..n).collect();
    let dst_idx: Vec<usize> = (0..n).map(|k| (k * 13 + 5) % n).collect();
    let si = src_idx.clone();
    let di_for_run = dst_idx.clone();

    let out = test_world(p).run(move |ep| {
        let g = Group::world(p);
        // Source: multiblock 1-D (balanced block); destination: chaos
        // cyclic, both with known closed-form owners.
        let mut a = MultiblockArray::<f64>::new(&g, ep.rank(), &[n]);
        a.fill_with(|c| c[0] as f64);
        let mut x = {
            let mut comm = Comm::new(ep, g.clone());
            IrregArray::create(&mut comm, n, Partition::Cyclic, |_| 0.0)
        };
        let sset = SetOfRegions::single(RegularSection::whole(&[n]));
        let dset = SetOfRegions::single(IndexSet::new(di_for_run.clone()));
        let sched = compute_schedule(
            ep,
            &g,
            &g,
            Some(Side::new(&a, &sset)),
            &g,
            Some(Side::new(&x, &dset)),
            BuildMethod::Duplication,
        )
        .unwrap();
        let before = ep.stats_snapshot();
        data_move(ep, &sched, &a, &mut x);
        let delta = ep.stats_snapshot().since(&before);
        (delta.msgs_to.clone(), delta.bytes_to.clone())
    });

    // Hand-coded expectation.
    let block = n / p; // n divisible by p here
    let expect = hand_pairs(|s| s / block, |d| d % p, &si, &dst_idx);

    for (src_rank, (msgs, bytes)) in out.results.iter().enumerate() {
        for dst_rank in 0..p {
            let elems = expect.get(&(src_rank, dst_rank)).copied().unwrap_or(0);
            let want_msgs = u64::from(elems > 0);
            assert_eq!(msgs[dst_rank], want_msgs, "messages {src_rank}->{dst_rank}");
            // Payload: Vec<f64> wire encoding = 8-byte length + 8 per elem.
            let want_bytes = if elems > 0 { 8 + 8 * elems } else { 0 };
            assert_eq!(bytes[dst_rank], want_bytes, "bytes {src_rank}->{dst_rank}");
        }
    }
}

#[test]
fn schedule_reuse_sends_no_extra_messages() {
    let n = 32usize;
    let out = test_world(2).run(move |ep| {
        let g = Group::world(2);
        let mut a = MultiblockArray::<f64>::new(&g, ep.rank(), &[n]);
        a.fill_with(|c| c[0] as f64);
        let mut x = {
            let mut comm = Comm::new(ep, g.clone());
            IrregArray::create(&mut comm, n, Partition::Cyclic, |_| 0.0)
        };
        let sset = SetOfRegions::single(RegularSection::whole(&[n]));
        let dset = SetOfRegions::single(IndexSet::new((0..n).collect()));
        let sched = compute_schedule(
            ep,
            &g,
            &g,
            Some(Side::new(&a, &sset)),
            &g,
            Some(Side::new(&x, &dset)),
            BuildMethod::Cooperation,
        )
        .unwrap();
        let mut per_run = Vec::new();
        for _ in 0..3 {
            let before = ep.stats_snapshot();
            data_move(ep, &sched, &a, &mut x);
            per_run.push(ep.stats_snapshot().since(&before).total_msgs());
        }
        per_run
    });
    for runs in out.results {
        assert!(runs.windows(2).all(|w| w[0] == w[1]), "{runs:?}");
    }
}

#[test]
fn local_only_transfer_sends_nothing() {
    // Identical distributions: every element stays put; zero messages.
    let n = 40usize;
    let out = test_world(4).run(move |ep| {
        let g = Group::world(4);
        let mut a = MultiblockArray::<f64>::new(&g, ep.rank(), &[n]);
        a.fill_with(|c| c[0] as f64);
        let mut b = MultiblockArray::<f64>::new(&g, ep.rank(), &[n]);
        let set = SetOfRegions::single(RegularSection::whole(&[n]));
        let sched = compute_schedule(
            ep,
            &g,
            &g,
            Some(Side::new(&a, &set)),
            &g,
            Some(Side::new(&b, &set)),
            BuildMethod::Duplication,
        )
        .unwrap();
        assert_eq!(sched.msgs_out(), 0);
        assert_eq!(sched.elems_local(), a.local().len());
        let before = ep.stats_snapshot();
        data_move(ep, &sched, &a, &mut b);
        let delta = ep.stats_snapshot().since(&before);
        delta.total_msgs()
    });
    assert!(out.results.iter().all(|&m| m == 0));
}

/// The run-compressed executor must be indistinguishable on the wire from
/// the element-list executor it replaced: same per-pair message counts,
/// same per-pair byte totals, and byte-identical destination contents.
#[test]
fn run_compressed_executor_matches_elementwise() {
    use meta_chaos::datamove::data_move_elementwise;
    let n = 48usize;
    let p = 4usize;
    let out = test_world(p).run(move |ep| {
        let g = Group::world(p);
        let mut b = MultiblockArray::<f64>::new(&g, ep.rank(), &[n]);
        b.fill_with(|c| c[0] as f64 * 1.5);
        // Regular -> regular: a shifted section copy that crosses ranks.
        let sset = SetOfRegions::single(RegularSection::of_bounds(&[(0, n - 8)]));
        let dset = SetOfRegions::single(RegularSection::of_bounds(&[(8, n)]));
        let mut a_fast = MultiblockArray::<f64>::new(&g, ep.rank(), &[n]);
        let sched = compute_schedule(
            ep,
            &g,
            &g,
            Some(Side::new(&b, &sset)),
            &g,
            Some(Side::new(&a_fast, &dset)),
            BuildMethod::Cooperation,
        )
        .unwrap();

        let before = ep.stats_snapshot();
        data_move(ep, &sched, &b, &mut a_fast);
        let fast = ep.stats_snapshot().since(&before);

        let mut a_slow = MultiblockArray::<f64>::new(&g, ep.rank(), &[n]);
        let before = ep.stats_snapshot();
        data_move_elementwise(ep, &sched, &b, &mut a_slow);
        let slow = ep.stats_snapshot().since(&before);

        assert_eq!(fast.msgs_to, slow.msgs_to, "per-pair message counts");
        assert_eq!(fast.bytes_to, slow.bytes_to, "per-pair message bytes");
        assert_eq!(a_fast.local(), a_slow.local(), "destination contents");
        (fast.msgs_to.clone(), fast.bytes_to.clone())
    });
    // And both match the hand-coded minimum: block owners, shift by 8.
    let block = n / p;
    let src_idx: Vec<usize> = (0..n - 8).collect();
    let dst_idx: Vec<usize> = (8..n).collect();
    let expect = hand_pairs(|s| s / block, |d| d / block, &src_idx, &dst_idx);
    for (src_rank, (msgs, bytes)) in out.results.iter().enumerate() {
        for dst_rank in 0..p {
            let elems = expect.get(&(src_rank, dst_rank)).copied().unwrap_or(0);
            assert_eq!(msgs[dst_rank], u64::from(elems > 0));
            let want = if elems > 0 { 8 + 8 * elems } else { 0 };
            assert_eq!(bytes[dst_rank], want);
        }
    }
}

/// Same parity check for a regular -> irregular transfer, which exercises
/// the per-element fallback on the chaos side and the run fast path on the
/// multiblock side within one move.
#[test]
fn mixed_library_parity_with_elementwise() {
    use meta_chaos::datamove::data_move_elementwise;
    let n = 36usize;
    test_world(3).run(move |ep| {
        let g = Group::world(3);
        let mut a = MultiblockArray::<f64>::new(&g, ep.rank(), &[n]);
        a.fill_with(|c| c[0] as f64 + 0.25);
        let mut x_fast = {
            let mut comm = Comm::new(ep, g.clone());
            IrregArray::create(&mut comm, n, Partition::Random(29), |_| 0.0)
        };
        let mut x_slow = x_fast.clone();
        let sset = SetOfRegions::single(RegularSection::whole(&[n]));
        let dset = SetOfRegions::single(IndexSet::new((0..n).rev().collect()));
        let sched = compute_schedule(
            ep,
            &g,
            &g,
            Some(Side::new(&a, &sset)),
            &g,
            Some(Side::new(&x_fast, &dset)),
            BuildMethod::Cooperation,
        )
        .unwrap();
        let before = ep.stats_snapshot();
        data_move(ep, &sched, &a, &mut x_fast);
        let fast = ep.stats_snapshot().since(&before);
        let before = ep.stats_snapshot();
        data_move_elementwise(ep, &sched, &a, &mut x_slow);
        let slow = ep.stats_snapshot().since(&before);
        assert_eq!(fast.msgs_to, slow.msgs_to);
        assert_eq!(fast.bytes_to, slow.bytes_to);
        assert_eq!(x_fast.local(), x_slow.local());
    });
}

/// Observability cross-check: the per-pair message counts and byte totals
/// derived purely from the trace (its `Send` events) must equal the
/// `NetStats` counters exactly — one event model, one truth.
#[test]
fn trace_send_events_match_per_pair_netstats() {
    use mcsim::trace::TraceEvent;
    let n = 64usize;
    let p = 4usize;
    let dst_idx: Vec<usize> = (0..n).map(|k| (k * 13 + 5) % n).collect();
    let out = test_world(p).with_trace().run(move |ep| {
        let g = Group::world(p);
        let mut a = MultiblockArray::<f64>::new(&g, ep.rank(), &[n]);
        a.fill_with(|c| c[0] as f64);
        let mut x = {
            let mut comm = Comm::new(ep, g.clone());
            IrregArray::create(&mut comm, n, Partition::Cyclic, |_| 0.0)
        };
        let sset = SetOfRegions::single(RegularSection::whole(&[n]));
        let dset = SetOfRegions::single(IndexSet::new(dst_idx.clone()));
        let sched = compute_schedule(
            ep,
            &g,
            &g,
            Some(Side::new(&a, &sset)),
            &g,
            Some(Side::new(&x, &dset)),
            BuildMethod::Cooperation,
        )
        .unwrap();
        data_move(ep, &sched, &a, &mut x);
        // The whole-run snapshot, so it covers the same window the trace
        // does (schedule build included).
        ep.stats_snapshot()
    });
    assert_eq!(out.traces.len(), p, "tracing was enabled");
    for (rank, timeline) in out.traces.iter().enumerate() {
        let mut msgs = vec![0u64; p];
        let mut bytes = vec![0u64; p];
        for ev in timeline {
            if let TraceEvent::Send { to, bytes: b, .. } = ev {
                msgs[*to] += 1;
                bytes[*to] += *b as u64;
            }
        }
        let snap = &out.results[rank];
        assert_eq!(msgs, snap.msgs_to, "rank {rank} per-pair message counts");
        assert_eq!(bytes, snap.bytes_to, "rank {rank} per-pair byte totals");
    }
}

/// The `MC_ComputeSched` memo: a repeat call with identical inputs is a
/// cache hit (no rebuild), a mutated region set is a miss, and the cached
/// schedule moves data correctly.
#[test]
fn schedule_cache_hits_and_misses() {
    use meta_chaos::api::{mc_compute_sched, mc_sched_cache_len};
    let n = 30usize;
    test_world(3).run(move |ep| {
        let g = Group::world(3);
        let mut b = MultiblockArray::<f64>::new(&g, ep.rank(), &[n]);
        b.fill_with(|c| c[0] as f64);
        let mut a = MultiblockArray::<f64>::new(&g, ep.rank(), &[n]);
        let sset = SetOfRegions::single(RegularSection::of_bounds(&[(0, n / 2)]));
        let dset = SetOfRegions::single(RegularSection::of_bounds(&[(n / 2, n)]));

        let before = ep.stats_snapshot();
        let s1 = mc_compute_sched(ep, &g, &b, &sset, &a, &dset).unwrap();
        let d1 = ep.stats_snapshot().since(&before);
        assert_eq!((d1.sched_cache_hits, d1.sched_cache_misses), (0, 1));
        assert_eq!(mc_sched_cache_len(ep), 1);

        // Identical inputs: a hit, and the same schedule comes back.
        let before = ep.stats_snapshot();
        let s2 = mc_compute_sched(ep, &g, &b, &sset, &a, &dset).unwrap();
        let d2 = ep.stats_snapshot().since(&before);
        assert_eq!((d2.sched_cache_hits, d2.sched_cache_misses), (1, 0));
        assert_eq!(s1.sends, s2.sends);
        assert_eq!(s1.recvs, s2.recvs);
        assert_eq!(s1.local_pairs, s2.local_pairs);
        assert_eq!(mc_sched_cache_len(ep), 1);

        // A different destination set: a miss and a second memo entry.
        let dset2 = SetOfRegions::single(RegularSection::of_bounds(&[(0, n / 2)]));
        let before = ep.stats_snapshot();
        let s3 = mc_compute_sched(ep, &g, &b, &sset, &a, &dset2).unwrap();
        let d3 = ep.stats_snapshot().since(&before);
        assert_eq!((d3.sched_cache_hits, d3.sched_cache_misses), (0, 1));
        assert_eq!(mc_sched_cache_len(ep), 2);

        // The cached schedule is live: execute it and check the motion.
        data_move(ep, &s2, &b, &mut a);
        let _ = s3;
        let my_lo = ep.rank() * (n / 3);
        for (off, &v) in a.local().iter().enumerate() {
            let gidx = my_lo + off;
            let want = if gidx >= n / 2 {
                (gidx - n / 2) as f64
            } else {
                0.0
            };
            assert_eq!(v, want, "A[{gidx}]");
        }
    });
}
