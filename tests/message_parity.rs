//! The paper's §4.1.4 claim: "A set of messages crafted by hand ... would
//! require exactly the same number of messages as the set created by
//! Meta-Chaos.  Moreover, the sizes of the messages ... are also the
//! same."  These tests compute the hand-coded minimum (one message per
//! communicating owner pair, payload = element count × 8 bytes + the
//! length header) and assert the executed data move matches it exactly.

use std::collections::HashMap;

use mcsim::group::{Comm, Group};
use meta_chaos::build::{compute_schedule, BuildMethod};
use meta_chaos::datamove::data_move;
use meta_chaos::region::{IndexSet, RegularSection};
use meta_chaos::setof::SetOfRegions;
use meta_chaos::Side;
use meta_chaos_repro::test_world;

use chaos::{IrregArray, Partition};
use multiblock::MultiblockArray;

/// Hand-computed transfer matrix: `(src_rank, dst_rank) -> element count`
/// for `dst[dst_idx[k]] = src[src_idx[k]]` with known owner functions.
fn hand_pairs(
    src_owner: impl Fn(usize) -> usize,
    dst_owner: impl Fn(usize) -> usize,
    src_idx: &[usize],
    dst_idx: &[usize],
) -> HashMap<(usize, usize), u64> {
    let mut pairs = HashMap::new();
    for (s, d) in src_idx.iter().zip(dst_idx) {
        let so = src_owner(*s);
        let dd = dst_owner(*d);
        if so != dd {
            *pairs.entry((so, dd)).or_insert(0u64) += 1;
        }
    }
    pairs
}

#[test]
fn message_counts_and_sizes_match_hand_coded() {
    let n = 64usize;
    let p = 4usize;
    let src_idx: Vec<usize> = (0..n).collect();
    let dst_idx: Vec<usize> = (0..n).map(|k| (k * 13 + 5) % n).collect();
    let si = src_idx.clone();
    let di_for_run = dst_idx.clone();

    let out = test_world(p).run(move |ep| {
        let g = Group::world(p);
        // Source: multiblock 1-D (balanced block); destination: chaos
        // cyclic, both with known closed-form owners.
        let mut a = MultiblockArray::<f64>::new(&g, ep.rank(), &[n]);
        a.fill_with(|c| c[0] as f64);
        let mut x = {
            let mut comm = Comm::new(ep, g.clone());
            IrregArray::create(&mut comm, n, Partition::Cyclic, |_| 0.0)
        };
        let sset = SetOfRegions::single(RegularSection::whole(&[n]));
        let dset = SetOfRegions::single(IndexSet::new(di_for_run.clone()));
        let sched = compute_schedule(
            ep,
            &g,
            &g,
            Some(Side::new(&a, &sset)),
            &g,
            Some(Side::new(&x, &dset)),
            BuildMethod::Duplication,
        )
        .unwrap();
        let before = ep.stats_snapshot();
        data_move(ep, &sched, &a, &mut x);
        let delta = ep.stats_snapshot().since(&before);
        (delta.msgs_to.clone(), delta.bytes_to.clone())
    });

    // Hand-coded expectation.
    let block = n / p; // n divisible by p here
    let expect = hand_pairs(|s| s / block, |d| d % p, &si, &dst_idx);

    for (src_rank, (msgs, bytes)) in out.results.iter().enumerate() {
        for dst_rank in 0..p {
            let elems = expect.get(&(src_rank, dst_rank)).copied().unwrap_or(0);
            let want_msgs = u64::from(elems > 0);
            assert_eq!(msgs[dst_rank], want_msgs, "messages {src_rank}->{dst_rank}");
            // Payload: Vec<f64> wire encoding = 8-byte length + 8 per elem.
            let want_bytes = if elems > 0 { 8 + 8 * elems } else { 0 };
            assert_eq!(bytes[dst_rank], want_bytes, "bytes {src_rank}->{dst_rank}");
        }
    }
}

#[test]
fn schedule_reuse_sends_no_extra_messages() {
    let n = 32usize;
    let out = test_world(2).run(move |ep| {
        let g = Group::world(2);
        let mut a = MultiblockArray::<f64>::new(&g, ep.rank(), &[n]);
        a.fill_with(|c| c[0] as f64);
        let mut x = {
            let mut comm = Comm::new(ep, g.clone());
            IrregArray::create(&mut comm, n, Partition::Cyclic, |_| 0.0)
        };
        let sset = SetOfRegions::single(RegularSection::whole(&[n]));
        let dset = SetOfRegions::single(IndexSet::new((0..n).collect()));
        let sched = compute_schedule(
            ep,
            &g,
            &g,
            Some(Side::new(&a, &sset)),
            &g,
            Some(Side::new(&x, &dset)),
            BuildMethod::Cooperation,
        )
        .unwrap();
        let mut per_run = Vec::new();
        for _ in 0..3 {
            let before = ep.stats_snapshot();
            data_move(ep, &sched, &a, &mut x);
            per_run.push(ep.stats_snapshot().since(&before).total_msgs());
        }
        per_run
    });
    for runs in out.results {
        assert!(runs.windows(2).all(|w| w[0] == w[1]), "{runs:?}");
    }
}

#[test]
fn local_only_transfer_sends_nothing() {
    // Identical distributions: every element stays put; zero messages.
    let n = 40usize;
    let out = test_world(4).run(move |ep| {
        let g = Group::world(4);
        let mut a = MultiblockArray::<f64>::new(&g, ep.rank(), &[n]);
        a.fill_with(|c| c[0] as f64);
        let mut b = MultiblockArray::<f64>::new(&g, ep.rank(), &[n]);
        let set = SetOfRegions::single(RegularSection::whole(&[n]));
        let sched = compute_schedule(
            ep,
            &g,
            &g,
            Some(Side::new(&a, &set)),
            &g,
            Some(Side::new(&b, &set)),
            BuildMethod::Duplication,
        )
        .unwrap();
        assert_eq!(sched.msgs_out(), 0);
        assert_eq!(sched.elems_local(), a.local().len());
        let before = ep.stats_snapshot();
        data_move(ep, &sched, &a, &mut b);
        let delta = ep.stats_snapshot().since(&before);
        delta.total_msgs()
    });
    assert!(out.results.iter().all(|&m| m == 0));
}
