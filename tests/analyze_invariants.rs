//! Invariants of the causal critical-path analyzer (DESIGN.md §4i).
//!
//! Three properties must hold on every trace, clean or faulted:
//!
//! 1. **Tiling** — per transfer, the phase attribution sums exactly to
//!    the end-to-end virtual time (within `SUM_TOLERANCE`); nothing is
//!    double-counted, nothing is lost.
//! 2. **Monotonicity** — the reconstructed path walks strictly backward
//!    on the virtual clock: `start <= end` per transfer and every
//!    segment lies inside `[start, end]`.
//! 3. **Exact send→recv matching** — every delivered payload is matched
//!    to the physical send copy that caused it, even when the fault
//!    plan drops, duplicates, corrupts, and delays frames and the
//!    reliable transport retransmits around the damage.
//!
//! The faulted runs repeat across the committed seed set
//! ([`mcsim::fault::test_seeds`]) so the matcher is exercised against
//! three different interleavings of loss and duplication.

use mcsim::analyze::{self, SUM_TOLERANCE};
use mcsim::fault::{test_seeds, FaultPlan, FaultRates};
use mcsim::trace::TraceEvent;
use mcsim::{MachineModel, World};

use meta_chaos::build::{compute_schedule, BuildMethod};
use meta_chaos::coupling::Coupler;
use meta_chaos::region::RegularSection;
use meta_chaos::setof::SetOfRegions;
use meta_chaos::Side;

use hpf::{HpfArray, HpfDist};
use multiblock::MultiblockArray;

/// A traced coupled run (Multiblock {0,1} put / HPF {2,3} get, as in
/// `bench::traced`), optionally under a lossy fault plan.
fn traced_run(n: usize, reps: usize, faults: Option<FaultPlan>) -> Vec<Vec<TraceEvent>> {
    let mut world = World::with_model(4, MachineModel::sp2()).with_trace();
    if let Some(plan) = faults {
        world = world.with_faults(plan);
    }
    let out = world.run(move |ep| {
        let (pa, pb, un) = mcsim::group::Group::split_two(2, 2, 32);
        let set: SetOfRegions<RegularSection> = SetOfRegions::single(RegularSection::whole(&[n]));
        let mut coupler = Coupler::new();
        if pa.contains(ep.rank()) {
            let mut v = MultiblockArray::<f64>::new(&pa, ep.rank(), &[n]);
            v.fill_with(|c| (c[0] * 7 + 3) as f64);
            let sched = compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                ep,
                &un,
                &pa,
                Some(Side::new(&v, &set)),
                &pb,
                None,
                BuildMethod::Cooperation,
            )
            .expect("schedule");
            coupler.bind("boundary", sched);
            for _ in 0..reps {
                coupler.put(ep, "boundary", &v).expect("put");
            }
        } else {
            let mut h = HpfArray::<f64>::new(&pb, ep.rank(), HpfDist::block_1d(n, 2));
            let sched = compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                ep,
                &un,
                &pa,
                None,
                &pb,
                Some(Side::new(&h, &set)),
                BuildMethod::Cooperation,
            )
            .expect("schedule");
            coupler.bind("boundary", sched);
            for _ in 0..reps {
                coupler.get(ep, "boundary", &mut h).expect("get");
            }
        }
    });
    out.traces
}

/// A fault plan nasty enough to force retransmits, duplicate
/// suppression, and window stalls, yet crash-free so every transfer
/// completes.
fn lossy_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed).rates(FaultRates {
        drop: 0.15,
        dup: 0.15,
        corrupt: 0.08,
        delay: 0.10,
        delay_secs: 2e-4,
    })
}

fn assert_invariants(traces: &[Vec<TraceEvent>], label: &str) {
    let report = analyze::analyze(traces);
    assert!(
        !report.transfers.is_empty(),
        "{label}: no transfers reconstructed"
    );

    // Monotone + non-negative + tiling, via the built-in self check…
    report
        .self_check()
        .unwrap_or_else(|e| panic!("{label}: {e}"));

    // …and again explicitly, so a future self_check() regression can't
    // silently weaken this suite.
    for t in &report.transfers {
        assert!(
            t.start <= t.end,
            "{label}: transfer seq={} occ={} runs backward",
            t.seq,
            t.occurrence
        );
        let tol = SUM_TOLERANCE * t.duration().max(1.0);
        assert!(
            (t.attributed() - t.duration()).abs() <= tol,
            "{label}: transfer seq={} occ={}: attributed {} != end-to-end {}",
            t.seq,
            t.occurrence,
            t.attributed(),
            t.duration()
        );
        assert!(t.segments > 0, "{label}: transfer tiled into zero segments");
        for (phase, s) in &t.phases {
            assert!(
                s.is_finite() && *s >= -tol,
                "{label}: phase {phase} attribution {s} negative or non-finite"
            );
        }
    }

    // Exact matching: every delivered payload found its physical copy.
    assert!(report.recvs > 0, "{label}: trace recorded no recvs");
    assert_eq!(
        report.unmatched_recvs, 0,
        "{label}: {}/{} recvs unmatched",
        report.unmatched_recvs, report.recvs
    );

    // The matcher itself must hand back causally possible pairs.
    for (rank, recvs) in analyze::match_sends(traces).iter().enumerate() {
        for m in recvs {
            let s = m
                .send
                .as_ref()
                .unwrap_or_else(|| panic!("{label}: rank {rank} recv at {} unmatched", m.at));
            assert!(
                s.arrival <= m.at + 1e-9,
                "{label}: rank {rank} recv at {} matched to a copy arriving later ({})",
                m.at,
                s.arrival
            );
            assert_eq!(s.rank, m.from, "{label}: matched copy from the wrong rank");
        }
    }
}

#[test]
fn clean_run_attribution_tiles_and_matches() {
    let traces = traced_run(256, 2, None);
    assert_invariants(&traces, "clean");
}

#[test]
fn faulted_runs_keep_invariants_across_seeds() {
    for seed in test_seeds() {
        let traces = traced_run(192, 2, Some(lossy_plan(seed)));
        // Under this plan retransmission must actually have happened,
        // otherwise the test is not exercising the dup/drop paths.
        let retransmits = traces
            .iter()
            .flatten()
            .filter(|e| matches!(e, TraceEvent::Retransmit { .. }))
            .count();
        assert!(
            retransmits > 0,
            "seed {seed}: fault plan produced no retransmits"
        );
        assert_invariants(&traces, &format!("faulted seed {seed}"));
    }
}

#[test]
fn zero_model_traces_still_tile() {
    // On the zero machine model every timestamp collapses to 0; the
    // analyzer must degrade to zero-duration transfers without NaNs,
    // negative phases, or tiling residue.
    let world = World::new(4).with_trace();
    let out = world.run(move |ep| {
        let n = 64;
        let (pa, pb, un) = mcsim::group::Group::split_two(2, 2, 32);
        let set: SetOfRegions<RegularSection> = SetOfRegions::single(RegularSection::whole(&[n]));
        let mut coupler = Coupler::new();
        if pa.contains(ep.rank()) {
            let mut v = MultiblockArray::<f64>::new(&pa, ep.rank(), &[n]);
            v.fill_with(|c| c[0] as f64);
            let sched = compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                ep,
                &un,
                &pa,
                Some(Side::new(&v, &set)),
                &pb,
                None,
                BuildMethod::Cooperation,
            )
            .expect("schedule");
            coupler.bind("b", sched);
            coupler.put(ep, "b", &v).expect("put");
        } else {
            let mut h = HpfArray::<f64>::new(&pb, ep.rank(), HpfDist::block_1d(n, 2));
            let sched = compute_schedule::<f64, MultiblockArray<f64>, HpfArray<f64>>(
                ep,
                &un,
                &pa,
                None,
                &pb,
                Some(Side::new(&h, &set)),
                BuildMethod::Cooperation,
            )
            .expect("schedule");
            coupler.bind("b", sched);
            coupler.get(ep, "b", &mut h).expect("get");
        }
    });
    let report = analyze::analyze(&out.traces);
    report.self_check().expect("zero-model attribution tiles");
    for t in &report.transfers {
        for (phase, s) in &t.phases {
            assert!(
                s.is_finite() && *s >= 0.0,
                "phase {phase} went non-finite/negative on the zero model"
            );
        }
    }
}
