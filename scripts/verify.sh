#!/usr/bin/env bash
# Full offline verification: build, test, lint.  No network access needed —
# the workspace has zero crates.io dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test --workspace -q
cargo clippy --all-targets -- -D warnings

echo "verify: all checks passed"
