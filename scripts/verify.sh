#!/usr/bin/env bash
# Full offline verification: build, test, lint.  No network access needed —
# the workspace has zero crates.io dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings

# Fault-injection gate: the fault matrix drives every injector kind through
# the coupled transfer, plus the transactional-transfer suite (stale
# schedules, manifest mismatches, mid-transfer crashes, idempotent retries).
# Each seed runs in its own process via MC_FAULT_SEED so one seed's failure
# pinpoints the seed.
for seed in 11 42 20260805; do
  echo "== fault matrix / robustness, seed $seed =="
  MC_FAULT_SEED=$seed cargo test --test fault_matrix -q
  MC_FAULT_SEED=$seed cargo test --test robustness -q
done

# Trace-schema gate: a small traced coupled run must export valid JSONL
# (one self-describing object per event) that the checker accepts.
trace_tmp="$(mktemp -t mc_trace.XXXXXX.jsonl)"
trap 'rm -f "$trace_tmp"' EXIT
echo "== trace schema =="
cargo run --release -p bench --bin repro -- trace --n 256 --reps 1 --trace-out "$trace_tmp"
cargo run --release -p bench --bin repro -- trace-check "$trace_tmp"

echo "verify: all checks passed"
