#!/usr/bin/env bash
# Full offline verification: build, test, lint.  No network access needed —
# the workspace has zero crates.io dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test --workspace -q
cargo clippy --all-targets -- -D warnings

# Fault-injection gate: the fault matrix drives every injector kind through
# the coupled transfer under 3 fixed seeds (11, 42, 20260805) and demands
# byte-identical results with bounded, deterministic retries.
cargo test --test fault_matrix -q
cargo test --test robustness -q

echo "verify: all checks passed"
