#!/usr/bin/env bash
# Full offline verification: build, test, lint.  No network access needed —
# the workspace has zero crates.io dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings

# Fault-injection gate: the fault matrix drives every injector kind through
# the coupled transfer, plus the transactional-transfer suite (stale
# schedules, manifest mismatches, mid-transfer crashes, idempotent retries).
# Each seed runs in its own process via MC_FAULT_SEED so one seed's failure
# pinpoints the seed.
for seed in 11 42 20260805; do
  echo "== fault matrix / robustness, seed $seed =="
  MC_FAULT_SEED=$seed cargo test --test fault_matrix -q
  MC_FAULT_SEED=$seed cargo test --test robustness -q
done

# Fuzz gate: a bounded differential soak with fixed seeds — ~300 scenarios
# round-robined across all 16 library pairs, each checked against the
# reference inspector, a serial memory model, and a virtual-clock deadline.
# On a violation the driver shrinks the scenario and leaves a self-contained
# repro (scenario + failure + flight-recorder post-mortem) in target/fuzz/.
echo "== fuzz soak (16-pair matrix) =="
cargo run --release -p fuzz -- --matrix --iters 304 --seed 1 || {
  echo "fuzz gate: oracle violation — see repro under target/fuzz/" >&2
  exit 1
}

# Wide soak: the same differential oracles, but over 8- and 16-rank worlds
# so every scenario exercises the cooperative M:N scheduler with real rank
# multiplexing (the narrow soak's 2–4-rank worlds park at most a handful of
# green tasks at a time).
echo "== fuzz soak (wide: 8/16-rank worlds) =="
cargo run --release -p fuzz -- --matrix --wide --iters 64 --seed 3 || {
  echo "wide fuzz gate: oracle violation — see repro under target/fuzz/" >&2
  exit 1
}

# Crash-recovery gate: a bounded supervised soak — 1–2 scripted crashes per
# scenario resolved against a fault-free baseline's transfer windows, the
# supervisor respawning each victim from its checkpoint, and the
# bit-identical convergence oracle (destination equals the fault-free run,
# every rank returning cleanly) on every scenario.  Violations shrink and
# leave a repro in target/fuzz/ like the differential soak above.
echo "== recovery soak =="
cargo run --release -p fuzz -- --recover --iters 48 --seed 7 || {
  echo "recovery gate: oracle violation — see repro under target/fuzz/" >&2
  exit 1
}

# Trace-schema gate: a small traced coupled run must export valid JSONL
# (one self-describing object per event) that the checker accepts.
trace_tmp="$(mktemp -t mc_trace.XXXXXX.jsonl)"
trap 'rm -f "$trace_tmp"' EXIT
echo "== trace schema =="
cargo run --release -p bench --bin repro -- trace --n 256 --reps 1 --trace-out "$trace_tmp"
cargo run --release -p bench --bin repro -- trace-check "$trace_tmp"

# Inspector-regression gate: re-run `repro micro` and compare the run-based
# cooperation build time against the checked-in baseline.  The baseline is
# saved BEFORE the run because `repro micro` rewrites BENCH_executor.json in
# place; the baseline file is restored afterwards so verify never dirties
# the tree.  Fails on >25% regression; a faster run always passes.
echo "== inspector regression =="
extract_ns() {
  # BENCH_executor.json is one line; grab the first inspector_build_ns value.
  sed -n 's/.*"inspector_build_ns": \([0-9.]*\).*/\1/p' "$1" | head -n 1
}
baseline_json="$(mktemp -t mc_baseline.XXXXXX.json)"
trap 'rm -f "$trace_tmp" "$baseline_json"' EXIT
cp BENCH_executor.json "$baseline_json"
baseline_ns="$(extract_ns "$baseline_json")"
if [ -z "$baseline_ns" ]; then
  echo "inspector gate: no inspector_build_ns in baseline BENCH_executor.json" >&2
  exit 1
fi
extract_field() {
  sed -n "s/.*\"$2\": \([0-9.]*\).*/\1/p" "$1" | head -n 1
}
baseline_rel="$(extract_field "$baseline_json" reliable_mb_per_s)"
cargo run --release -p bench --bin repro -- micro
current_ns="$(extract_ns BENCH_executor.json)"
current_rel="$(extract_field BENCH_executor.json reliable_mb_per_s)"
current_speedup="$(extract_field BENCH_executor.json window_speedup)"
cp "$baseline_json" BENCH_executor.json
awk -v base="$baseline_ns" -v cur="$current_ns" 'BEGIN {
  limit = base * 1.25
  printf "inspector build: %.0f ns (baseline %.0f ns, limit %.0f ns)\n", cur, base, limit
  exit !(cur <= limit)
}' || {
  echo "inspector gate: inspector_build_ns regressed >25% vs baseline" >&2
  exit 1
}

# Wire-throughput regression gate: the reliable transport leg must hold at
# least 75% of the committed baseline throughput (higher is always fine),
# and the sliding window must keep its >=4x win over the stop-and-wait
# ablation on the simulated sp2 wire.
echo "== wire throughput regression =="
if [ -z "$baseline_rel" ] || [ -z "$current_rel" ]; then
  echo "wire gate: no reliable_mb_per_s in BENCH_executor.json" >&2
  exit 1
fi
awk -v base="$baseline_rel" -v cur="$current_rel" 'BEGIN {
  floor = base * 0.75
  printf "reliable wire: %.0f MB/s (baseline %.0f MB/s, floor %.0f MB/s)\n", cur, base, floor
  exit !(cur >= floor)
}' || {
  echo "wire gate: reliable_mb_per_s regressed >25% vs baseline" >&2
  exit 1
}
awk -v s="$current_speedup" 'BEGIN {
  printf "window speedup: %.2fx (floor 4.00x)\n", s
  exit !(s >= 4.0)
}' || {
  echo "wire gate: windowed transport lost its 4x margin over stop-and-wait" >&2
  exit 1
}

# Scaling gate: a P=256 leg of the M:N-runner scaling curve (inspector
# build, coupled transfer settle, HPF redistribution) re-run fresh and
# held against the committed BENCH_scaling.json.  The compared times are
# *simulated* milliseconds — deterministic, so a clean tree reproduces
# the baseline exactly and the +25% threshold only trips on a real
# change to the machine model, the collectives, or the inspector.
echo "== scaling smoke (P=256) =="
scaling_tmp="$(mktemp -t mc_scaling.XXXXXX.json)"
trap 'rm -f "$trace_tmp" "$baseline_json" "$scaling_tmp"' EXIT
cargo run --release -p bench --bin repro -- scaling --procs 256 --out "$scaling_tmp"
for metric in p256_inspector_virtual_ms p256_transfer_virtual_ms; do
  base="$(extract_field BENCH_scaling.json "$metric")"
  cur="$(extract_field "$scaling_tmp" "$metric")"
  if [ -z "$base" ] || [ -z "$cur" ]; then
    echo "scaling gate: missing $metric in baseline or fresh run" >&2
    exit 1
  fi
  awk -v base="$base" -v cur="$cur" -v m="$metric" 'BEGIN {
    limit = base * 1.25
    printf "%s: %.3f ms (baseline %.3f ms, limit %.3f ms)\n", m, cur, base, limit
    exit !(cur <= limit)
  }' || {
    echo "scaling gate: $metric regressed >25% vs BENCH_scaling.json" >&2
    exit 1
  }
done

# Critical-path attribution gate: `repro analyze` reconstructs the causal
# DAG of a traced coupled run, walks the critical path of every transfer,
# and self-checks that the per-phase attribution tiles the end-to-end
# virtual time exactly (exit 1 on residue).  The fresh attribution is then
# trace-diffed against the committed baseline: any taxonomy phase — and
# the combined wire+window_stall transport time in particular — growing
# >25% in critical-path seconds fails the build.  The virtual clock makes
# identical runs bit-identical, so a clean tree diffs to exactly zero.
echo "== critical-path attribution =="
attr_tmp="$(mktemp -t mc_attr.XXXXXX.json)"
trap 'rm -f "$trace_tmp" "$baseline_json" "$scaling_tmp" "$attr_tmp"' EXIT
cargo run --release -p bench --bin repro -- analyze --n 4096 --reps 2 --out "$attr_tmp"
echo "== trace-diff vs baseline =="
cargo run --release -p bench --bin repro -- trace-diff BENCH_critical_path.json "$attr_tmp" --threshold 0.25 || {
  echo "trace-diff gate: critical-path attribution regressed vs BENCH_critical_path.json" >&2
  exit 1
}

echo "verify: all checks passed"
