//! Schedule construction (paper §4.1.3 and §5.1).
//!
//! Two strategies, both producing byte-identical data motion:
//!
//! * [`BuildMethod::Cooperation`] — each side dereferences only the
//!   elements it owns; ownership is matched through position-block
//!   coordinators; the destination side assembles the schedule and returns
//!   each source rank its send half.  One dereference per side, several
//!   small all-to-all exchanges.
//! * [`BuildMethod::Duplication`] — the sides exchange *data descriptors*
//!   (distribution metadata) and every rank redundantly dereferences the
//!   entire transfer locally.  No matching communication at all — but two
//!   full dereference sweeps, and for Chaos the descriptor is the whole
//!   translation table.  This reproduces the paper's observation that
//!   duplication costs ≈2× cooperation when a Chaos array is involved
//!   (Table 2) yet is the cheapest method for regular–regular transfers in
//!   one program (Table 5, where it needs no communication at all).
//!
//! The same entry point serves single-program transfers (every rank passes
//! both sides) and two-program transfers (each rank passes its own side and
//! `None` for the other).
//!
//! Both strategies are **run-based**: libraries describe what they own as
//! `(pos_start, len, addr_start, stride)` runs
//! ([`McObject::deref_owned_runs`]), runs stay on the wire through every
//! phase (split only at [`PosBlocks`] coordinator boundaries), coordinators
//! match ownership by interval intersection over two sorted run lists, and
//! the resulting [`AddrRuns`] are emitted straight into the [`Schedule`] —
//! per-element pair vectors are never materialized, so regular–regular
//! construction is O(regions) instead of O(elements).  Irregular
//! (Chaos-style) sets degrade to length-1 runs and do the same per-element
//! work as before.  The element-wise implementation is retained as
//! [`compute_schedule_reference`] for parity testing and benchmarking; both
//! produce byte-identical schedules.

use mcsim::group::{Comm, Group};
use mcsim::prelude::Endpoint;
use mcsim::span::Phase;
use mcsim::wire::Wire;

use crate::adapter::{McDescriptor, McObject, Side};
use crate::error::McError;
use crate::linear::PosBlocks;
use crate::runs::{runs_total, OwnedRun};
use crate::schedule::{AddrRuns, PairRuns, Schedule};
use crate::setof::SetOfRegions;
use crate::LocalAddr;

/// How to build the schedule (paper §5.1 "cooperation" vs "duplication").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildMethod {
    /// Match ownership through coordinators; one dereference per side.
    Cooperation,
    /// Exchange descriptors; every rank dereferences everything locally.
    Duplication,
}

/// Scratch key of the per-rank schedule sequence counter.  All ranks of a
/// union build schedules in the same SPMD order, so the root's counter
/// value, broadcast at the end of each build, is a consistent unique id.
const SCHED_SEQ_KEY: u32 = 0x4d43_5351; // "MCSQ"

/// Tags used inside schedule building, in the union group's context.
mod tag {
    pub const DESC_SRC: u32 = 1001;
    pub const DESC_DST: u32 = 1002;
}

/// Compute a communication schedule for copying the source SetOfRegions
/// into the destination SetOfRegions (the paper's `MC_ComputeSched`).
///
/// Collective over `union` (which must contain every rank of both program
/// groups).  Ranks belonging to `src_prog` must pass `Some` for `src`;
/// ranks of `dst_prog` must pass `Some` for `dst`; single-program callers
/// pass both.
///
/// Returns [`McError::LengthMismatch`] (consistently on every rank) when
/// the two linearizations disagree in length — the paper's "only
/// constraint" on a transfer.
pub fn compute_schedule<T, S, D>(
    ep: &mut Endpoint,
    union: &Group,
    src_prog: &Group,
    src: Option<Side<'_, T, S>>,
    dst_prog: &Group,
    dst: Option<Side<'_, T, D>>,
    method: BuildMethod,
) -> Result<Schedule, McError>
where
    T: Copy,
    S: McObject<T>,
    D: McObject<T>,
{
    compute_schedule_with(
        ep,
        union,
        src_prog,
        src,
        dst_prog,
        dst,
        method,
        BuildImpl::Runs,
    )
}

/// The element-wise reference inspector: identical contract and
/// byte-identical output to [`compute_schedule`], but every phase processes
/// one `(position, address)` pair per element, as the original
/// implementation did.  Kept for the schedule-parity property tests and as
/// the benchmark ablation baseline; production callers want
/// [`compute_schedule`].
pub fn compute_schedule_reference<T, S, D>(
    ep: &mut Endpoint,
    union: &Group,
    src_prog: &Group,
    src: Option<Side<'_, T, S>>,
    dst_prog: &Group,
    dst: Option<Side<'_, T, D>>,
    method: BuildMethod,
) -> Result<Schedule, McError>
where
    T: Copy,
    S: McObject<T>,
    D: McObject<T>,
{
    compute_schedule_with(
        ep,
        union,
        src_prog,
        src,
        dst_prog,
        dst,
        method,
        BuildImpl::Elementwise,
    )
}

/// Which inspector implementation to run (same output either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BuildImpl {
    /// Interval arithmetic over run lists — O(regions) for regular sides.
    Runs,
    /// The original per-element pipeline — O(elements) always.
    Elementwise,
}

#[allow(clippy::too_many_arguments)]
fn compute_schedule_with<T, S, D>(
    ep: &mut Endpoint,
    union: &Group,
    src_prog: &Group,
    src: Option<Side<'_, T, S>>,
    dst_prog: &Group,
    dst: Option<Side<'_, T, D>>,
    method: BuildMethod,
    imp: BuildImpl,
) -> Result<Schedule, McError>
where
    T: Copy,
    S: McObject<T>,
    D: McObject<T>,
{
    // The whole inspector pass is one `inspect` span: provenance (build
    // strategy, group sizes) goes in the detail, and the resulting
    // schedule's identity is recorded as a mark so a trace ties every
    // later `transfer` span back to how its schedule was built.
    let span = ep.span_begin(Phase::Inspect, || {
        format!(
            "method={method:?} union={} src_prog={} dst_prog={}",
            union.size(),
            src_prog.size(),
            dst_prog.size()
        )
    });
    let r = compute_schedule_inner(ep, union, src_prog, src, dst_prog, dst, method, imp);
    if let Ok(s) = &r {
        ep.mark(|| {
            format!(
                "schedule built seq={} sends={} recvs={} local={} elems={} elem_tag={}",
                s.seq(),
                s.sends.len(),
                s.recvs.len(),
                s.local_pairs.len(),
                s.total_elems,
                s.elem_tag()
            )
        });
    }
    ep.span_end(span);
    r
}

#[allow(clippy::too_many_arguments)]
fn compute_schedule_inner<T, S, D>(
    ep: &mut Endpoint,
    union: &Group,
    src_prog: &Group,
    src: Option<Side<'_, T, S>>,
    dst_prog: &Group,
    dst: Option<Side<'_, T, D>>,
    method: BuildMethod,
    imp: BuildImpl,
) -> Result<Schedule, McError>
where
    T: Copy,
    S: McObject<T>,
    D: McObject<T>,
{
    let me = ep.rank();
    let me_ul = union
        .local_of(me)
        .unwrap_or_else(|| panic!("rank {me} not in the union group"));
    debug_assert!(
        src_prog.members().iter().all(|&r| union.contains(r))
            && dst_prog.members().iter().all(|&r| union.contains(r)),
        "program groups must be subsets of the union group"
    );
    let in_src = src_prog.contains(me);
    let in_dst = dst_prog.contains(me);
    assert_eq!(
        in_src,
        src.is_some(),
        "rank {me}: src side must be Some exactly on source-program ranks"
    );
    assert_eq!(
        in_dst,
        dst.is_some(),
        "rank {me}: dst side must be Some exactly on destination-program ranks"
    );
    assert!(
        in_src || in_dst,
        "rank {me} is in the union but in neither program"
    );

    let src_root_ul = union
        .local_of(src_prog.global(0))
        .expect("src root in union");
    let dst_root_ul = union
        .local_of(dst_prog.global(0))
        .expect("dst root in union");

    // Agree on the transfer length — and, piggybacked on the same two
    // broadcasts, the distribution epoch of each side's object, so the
    // schedule can record which distributions it was built against.
    let ((n_src, src_epoch), (n_dst, dst_epoch)) = {
        let mut ucomm = Comm::borrowed(ep, union);
        let src_info: (usize, u64) = ucomm.bcast_t(
            src_root_ul,
            if me_ul == src_root_ul {
                let s = src.as_ref().expect("root has src");
                Some((s.set.total_len(), s.obj.epoch()))
            } else {
                None
            },
        );
        let dst_info: (usize, u64) = ucomm.bcast_t(
            dst_root_ul,
            if me_ul == dst_root_ul {
                let d = dst.as_ref().expect("root has dst");
                Some((d.set.total_len(), d.obj.epoch()))
            } else {
                None
            },
        );
        (src_info, dst_info)
    };
    if n_src != n_dst {
        return Err(McError::LengthMismatch {
            src: n_src,
            dst: n_dst,
        });
    }
    let n = n_src;

    let built: Result<Built, McError> = match (method, imp) {
        (BuildMethod::Cooperation, BuildImpl::Runs) => {
            build_cooperation_runs(ep, union, me_ul, src_prog, src, dst_prog, dst, n)
                .map(Built::Runs)
        }
        (BuildMethod::Cooperation, BuildImpl::Elementwise) => {
            build_cooperation_elems(ep, union, me_ul, src_prog, src, dst_prog, dst, n)
                .map(Built::Elems)
        }
        (BuildMethod::Duplication, imp) => {
            if src_prog.members() == dst_prog.members() {
                let s = src.as_ref().expect("one-program rank has src");
                let d = dst.as_ref().expect("one-program rank has dst");
                match imp {
                    BuildImpl::Runs => build_duplication_one_program_runs(
                        ep, union, me_ul, src_prog, s, dst_prog, d,
                    )
                    .map(Built::Runs),
                    BuildImpl::Elementwise => build_duplication_one_program_elems(
                        ep, union, me_ul, src_prog, s, dst_prog, d,
                    )
                    .map(Built::Elems),
                }
            } else {
                match imp {
                    BuildImpl::Runs => build_duplication_two_programs_runs(
                        ep,
                        union,
                        me_ul,
                        src_prog,
                        src,
                        src_root_ul,
                        dst_prog,
                        dst,
                        dst_root_ul,
                        n,
                    )
                    .map(Built::Runs),
                    BuildImpl::Elementwise => build_duplication_two_programs_elems(
                        ep,
                        union,
                        me_ul,
                        src_prog,
                        src,
                        src_root_ul,
                        dst_prog,
                        dst,
                        dst_root_ul,
                        n,
                    )
                    .map(Built::Elems),
                }
            }
        }
    };
    let built = built?;

    // Assign a consistent sequence number for message-stream separation.
    let seq = {
        let mut ucomm = Comm::borrowed(ep, union);
        let mine = if me_ul == 0 {
            Some(ucomm.ep().next_seq(SCHED_SEQ_KEY))
        } else {
            None
        };
        ucomm.bcast_t(0, mine)
    };

    let (elem_tag, elem_size) = crate::schedule::elem_type::<T>();
    let sched = match built {
        Built::Elems((sends, recvs, local_pairs)) => {
            Schedule::new(union.clone(), seq, sends, recvs, local_pairs, n)
        }
        Built::Runs((sends, recvs, local_pairs)) => {
            Schedule::from_runs(union.clone(), seq, sends, recvs, local_pairs, n)
        }
    };
    Ok(sched.with_integrity(src_epoch, dst_epoch, elem_tag, elem_size))
}

type BuiltParts = (
    Vec<(usize, Vec<LocalAddr>)>,
    Vec<(usize, Vec<LocalAddr>)>,
    Vec<(LocalAddr, LocalAddr)>,
);

type BuiltRunParts = (Vec<(usize, AddrRuns)>, Vec<(usize, AddrRuns)>, PairRuns);

/// What a builder hands back: already-compressed run lists (the run-based
/// builders) or per-element address lists (the element-wise reference).
enum Built {
    Elems(BuiltParts),
    Runs(BuiltRunParts),
}

/// Charge the virtual clock for inspector wire bytes the run encoding did
/// *not* put on the real wire but the modeled element-wise protocol would
/// have: `sent_missing` bytes of send copy + wire serialization, and
/// `recv_missing` bytes of receive-side copy.  Keeps the simulated machine
/// running the paper's per-element inspector while the host ships compact
/// run records.
fn charge_wire_equiv(ep: &mut Endpoint, sent_missing: usize, recv_missing: usize) {
    let m = *ep.model();
    ep.charge(
        sent_missing as f64 * (m.byte_copy_cost + m.byte_wire_cost)
            + recv_missing as f64 * m.byte_copy_cost,
    );
}

/// Append a position interval to a per-peer request list, merging with the
/// last interval when contiguous.
fn push_interval(list: &mut Vec<(u32, u32)>, pos: u32, len: u32) {
    if let Some(last) = list.last_mut() {
        if last.0 + last.1 == pos {
            last.1 += len;
            return;
        }
    }
    list.push((pos, len));
}

/// Run-based cooperation build.  The same four communication rounds as the
/// element-wise pipeline, but every record on the wire is an interval:
///
/// * **A/B** — each side announces its owned runs as `(pos, len)` pieces,
///   split only at coordinator block boundaries;
/// * **coordinator** — both sides' pieces are sorted by position; overlap
///   in the sorted sweep is a duplicate announcement, and ownership is
///   matched by two-pointer interval intersection instead of per-position
///   `src_of`/`dst_of` tables;
/// * **C** — `(pos, len, src_rank)` triples are routed to each destination
///   owner;
/// * **D** — sources answer merged `(pos, len)` request intervals with a
///   run merge-join against their own sorted runs (one binary search per
///   interval, not per element).
///
/// Addresses are emitted straight into [`AddrRuns`], so no per-element
/// vector exists at any point.
///
/// **Cost model.**  The *virtual* clock still models the paper's
/// element-wise inspector — that is what Tables 2 and 5 measured — so each
/// phase charges the element-equivalent copy/insert cost (derived from run
/// lengths in O(runs) host work), and [`charge_wire_equiv`] accounts for
/// the wire bytes a per-element announcement would have carried beyond
/// what the run records actually do.  Length-1 runs (Chaos) make the run
/// records *larger* than the element records; that small excess rides on
/// the real messages and stays second-order next to the dereference
/// charges that dominate the irregular tables.  Only the host-side work is
/// O(runs).
#[allow(clippy::too_many_arguments)]
fn build_cooperation_runs<T, S, D>(
    ep: &mut Endpoint,
    union: &Group,
    me_ul: usize,
    src_prog: &Group,
    src: Option<Side<'_, T, S>>,
    dst_prog: &Group,
    dst: Option<Side<'_, T, D>>,
    n: usize,
) -> Result<BuiltRunParts, McError>
where
    T: Copy,
    S: McObject<T>,
    D: McObject<T>,
{
    let p = union.size();

    // Each side dereferences its own elements, run-compressed (collective
    // per program).
    let sown: Vec<OwnedRun> = match &src {
        Some(s) => {
            let mut pcomm = Comm::borrowed(ep, src_prog);
            s.obj.deref_owned_runs(&mut pcomm, s.set)
        }
        None => Vec::new(),
    };
    let down: Vec<OwnedRun> = match &dst {
        Some(d) => {
            let mut pcomm = Comm::borrowed(ep, dst_prog);
            d.obj.deref_owned_runs(&mut pcomm, d.set)
        }
        None => Vec::new(),
    };
    debug_assert!(
        sown.windows(2).all(|w| w[0].end() <= w[1].pos),
        "sown runs sorted and disjoint"
    );
    debug_assert!(
        down.windows(2).all(|w| w[0].end() <= w[1].pos),
        "down runs sorted and disjoint"
    );
    let d_mine = runs_total(&down);

    let mut ucomm = Comm::borrowed(ep, union);

    // Library contract check: each side accounted for every position once.
    let s_total: usize = ucomm.allreduce_sum(runs_total(&sown));
    let d_total: usize = ucomm.allreduce_sum(d_mine);
    assert_eq!(s_total, n, "source library dereferenced {s_total} of {n}");
    assert_eq!(
        d_total, n,
        "destination library dereferenced {d_total} of {n}"
    );

    let pb = PosBlocks::new(n, p);
    let my_block = pb.range(me_ul);

    let pos32 = |pos: usize| -> u32 {
        debug_assert!(
            pos < u32::MAX as usize,
            "transfer too large for wire format"
        );
        pos as u32
    };

    // Phases A & B: each side announces its owned runs to the
    // position-block coordinators as (pos, len) pieces.  The virtual cost
    // is the element announcement's: 4 bytes copied per owned element,
    // plus the wire volume a u32-per-position message would have had.
    let announce = |ucomm: &mut Comm<'_>, owned: &[OwnedRun]| {
        let mut send: Vec<Vec<(u32, u32)>> = (0..p).map(|_| Vec::new()).collect();
        let mut elems_to = vec![0usize; p];
        for r in owned {
            for (part, start, len) in pb.split_run(r.pos, r.len) {
                send[part].push((pos32(start), len as u32));
                elems_to[part] += len;
            }
        }
        let elems: usize = elems_to.iter().sum();
        let missing: usize = send
            .iter()
            .zip(&elems_to)
            .map(|(s, &e)| (4 * e).saturating_sub(8 * s.len()))
            .sum();
        ucomm.ep().charge_copy_bytes(4 * elems);
        charge_wire_equiv(ucomm.ep(), missing, 0);
        ucomm.alltoallv_t(send)
    };
    let src_at_coord = announce(&mut ucomm, &sown);
    let dst_at_coord = announce(&mut ucomm, &down);

    // Coordinator: collect one side's announced intervals sorted by
    // position.  With sorted intervals, any start below the running
    // coverage end is a double announcement — the interval form of the
    // element-wise "slot refilled" check (dup_flag keeps the max
    // duplicated position + 1, as before).
    let collect = |at_coord: Vec<Vec<(u32, u32)>>,
                   dup_flag: &mut usize|
     -> (Vec<(u32, u32, u32)>, usize, usize) {
        let mut list: Vec<(u32, u32, u32)> = Vec::new();
        let mut elems = 0usize;
        let mut recv_missing = 0usize;
        for (from, pieces) in at_coord.into_iter().enumerate() {
            let records = pieces.len();
            let mut e = 0usize;
            for (pos, len) in pieces {
                list.push((pos, len, from as u32));
                e += len as usize;
            }
            elems += e;
            recv_missing += (4 * e).saturating_sub(8 * records);
        }
        list.sort_unstable();
        let mut cover_end = 0usize;
        for &(pos, len, _) in &list {
            let (pos, end) = (pos as usize, pos as usize + len as usize);
            if pos < cover_end {
                *dup_flag = (*dup_flag).max(end.min(cover_end));
            }
            cover_end = cover_end.max(end);
        }
        (list, elems, recv_missing)
    };
    let mut dup_flag: usize = 0;
    let (src_list, ra, miss_a) = collect(src_at_coord, &mut dup_flag);
    let (dst_list, rb, miss_b) = collect(dst_at_coord, &mut dup_flag);
    ucomm.ep().charge_copy_bytes(4 * (ra + rb));
    charge_wire_equiv(ucomm.ep(), 0, miss_a + miss_b);
    let dup = ucomm.allreduce_max_usize(dup_flag);
    if dup != 0 {
        return Err(McError::DuplicateDestination { pos: dup - 1 });
    }
    // No duplicates + totals == n ⇒ each sorted list tiles my block.
    let covers = |list: &[(u32, u32, u32)]| -> bool {
        let mut next = my_block.start;
        for &(pos, len, _) in list {
            if pos as usize != next {
                return false;
            }
            next += len as usize;
        }
        next == my_block.end
    };
    debug_assert!(covers(&src_list), "positions uncovered");
    debug_assert!(covers(&dst_list), "positions uncovered");

    // Phase C: interval intersection of the two tilings; each overlap
    // becomes one (pos, len, src_rank) triple routed to the destination
    // owner, in position order.
    let mut to_dst: Vec<Vec<(u32, u32, u32)>> = (0..p).map(|_| Vec::new()).collect();
    let mut elems_to = vec![0usize; p];
    {
        let (mut si, mut di) = (0usize, 0usize);
        while si < src_list.len() && di < dst_list.len() {
            let (sp, sl, sfrom) = src_list[si];
            let (dp, dl, dfrom) = dst_list[di];
            let (s_end, d_end) = (sp as usize + sl as usize, dp as usize + dl as usize);
            let lo = (sp as usize).max(dp as usize);
            let hi = s_end.min(d_end);
            debug_assert!(lo < hi, "coordinator interval lists out of step");
            to_dst[dfrom as usize].push((pos32(lo), (hi - lo) as u32, sfrom));
            elems_to[dfrom as usize] += hi - lo;
            if s_end == hi {
                si += 1;
            }
            if d_end == hi {
                di += 1;
            }
        }
        debug_assert!(si == src_list.len() && di == dst_list.len());
    }
    // Element equivalent: an 8-byte (pos, src) record per block position.
    let missing_c: usize = to_dst
        .iter()
        .zip(&elems_to)
        .map(|(t, &e)| (8 * e).saturating_sub(12 * t.len()))
        .sum();
    ucomm.ep().charge_copy_bytes(8 * my_block.len());
    charge_wire_equiv(ucomm.ep(), missing_c, 0);
    let from_coord = ucomm.alltoallv_t(to_dst);

    // Coordinators cover disjoint ascending position blocks, so simple
    // concatenation in coordinator order is sorted by position.
    let mut pairs: Vec<(u32, u32, u32)> = Vec::new();
    let mut miss_recv_c = 0usize;
    for list in from_coord {
        let e: usize = list.iter().map(|&(_, l, _)| l as usize).sum();
        miss_recv_c += (8 * e).saturating_sub(12 * list.len());
        pairs.extend(list);
    }
    charge_wire_equiv(ucomm.ep(), 0, miss_recv_c);
    debug_assert!(pairs
        .windows(2)
        .all(|w| w[0].0 as usize + w[0].1 as usize <= w[1].0 as usize));
    let routed: usize = pairs.iter().map(|&(_, l, _)| l as usize).sum();
    assert_eq!(
        routed, d_mine,
        "coordinator routing lost or duplicated positions"
    );

    // Destination assembles its receive half by merge-joining the routed
    // segments against its own (sorted) runs, and batches per-source
    // request intervals (merged when contiguous) for phase D.
    let mut recvs: Vec<AddrRuns> = (0..p).map(|_| AddrRuns::new()).collect();
    let mut reqs: Vec<Vec<(u32, u32)>> = (0..p).map(|_| Vec::new()).collect();
    let mut req_elems = vec![0usize; p];
    {
        let mut ri = 0usize; // monotone cursor: segments ascend in position
        for &(pos, len, s_ul) in &pairs {
            let s_ul = s_ul as usize;
            push_interval(&mut reqs[s_ul], pos, len);
            req_elems[s_ul] += len as usize;
            let mut pos = pos as usize;
            let mut rem = len as usize;
            while rem > 0 {
                while down[ri].end() <= pos {
                    ri += 1;
                }
                let r = &down[ri];
                debug_assert!(r.pos <= pos, "destination ownership out of sync");
                let take = rem.min(r.end() - pos);
                r.emit_addrs(pos - r.pos, take, &mut recvs[s_ul]);
                pos += take;
                rem -= take;
            }
        }
    }
    // Assembling the complete schedule on the destination side is the
    // structure-building step that makes cooperation the most expensive
    // method for regular-regular transfers (Table 5) — charged per element
    // exactly like the element-wise inspector.
    ucomm.ep().charge_schedule_insert(d_mine);

    // Phase D: sources receive ordered request intervals and translate
    // them to address runs by merge-join against their own sorted runs —
    // one binary search per interval, then a linear walk.  Virtual cost:
    // a u32 request per element on the wire, 12 bytes of translation copy
    // per requested element.
    let missing_d: usize = reqs
        .iter()
        .zip(&req_elems)
        .map(|(r, &e)| (4 * e).saturating_sub(8 * r.len()))
        .sum();
    charge_wire_equiv(ucomm.ep(), missing_d, 0);
    let req_in = ucomm.alltoallv_t(reqs);
    let mut sends: Vec<AddrRuns> = (0..p).map(|_| AddrRuns::new()).collect();
    for (d, intervals) in req_in.into_iter().enumerate() {
        let e: usize = intervals.iter().map(|&(_, l)| l as usize).sum();
        ucomm.ep().charge_copy_bytes(12 * e);
        charge_wire_equiv(ucomm.ep(), 0, (4 * e).saturating_sub(8 * intervals.len()));
        for (pos, len) in intervals {
            let mut pos = pos as usize;
            let mut rem = len as usize;
            let mut ri = sown.partition_point(|r| r.end() <= pos);
            while rem > 0 {
                let r = sown
                    .get(ri)
                    .unwrap_or_else(|| panic!("requested position {pos} not owned here"));
                assert!(r.pos <= pos, "requested position {pos} not owned here");
                let take = rem.min(r.end() - pos);
                r.emit_addrs(pos - r.pos, take, &mut sends[d]);
                pos += take;
                rem -= take;
                if rem > 0 {
                    ri += 1;
                }
            }
        }
    }

    Ok(finish_run_parts(me_ul, sends, recvs))
}

/// Element-wise cooperation build — the reference implementation the
/// run-based [`build_cooperation_runs`] must match byte for byte.
#[allow(clippy::too_many_arguments)]
fn build_cooperation_elems<T, S, D>(
    ep: &mut Endpoint,
    union: &Group,
    me_ul: usize,
    src_prog: &Group,
    src: Option<Side<'_, T, S>>,
    dst_prog: &Group,
    dst: Option<Side<'_, T, D>>,
    n: usize,
) -> Result<BuiltParts, McError>
where
    T: Copy,
    S: McObject<T>,
    D: McObject<T>,
{
    let p = union.size();

    // Each side dereferences its own elements (collective per program).
    let sown: Vec<(usize, LocalAddr)> = match &src {
        Some(s) => {
            let mut pcomm = Comm::borrowed(ep, src_prog);
            s.obj.deref_owned(&mut pcomm, s.set)
        }
        None => Vec::new(),
    };
    let down: Vec<(usize, LocalAddr)> = match &dst {
        Some(d) => {
            let mut pcomm = Comm::borrowed(ep, dst_prog);
            d.obj.deref_owned(&mut pcomm, d.set)
        }
        None => Vec::new(),
    };
    debug_assert!(sown.windows(2).all(|w| w[0].0 < w[1].0), "sown sorted");
    debug_assert!(down.windows(2).all(|w| w[0].0 < w[1].0), "down sorted");

    let mut ucomm = Comm::borrowed(ep, union);

    // Library contract check: each side accounted for every position once.
    let s_total: usize = ucomm.allreduce_sum(sown.len());
    let d_total: usize = ucomm.allreduce_sum(down.len());
    assert_eq!(s_total, n, "source library dereferenced {s_total} of {n}");
    assert_eq!(
        d_total, n,
        "destination library dereferenced {d_total} of {n}"
    );

    let pb = PosBlocks::new(n, p);
    let my_block = pb.range(me_ul);

    // Positions travel as packed u32s and the per-element processing in
    // the phases below is charged at memory-copy rates: the matching is a
    // streaming scatter/merge over flat arrays, unlike the per-element
    // *software* cost of a library dereference.
    let pos32 = |pos: usize| -> u32 {
        debug_assert!(
            pos < u32::MAX as usize,
            "transfer too large for wire format"
        );
        pos as u32
    };

    // Phases A & B: each side announces its owned positions to the
    // position-block coordinators.
    let announce = |ucomm: &mut Comm<'_>, owned: &[(usize, LocalAddr)]| {
        let mut send: Vec<Vec<u32>> = (0..p).map(|_| Vec::new()).collect();
        for &(pos, _) in owned {
            send[pb.owner(pos)].push(pos32(pos));
        }
        ucomm.ep().charge_copy_bytes(4 * owned.len());
        ucomm.alltoallv_t(send)
    };
    let src_at_coord = announce(&mut ucomm, &sown);
    let dst_at_coord = announce(&mut ucomm, &down);

    // Coordinator: record which union rank owns each position on each side.
    const NONE: u32 = u32::MAX;
    let record = |at_coord: Vec<Vec<u32>>, table: &mut Vec<u32>, dup_flag: &mut usize| {
        let mut received = 0usize;
        for (from, list) in at_coord.into_iter().enumerate() {
            received += list.len();
            for pos in list {
                let slot = &mut table[pos as usize - my_block.start];
                if *slot != NONE {
                    *dup_flag = (*dup_flag).max(pos as usize + 1);
                }
                *slot = from as u32;
            }
        }
        received
    };
    let mut src_of = vec![NONE; my_block.len()];
    let mut dst_of = vec![NONE; my_block.len()];
    let mut dup_flag: usize = 0; // pos+1 of first duplicate seen, else 0
    let ra = record(src_at_coord, &mut src_of, &mut dup_flag);
    let rb = record(dst_at_coord, &mut dst_of, &mut dup_flag);
    ucomm.ep().charge_copy_bytes(4 * (ra + rb));
    // Since totals matched n and coverage is exactly-once-or-duplicate, a
    // duplicate implies some position is missing as well; surface it.
    let dup = ucomm.allreduce_max_usize(dup_flag);
    if dup != 0 {
        return Err(McError::DuplicateDestination { pos: dup - 1 });
    }
    debug_assert!(src_of.iter().all(|&s| s != NONE), "positions uncovered");
    debug_assert!(dst_of.iter().all(|&d| d != NONE), "positions uncovered");

    // Phase C: coordinators tell each destination owner where its elements
    // come from, in position order.
    let mut to_dst: Vec<Vec<(u32, u32)>> = (0..p).map(|_| Vec::new()).collect();
    for (i, pos) in my_block.clone().enumerate() {
        let s = src_of[i];
        let d = dst_of[i] as usize;
        to_dst[d].push((pos32(pos), s));
    }
    ucomm.ep().charge_copy_bytes(8 * my_block.len());
    let from_coord = ucomm.alltoallv_t(to_dst);
    // Coordinators cover disjoint ascending position blocks, so simple
    // concatenation in coordinator order is sorted by position.
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(down.len());
    for list in from_coord {
        pairs.extend(list);
    }
    debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));
    assert_eq!(
        pairs.len(),
        down.len(),
        "coordinator routing lost or duplicated positions"
    );

    // Destination assembles its receive half and each source rank's
    // requests (paper: "the complete schedule ... then sent back").
    let mut recvs: Vec<Vec<LocalAddr>> = (0..p).map(|_| Vec::new()).collect();
    let mut reqs: Vec<Vec<u32>> = (0..p).map(|_| Vec::new()).collect();
    for (&(pos, srank), &(dpos, daddr)) in pairs.iter().zip(&down) {
        assert_eq!(pos as usize, dpos, "destination ownership out of sync");
        recvs[srank as usize].push(daddr);
        reqs[srank as usize].push(pos);
    }
    // Assembling the complete schedule on the destination side is the
    // structure-building step that makes cooperation the most expensive
    // method for regular-regular transfers (Table 5).
    ucomm.ep().charge_schedule_insert(down.len());

    // Phase D: sources receive the ordered position requests and translate
    // them to local addresses by merge-join against their (sorted) owned
    // list — both sides are position-ordered, so no hashing is needed.
    let req_in = ucomm.alltoallv_t(reqs);
    let mut sends: Vec<Vec<LocalAddr>> = (0..p).map(|_| Vec::new()).collect();
    for (d, positions) in req_in.into_iter().enumerate() {
        ucomm.ep().charge_copy_bytes(12 * positions.len());
        let mut cursor = 0usize;
        for pos in positions {
            // Requests from one destination are ascending; restart only
            // when a new destination's stream begins.
            let pos = pos as usize;
            if cursor < sown.len() && sown[cursor].0 > pos {
                cursor = 0;
            }
            cursor += sown[cursor..]
                .binary_search_by_key(&pos, |&(p, _)| p)
                .unwrap_or_else(|_| panic!("requested position {pos} not owned here"));
            sends[d].push(sown[cursor].1);
        }
    }

    Ok(finish_parts(me_ul, sends, recvs))
}

/// Run-based duplication within one program: same two independent passes
/// as the element-wise version, but each pass walks its own run list and
/// advances by whole [`McDescriptor::locate_run`] answers — closed-form
/// interval arithmetic for regular descriptors, length-1 steps (exactly
/// the old per-element locate) otherwise.  The locate *charges* stay per
/// element: the dereference work is unchanged, only its representation.
#[allow(clippy::too_many_arguments)]
fn build_duplication_one_program_runs<T, S, D>(
    ep: &mut Endpoint,
    union: &Group,
    me_ul: usize,
    src_prog: &Group,
    src: &Side<'_, T, S>,
    dst_prog: &Group,
    dst: &Side<'_, T, D>,
) -> Result<BuiltRunParts, McError>
where
    T: Copy,
    S: McObject<T>,
    D: McObject<T>,
{
    let p = union.size();
    let me_global = ep.rank();

    // Descriptor exchange.  Within one program every rank can construct
    // both descriptors directly; Chaos charges its table replication here.
    let sd: S::Descriptor = {
        let mut pcomm = Comm::borrowed(ep, src_prog);
        src.obj.descriptor(&mut pcomm)
    };
    let dd: D::Descriptor = {
        let mut pcomm = Comm::borrowed(ep, dst_prog);
        dst.obj.descriptor(&mut pcomm)
    };

    // Pass 1 — act as the source side: walk my owned runs, locate their
    // destinations run-by-run, emit my send half in position order.
    let sown: Vec<OwnedRun> = {
        let mut pcomm = Comm::borrowed(ep, src_prog);
        src.obj.deref_owned_runs(&mut pcomm, src.set)
    };
    let mut sends: Vec<AddrRuns> = (0..p).map(|_| AddrRuns::new()).collect();
    let mut s_elems = 0usize;
    for r in &sown {
        s_elems += r.len;
        let mut k = 0usize;
        while k < r.len {
            let lr = dd.locate_run(dst.set, r.pos + k, r.len - k);
            debug_assert!(lr.pos == r.pos + k && lr.len >= 1 && lr.len <= r.len - k);
            let dl = union
                .local_of(lr.rank)
                .expect("destination owner outside union");
            r.emit_addrs(k, lr.len, &mut sends[dl]);
            k += lr.len;
        }
    }
    dd.charge_locates(ep, s_elems);
    ep.charge_copy_bytes(8 * s_elems);

    // Pass 2 — act as the destination side: walk my destination runs,
    // locate their sources, emit my receive half.
    let down: Vec<OwnedRun> = {
        let mut pcomm = Comm::borrowed(ep, dst_prog);
        dst.obj.deref_owned_runs(&mut pcomm, dst.set)
    };
    let mut recvs: Vec<AddrRuns> = (0..p).map(|_| AddrRuns::new()).collect();
    let mut d_elems = 0usize;
    for r in &down {
        d_elems += r.len;
        let mut k = 0usize;
        while k < r.len {
            let lr = sd.locate_run(src.set, r.pos + k, r.len - k);
            debug_assert!(lr.pos == r.pos + k && lr.len >= 1 && lr.len <= r.len - k);
            let sl = union.local_of(lr.rank).expect("source owner outside union");
            r.emit_addrs(k, lr.len, &mut recvs[sl]);
            k += lr.len;
        }
    }
    sd.charge_locates(ep, d_elems);
    ep.charge_copy_bytes(8 * d_elems);

    // Consistency: pass 1's view of my self-pairs must match pass 2's.
    debug_assert_eq!(
        sends[me_ul].len(),
        recvs[me_ul].len(),
        "rank {me_global}: independent passes disagree on local pairs"
    );

    Ok(finish_run_parts(me_ul, sends, recvs))
}

/// Duplication within one program (paper §5.1): the sides first exchange
/// *data descriptors* — for Chaos that replicates the translation table, a
/// cost independent of the processor count — and then both "sides" (the
/// same ranks) compute their halves of the schedule *independently*: each
/// pass dereferences one array and locates the matching positions through
/// the other's descriptor.  The locate machinery therefore runs twice
/// ("must call the Chaos dereference function twice"), while for
/// regular–regular transfers everything is closed-form and **no
/// communication happens at all** (§5.3, Table 5).
#[allow(clippy::too_many_arguments)]
fn build_duplication_one_program_elems<T, S, D>(
    ep: &mut Endpoint,
    union: &Group,
    me_ul: usize,
    src_prog: &Group,
    src: &Side<'_, T, S>,
    dst_prog: &Group,
    dst: &Side<'_, T, D>,
) -> Result<BuiltParts, McError>
where
    T: Copy,
    S: McObject<T>,
    D: McObject<T>,
{
    let p = union.size();
    let me_global = ep.rank();

    // Descriptor exchange.  Within one program every rank can construct
    // both descriptors directly; Chaos charges its table replication here.
    let sd: S::Descriptor = {
        let mut pcomm = Comm::borrowed(ep, src_prog);
        src.obj.descriptor(&mut pcomm)
    };
    let dd: D::Descriptor = {
        let mut pcomm = Comm::borrowed(ep, dst_prog);
        dst.obj.descriptor(&mut pcomm)
    };

    // Pass 1 — act as the source side: find my source elements, locate
    // their destinations through the descriptor, build my send half.
    let sown: Vec<(usize, LocalAddr)> = {
        let mut pcomm = Comm::borrowed(ep, src_prog);
        src.obj.deref_owned(&mut pcomm, src.set)
    };
    let mut sends: Vec<Vec<LocalAddr>> = (0..p).map(|_| Vec::new()).collect();
    for &(pos, saddr) in &sown {
        let loc = dd.locate(dst.set, pos);
        let dl = union
            .local_of(loc.rank)
            .expect("destination owner outside union");
        sends[dl].push(saddr);
    }
    dd.charge_locates(ep, sown.len());
    // Light per-element bookkeeping only: this pass is a straight scan
    // (the specialized native builders do the same work).
    ep.charge_copy_bytes(8 * sown.len());

    // Pass 2 — act as the destination side: find my destination elements,
    // locate their sources, build my receive half.
    let down: Vec<(usize, LocalAddr)> = {
        let mut pcomm = Comm::borrowed(ep, dst_prog);
        dst.obj.deref_owned(&mut pcomm, dst.set)
    };
    let mut recvs: Vec<Vec<LocalAddr>> = (0..p).map(|_| Vec::new()).collect();
    for &(pos, daddr) in &down {
        let loc = sd.locate(src.set, pos);
        let sl = union
            .local_of(loc.rank)
            .expect("source owner outside union");
        recvs[sl].push(daddr);
    }
    sd.charge_locates(ep, down.len());
    ep.charge_copy_bytes(8 * down.len());

    // Consistency: pass 1's view of my self-pairs must match pass 2's.
    debug_assert_eq!(
        sends[me_ul].len(),
        recvs[me_ul].len(),
        "rank {me_global}: independent passes disagree on local pairs"
    );

    Ok(finish_parts(me_ul, sends, recvs))
}

/// Run-based duplication across two programs: after the same descriptor
/// exchange, both full linearizations are resolved as run lists
/// ([`McDescriptor::locate_runs`]) and the schedule halves fall out of one
/// two-pointer interval intersection.  The redundant-dereference charge
/// (2·n, the paper's cost of this strategy) is unchanged.
#[allow(clippy::too_many_arguments)]
fn build_duplication_two_programs_runs<T, S, D>(
    ep: &mut Endpoint,
    union: &Group,
    me_ul: usize,
    src_prog: &Group,
    src: Option<Side<'_, T, S>>,
    src_root_ul: usize,
    dst_prog: &Group,
    dst: Option<Side<'_, T, D>>,
    dst_root_ul: usize,
    n: usize,
) -> Result<BuiltRunParts, McError>
where
    T: Copy,
    S: McObject<T>,
    D: McObject<T>,
{
    let p = union.size();

    let src_pack: Option<(S::Descriptor, SetOfRegions<S::Region>)> = src.map(|s| {
        let mut pcomm = Comm::borrowed(ep, src_prog);
        let d = s.obj.descriptor(&mut pcomm);
        (d, s.set.clone())
    });
    let dst_pack: Option<(D::Descriptor, SetOfRegions<D::Region>)> = dst.map(|d| {
        let mut pcomm = Comm::borrowed(ep, dst_prog);
        let desc = d.obj.descriptor(&mut pcomm);
        (desc, d.set.clone())
    });
    let (sd, sset) = share_pack(ep, union, me_ul, src_prog, src_root_ul, src_pack, true);
    let (dd, dset) = share_pack(ep, union, me_ul, dst_prog, dst_root_ul, dst_pack, false);

    // Redundant full dereference of both linearizations, as run lists.
    let src_locs = sd.locate_runs(&sset, 0, n);
    let dst_locs = dd.locate_runs(&dset, 0, n);
    ep.charge_deref(2 * n);
    debug_assert_eq!(src_locs.last().map_or(0, |r| r.end()), n);
    debug_assert_eq!(dst_locs.last().map_or(0, |r| r.end()), n);

    let me_global = ep.rank();
    let mut sends: Vec<AddrRuns> = (0..p).map(|_| AddrRuns::new()).collect();
    let mut recvs: Vec<AddrRuns> = (0..p).map(|_| AddrRuns::new()).collect();
    let mut kept = 0usize;
    let (mut si, mut di) = (0usize, 0usize);
    while si < src_locs.len() && di < dst_locs.len() {
        let s = &src_locs[si];
        let d = &dst_locs[di];
        let lo = s.pos.max(d.pos);
        let hi = s.end().min(d.end());
        debug_assert!(lo < hi, "descriptor run lists out of step");
        let len = hi - lo;
        if s.rank == me_global {
            let dl = union
                .local_of(d.rank)
                .expect("destination owner outside union");
            s.emit_addrs(lo - s.pos, len, &mut sends[dl]);
            kept += len;
        }
        if d.rank == me_global {
            let sl = union.local_of(s.rank).expect("source owner outside union");
            d.emit_addrs(lo - d.pos, len, &mut recvs[sl]);
            kept += len;
        }
        if s.end() == hi {
            si += 1;
        }
        if d.end() == hi {
            di += 1;
        }
    }
    ep.charge_schedule_insert(kept);

    Ok(finish_run_parts(me_ul, sends, recvs))
}

/// Duplication across two programs: descriptors (distribution metadata)
/// are shipped between the programs, then every rank redundantly
/// dereferences the whole transfer locally.  For Chaos the descriptor is
/// the entire translation table — "very expensive", which is why the
/// paper's two-program experiments use cooperation.
#[allow(clippy::too_many_arguments)]
fn build_duplication_two_programs_elems<T, S, D>(
    ep: &mut Endpoint,
    union: &Group,
    me_ul: usize,
    src_prog: &Group,
    src: Option<Side<'_, T, S>>,
    src_root_ul: usize,
    dst_prog: &Group,
    dst: Option<Side<'_, T, D>>,
    dst_root_ul: usize,
    n: usize,
) -> Result<BuiltParts, McError>
where
    T: Copy,
    S: McObject<T>,
    D: McObject<T>,
{
    let p = union.size();

    // Side-local descriptor construction (collective per program; Chaos
    // charges its table gather here).
    let src_pack: Option<(S::Descriptor, SetOfRegions<S::Region>)> = src.map(|s| {
        let mut pcomm = Comm::borrowed(ep, src_prog);
        let d = s.obj.descriptor(&mut pcomm);
        (d, s.set.clone())
    });
    let dst_pack: Option<(D::Descriptor, SetOfRegions<D::Region>)> = dst.map(|d| {
        let mut pcomm = Comm::borrowed(ep, dst_prog);
        let desc = d.obj.descriptor(&mut pcomm);
        (desc, d.set.clone())
    });

    // Exchange descriptors across programs: each side's root ships
    // (descriptor, regions) to the ranks that lack them.  Within a single
    // program nobody lacks anything and no message is sent — matching the
    // paper's Table 5 observation.
    let (sd, sset) = share_pack(ep, union, me_ul, src_prog, src_root_ul, src_pack, true);
    let (dd, dset) = share_pack(ep, union, me_ul, dst_prog, dst_root_ul, dst_pack, false);

    // Redundant full dereference of both linearizations.
    let src_locs = sd.locate_all(&sset);
    let dst_locs = dd.locate_all(&dset);
    ep.charge_deref(2 * n);
    assert_eq!(src_locs.len(), n);
    assert_eq!(dst_locs.len(), n);

    let me_global = ep.rank();
    let mut sends: Vec<Vec<LocalAddr>> = (0..p).map(|_| Vec::new()).collect();
    let mut recvs: Vec<Vec<LocalAddr>> = (0..p).map(|_| Vec::new()).collect();
    let mut kept = 0usize;
    for pos in 0..n {
        let s = src_locs[pos];
        let d = dst_locs[pos];
        if s.rank == me_global {
            let dl = union
                .local_of(d.rank)
                .expect("destination owner outside union");
            sends[dl].push(s.addr);
            kept += 1;
        }
        if d.rank == me_global {
            let sl = union.local_of(s.rank).expect("source owner outside union");
            recvs[sl].push(d.addr);
            kept += 1;
        }
    }
    ep.charge_schedule_insert(kept);

    Ok(finish_parts(me_ul, sends, recvs))
}

/// Ship `(descriptor, regions)` from the owning side to union ranks outside
/// the owning program.  Every rank returns the full pair.
fn share_pack<Desc: McDescriptor>(
    ep: &mut Endpoint,
    union: &Group,
    me_ul: usize,
    prog: &Group,
    root_ul: usize,
    pack: Option<(Desc, SetOfRegions<Desc::Region>)>,
    is_src: bool,
) -> (Desc, SetOfRegions<Desc::Region>) {
    let t = if is_src { tag::DESC_SRC } else { tag::DESC_DST };
    let outsiders: Vec<usize> = (0..union.size())
        .filter(|&ul| !prog.contains(union.global(ul)))
        .collect();
    match pack {
        Some((d, s)) => {
            if me_ul == root_ul && !outsiders.is_empty() {
                let bytes = (d.to_bytes(), s.to_bytes());
                let mut ucomm = Comm::borrowed(ep, union);
                for ul in outsiders {
                    ucomm.send_t(ul, t, &bytes);
                }
            }
            (d, s)
        }
        None => {
            let mut ucomm = Comm::borrowed(ep, union);
            let (db, sb): (Vec<u8>, Vec<u8>) = ucomm.recv_t(root_ul, t);
            let d = Desc::from_bytes(&db).expect("descriptor decode");
            let s = SetOfRegions::<Desc::Region>::from_bytes(&sb).expect("regions decode");
            (d, s)
        }
    }
}

/// Pull the self entry out into local pairs and attach peer ids — the
/// run-list counterpart of [`finish_parts`], with the local-copy half
/// formed by zipping the two compressed address lists.
fn finish_run_parts(
    me_ul: usize,
    mut sends: Vec<AddrRuns>,
    mut recvs: Vec<AddrRuns>,
) -> BuiltRunParts {
    let self_send = std::mem::take(&mut sends[me_ul]);
    let self_recv = std::mem::take(&mut recvs[me_ul]);
    assert_eq!(
        self_send.len(),
        self_recv.len(),
        "self send/recv halves must pair up"
    );
    let local_pairs = PairRuns::from_zip(&self_send, &self_recv);
    (
        sends.into_iter().enumerate().collect(),
        recvs.into_iter().enumerate().collect(),
        local_pairs,
    )
}

/// Pull the self entry out into local pairs and attach peer ids.
fn finish_parts(
    me_ul: usize,
    mut sends: Vec<Vec<LocalAddr>>,
    mut recvs: Vec<Vec<LocalAddr>>,
) -> BuiltParts {
    let self_send = std::mem::take(&mut sends[me_ul]);
    let self_recv = std::mem::take(&mut recvs[me_ul]);
    assert_eq!(
        self_send.len(),
        self_recv.len(),
        "self send/recv halves must pair up"
    );
    let local_pairs: Vec<(LocalAddr, LocalAddr)> = self_send.into_iter().zip(self_recv).collect();
    let sends = sends.into_iter().enumerate().collect();
    let recvs = recvs.into_iter().enumerate().collect();
    (sends, recvs, local_pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::Location;
    use crate::datamove::{data_move, data_move_recv, data_move_send};
    use crate::region::IndexSet;
    use crate::testlib::{BlockVec, BlockVecDesc};
    use mcsim::model::MachineModel;
    use mcsim::world::World;

    fn sched_one_program(
        p: usize,
        n: usize,
        src_idx: Vec<usize>,
        dst_idx: Vec<usize>,
        method: BuildMethod,
    ) -> mcsim::world::RunOutput<(Schedule, Vec<f64>)> {
        let world = World::with_model(p, MachineModel::zero());
        world.run(move |ep| {
            let g = Group::world(ep.world_size());
            let src = BlockVec::create(&g, ep.rank(), n, |i| i as f64);
            let mut dst = BlockVec::create(&g, ep.rank(), n, |_| -1.0);
            let sset = SetOfRegions::single(IndexSet::new(src_idx.clone()));
            let dset = SetOfRegions::single(IndexSet::new(dst_idx.clone()));
            let sched = compute_schedule(
                ep,
                &g,
                &g,
                Some(Side::new(&src, &sset)),
                &g,
                Some(Side::new(&dst, &dset)),
                method,
            )
            .expect("schedule");
            data_move(ep, &sched, &src, &mut dst);
            (sched, dst.data.clone())
        })
    }

    /// Reference semantics: dst[dst_idx[k]] = src[src_idx[k]].
    fn reference(n: usize, src_idx: &[usize], dst_idx: &[usize]) -> Vec<f64> {
        let mut v: Vec<f64> = vec![-1.0; n];
        for (s, d) in src_idx.iter().zip(dst_idx) {
            v[*d] = *s as f64;
        }
        v
    }

    fn gather_global(p: usize, n: usize, pieces: &[Vec<f64>]) -> Vec<f64> {
        // BlockVec uses block distribution: concatenation in rank order.
        let mut out = Vec::with_capacity(n);
        for piece in pieces.iter().take(p) {
            out.extend_from_slice(piece);
        }
        out.truncate(n);
        out
    }

    #[test]
    fn one_program_copy_both_methods() {
        let n = 40;
        let src_idx: Vec<usize> = (0..20).map(|i| 2 * i).collect(); // evens
        let dst_idx: Vec<usize> = (0..20).rev().collect(); // reversed prefix
        for method in [BuildMethod::Cooperation, BuildMethod::Duplication] {
            for p in [1, 2, 3, 4] {
                let out = sched_one_program(p, n, src_idx.clone(), dst_idx.clone(), method);
                let pieces: Vec<Vec<f64>> = out.results.iter().map(|(_, d)| d.clone()).collect();
                let got = gather_global(p, n, &pieces);
                assert_eq!(
                    got,
                    reference(n, &src_idx, &dst_idx),
                    "method {method:?} p {p}"
                );
            }
        }
    }

    #[test]
    fn cooperation_and_duplication_build_identical_motion() {
        let n = 30;
        let src_idx: Vec<usize> = vec![5, 1, 29, 14, 7, 22];
        let dst_idx: Vec<usize> = vec![0, 2, 4, 6, 8, 10];
        for p in [2, 3, 5] {
            let a = sched_one_program(
                p,
                n,
                src_idx.clone(),
                dst_idx.clone(),
                BuildMethod::Cooperation,
            );
            let b = sched_one_program(
                p,
                n,
                src_idx.clone(),
                dst_idx.clone(),
                BuildMethod::Duplication,
            );
            for r in 0..p {
                let (sa, _) = &a.results[r];
                let (sb, _) = &b.results[r];
                assert_eq!(sa.sends, sb.sends, "rank {r} sends");
                assert_eq!(sa.recvs, sb.recvs, "rank {r} recvs");
                assert_eq!(sa.local_pairs, sb.local_pairs, "rank {r} locals");
            }
        }
    }

    #[test]
    fn length_mismatch_is_reported_on_every_rank() {
        let world = World::with_model(3, MachineModel::zero());
        let out = world.run(|ep| {
            let g = Group::world(ep.world_size());
            let src = BlockVec::create(&g, ep.rank(), 10, |i| i as f64);
            let dst = BlockVec::create(&g, ep.rank(), 10, |_| 0.0);
            let sset = SetOfRegions::single(IndexSet::new(vec![0, 1, 2]));
            let dset = SetOfRegions::single(IndexSet::new(vec![0, 1]));
            compute_schedule(
                ep,
                &g,
                &g,
                Some(Side::new(&src, &sset)),
                &g,
                Some(Side::new(&dst, &dset)),
                BuildMethod::Cooperation,
            )
        });
        for r in out.results {
            assert_eq!(r.unwrap_err(), McError::LengthMismatch { src: 3, dst: 2 });
        }
    }

    #[test]
    fn two_program_transfer() {
        // Ranks 0..2 run the source program, ranks 2..5 the destination.
        let n = 24;
        let world = World::with_model(5, MachineModel::zero());
        let out = world.run(move |ep| {
            let (pa, pb, un) = Group::split_two(2, 3, 100);
            let in_src = pa.contains(ep.rank());
            let sset = SetOfRegions::single(IndexSet::new((0..12).collect()));
            let dset = SetOfRegions::single(IndexSet::new((12..24).collect()));
            if in_src {
                let src = BlockVec::create(&pa, ep.rank(), n, |i| 100.0 + i as f64);
                let sched = compute_schedule::<f64, BlockVec, BlockVec>(
                    ep,
                    &un,
                    &pa,
                    Some(Side::new(&src, &sset)),
                    &pb,
                    None,
                    BuildMethod::Cooperation,
                )
                .unwrap();
                data_move_send(ep, &sched, &src).unwrap();
                Vec::new()
            } else {
                let mut dst = BlockVec::create(&pb, ep.rank(), n, |_| -1.0);
                let sched = compute_schedule::<f64, BlockVec, BlockVec>(
                    ep,
                    &un,
                    &pa,
                    None,
                    &pb,
                    Some(Side::new(&dst, &dset)),
                    BuildMethod::Cooperation,
                )
                .unwrap();
                data_move_recv(ep, &sched, &mut dst).unwrap();
                dst.data.clone()
            }
        });
        // Destination program (ranks 2..5) holds a 24-element block vector;
        // positions 12..24 must now be 100..112 in linearization order.
        let dst_global = gather_global(3, n, &out.results[2..]);
        for g in 0..12 {
            assert_eq!(dst_global[g], -1.0);
        }
        for (k, g) in (12..24).enumerate() {
            assert_eq!(dst_global[g], 100.0 + k as f64);
        }
    }

    #[test]
    fn two_program_duplication_matches_cooperation() {
        let n = 16;
        for method in [BuildMethod::Cooperation, BuildMethod::Duplication] {
            let world = World::with_model(4, MachineModel::zero());
            let out = world.run(move |ep| {
                let (pa, pb, un) = Group::split_two(2, 2, 100);
                let sset = SetOfRegions::single(IndexSet::new(vec![3, 9, 12, 1]));
                let dset = SetOfRegions::single(IndexSet::new(vec![15, 0, 7, 8]));
                if pa.contains(ep.rank()) {
                    let src = BlockVec::create(&pa, ep.rank(), n, |i| i as f64 * 10.0);
                    let sched = compute_schedule::<f64, BlockVec, BlockVec>(
                        ep,
                        &un,
                        &pa,
                        Some(Side::new(&src, &sset)),
                        &pb,
                        None,
                        method,
                    )
                    .unwrap();
                    data_move_send(ep, &sched, &src).unwrap();
                    Vec::new()
                } else {
                    let mut dst = BlockVec::create(&pb, ep.rank(), n, |_| f64::NAN);
                    let sched = compute_schedule::<f64, BlockVec, BlockVec>(
                        ep,
                        &un,
                        &pa,
                        None,
                        &pb,
                        Some(Side::new(&dst, &dset)),
                        method,
                    )
                    .unwrap();
                    data_move_recv(ep, &sched, &mut dst).unwrap();
                    dst.data.clone()
                }
            });
            let dst_global = gather_global(2, n, &out.results[2..]);
            // dst[15]=src[3], dst[0]=src[9], dst[7]=src[12], dst[8]=src[1]
            assert_eq!(dst_global[15], 30.0, "{method:?}");
            assert_eq!(dst_global[0], 90.0, "{method:?}");
            assert_eq!(dst_global[7], 120.0, "{method:?}");
            assert_eq!(dst_global[8], 10.0, "{method:?}");
        }
    }

    #[test]
    fn schedule_reuse_and_reversal() {
        let n = 12;
        let world = World::with_model(3, MachineModel::zero());
        let out = world.run(move |ep| {
            let g = Group::world(ep.world_size());
            let mut a = BlockVec::create(&g, ep.rank(), n, |i| i as f64);
            let mut b = BlockVec::create(&g, ep.rank(), n, |_| 0.0);
            let aset = SetOfRegions::single(IndexSet::new((0..6).collect()));
            let bset = SetOfRegions::single(IndexSet::new((6..12).collect()));
            let sched = compute_schedule(
                ep,
                &g,
                &g,
                Some(Side::new(&a, &aset)),
                &g,
                Some(Side::new(&b, &bset)),
                BuildMethod::Cooperation,
            )
            .unwrap();
            // Forward twice (reuse), then backward via the reversed schedule.
            data_move(ep, &sched, &a, &mut b);
            data_move(ep, &sched, &a, &mut b);
            // Modify b, then pull it back into a.
            for v in b.data.iter_mut() {
                *v += 0.5;
            }
            let rev = sched.reversed();
            data_move(ep, &rev, &b, &mut a);
            (a.data.clone(), b.data.clone())
        });
        let a: Vec<f64> = out.results.iter().flat_map(|(x, _)| x.clone()).collect();
        // a[0..6] came back from b[6..12] = original a[0..6] + 0.5.
        for g in 0..6 {
            assert_eq!(a[g], g as f64 + 0.5);
        }
        for g in 6..12 {
            assert_eq!(a[g], g as f64);
        }
    }

    #[test]
    fn message_count_matches_hand_coded() {
        // 4 ranks, block vectors of 16: copy global 0..8 (owned by union
        // ranks 0,1) into 8..16 (owned by ranks 2,3).  Hand-coded message
        // passing needs exactly one message per (source-owner,
        // dest-owner) pair with data: (0->2), (1->3) — block size 4 aligns
        // 0..4 -> 8..12 (rank0 -> rank2) and 4..8 -> 12..16 (rank1 -> rank3).
        let n = 16;
        let world = World::with_model(4, MachineModel::zero());
        let out = world.run(move |ep| {
            let g = Group::world(ep.world_size());
            let src = BlockVec::create(&g, ep.rank(), n, |i| i as f64);
            let mut dst = BlockVec::create(&g, ep.rank(), n, |_| 0.0);
            let sset = SetOfRegions::single(IndexSet::new((0..8).collect()));
            let dset = SetOfRegions::single(IndexSet::new((8..16).collect()));
            let sched = compute_schedule(
                ep,
                &g,
                &g,
                Some(Side::new(&src, &sset)),
                &g,
                Some(Side::new(&dst, &dset)),
                BuildMethod::Duplication,
            )
            .unwrap();
            let before = ep.stats_snapshot();
            data_move(ep, &sched, &src, &mut dst);
            let delta = ep.stats_snapshot().since(&before);
            (sched.msgs_out(), delta.total_msgs(), delta.total_bytes())
        });
        let per_rank: Vec<_> = out.results;
        assert_eq!(per_rank[0].0, 1);
        assert_eq!(per_rank[1].0, 1);
        assert_eq!(per_rank[2].0, 0);
        assert_eq!(per_rank[3].0, 0);
        // Exactly one real message each from ranks 0 and 1; payload is
        // 4 elements * 8 bytes + the Vec length header.
        assert_eq!(per_rank[0].1, 1);
        assert_eq!(per_rank[1].1, 1);
        assert_eq!(per_rank[0].2, 4 * 8 + 8);
    }

    #[test]
    fn empty_transfer() {
        let out = sched_one_program(2, 10, vec![], vec![], BuildMethod::Cooperation);
        for (sched, data) in out.results {
            assert_eq!(sched.total_elems, 0);
            assert_eq!(sched.msgs_out() + sched.msgs_in() + sched.elems_local(), 0);
            assert!(data.iter().all(|&v| v == -1.0));
        }
    }

    #[test]
    fn duplicate_destination_detected() {
        let world = World::with_model(2, MachineModel::zero());
        let out = world.run(|ep| {
            let g = Group::world(ep.world_size());
            let src = BlockVec::create(&g, ep.rank(), 10, |i| i as f64);
            let dst = BlockVec::create(&g, ep.rank(), 10, |_| 0.0);
            let sset = SetOfRegions::single(IndexSet::new(vec![0, 1]));
            // Destination lists the same position's element twice -> the
            // same (pos) routed twice is NOT what happens (positions are
            // distinct); instead, a library bug is simulated by a dest set
            // whose deref covers a position twice.  With IndexSet the
            // visible symptom is two positions with one owner each, which
            // is legal; so here we check the legal-but-odd case succeeds
            // deterministically (last writer wins).
            let dset = SetOfRegions::single(IndexSet::new(vec![5, 5]));
            let mut dstm = dst;
            let sched = compute_schedule(
                ep,
                &g,
                &g,
                Some(Side::new(&src, &sset)),
                &g,
                Some(Side::new(&dstm, &dset)),
                BuildMethod::Cooperation,
            )
            .unwrap();
            data_move(ep, &sched, &src, &mut dstm);
            dstm.data.clone()
        });
        let all: Vec<f64> = out.results.into_iter().flatten().collect();
        // Position order: dst element 5 receives src[0] then src[1].
        assert_eq!(all[5], 1.0);
    }

    fn sched_reference_one_program(
        p: usize,
        n: usize,
        src_idx: Vec<usize>,
        dst_idx: Vec<usize>,
        method: BuildMethod,
    ) -> mcsim::world::RunOutput<Schedule> {
        let world = World::with_model(p, MachineModel::zero());
        world.run(move |ep| {
            let g = Group::world(ep.world_size());
            let src = BlockVec::create(&g, ep.rank(), n, |i| i as f64);
            let dst = BlockVec::create(&g, ep.rank(), n, |_| -1.0);
            let sset = SetOfRegions::single(IndexSet::new(src_idx.clone()));
            let dset = SetOfRegions::single(IndexSet::new(dst_idx.clone()));
            compute_schedule_reference(
                ep,
                &g,
                &g,
                Some(Side::new(&src, &sset)),
                &g,
                Some(Side::new(&dst, &dset)),
                method,
            )
            .expect("schedule")
        })
    }

    #[test]
    fn run_based_builders_match_reference_byte_for_byte() {
        // BlockVec uses the *default* deref_owned_runs / locate_run, so
        // this exercises coalescing of element-wise answers; index sets mix
        // contiguous stretches (long runs), strided picks, and a reversed
        // range (negative address stride).
        let n = 37;
        let cases: Vec<(Vec<usize>, Vec<usize>)> = vec![
            ((0..20).collect(), (17..37).collect()),
            ((0..14).map(|i| 2 * i).collect(), (0..14).rev().collect()),
            (vec![5, 1, 29, 14, 7, 22], vec![0, 2, 4, 6, 8, 10]),
        ];
        for (src_idx, dst_idx) in cases {
            for method in [BuildMethod::Cooperation, BuildMethod::Duplication] {
                for p in [1, 2, 3, 5] {
                    let fast = sched_one_program(p, n, src_idx.clone(), dst_idx.clone(), method);
                    let slow =
                        sched_reference_one_program(p, n, src_idx.clone(), dst_idx.clone(), method);
                    for r in 0..p {
                        let (sa, _) = &fast.results[r];
                        let sb = &slow.results[r];
                        assert_eq!(sa, sb, "method {method:?} p {p} rank {r}");
                    }
                }
            }
        }
    }

    #[test]
    fn run_based_two_program_duplication_matches_reference() {
        let n = 16;
        let build = |reference: bool| {
            let world = World::with_model(4, MachineModel::zero());
            world.run(move |ep| {
                let (pa, pb, un) = Group::split_two(2, 2, 100);
                let sset = SetOfRegions::single(IndexSet::new(vec![3, 9, 12, 1]));
                let dset = SetOfRegions::single(IndexSet::new(vec![15, 0, 7, 8]));
                let (src, dst) = if pa.contains(ep.rank()) {
                    (
                        Some(BlockVec::create(&pa, ep.rank(), n, |i| i as f64)),
                        None,
                    )
                } else {
                    (None, Some(BlockVec::create(&pb, ep.rank(), n, |_| 0.0)))
                };
                let src_side = src.as_ref().map(|s| Side::new(s, &sset));
                let dst_side = dst.as_ref().map(|d| Side::new(d, &dset));
                let f = if reference {
                    compute_schedule_reference::<f64, BlockVec, BlockVec>
                } else {
                    compute_schedule::<f64, BlockVec, BlockVec>
                };
                f(
                    ep,
                    &un,
                    &pa,
                    src_side,
                    &pb,
                    dst_side,
                    BuildMethod::Duplication,
                )
                .unwrap()
            })
        };
        let fast = build(false);
        let slow = build(true);
        for r in 0..4 {
            assert_eq!(fast.results[r], slow.results[r], "rank {r}");
        }
    }

    /// A buggy library whose ranks disagree about ownership: rank 1
    /// re-announces position 0 in place of its first owned position, so the
    /// per-rank lists stay sorted (passing the local contract checks) but
    /// position 0 is claimed by two ranks while another goes unclaimed.
    struct DoubleAnnounce(BlockVec);

    impl McObject<f64> for DoubleAnnounce {
        type Region = IndexSet;
        type Descriptor = BlockVecDesc;

        fn deref_owned(
            &self,
            comm: &mut Comm<'_>,
            set: &SetOfRegions<IndexSet>,
        ) -> Vec<(usize, LocalAddr)> {
            let mut out = self.0.deref_owned(comm, set);
            if comm.rank() == 1 && !out.is_empty() && out[0].0 > 0 {
                out[0] = (0, out[0].1);
            }
            out
        }

        fn locate_positions(
            &self,
            comm: &mut Comm<'_>,
            set: &SetOfRegions<IndexSet>,
            positions: &[usize],
        ) -> Vec<Location> {
            self.0.locate_positions(comm, set, positions)
        }

        fn descriptor(&self, comm: &mut Comm<'_>) -> BlockVecDesc {
            self.0.descriptor(comm)
        }

        fn pack(&self, ep: &mut Endpoint, addrs: &[LocalAddr], out: &mut Vec<f64>) {
            self.0.pack(ep, addrs, out);
        }

        fn unpack(&mut self, ep: &mut Endpoint, addrs: &[LocalAddr], data: &[f64]) {
            self.0.unpack(ep, addrs, data);
        }
    }

    #[test]
    fn duplicate_announcement_detected_by_both_inspectors() {
        // Destination positions 0..3 live on rank 0, 3..6 on rank 1; the
        // faulty destination makes rank 1 claim position 0 as well.  Both
        // the run-based overlap sweep and the element-wise slot check must
        // report the same duplicated position on every rank.
        for reference in [false, true] {
            let world = World::with_model(2, MachineModel::zero());
            let out = world.run(move |ep| {
                let g = Group::world(ep.world_size());
                let src = BlockVec::create(&g, ep.rank(), 12, |i| i as f64);
                let dst = DoubleAnnounce(BlockVec::create(&g, ep.rank(), 12, |_| 0.0));
                let sset = SetOfRegions::single(IndexSet::new((0..6).collect()));
                let dset = SetOfRegions::single(IndexSet::new(vec![0, 1, 2, 6, 7, 8]));
                let f = if reference {
                    compute_schedule_reference::<f64, BlockVec, DoubleAnnounce>
                } else {
                    compute_schedule::<f64, BlockVec, DoubleAnnounce>
                };
                f(
                    ep,
                    &g,
                    &g,
                    Some(Side::new(&src, &sset)),
                    &g,
                    Some(Side::new(&dst, &dset)),
                    BuildMethod::Cooperation,
                )
            });
            for r in out.results {
                assert_eq!(
                    r.unwrap_err(),
                    McError::DuplicateDestination { pos: 0 },
                    "reference={reference}"
                );
            }
        }
    }
}
