//! Communication schedules (paper §4.1.3–§4.1.4).
//!
//! A [`Schedule`] records, per rank, which local elements are sent to which
//! peers and which local elements receive from which peers — plus direct
//! local copies when a rank owns both ends of a pair.  Properties the paper
//! relies on, all upheld (and tested) here:
//!
//! * **aggregation** — at most one message per communicating pair, with
//!   buffer order equal on both sides (linearization order);
//! * **reusability** — a schedule moves data any number of times;
//! * **symmetry** — [`Schedule::reversed`] turns an A→B schedule into the
//!   B→A schedule at zero cost.

use mcsim::error::SimError;
use mcsim::group::Group;
use mcsim::wire::{Wire, WireReader};

use crate::LocalAddr;

/// A per-rank communication schedule over a (union) group of ranks.
///
/// `sends` / `recvs` are keyed by the peer's *local rank within
/// [`Schedule::group`]*, contain only non-empty transfers, and are sorted by
/// peer.  Address lists are in linearization order, which makes the packed
/// buffer order identical on the sending and receiving side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    group: Group,
    seq: u32,
    /// `(peer local rank, local addresses to pack)`, sorted by peer.
    pub sends: Vec<(usize, Vec<LocalAddr>)>,
    /// `(peer local rank, local addresses to fill)`, sorted by peer.
    pub recvs: Vec<(usize, Vec<LocalAddr>)>,
    /// Same-rank `(source address, destination address)` pairs, copied
    /// directly with no intermediate buffer (paper §5.3 contrasts this with
    /// Multiblock Parti's internal staging buffer).
    pub local_pairs: Vec<(LocalAddr, LocalAddr)>,
    /// Total elements of the whole transfer (global, same on every rank).
    pub total_elems: usize,
}

impl Schedule {
    /// Assemble a schedule (used by the builders in [`crate::build`]).
    pub fn new(
        group: Group,
        seq: u32,
        mut sends: Vec<(usize, Vec<LocalAddr>)>,
        mut recvs: Vec<(usize, Vec<LocalAddr>)>,
        local_pairs: Vec<(LocalAddr, LocalAddr)>,
        total_elems: usize,
    ) -> Self {
        sends.retain(|(_, a)| !a.is_empty());
        recvs.retain(|(_, a)| !a.is_empty());
        sends.sort_by_key(|&(p, _)| p);
        recvs.sort_by_key(|&(p, _)| p);
        Schedule {
            group,
            seq,
            sends,
            recvs,
            local_pairs,
            total_elems,
        }
    }

    /// The union group the schedule communicates over.
    pub fn group(&self) -> &Group {
        &self.group
    }

    /// Build-time sequence number (disambiguates message streams when
    /// several schedules share a group).
    pub fn seq(&self) -> u32 {
        self.seq
    }

    /// The schedule for the opposite direction: what was sent is received
    /// and vice versa.  The paper's schedules are symmetric (§4.3); this is
    /// how the client/server experiment reuses one vector schedule for both
    /// the operand (client→server) and the result (server→client).
    pub fn reversed(&self) -> Schedule {
        Schedule {
            group: self.group.clone(),
            seq: self.seq,
            sends: self.recvs.clone(),
            recvs: self.sends.clone(),
            local_pairs: self.local_pairs.iter().map(|&(s, d)| (d, s)).collect(),
            total_elems: self.total_elems,
        }
    }

    /// Number of messages this rank sends when the schedule runs.
    pub fn msgs_out(&self) -> usize {
        self.sends.len()
    }

    /// Number of messages this rank receives when the schedule runs.
    pub fn msgs_in(&self) -> usize {
        self.recvs.len()
    }

    /// Elements this rank sends (excluding local copies).
    pub fn elems_out(&self) -> usize {
        self.sends.iter().map(|(_, a)| a.len()).sum()
    }

    /// Elements this rank receives (excluding local copies).
    pub fn elems_in(&self) -> usize {
        self.recvs.iter().map(|(_, a)| a.len()).sum()
    }

    /// Elements this rank copies locally.
    pub fn elems_local(&self) -> usize {
        self.local_pairs.len()
    }
}

impl Wire for Schedule {
    fn write(&self, out: &mut Vec<u8>) {
        // Group = (members, context).
        self.group.members().to_vec().write(out);
        self.group.context().write(out);
        self.seq.write(out);
        self.sends.write(out);
        self.recvs.write(out);
        self.local_pairs.write(out);
        self.total_elems.write(out);
    }
    fn read(r: &mut WireReader<'_>) -> Result<Self, SimError> {
        let members = Vec::<usize>::read(r)?;
        let ctx = u32::read(r)?;
        let seq = u32::read(r)?;
        let sends = Vec::<(usize, Vec<LocalAddr>)>::read(r)?;
        let recvs = Vec::<(usize, Vec<LocalAddr>)>::read(r)?;
        let local_pairs = Vec::<(LocalAddr, LocalAddr)>::read(r)?;
        let total_elems = usize::read(r)?;
        if members.is_empty() {
            return Err(SimError::Decode("schedule with empty group".into()));
        }
        if ctx < mcsim::tag::Tag::FIRST_USER_CTX {
            return Err(SimError::Decode(format!("reserved group context {ctx}")));
        }
        let mut uniq = members.clone();
        uniq.sort_unstable();
        uniq.dedup();
        if uniq.len() != members.len() {
            return Err(SimError::Decode("duplicate group members".into()));
        }
        Ok(Schedule {
            group: Group::new(members, ctx),
            seq,
            sends,
            recvs,
            local_pairs,
            total_elems,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        Schedule::new(
            Group::world(3),
            7,
            vec![(2, vec![5, 6]), (1, vec![0]), (0, vec![])],
            vec![(1, vec![9])],
            vec![(1, 2), (3, 4)],
            6,
        )
    }

    #[test]
    fn new_sorts_and_drops_empty() {
        let s = sample();
        assert_eq!(s.sends.len(), 2);
        assert_eq!(s.sends[0].0, 1);
        assert_eq!(s.sends[1].0, 2);
        assert_eq!(s.msgs_out(), 2);
        assert_eq!(s.msgs_in(), 1);
        assert_eq!(s.elems_out(), 3);
        assert_eq!(s.elems_in(), 1);
        assert_eq!(s.elems_local(), 2);
    }

    #[test]
    fn wire_roundtrip_preserves_everything() {
        use mcsim::wire::Wire;
        let s = sample();
        let b = s.to_bytes();
        let back = Schedule::from_bytes(&b).unwrap();
        assert_eq!(back, s);
        // Corrupt group decoding is rejected.
        let mut bad = Vec::new();
        Vec::<usize>::new().write(&mut bad);
        assert!(Schedule::from_bytes(&bad).is_err());
    }

    #[test]
    fn reversed_swaps_directions() {
        let s = sample();
        let r = s.reversed();
        assert_eq!(r.sends, s.recvs);
        assert_eq!(r.recvs, s.sends);
        assert_eq!(r.local_pairs, vec![(2, 1), (4, 3)]);
        assert_eq!(r.seq(), s.seq());
        // Double reversal is the identity.
        assert_eq!(r.reversed(), s);
    }
}
