//! Communication schedules (paper §4.1.3–§4.1.4).
//!
//! A [`Schedule`] records, per rank, which local elements are sent to which
//! peers and which local elements receive from which peers — plus direct
//! local copies when a rank owns both ends of a pair.  Properties the paper
//! relies on, all upheld (and tested) here:
//!
//! * **aggregation** — at most one message per communicating pair, with
//!   buffer order equal on both sides (linearization order);
//! * **reusability** — a schedule moves data any number of times;
//! * **symmetry** — [`Schedule::reversed`] turns an A→B schedule into the
//!   B→A schedule at zero cost.
//!
//! Address lists are stored **run-length compressed** ([`AddrRuns`] /
//! [`PairRuns`]): regular-section transfers produce long stretches of
//! consecutive local addresses, so a schedule over millions of elements
//! collapses to a handful of `(start, len)` runs.  The executor exploits
//! the runs for contiguous slice copies; irregular (Chaos-style) transfers
//! degrade gracefully to one run per element.

use mcsim::error::SimError;
use mcsim::group::Group;
use mcsim::wire::{Wire, WireReader};

use crate::LocalAddr;

/// A run-length-compressed list of local addresses: maximal runs of
/// consecutive addresses stored as `(start, len)`.
///
/// Preserves order exactly — iterating yields the original address list.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AddrRuns {
    runs: Vec<(LocalAddr, usize)>,
    total: usize,
}

impl AddrRuns {
    /// An empty list.
    pub fn new() -> Self {
        AddrRuns::default()
    }

    /// Append one address, merging into the last run when consecutive.
    #[inline]
    pub fn push(&mut self, addr: LocalAddr) {
        if let Some(last) = self.runs.last_mut() {
            if last.0 + last.1 == addr {
                last.1 += 1;
                self.total += 1;
                return;
            }
        }
        self.runs.push((addr, 1));
        self.total += 1;
    }

    /// Append a whole `(start, len)` run (merged if it continues the last).
    pub fn push_run(&mut self, start: LocalAddr, len: usize) {
        if len == 0 {
            return;
        }
        if let Some(last) = self.runs.last_mut() {
            if last.0 + last.1 == start {
                last.1 += len;
                self.total += len;
                return;
            }
        }
        self.runs.push((start, len));
        self.total += len;
    }

    /// Number of addresses (not runs).
    #[inline]
    pub fn len(&self) -> usize {
        self.total
    }

    /// True if no addresses are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The compressed `(start, len)` runs.
    #[inline]
    pub fn runs(&self) -> &[(LocalAddr, usize)] {
        &self.runs
    }

    /// Iterate the addresses in original order.
    pub fn iter(&self) -> impl Iterator<Item = LocalAddr> + '_ {
        self.runs.iter().flat_map(|&(s, l)| s..s + l)
    }

    /// Expand back to an explicit address list.
    pub fn to_vec(&self) -> Vec<LocalAddr> {
        let mut v = Vec::with_capacity(self.total);
        v.extend(self.iter());
        v
    }

    /// The sub-list covering addresses `[start, start + len)` of this
    /// list's original order — what one streamed part of a chunked
    /// transfer packs or unpacks.  O(runs), never materializes addresses.
    pub fn slice_elems(&self, start: usize, len: usize) -> AddrRuns {
        let mut out = AddrRuns::new();
        if len == 0 || start >= self.total {
            return out;
        }
        let want = len.min(self.total - start);
        let mut pos = 0usize;
        for &(s, l) in &self.runs {
            if pos + l <= start {
                pos += l;
                continue;
            }
            let skip = start.saturating_sub(pos);
            let take = (l - skip).min(want - out.len());
            out.push_run(s + skip, take);
            pos += l;
            if out.len() == want {
                break;
            }
        }
        out
    }

    /// Drop all but the first `keep` addresses (used by tests to corrupt a
    /// schedule; cheap because runs are ordered).
    pub fn truncate(&mut self, keep: usize) {
        if keep >= self.total {
            return;
        }
        let mut seen = 0usize;
        let mut cut = self.runs.len();
        for (i, run) in self.runs.iter_mut().enumerate() {
            if seen + run.1 >= keep {
                run.1 = keep - seen;
                cut = if run.1 == 0 { i } else { i + 1 };
                break;
            }
            seen += run.1;
        }
        self.runs.truncate(cut);
        self.total = keep;
    }
}

impl FromIterator<LocalAddr> for AddrRuns {
    fn from_iter<I: IntoIterator<Item = LocalAddr>>(iter: I) -> Self {
        let mut r = AddrRuns::new();
        for a in iter {
            r.push(a);
        }
        r
    }
}

impl Wire for AddrRuns {
    fn write(&self, out: &mut Vec<u8>) {
        self.runs.write(out);
    }
    fn read(r: &mut WireReader<'_>) -> Result<Self, SimError> {
        let runs = Vec::<(usize, usize)>::read(r)?;
        let mut total = 0usize;
        for &(start, len) in &runs {
            if len == 0 {
                return Err(SimError::Decode("empty address run".into()));
            }
            if start.checked_add(len).is_none() {
                return Err(SimError::Decode("address run overflows".into()));
            }
            total = total
                .checked_add(len)
                .ok_or_else(|| SimError::Decode("address run total overflows".into()))?;
        }
        Ok(AddrRuns { runs, total })
    }
}

/// Run-length-compressed `(source, destination)` address pairs for direct
/// local copies: maximal stretches where both sides advance consecutively,
/// stored as `(src_start, dst_start, len)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PairRuns {
    runs: Vec<(LocalAddr, LocalAddr, usize)>,
    total: usize,
}

impl PairRuns {
    /// An empty list.
    pub fn new() -> Self {
        PairRuns::default()
    }

    /// Append one pair, merging when both sides are consecutive.
    #[inline]
    pub fn push(&mut self, src: LocalAddr, dst: LocalAddr) {
        if let Some(last) = self.runs.last_mut() {
            if last.0 + last.2 == src && last.1 + last.2 == dst {
                last.2 += 1;
                self.total += 1;
                return;
            }
        }
        self.runs.push((src, dst, 1));
        self.total += 1;
    }

    /// Append a whole `(src_start, dst_start, len)` run where both sides
    /// advance consecutively (merged if it continues the last run).
    pub fn push_run(&mut self, src: LocalAddr, dst: LocalAddr, len: usize) {
        if len == 0 {
            return;
        }
        if let Some(last) = self.runs.last_mut() {
            if last.0 + last.2 == src && last.1 + last.2 == dst {
                last.2 += len;
                self.total += len;
                return;
            }
        }
        self.runs.push((src, dst, len));
        self.total += len;
    }

    /// Zip two equal-length address lists into pairs — the run-based
    /// inspector's way of forming the local-copy half without expanding to
    /// per-element pairs.  Walks both run lists in lockstep, emitting the
    /// overlap of each `(start, len)` chunk, so the result is exactly what
    /// per-element `push(src, dst)` over the zipped lists would produce.
    pub fn from_zip(srcs: &AddrRuns, dsts: &AddrRuns) -> PairRuns {
        assert_eq!(srcs.len(), dsts.len(), "zipped address lists must pair up");
        let mut out = PairRuns::new();
        let (sruns, druns) = (srcs.runs(), dsts.runs());
        let (mut si, mut di) = (0usize, 0usize);
        let (mut soff, mut doff) = (0usize, 0usize);
        while si < sruns.len() {
            let (ss, sl) = sruns[si];
            let (ds, dl) = druns[di];
            let take = (sl - soff).min(dl - doff);
            out.push_run(ss + soff, ds + doff, take);
            soff += take;
            doff += take;
            if soff == sl {
                si += 1;
                soff = 0;
            }
            if doff == dl {
                di += 1;
                doff = 0;
            }
        }
        out
    }

    /// Number of pairs (not runs).
    #[inline]
    pub fn len(&self) -> usize {
        self.total
    }

    /// True if no pairs are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The compressed `(src_start, dst_start, len)` runs.
    #[inline]
    pub fn runs(&self) -> &[(LocalAddr, LocalAddr, usize)] {
        &self.runs
    }

    /// Iterate the pairs in original order.
    pub fn iter(&self) -> impl Iterator<Item = (LocalAddr, LocalAddr)> + '_ {
        self.runs
            .iter()
            .flat_map(|&(s, d, l)| (0..l).map(move |k| (s + k, d + k)))
    }

    /// Expand back to an explicit pair list.
    pub fn to_vec(&self) -> Vec<(LocalAddr, LocalAddr)> {
        let mut v = Vec::with_capacity(self.total);
        v.extend(self.iter());
        v
    }

    /// The same pairs with source and destination swapped.
    pub fn swapped(&self) -> PairRuns {
        PairRuns {
            runs: self.runs.iter().map(|&(s, d, l)| (d, s, l)).collect(),
            total: self.total,
        }
    }

    /// Split into the source-address runs and destination-address runs
    /// (both in pair order), for bulk pack/unpack of the local copies.
    pub fn split_sides(&self) -> (AddrRuns, AddrRuns) {
        let mut srcs = AddrRuns::new();
        let mut dsts = AddrRuns::new();
        for &(s, d, l) in &self.runs {
            srcs.push_run(s, l);
            dsts.push_run(d, l);
        }
        (srcs, dsts)
    }
}

impl FromIterator<(LocalAddr, LocalAddr)> for PairRuns {
    fn from_iter<I: IntoIterator<Item = (LocalAddr, LocalAddr)>>(iter: I) -> Self {
        let mut r = PairRuns::new();
        for (s, d) in iter {
            r.push(s, d);
        }
        r
    }
}

impl Wire for PairRuns {
    fn write(&self, out: &mut Vec<u8>) {
        self.runs.write(out);
    }
    fn read(r: &mut WireReader<'_>) -> Result<Self, SimError> {
        let runs = Vec::<(usize, usize, usize)>::read(r)?;
        let mut total = 0usize;
        for &(s, d, l) in &runs {
            if l == 0 {
                return Err(SimError::Decode("empty pair run".into()));
            }
            if s.checked_add(l).is_none() || d.checked_add(l).is_none() {
                return Err(SimError::Decode("pair run overflows".into()));
            }
            total = total
                .checked_add(l)
                .ok_or_else(|| SimError::Decode("pair run total overflows".into()))?;
        }
        Ok(PairRuns { runs, total })
    }
}

/// A per-rank communication schedule over a (union) group of ranks.
///
/// `sends` / `recvs` are keyed by the peer's *local rank within
/// [`Schedule::group`]*, contain only non-empty transfers, and are sorted by
/// peer.  Address lists are in linearization order, which makes the packed
/// buffer order identical on the sending and receiving side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    group: Group,
    seq: u32,
    /// `(peer local rank, run-compressed local addresses to pack)`, sorted
    /// by peer.
    pub sends: Vec<(usize, AddrRuns)>,
    /// `(peer local rank, run-compressed local addresses to fill)`, sorted
    /// by peer.
    pub recvs: Vec<(usize, AddrRuns)>,
    /// Same-rank `(source address, destination address)` pairs, copied
    /// directly with no intermediate buffer (paper §5.3 contrasts this with
    /// Multiblock Parti's internal staging buffer).
    pub local_pairs: PairRuns,
    /// Total elements of the whole transfer (global, same on every rank).
    pub total_elems: usize,
    /// Distribution epoch of the source object at build time (0 for
    /// hand-built schedules; see [`crate::adapter::McObject::epoch`]).
    src_epoch: u64,
    /// Distribution epoch of the destination object at build time.
    dst_epoch: u64,
    /// Fingerprint of the element type the schedule was built for
    /// (0 = untyped/hand-built; see [`elem_type`]).
    elem_tag: u64,
    /// `size_of` the element type (0 = untyped/hand-built).
    elem_size: u32,
}

/// Fingerprint an element type for schedule integrity checks: an FNV-1a
/// hash of the type name plus the element size in bytes.  [`Schedule`]s
/// built by [`crate::build::compute_schedule`] carry this pair so
/// [`crate::validate_schedule`] and the transfer-manifest exchange can
/// detect two sides disagreeing about what a port carries.
pub fn elem_type<T>() -> (u64, u32) {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in std::any::type_name::<T>().as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h, std::mem::size_of::<T>() as u32)
}

impl Schedule {
    /// Assemble a schedule from explicit per-element address lists (the
    /// shape the builders in [`crate::build`] naturally produce); lists are
    /// run-compressed here.
    pub fn new(
        group: Group,
        seq: u32,
        sends: Vec<(usize, Vec<LocalAddr>)>,
        recvs: Vec<(usize, Vec<LocalAddr>)>,
        local_pairs: Vec<(LocalAddr, LocalAddr)>,
        total_elems: usize,
    ) -> Self {
        let compress = |mut lists: Vec<(usize, Vec<LocalAddr>)>| -> Vec<(usize, AddrRuns)> {
            lists.retain(|(_, a)| !a.is_empty());
            lists.sort_by_key(|&(p, _)| p);
            lists
                .into_iter()
                .map(|(p, a)| (p, a.into_iter().collect()))
                .collect()
        };
        Schedule {
            group,
            seq,
            sends: compress(sends),
            recvs: compress(recvs),
            local_pairs: local_pairs.into_iter().collect(),
            total_elems,
            src_epoch: 0,
            dst_epoch: 0,
            elem_tag: 0,
            elem_size: 0,
        }
    }

    /// Assemble a schedule from already-compressed address lists (the shape
    /// the run-based builders produce) — no per-element pass happens here.
    /// Lists may arrive keyed by every peer; empty ones are dropped and the
    /// rest sorted by peer, mirroring [`Schedule::new`].
    pub fn from_runs(
        group: Group,
        seq: u32,
        sends: Vec<(usize, AddrRuns)>,
        recvs: Vec<(usize, AddrRuns)>,
        local_pairs: PairRuns,
        total_elems: usize,
    ) -> Self {
        let tidy = |mut lists: Vec<(usize, AddrRuns)>| -> Vec<(usize, AddrRuns)> {
            lists.retain(|(_, a)| !a.is_empty());
            lists.sort_by_key(|&(p, _)| p);
            lists
        };
        Schedule {
            group,
            seq,
            sends: tidy(sends),
            recvs: tidy(recvs),
            local_pairs,
            total_elems,
            src_epoch: 0,
            dst_epoch: 0,
            elem_tag: 0,
            elem_size: 0,
        }
    }

    /// Attach build-time integrity metadata: the distribution epochs of the
    /// source and destination objects and the element type fingerprint
    /// (see [`elem_type`]).  [`crate::build::compute_schedule`] calls this;
    /// hand-built schedules keep the zero defaults, which executors treat
    /// as "no integrity information" (legacy behavior).
    pub fn with_integrity(
        mut self,
        src_epoch: u64,
        dst_epoch: u64,
        elem_tag: u64,
        elem_size: u32,
    ) -> Self {
        self.src_epoch = src_epoch;
        self.dst_epoch = dst_epoch;
        self.elem_tag = elem_tag;
        self.elem_size = elem_size;
        self
    }

    /// Distribution epoch of the source object at build time.
    pub fn src_epoch(&self) -> u64 {
        self.src_epoch
    }

    /// Distribution epoch of the destination object at build time.
    pub fn dst_epoch(&self) -> u64 {
        self.dst_epoch
    }

    /// Element-type fingerprint the schedule was built for (0 = untyped).
    pub fn elem_tag(&self) -> u64 {
        self.elem_tag
    }

    /// Element size in bytes the schedule was built for (0 = untyped).
    pub fn elem_size(&self) -> u32 {
        self.elem_size
    }

    /// The union group the schedule communicates over.
    pub fn group(&self) -> &Group {
        &self.group
    }

    /// Build-time sequence number (disambiguates message streams when
    /// several schedules share a group).
    pub fn seq(&self) -> u32 {
        self.seq
    }

    /// The schedule for the opposite direction: what was sent is received
    /// and vice versa.  The paper's schedules are symmetric (§4.3); this is
    /// how the client/server experiment reuses one vector schedule for both
    /// the operand (client→server) and the result (server→client).
    pub fn reversed(&self) -> Schedule {
        Schedule {
            group: self.group.clone(),
            seq: self.seq,
            sends: self.recvs.clone(),
            recvs: self.sends.clone(),
            local_pairs: self.local_pairs.swapped(),
            total_elems: self.total_elems,
            src_epoch: self.dst_epoch,
            dst_epoch: self.src_epoch,
            elem_tag: self.elem_tag,
            elem_size: self.elem_size,
        }
    }

    /// Number of messages this rank sends when the schedule runs.
    pub fn msgs_out(&self) -> usize {
        self.sends.len()
    }

    /// Number of messages this rank receives when the schedule runs.
    pub fn msgs_in(&self) -> usize {
        self.recvs.len()
    }

    /// Elements this rank sends (excluding local copies).
    pub fn elems_out(&self) -> usize {
        self.sends.iter().map(|(_, a)| a.len()).sum()
    }

    /// Elements this rank receives (excluding local copies).
    pub fn elems_in(&self) -> usize {
        self.recvs.iter().map(|(_, a)| a.len()).sum()
    }

    /// Elements this rank copies locally.
    pub fn elems_local(&self) -> usize {
        self.local_pairs.len()
    }

    /// Total `(start, len)` runs across both halves — the executor's
    /// bookkeeping cost, which compression keeps far below element count
    /// for regular transfers.
    pub fn num_runs(&self) -> usize {
        self.sends
            .iter()
            .map(|(_, a)| a.runs().len())
            .sum::<usize>()
            + self
                .recvs
                .iter()
                .map(|(_, a)| a.runs().len())
                .sum::<usize>()
            + self.local_pairs.runs().len()
    }
}

impl Wire for Schedule {
    fn write(&self, out: &mut Vec<u8>) {
        // Group = (members, context).
        self.group.members().to_vec().write(out);
        self.group.context().write(out);
        self.seq.write(out);
        self.sends.write(out);
        self.recvs.write(out);
        self.local_pairs.write(out);
        self.total_elems.write(out);
        self.src_epoch.write(out);
        self.dst_epoch.write(out);
        self.elem_tag.write(out);
        self.elem_size.write(out);
    }
    fn read(r: &mut WireReader<'_>) -> Result<Self, SimError> {
        let members = Vec::<usize>::read(r)?;
        let ctx = u32::read(r)?;
        let seq = u32::read(r)?;
        let sends = Vec::<(usize, AddrRuns)>::read(r)?;
        let recvs = Vec::<(usize, AddrRuns)>::read(r)?;
        let local_pairs = PairRuns::read(r)?;
        let total_elems = usize::read(r)?;
        let src_epoch = u64::read(r)?;
        let dst_epoch = u64::read(r)?;
        let elem_tag = u64::read(r)?;
        let elem_size = u32::read(r)?;
        if members.is_empty() {
            return Err(SimError::Decode("schedule with empty group".into()));
        }
        if ctx < mcsim::tag::Tag::FIRST_USER_CTX {
            return Err(SimError::Decode(format!("reserved group context {ctx}")));
        }
        let mut uniq = members.clone();
        uniq.sort_unstable();
        uniq.dedup();
        if uniq.len() != members.len() {
            return Err(SimError::Decode("duplicate group members".into()));
        }
        Ok(Schedule {
            group: Group::new(members, ctx),
            seq,
            sends,
            recvs,
            local_pairs,
            total_elems,
            src_epoch,
            dst_epoch,
            elem_tag,
            elem_size,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        Schedule::new(
            Group::world(3),
            7,
            vec![(2, vec![5, 6]), (1, vec![0]), (0, vec![])],
            vec![(1, vec![9])],
            vec![(1, 2), (3, 4)],
            6,
        )
    }

    #[test]
    fn slice_elems_covers_in_order() {
        // Runs [10..13), [20..22), [30..31): addresses 10,11,12,20,21,30.
        let mut r = AddrRuns::new();
        r.push_run(10, 3);
        r.push_run(20, 2);
        r.push_run(30, 1);
        // Mid-run to mid-run slice.
        assert_eq!(r.slice_elems(1, 3).to_vec(), vec![11, 12, 20]);
        // Exact-run slice.
        assert_eq!(r.slice_elems(3, 2).to_vec(), vec![20, 21]);
        // Whole list; parts that tile it reassemble exactly.
        assert_eq!(r.slice_elems(0, 6), r);
        let mut tiled = AddrRuns::new();
        for part in 0..3 {
            for a in r.slice_elems(part * 2, 2).iter() {
                tiled.push(a);
            }
        }
        assert_eq!(tiled, r);
        // Over-length and out-of-range requests clamp.
        assert_eq!(r.slice_elems(4, 100).to_vec(), vec![21, 30]);
        assert!(r.slice_elems(6, 1).is_empty());
        assert!(r.slice_elems(0, 0).is_empty());
    }

    #[test]
    fn new_sorts_and_drops_empty() {
        let s = sample();
        assert_eq!(s.sends.len(), 2);
        assert_eq!(s.sends[0].0, 1);
        assert_eq!(s.sends[1].0, 2);
        assert_eq!(s.msgs_out(), 2);
        assert_eq!(s.msgs_in(), 1);
        assert_eq!(s.elems_out(), 3);
        assert_eq!(s.elems_in(), 1);
        assert_eq!(s.elems_local(), 2);
    }

    #[test]
    fn wire_roundtrip_preserves_everything() {
        use mcsim::wire::Wire;
        let s = sample();
        let b = s.to_bytes();
        let back = Schedule::from_bytes(&b).unwrap();
        assert_eq!(back, s);
        // Corrupt group decoding is rejected.
        let mut bad = Vec::new();
        Vec::<usize>::new().write(&mut bad);
        assert!(Schedule::from_bytes(&bad).is_err());
    }

    #[test]
    fn reversed_swaps_directions() {
        let s = sample();
        let r = s.reversed();
        assert_eq!(r.sends, s.recvs);
        assert_eq!(r.recvs, s.sends);
        assert_eq!(r.local_pairs.to_vec(), vec![(2, 1), (4, 3)]);
        assert_eq!(r.seq(), s.seq());
        // Double reversal is the identity.
        assert_eq!(r.reversed(), s);
    }

    #[test]
    fn runs_compress_contiguous_addresses() {
        let s = Schedule::new(
            Group::world(2),
            0,
            vec![(1, (100..1100).collect())],
            vec![(1, (0..500).chain(800..1300).collect())],
            (0..64).map(|k| (k, k + 4096)).collect(),
            1000,
        );
        assert_eq!(s.sends[0].1.runs(), &[(100, 1000)]);
        assert_eq!(s.recvs[0].1.runs(), &[(0, 500), (800, 500)]);
        assert_eq!(s.local_pairs.runs(), &[(0, 4096, 64)]);
        assert_eq!(s.elems_out(), 1000);
        assert_eq!(s.elems_in(), 1000);
        assert_eq!(s.elems_local(), 64);
        assert_eq!(s.num_runs(), 4);
    }

    #[test]
    fn addr_runs_truncate() {
        let mut r: AddrRuns = vec![0, 1, 2, 10, 11, 20].into_iter().collect();
        assert_eq!(r.runs().len(), 3);
        r.truncate(4);
        assert_eq!(r.to_vec(), vec![0, 1, 2, 10]);
        r.truncate(3);
        assert_eq!(r.to_vec(), vec![0, 1, 2]);
        r.truncate(100);
        assert_eq!(r.len(), 3);
        r.truncate(0);
        assert!(r.is_empty());
        assert!(r.runs().is_empty());
    }

    #[test]
    fn addr_runs_decode_rejects_corrupt() {
        use mcsim::wire::Wire;
        // Zero-length run.
        let bad = vec![(5usize, 0usize)];
        let mut b = Vec::new();
        bad.write(&mut b);
        assert!(AddrRuns::from_bytes(&b).is_err());
        // Overflowing run.
        let bad = vec![(usize::MAX, 2usize)];
        let mut b = Vec::new();
        bad.write(&mut b);
        assert!(AddrRuns::from_bytes(&b).is_err());
        // Valid roundtrip.
        let good: AddrRuns = vec![3, 4, 5, 9].into_iter().collect();
        assert_eq!(AddrRuns::from_bytes(&good.to_bytes()).unwrap(), good);
    }

    #[test]
    fn integrity_metadata_survives_wire_and_reversal() {
        let (tag, size) = elem_type::<f64>();
        assert_eq!(size, 8);
        assert_ne!(tag, 0);
        assert_ne!(elem_type::<f32>().0, tag);
        let s = sample().with_integrity(3, 9, tag, size);
        assert_eq!(s.src_epoch(), 3);
        assert_eq!(s.dst_epoch(), 9);
        assert_eq!(s.elem_tag(), tag);
        assert_eq!(s.elem_size(), size);
        // Reversal swaps the epochs, keeps the type.
        let r = s.reversed();
        assert_eq!(r.src_epoch(), 9);
        assert_eq!(r.dst_epoch(), 3);
        assert_eq!(r.elem_tag(), tag);
        // Wire roundtrip preserves everything.
        use mcsim::wire::Wire;
        assert_eq!(Schedule::from_bytes(&s.to_bytes()).unwrap(), s);
        // Hand-built schedules stay untyped.
        assert_eq!(sample().elem_tag(), 0);
        assert_eq!(sample().elem_size(), 0);
    }

    #[test]
    fn pair_runs_from_zip_matches_elementwise() {
        // Misaligned run boundaries on the two sides.
        let srcs: AddrRuns = vec![0, 1, 2, 3, 50, 51, 52, 9].into_iter().collect();
        let dsts: AddrRuns = vec![100, 101, 7, 8, 9, 10, 11, 12].into_iter().collect();
        let zipped = PairRuns::from_zip(&srcs, &dsts);
        let expected: PairRuns = srcs.iter().zip(dsts.iter()).collect();
        assert_eq!(zipped, expected);
        assert_eq!(zipped.len(), 8);
        // Empty zip.
        assert_eq!(
            PairRuns::from_zip(&AddrRuns::new(), &AddrRuns::new()),
            PairRuns::new()
        );
    }

    #[test]
    fn pair_runs_push_run_merges() {
        let mut a = PairRuns::new();
        a.push_run(0, 10, 3);
        a.push_run(3, 13, 2); // continues both sides
        a.push_run(9, 15, 1); // breaks
        a.push_run(0, 0, 0); // ignored
        let mut b = PairRuns::new();
        for (s, d) in [(0, 10), (1, 11), (2, 12), (3, 13), (4, 14), (9, 15)] {
            b.push(s, d);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn from_runs_matches_new() {
        let by_elems = sample();
        let runs_of = |v: Vec<LocalAddr>| -> AddrRuns { v.into_iter().collect() };
        let by_runs = Schedule::from_runs(
            Group::world(3),
            7,
            vec![
                (2, runs_of(vec![5, 6])),
                (1, runs_of(vec![0])),
                (0, AddrRuns::new()),
            ],
            vec![(1, runs_of(vec![9]))],
            PairRuns::from_zip(&runs_of(vec![1, 3]), &runs_of(vec![2, 4])),
            6,
        );
        assert_eq!(by_runs, by_elems);
    }

    #[test]
    fn pair_runs_split_sides() {
        let p: PairRuns = vec![(0, 10), (1, 11), (2, 12), (7, 3)]
            .into_iter()
            .collect();
        let (s, d) = p.split_sides();
        assert_eq!(s.to_vec(), vec![0, 1, 2, 7]);
        assert_eq!(d.to_vec(), vec![10, 11, 12, 3]);
        assert_eq!(
            p.swapped().to_vec(),
            vec![(10, 0), (11, 1), (12, 2), (3, 7)]
        );
    }
}
