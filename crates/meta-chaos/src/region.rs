//! Region types (paper §4.1.1).
//!
//! A *Region* is a compact description of a group of elements of a
//! distributed data structure, in global terms, for a given library.  The
//! paper's libraries use two families, both provided here:
//!
//! * [`RegularSection`] — a strided section of a multidimensional array
//!   (HPF, Multiblock Parti, and the `tulip` collection use these); its
//!   linearization is row-major order over the section;
//! * [`IndexSet`] — an explicit ordered list of global indices (Chaos);
//!   its linearization is the list order.
//!
//! Libraries may define further Region types by implementing [`Region`].

use mcsim::error::SimError;
use mcsim::wire::{Wire, WireReader};

/// Behaviour every region type must provide: a size, so the meta-library
/// can stitch linearizations together.
pub trait Region: Clone {
    /// Number of elements the region describes.
    fn len(&self) -> usize;

    /// True if the region is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One dimension of a regular section: indices `lo, lo+stride, ...` strictly
/// below `hi` (half-open, like Rust ranges; the paper's Fortran-style
/// inclusive triplets translate directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimSlice {
    /// First index.
    pub lo: usize,
    /// One past the last candidate index (half-open).
    pub hi: usize,
    /// Step between consecutive indices (≥ 1).
    pub stride: usize,
}

impl DimSlice {
    /// A contiguous slice `[lo, hi)`.
    pub fn new(lo: usize, hi: usize) -> Self {
        DimSlice::strided(lo, hi, 1)
    }

    /// A strided slice.
    pub fn strided(lo: usize, hi: usize, stride: usize) -> Self {
        assert!(stride >= 1, "stride must be at least 1");
        assert!(lo <= hi, "empty-or-valid slice requires lo <= hi");
        DimSlice { lo, hi, stride }
    }

    /// Number of indices in the slice.
    pub fn count(&self) -> usize {
        if self.lo >= self.hi {
            0
        } else {
            (self.hi - self.lo - 1) / self.stride + 1
        }
    }

    /// The `k`-th index of the slice.
    #[inline]
    pub fn index(&self, k: usize) -> usize {
        debug_assert!(k < self.count());
        self.lo + k * self.stride
    }

    /// If `i` is in the slice, its position within the slice.
    pub fn position_of(&self, i: usize) -> Option<usize> {
        if i < self.lo || i >= self.hi || !(i - self.lo).is_multiple_of(self.stride) {
            None
        } else {
            Some((i - self.lo) / self.stride)
        }
    }
}

impl Wire for DimSlice {
    fn write(&self, out: &mut Vec<u8>) {
        self.lo.write(out);
        self.hi.write(out);
        self.stride.write(out);
    }
    fn read(r: &mut WireReader<'_>) -> Result<Self, SimError> {
        let lo = usize::read(r)?;
        let hi = usize::read(r)?;
        let stride = usize::read(r)?;
        if stride == 0 {
            return Err(SimError::Decode("zero stride".into()));
        }
        Ok(DimSlice { lo, hi, stride })
    }
}

/// A strided section of an n-dimensional array; linearized row-major
/// (last dimension fastest), matching the paper's C-layout convention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegularSection {
    dims: Vec<DimSlice>,
}

impl RegularSection {
    /// Build from per-dimension slices.
    pub fn new(dims: Vec<DimSlice>) -> Self {
        assert!(!dims.is_empty(), "regular section needs at least one dim");
        RegularSection { dims }
    }

    /// The whole index space of an array with the given shape.
    pub fn whole(shape: &[usize]) -> Self {
        RegularSection::new(shape.iter().map(|&n| DimSlice::new(0, n)).collect())
    }

    /// A contiguous (stride-1) box `[lo_d, hi_d)` in every dimension.
    pub fn of_bounds(bounds: &[(usize, usize)]) -> Self {
        RegularSection::new(
            bounds
                .iter()
                .map(|&(lo, hi)| DimSlice::new(lo, hi))
                .collect(),
        )
    }

    /// Dimensionality.
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Per-dimension slices.
    pub fn dims(&self) -> &[DimSlice] {
        &self.dims
    }

    /// Per-dimension element counts.
    pub fn counts(&self) -> Vec<usize> {
        self.dims.iter().map(|d| d.count()).collect()
    }

    /// Global coordinates of the `k`-th element of the section's row-major
    /// linearization.
    pub fn coords_of(&self, k: usize) -> Vec<usize> {
        let mut out = vec![0; self.ndim()];
        self.coords_into(k, &mut out);
        out
    }

    /// As [`Self::coords_of`], writing into a caller-provided buffer to
    /// avoid per-element allocation in hot loops.
    pub fn coords_into(&self, mut k: usize, out: &mut [usize]) {
        debug_assert_eq!(out.len(), self.ndim());
        for d in (0..self.ndim()).rev() {
            let c = self.dims[d].count();
            out[d] = self.dims[d].index(k % c);
            k /= c;
        }
        debug_assert_eq!(k, 0, "coordinate index out of range");
    }

    /// Position of global coordinates within the section's linearization,
    /// if the coordinates belong to the section.
    pub fn position_of(&self, coords: &[usize]) -> Option<usize> {
        assert_eq!(coords.len(), self.ndim());
        let mut pos = 0;
        for (d, &c) in coords.iter().enumerate() {
            let p = self.dims[d].position_of(c)?;
            pos = pos * self.dims[d].count() + p;
        }
        Some(pos)
    }

    /// Intersect with a contiguous box `[lo_d, hi_d)` per dimension
    /// (e.g. the caller's locally owned block).  Returns the sub-section of
    /// `self` falling inside the box, or `None` if empty.
    ///
    /// The returned section's elements are a subset of `self`'s; use
    /// [`Self::position_of`] to recover their positions in `self`.
    pub fn intersect_box(&self, bounds: &[(usize, usize)]) -> Option<RegularSection> {
        assert_eq!(bounds.len(), self.ndim());
        let mut dims = Vec::with_capacity(self.ndim());
        for (d, &(blo, bhi)) in bounds.iter().enumerate() {
            let s = &self.dims[d];
            // First section index >= blo:
            let lo = if s.lo >= blo {
                s.lo
            } else {
                let k = (blo - s.lo).div_ceil(s.stride);
                s.lo + k * s.stride
            };
            let hi = s.hi.min(bhi);
            if lo >= hi {
                return None;
            }
            dims.push(DimSlice::strided(lo, hi, s.stride));
        }
        Some(RegularSection::new(dims))
    }

    /// Iterate the global coordinates of all elements, in linearization
    /// order, without per-element allocation.
    pub fn iter_coords(&self) -> CoordIter<'_> {
        CoordIter {
            sec: self,
            next: 0,
            total: self.len(),
            buf: vec![0; self.ndim()],
        }
    }
}

impl Region for RegularSection {
    fn len(&self) -> usize {
        self.dims.iter().map(|d| d.count()).product()
    }
}

impl Wire for RegularSection {
    fn write(&self, out: &mut Vec<u8>) {
        self.dims.write(out);
    }
    fn read(r: &mut WireReader<'_>) -> Result<Self, SimError> {
        let dims = Vec::<DimSlice>::read(r)?;
        if dims.is_empty() {
            return Err(SimError::Decode("regular section with no dims".into()));
        }
        Ok(RegularSection { dims })
    }
}

/// Iterator over a section's global coordinates in linearization order.
#[derive(Debug)]
pub struct CoordIter<'a> {
    sec: &'a RegularSection,
    next: usize,
    total: usize,
    buf: Vec<usize>,
}

impl CoordIter<'_> {
    /// Advance and expose the next coordinates (lending-iterator style:
    /// the slice is only valid until the next call).
    pub fn advance(&mut self) -> Option<&[usize]> {
        if self.next >= self.total {
            return None;
        }
        self.sec.coords_into(self.next, &mut self.buf);
        self.next += 1;
        Some(&self.buf)
    }
}

/// An explicit ordered list of global (flattened) indices — the Chaos
/// Region type.  Linearization is list order; duplicates are allowed by
/// construction but rejected when used as a *destination* (an element
/// cannot receive twice).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSet {
    indices: Vec<usize>,
}

impl IndexSet {
    /// Build from a list of global indices (kept in the given order).
    pub fn new(indices: Vec<usize>) -> Self {
        IndexSet { indices }
    }

    /// The indices in linearization order.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// The `k`-th global index.
    #[inline]
    pub fn index(&self, k: usize) -> usize {
        self.indices[k]
    }
}

impl Region for IndexSet {
    fn len(&self) -> usize {
        self.indices.len()
    }
}

impl Wire for IndexSet {
    fn write(&self, out: &mut Vec<u8>) {
        self.indices.write(out);
    }
    fn read(r: &mut WireReader<'_>) -> Result<Self, SimError> {
        Ok(IndexSet {
            indices: Vec::<usize>::read(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimslice_count_and_index() {
        let s = DimSlice::strided(2, 11, 3); // 2, 5, 8
        assert_eq!(s.count(), 3);
        assert_eq!(s.index(0), 2);
        assert_eq!(s.index(2), 8);
        assert_eq!(s.position_of(5), Some(1));
        assert_eq!(s.position_of(6), None);
        assert_eq!(s.position_of(11), None);
        assert_eq!(DimSlice::new(4, 4).count(), 0);
    }

    #[test]
    fn dimslice_inclusive_triplet_equivalent() {
        // Fortran a(2:10:3) = indices 2,5,8 -> half-open strided(2, 11, 3).
        let s = DimSlice::strided(2, 11, 3);
        let idxs: Vec<usize> = (0..s.count()).map(|k| s.index(k)).collect();
        assert_eq!(idxs, vec![2, 5, 8]);
    }

    #[test]
    fn section_len_and_coords_roundtrip() {
        let sec = RegularSection::new(vec![
            DimSlice::strided(1, 8, 2), // 1,3,5,7
            DimSlice::new(10, 13),      // 10,11,12
        ]);
        assert_eq!(sec.len(), 12);
        for k in 0..sec.len() {
            let c = sec.coords_of(k);
            assert_eq!(sec.position_of(&c), Some(k));
        }
        // Row-major: last dim fastest.
        assert_eq!(sec.coords_of(0), vec![1, 10]);
        assert_eq!(sec.coords_of(1), vec![1, 11]);
        assert_eq!(sec.coords_of(3), vec![3, 10]);
    }

    #[test]
    fn section_position_of_rejects_outside() {
        let sec = RegularSection::of_bounds(&[(2, 5), (0, 4)]);
        assert_eq!(sec.position_of(&[1, 0]), None);
        assert_eq!(sec.position_of(&[2, 4]), None);
        assert_eq!(sec.position_of(&[4, 3]), Some(2 * 4 + 3));
    }

    #[test]
    fn intersect_box_strided() {
        let sec = RegularSection::new(vec![DimSlice::strided(1, 20, 3)]); // 1,4,7,10,13,16,19
        let sub = sec.intersect_box(&[(5, 15)]).unwrap(); // 7,10,13
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.coords_of(0), vec![7]);
        assert_eq!(sub.coords_of(2), vec![13]);
        assert!(sec.intersect_box(&[(2, 4)]).is_none()); // gap between 1 and 4
    }

    #[test]
    fn intersect_box_2d_matches_filter() {
        let sec = RegularSection::new(vec![
            DimSlice::strided(0, 10, 2),
            DimSlice::strided(1, 9, 3),
        ]);
        let bounds = [(3, 9), (2, 8)];
        let sub = sec.intersect_box(&bounds);
        let expect: Vec<Vec<usize>> = (0..sec.len())
            .map(|k| sec.coords_of(k))
            .filter(|c| c[0] >= 3 && c[0] < 9 && c[1] >= 2 && c[1] < 8)
            .collect();
        match sub {
            None => assert!(expect.is_empty()),
            Some(s) => {
                let got: Vec<Vec<usize>> = (0..s.len()).map(|k| s.coords_of(k)).collect();
                assert_eq!(got, expect);
            }
        }
    }

    #[test]
    fn iter_coords_matches_coords_of() {
        let sec = RegularSection::of_bounds(&[(0, 3), (5, 7)]);
        let mut it = sec.iter_coords();
        let mut k = 0;
        while let Some(c) = it.advance() {
            assert_eq!(c, sec.coords_of(k).as_slice());
            k += 1;
        }
        assert_eq!(k, sec.len());
    }

    #[test]
    fn index_set_basics() {
        let s = IndexSet::new(vec![9, 3, 7]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.index(1), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn regions_wire_roundtrip() {
        let sec = RegularSection::new(vec![DimSlice::strided(1, 8, 2), DimSlice::new(0, 5)]);
        let b = sec.to_bytes();
        assert_eq!(RegularSection::from_bytes(&b).unwrap(), sec);
        let is = IndexSet::new(vec![5, 1, 1000]);
        let b = is.to_bytes();
        assert_eq!(IndexSet::from_bytes(&b).unwrap(), is);
    }

    #[test]
    fn zero_stride_decode_rejected() {
        let mut b = Vec::new();
        1usize.write(&mut b);
        2usize.write(&mut b);
        0usize.write(&mut b);
        assert!(DimSlice::from_bytes(&b).is_err());
    }
}
