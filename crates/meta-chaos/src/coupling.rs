//! Named-port coupling of data-parallel programs.
//!
//! The paper's conclusion sketches coupling data-parallel programs to
//! object systems (CORBA) with Meta-Chaos as the transport; its companion
//! work (Ranganathan et al., ICS'96) couples time-stepped data-parallel
//! programs.  This module provides the minimal mechanism both need: a
//! registry of *named ports*, each holding a reusable [`Schedule`], so a
//! program can `put("boundary", …)` / `get("boundary", …)` without
//! re-specifying regions every time — the "Unix pipe" analogy of §5.4.

use std::collections::HashMap;

use mcsim::prelude::Endpoint;
use mcsim::wire::Wire;

use crate::adapter::McObject;
use crate::datamove::{data_move_recv, data_move_send};
use crate::error::McError;
use crate::schedule::Schedule;

/// A registry of named, reusable transfer schedules.
#[derive(Debug, Default)]
pub struct Coupler {
    ports: HashMap<String, Schedule>,
}

impl Coupler {
    /// An empty registry.
    pub fn new() -> Self {
        Coupler::default()
    }

    /// Register `sched` under `name`, returning the schedule it displaced
    /// (if the port was already bound).  Use [`Coupler::try_bind`] to treat
    /// rebinding as an error instead.
    pub fn bind(&mut self, name: impl Into<String>, sched: Schedule) -> Option<Schedule> {
        self.ports.insert(name.into(), sched)
    }

    /// Register `sched` under `name` only if the port is free; an occupied
    /// port reports [`McError::PortAlreadyBound`] and keeps its binding.
    pub fn try_bind(&mut self, name: impl Into<String>, sched: Schedule) -> Result<(), McError> {
        let name = name.into();
        match self.ports.entry(name.clone()) {
            std::collections::hash_map::Entry::Occupied(_) => {
                Err(McError::PortAlreadyBound { port: name })
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(sched);
                Ok(())
            }
        }
    }

    /// Remove a binding, returning its schedule (`None` if the port was
    /// not bound — unbinding is idempotent).
    pub fn unbind(&mut self, name: &str) -> Option<Schedule> {
        self.ports.remove(name)
    }

    /// Look up a port.
    pub fn port(&self, name: &str) -> Option<&Schedule> {
        self.ports.get(name)
    }

    /// Names of all bound ports, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.ports.keys().map(|s| s.as_str()).collect();
        v.sort_unstable();
        v
    }

    /// Send this program's half of port `name` from `src`.
    ///
    /// Returns [`McError::UnboundPort`] (without communicating) if the
    /// port was never bound, and the transport outcomes of
    /// [`data_move_send`] otherwise.
    pub fn put<T, S>(&self, ep: &mut Endpoint, name: &str, src: &S) -> Result<(), McError>
    where
        T: Copy + Wire,
        S: McObject<T>,
    {
        let Some(sched) = self.ports.get(name) else {
            return Err(McError::UnboundPort {
                port: name.to_string(),
            });
        };
        ep.mark(|| format!("coupler op=put port={name} seq={}", sched.seq()));
        data_move_send(ep, sched, src)
    }

    /// Receive this program's half of port `name` into `dst`.
    ///
    /// Returns [`McError::UnboundPort`] (without communicating) if the
    /// port was never bound, and the transport outcomes of
    /// [`data_move_recv`] otherwise.
    pub fn get<T, D>(&self, ep: &mut Endpoint, name: &str, dst: &mut D) -> Result<(), McError>
    where
        T: Copy + Wire,
        D: McObject<T>,
    {
        let Some(sched) = self.ports.get(name) else {
            return Err(McError::UnboundPort {
                port: name.to_string(),
            });
        };
        ep.mark(|| format!("coupler op=get port={name} seq={}", sched.seq()));
        data_move_recv(ep, sched, dst)
    }

    /// Send in the *reverse* direction of port `name` (uses the schedule's
    /// symmetry, §4.3).  Unbound ports report [`McError::UnboundPort`].
    pub fn put_reverse<T, S>(&self, ep: &mut Endpoint, name: &str, src: &S) -> Result<(), McError>
    where
        T: Copy + Wire,
        S: McObject<T>,
    {
        let Some(sched) = self.ports.get(name) else {
            return Err(McError::UnboundPort {
                port: name.to_string(),
            });
        };
        ep.mark(|| format!("coupler op=put_reverse port={name} seq={}", sched.seq()));
        data_move_send(ep, &sched.reversed(), src)
    }

    /// Receive in the *reverse* direction of port `name`.  Unbound ports
    /// report [`McError::UnboundPort`].
    pub fn get_reverse<T, D>(
        &self,
        ep: &mut Endpoint,
        name: &str,
        dst: &mut D,
    ) -> Result<(), McError>
    where
        T: Copy + Wire,
        D: McObject<T>,
    {
        let Some(sched) = self.ports.get(name) else {
            return Err(McError::UnboundPort {
                port: name.to_string(),
            });
        };
        ep.mark(|| format!("coupler op=get_reverse port={name} seq={}", sched.seq()));
        data_move_recv(ep, &sched.reversed(), dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim::group::Group;

    #[test]
    fn bind_and_lookup() {
        let mut c = Coupler::new();
        assert!(c.port("x").is_none());
        let sched = Schedule::new(Group::world(2), 0, vec![], vec![], vec![], 0);
        assert!(c.bind("x", sched.clone()).is_none());
        assert!(c.bind("a", sched).is_none());
        assert!(c.port("x").is_some());
        assert_eq!(c.names(), vec!["a", "x"]);
    }

    #[test]
    fn rebind_returns_displaced_schedule() {
        let mut c = Coupler::new();
        let s1 = Schedule::new(Group::world(2), 1, vec![], vec![], vec![], 0);
        let s2 = Schedule::new(Group::world(2), 2, vec![], vec![], vec![], 0);
        assert!(c.bind("p", s1.clone()).is_none());
        let displaced = c.bind("p", s2.clone()).expect("rebind displaces");
        assert_eq!(displaced.seq(), 1);
        assert_eq!(c.port("p").unwrap().seq(), 2);
    }

    #[test]
    fn try_bind_refuses_occupied_port() {
        let mut c = Coupler::new();
        let s1 = Schedule::new(Group::world(2), 1, vec![], vec![], vec![], 0);
        let s2 = Schedule::new(Group::world(2), 2, vec![], vec![], vec![], 0);
        c.try_bind("p", s1).unwrap();
        match c.try_bind("p", s2) {
            Err(McError::PortAlreadyBound { port }) => assert_eq!(port, "p"),
            other => panic!("expected PortAlreadyBound, got {other:?}"),
        }
        // The original binding is untouched.
        assert_eq!(c.port("p").unwrap().seq(), 1);
    }

    #[test]
    fn unbind_is_idempotent_and_returns_schedule() {
        let mut c = Coupler::new();
        let s = Schedule::new(Group::world(2), 5, vec![], vec![], vec![], 0);
        c.bind("p", s);
        let taken = c.unbind("p").expect("was bound");
        assert_eq!(taken.seq(), 5);
        assert!(c.unbind("p").is_none());
        assert!(c.port("p").is_none());
        // A freed port can be try_bound again.
        c.try_bind("p", taken).unwrap();
        assert!(c.port("p").is_some());
    }
}
