//! Run-length descriptions of dereferenced elements (the run-based
//! inspector's working currency).
//!
//! The element-wise inspector reasons about one `(position, address)` pair
//! per element; for regular array sections that is pure overhead, because a
//! section row is a closed-form arithmetic progression.  An [`OwnedRun`]
//! captures such a progression — `len` consecutive linearization positions
//! starting at `pos`, whose local addresses start at `addr` and advance by
//! `stride` — so a million-element section collapses to a handful of runs
//! and schedule construction becomes O(regions), not O(elements).
//!
//! Irregular (Chaos-style) data degrades gracefully: the coalescing
//! [`RunBuilder`] emits length-1 runs whenever nothing merges, and the
//! run-based builders then do exactly the per-element work the old
//! inspector did.
//!
//! Only **stride-1** runs map onto the executor's contiguous
//! [`AddrRuns`](crate::schedule::AddrRuns) compression; other strides are
//! expanded element-wise at emission ([`OwnedRun::emit_addrs`]), which
//! keeps run-built schedules byte-identical to element-built ones.

use crate::schedule::AddrRuns;
use crate::LocalAddr;

/// `len` consecutive linearization positions owned by the calling rank,
/// with local addresses in arithmetic progression.
///
/// Position `pos + k` (for `k < len`) lives at local address
/// `addr + k * stride`.  A length-1 run's `stride` carries no information
/// (builders normalize it to 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OwnedRun {
    /// First linearization position covered.
    pub pos: usize,
    /// Number of consecutive positions covered (>= 1).
    pub len: usize,
    /// Local address of the element at `pos`.
    pub addr: LocalAddr,
    /// Signed address step between consecutive positions.
    pub stride: isize,
}

impl OwnedRun {
    /// One past the last position covered.
    #[inline]
    pub fn end(&self) -> usize {
        self.pos + self.len
    }

    /// Local address of the `k`-th covered element.
    #[inline]
    pub fn addr_at(&self, k: usize) -> LocalAddr {
        debug_assert!(k < self.len);
        (self.addr as isize + self.stride * k as isize) as LocalAddr
    }

    /// Append the addresses of covered elements `k0 .. k0 + count` to an
    /// executor address list: one `(start, len)` run for stride 1, one
    /// address per element otherwise (matching what the element-wise
    /// inspector would have pushed).
    pub fn emit_addrs(&self, k0: usize, count: usize, out: &mut AddrRuns) {
        debug_assert!(k0 + count <= self.len);
        if self.stride == 1 {
            out.push_run(self.addr_at(k0), count);
        } else {
            for k in k0..k0 + count {
                out.push(self.addr_at(k));
            }
        }
    }
}

/// An [`OwnedRun`] plus the owning rank — what a descriptor's
/// [`locate_run`](crate::adapter::McDescriptor::locate_run) answers during
/// the duplication build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocatedRun {
    /// First linearization position covered.
    pub pos: usize,
    /// Number of consecutive positions covered (>= 1).
    pub len: usize,
    /// Owning global rank (as in [`Location`](crate::adapter::Location)).
    pub rank: usize,
    /// Local address of the element at `pos` on the owner.
    pub addr: LocalAddr,
    /// Signed address step between consecutive positions.
    pub stride: isize,
}

impl LocatedRun {
    /// One past the last position covered.
    #[inline]
    pub fn end(&self) -> usize {
        self.pos + self.len
    }

    /// Local address of the `k`-th covered element.
    #[inline]
    pub fn addr_at(&self, k: usize) -> LocalAddr {
        debug_assert!(k < self.len);
        (self.addr as isize + self.stride * k as isize) as LocalAddr
    }

    /// As [`OwnedRun::emit_addrs`], over the owner's addresses.
    pub fn emit_addrs(&self, k0: usize, count: usize, out: &mut AddrRuns) {
        debug_assert!(k0 + count <= self.len);
        if self.stride == 1 {
            out.push_run(self.addr_at(k0), count);
        } else {
            for k in k0..k0 + count {
                out.push(self.addr_at(k));
            }
        }
    }

    /// Absorb `next` when it continues this run (same owner, adjacent
    /// positions, addresses in one arithmetic progression).  Returns false
    /// when nothing merged.
    pub fn try_merge(&mut self, next: &LocatedRun) -> bool {
        if next.rank != self.rank || next.pos != self.end() {
            return false;
        }
        let step = next.addr as isize - self.addr_at(self.len - 1) as isize;
        let step_ok = if self.len == 1 {
            true
        } else {
            step == self.stride
        };
        let next_ok = next.len == 1 || next.stride == step;
        if !step_ok || !next_ok {
            return false;
        }
        if self.len == 1 {
            self.stride = step;
        }
        self.len += next.len;
        true
    }
}

/// Builds maximal [`OwnedRun`]s from `(position, address)` pairs arriving
/// in ascending position order (adopting whatever address stride the data
/// exhibits — including 0 and negative steps).
#[derive(Debug, Default)]
pub struct RunBuilder {
    runs: Vec<OwnedRun>,
}

impl RunBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        RunBuilder::default()
    }

    /// Append one element, extending the last run when it continues it.
    pub fn push(&mut self, pos: usize, addr: LocalAddr) {
        if let Some(last) = self.runs.last_mut() {
            if pos == last.end() {
                let step = addr as isize - last.addr_at(last.len - 1) as isize;
                if last.len == 1 {
                    last.stride = step;
                    last.len = 2;
                    return;
                }
                if step == last.stride {
                    last.len += 1;
                    return;
                }
                // Canary for the fuzz harness (`RUSTFLAGS="--cfg
                // fuzz_canary"`): absorb the element even though its
                // address breaks the run's stride progression — a silent
                // wrong-address coalescing bug with totals intact, which
                // only the differential oracles can see.
                #[cfg(fuzz_canary)]
                {
                    last.len += 1;
                    return;
                }
            }
        }
        self.runs.push(OwnedRun {
            pos,
            len: 1,
            addr,
            stride: 1,
        });
    }

    /// Append a whole run, merging with the last when it continues it with
    /// the same stride.
    pub fn push_run(&mut self, pos: usize, len: usize, addr: LocalAddr, stride: isize) {
        if len == 0 {
            return;
        }
        if len == 1 {
            self.push(pos, addr);
            return;
        }
        if let Some(last) = self.runs.last_mut() {
            if pos == last.end() {
                let step = addr as isize - last.addr_at(last.len - 1) as isize;
                if step == stride && (last.len == 1 || last.stride == stride) {
                    last.stride = stride;
                    last.len += len;
                    return;
                }
            }
        }
        self.runs.push(OwnedRun {
            pos,
            len,
            addr,
            stride,
        });
    }

    /// The accumulated runs (sorted, disjoint when input positions were).
    pub fn finish(self) -> Vec<OwnedRun> {
        self.runs
    }
}

/// Coalesce a position-sorted `(position, address)` list into maximal runs
/// — the bridge from element-wise
/// [`deref_owned`](crate::adapter::McObject::deref_owned) to the run-based
/// inspector.
pub fn coalesce_owned(pairs: &[(usize, LocalAddr)]) -> Vec<OwnedRun> {
    let mut b = RunBuilder::new();
    for &(pos, addr) in pairs {
        b.push(pos, addr);
    }
    b.finish()
}

/// Total elements covered by a run list.
pub fn runs_total(runs: &[OwnedRun]) -> usize {
    runs.iter().map(|r| r.len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_contiguous_and_strided() {
        // addresses 10,11,12 then 20,22,24 then a singleton.
        let pairs = vec![(0, 10), (1, 11), (2, 12), (3, 20), (4, 22), (5, 24), (9, 7)];
        let runs = coalesce_owned(&pairs);
        assert_eq!(
            runs,
            vec![
                OwnedRun {
                    pos: 0,
                    len: 3,
                    addr: 10,
                    stride: 1
                },
                OwnedRun {
                    pos: 3,
                    len: 3,
                    addr: 20,
                    stride: 2
                },
                OwnedRun {
                    pos: 9,
                    len: 1,
                    addr: 7,
                    stride: 1
                },
            ]
        );
        assert_eq!(runs_total(&runs), 7);
        // Round trip: expanding reproduces the input exactly.
        let mut expanded = Vec::new();
        for r in &runs {
            for k in 0..r.len {
                expanded.push((r.pos + k, r.addr_at(k)));
            }
        }
        assert_eq!(expanded, pairs);
    }

    #[test]
    fn coalesce_negative_and_zero_strides() {
        let runs = coalesce_owned(&[(0, 30), (1, 29), (2, 28), (3, 5), (4, 5)]);
        assert_eq!(
            runs,
            vec![
                OwnedRun {
                    pos: 0,
                    len: 3,
                    addr: 30,
                    stride: -1
                },
                OwnedRun {
                    pos: 3,
                    len: 2,
                    addr: 5,
                    stride: 0
                },
            ]
        );
        assert_eq!(runs[0].addr_at(2), 28);
        assert_eq!(runs[1].addr_at(1), 5);
    }

    #[test]
    fn position_gaps_break_runs() {
        let runs = coalesce_owned(&[(0, 0), (2, 1)]);
        assert_eq!(runs.len(), 2);
    }

    #[test]
    fn push_run_merges_when_continuing() {
        let mut b = RunBuilder::new();
        b.push_run(0, 4, 100, 1);
        b.push_run(4, 4, 104, 1); // continues
        b.push_run(8, 2, 300, 1); // address gap
        b.push_run(10, 3, 302, 1); // continues
        b.push_run(13, 0, 999, 1); // empty: ignored
        let runs = b.finish();
        assert_eq!(
            runs,
            vec![
                OwnedRun {
                    pos: 0,
                    len: 8,
                    addr: 100,
                    stride: 1
                },
                OwnedRun {
                    pos: 8,
                    len: 5,
                    addr: 300,
                    stride: 1
                },
            ]
        );
    }

    #[test]
    fn push_run_after_singleton_adopts_stride() {
        let mut b = RunBuilder::new();
        b.push(0, 10);
        b.push_run(1, 3, 13, 3);
        assert_eq!(
            b.finish(),
            vec![OwnedRun {
                pos: 0,
                len: 4,
                addr: 10,
                stride: 3
            }]
        );
    }

    #[test]
    fn emit_addrs_stride1_vs_other() {
        let r = OwnedRun {
            pos: 5,
            len: 6,
            addr: 40,
            stride: 1,
        };
        let mut out = AddrRuns::new();
        r.emit_addrs(1, 4, &mut out); // addrs 41..45
        assert_eq!(out.runs(), &[(41, 4)]);

        let r = OwnedRun {
            pos: 0,
            len: 4,
            addr: 9,
            stride: -3,
        };
        let mut out = AddrRuns::new();
        r.emit_addrs(0, 4, &mut out); // 9, 6, 3, 0
        assert_eq!(out.to_vec(), vec![9, 6, 3, 0]);
    }

    #[test]
    fn located_run_merge() {
        let mut a = LocatedRun {
            pos: 0,
            len: 1,
            rank: 2,
            addr: 10,
            stride: 1,
        };
        assert!(a.try_merge(&LocatedRun {
            pos: 1,
            len: 1,
            rank: 2,
            addr: 12,
            stride: 1
        }));
        assert_eq!((a.len, a.stride), (2, 2));
        assert!(a.try_merge(&LocatedRun {
            pos: 2,
            len: 2,
            rank: 2,
            addr: 14,
            stride: 2
        }));
        assert_eq!(a.len, 4);
        // Different owner: no merge.
        assert!(!a.try_merge(&LocatedRun {
            pos: 4,
            len: 1,
            rank: 3,
            addr: 16,
            stride: 1
        }));
        // Position gap: no merge.
        assert!(!a.try_merge(&LocatedRun {
            pos: 9,
            len: 1,
            rank: 2,
            addr: 16,
            stride: 1
        }));
        // Wrong step: no merge.
        assert!(!a.try_merge(&LocatedRun {
            pos: 4,
            len: 1,
            rank: 2,
            addr: 99,
            stride: 1
        }));
    }
}
