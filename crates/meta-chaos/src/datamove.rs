//! Executing a schedule (paper §4.1.4).
//!
//! The source packs its elements, in linearization order, into one
//! contiguous buffer per destination rank and sends exactly one message per
//! pair; the destination unpacks each buffer into the addresses its half of
//! the schedule lists.  Same-rank pairs are copied directly with no
//! intermediate buffer.
//!
//! [`data_move`] serves single-program transfers; across two programs the
//! source program calls [`data_move_send`] and the destination calls
//! [`data_move_recv`] (the paper's `MC_DataMoveSend` / `MC_DataMoveRecv`).
//! Copying in the opposite direction needs no new schedule: pass
//! [`Schedule::reversed`] and swap the roles.

use mcsim::group::Comm;
use mcsim::prelude::Endpoint;
use mcsim::wire::Wire;

use crate::adapter::McObject;
use crate::schedule::Schedule;

/// User-tag bit layout for data-move traffic: schedule seq in the high
/// bits, leaving the low bits to keep streams of distinct schedules apart.
fn move_tag(seq: u32) -> u32 {
    0x4000_0000 | seq
}

/// Move data for a schedule where this rank participates on both sides
/// (single-program transfer).  Reusable any number of times.
pub fn data_move<T, S, D>(ep: &mut Endpoint, sched: &Schedule, src: &S, dst: &mut D)
where
    T: Copy + Wire,
    S: McObject<T>,
    D: McObject<T>,
{
    // Post all sends first (buffered channels make this deadlock-free),
    // then do local copies, then drain receives.
    send_half(ep, sched, src);
    local_copies(ep, sched, src, dst);
    recv_half(ep, sched, dst);
}

/// Source-program half of a two-program transfer.
pub fn data_move_send<T, S>(ep: &mut Endpoint, sched: &Schedule, src: &S)
where
    T: Copy + Wire,
    S: McObject<T>,
{
    assert!(
        sched.local_pairs.is_empty(),
        "cross-program schedules cannot have local pairs"
    );
    assert!(
        sched.recvs.is_empty(),
        "this rank's schedule has receives; use data_move or data_move_recv"
    );
    send_half(ep, sched, src);
}

/// Destination-program half of a two-program transfer.
pub fn data_move_recv<T, D>(ep: &mut Endpoint, sched: &Schedule, dst: &mut D)
where
    T: Copy + Wire,
    D: McObject<T>,
{
    assert!(
        sched.local_pairs.is_empty(),
        "cross-program schedules cannot have local pairs"
    );
    assert!(
        sched.sends.is_empty(),
        "this rank's schedule has sends; use data_move or data_move_send"
    );
    recv_half(ep, sched, dst);
}

fn send_half<T, S>(ep: &mut Endpoint, sched: &Schedule, src: &S)
where
    T: Copy + Wire,
    S: McObject<T>,
{
    let t = move_tag(sched.seq());
    let mut buf: Vec<T> = Vec::new();
    for (peer, addrs) in &sched.sends {
        buf.clear();
        buf.reserve(addrs.len());
        src.pack(ep, addrs, &mut buf);
        let mut comm = Comm::new(ep, sched.group().clone());
        comm.send_t(*peer, t, &buf);
    }
}

fn recv_half<T, D>(ep: &mut Endpoint, sched: &Schedule, dst: &mut D)
where
    T: Copy + Wire,
    D: McObject<T>,
{
    let t = move_tag(sched.seq());
    for (peer, addrs) in &sched.recvs {
        let data: Vec<T> = {
            let mut comm = Comm::new(ep, sched.group().clone());
            comm.recv_t(*peer, t)
        };
        assert_eq!(
            data.len(),
            addrs.len(),
            "message from peer {peer} has wrong element count"
        );
        dst.unpack(ep, addrs, &data);
    }
}

fn local_copies<T, S, D>(ep: &mut Endpoint, sched: &Schedule, src: &S, dst: &mut D)
where
    T: Copy + Wire,
    S: McObject<T>,
    D: McObject<T>,
{
    if sched.local_pairs.is_empty() {
        return;
    }
    let (saddrs, daddrs): (Vec<_>, Vec<_>) = sched.local_pairs.iter().copied().unzip();
    let mut buf: Vec<T> = Vec::with_capacity(saddrs.len());
    src.pack(ep, &saddrs, &mut buf);
    dst.unpack(ep, &daddrs, &buf);
    // Direct copy: no extra staging charge beyond pack + unpack — this is
    // the local-copy advantage over Parti's intermediate buffer (§5.3).
}
