//! Executing a schedule (paper §4.1.4).
//!
//! The source packs its elements, in linearization order, into one
//! contiguous buffer per destination rank and sends exactly one message per
//! pair; the destination unpacks each buffer into the addresses its half of
//! the schedule lists.  Same-rank pairs are copied directly with no
//! intermediate buffer.
//!
//! The executor rides the schedule's run-length compression end to end:
//! packing and unpacking go through [`McObject::pack_runs`] /
//! [`McObject::unpack_runs`] (slice copies for regular libraries), the wire
//! codec bulk-encodes scalar payloads, the communicator binds the
//! schedule's group by reference once per half instead of cloning it per
//! peer, and wire buffers come from the endpoint's reuse pool — so a
//! steady-state `data_move` loop does no per-element codec work and no
//! fresh heap allocation.  [`data_move_elementwise`] keeps the
//! pre-compression executor alive for apples-to-apples benchmarking (same
//! messages, per-element paths).
//!
//! [`data_move`] serves single-program transfers; across two programs the
//! source program calls [`data_move_send`] and the destination calls
//! [`data_move_recv`] (the paper's `MC_DataMoveSend` / `MC_DataMoveRecv`).
//! Copying in the opposite direction needs no new schedule: pass
//! [`Schedule::reversed`] and swap the roles.
//!
//! ## Raw vs. reliable
//!
//! Same-program [`data_move`] runs **raw**: the schedule-parity guarantee
//! (§4.1.4 — exactly the hand-coded number and sizes of messages) holds
//! bit-for-bit.  The cross-program halves run over the **reliable**
//! transport (`mcsim::reliable`): checksummed, sequence-numbered frames
//! with ack/retransmit, so a coupled transfer survives a lossy
//! [`mcsim::FaultPlan`] and surfaces peer crash or permanent partition as
//! [`McError::PeerFailed`] / [`McError::PeerTimeout`] instead of hanging.

use mcsim::group::Comm;
use mcsim::prelude::Endpoint;
use mcsim::reliable::{self, StreamTag};
use mcsim::wire::{Wire, WireReader};

use crate::adapter::McObject;
use crate::error::McError;
use crate::schedule::Schedule;

/// User-tag bit layout for data-move traffic: schedule seq in the high
/// bits, leaving the low bits to keep streams of distinct schedules apart.
fn move_tag(seq: u32) -> u32 {
    0x4000_0000 | seq
}

/// Move data for a schedule where this rank participates on both sides
/// (single-program transfer).  Reusable any number of times.
pub fn data_move<T, S, D>(ep: &mut Endpoint, sched: &Schedule, src: &S, dst: &mut D)
where
    T: Copy + Wire,
    S: McObject<T>,
    D: McObject<T>,
{
    // Post all sends first (buffered channels make this deadlock-free),
    // then do local copies, then drain receives.
    send_half(ep, sched, src);
    local_copies(ep, sched, src, dst);
    recv_half(ep, sched, dst);
}

/// Source-program half of a two-program transfer, over the reliable
/// transport.
///
/// Fails (without communicating) when the schedule evidently belongs to a
/// different call: cross-program schedules never contain local pairs, and
/// a rank that also receives must use [`data_move`] or be on the
/// [`data_move_recv`] side.  Under an active fault plan the frames are
/// retransmitted as needed; [`McError::PeerTimeout`] means the retry
/// budget ran out (permanent partition) and [`McError::PeerFailed`] means
/// the peer crashed.
pub fn data_move_send<T, S>(ep: &mut Endpoint, sched: &Schedule, src: &S) -> Result<(), McError>
where
    T: Copy + Wire,
    S: McObject<T>,
{
    if !sched.local_pairs.is_empty() {
        return Err(McError::LocalPairsInCrossProgramMove {
            pairs: sched.local_pairs.len(),
        });
    }
    if !sched.recvs.is_empty() {
        return Err(McError::SendSideHasReceives {
            peers: sched.msgs_in(),
        });
    }
    send_half_reliable(ep, sched, src)
}

/// Destination-program half of a two-program transfer, over the reliable
/// transport.  Misuse reporting mirrors [`data_move_send`]; transport
/// outcomes do too.
pub fn data_move_recv<T, D>(ep: &mut Endpoint, sched: &Schedule, dst: &mut D) -> Result<(), McError>
where
    T: Copy + Wire,
    D: McObject<T>,
{
    if !sched.local_pairs.is_empty() {
        return Err(McError::LocalPairsInCrossProgramMove {
            pairs: sched.local_pairs.len(),
        });
    }
    if !sched.sends.is_empty() {
        return Err(McError::RecvSideHasSends {
            peers: sched.msgs_out(),
        });
    }
    recv_half_reliable(ep, sched, dst)
}

fn send_half<T, S>(ep: &mut Endpoint, sched: &Schedule, src: &S)
where
    T: Copy + Wire,
    S: McObject<T>,
{
    if sched.sends.is_empty() {
        return;
    }
    let t = move_tag(sched.seq());
    let mut comm = Comm::borrowed(ep, sched.group());
    for (peer, runs) in &sched.sends {
        // Encode the `Vec<T>` wire layout directly: count header, then the
        // source elements packed straight into a pooled wire buffer — one
        // copy, no intermediate typed buffer.
        let mut buf = comm.ep().take_buf();
        runs.len().write(&mut buf);
        src.pack_runs_wire(comm.ep(), runs, &mut buf);
        comm.send(*peer, t, buf);
    }
}

/// The reliable stream a schedule's cross-program traffic runs on: same
/// context as the raw path, stream id = schedule seq (the tag class moves
/// from `0x4` to the reliable pair `0x5`/`0x6`).
fn move_stream(sched: &Schedule) -> StreamTag {
    StreamTag::new(sched.group().context(), sched.seq())
}

/// Reliable counterpart of [`send_half`]: pack and post one frame per
/// destination peer first, then wait for every peer's acknowledgement —
/// posting everything before flushing anything avoids cross-pair ordering
/// stalls when several pairs exchange simultaneously.
fn send_half_reliable<T, S>(ep: &mut Endpoint, sched: &Schedule, src: &S) -> Result<(), McError>
where
    T: Copy + Wire,
    S: McObject<T>,
{
    if sched.sends.is_empty() {
        return Ok(());
    }
    let st = move_stream(sched);
    let group = sched.group();
    for (peer, runs) in &sched.sends {
        let mut buf = ep.take_buf();
        runs.len().write(&mut buf);
        src.pack_runs_wire(ep, runs, &mut buf);
        reliable::reliable_send(ep, group.global(*peer), st, buf)?;
    }
    for (peer, _) in &sched.sends {
        reliable::flush_send(ep, group.global(*peer), st)?;
    }
    Ok(())
}

/// Reliable counterpart of [`recv_half`]: frames arrive verified, deduped
/// and in order; decode failures still surface as [`McError::Transport`]
/// rather than panicking.
fn recv_half_reliable<T, D>(ep: &mut Endpoint, sched: &Schedule, dst: &mut D) -> Result<(), McError>
where
    T: Copy + Wire,
    D: McObject<T>,
{
    if sched.recvs.is_empty() {
        return Ok(());
    }
    let st = move_stream(sched);
    let group = sched.group();
    for (peer, runs) in &sched.recvs {
        let bytes = reliable::reliable_recv(ep, group.global(*peer), st)?;
        let mut r = WireReader::new(&bytes);
        let count = usize::read(&mut r)
            .map_err(|e| McError::Transport(format!("frame from peer {peer} has no element count: {e}")))?;
        if count != runs.len() {
            return Err(McError::Transport(format!(
                "frame from peer {peer} carries {count} elements, schedule expects {}",
                runs.len()
            )));
        }
        dst.unpack_runs_wire(ep, runs, &mut r)
            .map_err(|e| McError::Transport(format!("frame from peer {peer} failed to decode: {e}")))?;
        ep.recycle_buf(bytes);
    }
    Ok(())
}

fn recv_half<T, D>(ep: &mut Endpoint, sched: &Schedule, dst: &mut D)
where
    T: Copy + Wire,
    D: McObject<T>,
{
    if sched.recvs.is_empty() {
        return;
    }
    let t = move_tag(sched.seq());
    let mut comm = Comm::borrowed(ep, sched.group());
    for (peer, runs) in &sched.recvs {
        let bytes = comm.recv(*peer, t);
        let mut r = WireReader::new(&bytes);
        let count = usize::read(&mut r)
            .unwrap_or_else(|e| panic!("message from peer {peer} has no element count: {e}"));
        assert_eq!(
            count,
            runs.len(),
            "message from peer {peer} has wrong element count"
        );
        // Unpack wire bytes straight into library storage, then recycle
        // the buffer so steady-state loops allocate nothing.
        dst.unpack_runs_wire(comm.ep(), runs, &mut r)
            .unwrap_or_else(|e| panic!("message from peer {peer} failed to decode: {e}"));
        comm.ep().recycle_buf(bytes);
    }
}

fn local_copies<T, S, D>(ep: &mut Endpoint, sched: &Schedule, src: &S, dst: &mut D)
where
    T: Copy + Wire,
    S: McObject<T>,
    D: McObject<T>,
{
    if sched.local_pairs.is_empty() {
        return;
    }
    let (saddrs, daddrs) = sched.local_pairs.split_sides();
    let mut buf: Vec<T> = Vec::with_capacity(saddrs.len());
    src.pack_runs(ep, &saddrs, &mut buf);
    dst.unpack_runs(ep, &daddrs, &buf);
    // Direct copy: no extra staging charge beyond pack + unpack — this is
    // the local-copy advantage over Parti's intermediate buffer (§5.3).
}

/// Ablation baseline: the pre-optimization executor, kept for measuring
/// the run-compressed fast path against.  Produces byte-identical messages
/// and identical results, but expands every run back to explicit address
/// lists, packs element by element, and clones the communicator group per
/// peer.  Benchmarks only — not part of the Meta-Chaos API surface.
pub fn data_move_elementwise<T, S, D>(ep: &mut Endpoint, sched: &Schedule, src: &S, dst: &mut D)
where
    T: Copy + Wire,
    S: McObject<T>,
    D: McObject<T>,
{
    let t = move_tag(sched.seq());
    for (peer, runs) in &sched.sends {
        let addrs = runs.to_vec();
        let mut buf: Vec<T> = Vec::with_capacity(addrs.len());
        src.pack(ep, &addrs, &mut buf);
        let mut comm = Comm::new(ep, sched.group().clone());
        comm.send_t(*peer, t, &buf);
    }
    if !sched.local_pairs.is_empty() {
        let (saddrs, daddrs): (Vec<_>, Vec<_>) = sched.local_pairs.iter().unzip();
        let mut buf: Vec<T> = Vec::with_capacity(saddrs.len());
        src.pack(ep, &saddrs, &mut buf);
        dst.unpack(ep, &daddrs, &buf);
    }
    for (peer, runs) in &sched.recvs {
        let addrs = runs.to_vec();
        let data: Vec<T> = {
            let mut comm = Comm::new(ep, sched.group().clone());
            comm.recv_t(*peer, t)
        };
        assert_eq!(
            data.len(),
            addrs.len(),
            "message from peer {peer} has wrong element count"
        );
        dst.unpack(ep, &addrs, &data);
    }
}
