//! Executing a schedule (paper §4.1.4).
//!
//! The source packs its elements, in linearization order, into one
//! contiguous buffer per destination rank and sends exactly one message per
//! pair; the destination unpacks each buffer into the addresses its half of
//! the schedule lists.  Same-rank pairs are copied directly with no
//! intermediate buffer.
//!
//! The executor rides the schedule's run-length compression end to end:
//! packing and unpacking go through [`McObject::pack_runs`] /
//! [`McObject::unpack_runs`] (slice copies for regular libraries), the wire
//! codec bulk-encodes scalar payloads, the communicator binds the
//! schedule's group by reference once per half instead of cloning it per
//! peer, and wire buffers come from the endpoint's reuse pool — so a
//! steady-state `data_move` loop does no per-element codec work and no
//! fresh heap allocation.  [`data_move_elementwise`] keeps the
//! pre-compression executor alive for apples-to-apples benchmarking (same
//! messages, per-element paths).
//!
//! [`data_move`] serves single-program transfers; across two programs the
//! source program calls [`data_move_send`] and the destination calls
//! [`data_move_recv`] (the paper's `MC_DataMoveSend` / `MC_DataMoveRecv`).
//! Copying in the opposite direction needs no new schedule: pass
//! [`Schedule::reversed`] and swap the roles.
//!
//! ## Raw vs. reliable vs. transactional
//!
//! Same-program [`data_move`] runs **raw**: the schedule-parity guarantee
//! (§4.1.4 — exactly the hand-coded number and sizes of messages) holds
//! bit-for-bit.  Its fallible twin [`try_data_move`] additionally rejects
//! schedules whose objects have been redistributed since the build
//! ([`McError::StaleSchedule`]); since every rank of a single program sees
//! the same epochs, the rejection is symmetric by construction.
//!
//! The cross-program halves run over the **reliable** transport
//! (`mcsim::reliable`) and add a **session layer** on top, making every
//! coupled transfer a transaction:
//!
//! 1. **Manifest exchange** — each pair swaps a compact description of the
//!    transfer it is about to perform (schedule seq, total and per-pair
//!    element counts, element type tag and size).  Disagreement aborts both
//!    sides with [`McError::ScheduleMismatch`] before any data moves.
//! 2. **Verdict round** — each side tells every peer whether it is
//!    proceeding; an abort anywhere (mismatch, stale schedule, failed
//!    third peer) fans out, so no rank is left waiting for data that will
//!    never come.
//! 3. **Staged delivery** — the receive side collects *every* peer's data
//!    half and verifies headers and payload sizes before unpacking
//!    anything.  A peer crash or timeout mid-transfer leaves the
//!    destination bit-identical; a retried transfer is idempotent because
//!    replayed halves from an earlier attempt carry an older transfer
//!    epoch and are discarded.
//!
//! [`data_move_send_unverified`] / [`data_move_recv_unverified`] keep the
//! bare reliable halves (no manifests, streaming unpack) alive as the
//! ablation baseline the session-layer overhead is measured against.

use std::collections::HashMap;

use mcsim::group::Comm;
use mcsim::prelude::Endpoint;
use mcsim::reliable::{self, StreamTag};
use mcsim::span::Phase;
use mcsim::wire::{Wire, WireReader};

use crate::adapter::McObject;
use crate::error::McError;
use crate::obs;
use crate::schedule::{AddrRuns, Schedule};

/// User-tag bit layout for data-move traffic: schedule seq in the high
/// bits, leaving the low bits to keep streams of distinct schedules apart.
fn move_tag(seq: u32) -> u32 {
    0x4000_0000 | seq
}

/// The manifest/verdict control stream: one per context, *shared by every
/// schedule* in that context so that two sides which disagree about the
/// schedule (different seq → different data streams) still pair up for the
/// exchange that detects the disagreement.
const MANIFEST_STREAM: u32 = 0x0FFF_FFFF;

/// Frame discriminators on the control stream.
const K_MANIFEST: u8 = 1;
const K_VERDICT: u8 = 2;

/// Verdict codes.
const V_OK: u8 = 0;
const V_ABORT_MISMATCH: u8 = 1;
const V_ABORT_STALE: u8 = 2;
const V_ABORT_PEER: u8 = 3;

/// Scratch key of the per-rank transfer-epoch counters, keyed by
/// `(context << 32) | seq`.  The sender bumps the counter once per
/// transfer attempt and announces it in the manifest; the receiver
/// discards data halves carrying an older epoch (replays of an aborted
/// attempt), which is what makes a retried transfer idempotent.
const XFER_EPOCH_KEY: u32 = 0x5845_504f; // "XEPO"

/// Next transfer epoch for this schedule's data stream (starts at 1; 0 is
/// the receiver-side placeholder meaning "not a data sender").
pub(crate) fn next_xfer_epoch(ep: &mut Endpoint, sched: &Schedule) -> u64 {
    let key = ((sched.group().context() as u64) << 32) | sched.seq() as u64;
    let m: &mut HashMap<u64, u64> = ep.scratch(XFER_EPOCH_KEY);
    let e = m.entry(key).or_insert(0);
    *e += 1;
    *e
}

/// Move data for a schedule where this rank participates on both sides
/// (single-program transfer).  Reusable any number of times.
///
/// Panics if the schedule is stale (an object was redistributed after the
/// build); use [`try_data_move`] to observe that as a value.
pub fn data_move<T, S, D>(ep: &mut Endpoint, sched: &Schedule, src: &S, dst: &mut D)
where
    T: Copy + Wire,
    S: McObject<T>,
    D: McObject<T>,
{
    try_data_move(ep, sched, src, dst).unwrap_or_else(|e| panic!("data_move failed: {e}"));
}

/// Fallible single-program transfer: rejects a schedule built against an
/// older distribution of either object with [`McError::StaleSchedule`]
/// (before any communication — every rank of the program sees the same
/// epochs, so the rejection is symmetric), then runs the raw executor.
pub fn try_data_move<T, S, D>(
    ep: &mut Endpoint,
    sched: &Schedule,
    src: &S,
    dst: &mut D,
) -> Result<(), McError>
where
    T: Copy + Wire,
    S: McObject<T>,
    D: McObject<T>,
{
    let span = ep.span_begin(Phase::Transfer, || {
        format!(
            "mode=raw seq={} elems={} elem_size={}",
            sched.seq(),
            sched.total_elems,
            sched.elem_size()
        )
    });
    let r = try_data_move_inner(ep, sched, src, dst);
    if let Err(e) = &r {
        obs::record_abort(ep, e);
    }
    ep.span_end(span);
    r
}

fn try_data_move_inner<T, S, D>(
    ep: &mut Endpoint,
    sched: &Schedule,
    src: &S,
    dst: &mut D,
) -> Result<(), McError>
where
    T: Copy + Wire,
    S: McObject<T>,
    D: McObject<T>,
{
    if let Some((object_epoch, schedule_epoch)) = stale_pair(src.epoch(), sched.src_epoch())
        .or_else(|| stale_pair(dst.epoch(), sched.dst_epoch()))
    {
        ep.record_stale_schedule();
        return Err(McError::StaleSchedule {
            object_epoch,
            schedule_epoch,
        });
    }
    // Post all sends first (buffered channels make this deadlock-free),
    // then do local copies, then drain receives.
    send_half(ep, sched, src);
    local_copies(ep, sched, src, dst);
    recv_half(ep, sched, dst);
    Ok(())
}

/// `Some((object, schedule))` when the epochs disagree.
fn stale_pair(object: u64, schedule: u64) -> Option<(u64, u64)> {
    (object != schedule).then_some((object, schedule))
}

/// Source-program half of a two-program transfer: manifest exchange and
/// verdict round first (the transaction's prepare phase), then the data
/// frames over the reliable transport.
///
/// Fails (without communicating) when the schedule evidently belongs to a
/// different call: cross-program schedules never contain local pairs, and
/// a rank that also receives must use [`data_move`] or be on the
/// [`data_move_recv`] side.  Under an active fault plan the frames are
/// retransmitted as needed; [`McError::PeerTimeout`] means the retry
/// budget ran out (permanent partition) and [`McError::PeerFailed`] means
/// a peer crashed.  [`McError::ScheduleMismatch`] and
/// [`McError::StaleSchedule`] are raised symmetrically on both sides of
/// the affected pair before any data has moved.
pub fn data_move_send<T, S>(ep: &mut Endpoint, sched: &Schedule, src: &S) -> Result<(), McError>
where
    T: Copy + Wire,
    S: McObject<T>,
{
    send_side_guards(sched)?;
    if sched.sends.is_empty() {
        return Ok(());
    }
    let te = next_xfer_epoch(ep, sched);
    let span = ep.span_begin(Phase::Transfer, || {
        format!(
            "mode=send seq={} te={} pairs={} elems={} src_epoch={}",
            sched.seq(),
            te,
            sched.sends.len(),
            sched.total_elems,
            sched.src_epoch()
        )
    });
    let r = settle(
        ep,
        sched,
        &sched.sends,
        te,
        stale_pair(src.epoch(), sched.src_epoch()),
    )
    .and_then(|_| send_data_frames(ep, sched, src, te));
    if let Err(e) = &r {
        obs::record_abort(ep, e);
    }
    ep.span_end(span);
    r
}

/// Destination-program half of a two-program transfer.  Misuse reporting
/// mirrors [`data_move_send`]; transport outcomes do too.  Delivery is
/// all-or-nothing: every peer's half is staged and verified before the
/// first element is unpacked, so any error leaves `dst` untouched.
pub fn data_move_recv<T, D>(ep: &mut Endpoint, sched: &Schedule, dst: &mut D) -> Result<(), McError>
where
    T: Copy + Wire,
    D: McObject<T>,
{
    recv_side_guards(sched)?;
    if sched.recvs.is_empty() {
        return Ok(());
    }
    let span = ep.span_begin(Phase::Transfer, || {
        format!(
            "mode=recv seq={} pairs={} elems={} dst_epoch={}",
            sched.seq(),
            sched.recvs.len(),
            sched.total_elems,
            sched.dst_epoch()
        )
    });
    let r = settle(
        ep,
        sched,
        &sched.recvs,
        0,
        stale_pair(dst.epoch(), sched.dst_epoch()),
    )
    .and_then(|expected| recv_data_frames(ep, sched, dst, &expected));
    if let Err(e) = &r {
        obs::record_abort(ep, e);
    }
    ep.span_end(span);
    r
}

/// Prepare phase only: runs the manifest exchange and verdict round of
/// [`data_move_send`] and returns *without sending any data*.  A test
/// failpoint for crashing a sender between "transaction agreed" and "data
/// delivered" — the window all-or-nothing delivery exists for.  Not part
/// of the Meta-Chaos API surface.
#[doc(hidden)]
pub fn data_move_send_verify_only<T, S>(
    ep: &mut Endpoint,
    sched: &Schedule,
    src: &S,
) -> Result<(), McError>
where
    T: Copy + Wire,
    S: McObject<T>,
{
    send_side_guards(sched)?;
    if sched.sends.is_empty() {
        return Ok(());
    }
    let te = next_xfer_epoch(ep, sched);
    let r = settle(
        ep,
        sched,
        &sched.sends,
        te,
        stale_pair(src.epoch(), sched.src_epoch()),
    );
    if let Err(e) = &r {
        obs::record_abort(ep, e);
    }
    r.map(|_| ())
}

/// Ablation baseline for the session layer: the bare reliable send half of
/// PR 2 — no manifest exchange, no verdict round, no epoch guard.  Frames
/// are wire-compatible with [`data_move_recv`] (they carry the transfer
/// epoch header), so a half posted here and never consumed models a
/// replayed half from an aborted attempt.  Benchmarks and tests only.
pub fn data_move_send_unverified<T, S>(
    ep: &mut Endpoint,
    sched: &Schedule,
    src: &S,
) -> Result<(), McError>
where
    T: Copy + Wire,
    S: McObject<T>,
{
    send_side_guards(sched)?;
    if sched.sends.is_empty() {
        return Ok(());
    }
    let te = next_xfer_epoch(ep, sched);
    send_data_frames(ep, sched, src, te)
}

/// Ablation baseline for the session layer: the bare reliable receive half
/// of PR 2 — streaming unpack with no staging, accepting whatever transfer
/// epoch arrives.  Benchmarks and tests only.
pub fn data_move_recv_unverified<T, D>(
    ep: &mut Endpoint,
    sched: &Schedule,
    dst: &mut D,
) -> Result<(), McError>
where
    T: Copy + Wire,
    D: McObject<T>,
{
    recv_side_guards(sched)?;
    if sched.recvs.is_empty() {
        return Ok(());
    }
    let st = move_stream(sched);
    let group = sched.group();
    for (peer, runs) in &sched.recvs {
        let pg = group.global(*peer);
        let mut cursor = 0usize;
        loop {
            let bytes = reliable::reliable_recv(ep, pg, st)?;
            let mut r = WireReader::new(&bytes);
            let (_te, last, count) = read_part_header(&mut r, pg)?;
            if cursor + count > runs.len() {
                return Err(McError::Transport(format!(
                    "half from rank {pg} carries {} elements, schedule expects {}",
                    cursor + count,
                    runs.len()
                )));
            }
            let slice = runs.slice_elems(cursor, count);
            dst.unpack_runs_wire(ep, &slice, &mut r).map_err(|e| {
                McError::Transport(format!("frame from peer {peer} failed to decode: {e}"))
            })?;
            cursor += count;
            ep.recycle_buf(bytes);
            if last {
                if cursor != runs.len() {
                    return Err(McError::Transport(format!(
                        "half from rank {pg} carries {cursor} elements, schedule expects {}",
                        runs.len()
                    )));
                }
                break;
            }
        }
    }
    Ok(())
}

fn send_side_guards(sched: &Schedule) -> Result<(), McError> {
    if !sched.local_pairs.is_empty() {
        return Err(McError::LocalPairsInCrossProgramMove {
            pairs: sched.local_pairs.len(),
        });
    }
    if !sched.recvs.is_empty() {
        return Err(McError::SendSideHasReceives {
            peers: sched.msgs_in(),
        });
    }
    Ok(())
}

fn recv_side_guards(sched: &Schedule) -> Result<(), McError> {
    if !sched.local_pairs.is_empty() {
        return Err(McError::LocalPairsInCrossProgramMove {
            pairs: sched.local_pairs.len(),
        });
    }
    if !sched.sends.is_empty() {
        return Err(McError::RecvSideHasSends {
            peers: sched.msgs_out(),
        });
    }
    Ok(())
}

/// What one side announces to a pair peer before data moves.  Both sides
/// send one; everything except `transfer_epoch` (sender-only) must agree.
struct Manifest {
    seq: u32,
    total_elems: u64,
    elem_tag: u64,
    elem_size: u32,
    pair_elems: u64,
    transfer_epoch: u64,
}

fn write_manifest(buf: &mut Vec<u8>, m: &Manifest) {
    K_MANIFEST.write(buf);
    m.seq.write(buf);
    m.total_elems.write(buf);
    m.elem_tag.write(buf);
    m.elem_size.write(buf);
    m.pair_elems.write(buf);
    m.transfer_epoch.write(buf);
}

fn parse_manifest(bytes: &[u8], peer: usize) -> Result<Manifest, McError> {
    let mut r = WireReader::new(bytes);
    let bad = |e| McError::Transport(format!("malformed manifest from rank {peer}: {e}"));
    let kind = u8::read(&mut r).map_err(bad)?;
    if kind != K_MANIFEST {
        return Err(McError::Transport(format!(
            "expected a manifest from rank {peer}, got control frame kind {kind}"
        )));
    }
    Ok(Manifest {
        seq: u32::read(&mut r).map_err(bad)?,
        total_elems: u64::read(&mut r).map_err(bad)?,
        elem_tag: u64::read(&mut r).map_err(bad)?,
        elem_size: u32::read(&mut r).map_err(bad)?,
        pair_elems: u64::read(&mut r).map_err(bad)?,
        transfer_epoch: u64::read(&mut r).map_err(bad)?,
    })
}

/// First disagreement between my schedule's view of a pair and the peer's
/// manifest, as a human-readable detail string.
fn manifest_disagreement(sched: &Schedule, my_pair_elems: u64, m: &Manifest) -> Option<String> {
    if m.seq != sched.seq() {
        return Some(format!(
            "schedule seq {} here vs {} at the peer",
            sched.seq(),
            m.seq
        ));
    }
    if m.total_elems != sched.total_elems as u64 {
        return Some(format!(
            "transfer totals {} elements here vs {} at the peer",
            sched.total_elems, m.total_elems
        ));
    }
    if m.elem_tag != sched.elem_tag() || m.elem_size != sched.elem_size() {
        return Some(format!(
            "element type differs ({}-byte elements here vs {}-byte at the peer)",
            sched.elem_size(),
            m.elem_size
        ));
    }
    if m.pair_elems != my_pair_elems {
        return Some(format!(
            "this pair carries {my_pair_elems} elements here vs {} at the peer",
            m.pair_elems
        ));
    }
    None
}

fn write_verdict(buf: &mut Vec<u8>, code: u8, a: u64, b: u64) {
    K_VERDICT.write(buf);
    code.write(buf);
    a.write(buf);
    b.write(buf);
}

fn parse_verdict(bytes: &[u8], peer: usize) -> Result<(u8, u64, u64), McError> {
    let mut r = WireReader::new(bytes);
    let bad = |e| McError::Transport(format!("malformed verdict from rank {peer}: {e}"));
    let kind = u8::read(&mut r).map_err(bad)?;
    if kind != K_VERDICT {
        return Err(McError::Transport(format!(
            "expected a verdict from rank {peer}, got control frame kind {kind}"
        )));
    }
    Ok((
        u8::read(&mut r).map_err(bad)?,
        u64::read(&mut r).map_err(bad)?,
        u64::read(&mut r).map_err(bad)?,
    ))
}

/// The transaction's prepare phase, identical on both sides: exchange
/// manifests with every pair peer, then exchange verdicts, and only return
/// `Ok` when *everyone* agreed to proceed.  Each phase posts to every peer
/// before reading from any, so the exchange cannot deadlock; a transport
/// error against one peer still drains the remaining live peers.
///
/// Returns the per-pair transfer epochs the peers announced (meaningful on
/// the receive side; senders announce `my_te` and ignore the result).
pub(crate) fn settle(
    ep: &mut Endpoint,
    sched: &Schedule,
    pairs: &[(usize, AddrRuns)],
    my_te: u64,
    my_stale: Option<(u64, u64)>,
) -> Result<Vec<u64>, McError> {
    let span = ep.span_begin(Phase::Manifest, || {
        format!("seq={} pairs={} te={}", sched.seq(), pairs.len(), my_te)
    });
    let r = settle_inner(ep, sched, pairs, my_te, my_stale);
    ep.span_end(span);
    r
}

fn settle_inner(
    ep: &mut Endpoint,
    sched: &Schedule,
    pairs: &[(usize, AddrRuns)],
    my_te: u64,
    my_stale: Option<(u64, u64)>,
) -> Result<Vec<u64>, McError> {
    let st = StreamTag::new(sched.group().context(), MANIFEST_STREAM);
    let group = sched.group();
    let n = pairs.len();
    let mut dead = vec![false; n];
    // The first transport failure, kept with the peer it happened against:
    // transport errors outrank mismatch/stale in what we report, because
    // they are the only causes the other live peers will see too.
    let mut failed: Option<McError> = None;
    fn note_failure(dead: &mut [bool], failed: &mut Option<McError>, i: usize, e: McError) {
        dead[i] = true;
        if failed.is_none() {
            *failed = Some(e);
        }
    }

    // Phase 1: announce my manifest to every pair peer.
    for (i, (peer, runs)) in pairs.iter().enumerate() {
        let m = Manifest {
            seq: sched.seq(),
            total_elems: sched.total_elems as u64,
            elem_tag: sched.elem_tag(),
            elem_size: sched.elem_size(),
            pair_elems: runs.len() as u64,
            transfer_epoch: my_te,
        };
        let mut buf = ep.take_buf();
        write_manifest(&mut buf, &m);
        if let Err(e) = reliable::reliable_send(ep, group.global(*peer), st, buf) {
            note_failure(&mut dead, &mut failed, i, e.into());
        }
    }

    // Phase 2: read every live peer's manifest; collect the first
    // disagreement but keep draining so no peer is left unpaired.
    let mut peer_te = vec![0u64; n];
    let mut mismatch: Option<(usize, String)> = None;
    for (i, (peer, runs)) in pairs.iter().enumerate() {
        if dead[i] {
            continue;
        }
        let pg = group.global(*peer);
        match reliable::reliable_recv(ep, pg, st) {
            Ok(bytes) => match parse_manifest(&bytes, pg) {
                Ok(m) => {
                    peer_te[i] = m.transfer_epoch;
                    if mismatch.is_none() {
                        if let Some(detail) = manifest_disagreement(sched, runs.len() as u64, &m) {
                            mismatch = Some((pg, detail));
                        }
                    }
                    ep.recycle_buf(bytes);
                }
                Err(e) => note_failure(&mut dead, &mut failed, i, e),
            },
            Err(e) => note_failure(&mut dead, &mut failed, i, e.into()),
        }
    }

    // My verdict, in decreasing severity: a dead peer dooms the transfer
    // for everyone; a stale schedule or manifest mismatch aborts it cleanly.
    let my_verdict: (u8, u64, u64) = if let Some(e) = &failed {
        let r = match e {
            McError::PeerFailed { rank, .. }
            | McError::PeerTimeout { rank, .. }
            | McError::PeerEvicted { rank, .. } => *rank as u64,
            _ => u64::MAX,
        };
        (V_ABORT_PEER, r, 0)
    } else if let Some((oe, se)) = my_stale {
        (V_ABORT_STALE, oe, se)
    } else if mismatch.is_some() {
        (V_ABORT_MISMATCH, 0, 0)
    } else {
        (V_OK, 0, 0)
    };
    if my_verdict.0 != V_OK {
        ep.mark(|| {
            let why = match my_verdict.0 {
                V_ABORT_PEER => "peer-failed",
                V_ABORT_STALE => "stale-schedule",
                _ => "manifest-mismatch",
            };
            format!("verdict abort cause={why} seq={}", sched.seq())
        });
    }

    // Phase 3: post my verdict to every live peer.
    for (i, (peer, _)) in pairs.iter().enumerate() {
        if dead[i] {
            continue;
        }
        let mut buf = ep.take_buf();
        write_verdict(&mut buf, my_verdict.0, my_verdict.1, my_verdict.2);
        if let Err(e) = reliable::reliable_send(ep, group.global(*peer), st, buf) {
            note_failure(&mut dead, &mut failed, i, e.into());
        }
    }

    // Phase 4: read every live peer's verdict.
    let mut peer_abort: Option<McError> = None;
    let mut abort_peer: Option<usize> = None;
    for (i, (peer, _)) in pairs.iter().enumerate() {
        if dead[i] {
            continue;
        }
        let pg = group.global(*peer);
        match reliable::reliable_recv(ep, pg, st) {
            Ok(bytes) => match parse_verdict(&bytes, pg) {
                Ok((code, a, b)) => {
                    if code != V_OK && peer_abort.is_none() {
                        abort_peer = Some(pg);
                        peer_abort = Some(match code {
                            V_ABORT_STALE => McError::StaleSchedule {
                                object_epoch: a,
                                schedule_epoch: b,
                            },
                            V_ABORT_PEER => McError::PeerFailed {
                                rank: a as usize,
                                reason: format!(
                                    "rank {a} failed mid-transfer; peer rank {pg} aborted"
                                ),
                            },
                            _ => McError::ScheduleMismatch {
                                peer: pg,
                                detail: "peer aborted: transfer manifests disagree".into(),
                            },
                        });
                    }
                    ep.recycle_buf(bytes);
                }
                Err(e) => note_failure(&mut dead, &mut failed, i, e),
            },
            Err(e) => note_failure(&mut dead, &mut failed, i, e.into()),
        }
    }

    if let Some(pg) = abort_peer {
        ep.mark(|| {
            format!(
                "verdict abort cause=peer-verdict peer={pg} seq={}",
                sched.seq()
            )
        });
    }
    if failed.is_none() && my_verdict.0 == V_OK && peer_abort.is_none() {
        return Ok(peer_te);
    }
    // Abort: nothing has been sent on the data stream, the destination is
    // untouched, and every live peer received an abort verdict.
    ep.record_transfer_aborted();
    if my_stale.is_some() {
        ep.record_stale_schedule();
    }
    if let Some(e) = failed {
        return Err(e);
    }
    if let Some((object_epoch, schedule_epoch)) = my_stale {
        return Err(McError::StaleSchedule {
            object_epoch,
            schedule_epoch,
        });
    }
    if let Some((peer, detail)) = mismatch {
        return Err(McError::ScheduleMismatch { peer, detail });
    }
    Err(peer_abort.expect("abort must have a cause"))
}

/// Per-part header: transfer epoch (8), last-part flag (1), element count
/// (8).  Headroom subtracted from the transport chunk size so one part's
/// payload always fits a single reliable frame (zero-copy delivery).
const PART_HDR_SLACK: usize = 32;

/// Elements per streamed part: as many as fit one transport chunk, so the
/// pack of part `k+1` overlaps the wire time of part `k` inside the
/// sliding window instead of serializing pack → wire → unpack.
fn part_elems(ep: &Endpoint, elem_size: usize) -> usize {
    let budget = ep
        .reliable_config()
        .chunk_bytes
        .saturating_sub(PART_HDR_SLACK)
        .max(1);
    (budget / elem_size.max(1)).max(1)
}

/// Pack and post each pair's half as a stream of parts — every part one
/// reliable frame carrying `[transfer epoch][last flag][element count]`
/// plus that slice of the packed payload — then wait for every
/// acknowledgement.  Posting a part admits it into the sliding window and
/// returns, so packing the next part overlaps the previous part's wire
/// time.
fn send_data_frames<T, S>(
    ep: &mut Endpoint,
    sched: &Schedule,
    src: &S,
    te: u64,
) -> Result<(), McError>
where
    T: Copy + Wire,
    S: McObject<T>,
{
    let st = move_stream(sched);
    let group = sched.group();
    let per_part = part_elems(ep, sched.elem_size() as usize);
    for (peer, runs) in &sched.sends {
        let pg = group.global(*peer);
        let total = runs.len();
        let pack = ep.span_begin(Phase::Pack, || {
            format!(
                "peer={pg} runs={total} te={te} parts={}",
                total.div_ceil(per_part)
            )
        });
        let mut cursor = 0usize;
        while cursor < total {
            let cnt = per_part.min(total - cursor);
            let last = cursor + cnt == total;
            let mut buf = ep.take_buf();
            te.write(&mut buf);
            u8::from(last).write(&mut buf);
            cnt.write(&mut buf);
            let part = runs.slice_elems(cursor, cnt);
            src.pack_runs_wire(ep, &part, &mut buf);
            cursor += cnt;
            if let Err(e) = reliable::reliable_send(ep, pg, st, buf) {
                ep.span_end(pack);
                return Err(e.into());
            }
        }
        ep.span_end(pack);
    }
    let wire = ep.span_begin(Phase::Wire, || {
        format!("pairs={} te={te}", sched.sends.len())
    });
    let mut flushed = Ok(());
    for (peer, _) in &sched.sends {
        if let Err(e) = reliable::flush_send(ep, group.global(*peer), st) {
            flushed = Err(e.into());
            break;
        }
    }
    ep.span_end(wire);
    flushed
}

/// Parse one part's header.  Returns `(transfer_epoch, last, count)`.
pub(crate) fn read_part_header(
    r: &mut WireReader<'_>,
    pg: usize,
) -> Result<(u64, bool, usize), McError> {
    let bad = |e| {
        McError::Transport(format!(
            "data frame from rank {pg} has no transfer header: {e}"
        ))
    };
    let te = u64::read(r).map_err(bad)?;
    let last = u8::read(r).map_err(bad)? != 0;
    let count = usize::read(r).map_err(bad)?;
    Ok((te, last, count))
}

/// Collect every peer's data half — now a stream of parts per half —
/// verify all of them, and only then unpack, so a failure anywhere leaves
/// `dst` bit-identical.  Parts carrying a transfer epoch older than the
/// one the peer's manifest announced are replays of an aborted attempt:
/// the whole replayed half (every part through its last-flag) is consumed
/// and discarded, counted once.
fn recv_data_frames<T, D>(
    ep: &mut Endpoint,
    sched: &Schedule,
    dst: &mut D,
    expected: &[u64],
) -> Result<(), McError>
where
    T: Copy + Wire,
    D: McObject<T>,
{
    let staged = stage_halves(ep, sched, expected)?;
    // Commit: every half arrived and verified.  Staging holds the received
    // wire buffers themselves, so this is the same single unpack as the
    // streaming path — deferred, not duplicated.  Each part unpacks into
    // its slice of the pair's destination runs.
    let commit = ep.span_begin(Phase::Commit, || {
        format!("seq={} pairs={}", sched.seq(), sched.recvs.len())
    });
    let mut committed = Ok(());
    'commit: for ((peer, runs), parts) in sched.recvs.iter().zip(staged) {
        let mut cursor = 0usize;
        for bytes in parts {
            let mut r = WireReader::new(&bytes);
            let _ = u64::read(&mut r);
            let _ = u8::read(&mut r);
            let count = usize::read(&mut r).unwrap_or(0);
            let slice = runs.slice_elems(cursor, count);
            if let Err(e) = dst.unpack_runs_wire(ep, &slice, &mut r) {
                committed = Err(McError::Transport(format!(
                    "frame from peer {peer} failed to decode: {e}"
                )));
                break 'commit;
            }
            cursor += count;
            ep.recycle_buf(bytes);
        }
    }
    ep.span_end(commit);
    if committed.is_ok() {
        ep.record_transfer_committed();
    }
    committed
}

/// Absorb-mode receive, for a destination that already committed this
/// step in a previous life: participate in the transaction exactly like
/// [`data_move_recv`] — settle the manifest, stage and verify every
/// peer's half — but discard the staged parts instead of committing them,
/// so the replaying sender unblocks and exactly-once delivery holds.
#[doc(hidden)]
pub fn data_move_recv_absorb<T, D>(
    ep: &mut Endpoint,
    sched: &Schedule,
    dst: &D,
) -> Result<(), McError>
where
    T: Copy + Wire,
    D: McObject<T>,
{
    recv_side_guards(sched)?;
    if sched.recvs.is_empty() {
        return Ok(());
    }
    let span = ep.span_begin(Phase::Transfer, || {
        format!(
            "mode=absorb seq={} pairs={} elems={}",
            sched.seq(),
            sched.recvs.len(),
            sched.total_elems
        )
    });
    let r = settle(
        ep,
        sched,
        &sched.recvs,
        0,
        stale_pair(dst.epoch(), sched.dst_epoch()),
    )
    .and_then(|expected| {
        let staged = stage_halves(ep, sched, &expected)?;
        let group = sched.group();
        for ((peer, _), parts) in sched.recvs.iter().zip(staged) {
            ep.record_parts_replayed(group.global(*peer), parts.len());
            for b in parts {
                ep.recycle_buf(b);
            }
        }
        Ok(())
    });
    if let Err(e) = &r {
        obs::record_abort(ep, e);
    }
    ep.span_end(span);
    r
}

/// The staging phase shared by commit and absorb: collect every peer's
/// data half and verify headers, epochs, and payload sizes.  A failure
/// anywhere recycles everything staged and aborts the transfer, leaving
/// the destination bit-identical.
fn stage_halves(
    ep: &mut Endpoint,
    sched: &Schedule,
    expected: &[u64],
) -> Result<Vec<Vec<Vec<u8>>>, McError> {
    let st = move_stream(sched);
    let group = sched.group();
    let esz = sched.elem_size() as usize;
    // Per pair: the ordered list of staged part buffers for its half.
    let mut staged: Vec<Vec<Vec<u8>>> = Vec::with_capacity(sched.recvs.len());
    let mut fail: Option<McError> = None;
    let stage = ep.span_begin(Phase::Stage, || {
        format!("seq={} pairs={}", sched.seq(), sched.recvs.len())
    });
    'pairs: for (i, (peer, runs)) in sched.recvs.iter().enumerate() {
        let pg = group.global(*peer);
        let mut parts: Vec<Vec<u8>> = Vec::new();
        let mut got = 0usize;
        // True while discarding the remainder of a replayed (stale) half:
        // the half is counted once, at its first part.
        let mut in_stale = false;
        loop {
            let bytes = match reliable::reliable_recv(ep, pg, st) {
                Ok(b) => b,
                Err(e) => {
                    fail = Some(e.into());
                    break 'pairs;
                }
            };
            let mut r = WireReader::new(&bytes);
            let (te, last, count) = match read_part_header(&mut r, pg) {
                Ok(h) => h,
                Err(e) => {
                    fail = Some(e);
                    break 'pairs;
                }
            };
            if te < expected[i] {
                // A replay from an earlier, aborted attempt: the retried
                // transfer must not consume it.
                if !in_stale {
                    ep.record_stale_half();
                    in_stale = true;
                }
                if last {
                    in_stale = false;
                }
                ep.recycle_buf(bytes);
                continue;
            }
            if te > expected[i] {
                fail = Some(McError::Transport(format!(
                    "data frame from rank {pg} is from transfer epoch {te}, manifest announced {}",
                    expected[i]
                )));
                break 'pairs;
            }
            if esz != 0 && r.remaining() != count * esz {
                fail = Some(McError::Transport(format!(
                    "part from rank {pg} has {} payload bytes, expected {}",
                    r.remaining(),
                    count * esz
                )));
                break 'pairs;
            }
            got += count;
            if got > runs.len() || (last && got != runs.len()) {
                fail = Some(McError::Transport(format!(
                    "half from rank {pg} carries {got} elements, schedule expects {}",
                    runs.len()
                )));
                break 'pairs;
            }
            ep.record_staged_frame();
            parts.push(bytes);
            if last {
                break;
            }
        }
        staged.push(std::mem::take(&mut parts));
    }
    ep.span_end(stage);
    if let Some(e) = fail {
        let total: usize = staged.iter().map(Vec::len).sum();
        let abort = ep.span_begin(Phase::Abort, || {
            format!("seq={} staged={total}", sched.seq())
        });
        for b in staged.into_iter().flatten() {
            ep.recycle_buf(b);
        }
        ep.record_transfer_aborted();
        ep.span_end(abort);
        return Err(e);
    }
    Ok(staged)
}

fn send_half<T, S>(ep: &mut Endpoint, sched: &Schedule, src: &S)
where
    T: Copy + Wire,
    S: McObject<T>,
{
    if sched.sends.is_empty() {
        return;
    }
    let t = move_tag(sched.seq());
    let mut comm = Comm::borrowed(ep, sched.group());
    for (peer, runs) in &sched.sends {
        // Encode the `Vec<T>` wire layout directly: count header, then the
        // source elements packed straight into a pooled wire buffer — one
        // copy, no intermediate typed buffer.
        let pack = comm.ep().span_begin(Phase::Pack, || {
            format!("seq={} peer={peer} runs={}", sched.seq(), runs.len())
        });
        let mut buf = comm.ep().take_buf();
        runs.len().write(&mut buf);
        src.pack_runs_wire(comm.ep(), runs, &mut buf);
        comm.ep().span_end(pack);
        let wire = comm
            .ep()
            .span_begin(Phase::Wire, || format!("seq={} peer={peer}", sched.seq()));
        comm.send(*peer, t, buf);
        comm.ep().span_end(wire);
    }
}

/// The reliable stream a schedule's cross-program traffic runs on: same
/// context as the raw path, stream id = schedule seq (the tag class moves
/// from `0x4` to the reliable pair `0x5`/`0x6`).
pub(crate) fn move_stream(sched: &Schedule) -> StreamTag {
    StreamTag::new(sched.group().context(), sched.seq())
}

/// Pack, post, and flush ONE pair's half (per-pair counterpart of
/// [`send_data_frames`], used by the recovery session to retry exactly
/// the pairs that have not confirmed a step).
pub(crate) fn send_one_half<T, S>(
    ep: &mut Endpoint,
    sched: &Schedule,
    src: &S,
    te: u64,
    pg: usize,
    runs: &AddrRuns,
) -> Result<(), McError>
where
    T: Copy + Wire,
    S: McObject<T>,
{
    let st = move_stream(sched);
    let per_part = part_elems(ep, sched.elem_size() as usize);
    let total = runs.len();
    let pack = ep.span_begin(Phase::Pack, || {
        format!(
            "peer={pg} runs={total} te={te} parts={}",
            total.div_ceil(per_part)
        )
    });
    let mut cursor = 0usize;
    while cursor < total {
        let cnt = per_part.min(total - cursor);
        let last = cursor + cnt == total;
        let mut buf = ep.take_buf();
        te.write(&mut buf);
        u8::from(last).write(&mut buf);
        cnt.write(&mut buf);
        let part = runs.slice_elems(cursor, cnt);
        src.pack_runs_wire(ep, &part, &mut buf);
        cursor += cnt;
        if let Err(e) = reliable::reliable_send(ep, pg, st, buf) {
            ep.span_end(pack);
            return Err(e.into());
        }
    }
    ep.span_end(pack);
    let wire = ep.span_begin(Phase::Wire, || format!("peer={pg} te={te}"));
    let r = reliable::flush_send(ep, pg, st).map_err(McError::from);
    ep.span_end(wire);
    r
}

/// Unpack ONE staged half into `dst` (per-pair counterpart of the commit
/// loop in [`recv_data_frames`]).  Consumes and recycles the parts.
pub(crate) fn commit_one_half<T, D>(
    ep: &mut Endpoint,
    dst: &mut D,
    pg: usize,
    runs: &AddrRuns,
    parts: Vec<Vec<u8>>,
) -> Result<(), McError>
where
    T: Copy + Wire,
    D: McObject<T>,
{
    let mut cursor = 0usize;
    for bytes in parts {
        let mut r = WireReader::new(&bytes);
        let _ = u64::read(&mut r);
        let _ = u8::read(&mut r);
        let count = usize::read(&mut r).unwrap_or(0);
        let slice = runs.slice_elems(cursor, count);
        if let Err(e) = dst.unpack_runs_wire(ep, &slice, &mut r) {
            return Err(McError::Transport(format!(
                "frame from rank {pg} failed to decode: {e}"
            )));
        }
        cursor += count;
        ep.recycle_buf(bytes);
    }
    Ok(())
}

fn recv_half<T, D>(ep: &mut Endpoint, sched: &Schedule, dst: &mut D)
where
    T: Copy + Wire,
    D: McObject<T>,
{
    if sched.recvs.is_empty() {
        return;
    }
    let t = move_tag(sched.seq());
    let mut comm = Comm::borrowed(ep, sched.group());
    for (peer, runs) in &sched.recvs {
        let stage = comm
            .ep()
            .span_begin(Phase::Stage, || format!("peer={peer} runs={}", runs.len()));
        let bytes = comm.recv(*peer, t);
        comm.ep().span_end(stage);
        let mut r = WireReader::new(&bytes);
        let count = usize::read(&mut r)
            .unwrap_or_else(|e| panic!("message from peer {peer} has no element count: {e}"));
        assert_eq!(
            count,
            runs.len(),
            "message from peer {peer} has wrong element count"
        );
        // Unpack wire bytes straight into library storage, then recycle
        // the buffer so steady-state loops allocate nothing.
        let commit = comm
            .ep()
            .span_begin(Phase::Commit, || format!("peer={peer}"));
        dst.unpack_runs_wire(comm.ep(), runs, &mut r)
            .unwrap_or_else(|e| panic!("message from peer {peer} failed to decode: {e}"));
        comm.ep().span_end(commit);
        comm.ep().recycle_buf(bytes);
    }
}

fn local_copies<T, S, D>(ep: &mut Endpoint, sched: &Schedule, src: &S, dst: &mut D)
where
    T: Copy + Wire,
    S: McObject<T>,
    D: McObject<T>,
{
    if sched.local_pairs.is_empty() {
        return;
    }
    ep.mark(|| format!("local_copy pairs={}", sched.local_pairs.len()));
    let (saddrs, daddrs) = sched.local_pairs.split_sides();
    let mut buf: Vec<T> = Vec::with_capacity(saddrs.len());
    src.pack_runs(ep, &saddrs, &mut buf);
    dst.unpack_runs(ep, &daddrs, &buf);
    // Direct copy: no extra staging charge beyond pack + unpack — this is
    // the local-copy advantage over Parti's intermediate buffer (§5.3).
}

/// Ablation baseline: the pre-optimization executor, kept for measuring
/// the run-compressed fast path against.  Produces byte-identical messages
/// and identical results, but expands every run back to explicit address
/// lists, packs element by element, and clones the communicator group per
/// peer.  Benchmarks only — not part of the Meta-Chaos API surface.
pub fn data_move_elementwise<T, S, D>(ep: &mut Endpoint, sched: &Schedule, src: &S, dst: &mut D)
where
    T: Copy + Wire,
    S: McObject<T>,
    D: McObject<T>,
{
    let t = move_tag(sched.seq());
    for (peer, runs) in &sched.sends {
        let addrs = runs.to_vec();
        let mut buf: Vec<T> = Vec::with_capacity(addrs.len());
        src.pack(ep, &addrs, &mut buf);
        let mut comm = Comm::new(ep, sched.group().clone());
        comm.send_t(*peer, t, &buf);
    }
    if !sched.local_pairs.is_empty() {
        let (saddrs, daddrs): (Vec<_>, Vec<_>) = sched.local_pairs.iter().unzip();
        let mut buf: Vec<T> = Vec::with_capacity(saddrs.len());
        src.pack(ep, &saddrs, &mut buf);
        dst.unpack(ep, &daddrs, &buf);
    }
    for (peer, runs) in &sched.recvs {
        let addrs = runs.to_vec();
        let data: Vec<T> = {
            let mut comm = Comm::new(ep, sched.group().clone());
            comm.recv_t(*peer, t)
        };
        assert_eq!(
            data.len(),
            addrs.len(),
            "message from peer {peer} has wrong element count"
        );
        dst.unpack(ep, &addrs, &data);
    }
}
