//! Collective schedule validation.
//!
//! A schedule is distributed state: each rank holds only its halves, so
//! several invariants can only be checked globally.  [`validate_schedule`]
//! performs those checks collectively and reports the findings everywhere
//! — useful in tests, debug builds, and when developing a new library's
//! interface functions.

use mcsim::group::Comm;
use mcsim::prelude::Endpoint;

use crate::schedule::Schedule;

/// Problems a global validation can find.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleIssue {
    /// Rank `a` plans to send `planned` elements to `b`, but `b` expects
    /// `expected` from `a`.
    PairMismatch {
        /// Sending union-local rank.
        a: usize,
        /// Receiving union-local rank.
        b: usize,
        /// Elements in `a`'s send list.
        planned: usize,
        /// Elements in `b`'s receive list.
        expected: usize,
    },
    /// The global element count (messages + local pairs) does not cover
    /// the transfer size.
    CoverageMismatch {
        /// Elements accounted for.
        covered: usize,
        /// Elements the schedule claims to move.
        total: usize,
    },
    /// Ranks disagree about the schedule's sequence number.
    SeqMismatch,
    /// Ranks disagree about the element type the schedule carries (tag or
    /// size — e.g. one program built it for `f64`, the other for `f32`).
    TypeMismatch,
}

/// Collectively validate `sched` over its union group.  Every rank
/// receives the same list of issues (empty = valid).
pub fn validate_schedule(ep: &mut Endpoint, sched: &Schedule) -> Vec<ScheduleIssue> {
    let mut comm = Comm::borrowed(ep, sched.group());
    let p = comm.size();

    // Dense per-pair counts from this rank's perspective.
    let mut send_counts = vec![0usize; p];
    for (peer, addrs) in &sched.sends {
        send_counts[*peer] = addrs.len();
    }
    let mut recv_counts = vec![0usize; p];
    for (peer, addrs) in &sched.recvs {
        recv_counts[*peer] = addrs.len();
    }

    // Everyone learns everyone's counts (p is small; this is a test aid).
    let all_sends: Vec<Vec<usize>> = comm.allgather_t(send_counts);
    let all_recvs: Vec<Vec<usize>> = comm.allgather_t(recv_counts);
    let all_locals: Vec<usize> = comm.allgather_t(sched.elems_local());
    let all_seqs: Vec<u32> = comm.allgather_t(sched.seq());
    let all_types: Vec<(u64, u32)> = comm.allgather_t((sched.elem_tag(), sched.elem_size()));

    let mut issues = Vec::new();
    for a in 0..p {
        for b in 0..p {
            let planned = all_sends[a][b];
            let expected = all_recvs[b][a];
            if planned != expected {
                issues.push(ScheduleIssue::PairMismatch {
                    a,
                    b,
                    planned,
                    expected,
                });
            }
        }
    }
    let moved: usize = all_sends.iter().flatten().sum::<usize>() + all_locals.iter().sum::<usize>();
    if moved != sched.total_elems {
        issues.push(ScheduleIssue::CoverageMismatch {
            covered: moved,
            total: sched.total_elems,
        });
    }
    if all_seqs.iter().any(|&s| s != all_seqs[0]) {
        issues.push(ScheduleIssue::SeqMismatch);
    }
    if all_types.iter().any(|&t| t != all_types[0]) {
        issues.push(ScheduleIssue::TypeMismatch);
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{compute_schedule, BuildMethod};
    use crate::region::IndexSet;
    use crate::setof::SetOfRegions;
    use crate::testlib::BlockVec;
    use crate::Side;
    use mcsim::group::Group;
    use mcsim::model::MachineModel;
    use mcsim::world::World;

    #[test]
    fn well_formed_schedules_validate() {
        let world = World::with_model(3, MachineModel::zero());
        world.run(|ep| {
            let g = Group::world(3);
            let a = BlockVec::create(&g, ep.rank(), 18, |i| i as f64);
            let b = BlockVec::create(&g, ep.rank(), 18, |_| 0.0);
            let sset = SetOfRegions::single(IndexSet::new((0..9).collect()));
            let dset = SetOfRegions::single(IndexSet::new((9..18).collect()));
            let sched = compute_schedule(
                ep,
                &g,
                &g,
                Some(Side::new(&a, &sset)),
                &g,
                Some(Side::new(&b, &dset)),
                BuildMethod::Cooperation,
            )
            .unwrap();
            assert!(validate_schedule(ep, &sched).is_empty());
            // The reversed schedule is just as valid.
            assert!(validate_schedule(ep, &sched.reversed()).is_empty());
        });
    }

    #[test]
    fn corrupted_schedule_is_detected() {
        let world = World::with_model(2, MachineModel::zero());
        world.run(|ep| {
            let g = Group::world(2);
            let a = BlockVec::create(&g, ep.rank(), 8, |i| i as f64);
            let b = BlockVec::create(&g, ep.rank(), 8, |_| 0.0);
            let sset = SetOfRegions::single(IndexSet::new((0..4).collect()));
            let dset = SetOfRegions::single(IndexSet::new((4..8).collect()));
            let mut sched = compute_schedule(
                ep,
                &g,
                &g,
                Some(Side::new(&a, &sset)),
                &g,
                Some(Side::new(&b, &dset)),
                BuildMethod::Duplication,
            )
            .unwrap();
            // Corrupt rank 0's send half.
            if ep.rank() == 0 {
                if let Some((_, addrs)) = sched.sends.first_mut() {
                    let keep = addrs.len() - 1;
                    addrs.truncate(keep);
                }
            }
            let issues = validate_schedule(ep, &sched);
            assert!(
                issues
                    .iter()
                    .any(|i| matches!(i, ScheduleIssue::PairMismatch { .. })),
                "{issues:?}"
            );
            assert!(
                issues
                    .iter()
                    .any(|i| matches!(i, ScheduleIssue::CoverageMismatch { .. })),
                "{issues:?}"
            );
        });
    }

    #[test]
    fn element_type_disagreement_is_detected() {
        let world = World::with_model(2, MachineModel::zero());
        world.run(|ep| {
            let g = Group::world(2);
            let a = BlockVec::create(&g, ep.rank(), 8, |i| i as f64);
            let b = BlockVec::create(&g, ep.rank(), 8, |_| 0.0);
            let sset = SetOfRegions::single(IndexSet::new((0..4).collect()));
            let dset = SetOfRegions::single(IndexSet::new((4..8).collect()));
            let mut sched = compute_schedule(
                ep,
                &g,
                &g,
                Some(Side::new(&a, &sset)),
                &g,
                Some(Side::new(&b, &dset)),
                BuildMethod::Cooperation,
            )
            .unwrap();
            assert!(validate_schedule(ep, &sched).is_empty());
            // Rank 1 thinks the port carries a different element type — as
            // if its program instantiated the build for f32.
            if ep.rank() == 1 {
                let (tag, size) = crate::schedule::elem_type::<f32>();
                sched =
                    sched
                        .clone()
                        .with_integrity(sched.src_epoch(), sched.dst_epoch(), tag, size);
            }
            let issues = validate_schedule(ep, &sched);
            assert_eq!(issues, vec![ScheduleIssue::TypeMismatch]);
        });
    }
}
