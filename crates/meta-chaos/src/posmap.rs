//! Position-block routing: the distributed rendezvous used by
//! cooperation-style schedule building.
//!
//! Ownership of linearization positions is scattered across ranks (each
//! rank knows only the positions *it* owns).  To match source owners with
//! destination owners without replicating anything, positions are routed to
//! a *coordinator* chosen by block partition of the position space
//! ([`crate::linear::PosBlocks`]) — the same distributed-directory pattern
//! Chaos uses for its translation tables.

use mcsim::group::Comm;
use mcsim::wire::Wire;

use crate::linear::PosBlocks;

/// Route `(pos, payload)` items to each position's coordinator.
///
/// Returns, on every rank, the items it coordinates as
/// `(sender local rank, pos, payload)`, ordered by sender and, within a
/// sender, by the sender's emission order.
pub fn route_by_position<T: Wire>(
    comm: &mut Comm<'_>,
    blocks: &PosBlocks,
    items: Vec<(usize, T)>,
) -> Vec<(usize, usize, T)> {
    let p = comm.size();
    let mut send: Vec<Vec<(usize, T)>> = (0..p).map(|_| Vec::new()).collect();
    let n_items = items.len();
    for (pos, payload) in items {
        send[blocks.owner(pos)].push((pos, payload));
    }
    comm.ep().charge_schedule_insert(n_items);
    let recv = comm.alltoallv_t(send);
    let mut out = Vec::new();
    for (from, list) in recv.into_iter().enumerate() {
        comm.ep().charge_schedule_insert(list.len());
        for (pos, payload) in list {
            out.push((from, pos, payload));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim::model::MachineModel;
    use mcsim::world::World;

    #[test]
    fn items_reach_their_coordinator() {
        let world = World::with_model(4, MachineModel::zero());
        world.run(|ep| {
            let me = ep.rank();
            let mut comm = mcsim::group::Comm::world(ep);
            let blocks = PosBlocks::new(16, 4);
            // Every rank owns positions pos with pos % 4 == me.
            let items: Vec<(usize, u64)> = (0..16)
                .filter(|p| p % 4 == me)
                .map(|p| (p, (p * 100) as u64))
                .collect();
            let got = route_by_position(&mut comm, &blocks, items);
            // I coordinate positions 4*me..4*me+4, one from each sender.
            assert_eq!(got.len(), 4);
            for &(from, pos, payload) in &got {
                assert_eq!(blocks.owner(pos), me);
                assert_eq!(pos % 4, from);
                assert_eq!(payload, (pos * 100) as u64);
            }
        });
    }

    #[test]
    fn empty_inputs_are_fine() {
        let world = World::with_model(3, MachineModel::zero());
        world.run(|ep| {
            let mut comm = mcsim::group::Comm::world(ep);
            let blocks = PosBlocks::new(10, 3);
            let got = route_by_position::<u32>(&mut comm, &blocks, Vec::new());
            assert!(got.is_empty());
        });
    }
}
