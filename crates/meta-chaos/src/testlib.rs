//! A deliberately tiny reference "data-parallel library" used only by this
//! crate's unit tests: a 1-D block-distributed `f64` vector.
//!
//! The real libraries live in the `multiblock`, `chaos`, `hpf` and `tulip`
//! crates; this one exists so schedule construction and data movement can
//! be tested without a dependency cycle.

use mcsim::error::SimError;
use mcsim::group::{Comm, Group};
use mcsim::prelude::Endpoint;
use mcsim::wire::{Wire, WireReader};

use crate::adapter::{Location, McDescriptor, McObject};
use crate::region::{IndexSet, Region};
use crate::setof::SetOfRegions;
use crate::LocalAddr;

/// Distribution descriptor: block partition of `0..n` over the program.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockVecDesc {
    pub n: usize,
    pub members: Vec<usize>,
}

impl BlockVecDesc {
    fn block(&self) -> usize {
        self.n.div_ceil(self.members.len())
    }

    fn owner_local(&self, g: usize) -> usize {
        (g / self.block()).min(self.members.len() - 1)
    }

    fn lo(&self, local: usize) -> usize {
        (local * self.block()).min(self.n)
    }

    fn hi(&self, local: usize) -> usize {
        ((local + 1) * self.block()).min(self.n)
    }
}

impl Wire for BlockVecDesc {
    fn write(&self, out: &mut Vec<u8>) {
        self.n.write(out);
        self.members.write(out);
    }
    fn read(r: &mut WireReader<'_>) -> Result<Self, SimError> {
        Ok(BlockVecDesc {
            n: usize::read(r)?,
            members: Vec::<usize>::read(r)?,
        })
    }
}

impl McDescriptor for BlockVecDesc {
    type Region = IndexSet;
    fn locate(&self, set: &SetOfRegions<IndexSet>, pos: usize) -> Location {
        let (ri, off) = set.locate_position(pos);
        let g = set.regions()[ri].index(off);
        let local = self.owner_local(g);
        Location {
            rank: self.members[local],
            addr: g - self.lo(local),
        }
    }
}

/// The distributed vector itself: each rank of the program stores its block.
#[derive(Debug, Clone)]
pub struct BlockVec {
    pub desc: BlockVecDesc,
    pub my_local: usize,
    pub data: Vec<f64>,
}

impl BlockVec {
    /// Create on each program rank, filled by `f(global index)`.
    pub fn create(prog: &Group, me_global: usize, n: usize, f: impl Fn(usize) -> f64) -> Self {
        let desc = BlockVecDesc {
            n,
            members: prog.members().to_vec(),
        };
        let my_local = prog.local_of(me_global).expect("member");
        let lo = desc.lo(my_local);
        let hi = desc.hi(my_local);
        BlockVec {
            my_local,
            data: (lo..hi).map(f).collect(),
            desc,
        }
    }

    /// Global index of local address `a`.
    #[allow(dead_code)]
    pub fn global_of(&self, a: usize) -> usize {
        self.desc.lo(self.my_local) + a
    }
}

impl McObject<f64> for BlockVec {
    type Region = IndexSet;
    type Descriptor = BlockVecDesc;

    fn deref_owned(
        &self,
        comm: &mut Comm<'_>,
        set: &SetOfRegions<IndexSet>,
    ) -> Vec<(usize, LocalAddr)> {
        let me = comm.rank();
        let mut out = Vec::new();
        let mut pos = 0;
        for r in set.regions() {
            for k in 0..r.len() {
                let g = r.index(k);
                if self.desc.owner_local(g) == me {
                    out.push((pos, g - self.desc.lo(me)));
                }
                pos += 1;
            }
        }
        comm.ep().charge_owner_calc(pos);
        out
    }

    fn locate_positions(
        &self,
        comm: &mut Comm<'_>,
        set: &SetOfRegions<IndexSet>,
        positions: &[usize],
    ) -> Vec<Location> {
        comm.ep().charge_owner_calc(positions.len());
        positions
            .iter()
            .map(|&p| self.desc.locate(set, p))
            .collect()
    }

    fn descriptor(&self, _comm: &mut Comm<'_>) -> BlockVecDesc {
        self.desc.clone()
    }

    fn pack(&self, ep: &mut Endpoint, addrs: &[LocalAddr], out: &mut Vec<f64>) {
        out.extend(addrs.iter().map(|&a| self.data[a]));
        ep.charge_copy_bytes(addrs.len() * 8);
    }

    fn unpack(&mut self, ep: &mut Endpoint, addrs: &[LocalAddr], data: &[f64]) {
        assert_eq!(addrs.len(), data.len());
        for (&a, &v) in addrs.iter().zip(data) {
            self.data[a] = v;
        }
        ep.charge_copy_bytes(addrs.len() * 8);
    }

    fn pack_runs(&self, ep: &mut Endpoint, runs: &crate::schedule::AddrRuns, out: &mut Vec<f64>) {
        for &(start, len) in runs.runs() {
            out.extend_from_slice(&self.data[start..start + len]);
        }
        ep.charge_copy_bytes(runs.len() * 8);
    }

    fn unpack_runs(&mut self, ep: &mut Endpoint, runs: &crate::schedule::AddrRuns, vals: &[f64]) {
        assert_eq!(runs.len(), vals.len());
        let mut off = 0;
        for &(start, len) in runs.runs() {
            self.data[start..start + len].copy_from_slice(&vals[off..off + len]);
            off += len;
        }
        ep.charge_copy_bytes(runs.len() * 8);
    }

    fn pack_runs_wire(
        &self,
        ep: &mut Endpoint,
        runs: &crate::schedule::AddrRuns,
        out: &mut Vec<u8>,
    ) {
        for &(start, len) in runs.runs() {
            f64::write_slice(&self.data[start..start + len], out);
        }
        ep.charge_copy_bytes(runs.len() * 8);
    }

    fn unpack_runs_wire(
        &mut self,
        ep: &mut Endpoint,
        runs: &crate::schedule::AddrRuns,
        r: &mut WireReader<'_>,
    ) -> Result<(), SimError> {
        for &(start, len) in runs.runs() {
            f64::read_slice(r, &mut self.data[start..start + len])?;
        }
        ep.charge_copy_bytes(runs.len() * 8);
        Ok(())
    }
}
