//! A sequential (single-owner) vector as a degenerate data-parallel
//! library.
//!
//! The paper's client/server scenarios repeatedly involve a *sequential*
//! program exchanging data with a parallel one ("a client, running
//! sequentially or in parallel...").  [`SeqVec`] makes that first-class: a
//! vector wholly owned by one designated rank of a program, exporting the
//! same Meta-Chaos interface as any parallel library.  Copying between a
//! `SeqVec` and any distributed structure gives gather/scatter to a single
//! rank for free.

use mcsim::error::SimError;
use mcsim::group::Comm;
use mcsim::prelude::Endpoint;
use mcsim::wire::{Wire, WireReader};

use crate::adapter::{Location, McDescriptor, McObject};
use crate::region::IndexSet;
use crate::setof::SetOfRegions;
use crate::LocalAddr;

/// Descriptor: everything lives on one global rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqDesc {
    /// Vector length.
    pub n: usize,
    /// The owning global rank.
    pub owner: usize,
}

impl Wire for SeqDesc {
    fn write(&self, out: &mut Vec<u8>) {
        self.n.write(out);
        self.owner.write(out);
    }
    fn read(r: &mut WireReader<'_>) -> Result<Self, SimError> {
        Ok(SeqDesc {
            n: usize::read(r)?,
            owner: usize::read(r)?,
        })
    }
}

impl McDescriptor for SeqDesc {
    type Region = IndexSet;

    fn locate(&self, set: &SetOfRegions<IndexSet>, pos: usize) -> Location {
        let (ri, off) = set.locate_position(pos);
        Location {
            rank: self.owner,
            addr: set.regions()[ri].index(off),
        }
    }
}

/// A vector owned in full by one rank; other program ranks hold an empty
/// shell (SPMD-friendly: every rank constructs one).
#[derive(Debug, Clone)]
pub struct SeqVec<T> {
    n: usize,
    owner_global: usize,
    /// Non-empty only on the owner.
    data: Vec<T>,
}

impl<T: Copy + Default> SeqVec<T> {
    /// Create on every rank of the program; storage materializes only on
    /// `owner_global`.
    pub fn new(me_global: usize, owner_global: usize, n: usize) -> Self {
        let data = if me_global == owner_global {
            vec![T::default(); n]
        } else {
            Vec::new()
        };
        SeqVec {
            n,
            owner_global,
            data,
        }
    }

    /// Length of the vector.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The owning global rank.
    pub fn owner(&self) -> usize {
        self.owner_global
    }

    /// The values (meaningful on the owner only).
    pub fn values(&self) -> &[T] {
        &self.data
    }

    /// Mutable values (owner only).
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T: Copy + Default> McObject<T> for SeqVec<T> {
    type Region = IndexSet;
    type Descriptor = SeqDesc;

    fn deref_owned(
        &self,
        comm: &mut Comm<'_>,
        set: &SetOfRegions<IndexSet>,
    ) -> Vec<(usize, LocalAddr)> {
        if comm.group().global(comm.rank()) != self.owner_global {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(set.total_len());
        let mut pos = 0;
        for region in set.regions() {
            for &g in region.indices() {
                debug_assert!(g < self.n);
                out.push((pos, g));
                pos += 1;
            }
        }
        comm.ep().charge_owner_calc(out.len());
        out
    }

    fn locate_positions(
        &self,
        comm: &mut Comm<'_>,
        set: &SetOfRegions<IndexSet>,
        positions: &[usize],
    ) -> Vec<Location> {
        let d = SeqDesc {
            n: self.n,
            owner: self.owner_global,
        };
        comm.ep().charge_owner_calc(positions.len());
        positions.iter().map(|&p| d.locate(set, p)).collect()
    }

    fn descriptor(&self, _comm: &mut Comm<'_>) -> SeqDesc {
        SeqDesc {
            n: self.n,
            owner: self.owner_global,
        }
    }

    fn pack(&self, ep: &mut Endpoint, addrs: &[LocalAddr], out: &mut Vec<T>) {
        out.extend(addrs.iter().map(|&a| self.data[a]));
        ep.charge_copy_bytes(addrs.len() * std::mem::size_of::<T>());
    }

    fn unpack(&mut self, ep: &mut Endpoint, addrs: &[LocalAddr], vals: &[T]) {
        for (&a, &v) in addrs.iter().zip(vals) {
            self.data[a] = v;
        }
        ep.charge_copy_bytes(addrs.len() * std::mem::size_of::<T>());
    }

    fn pack_runs(&self, ep: &mut Endpoint, runs: &crate::schedule::AddrRuns, out: &mut Vec<T>) {
        for &(start, len) in runs.runs() {
            out.extend_from_slice(&self.data[start..start + len]);
        }
        ep.charge_copy_bytes(runs.len() * std::mem::size_of::<T>());
    }

    fn unpack_runs(&mut self, ep: &mut Endpoint, runs: &crate::schedule::AddrRuns, vals: &[T]) {
        assert_eq!(runs.len(), vals.len());
        let mut off = 0;
        for &(start, len) in runs.runs() {
            self.data[start..start + len].copy_from_slice(&vals[off..off + len]);
            off += len;
        }
        ep.charge_copy_bytes(runs.len() * std::mem::size_of::<T>());
    }

    fn pack_runs_wire(&self, ep: &mut Endpoint, runs: &crate::schedule::AddrRuns, out: &mut Vec<u8>)
    where
        T: Wire,
    {
        for &(start, len) in runs.runs() {
            T::write_slice(&self.data[start..start + len], out);
        }
        ep.charge_copy_bytes(runs.len() * std::mem::size_of::<T>());
    }

    fn unpack_runs_wire(
        &mut self,
        ep: &mut Endpoint,
        runs: &crate::schedule::AddrRuns,
        r: &mut WireReader<'_>,
    ) -> Result<(), SimError>
    where
        T: Wire,
    {
        for &(start, len) in runs.runs() {
            T::read_slice(r, &mut self.data[start..start + len])?;
        }
        ep.charge_copy_bytes(runs.len() * std::mem::size_of::<T>());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{compute_schedule, BuildMethod};
    use crate::datamove::data_move;
    use crate::testlib::BlockVec;
    use crate::Side;
    use mcsim::group::Group;
    use mcsim::model::MachineModel;
    use mcsim::world::World;

    #[test]
    fn gather_distributed_vector_to_rank_zero() {
        let n = 18;
        let world = World::with_model(3, MachineModel::zero());
        let out = world.run(move |ep| {
            let g = Group::world(3);
            let b = BlockVec::create(&g, ep.rank(), n, |i| i as f64 * 3.0);
            let mut s = SeqVec::<f64>::new(ep.rank(), 0, n);
            let set = SetOfRegions::single(IndexSet::new((0..n).collect()));
            let sched = compute_schedule(
                ep,
                &g,
                &g,
                Some(Side::new(&b, &set)),
                &g,
                Some(Side::new(&s, &set)),
                BuildMethod::Cooperation,
            )
            .unwrap();
            data_move(ep, &sched, &b, &mut s);
            s.values().to_vec()
        });
        assert_eq!(
            out.results[0],
            (0..n).map(|i| i as f64 * 3.0).collect::<Vec<_>>()
        );
        assert!(out.results[1].is_empty());
    }

    #[test]
    fn scatter_from_owner_with_reversed_schedule() {
        let n = 12;
        let world = World::with_model(2, MachineModel::zero());
        let out = world.run(move |ep| {
            let g = Group::world(2);
            let mut b = BlockVec::create(&g, ep.rank(), n, |_| 0.0);
            let mut s = SeqVec::<f64>::new(ep.rank(), 1, n);
            if ep.rank() == 1 {
                for (i, v) in s.values_mut().iter_mut().enumerate() {
                    *v = 100.0 + i as f64;
                }
            }
            let set = SetOfRegions::single(IndexSet::new((0..n).collect()));
            // Build the gather schedule, then run it backwards to scatter.
            let gather = compute_schedule(
                ep,
                &g,
                &g,
                Some(Side::new(&b, &set)),
                &g,
                Some(Side::new(&s, &set)),
                BuildMethod::Duplication,
            )
            .unwrap();
            data_move(ep, &gather.reversed(), &s, &mut b);
            b.data.clone()
        });
        let all: Vec<f64> = out.results.into_iter().flatten().collect();
        for (i, v) in all.into_iter().enumerate() {
            assert_eq!(v, 100.0 + i as f64);
        }
    }
}
