//! The paper-flavoured applications-programmer interface.
//!
//! The paper's Figure 9 shows the C/Fortran-style entry points
//! (`CreateRegion_HPF`, `MC_NewSetOfRegion`, `MC_AddRegion2Set`,
//! `MC_ComputeSched`, `MC_DataMoveSend`, `MC_DataMoveRecv`).  This module
//! provides the same vocabulary as thin wrappers over the idiomatic Rust
//! API, so the example in the paper transliterates almost line for line:
//!
//! ```text
//! regionId  = CreateRegion_HPF(2, Rleft, Rright)      ← create_region_hpf
//! setId     = MC_NewSetOfRegion()                     ← mc_new_set_of_region
//! MC_AddRegion2Set(regionId, setId)                   ← mc_add_region_2_set
//! schedId   = MC_ComputeSched(HPF, B, setId)          ← mc_compute_sched_*
//! MC_DataMoveSend(schedId, B)                         ← mc_data_move_send
//! MC_DataMoveRecv(schedId, A)                         ← mc_data_move_recv
//! ```
//!
//! Regions in the paper are specified with Fortran-style *inclusive*
//! bounds; [`create_region_hpf`] performs that conversion.

use mcsim::group::Group;
use mcsim::prelude::Endpoint;
use mcsim::wire::Wire;

use crate::adapter::{McObject, Side};
use crate::build::{compute_schedule, BuildMethod};
use crate::datamove;
use crate::error::McError;
use crate::region::{DimSlice, Region, RegularSection};
use crate::schedule::Schedule;
use crate::setof::SetOfRegions;

/// `CreateRegion_HPF(ndim, left, right)`: an HPF array-section region from
/// Fortran-style **inclusive** 1-based bounds, as in the paper's example
/// (`Rleft(1)=50 ... Rright(1)=100` describes `B(50:100, ...)`).
pub fn create_region_hpf(left: &[usize], right: &[usize]) -> RegularSection {
    assert_eq!(left.len(), right.len(), "bound arrays must pair up");
    assert!(!left.is_empty(), "need at least one dimension");
    RegularSection::new(
        left.iter()
            .zip(right)
            .map(|(&l, &r)| {
                assert!(l >= 1, "Fortran bounds are 1-based");
                assert!(r >= l, "right bound below left bound");
                // 1-based inclusive -> 0-based half-open.
                DimSlice::new(l - 1, r)
            })
            .collect(),
    )
}

/// `MC_NewSetOfRegion()`: an empty SetOfRegions.
pub fn mc_new_set_of_region<R: Region>() -> SetOfRegions<R> {
    SetOfRegions::new()
}

/// `MC_AddRegion2Set(regionId, setId)`.
pub fn mc_add_region_2_set<R: Region>(region: R, set: &mut SetOfRegions<R>) {
    set.add(region);
}

/// `MC_ComputeSched` for a transfer within one program (the Figure 2
/// scenario: both data structures in the same data-parallel program).
#[allow(clippy::too_many_arguments)]
pub fn mc_compute_sched<T, S, D>(
    ep: &mut Endpoint,
    prog: &Group,
    src_obj: &S,
    src_set: &SetOfRegions<S::Region>,
    dst_obj: &D,
    dst_set: &SetOfRegions<D::Region>,
) -> Result<Schedule, McError>
where
    T: Copy,
    S: McObject<T>,
    D: McObject<T>,
{
    compute_schedule(
        ep,
        prog,
        prog,
        Some(Side::new(src_obj, src_set)),
        prog,
        Some(Side::new(dst_obj, dst_set)),
        BuildMethod::Cooperation,
    )
}

/// `MC_ComputeSched` called from the *source* program of a two-program
/// transfer (the Figure 3 scenario).
pub fn mc_compute_sched_src<T, S, D>(
    ep: &mut Endpoint,
    union: &Group,
    src_prog: &Group,
    src_obj: &S,
    src_set: &SetOfRegions<S::Region>,
    dst_prog: &Group,
) -> Result<Schedule, McError>
where
    T: Copy,
    S: McObject<T>,
    D: McObject<T>,
{
    compute_schedule::<T, S, D>(
        ep,
        union,
        src_prog,
        Some(Side::new(src_obj, src_set)),
        dst_prog,
        None,
        BuildMethod::Cooperation,
    )
}

/// `MC_ComputeSched` called from the *destination* program of a
/// two-program transfer.
pub fn mc_compute_sched_dst<T, S, D>(
    ep: &mut Endpoint,
    union: &Group,
    src_prog: &Group,
    dst_prog: &Group,
    dst_obj: &D,
    dst_set: &SetOfRegions<D::Region>,
) -> Result<Schedule, McError>
where
    T: Copy,
    S: McObject<T>,
    D: McObject<T>,
{
    compute_schedule::<T, S, D>(
        ep,
        union,
        src_prog,
        None,
        dst_prog,
        Some(Side::new(dst_obj, dst_set)),
        BuildMethod::Cooperation,
    )
}

/// `MC_Copy(B1, A1)`: same-program data copy with a prebuilt schedule.
pub fn mc_copy<T, S, D>(ep: &mut Endpoint, sched: &Schedule, src: &S, dst: &mut D)
where
    T: Copy + Wire,
    S: McObject<T>,
    D: McObject<T>,
{
    datamove::data_move(ep, sched, src, dst);
}

/// `MC_DataMoveSend(schedId, B)`.
pub fn mc_data_move_send<T, S>(ep: &mut Endpoint, sched: &Schedule, src: &S)
where
    T: Copy + Wire,
    S: McObject<T>,
{
    datamove::data_move_send(ep, sched, src);
}

/// `MC_DataMoveRecv(schedId, A)`.
pub fn mc_data_move_recv<T, D>(ep: &mut Endpoint, sched: &Schedule, dst: &mut D)
where
    T: Copy + Wire,
    D: McObject<T>,
{
    datamove::data_move_recv(ep, sched, dst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testlib::BlockVec;
    use mcsim::model::MachineModel;
    use mcsim::world::World;

    #[test]
    fn fortran_inclusive_bounds_convert() {
        // The paper's source region: B(50:100, 50:100) -> 51x51 elements.
        let r = create_region_hpf(&[50, 50], &[100, 100]);
        assert_eq!(r.len(), 51 * 51);
        assert_eq!(r.coords_of(0), vec![49, 49]);
        // Its destination: A(1:50, 10:60) -> 50x51 elements... the paper's
        // own example is actually 50x51 vs 51x51; our length check would
        // catch that mismatch at schedule time.
        let a = create_region_hpf(&[1, 10], &[50, 60]);
        assert_eq!(a.len(), 50 * 51);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_based_bounds_rejected() {
        let _ = create_region_hpf(&[0], &[5]);
    }

    #[test]
    fn paper_style_calls_end_to_end() {
        let world = World::with_model(2, MachineModel::zero());
        world.run(|ep| {
            let g = Group::world(2);
            let b = BlockVec::create(&g, ep.rank(), 20, |i| i as f64);
            let mut a = BlockVec::create(&g, ep.rank(), 20, |_| 0.0);

            // The Figure 9 call sequence.
            let region_src = crate::region::IndexSet::new((10..20).collect());
            let mut src_set = mc_new_set_of_region();
            mc_add_region_2_set(region_src, &mut src_set);
            let region_dst = crate::region::IndexSet::new((0..10).collect());
            let mut dst_set = mc_new_set_of_region();
            mc_add_region_2_set(region_dst, &mut dst_set);

            let sched = mc_compute_sched(ep, &g, &b, &src_set, &a, &dst_set).unwrap();
            mc_copy(ep, &sched, &b, &mut a);

            for (addr, &v) in a.data.iter().enumerate() {
                let g0 = a.desc.members.len(); // block size = 10 per rank
                let _ = g0;
                let global = if ep.rank() == 0 { addr } else { 10 + addr };
                let expect = if global < 10 {
                    10.0 + global as f64
                } else {
                    0.0
                };
                assert_eq!(v, expect, "a[{global}]");
            }
        });
    }
}
