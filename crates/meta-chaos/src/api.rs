//! The paper-flavoured applications-programmer interface.
//!
//! The paper's Figure 9 shows the C/Fortran-style entry points
//! (`CreateRegion_HPF`, `MC_NewSetOfRegion`, `MC_AddRegion2Set`,
//! `MC_ComputeSched`, `MC_DataMoveSend`, `MC_DataMoveRecv`).  This module
//! provides the same vocabulary as thin wrappers over the idiomatic Rust
//! API, so the example in the paper transliterates almost line for line:
//!
//! ```text
//! regionId  = CreateRegion_HPF(2, Rleft, Rright)      ← create_region_hpf
//! setId     = MC_NewSetOfRegion()                     ← mc_new_set_of_region
//! MC_AddRegion2Set(regionId, setId)                   ← mc_add_region_2_set
//! schedId   = MC_ComputeSched(HPF, B, setId)          ← mc_compute_sched_*
//! MC_DataMoveSend(schedId, B)                         ← mc_data_move_send
//! MC_DataMoveRecv(schedId, A)                         ← mc_data_move_recv
//! ```
//!
//! Regions in the paper are specified with Fortran-style *inclusive*
//! bounds; [`create_region_hpf`] performs that conversion.

use std::collections::HashMap;

use mcsim::group::{Comm, Group};
use mcsim::prelude::Endpoint;
use mcsim::wire::Wire;

use crate::adapter::{McObject, Side};
use crate::build::{compute_schedule, BuildMethod};
use crate::datamove;
use crate::error::McError;
use crate::region::{DimSlice, Region, RegularSection};
use crate::schedule::Schedule;
use crate::setof::SetOfRegions;

/// Scratch key of the per-rank memo of built schedules, keyed by a
/// transfer fingerprint agreed across the union group.  Lives for one
/// `World::run` (each run gets fresh endpoints), reproducing the paper's
/// computed-once, reused-many-times inspector economics as a measurable
/// cache.
const SCHED_CACHE_KEY: u32 = 0x5343_4143; // "SCAC"

type SchedCache = HashMap<u64, Schedule>;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a accumulation over `bytes` into `h`.
fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// Fold a group's identity into a fingerprint.
fn fnv_group(h: &mut u64, g: &Group) {
    for &m in g.members() {
        fnv1a(h, &(m as u64).to_le_bytes());
    }
    fnv1a(h, &g.context().to_le_bytes());
}

/// Combine every rank's local fingerprint into one key (collective over
/// `union`) and probe the cache.  Folding *all* ranks' fingerprints in
/// makes the hit/miss decision identical everywhere even if one rank's
/// inputs diverge, so a hit (which skips the build's communication) can
/// never deadlock against a miss.
fn sched_cache_probe(ep: &mut Endpoint, union: &Group, local_fp: u64) -> (u64, Option<Schedule>) {
    let all: Vec<u64> = Comm::borrowed(ep, union).allgather_t(local_fp);
    let mut key = FNV_OFFSET;
    for v in all {
        fnv1a(&mut key, &v.to_le_bytes());
    }
    let hit = ep.scratch::<SchedCache>(SCHED_CACHE_KEY).get(&key).cloned();
    ep.record_sched_cache(hit.is_some());
    ep.mark(|| match &hit {
        Some(s) => format!("sched_cache hit key={key:#018x} seq={}", s.seq()),
        None => format!("sched_cache miss key={key:#018x}"),
    });
    (key, hit)
}

fn sched_cache_insert(ep: &mut Endpoint, key: u64, sched: &Schedule) {
    ep.scratch::<SchedCache>(SCHED_CACHE_KEY)
        .insert(key, sched.clone());
}

/// Number of schedules this rank has memoized (diagnostics/tests).
pub fn mc_sched_cache_len(ep: &mut Endpoint) -> usize {
    ep.scratch::<SchedCache>(SCHED_CACHE_KEY).len()
}

/// Drop every memoized schedule on this rank.  Collective discipline is the
/// caller's problem: clear on all ranks or on none (benchmarks use this to
/// re-measure cold builds).
pub fn mc_sched_cache_clear(ep: &mut Endpoint) {
    ep.scratch::<SchedCache>(SCHED_CACHE_KEY).clear();
}

/// `CreateRegion_HPF(ndim, left, right)`: an HPF array-section region from
/// Fortran-style **inclusive** 1-based bounds, as in the paper's example
/// (`Rleft(1)=50 ... Rright(1)=100` describes `B(50:100, ...)`).
pub fn create_region_hpf(left: &[usize], right: &[usize]) -> RegularSection {
    assert_eq!(left.len(), right.len(), "bound arrays must pair up");
    assert!(!left.is_empty(), "need at least one dimension");
    RegularSection::new(
        left.iter()
            .zip(right)
            .map(|(&l, &r)| {
                assert!(l >= 1, "Fortran bounds are 1-based");
                assert!(r >= l, "right bound below left bound");
                // 1-based inclusive -> 0-based half-open.
                DimSlice::new(l - 1, r)
            })
            .collect(),
    )
}

/// `MC_NewSetOfRegion()`: an empty SetOfRegions.
pub fn mc_new_set_of_region<R: Region>() -> SetOfRegions<R> {
    SetOfRegions::new()
}

/// `MC_AddRegion2Set(regionId, setId)`.
pub fn mc_add_region_2_set<R: Region>(region: R, set: &mut SetOfRegions<R>) {
    set.add(region);
}

/// `MC_ComputeSched` for a transfer within one program (the Figure 2
/// scenario: both data structures in the same data-parallel program).
///
/// Memoized: the transfer is fingerprinted over both distribution
/// descriptors, both region sets and the group; a repeat call with
/// identical inputs returns the cached schedule without running the
/// inspector (hits/misses are counted in
/// [`StatsSnapshot`](mcsim::stats::StatsSnapshot)).
#[allow(clippy::too_many_arguments)]
pub fn mc_compute_sched<T, S, D>(
    ep: &mut Endpoint,
    prog: &Group,
    src_obj: &S,
    src_set: &SetOfRegions<S::Region>,
    dst_obj: &D,
    dst_set: &SetOfRegions<D::Region>,
) -> Result<Schedule, McError>
where
    T: Copy,
    S: McObject<T>,
    D: McObject<T>,
{
    let mut fp = FNV_OFFSET;
    {
        let mut pcomm = Comm::borrowed(ep, prog);
        fnv1a(&mut fp, &src_obj.descriptor(&mut pcomm).to_bytes());
        fnv1a(&mut fp, &dst_obj.descriptor(&mut pcomm).to_bytes());
    }
    fnv1a(&mut fp, &src_set.to_bytes());
    fnv1a(&mut fp, &dst_set.to_bytes());
    // Distribution epochs participate in the key, so redistributing either
    // object transparently invalidates the cached schedule and forces a
    // rebuild instead of handing back a stale one.
    fnv1a(&mut fp, &src_obj.epoch().to_le_bytes());
    fnv1a(&mut fp, &dst_obj.epoch().to_le_bytes());
    fnv_group(&mut fp, prog);
    let (key, hit) = sched_cache_probe(ep, prog, fp);
    if let Some(sched) = hit {
        return Ok(sched);
    }
    let sched = compute_schedule(
        ep,
        prog,
        prog,
        Some(Side::new(src_obj, src_set)),
        prog,
        Some(Side::new(dst_obj, dst_set)),
        BuildMethod::Cooperation,
    )?;
    sched_cache_insert(ep, key, &sched);
    Ok(sched)
}

/// Fold the parts of a two-program fingerprint every rank knows.
fn two_program_fp(union: &Group, src_prog: &Group, dst_prog: &Group) -> u64 {
    let mut fp = FNV_OFFSET;
    fnv_group(&mut fp, union);
    fnv_group(&mut fp, src_prog);
    fnv_group(&mut fp, dst_prog);
    fp
}

/// `MC_ComputeSched` called from the *source* program of a two-program
/// transfer (the Figure 3 scenario).
///
/// Memoized like [`mc_compute_sched`]: each rank fingerprints its own
/// side's descriptor and regions, and the cache key folds every union
/// rank's fingerprint together, so both programs agree on hit vs. miss.
pub fn mc_compute_sched_src<T, S, D>(
    ep: &mut Endpoint,
    union: &Group,
    src_prog: &Group,
    src_obj: &S,
    src_set: &SetOfRegions<S::Region>,
    dst_prog: &Group,
) -> Result<Schedule, McError>
where
    T: Copy,
    S: McObject<T>,
    D: McObject<T>,
{
    let mut fp = two_program_fp(union, src_prog, dst_prog);
    {
        let mut pcomm = Comm::borrowed(ep, src_prog);
        fnv1a(&mut fp, &src_obj.descriptor(&mut pcomm).to_bytes());
    }
    fnv1a(&mut fp, &src_set.to_bytes());
    fnv1a(&mut fp, &src_obj.epoch().to_le_bytes());
    let (key, hit) = sched_cache_probe(ep, union, fp);
    if let Some(sched) = hit {
        return Ok(sched);
    }
    let sched = compute_schedule::<T, S, D>(
        ep,
        union,
        src_prog,
        Some(Side::new(src_obj, src_set)),
        dst_prog,
        None,
        BuildMethod::Cooperation,
    )?;
    sched_cache_insert(ep, key, &sched);
    Ok(sched)
}

/// `MC_ComputeSched` called from the *destination* program of a
/// two-program transfer.  Memoized; see [`mc_compute_sched_src`].
pub fn mc_compute_sched_dst<T, S, D>(
    ep: &mut Endpoint,
    union: &Group,
    src_prog: &Group,
    dst_prog: &Group,
    dst_obj: &D,
    dst_set: &SetOfRegions<D::Region>,
) -> Result<Schedule, McError>
where
    T: Copy,
    S: McObject<T>,
    D: McObject<T>,
{
    let mut fp = two_program_fp(union, src_prog, dst_prog);
    {
        let mut pcomm = Comm::borrowed(ep, dst_prog);
        fnv1a(&mut fp, &dst_obj.descriptor(&mut pcomm).to_bytes());
    }
    fnv1a(&mut fp, &dst_set.to_bytes());
    fnv1a(&mut fp, &dst_obj.epoch().to_le_bytes());
    let (key, hit) = sched_cache_probe(ep, union, fp);
    if let Some(sched) = hit {
        return Ok(sched);
    }
    let sched = compute_schedule::<T, S, D>(
        ep,
        union,
        src_prog,
        None,
        dst_prog,
        Some(Side::new(dst_obj, dst_set)),
        BuildMethod::Cooperation,
    )?;
    sched_cache_insert(ep, key, &sched);
    Ok(sched)
}

/// `MC_Copy(B1, A1)`: same-program data copy with a prebuilt schedule.
///
/// Rejects a schedule built before either object was redistributed with
/// [`McError::StaleSchedule`] — rebuild via `mc_compute_sched`, whose
/// epoch-keyed cache misses exactly when this error would fire.
pub fn mc_copy<T, S, D>(
    ep: &mut Endpoint,
    sched: &Schedule,
    src: &S,
    dst: &mut D,
) -> Result<(), McError>
where
    T: Copy + Wire,
    S: McObject<T>,
    D: McObject<T>,
{
    datamove::try_data_move(ep, sched, src, dst)
}

/// `MC_DataMoveSend(schedId, B)`.
///
/// Runs over the reliable transport: frames are checksummed, sequence
/// numbered and retransmitted as needed, so the transfer survives any
/// [`mcsim::FaultPlan`] short of a permanent partition.  Recoverable
/// failures come back as [`McError::PeerTimeout`] (retry budget exhausted)
/// or [`McError::PeerFailed`] (peer crashed) instead of hanging the rank.
pub fn mc_data_move_send<T, S>(ep: &mut Endpoint, sched: &Schedule, src: &S) -> Result<(), McError>
where
    T: Copy + Wire,
    S: McObject<T>,
{
    datamove::data_move_send(ep, sched, src)
}

/// `MC_DataMoveRecv(schedId, A)`.
///
/// Reliable, like [`mc_data_move_send`]: delivered frames are verified
/// and deduplicated, and peer crash / partition surface as recoverable
/// [`McError`] variants.
pub fn mc_data_move_recv<T, D>(
    ep: &mut Endpoint,
    sched: &Schedule,
    dst: &mut D,
) -> Result<(), McError>
where
    T: Copy + Wire,
    D: McObject<T>,
{
    datamove::data_move_recv(ep, sched, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testlib::BlockVec;
    use mcsim::model::MachineModel;
    use mcsim::world::World;

    #[test]
    fn fortran_inclusive_bounds_convert() {
        // The paper's source region: B(50:100, 50:100) -> 51x51 elements.
        let r = create_region_hpf(&[50, 50], &[100, 100]);
        assert_eq!(r.len(), 51 * 51);
        assert_eq!(r.coords_of(0), vec![49, 49]);
        // Its destination: A(1:50, 10:60) -> 50x51 elements... the paper's
        // own example is actually 50x51 vs 51x51; our length check would
        // catch that mismatch at schedule time.
        let a = create_region_hpf(&[1, 10], &[50, 60]);
        assert_eq!(a.len(), 50 * 51);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_based_bounds_rejected() {
        let _ = create_region_hpf(&[0], &[5]);
    }

    #[test]
    fn paper_style_calls_end_to_end() {
        let world = World::with_model(2, MachineModel::zero());
        world.run(|ep| {
            let g = Group::world(2);
            let b = BlockVec::create(&g, ep.rank(), 20, |i| i as f64);
            let mut a = BlockVec::create(&g, ep.rank(), 20, |_| 0.0);

            // The Figure 9 call sequence.
            let region_src = crate::region::IndexSet::new((10..20).collect());
            let mut src_set = mc_new_set_of_region();
            mc_add_region_2_set(region_src, &mut src_set);
            let region_dst = crate::region::IndexSet::new((0..10).collect());
            let mut dst_set = mc_new_set_of_region();
            mc_add_region_2_set(region_dst, &mut dst_set);

            let sched = mc_compute_sched(ep, &g, &b, &src_set, &a, &dst_set).unwrap();
            mc_copy(ep, &sched, &b, &mut a).unwrap();

            for (addr, &v) in a.data.iter().enumerate() {
                let g0 = a.desc.members.len(); // block size = 10 per rank
                let _ = g0;
                let global = if ep.rank() == 0 { addr } else { 10 + addr };
                let expect = if global < 10 {
                    10.0 + global as f64
                } else {
                    0.0
                };
                assert_eq!(v, expect, "a[{global}]");
            }
        });
    }
}
