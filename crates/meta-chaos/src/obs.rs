//! Observability for the Meta-Chaos layer: phase spans, provenance
//! marks, and the abort post-mortem.
//!
//! The span instrumentation lives inline in [`crate::build`],
//! [`crate::api`], [`crate::datamove`] and [`crate::coupling`], producing
//! the hierarchy `transfer > {inspect, manifest, pack, wire, stage,
//! commit, abort}` on each rank's timeline (see `mcsim::span`).  This
//! module owns what happens when a transfer *fails*: every abort site
//! calls [`record_abort`], which snapshots the endpoint's flight
//! recorder — the last [`mcsim::span::FLIGHT_RING_CAP`] events, always
//! recorded — into a thread-local (per-rank) [`AbortReport`].  The SPMD
//! closure that observed the `McError` can then pick the report up with
//! [`take_last_abort`] and attach it to whatever error surface it uses,
//! turning a bare error code into a post-mortem: which pair, which
//! epoch, which protocol events led up to the failure.
//!
//! `McError` itself stays a plain, `PartialEq`-comparable value — the
//! dump rides next to it, not inside it.

use std::cell::RefCell;

use mcsim::export::jsonl_line;
use mcsim::prelude::Endpoint;
use mcsim::trace::TraceEvent;

use crate::error::McError;

/// Post-mortem for one aborted transfer on one rank.
#[derive(Debug, Clone, PartialEq)]
pub struct AbortReport {
    /// The rank that aborted.
    pub rank: usize,
    /// Virtual time of the abort.
    pub at: f64,
    /// `Display` rendering of the `McError` that caused it.
    pub error: String,
    /// Flight-recorder contents at the moment of the abort, oldest
    /// first: the last spans, sends/receives, faults, retransmits and
    /// marks that led up to the failure.
    pub events: Vec<TraceEvent>,
}

impl AbortReport {
    /// Human-readable post-mortem: the error, then one line per
    /// recorded event (JSONL, same schema as the exporters).
    pub fn render(&self) -> String {
        let mut out = format!(
            "rank {} aborted at t={:.9}: {}\nflight recorder ({} events):\n",
            self.rank,
            self.at,
            self.error,
            self.events.len()
        );
        for e in &self.events {
            out.push_str("  ");
            out.push_str(&jsonl_line(self.rank, e));
            out.push('\n');
        }
        out
    }
}

thread_local! {
    /// The most recent abort on this rank (rank threads are OS threads,
    /// so thread-local is rank-local).
    static LAST_ABORT: RefCell<Option<AbortReport>> = const { RefCell::new(None) };
}

/// Capture the flight recorder into this rank's [`AbortReport`].  Called
/// by every abort site in the data-move path; also records an `abort`
/// mark so the dump itself ends with the failure.
pub fn record_abort(ep: &mut Endpoint, err: &McError) {
    ep.mark(|| format!("abort error={err}"));
    let report = AbortReport {
        rank: ep.rank(),
        at: ep.clock(),
        error: err.to_string(),
        events: ep.flight_dump(),
    };
    LAST_ABORT.with(|c| *c.borrow_mut() = Some(report));
}

/// Take (and clear) this rank's most recent abort report.
pub fn take_last_abort() -> Option<AbortReport> {
    LAST_ABORT.with(|c| c.borrow_mut().take())
}

/// Render `err` together with this rank's most recent abort report (if
/// one was captured), consuming the report.  The one-stop "error report
/// with the dump attached" for callers that just want text.
pub fn report_with_post_mortem(err: &McError) -> String {
    match take_last_abort() {
        Some(r) => format!("{err}\n{}", r.render()),
        None => err.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim::span::SpanId;

    #[test]
    fn report_renders_error_and_events() {
        let r = AbortReport {
            rank: 3,
            at: 1.5,
            error: "boom".into(),
            events: vec![
                TraceEvent::SpanEnd {
                    at: 1.0,
                    id: SpanId(7),
                },
                TraceEvent::Mark {
                    at: 1.5,
                    label: "abort error=boom".into(),
                },
            ],
        };
        let text = r.render();
        assert!(text.contains("rank 3 aborted"));
        assert!(text.contains("boom"));
        assert!(text.contains("span_end"));
        assert!(text.contains("abort error=boom"));
    }

    #[test]
    fn take_clears_the_slot() {
        LAST_ABORT.with(|c| {
            *c.borrow_mut() = Some(AbortReport {
                rank: 0,
                at: 0.0,
                error: "x".into(),
                events: vec![],
            })
        });
        assert!(take_last_abort().is_some());
        assert!(take_last_abort().is_none());
    }
}
