//! Observability for the Meta-Chaos layer: phase spans, provenance
//! marks, and the abort post-mortem.
//!
//! The span instrumentation lives inline in [`crate::build`],
//! [`crate::api`], [`crate::datamove`] and [`crate::coupling`], producing
//! the hierarchy `transfer > {inspect, manifest, pack, wire, stage,
//! commit, abort}` on each rank's timeline (see `mcsim::span`).  This
//! module owns what happens when a transfer *fails*: every abort site
//! calls [`record_abort`], which snapshots the endpoint's flight
//! recorder — the last [`mcsim::span::FLIGHT_RING_CAP`] events, always
//! recorded — into a per-rank, endpoint-scratch-keyed [`AbortReport`]
//! (not a thread-local: under the cooperative runner one OS thread hosts
//! many ranks).  The SPMD
//! closure that observed the `McError` can then pick the report up with
//! [`take_last_abort`] and attach it to whatever error surface it uses,
//! turning a bare error code into a post-mortem: which pair, which
//! epoch, which protocol events led up to the failure.
//!
//! `McError` itself stays a plain, `PartialEq`-comparable value — the
//! dump rides next to it, not inside it.

use std::collections::BTreeMap;

use mcsim::analyze::CriticalPathReport;
use mcsim::export::jsonl_line;
use mcsim::prelude::Endpoint;
use mcsim::trace::TraceEvent;

use crate::error::McError;

/// Post-mortem for one aborted transfer on one rank.
#[derive(Debug, Clone, PartialEq)]
pub struct AbortReport {
    /// The rank that aborted.
    pub rank: usize,
    /// Virtual time of the abort.
    pub at: f64,
    /// `Display` rendering of the `McError` that caused it.
    pub error: String,
    /// Flight-recorder contents at the moment of the abort, oldest
    /// first: the last spans, sends/receives, faults, retransmits and
    /// marks that led up to the failure.
    pub events: Vec<TraceEvent>,
}

impl AbortReport {
    /// Human-readable post-mortem: the error, then one line per
    /// recorded event (JSONL, same schema as the exporters).
    pub fn render(&self) -> String {
        let mut out = format!(
            "rank {} aborted at t={:.9}: {}\nflight recorder ({} events):\n",
            self.rank,
            self.at,
            self.error,
            self.events.len()
        );
        for e in &self.events {
            out.push_str("  ");
            out.push_str(&jsonl_line(self.rank, e));
            out.push('\n');
        }
        out
    }
}

/// Critical-path attribution folded up to *library pairs* — the paper's
/// unit of interoperability (Multiblock↔HPF, …).  A thin layer over
/// [`mcsim::analyze`]: the simulator only knows ranks, so the caller
/// supplies the rank→library labeling (the bench and fuzz harnesses
/// know which ranks run which library).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PairAttribution {
    /// Per (source library, destination library): critical-path seconds
    /// per taxonomy phase, summed over the transfers whose path ran
    /// from a rank of the first library to a rank of the second.
    pub pairs: BTreeMap<(String, String), BTreeMap<&'static str, f64>>,
    /// Per (source library, destination library): wire + retransmit
    /// seconds on the critical path, folded from the per-link table.
    pub link_wire: BTreeMap<(String, String), f64>,
}

impl PairAttribution {
    /// Human-readable `src->dst phase seconds` lines, pair-ordered.
    pub fn lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        for ((src, dst), phases) in &self.pairs {
            for (phase, secs) in phases {
                out.push(format!("{src}->{dst} {phase} {secs:.9}"));
            }
        }
        for ((src, dst), secs) in &self.link_wire {
            out.push(format!("{src}->{dst} link_wire {secs:.9}"));
        }
        out
    }
}

/// Fold a run's critical-path report up to library pairs.  `lib_of`
/// labels each global rank with the library it runs; a transfer's
/// phases are attributed to the (start-rank library, end-rank library)
/// pair its critical path connected.
pub fn attribute_pairs(
    report: &CriticalPathReport,
    lib_of: impl Fn(usize) -> String,
) -> PairAttribution {
    let mut out = PairAttribution::default();
    for t in &report.transfers {
        let key = (lib_of(t.start_rank), lib_of(t.end_rank));
        let acc = out.pairs.entry(key).or_default();
        for (phase, secs) in &t.phases {
            *acc.entry(phase).or_insert(0.0) += secs;
        }
    }
    for ((src, dst), secs) in &report.per_link {
        *out.link_wire
            .entry((lib_of(*src), lib_of(*dst)))
            .or_insert(0.0) += secs;
    }
    out
}

/// Scratch key of the per-rank last-abort slot (endpoint scratch rather
/// than a thread-local, so it stays rank-local under the cooperative
/// runner where one OS thread hosts many ranks).
const LAST_ABORT_KEY: u32 = 0x4142_5254; // "ABRT"

/// Capture the flight recorder into this rank's [`AbortReport`].  Called
/// by every abort site in the data-move path; also records an `abort`
/// mark so the dump itself ends with the failure.
pub fn record_abort(ep: &mut Endpoint, err: &McError) {
    ep.mark(|| format!("abort error={err}"));
    let report = AbortReport {
        rank: ep.rank(),
        at: ep.clock(),
        error: err.to_string(),
        events: ep.flight_dump(),
    };
    *ep.scratch::<Option<AbortReport>>(LAST_ABORT_KEY) = Some(report);
}

/// Take (and clear) this rank's most recent abort report.
pub fn take_last_abort(ep: &mut Endpoint) -> Option<AbortReport> {
    ep.scratch::<Option<AbortReport>>(LAST_ABORT_KEY).take()
}

/// Render `err` together with this rank's most recent abort report (if
/// one was captured), consuming the report.  The one-stop "error report
/// with the dump attached" for callers that just want text.
pub fn report_with_post_mortem(ep: &mut Endpoint, err: &McError) -> String {
    match take_last_abort(ep) {
        Some(r) => format!("{err}\n{}", r.render()),
        None => err.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim::span::SpanId;

    #[test]
    fn report_renders_error_and_events() {
        let r = AbortReport {
            rank: 3,
            at: 1.5,
            error: "boom".into(),
            events: vec![
                TraceEvent::SpanEnd {
                    at: 1.0,
                    id: SpanId(7),
                },
                TraceEvent::Mark {
                    at: 1.5,
                    label: "abort error=boom".into(),
                },
            ],
        };
        let text = r.render();
        assert!(text.contains("rank 3 aborted"));
        assert!(text.contains("boom"));
        assert!(text.contains("span_end"));
        assert!(text.contains("abort error=boom"));
    }

    #[test]
    fn pair_attribution_folds_ranks_to_libraries() {
        use mcsim::analyze::TransferPath;
        let mut report = CriticalPathReport::default();
        let mut phases = BTreeMap::new();
        phases.insert("pack", 1.0);
        phases.insert("wire", 2.0);
        report.transfers.push(TransferPath {
            seq: 1,
            occurrence: 0,
            span_begin: 0.0,
            start: 0.0,
            end: 3.0,
            end_rank: 2,
            start_rank: 0,
            hops: 1,
            segments: 2,
            phases,
        });
        report.per_link.insert((0, 2), 2.0);
        let lib = |r: usize| {
            if r < 2 {
                "multiblock".to_string()
            } else {
                "hpf".to_string()
            }
        };
        let pa = attribute_pairs(&report, lib);
        let key = ("multiblock".to_string(), "hpf".to_string());
        assert!((pa.pairs[&key]["wire"] - 2.0).abs() < 1e-12);
        assert!((pa.pairs[&key]["pack"] - 1.0).abs() < 1e-12);
        assert!((pa.link_wire[&key] - 2.0).abs() < 1e-12);
        assert!(pa
            .lines()
            .iter()
            .any(|l| l.starts_with("multiblock->hpf wire")));
    }

    #[test]
    fn take_clears_the_slot() {
        use mcsim::model::MachineModel;
        use mcsim::world::World;
        let world = World::with_model(1, MachineModel::zero());
        let out = world.run(|ep| {
            record_abort(ep, &McError::Transport("x".into()));
            let first = take_last_abort(ep).is_some();
            let second = take_last_abort(ep).is_none();
            (first, second)
        });
        assert_eq!(out.results[0], (true, true));
    }
}
