//! The library interface (paper §4.1.3).
//!
//! To join the framework, a data-parallel library provides "a standard set
//! of inquiry functions": dereference elements of a SetOfRegions to owning
//! processor + local address, manipulate its Regions to build a
//! linearization, and pack/unpack elements to/from communication buffers.
//! [`McObject`] is that contract; [`McDescriptor`] is the shippable
//! distribution descriptor that enables the *duplication* schedule-build
//! strategy.
//!
//! The four workspace libraries (`multiblock`, `chaos`, `hpf`, `tulip`)
//! implement these traits; see the `custom_library` example for how little
//! a fifth library needs.

use mcsim::group::Comm;
use mcsim::prelude::Endpoint;
use mcsim::wire::Wire;

use crate::region::Region;
use crate::runs::{coalesce_owned, LocatedRun, OwnedRun};
use crate::schedule::AddrRuns;
use crate::setof::SetOfRegions;
use crate::LocalAddr;

/// Where one element lives: owning rank (global, world-wide) and local
/// address within that rank's storage for the data structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// Owning global rank.
    pub rank: usize,
    /// Offset within the owner's local storage.
    pub addr: LocalAddr,
}

/// A shippable description of a data structure's distribution, sufficient
/// to dereference any element *locally* (the duplication path, §5.1).
///
/// For regular distributions this is a few integers; for Chaos it is the
/// entire translation table — "the same size as the data array", which is
/// why the paper calls duplication impractical for Chaos across programs.
pub trait McDescriptor: Wire + Clone + Send {
    /// The Region type this descriptor understands.
    type Region: Region + Wire;

    /// Location of element `pos` of the linearization of `set`.
    fn locate(&self, set: &SetOfRegions<Self::Region>, pos: usize) -> Location;

    /// Locate every element of `set`, in linearization order.  The default
    /// calls [`Self::locate`] per element; libraries may override with a
    /// faster batch implementation.
    fn locate_all(&self, set: &SetOfRegions<Self::Region>) -> Vec<Location> {
        (0..set.total_len()).map(|p| self.locate(set, p)).collect()
    }

    /// Locate the run of consecutive linearization positions starting at
    /// `pos` that live contiguously (in one address progression) on one
    /// rank — at most `max_len` positions.
    ///
    /// The default answers a length-1 run from [`Self::locate`], which is
    /// always correct; regular descriptors override it with closed-form
    /// interval arithmetic so the duplication build walks O(regions) runs
    /// instead of O(elements) locations.  Implementations must return
    /// `1 <= len <= max_len`.
    fn locate_run(
        &self,
        set: &SetOfRegions<Self::Region>,
        pos: usize,
        max_len: usize,
    ) -> LocatedRun {
        debug_assert!(max_len >= 1);
        let loc = self.locate(set, pos);
        LocatedRun {
            pos,
            len: 1,
            rank: loc.rank,
            addr: loc.addr,
            stride: 1,
        }
    }

    /// Locate the span `start .. start + len` as a sorted, disjoint run
    /// list covering every position exactly once.  Built on
    /// [`Self::locate_run`], merging runs that continue each other (so a
    /// default length-1 implementation still yields maximal runs for
    /// regular stretches).
    fn locate_runs(
        &self,
        set: &SetOfRegions<Self::Region>,
        start: usize,
        len: usize,
    ) -> Vec<LocatedRun> {
        let mut out: Vec<LocatedRun> = Vec::new();
        let end = start + len;
        let mut pos = start;
        while pos < end {
            let run = self.locate_run(set, pos, end - pos);
            debug_assert!(run.pos == pos && run.len >= 1 && run.end() <= end);
            pos = run.end();
            let merged = match out.last_mut() {
                Some(last) => last.try_merge(&run),
                None => false,
            };
            if !merged {
                out.push(run);
            }
        }
        out
    }

    /// Charge the virtual clock for `n` descriptor-based locates.
    ///
    /// Default: two closed-form operations per element (resolve the
    /// linearization position to coordinates, then compute the owner).
    /// Descriptors that probe a replicated translation table override this
    /// with the table-probe cost — that difference is what makes the
    /// duplication build "about twice" cooperation when Chaos is involved
    /// (paper Table 2) yet cheaper than cooperation for regular–regular
    /// transfers (Table 5).
    fn charge_locates(&self, ep: &mut mcsim::prelude::Endpoint, n: usize) {
        ep.charge_owner_calc(2 * n);
    }
}

/// The interface functions a distributed data structure exports to
/// Meta-Chaos (one instance per rank of the owning program, SPMD).
pub trait McObject<T: Copy> {
    /// The library's Region type.
    type Region: Region + Wire;
    /// The library's distribution descriptor.
    type Descriptor: McDescriptor<Region = Self::Region>;

    /// Collective over the owning program (`comm`): dereference the
    /// elements of `set` and return, on each rank, the elements *this rank
    /// owns* as `(linearization position, local address)` pairs, sorted by
    /// position.
    ///
    /// Regular libraries answer from closed-form owner arithmetic with no
    /// communication; Chaos consults its distributed translation table
    /// (request–reply with the table owners).
    fn deref_owned(
        &self,
        comm: &mut Comm<'_>,
        set: &SetOfRegions<Self::Region>,
    ) -> Vec<(usize, LocalAddr)>;

    /// Collective over the owning program: as [`McObject::deref_owned`],
    /// but run-length compressed — sorted, disjoint
    /// `(pos_start, len, addr_start, stride)` runs covering exactly the
    /// elements this rank owns.
    ///
    /// The default dereferences element-wise and coalesces, which is
    /// always correct but still O(elements).  Regular libraries override
    /// it to emit one run per section row straight from owner arithmetic,
    /// making the inspector O(regions); Chaos coalesces consecutive
    /// translation-table entries and naturally degrades to length-1 runs.
    /// The virtual-clock charges must match [`McObject::deref_owned`] —
    /// the *dereference work* is the same, only its representation shrinks.
    fn deref_owned_runs(
        &self,
        comm: &mut Comm<'_>,
        set: &SetOfRegions<Self::Region>,
    ) -> Vec<OwnedRun> {
        coalesce_owned(&self.deref_owned(comm, set))
    }

    /// Collective over the owning program: locate *arbitrary*
    /// linearization positions of `set` — not just owned ones.  Each
    /// calling rank passes its own query list and receives `Location`s in
    /// query order.
    ///
    /// Regular libraries answer with closed-form arithmetic (no
    /// communication); Chaos performs another round trip through its
    /// distributed translation table.  The duplication build strategy
    /// calls this once per side, which is what makes it cost "about twice
    /// as much" as cooperation when a Chaos array is involved (paper
    /// §5.1) while remaining communication-free for regular–regular
    /// transfers (§5.3).
    fn locate_positions(
        &self,
        comm: &mut Comm<'_>,
        set: &SetOfRegions<Self::Region>,
        positions: &[usize],
    ) -> Vec<Location>;

    /// Collective over the owning program: produce a descriptor every rank
    /// of the program holds in full (a Chaos implementation gathers its
    /// table pieces here, and charges the clock accordingly).
    fn descriptor(&self, comm: &mut Comm<'_>) -> Self::Descriptor;

    /// Distribution epoch: a counter the library bumps every time this
    /// object is *redistributed* (Chaos `remap`, HPF `REDISTRIBUTE`,
    /// Multiblock `regrid`).  Schedules record the epochs they were built
    /// against; executors reject stale schedules with
    /// [`McError`](crate::McError)`::StaleSchedule` and the cached `mc_*`
    /// API folds epochs into its keys so a bump forces a rebuild.
    ///
    /// The default (constant 0) is correct for libraries whose objects are
    /// never redistributed in place.
    fn epoch(&self) -> u64 {
        0
    }

    /// Copy the elements at `addrs` (in order) into `out`.
    fn pack(&self, ep: &mut Endpoint, addrs: &[LocalAddr], out: &mut Vec<T>);

    /// Store `data` (in order) into the elements at `addrs`.
    fn unpack(&mut self, ep: &mut Endpoint, addrs: &[LocalAddr], data: &[T]);

    /// Copy the elements covered by run-compressed `runs` (in run order)
    /// into `out`.
    ///
    /// The default expands the runs and calls [`McObject::pack`], so
    /// existing libraries work unchanged.  Libraries whose local storage is
    /// a dense array (the regular ones: multiblock, hpf, tulip) override
    /// this with one `extend_from_slice` per run — the executor fast path
    /// that makes regular-section transfers a handful of `memcpy`s.
    fn pack_runs(&self, ep: &mut Endpoint, runs: &AddrRuns, out: &mut Vec<T>) {
        self.pack(ep, &runs.to_vec(), out);
    }

    /// Store `data` into the elements covered by `runs` (in run order).
    /// Bulk counterpart of [`McObject::unpack`]; same default/override
    /// contract as [`McObject::pack_runs`].
    fn unpack_runs(&mut self, ep: &mut Endpoint, runs: &AddrRuns, data: &[T]) {
        self.unpack(ep, &runs.to_vec(), data);
    }

    /// Encode the elements covered by `runs` straight into a wire buffer
    /// (payload bytes only — the caller writes the element-count header).
    ///
    /// The default stages through a scratch vector; dense-array libraries
    /// override this with one [`Wire::write_slice`] per run, so a send
    /// packs source storage → wire buffer in a single copy with no
    /// intermediate typed buffer.
    fn pack_runs_wire(&self, ep: &mut Endpoint, runs: &AddrRuns, out: &mut Vec<u8>)
    where
        T: Wire,
    {
        let mut scratch = Vec::with_capacity(runs.len());
        self.pack_runs(ep, runs, &mut scratch);
        T::write_slice(&scratch, out);
    }

    /// Decode `runs.len()` elements from a received payload straight into
    /// the elements covered by `runs` (the caller has already consumed the
    /// count header).  Default stages through a scratch vector; dense-array
    /// libraries override with one [`Wire::read_slice`] per run, making
    /// receive-side unpacking wire buffer → library storage in one copy.
    fn unpack_runs_wire(
        &mut self,
        ep: &mut Endpoint,
        runs: &AddrRuns,
        r: &mut mcsim::wire::WireReader<'_>,
    ) -> Result<(), mcsim::error::SimError>
    where
        T: Wire,
    {
        let mut scratch = Vec::with_capacity(runs.len());
        T::read_extend(r, runs.len(), &mut scratch)?;
        self.unpack_runs(ep, runs, &scratch);
        Ok(())
    }
}

/// One side (source or destination) of a transfer: the object and the
/// regions to move.  The owning program's [`Group`](mcsim::group::Group) is passed alongside to
/// [`crate::compute_schedule`] (every rank knows both program groups, but
/// only the owning program's ranks hold the object itself).
pub struct Side<'a, T: Copy, O: McObject<T>> {
    /// The distributed data structure.
    pub obj: &'a O,
    /// The elements to transfer, as the library's regions.
    pub set: &'a SetOfRegions<O::Region>,
    _t: std::marker::PhantomData<T>,
}

impl<'a, T: Copy, O: McObject<T>> Side<'a, T, O> {
    /// Bundle a side.
    pub fn new(obj: &'a O, set: &'a SetOfRegions<O::Region>) -> Self {
        Side {
            obj,
            set,
            _t: std::marker::PhantomData,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::IndexSet;
    use mcsim::error::SimError;
    use mcsim::wire::WireReader;

    /// A toy descriptor: element `g` lives on rank `g % p`, addr `g / p`.
    #[derive(Clone, Debug, PartialEq)]
    struct CyclicDesc {
        p: usize,
    }

    impl Wire for CyclicDesc {
        fn write(&self, out: &mut Vec<u8>) {
            self.p.write(out);
        }
        fn read(r: &mut WireReader<'_>) -> Result<Self, SimError> {
            Ok(CyclicDesc { p: usize::read(r)? })
        }
    }

    impl McDescriptor for CyclicDesc {
        type Region = IndexSet;
        fn locate(&self, set: &SetOfRegions<IndexSet>, pos: usize) -> Location {
            let (ri, off) = set.locate_position(pos);
            let g = set.regions()[ri].index(off);
            Location {
                rank: g % self.p,
                addr: g / self.p,
            }
        }
    }

    #[test]
    fn default_locate_all_matches_locate() {
        let d = CyclicDesc { p: 3 };
        let set = SetOfRegions::from_regions(vec![
            IndexSet::new(vec![4, 7, 9]),
            IndexSet::new(vec![0, 2]),
        ]);
        let all = d.locate_all(&set);
        assert_eq!(all.len(), 5);
        for (pos, loc) in all.iter().enumerate() {
            assert_eq!(*loc, d.locate(&set, pos));
        }
        assert_eq!(all[0], Location { rank: 1, addr: 1 }); // g=4, p=3
    }

    #[test]
    fn default_locate_runs_covers_span_and_merges() {
        let d = CyclicDesc { p: 3 };
        let set = SetOfRegions::from_regions(vec![
            IndexSet::new(vec![4, 7, 9]),
            IndexSet::new(vec![0, 2]),
        ]);
        let runs = d.locate_runs(&set, 0, 5);
        // Positions 0..5 resolve to ranks 1,1,0,0,2 — three maximal runs.
        assert_eq!(runs.len(), 3);
        // Tiling: sorted, disjoint, covering 0..5 exactly.
        let mut next = 0;
        for r in &runs {
            assert_eq!(r.pos, next);
            next = r.end();
        }
        assert_eq!(next, 5);
        // Expansion agrees with per-position locate.
        for r in &runs {
            for k in 0..r.len {
                let loc = d.locate(&set, r.pos + k);
                assert_eq!((r.rank, r.addr_at(k)), (loc.rank, loc.addr));
            }
        }
        // A sub-span works too.
        let tail = d.locate_runs(&set, 3, 2);
        assert_eq!(tail[0].pos, 3);
        assert_eq!(tail.last().unwrap().end(), 5);
    }
}
