//! The library interface (paper §4.1.3).
//!
//! To join the framework, a data-parallel library provides "a standard set
//! of inquiry functions": dereference elements of a SetOfRegions to owning
//! processor + local address, manipulate its Regions to build a
//! linearization, and pack/unpack elements to/from communication buffers.
//! [`McObject`] is that contract; [`McDescriptor`] is the shippable
//! distribution descriptor that enables the *duplication* schedule-build
//! strategy.
//!
//! The four workspace libraries (`multiblock`, `chaos`, `hpf`, `tulip`)
//! implement these traits; see the `custom_library` example for how little
//! a fifth library needs.

use mcsim::group::Comm;
use mcsim::prelude::Endpoint;
use mcsim::wire::Wire;

use crate::region::Region;
use crate::schedule::AddrRuns;
use crate::setof::SetOfRegions;
use crate::LocalAddr;

/// Where one element lives: owning rank (global, world-wide) and local
/// address within that rank's storage for the data structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// Owning global rank.
    pub rank: usize,
    /// Offset within the owner's local storage.
    pub addr: LocalAddr,
}

/// A shippable description of a data structure's distribution, sufficient
/// to dereference any element *locally* (the duplication path, §5.1).
///
/// For regular distributions this is a few integers; for Chaos it is the
/// entire translation table — "the same size as the data array", which is
/// why the paper calls duplication impractical for Chaos across programs.
pub trait McDescriptor: Wire + Clone + Send {
    /// The Region type this descriptor understands.
    type Region: Region + Wire;

    /// Location of element `pos` of the linearization of `set`.
    fn locate(&self, set: &SetOfRegions<Self::Region>, pos: usize) -> Location;

    /// Locate every element of `set`, in linearization order.  The default
    /// calls [`Self::locate`] per element; libraries may override with a
    /// faster batch implementation.
    fn locate_all(&self, set: &SetOfRegions<Self::Region>) -> Vec<Location> {
        (0..set.total_len()).map(|p| self.locate(set, p)).collect()
    }

    /// Charge the virtual clock for `n` descriptor-based locates.
    ///
    /// Default: two closed-form operations per element (resolve the
    /// linearization position to coordinates, then compute the owner).
    /// Descriptors that probe a replicated translation table override this
    /// with the table-probe cost — that difference is what makes the
    /// duplication build "about twice" cooperation when Chaos is involved
    /// (paper Table 2) yet cheaper than cooperation for regular–regular
    /// transfers (Table 5).
    fn charge_locates(&self, ep: &mut mcsim::prelude::Endpoint, n: usize) {
        ep.charge_owner_calc(2 * n);
    }
}

/// The interface functions a distributed data structure exports to
/// Meta-Chaos (one instance per rank of the owning program, SPMD).
pub trait McObject<T: Copy> {
    /// The library's Region type.
    type Region: Region + Wire;
    /// The library's distribution descriptor.
    type Descriptor: McDescriptor<Region = Self::Region>;

    /// Collective over the owning program (`comm`): dereference the
    /// elements of `set` and return, on each rank, the elements *this rank
    /// owns* as `(linearization position, local address)` pairs, sorted by
    /// position.
    ///
    /// Regular libraries answer from closed-form owner arithmetic with no
    /// communication; Chaos consults its distributed translation table
    /// (request–reply with the table owners).
    fn deref_owned(
        &self,
        comm: &mut Comm<'_>,
        set: &SetOfRegions<Self::Region>,
    ) -> Vec<(usize, LocalAddr)>;

    /// Collective over the owning program: locate *arbitrary*
    /// linearization positions of `set` — not just owned ones.  Each
    /// calling rank passes its own query list and receives `Location`s in
    /// query order.
    ///
    /// Regular libraries answer with closed-form arithmetic (no
    /// communication); Chaos performs another round trip through its
    /// distributed translation table.  The duplication build strategy
    /// calls this once per side, which is what makes it cost "about twice
    /// as much" as cooperation when a Chaos array is involved (paper
    /// §5.1) while remaining communication-free for regular–regular
    /// transfers (§5.3).
    fn locate_positions(
        &self,
        comm: &mut Comm<'_>,
        set: &SetOfRegions<Self::Region>,
        positions: &[usize],
    ) -> Vec<Location>;

    /// Collective over the owning program: produce a descriptor every rank
    /// of the program holds in full (a Chaos implementation gathers its
    /// table pieces here, and charges the clock accordingly).
    fn descriptor(&self, comm: &mut Comm<'_>) -> Self::Descriptor;

    /// Distribution epoch: a counter the library bumps every time this
    /// object is *redistributed* (Chaos `remap`, HPF `REDISTRIBUTE`,
    /// Multiblock `regrid`).  Schedules record the epochs they were built
    /// against; executors reject stale schedules with
    /// [`McError`](crate::McError)`::StaleSchedule` and the cached `mc_*`
    /// API folds epochs into its keys so a bump forces a rebuild.
    ///
    /// The default (constant 0) is correct for libraries whose objects are
    /// never redistributed in place.
    fn epoch(&self) -> u64 {
        0
    }

    /// Copy the elements at `addrs` (in order) into `out`.
    fn pack(&self, ep: &mut Endpoint, addrs: &[LocalAddr], out: &mut Vec<T>);

    /// Store `data` (in order) into the elements at `addrs`.
    fn unpack(&mut self, ep: &mut Endpoint, addrs: &[LocalAddr], data: &[T]);

    /// Copy the elements covered by run-compressed `runs` (in run order)
    /// into `out`.
    ///
    /// The default expands the runs and calls [`McObject::pack`], so
    /// existing libraries work unchanged.  Libraries whose local storage is
    /// a dense array (the regular ones: multiblock, hpf, tulip) override
    /// this with one `extend_from_slice` per run — the executor fast path
    /// that makes regular-section transfers a handful of `memcpy`s.
    fn pack_runs(&self, ep: &mut Endpoint, runs: &AddrRuns, out: &mut Vec<T>) {
        self.pack(ep, &runs.to_vec(), out);
    }

    /// Store `data` into the elements covered by `runs` (in run order).
    /// Bulk counterpart of [`McObject::unpack`]; same default/override
    /// contract as [`McObject::pack_runs`].
    fn unpack_runs(&mut self, ep: &mut Endpoint, runs: &AddrRuns, data: &[T]) {
        self.unpack(ep, &runs.to_vec(), data);
    }

    /// Encode the elements covered by `runs` straight into a wire buffer
    /// (payload bytes only — the caller writes the element-count header).
    ///
    /// The default stages through a scratch vector; dense-array libraries
    /// override this with one [`Wire::write_slice`] per run, so a send
    /// packs source storage → wire buffer in a single copy with no
    /// intermediate typed buffer.
    fn pack_runs_wire(&self, ep: &mut Endpoint, runs: &AddrRuns, out: &mut Vec<u8>)
    where
        T: Wire,
    {
        let mut scratch = Vec::with_capacity(runs.len());
        self.pack_runs(ep, runs, &mut scratch);
        T::write_slice(&scratch, out);
    }

    /// Decode `runs.len()` elements from a received payload straight into
    /// the elements covered by `runs` (the caller has already consumed the
    /// count header).  Default stages through a scratch vector; dense-array
    /// libraries override with one [`Wire::read_slice`] per run, making
    /// receive-side unpacking wire buffer → library storage in one copy.
    fn unpack_runs_wire(
        &mut self,
        ep: &mut Endpoint,
        runs: &AddrRuns,
        r: &mut mcsim::wire::WireReader<'_>,
    ) -> Result<(), mcsim::error::SimError>
    where
        T: Wire,
    {
        let mut scratch = Vec::with_capacity(runs.len());
        T::read_extend(r, runs.len(), &mut scratch)?;
        self.unpack_runs(ep, runs, &scratch);
        Ok(())
    }
}

/// One side (source or destination) of a transfer: the object and the
/// regions to move.  The owning program's [`Group`](mcsim::group::Group) is passed alongside to
/// [`crate::compute_schedule`] (every rank knows both program groups, but
/// only the owning program's ranks hold the object itself).
pub struct Side<'a, T: Copy, O: McObject<T>> {
    /// The distributed data structure.
    pub obj: &'a O,
    /// The elements to transfer, as the library's regions.
    pub set: &'a SetOfRegions<O::Region>,
    _t: std::marker::PhantomData<T>,
}

impl<'a, T: Copy, O: McObject<T>> Side<'a, T, O> {
    /// Bundle a side.
    pub fn new(obj: &'a O, set: &'a SetOfRegions<O::Region>) -> Self {
        Side {
            obj,
            set,
            _t: std::marker::PhantomData,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::IndexSet;
    use mcsim::error::SimError;
    use mcsim::wire::WireReader;

    /// A toy descriptor: element `g` lives on rank `g % p`, addr `g / p`.
    #[derive(Clone, Debug, PartialEq)]
    struct CyclicDesc {
        p: usize,
    }

    impl Wire for CyclicDesc {
        fn write(&self, out: &mut Vec<u8>) {
            self.p.write(out);
        }
        fn read(r: &mut WireReader<'_>) -> Result<Self, SimError> {
            Ok(CyclicDesc { p: usize::read(r)? })
        }
    }

    impl McDescriptor for CyclicDesc {
        type Region = IndexSet;
        fn locate(&self, set: &SetOfRegions<IndexSet>, pos: usize) -> Location {
            let (ri, off) = set.locate_position(pos);
            let g = set.regions()[ri].index(off);
            Location {
                rank: g % self.p,
                addr: g / self.p,
            }
        }
    }

    #[test]
    fn default_locate_all_matches_locate() {
        let d = CyclicDesc { p: 3 };
        let set = SetOfRegions::from_regions(vec![
            IndexSet::new(vec![4, 7, 9]),
            IndexSet::new(vec![0, 2]),
        ]);
        let all = d.locate_all(&set);
        assert_eq!(all.len(), 5);
        for (pos, loc) in all.iter().enumerate() {
            assert_eq!(*loc, d.locate(&set, pos));
        }
        assert_eq!(all[0], Location { rank: 1, addr: 1 }); // g=4, p=3
    }
}
