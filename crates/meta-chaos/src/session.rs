//! Resumable coupled transfers: a per-port recovery session that drives a
//! sequence of data-move steps to completion across rank crashes and
//! supervisor restarts.
//!
//! The plain [`crate::datamove`] entry points are one-shot: a crash on
//! either side mid-transfer surfaces as an error and any progress is
//! lost.  A [`RecoverySession`] wraps the same pack/stage/commit
//! machinery in an exactly-once step protocol so that a crashed rank —
//! restarted by the world supervisor from its [`mcsim::CkptStore`]
//! checkpoint under a bumped incarnation — re-joins the exchange and the
//! pair replays only what was never committed.
//!
//! ## The protocol
//!
//! Everything for a pair flows on its schedule's move stream, in both
//! directions.  Data parts keep the usual `[epoch][last][count][bytes]`
//! header, but the session's transfer epoch is `(step + 1) << 32 |
//! attempt`, so the step number rides every frame; control frames start
//! with a marker below `1 << 32`, which no session data frame can.
//!
//! - The **receiver** owns the truth: a per-pair committed-step vector
//!   `c`, checkpointed atomically with the destination object after
//!   every commit.  It stages whatever arrives: a half for the step it
//!   needs is committed (or, when `c` says a previous life already
//!   committed it, absorbed and counted as `parts_replayed`); a half
//!   from an older step is a replay — dropped, and answered with the
//!   receiver's position so a resending sender catches up.  An
//!   attempt-epoch jump mid-half exposes the partial half of an attempt
//!   the sender abandoned; the partial is discarded and collection
//!   restarts, so the stream can never desynchronize.
//! - The **sender** keeps a per-pair confirmed floor `s`
//!   (checkpointed): each step it sends its half and waits for the
//!   receiver's position to pass the step, retrying — with a fresh
//!   attempt epoch — whenever the failure detector evicts the peer
//!   (restart under a new incarnation, or lease expiry).  Positions are
//!   monotone, so stale control frames are harmless by construction.
//! - [`RecoverySession::finish`] closes the session: senders post FIN,
//!   receivers keep serving replayed halves until every sender's FIN
//!   arrives.  Without this a finished rank would exit — and stop
//!   heartbeating — while a restarted peer still needs its answers.
//!
//! The session requires a supervised world
//! ([`mcsim::World::with_supervisor`]): heartbeats drive the lease-based
//! failure detector, and [`McError::PeerEvicted`] is the retry signal
//! that a peer restarted under a new incarnation.  Do not mix plain
//! [`crate::data_move_send`]/[`crate::data_move_recv`] calls with a
//! session on the same schedule: the session owns the stream's epoch
//! space.

use std::any::Any;

use mcsim::prelude::Endpoint;
use mcsim::reliable::{self, StreamTag};
use mcsim::span::Phase;
use mcsim::wire::{Wire, WireReader};

use crate::adapter::McObject;
use crate::datamove::{commit_one_half, move_stream, next_xfer_epoch, send_one_half};
use crate::error::McError;
use crate::schedule::{AddrRuns, Schedule};

/// Control-frame markers (first word; session data frames always start
/// with an epoch of at least `1 << 32`).
const M_POS: u64 = 1;
const M_NAK: u64 = 2;
const M_FIN: u64 = 3;

/// First epoch value reserved for data frames; anything below is a
/// control marker.
const DATA_FLOOR: u64 = 1 << 32;

/// A resumable multi-step transfer session over one bound port.
///
/// Create one session per port per rank and drive it through numbered
/// steps ([`RecoverySession::send_step`] / [`RecoverySession::recv_step`]),
/// then close it with [`RecoverySession::finish`].  On a supervisor
/// restart the closure re-creates the session; checkpointed progress
/// (`{port}:src_s`, `{port}:dst_c`, plus the schedule and object
/// snapshots) brings it back to where the previous life stopped.
pub struct RecoverySession {
    port: String,
    attempts: u32,
}

impl RecoverySession {
    /// A session for `port` with the default retry budget.
    pub fn new(port: &str) -> Self {
        RecoverySession {
            port: port.to_string(),
            attempts: 8,
        }
    }

    /// Override the per-step attempt budget (default 8).
    pub fn with_attempts(mut self, attempts: u32) -> Self {
        assert!(attempts > 0, "attempt budget must be positive");
        self.attempts = attempts;
        self
    }

    fn key(&self, what: &str) -> String {
        format!("{}:{what}", self.port)
    }

    /// Checkpoint the port's schedule so a restarted rank can restore it
    /// instead of re-running the (collective) build its peers will not
    /// repeat.
    pub fn checkpoint_schedule(&self, ep: &mut Endpoint, sched: &Schedule) {
        ep.ckpt_put_state(&self.key("sched"), Vec::new(), sched.clone());
    }

    /// The schedule checkpointed by a previous life, if any.
    pub fn restore_schedule(&self, ep: &Endpoint) -> Option<Schedule> {
        ep.ckpt_state::<Schedule>(&self.key("sched"))
    }

    /// Checkpoint an object.  [`RecoverySession::recv_step`]
    /// re-checkpoints the destination after every committed half; call
    /// this once after creating an object so a crash before the first
    /// commit restores a well-defined state (and so collectively built
    /// objects are never rebuilt by a lone restarted rank).
    pub fn checkpoint_object<O: Any + Clone + Send>(&self, ep: &mut Endpoint, obj: &O) {
        ep.ckpt_put_state(&self.key("obj"), Vec::new(), obj.clone());
    }

    /// The object snapshot checkpointed by a previous life, if any.
    pub fn restore_object<O: Any + Clone>(&self, ep: &Endpoint) -> Option<O> {
        ep.ckpt_state::<O>(&self.key("obj"))
    }

    /// Source-side step `k`: send every unconfirmed pair's half and wait
    /// for each receiver's position to pass the step, retrying across
    /// peer evictions until every pair confirms or the attempt budget
    /// runs out.
    pub fn send_step<T, S>(
        &mut self,
        ep: &mut Endpoint,
        sched: &Schedule,
        src: &S,
        k: u64,
    ) -> Result<(), McError>
    where
        T: Copy + Wire,
        S: McObject<T>,
    {
        if sched.sends.is_empty() {
            return Ok(());
        }
        if !sched.recvs.is_empty() {
            return Err(McError::SendSideHasReceives {
                peers: sched.recvs.len(),
            });
        }
        if let Some((o, e)) = stale(src.epoch(), sched.src_epoch()) {
            return Err(McError::StaleSchedule {
                object_epoch: o,
                schedule_epoch: e,
            });
        }
        let key_s = self.key("src_s");
        let mut s = load_progress(ep, &key_s, sched.sends.len());
        let mut last_err: Option<McError> = None;
        for _ in 0..self.attempts {
            if s.iter().all(|&v| v > k) {
                return Ok(());
            }
            let r = self.send_attempt(ep, sched, src, k, &mut s);
            store_progress(ep, &key_s, &s);
            match r {
                Ok(()) => {
                    if s.iter().all(|&v| v > k) {
                        return Ok(());
                    }
                }
                Err(e) if retryable(&e) => last_err = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            McError::Transport(format!(
                "send step {k} on port '{}' did not confirm within {} attempts",
                self.port, self.attempts
            ))
        }))
    }

    fn send_attempt<T, S>(
        &mut self,
        ep: &mut Endpoint,
        sched: &Schedule,
        src: &S,
        k: u64,
        s: &mut [u64],
    ) -> Result<(), McError>
    where
        T: Copy + Wire,
        S: McObject<T>,
    {
        let group = sched.group().clone();
        for (i, (peer, _)) in sched.sends.iter().enumerate() {
            if s[i] <= k {
                ep.clear_dead_streams(group.global(*peer));
            }
        }
        ep.arm_eviction();
        let r = send_armed(ep, sched, src, k, s);
        ep.disarm_eviction();
        r
    }

    /// Destination-side step `k`: stage every uncommitted pair's half
    /// and commit it into `dst`, checkpointing the object and the
    /// committed-step vector atomically, then answer with the new
    /// position.  Halves a previous life already committed never reach
    /// this step — `c` short-circuits them, and their replayed bytes
    /// are absorbed by the staging loop of whatever step runs next.
    pub fn recv_step<T, D>(
        &mut self,
        ep: &mut Endpoint,
        sched: &Schedule,
        dst: &mut D,
        k: u64,
    ) -> Result<(), McError>
    where
        T: Copy + Wire,
        D: McObject<T> + Clone + Send + 'static,
    {
        if sched.recvs.is_empty() {
            return Ok(());
        }
        if !sched.sends.is_empty() {
            return Err(McError::RecvSideHasSends {
                peers: sched.sends.len(),
            });
        }
        if let Some((o, e)) = stale(dst.epoch(), sched.dst_epoch()) {
            return Err(McError::StaleSchedule {
                object_epoch: o,
                schedule_epoch: e,
            });
        }
        let key_c = self.key("dst_c");
        let mut c = load_progress(ep, &key_c, sched.recvs.len());
        let mut last_err: Option<McError> = None;
        for _ in 0..self.attempts {
            if c.iter().all(|&v| v > k) {
                return Ok(());
            }
            let r = self.recv_attempt(ep, sched, dst, k, &mut c);
            match r {
                Ok(()) => {
                    if c.iter().all(|&v| v > k) {
                        return Ok(());
                    }
                }
                Err(e) if retryable(&e) => last_err = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            McError::Transport(format!(
                "recv step {k} on port '{}' did not commit within {} attempts",
                self.port, self.attempts
            ))
        }))
    }

    fn recv_attempt<T, D>(
        &mut self,
        ep: &mut Endpoint,
        sched: &Schedule,
        dst: &mut D,
        k: u64,
        c: &mut [u64],
    ) -> Result<(), McError>
    where
        T: Copy + Wire,
        D: McObject<T> + Clone + Send + 'static,
    {
        let group = sched.group().clone();
        for (i, (peer, _)) in sched.recvs.iter().enumerate() {
            if c[i] <= k {
                ep.clear_dead_streams(group.global(*peer));
            }
        }
        ep.arm_eviction();
        let r = self.recv_armed(ep, sched, dst, k, c);
        ep.disarm_eviction();
        r
    }

    /// The eviction-armed body of one receive attempt: stage, commit,
    /// checkpoint, and acknowledge every uncommitted pair, holding the
    /// first error so later pairs still make progress.
    fn recv_armed<T, D>(
        &mut self,
        ep: &mut Endpoint,
        sched: &Schedule,
        dst: &mut D,
        k: u64,
        c: &mut [u64],
    ) -> Result<(), McError>
    where
        T: Copy + Wire,
        D: McObject<T> + Clone + Send + 'static,
    {
        let group = sched.group().clone();
        let st = move_stream(sched);
        let mut first_err: Option<McError> = None;
        for (i, (peer, runs)) in sched.recvs.iter().enumerate() {
            if c[i] > k {
                continue;
            }
            let pg = group.global(*peer);
            match stage_session_half(ep, sched, pg, runs, k, c[i]) {
                Ok(parts) => {
                    let span = ep.span_begin(Phase::Commit, || {
                        format!("seq={} peer={pg} step={k}", sched.seq())
                    });
                    let cr = commit_one_half(ep, dst, pg, runs, parts);
                    ep.span_end(span);
                    match cr {
                        Ok(()) => {
                            ep.record_transfer_committed();
                            // No communication happens between here
                            // and the position post, so the object,
                            // the vector, and the commit are atomic
                            // with respect to scripted crashes.
                            self.checkpoint_object(ep, dst);
                            c[i] = k + 1;
                            store_progress(ep, &self.key("dst_c"), c);
                            if let Err(e) = post_ctrl(ep, pg, st, M_POS, k + 1) {
                                hold(&mut first_err, e);
                            }
                        }
                        Err(e) => {
                            let _ = post_ctrl(ep, pg, st, M_NAK, k);
                            hold(&mut first_err, e);
                        }
                    }
                }
                Err(e) => {
                    if retryable(&e) {
                        let _ = post_ctrl(ep, pg, st, M_NAK, k);
                    }
                    hold(&mut first_err, e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Close the session after `steps` steps.  Senders post FIN to every
    /// pair; receivers keep serving replayed halves until every pair's
    /// FIN arrives, so a restarted peer always finds someone to answer.
    /// If the peer is gone for good after the retry budget — and this
    /// side's own obligations are met — the session closes anyway: the
    /// durable state is complete.
    pub fn finish(
        &mut self,
        ep: &mut Endpoint,
        sched: &Schedule,
        steps: u64,
    ) -> Result<(), McError> {
        if !sched.sends.is_empty() {
            self.finish_send(ep, sched, steps)
        } else if !sched.recvs.is_empty() {
            self.finish_recv(ep, sched, steps)
        } else {
            Ok(())
        }
    }

    fn finish_send(
        &mut self,
        ep: &mut Endpoint,
        sched: &Schedule,
        steps: u64,
    ) -> Result<(), McError> {
        let group = sched.group().clone();
        let st = move_stream(sched);
        let mut done = vec![false; sched.sends.len()];
        let mut last_err: Option<McError> = None;
        for _ in 0..self.attempts {
            ep.arm_eviction();
            let mut first_err: Option<McError> = None;
            for (i, (peer, _)) in sched.sends.iter().enumerate() {
                if done[i] {
                    continue;
                }
                let pg = group.global(*peer);
                ep.clear_dead_streams(pg);
                match post_ctrl(ep, pg, st, M_FIN, steps) {
                    Ok(()) => done[i] = true,
                    Err(e) if retryable(&e) => hold(&mut first_err, e),
                    Err(e) => {
                        ep.disarm_eviction();
                        return Err(e);
                    }
                }
            }
            ep.disarm_eviction();
            match first_err {
                None => return Ok(()),
                Some(e) => last_err = Some(e),
            }
        }
        // Every step is confirmed committed; an unreachable receiver
        // after that many rounds has exited (or is beyond recovery) and
        // owes us nothing.
        ep.mark(|| {
            format!(
                "session '{}' finish: FIN undeliverable ({})",
                self.port,
                last_err.map(|e| e.to_string()).unwrap_or_default()
            )
        });
        Ok(())
    }

    fn finish_recv(
        &mut self,
        ep: &mut Endpoint,
        sched: &Schedule,
        steps: u64,
    ) -> Result<(), McError> {
        let group = sched.group().clone();
        let st = move_stream(sched);
        let c = load_progress(ep, &self.key("dst_c"), sched.recvs.len());
        let mut fin = vec![false; sched.recvs.len()];
        let mut last_err: Option<McError> = None;
        for _ in 0..self.attempts {
            ep.arm_eviction();
            let mut first_err: Option<McError> = None;
            for (i, (peer, _)) in sched.recvs.iter().enumerate() {
                if fin[i] {
                    continue;
                }
                let pg = group.global(*peer);
                ep.clear_dead_streams(pg);
                match serve_until_fin(ep, pg, st, c[i]) {
                    Ok(()) => fin[i] = true,
                    Err(e) if retryable(&e) => hold(&mut first_err, e),
                    Err(e) => {
                        ep.disarm_eviction();
                        return Err(e);
                    }
                }
            }
            ep.disarm_eviction();
            match first_err {
                None => return Ok(()),
                Some(e) => last_err = Some(e),
            }
        }
        if c.iter().all(|&v| v >= steps) {
            // Everything we owe is committed and checkpointed; a sender
            // that still has not said FIN after that many rounds is gone.
            ep.mark(|| {
                format!(
                    "session '{}' finish: FIN never arrived ({})",
                    self.port,
                    last_err.map(|e| e.to_string()).unwrap_or_default()
                )
            });
            Ok(())
        } else {
            Err(last_err.unwrap_or_else(|| {
                McError::Transport(format!(
                    "session '{}' finish called with uncommitted steps",
                    self.port
                ))
            }))
        }
    }
}

/// The eviction-armed body of one send attempt: post every unconfirmed
/// pair's half *before* waiting on any position, so no receiver's
/// progress waits on another pair's service order, then await each
/// posted pair's confirmation.  The first error is held so later pairs
/// still make progress within the attempt.
fn send_armed<T, S>(
    ep: &mut Endpoint,
    sched: &Schedule,
    src: &S,
    k: u64,
    s: &mut [u64],
) -> Result<(), McError>
where
    T: Copy + Wire,
    S: McObject<T>,
{
    let group = sched.group().clone();
    let st = move_stream(sched);
    let te = step_te(ep, k, sched);
    let mut first_err: Option<McError> = None;
    let mut sent = vec![false; sched.sends.len()];
    for (i, (peer, runs)) in sched.sends.iter().enumerate() {
        if s[i] > k {
            continue;
        }
        match send_one_half(ep, sched, src, te, group.global(*peer), runs) {
            Ok(()) => sent[i] = true,
            Err(e) => hold(&mut first_err, e),
        }
    }
    for (i, (peer, _)) in sched.sends.iter().enumerate() {
        if s[i] > k || !sent[i] {
            continue;
        }
        let pg = group.global(*peer);
        let span = ep.span_begin(Phase::Manifest, || {
            format!("confirm seq={} peer={pg} step={k}", sched.seq())
        });
        let rr = await_pos(ep, pg, st, k, &mut s[i]);
        ep.span_end(span);
        if let Err(e) = rr {
            hold(&mut first_err, e);
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Transfer epoch for session data frames: the step number (plus one, so
/// step 0 outranks every control marker) in the high half, a monotone
/// per-attempt counter in the low half.  The step part lets a receiver
/// discard a previous step's in-flight duplicates without a manifest;
/// the attempt part survives a supervisor restart because the epoch
/// counter lives in the rank's endpoint scratch, which the supervisor
/// carries across the respawn.
fn step_te(ep: &mut Endpoint, k: u64, sched: &Schedule) -> u64 {
    ((k + 1) << 32) | (next_xfer_epoch(ep, sched) & 0xFFFF_FFFF)
}

fn stale(object: u64, schedule: u64) -> Option<(u64, u64)> {
    if object != schedule {
        Some((object, schedule))
    } else {
        None
    }
}

/// Errors worth another attempt: the peer may be back under a new
/// incarnation (evicted), may still restart (failed, timed out), or the
/// streams carried frames from an abandoned attempt (transport).
fn retryable(e: &McError) -> bool {
    matches!(
        e,
        McError::PeerEvicted { .. }
            | McError::PeerTimeout { .. }
            | McError::PeerFailed { .. }
            | McError::Transport(_)
    )
}

fn hold(slot: &mut Option<McError>, e: McError) {
    if slot.is_none() {
        *slot = Some(e);
    }
}

fn load_progress(ep: &Endpoint, key: &str, n: usize) -> Vec<u64> {
    ep.ckpt_state::<Vec<u64>>(key)
        .filter(|v| v.len() == n)
        .unwrap_or_else(|| vec![0; n])
}

fn store_progress(ep: &mut Endpoint, key: &str, v: &[u64]) {
    ep.ckpt_put_state(key, Vec::new(), v.to_vec());
}

/// Post one control frame `[marker][value]` and flush it.
fn post_ctrl(
    ep: &mut Endpoint,
    to: usize,
    st: StreamTag,
    marker: u64,
    value: u64,
) -> Result<(), McError> {
    let mut buf = ep.take_buf();
    marker.write(&mut buf);
    value.write(&mut buf);
    reliable::reliable_send(ep, to, st, buf)?;
    reliable::flush_send(ep, to, st)?;
    Ok(())
}

/// Sender-side wait: consume the receiver's position reports until the
/// pair's floor passes `k`.  A NAK for the step means the receiver
/// failed to stage this attempt's half — surface a retryable error so
/// the attempt is re-run.  Positions are monotone, so reports from
/// abandoned attempts can never mislead.
fn await_pos(
    ep: &mut Endpoint,
    pg: usize,
    st: StreamTag,
    k: u64,
    floor: &mut u64,
) -> Result<(), McError> {
    while *floor <= k {
        let bytes = reliable::reliable_recv(ep, pg, st)?;
        let mut r = WireReader::new(&bytes);
        let bad = |e| McError::Transport(format!("session frame from rank {pg}: {e}"));
        let marker = u64::read(&mut r).map_err(bad);
        let value = u64::read(&mut r).map_err(bad);
        ep.recycle_buf(bytes);
        match (marker?, value?) {
            (M_POS, v) => *floor = (*floor).max(v),
            (M_NAK, step) if step >= k => {
                return Err(McError::Transport(format!(
                    "receiver rank {pg} could not stage step {step}"
                )));
            }
            (M_NAK, _) => {}
            (m, _) => {
                return Err(McError::Transport(format!(
                    "unexpected session frame (marker {m}) from rank {pg} on the return path"
                )));
            }
        }
    }
    Ok(())
}

/// Collect one pair's half for step `k` from the move stream.  Frames
/// from an older step are replays of a half this receiver already
/// committed: they are dropped, and the completed stale half is
/// answered with the receiver's current position `pos` (and counted as
/// replayed parts) so a resending sender catches up.  An attempt-epoch
/// jump mid-collection exposes the partial half of an attempt the
/// sender abandoned (its eviction purged the unsent tail); the partial
/// is dropped and collection restarts at the new epoch.  On error the
/// partial parts are recycled and nothing escapes.
fn stage_session_half(
    ep: &mut Endpoint,
    sched: &Schedule,
    pg: usize,
    runs: &AddrRuns,
    k: u64,
    pos: u64,
) -> Result<Vec<Vec<u8>>, McError> {
    let st = move_stream(sched);
    let esz = sched.elem_size() as usize;
    let span = ep.span_begin(Phase::Stage, || {
        format!("seq={} peer={pg} step={k}", sched.seq())
    });
    let r = stage_session_loop(ep, st, esz, pg, runs, k, pos);
    ep.span_end(span);
    r
}

fn stage_session_loop(
    ep: &mut Endpoint,
    st: StreamTag,
    esz: usize,
    pg: usize,
    runs: &AddrRuns,
    k: u64,
    pos: u64,
) -> Result<Vec<Vec<u8>>, McError> {
    let want = k + 1;
    let mut parts: Vec<Vec<u8>> = Vec::new();
    let mut got = 0usize;
    let mut cur_epoch = 0u64;
    let mut replayed = 0usize;
    let fail = |ep: &mut Endpoint, parts: Vec<Vec<u8>>, e: McError| {
        for b in parts {
            ep.recycle_buf(b);
        }
        Err(e)
    };
    loop {
        let bytes = match reliable::reliable_recv(ep, pg, st) {
            Ok(b) => b,
            Err(e) => return fail(ep, parts, e.into()),
        };
        let mut r = WireReader::new(&bytes);
        let bad = |e| McError::Transport(format!("data frame from rank {pg}: {e}"));
        let head = u64::read(&mut r).map_err(bad);
        let te = match head {
            Ok(v) => v,
            Err(e) => {
                ep.recycle_buf(bytes);
                return fail(ep, parts, e);
            }
        };
        if te < DATA_FLOOR {
            // A control frame can only be a sender's FIN — and a sender
            // cannot finish while this pair still owes it a position.
            ep.recycle_buf(bytes);
            let e = McError::Transport(format!(
                "unexpected control frame (marker {te}) from rank {pg} while staging step {k}"
            ));
            return fail(ep, parts, e);
        }
        let (last, count) = {
            let last = u8::read(&mut r).map_err(bad);
            let count = usize::read(&mut r).map_err(bad);
            match (last, count) {
                (Ok(l), Ok(c)) => (l != 0, c),
                (Err(e), _) | (_, Err(e)) => {
                    ep.recycle_buf(bytes);
                    return fail(ep, parts, e);
                }
            }
        };
        let (step, epoch) = (te >> 32, te & 0xFFFF_FFFF);
        if step < want {
            // Replay of a half an earlier step (possibly an earlier
            // life) already accepted.
            replayed += 1;
            ep.recycle_buf(bytes);
            if last {
                ep.record_stale_half();
                ep.record_parts_replayed(pg, replayed);
                replayed = 0;
                if let Err(e) = post_ctrl(ep, pg, st, M_POS, pos) {
                    return fail(ep, parts, e);
                }
            }
            continue;
        }
        if step > want {
            let e = McError::Transport(format!(
                "data frame from rank {pg} is for session step {}, expected {k}",
                step - 1
            ));
            return fail(ep, parts, e);
        }
        if !parts.is_empty() && epoch < cur_epoch {
            ep.record_stale_half();
            ep.recycle_buf(bytes);
            continue;
        }
        if parts.is_empty() || epoch > cur_epoch {
            for b in parts.drain(..) {
                ep.recycle_buf(b);
            }
            got = 0;
            cur_epoch = epoch;
        }
        if esz != 0 && r.remaining() != count * esz {
            let e = McError::Transport(format!(
                "part from rank {pg} has {} payload bytes, expected {}",
                r.remaining(),
                count * esz
            ));
            return fail(ep, parts, e);
        }
        got += count;
        if got > runs.len() || (last && got != runs.len()) {
            let e = McError::Transport(format!(
                "half from rank {pg} carries {got} elements, schedule expects {}",
                runs.len()
            ));
            return fail(ep, parts, e);
        }
        ep.record_staged_frame();
        parts.push(bytes);
        if last {
            return Ok(parts);
        }
    }
}

/// Receiver-side close for one pair: drain replayed halves (answering
/// each completed one with our position) until the sender's FIN.
fn serve_until_fin(ep: &mut Endpoint, pg: usize, st: StreamTag, pos: u64) -> Result<(), McError> {
    let mut replayed = 0usize;
    loop {
        let bytes = reliable::reliable_recv(ep, pg, st)?;
        let mut r = WireReader::new(&bytes);
        let bad = |e| McError::Transport(format!("session frame from rank {pg}: {e}"));
        let head = u64::read(&mut r).map_err(bad);
        let te = match head {
            Ok(v) => v,
            Err(e) => {
                ep.recycle_buf(bytes);
                return Err(e);
            }
        };
        if te == M_FIN {
            ep.recycle_buf(bytes);
            return Ok(());
        }
        if te < DATA_FLOOR {
            ep.recycle_buf(bytes);
            continue;
        }
        let last = u8::read(&mut r).map(|v| v != 0);
        ep.recycle_buf(bytes);
        // Every data frame here is a replay: finish is only reached
        // once every step committed.
        replayed += 1;
        if last.map_err(bad)? {
            ep.record_stale_half();
            ep.record_parts_replayed(pg, replayed);
            replayed = 0;
            post_ctrl(ep, pg, st, M_POS, pos)?;
        }
    }
}
