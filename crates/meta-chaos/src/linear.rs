//! Linearization arithmetic (paper §4.1.2).
//!
//! The linearization ℓ maps a [`SetOfRegions`](crate::SetOfRegions) to an
//! abstract total order of its elements; ℓ⁻¹ maps positions back.  It is
//! **virtual**: no storage is ever allocated for it.  What the runtime does
//! need is to *partition* positions among processors during schedule
//! construction — the block partition below assigns position `p` of a
//! length-`n` linearization to coordinator `p / ceil(n/P)`.

/// Block partition of `0..total` positions over `parts` coordinators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PosBlocks {
    total: usize,
    parts: usize,
    block: usize,
}

impl PosBlocks {
    /// Partition `total` positions over `parts` coordinators.
    pub fn new(total: usize, parts: usize) -> Self {
        assert!(parts > 0, "need at least one part");
        let block = if total == 0 { 1 } else { total.div_ceil(parts) };
        PosBlocks {
            total,
            parts,
            block,
        }
    }

    /// Coordinator responsible for position `pos`.
    #[inline]
    pub fn owner(&self, pos: usize) -> usize {
        debug_assert!(pos < self.total, "position {pos} of {}", self.total);
        (pos / self.block).min(self.parts - 1)
    }

    /// The half-open range of positions coordinated by `part`.
    pub fn range(&self, part: usize) -> std::ops::Range<usize> {
        let lo = (part * self.block).min(self.total);
        let hi = ((part + 1) * self.block).min(self.total);
        lo..hi
    }

    /// Number of positions coordinated by `part`.
    pub fn size_of(&self, part: usize) -> usize {
        let r = self.range(part);
        r.end - r.start
    }

    /// Total positions.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Split the position interval `pos .. pos + len` at coordinator block
    /// boundaries, yielding `(part, piece_start, piece_len)` in ascending
    /// position order.  This is the only fragmentation the run-based
    /// inspector introduces on the announce wire: a run crossing `k` block
    /// boundaries becomes `k + 1` pieces, and a run inside one block stays
    /// whole.
    pub fn split_run(
        &self,
        pos: usize,
        len: usize,
    ) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        debug_assert!(pos + len <= self.total, "run {pos}+{len} of {}", self.total);
        let end = pos + len;
        let mut cur = pos;
        std::iter::from_fn(move || {
            if cur >= end {
                return None;
            }
            let part = self.owner(cur);
            // `range(part).end` strictly exceeds `cur` (owner() guarantees
            // membership), so every piece makes progress.
            let piece_end = self.range(part).end.min(end);
            let piece = (part, cur, piece_end - cur);
            cur = piece_end;
            Some(piece)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_everything_once() {
        for total in [0usize, 1, 7, 16, 100] {
            for parts in [1usize, 2, 3, 8, 16] {
                let pb = PosBlocks::new(total, parts);
                let mut covered = vec![0u32; total];
                for part in 0..parts {
                    for p in pb.range(part) {
                        assert_eq!(pb.owner(p), part, "total={total} parts={parts} p={p}");
                        covered[p] += 1;
                    }
                }
                assert!(covered.iter().all(|&c| c == 1));
            }
        }
    }

    #[test]
    fn ranges_are_contiguous_and_ordered() {
        let pb = PosBlocks::new(10, 4);
        let mut next = 0;
        for part in 0..4 {
            let r = pb.range(part);
            assert_eq!(r.start, next);
            next = r.end;
        }
        assert_eq!(next, 10);
    }

    #[test]
    fn more_parts_than_positions() {
        let pb = PosBlocks::new(2, 5);
        assert_eq!(pb.size_of(0), 1);
        assert_eq!(pb.size_of(1), 1);
        assert_eq!(pb.size_of(2), 0);
        assert_eq!(pb.owner(1), 1);
    }

    #[test]
    fn split_run_empty_linearization() {
        // n = 0: no positions, so only the empty run is legal — and it
        // yields nothing.
        let pb = PosBlocks::new(0, 4);
        assert_eq!(pb.split_run(0, 0).count(), 0);
    }

    #[test]
    fn split_run_zero_length_anywhere() {
        let pb = PosBlocks::new(10, 3);
        assert_eq!(pb.split_run(7, 0).count(), 0);
    }

    #[test]
    fn split_run_more_parts_than_positions() {
        // p > n: blocks are single positions, so every element of the run
        // lands on its own coordinator.
        let pb = PosBlocks::new(3, 8);
        let pieces: Vec<_> = pb.split_run(0, 3).collect();
        assert_eq!(pieces, vec![(0, 0, 1), (1, 1, 1), (2, 2, 1)]);
    }

    #[test]
    fn split_run_spanning_many_blocks() {
        // A run crossing 3+ coordinator blocks splits exactly at block
        // boundaries (blocks of 4: [0,4) [4,8) [8,12) [12,16)).
        let pb = PosBlocks::new(16, 4);
        let pieces: Vec<_> = pb.split_run(2, 13).collect();
        assert_eq!(pieces, vec![(0, 2, 2), (1, 4, 4), (2, 8, 4), (3, 12, 3)]);
        // Pieces tile the run.
        let total: usize = pieces.iter().map(|&(_, _, l)| l).sum();
        assert_eq!(total, 13);
    }

    #[test]
    fn split_run_single_element_runs() {
        // Stride-degenerate (length-1) runs: one piece, owned correctly,
        // including in the ragged last block.
        let pb = PosBlocks::new(10, 4); // blocks of 3: last block is {9}
        for pos in 0..10 {
            let pieces: Vec<_> = pb.split_run(pos, 1).collect();
            assert_eq!(pieces, vec![(pb.owner(pos), pos, 1)]);
        }
    }

    #[test]
    fn split_run_within_one_block_stays_whole() {
        let pb = PosBlocks::new(100, 4); // blocks of 25
        let pieces: Vec<_> = pb.split_run(26, 20).collect();
        assert_eq!(pieces, vec![(1, 26, 20)]);
    }
}
