//! Linearization arithmetic (paper §4.1.2).
//!
//! The linearization ℓ maps a [`SetOfRegions`](crate::SetOfRegions) to an
//! abstract total order of its elements; ℓ⁻¹ maps positions back.  It is
//! **virtual**: no storage is ever allocated for it.  What the runtime does
//! need is to *partition* positions among processors during schedule
//! construction — the block partition below assigns position `p` of a
//! length-`n` linearization to coordinator `p / ceil(n/P)`.

/// Block partition of `0..total` positions over `parts` coordinators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PosBlocks {
    total: usize,
    parts: usize,
    block: usize,
}

impl PosBlocks {
    /// Partition `total` positions over `parts` coordinators.
    pub fn new(total: usize, parts: usize) -> Self {
        assert!(parts > 0, "need at least one part");
        let block = if total == 0 { 1 } else { total.div_ceil(parts) };
        PosBlocks {
            total,
            parts,
            block,
        }
    }

    /// Coordinator responsible for position `pos`.
    #[inline]
    pub fn owner(&self, pos: usize) -> usize {
        debug_assert!(pos < self.total, "position {pos} of {}", self.total);
        (pos / self.block).min(self.parts - 1)
    }

    /// The half-open range of positions coordinated by `part`.
    pub fn range(&self, part: usize) -> std::ops::Range<usize> {
        let lo = (part * self.block).min(self.total);
        let hi = ((part + 1) * self.block).min(self.total);
        lo..hi
    }

    /// Number of positions coordinated by `part`.
    pub fn size_of(&self, part: usize) -> usize {
        let r = self.range(part);
        r.end - r.start
    }

    /// Total positions.
    pub fn total(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_everything_once() {
        for total in [0usize, 1, 7, 16, 100] {
            for parts in [1usize, 2, 3, 8, 16] {
                let pb = PosBlocks::new(total, parts);
                let mut covered = vec![0u32; total];
                for part in 0..parts {
                    for p in pb.range(part) {
                        assert_eq!(pb.owner(p), part, "total={total} parts={parts} p={p}");
                        covered[p] += 1;
                    }
                }
                assert!(covered.iter().all(|&c| c == 1));
            }
        }
    }

    #[test]
    fn ranges_are_contiguous_and_ordered() {
        let pb = PosBlocks::new(10, 4);
        let mut next = 0;
        for part in 0..4 {
            let r = pb.range(part);
            assert_eq!(r.start, next);
            next = r.end;
        }
        assert_eq!(next, 10);
    }

    #[test]
    fn more_parts_than_positions() {
        let pb = PosBlocks::new(2, 5);
        assert_eq!(pb.size_of(0), 1);
        assert_eq!(pb.size_of(1), 1);
        assert_eq!(pb.size_of(2), 0);
        assert_eq!(pb.owner(1), 1);
    }
}
