//! Error types for schedule construction and data movement.

use std::fmt;

use mcsim::SimError;

/// Errors a schedule build or a coupled data move can report to the caller.
///
/// SPMD protocol violations (a rank of the owning program passing `None`
/// for its side, mismatched collective sequences, …) are programming errors
/// and panic instead, mirroring an MPI abort.  Peer failure, transport
/// give-up, and unbound ports are *recoverable*: they come back as values
/// so a coupled program can degrade gracefully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum McError {
    /// Source and destination SetOfRegions describe different element
    /// counts, so no linearization-to-linearization mapping exists
    /// (the paper's "only constraint", §4.1.2).
    LengthMismatch {
        /// Elements in the source linearization.
        src: usize,
        /// Elements in the destination linearization.
        dst: usize,
    },
    /// A destination linearization position was claimed by two elements
    /// (e.g. an [`crate::IndexSet`] with duplicate indices used as a
    /// destination).
    DuplicateDestination {
        /// The offending linearization position.
        pos: usize,
    },
    /// A schedule with same-rank copy pairs was passed to one half of a
    /// two-program transfer; cross-program schedules never have local
    /// pairs, so this schedule belongs to `data_move`.
    LocalPairsInCrossProgramMove {
        /// Number of local pairs present.
        pairs: usize,
    },
    /// `data_move_send` was called with a schedule under which this rank
    /// also receives — the caller is on the wrong side (or should be using
    /// `data_move`).
    SendSideHasReceives {
        /// Number of peers this rank would receive from.
        peers: usize,
    },
    /// `data_move_recv` was called with a schedule under which this rank
    /// also sends.
    RecvSideHasSends {
        /// Number of peers this rank would send to.
        peers: usize,
    },
    /// The reliable transport exhausted its retry budget against a peer
    /// (permanent partition), or a virtual-clock receive deadline passed.
    PeerTimeout {
        /// Global rank of the unresponsive peer.
        rank: usize,
    },
    /// A peer rank crashed; the transfer cannot complete.
    PeerFailed {
        /// Global rank of the failed peer.
        rank: usize,
        /// The peer's panic message.
        reason: String,
    },
    /// The failure detector evicted a peer: its lease lapsed, or it was
    /// observed restarting under a new incarnation.  Unlike
    /// [`McError::PeerFailed`] the peer may come back — a recovery
    /// session retries the step against the peer's new life.
    PeerEvicted {
        /// Global rank of the evicted peer.
        rank: usize,
        /// The peer's last known incarnation.
        incarnation: u64,
    },
    /// [`crate::coupling::Coupler::put`]/[`crate::coupling::Coupler::get`]
    /// named a port that was never bound.
    UnboundPort {
        /// The port name as given.
        port: String,
    },
    /// [`crate::coupling::Coupler::try_bind`] named a port that already
    /// holds a schedule (use `bind` to replace, or `unbind` first).
    PortAlreadyBound {
        /// The port name as given.
        port: String,
    },
    /// The schedule was built against an older distribution: the object
    /// has been redistributed (remap / REDISTRIBUTE / regrid) since, so the
    /// schedule's local addresses are meaningless.  Rebuild the schedule
    /// (the `mc_*` cached API does this transparently).
    StaleSchedule {
        /// The object's current distribution epoch.
        object_epoch: u64,
        /// The epoch the schedule was built against.
        schedule_epoch: u64,
    },
    /// The two sides of a coupled transfer exchanged manifests that
    /// disagree (different schedule, element type/size, or per-pair
    /// counts); both sides abort symmetrically before any data moves.
    ScheduleMismatch {
        /// Global rank of the disagreeing peer.
        peer: usize,
        /// Human-readable description of the first disagreement found.
        detail: String,
    },
    /// The transport delivered something undecodable, or the world tore
    /// down mid-transfer.
    Transport(String),
}

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McError::LengthMismatch { src, dst } => write!(
                f,
                "source linearization has {src} elements but destination has {dst}"
            ),
            McError::DuplicateDestination { pos } => {
                write!(f, "destination position {pos} specified more than once")
            }
            McError::LocalPairsInCrossProgramMove { pairs } => write!(
                f,
                "cross-program schedules cannot have local pairs ({pairs} present); use data_move"
            ),
            McError::SendSideHasReceives { peers } => write!(
                f,
                "this rank's schedule has receives from {peers} peer(s); use data_move or data_move_recv"
            ),
            McError::RecvSideHasSends { peers } => write!(
                f,
                "this rank's schedule has sends to {peers} peer(s); use data_move or data_move_send"
            ),
            McError::PeerTimeout { rank } => {
                write!(f, "gave up waiting for rank {rank} (retry budget exhausted)")
            }
            McError::PeerFailed { rank, reason } => {
                write!(f, "peer rank {rank} failed: {reason}")
            }
            McError::PeerEvicted { rank, incarnation } => {
                write!(f, "peer rank {rank} evicted (incarnation {incarnation})")
            }
            McError::UnboundPort { port } => {
                write!(f, "port '{port}' is not bound")
            }
            McError::PortAlreadyBound { port } => {
                write!(f, "port '{port}' is already bound")
            }
            McError::StaleSchedule {
                object_epoch,
                schedule_epoch,
            } => write!(
                f,
                "schedule built against distribution epoch {schedule_epoch}, \
                 but the object is now at epoch {object_epoch}; rebuild the schedule"
            ),
            McError::ScheduleMismatch { peer, detail } => {
                write!(f, "transfer manifest disagrees with peer rank {peer}: {detail}")
            }
            McError::Transport(msg) => write!(f, "transport error: {msg}"),
        }
    }
}

impl std::error::Error for McError {}

impl From<SimError> for McError {
    fn from(e: SimError) -> Self {
        match e {
            SimError::PeerFailed { rank, reason } => McError::PeerFailed { rank, reason },
            SimError::PeerTimeout { rank } => McError::PeerTimeout { rank },
            SimError::PeerEvicted { rank, incarnation } => {
                McError::PeerEvicted { rank, incarnation }
            }
            SimError::Decode(msg) => McError::Transport(msg),
            SimError::Shutdown => McError::Transport("world tore down".to_string()),
            SimError::DeadlineExceeded => {
                McError::Transport("virtual-clock deadline exceeded".to_string())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = McError::LengthMismatch { src: 3, dst: 5 };
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("5"));
        assert!(McError::DuplicateDestination { pos: 9 }
            .to_string()
            .contains("9"));
    }
}
