//! Error types for schedule construction.

use std::fmt;

/// Errors a schedule build can report to the caller.
///
/// SPMD protocol violations (a rank of the owning program passing `None`
/// for its side, mismatched collective sequences, …) are programming errors
/// and panic instead, mirroring an MPI abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum McError {
    /// Source and destination SetOfRegions describe different element
    /// counts, so no linearization-to-linearization mapping exists
    /// (the paper's "only constraint", §4.1.2).
    LengthMismatch {
        /// Elements in the source linearization.
        src: usize,
        /// Elements in the destination linearization.
        dst: usize,
    },
    /// A destination linearization position was claimed by two elements
    /// (e.g. an [`crate::IndexSet`] with duplicate indices used as a
    /// destination).
    DuplicateDestination {
        /// The offending linearization position.
        pos: usize,
    },
}

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McError::LengthMismatch { src, dst } => write!(
                f,
                "source linearization has {src} elements but destination has {dst}"
            ),
            McError::DuplicateDestination { pos } => {
                write!(f, "destination position {pos} specified more than once")
            }
        }
    }
}

impl std::error::Error for McError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = McError::LengthMismatch { src: 3, dst: 5 };
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("5"));
        assert!(McError::DuplicateDestination { pos: 9 }
            .to_string()
            .contains("9"));
    }
}
