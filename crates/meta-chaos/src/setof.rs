//! Ordered collections of regions (paper §4.1.1).
//!
//! Regions are gathered into an ordered group called a *SetOfRegions*.  The
//! linearization of a SetOfRegions is the linearization of its first region
//! followed by the linearizations of the rest (paper §4.1.2).

use mcsim::error::SimError;
use mcsim::wire::{Wire, WireReader};

use crate::region::Region;

/// An ordered group of regions; the unit a data transfer is specified over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetOfRegions<R> {
    regions: Vec<R>,
}

impl<R: Region> SetOfRegions<R> {
    /// An empty set (add regions with [`Self::add`], mirroring the paper's
    /// `MC_NewSetOfRegion` / `MC_AddRegion2Set` calls).
    pub fn new() -> Self {
        SetOfRegions {
            regions: Vec::new(),
        }
    }

    /// Build directly from regions.
    pub fn from_regions(regions: Vec<R>) -> Self {
        SetOfRegions { regions }
    }

    /// A set containing a single region.
    pub fn single(region: R) -> Self {
        SetOfRegions {
            regions: vec![region],
        }
    }

    /// Append a region (order is significant: it extends the linearization).
    pub fn add(&mut self, region: R) {
        self.regions.push(region);
    }

    /// The regions in order.
    pub fn regions(&self) -> &[R] {
        &self.regions
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Total elements across all regions — the linearization length.
    pub fn total_len(&self) -> usize {
        self.regions.iter().map(|r| r.len()).sum()
    }

    /// Linearization offsets: `offsets()[i]` is the position of region `i`'s
    /// first element in the set's linearization (one extra trailing entry
    /// equals [`Self::total_len`]).
    pub fn offsets(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.regions.len() + 1);
        let mut acc = 0;
        out.push(0);
        for r in &self.regions {
            acc += r.len();
            out.push(acc);
        }
        out
    }

    /// Map a linearization position to `(region index, offset inside it)`.
    pub fn locate_position(&self, pos: usize) -> (usize, usize) {
        let mut rem = pos;
        for (i, r) in self.regions.iter().enumerate() {
            let n = r.len();
            if rem < n {
                return (i, rem);
            }
            rem -= n;
        }
        panic!(
            "position {pos} out of range for SetOfRegions of {} elements",
            self.total_len()
        );
    }
}

impl<R: Region> Default for SetOfRegions<R> {
    fn default() -> Self {
        SetOfRegions::new()
    }
}

impl<R: Region + Wire> Wire for SetOfRegions<R> {
    fn write(&self, out: &mut Vec<u8>) {
        self.regions.write(out);
    }
    fn read(r: &mut WireReader<'_>) -> Result<Self, SimError> {
        Ok(SetOfRegions {
            regions: Vec::<R>::read(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{IndexSet, RegularSection};

    #[test]
    fn totals_and_offsets() {
        let mut s = SetOfRegions::new();
        s.add(RegularSection::of_bounds(&[(0, 2), (0, 3)])); // 6
        s.add(RegularSection::of_bounds(&[(5, 7), (1, 2)])); // 2
        assert_eq!(s.num_regions(), 2);
        assert_eq!(s.total_len(), 8);
        assert_eq!(s.offsets(), vec![0, 6, 8]);
    }

    #[test]
    fn locate_position_spans_regions() {
        let s = SetOfRegions::from_regions(vec![
            IndexSet::new(vec![10, 20, 30]),
            IndexSet::new(vec![40]),
            IndexSet::new(vec![50, 60]),
        ]);
        assert_eq!(s.locate_position(0), (0, 0));
        assert_eq!(s.locate_position(2), (0, 2));
        assert_eq!(s.locate_position(3), (1, 0));
        assert_eq!(s.locate_position(4), (2, 0));
        assert_eq!(s.locate_position(5), (2, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn locate_position_out_of_range() {
        let s = SetOfRegions::single(IndexSet::new(vec![1]));
        let _ = s.locate_position(1);
    }

    #[test]
    fn wire_roundtrip() {
        let s = SetOfRegions::from_regions(vec![IndexSet::new(vec![3, 1]), IndexSet::new(vec![])]);
        let b = s.to_bytes();
        assert_eq!(SetOfRegions::<IndexSet>::from_bytes(&b).unwrap(), s);
    }

    #[test]
    fn empty_set() {
        let s: SetOfRegions<IndexSet> = SetOfRegions::default();
        assert_eq!(s.total_len(), 0);
        assert_eq!(s.offsets(), vec![0]);
    }
}
