//! # meta-chaos — interoperability of data-parallel runtime libraries
//!
//! This crate is the Rust reproduction of the framework described in
//! *"Interoperability of Data Parallel Runtime Libraries with Meta-Chaos"*
//! (Edjlali, Sussman, Saltz — IPPS 1997).  It lets distributed data
//! structures managed by **different** data-parallel runtime libraries
//! exchange data — within one SPMD program or between two separately
//! running programs — without either library knowing anything about the
//! other's distribution.
//!
//! ## The five steps (paper §4.1)
//!
//! 1. specify the elements to send from the source structure — a
//!    [`SetOfRegions`] of library-defined [`Region`]s;
//! 2. specify the elements to receive into the destination structure —
//!    another [`SetOfRegions`];
//! 3. the correspondence is implicit in the **virtual linearization**: the
//!    k-th element of the source linearization maps to the k-th element of
//!    the destination linearization (never materialized);
//! 4. build a communication [`Schedule`] from the libraries' inquiry
//!    functions ([`McObject`]) — by [`BuildMethod::Cooperation`] or
//!    [`BuildMethod::Duplication`];
//! 5. move the data with the schedule ([`data_move`], or
//!    [`data_move_send`]/[`data_move_recv`] across two programs), as many
//!    times as needed — schedules are reusable and symmetric.
//!
//! ## What a library must provide
//!
//! Exactly what the paper asks of a library implementor: a Region type, a
//! way to enumerate/locate the elements of a region in linearization order
//! ([`McObject::deref_owned`] and [`McDescriptor::locate`]), and
//! pack/unpack.  The `multiblock`, `chaos`, `hpf` and `tulip` crates in
//! this workspace are four such libraries.
//!
//! ## Example
//!
//! A runnable end-to-end transfer (two single-owner [`SeqVec`]s standing in
//! for full libraries; see the workspace's `quickstart` example for the
//! multi-library version):
//!
//! ```
//! use mcsim::prelude::*;
//! use meta_chaos::prelude::*;
//! use meta_chaos::SeqVec;
//!
//! let world = World::with_model(2, MachineModel::zero());
//! let out = world.run(|ep| {
//!     let g = Group::world(2);
//!     // Source lives on rank 0, destination on rank 1.
//!     let mut src = SeqVec::<f64>::new(ep.rank(), 0, 8);
//!     if ep.rank() == 0 {
//!         for (i, v) in src.values_mut().iter_mut().enumerate() {
//!             *v = i as f64;
//!         }
//!     }
//!     let mut dst = SeqVec::<f64>::new(ep.rank(), 1, 8);
//!
//!     // dst[k] = src[7 - k]: the mapping is implicit in the two
//!     // linearizations (paper §4.1.2).
//!     let sset = SetOfRegions::single(IndexSet::new((0..8).rev().collect()));
//!     let dset = SetOfRegions::single(IndexSet::new((0..8).collect()));
//!     let sched = compute_schedule(
//!         ep, &g,
//!         &g, Some(Side::new(&src, &sset)),
//!         &g, Some(Side::new(&dst, &dset)),
//!         BuildMethod::Cooperation,
//!     ).unwrap();
//!     data_move(ep, &sched, &src, &mut dst);
//!     dst.values().to_vec()
//! });
//! assert_eq!(out.results[1], vec![7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.0]);
//! ```

// Indexed loops over multiple parallel arrays are the clearest idiom in
// this numerical code.
#![allow(clippy::needless_range_loop)]

pub mod adapter;
pub mod api;
pub mod build;
pub mod coupling;
pub mod datamove;
pub mod error;
pub mod linear;
pub mod obs;
pub mod posmap;
pub mod region;
pub mod runs;
pub mod schedule;
pub mod seqvec;
pub mod session;
pub mod setof;
pub mod validate;

#[cfg(test)]
pub(crate) mod testlib;

pub use adapter::{Location, McDescriptor, McObject, Side};
pub use build::{compute_schedule, compute_schedule_reference, BuildMethod};
pub use coupling::Coupler;
pub use datamove::{data_move, data_move_recv, data_move_send, try_data_move};
pub use error::McError;
pub use obs::{record_abort, take_last_abort, AbortReport};
pub use region::{DimSlice, IndexSet, Region, RegularSection};
pub use runs::{coalesce_owned, LocatedRun, OwnedRun, RunBuilder};
pub use schedule::{elem_type, Schedule};
pub use seqvec::SeqVec;
pub use session::RecoverySession;
pub use setof::SetOfRegions;
pub use validate::{validate_schedule, ScheduleIssue};

/// A local address within a library's per-rank storage.
pub type LocalAddr = usize;

/// Convenient glob import.
pub mod prelude {
    pub use crate::adapter::{Location, McDescriptor, McObject, Side};
    pub use crate::build::{compute_schedule, BuildMethod};
    pub use crate::datamove::{data_move, data_move_recv, data_move_send};
    pub use crate::region::{DimSlice, IndexSet, Region, RegularSection};
    pub use crate::schedule::Schedule;
    pub use crate::session::RecoverySession;
    pub use crate::setof::SetOfRegions;
    pub use crate::LocalAddr;
}
