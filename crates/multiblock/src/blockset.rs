//! Multi-block management — the feature Multiblock Parti is named for.
//!
//! A multiblock code decomposes its domain into several logically
//! rectangular blocks (each a [`MultiblockArray`]) that meet along
//! *interfaces*.  Every time step, boundary values are copied across each
//! interface ("inter-block boundaries must be updated at every time-step",
//! paper §5.3).  A [`BlockSet`] owns the blocks and a reusable interface
//! schedule for each declared coupling, built with the native
//! regular-section machinery.

use mcsim::group::Group;
use mcsim::prelude::Endpoint;

use meta_chaos::region::{Region, RegularSection};
use meta_chaos::schedule::Schedule;

use crate::array::MultiblockArray;
use crate::native_move::{build_copy_schedule, parti_copy};

/// One directed interface: `blocks[dst].section ← blocks[src].section`.
#[derive(Debug, Clone)]
pub struct Interface {
    /// Index of the source block.
    pub src_block: usize,
    /// Source section (in the source block's global coordinates).
    pub src_section: RegularSection,
    /// Index of the destination block.
    pub dst_block: usize,
    /// Destination section (same element count as the source's).
    pub dst_section: RegularSection,
}

/// A set of block-distributed arrays plus prebuilt interface schedules.
pub struct BlockSet<T> {
    blocks: Vec<MultiblockArray<T>>,
    interfaces: Vec<(Interface, Schedule)>,
}

impl<T: Copy + Default + mcsim::wire::Wire> BlockSet<T> {
    /// Create `shapes.len()` blocks, all distributed over `prog`, each with
    /// the given halo.
    pub fn new(prog: &Group, me_global: usize, shapes: &[Vec<usize>], halo: usize) -> Self {
        let blocks = shapes
            .iter()
            .map(|s| MultiblockArray::with_halo(prog, me_global, s, halo))
            .collect();
        BlockSet {
            blocks,
            interfaces: Vec::new(),
        }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Access a block.
    pub fn block(&self, i: usize) -> &MultiblockArray<T> {
        &self.blocks[i]
    }

    /// Mutable access to a block.
    pub fn block_mut(&mut self, i: usize) -> &mut MultiblockArray<T> {
        &mut self.blocks[i]
    }

    /// Declare an interface and build its reusable schedule (inspector).
    /// Collective over the owning program.
    ///
    /// # Panics
    /// Panics if the sections' element counts differ or a block index is
    /// out of range.
    pub fn add_interface(&mut self, ep: &mut Endpoint, prog: &Group, iface: Interface) {
        assert!(iface.src_block < self.blocks.len(), "bad src block");
        assert!(iface.dst_block < self.blocks.len(), "bad dst block");
        assert_eq!(
            iface.src_section.len(),
            iface.dst_section.len(),
            "interface sections must pair up"
        );
        let sched = build_copy_schedule(
            ep,
            prog,
            &self.blocks[iface.src_block],
            &iface.src_section,
            &self.blocks[iface.dst_block],
            &iface.dst_section,
        );
        self.interfaces.push((iface, sched));
    }

    /// Number of declared interfaces.
    pub fn num_interfaces(&self) -> usize {
        self.interfaces.len()
    }

    /// Executor: update every interface, in declaration order.
    ///
    /// Uses split-borrow copies so an interface may connect a block to
    /// itself (e.g. a periodic wrap).
    pub fn update_interfaces(&mut self, ep: &mut Endpoint) {
        for k in 0..self.interfaces.len() {
            let (src_i, dst_i) = {
                let (iface, _) = &self.interfaces[k];
                (iface.src_block, iface.dst_block)
            };
            if src_i == dst_i {
                // Self-coupling: stage through a clone of the source block
                // (Parti's intermediate buffer, writ large).
                let src_copy = self.blocks[src_i].clone();
                let (_, sched) = &self.interfaces[k];
                parti_copy(ep, sched, &src_copy, &mut self.blocks[dst_i]);
            } else {
                let (lo, hi) = (src_i.min(dst_i), src_i.max(dst_i));
                let (head, tail) = self.blocks.split_at_mut(hi);
                let (first, second) = (&mut head[lo], &mut tail[0]);
                let (src, dst) = if src_i < dst_i {
                    (&*first, second)
                } else {
                    (&*second, first)
                };
                let (_, sched) = &self.interfaces[k];
                parti_copy(ep, sched, src, dst);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim::model::MachineModel;
    use mcsim::world::World;
    use meta_chaos::region::RegularSection;

    /// Two 2-D blocks side by side: block 1's left edge mirrors block 0's
    /// right edge and vice versa (a classic C-grid seam).
    #[test]
    fn two_block_seam_exchange() {
        for p in [1, 2, 4] {
            let world = World::with_model(p, MachineModel::zero());
            world.run(move |ep| {
                let g = Group::world(p);
                let mut bs = BlockSet::<f64>::new(&g, ep.rank(), &[vec![6, 8], vec![6, 8]], 0);
                bs.block_mut(0).fill_with(|c| (c[0] * 8 + c[1]) as f64);
                bs.block_mut(1)
                    .fill_with(|c| 1000.0 + (c[0] * 8 + c[1]) as f64);

                // block1[:, 0] <- block0[:, 7]  and  block0[:, 7] ... keep
                // one direction first for clarity.
                bs.add_interface(
                    ep,
                    &g,
                    Interface {
                        src_block: 0,
                        src_section: RegularSection::of_bounds(&[(0, 6), (7, 8)]),
                        dst_block: 1,
                        dst_section: RegularSection::of_bounds(&[(0, 6), (0, 1)]),
                    },
                );
                bs.add_interface(
                    ep,
                    &g,
                    Interface {
                        src_block: 1,
                        src_section: RegularSection::of_bounds(&[(0, 6), (6, 7)]),
                        dst_block: 0,
                        dst_section: RegularSection::of_bounds(&[(0, 6), (0, 1)]),
                    },
                );
                assert_eq!(bs.num_interfaces(), 2);
                bs.update_interfaces(ep);

                for i in 0..6 {
                    if bs.block(1).owns(&[i, 0]) {
                        assert_eq!(bs.block(1).get(&[i, 0]), (i * 8 + 7) as f64);
                    }
                    if bs.block(0).owns(&[i, 0]) {
                        // block1 column 6 was 1000 + i*8+6 before updates;
                        // interfaces run in order, so block0 sees the value
                        // block1 held *before* its own column 0 changed.
                        assert_eq!(bs.block(0).get(&[i, 0]), 1000.0 + (i * 8 + 6) as f64);
                    }
                }
            });
        }
    }

    /// Schedules are reusable across steps; data follows the blocks.
    #[test]
    fn interfaces_reusable_over_steps() {
        let world = World::with_model(2, MachineModel::zero());
        world.run(|ep| {
            let g = Group::world(2);
            let mut bs = BlockSet::<f64>::new(&g, ep.rank(), &[vec![4], vec![4]], 0);
            bs.add_interface(
                ep,
                &g,
                Interface {
                    src_block: 0,
                    src_section: RegularSection::of_bounds(&[(3, 4)]),
                    dst_block: 1,
                    dst_section: RegularSection::of_bounds(&[(0, 1)]),
                },
            );
            for step in 0..3 {
                bs.block_mut(0).fill_with(|c| (c[0] + 10 * step) as f64);
                bs.update_interfaces(ep);
                if bs.block(1).owns(&[0]) {
                    assert_eq!(bs.block(1).get(&[0]), (3 + 10 * step) as f64);
                }
            }
        });
    }

    /// A periodic self-interface on a single block.
    #[test]
    fn periodic_self_interface() {
        let world = World::with_model(2, MachineModel::zero());
        world.run(|ep| {
            let g = Group::world(2);
            let mut bs = BlockSet::<f64>::new(&g, ep.rank(), &[vec![8]], 0);
            bs.block_mut(0).fill_with(|c| c[0] as f64);
            bs.add_interface(
                ep,
                &g,
                Interface {
                    src_block: 0,
                    src_section: RegularSection::of_bounds(&[(7, 8)]),
                    dst_block: 0,
                    dst_section: RegularSection::of_bounds(&[(0, 1)]),
                },
            );
            bs.update_interfaces(ep);
            if bs.block(0).owns(&[0]) {
                assert_eq!(bs.block(0).get(&[0]), 7.0);
            }
            if bs.block(0).owns(&[1]) {
                assert_eq!(bs.block(0).get(&[1]), 1.0);
            }
        });
    }

    #[test]
    #[should_panic(expected = "must pair up")]
    fn mismatched_interface_rejected() {
        let world = World::with_model(1, MachineModel::zero());
        world.run(|ep| {
            let g = Group::world(1);
            let mut bs = BlockSet::<f64>::new(&g, ep.rank(), &[vec![4], vec![4]], 0);
            bs.add_interface(
                ep,
                &g,
                Interface {
                    src_block: 0,
                    src_section: RegularSection::of_bounds(&[(0, 2)]),
                    dst_block: 1,
                    dst_section: RegularSection::of_bounds(&[(0, 3)]),
                },
            );
        });
    }
}
