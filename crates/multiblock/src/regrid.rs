//! Regridding — dynamic re-blocking of a multiblock array, implemented
//! *on top of Meta-Chaos*.
//!
//! Adaptive structured codes periodically re-block their arrays (a new
//! processor grid after load rebalancing, or a different aspect ratio for
//! a new sweep direction).  Because a [`MultiblockArray`] exports the
//! Meta-Chaos interface functions, regridding is just a whole-array
//! transfer between two differently blocked instances — the structured
//! counterpart of HPF `REDISTRIBUTE` and Chaos `remap`, and like them it
//! advances the array's distribution epoch so schedules built against the
//! old layout are detectably stale.

use mcsim::group::Group;
use mcsim::prelude::Endpoint;

use meta_chaos::build::{compute_schedule, BuildMethod};
use meta_chaos::datamove::data_move;
use meta_chaos::region::RegularSection;
use meta_chaos::setof::SetOfRegions;
use meta_chaos::Side;

use crate::array::MultiblockArray;
use crate::dist::BlockDist;

/// Produce a copy of `src` blocked by `new_dist` (same shape, same
/// program).  Collective over `prog`.  Halo contents are not migrated —
/// refill them with a ghost exchange after regridding.
///
/// # Panics
/// Panics if the shapes differ or `new_dist`'s grid does not cover the
/// program.
pub fn regrid<T: Copy + Default + mcsim::wire::Wire>(
    ep: &mut Endpoint,
    prog: &Group,
    src: &MultiblockArray<T>,
    new_dist: BlockDist,
) -> MultiblockArray<T> {
    assert_eq!(
        src.dist().shape(),
        new_dist.shape(),
        "regridding cannot change the array shape"
    );
    let mut dst = MultiblockArray::<T>::from_dist(prog, ep.rank(), new_dist);
    let whole = SetOfRegions::single(RegularSection::whole(src.dist().shape()));
    let sched = compute_schedule(
        ep,
        prog,
        prog,
        Some(Side::new(src, &whole)),
        prog,
        Some(Side::new(&dst, &whole)),
        // Both descriptors are a few integers: the communication-free
        // duplication build is the natural choice here.
        BuildMethod::Duplication,
    )
    .expect("same shape implies equal linearization lengths");
    data_move(ep, &sched, src, &mut dst);
    // Bump *after* the move: the schedule above was built against the
    // fresh destination (epoch 0); the bump marks the regridding so
    // schedules built against `src`'s layout become stale.
    dst.set_epoch(src.epoch() + 1);
    dst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ProcGrid;
    use mcsim::model::MachineModel;
    use mcsim::world::World;

    #[test]
    fn reblock_preserves_values() {
        let world = World::with_model(4, MachineModel::zero());
        world.run(|ep| {
            let g = Group::world(4);
            let mut a = MultiblockArray::<f64>::new(&g, ep.rank(), &[8, 8]);
            a.fill_with(|c| (c[0] * 8 + c[1]) as f64);
            // 2x2 grid -> 4x1 (row blocks) -> 1x4 (column blocks).
            let rows = BlockDist::new(vec![8, 8], ProcGrid::new(vec![4, 1]), 0);
            let b = regrid(ep, &g, &a, rows);
            let boxx = b.my_box();
            for i in boxx[0].0..boxx[0].1 {
                for j in boxx[1].0..boxx[1].1 {
                    assert_eq!(b.get(&[i, j]), (i * 8 + j) as f64);
                }
            }
            let cols = BlockDist::new(vec![8, 8], ProcGrid::new(vec![1, 4]), 0);
            let c = regrid(ep, &g, &b, cols);
            let boxx = c.my_box();
            for i in boxx[0].0..boxx[0].1 {
                for j in boxx[1].0..boxx[1].1 {
                    assert_eq!(c.get(&[i, j]), (i * 8 + j) as f64);
                }
            }
            // Each regrid advances the distribution epoch.
            assert_eq!(a.epoch(), 0);
            assert_eq!(b.epoch(), 1);
            assert_eq!(c.epoch(), 2);
        });
    }

    #[test]
    #[should_panic(expected = "cannot change the array shape")]
    fn shape_change_rejected() {
        let world = World::with_model(1, MachineModel::zero());
        world.run(|ep| {
            let g = Group::world(1);
            let a = MultiblockArray::<f64>::new(&g, ep.rank(), &[4, 4]);
            let _ = regrid(
                ep,
                &g,
                &a,
                BlockDist::new(vec![4, 5], ProcGrid::new(vec![1, 1]), 0),
            );
        });
    }
}
