//! # multiblock — a Multiblock Parti analogue
//!
//! Multiblock Parti (Agrawal, Sussman, Saltz) is the Maryland runtime
//! library for *structured* multiblock/multigrid codes: multidimensional
//! arrays distributed by blocks over a processor grid, ghost-cell
//! ("overlap") exchange between neighbouring blocks, and optimized
//! regular-section moves between block-distributed arrays.
//!
//! This crate re-implements the parts of that library the Meta-Chaos paper
//! exercises, on top of the `mcsim` simulated machine:
//!
//! * [`grid::ProcGrid`] / [`dist::BlockDist`] — processor grids and
//!   block distributions with closed-form owner arithmetic;
//! * [`array::MultiblockArray`] — the distributed array with halo storage;
//! * [`ghost`] — inspector/executor ghost-cell exchange (the intra-mesh
//!   communication of the paper's Table 1 loops);
//! * [`sweep`] — the regular-mesh stencil sweep of the paper's Figure 1
//!   (Loop 1);
//! * [`regrid`] — dynamic re-blocking of an array onto a new processor
//!   grid, implemented on top of Meta-Chaos (the structured counterpart of
//!   HPF `REDISTRIBUTE` and Chaos `remap`);
//! * [`native_move`] — Parti's own regular-section copy between two
//!   block-distributed arrays: the specialized baseline Meta-Chaos is
//!   compared against in Table 5 (note its intermediate staging buffer for
//!   local copies, which Meta-Chaos avoids);
//! * [`blockset`] — multi-block domains: several blocks plus reusable
//!   inter-block interface schedules (the library's namesake feature);
//! * [`adapter`] — the Meta-Chaos interface functions
//!   ([`meta_chaos::McObject`]) for `MultiblockArray`, with
//!   [`RegularSection`](meta_chaos::RegularSection) as the Region type.

// Indexed loops over multiple parallel arrays are the clearest idiom in
// this numerical code.
#![allow(clippy::needless_range_loop)]

pub mod adapter;
pub mod array;
pub mod blockset;
pub mod dist;
pub mod ghost;
pub mod grid;
pub mod multigrid;
pub mod native_move;
pub mod regrid;
pub mod stencil;
pub mod sweep;

pub use adapter::BlockDesc;
pub use array::MultiblockArray;
pub use blockset::{BlockSet, Interface};
pub use dist::BlockDist;
pub use ghost::GhostSchedule;
pub use grid::ProcGrid;
pub use multigrid::Multigrid;
pub use regrid::regrid;
pub use stencil::{Stencil, StencilOp, Tap};
