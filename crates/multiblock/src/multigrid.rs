//! Geometric multigrid over block-distributed arrays — the multigrid /
//! multiblock application domain (GMD, Multiblock Parti) the paper's
//! introduction motivates.
//!
//! The inter-grid transfer operators are *strided regular-section copies*:
//! restriction samples the fine grid at stride 2 into the coarse grid, and
//! prolongation injects the coarse grid back into the fine grid's even
//! points — both expressed with the native Parti schedule machinery and
//! built once per level pair (inspector), then reused every V-cycle
//! (executor).
//!
//! The solver is a textbook V-cycle for the 2-D Poisson equation
//! `-Δu = f` with zero Dirichlet boundaries: damped-Jacobi smoothing,
//! separable full-weighting restriction, and bilinear prolongation (both
//! transfers arranged so only face halos are ever needed).  It is
//! deliberately simple — the point is the *communication structure*, which
//! is exactly what Multiblock Parti provided to real multigrid codes.

use mcsim::group::{Comm, Group};
use mcsim::prelude::Endpoint;

use meta_chaos::region::{DimSlice, RegularSection};
use meta_chaos::schedule::Schedule;

use crate::array::MultiblockArray;
use crate::ghost::{build_ghost_schedule, exchange_halo, GhostSchedule};
use crate::native_move::{build_copy_schedule, parti_copy};

/// One multigrid level: solution, right-hand side, and two haloed work
/// arrays (residual/staging and the separable-transfer temporary), plus
/// the level's halo schedules.
struct Level {
    u: MultiblockArray<f64>,
    f: MultiblockArray<f64>,
    /// Residual / correction staging (halo 1).
    r: MultiblockArray<f64>,
    /// Separable-transfer temporary (halo 1).
    t: MultiblockArray<f64>,
    ghost_u: GhostSchedule,
    ghost_r: GhostSchedule,
    ghost_t: GhostSchedule,
    /// Grid spacing squared (h² for this level).
    h2: f64,
    n: usize,
}

/// A V-cycle Poisson solver over `levels` grids; the finest is
/// `(2^levels * base + 1)` points per side.
pub struct Multigrid {
    levels: Vec<Level>,
    /// Restriction schedules: fine residual (stride 2) → coarse rhs.
    restrict: Vec<Schedule>,
    /// Prolongation schedules: coarse solution → fine correction points.
    prolong: Vec<Schedule>,
    nu_pre: usize,
    nu_post: usize,
}

impl Multigrid {
    /// Build the hierarchy (inspector): allocate every level and its
    /// inter-grid schedules.  Collective over `prog`.
    ///
    /// `finest_n` must be of the form `2^k * m + 1` with at least
    /// `levels - 1` halvings possible; every level must still cover the
    /// processor grid.
    pub fn new(
        ep: &mut Endpoint,
        prog: &Group,
        finest_n: usize,
        levels: usize,
        nu_pre: usize,
        nu_post: usize,
    ) -> Self {
        assert!(levels >= 1);
        let me = ep.rank();
        let mut lv = Vec::with_capacity(levels);
        let mut n = finest_n;
        let mut h = 1.0 / (finest_n - 1) as f64;
        for _ in 0..levels {
            assert!(n >= 3, "coarsest grid too small");
            let u = MultiblockArray::<f64>::with_halo(prog, me, &[n, n], 1);
            let f = MultiblockArray::<f64>::with_halo(prog, me, &[n, n], 0);
            let r = MultiblockArray::<f64>::with_halo(prog, me, &[n, n], 1);
            let t = MultiblockArray::<f64>::with_halo(prog, me, &[n, n], 1);
            let ghost_u = build_ghost_schedule(ep, &u);
            let ghost_r = build_ghost_schedule(ep, &r);
            let ghost_t = build_ghost_schedule(ep, &t);
            lv.push(Level {
                u,
                f,
                r,
                t,
                ghost_u,
                ghost_r,
                ghost_t,
                h2: h * h,
                n,
            });
            assert!(n % 2 == 1, "grid size must be odd for coarsening");
            n = (n - 1) / 2 + 1;
            h *= 2.0;
        }

        // Inter-grid schedules between consecutive levels.
        let mut restrict = Vec::new();
        let mut prolong = Vec::new();
        for k in 0..levels - 1 {
            let (fine, coarse) = (&lv[k], &lv[k + 1]);
            // Fine even points (stride 2 over the whole grid) pair with all
            // coarse points, in row-major order on both sides.
            let fine_even = RegularSection::new(vec![
                DimSlice::strided(0, fine.n, 2),
                DimSlice::strided(0, fine.n, 2),
            ]);
            let coarse_all = RegularSection::whole(&[coarse.n, coarse.n]);
            restrict.push(build_copy_schedule(
                ep,
                prog,
                &fine.t, // full-weighted residual, staged in t
                &fine_even,
                &coarse.f,
                &coarse_all,
            ));
            prolong.push(build_copy_schedule(
                ep,
                prog,
                &coarse.u,
                &coarse_all,
                &fine.t, // correction staged into t, then interpolated
                &fine_even,
            ));
        }
        Multigrid {
            levels: lv,
            restrict,
            prolong,
            nu_pre,
            nu_post,
        }
    }

    /// Finest-level grid size.
    pub fn finest_n(&self) -> usize {
        self.levels[0].n
    }

    /// Set the finest right-hand side from `f(x, y)` (unit square).
    pub fn set_rhs(&mut self, f: impl Fn(f64, f64) -> f64) {
        let n = self.levels[0].n;
        let h = 1.0 / (n - 1) as f64;
        self.levels[0]
            .f
            .fill_with(|c| f(c[0] as f64 * h, c[1] as f64 * h));
        self.levels[0].u.fill_with(|_| 0.0);
    }

    /// Damped Jacobi smoothing sweeps on level `k`.
    fn smooth(ep: &mut Endpoint, level: &mut Level, sweeps: usize) {
        const OMEGA: f64 = 0.8;
        for _ in 0..sweeps {
            exchange_halo(ep, &mut level.u, &level.ghost_u);
            let boxx = level.u.my_box();
            let (ilo, ihi) = (boxx[0].0.max(1), boxx[0].1.min(level.n - 1));
            let (jlo, jhi) = (boxx[1].0.max(1), boxx[1].1.min(level.n - 1));
            let mut upd = Vec::new();
            for i in ilo..ihi {
                for j in jlo..jhi {
                    let nb = level.u.get(&[i - 1, j])
                        + level.u.get(&[i + 1, j])
                        + level.u.get(&[i, j - 1])
                        + level.u.get(&[i, j + 1]);
                    let jac = 0.25 * (nb + level.h2 * level.f.get(&[i, j]));
                    upd.push((1.0 - OMEGA) * level.u.get(&[i, j]) + OMEGA * jac);
                }
            }
            let mut k = 0;
            for i in ilo..ihi {
                for j in jlo..jhi {
                    level.u.set(&[i, j], upd[k]);
                    k += 1;
                }
            }
            ep.charge_flops(upd.len() * 10);
        }
    }

    /// Residual `r = f + Δu` on level `k` (zero on the boundary).
    fn residual(ep: &mut Endpoint, level: &mut Level) {
        exchange_halo(ep, &mut level.u, &level.ghost_u);
        let boxx = level.u.my_box();
        let n = level.n;
        let mut vals = Vec::new();
        for i in boxx[0].0..boxx[0].1 {
            for j in boxx[1].0..boxx[1].1 {
                let v = if i == 0 || j == 0 || i == n - 1 || j == n - 1 {
                    0.0
                } else {
                    let lap = level.u.get(&[i - 1, j])
                        + level.u.get(&[i + 1, j])
                        + level.u.get(&[i, j - 1])
                        + level.u.get(&[i, j + 1])
                        - 4.0 * level.u.get(&[i, j]);
                    level.f.get(&[i, j]) + lap / level.h2
                };
                vals.push(((i, j), v));
            }
        }
        for ((i, j), v) in vals {
            level.r.set(&[i, j], v);
        }
        ep.charge_flops(level.r.local().len() * 8);
    }

    /// Separable full-weighting of the residual into `t`:
    /// `t = (1/16)[1 2 1]ᵀ[1 2 1] r` computed as two 1-D passes so only
    /// face halos are needed.
    fn full_weight(ep: &mut Endpoint, level: &mut Level) {
        let n = level.n;
        exchange_halo(ep, &mut level.r, &level.ghost_r);
        let boxx = level.r.my_box();
        // Pass 1 (j direction) into t.
        let mut vals = Vec::new();
        for i in boxx[0].0..boxx[0].1 {
            for j in boxx[1].0..boxx[1].1 {
                let v = if j == 0 || j == n - 1 {
                    0.0
                } else {
                    0.25 * (level.r.get(&[i, j - 1])
                        + 2.0 * level.r.get(&[i, j])
                        + level.r.get(&[i, j + 1]))
                };
                vals.push(v);
            }
        }
        let mut k = 0;
        for i in boxx[0].0..boxx[0].1 {
            for j in boxx[1].0..boxx[1].1 {
                level.t.set(&[i, j], vals[k]);
                k += 1;
            }
        }
        exchange_halo(ep, &mut level.t, &level.ghost_t);
        // Pass 2 (i direction), in place over owned points of t.
        let mut vals = Vec::new();
        for i in boxx[0].0..boxx[0].1 {
            for j in boxx[1].0..boxx[1].1 {
                let v = if i == 0 || i == n - 1 {
                    0.0
                } else {
                    0.25 * (level.t.get(&[i - 1, j])
                        + 2.0 * level.t.get(&[i, j])
                        + level.t.get(&[i + 1, j]))
                };
                vals.push(v);
            }
        }
        let mut k = 0;
        for i in boxx[0].0..boxx[0].1 {
            for j in boxx[1].0..boxx[1].1 {
                level.t.set(&[i, j], vals[k]);
                k += 1;
            }
        }
        ep.charge_flops(2 * vals.len() * 4);
    }

    /// Bilinear interpolation of the coarse correction (already injected
    /// into `t` at even-even points; everything else must be zeroed
    /// beforehand), then `u += t` over the interior.
    fn interpolate_and_correct(ep: &mut Endpoint, level: &mut Level) {
        let n = level.n;
        exchange_halo(ep, &mut level.t, &level.ghost_t);
        let boxx = level.t.my_box();
        // Fill odd-j points on even-i rows.
        let mut vals = Vec::new();
        for i in boxx[0].0..boxx[0].1 {
            for j in boxx[1].0..boxx[1].1 {
                if i % 2 == 0 && j % 2 == 1 {
                    vals.push((
                        i,
                        j,
                        0.5 * (level.t.get(&[i, j - 1]) + level.t.get(&[i, j + 1])),
                    ));
                }
            }
        }
        for &(i, j, v) in &vals {
            level.t.set(&[i, j], v);
        }
        exchange_halo(ep, &mut level.t, &level.ghost_t);
        // Fill odd-i rows from the completed even-i rows.
        let mut vals = Vec::new();
        for i in boxx[0].0..boxx[0].1 {
            if i % 2 == 0 {
                continue;
            }
            for j in boxx[1].0..boxx[1].1 {
                vals.push((
                    i,
                    j,
                    0.5 * (level.t.get(&[i - 1, j]) + level.t.get(&[i + 1, j])),
                ));
            }
        }
        for &(i, j, v) in &vals {
            level.t.set(&[i, j], v);
        }
        // Correct the interior.
        let mut count = 0;
        for i in boxx[0].0..boxx[0].1 {
            for j in boxx[1].0..boxx[1].1 {
                if i > 0 && j > 0 && i < n - 1 && j < n - 1 {
                    let v = level.u.get(&[i, j]) + level.t.get(&[i, j]);
                    level.u.set(&[i, j], v);
                    count += 1;
                }
            }
        }
        ep.charge_flops(3 * count);
    }

    /// One V-cycle.  Returns the finest-level residual 2-norm afterwards
    /// (collective).
    pub fn v_cycle(&mut self, ep: &mut Endpoint, prog: &Group) -> f64 {
        let last = self.levels.len() - 1;
        // Downward leg.
        for k in 0..last {
            Self::smooth(ep, &mut self.levels[k], self.nu_pre);
            Self::residual(ep, &mut self.levels[k]);
            Self::full_weight(ep, &mut self.levels[k]);
            // Restrict the weighted residual -> coarse rhs; zero coarse u.
            let (fine, coarse) = self.levels.split_at_mut(k + 1);
            parti_copy(ep, &self.restrict[k], &fine[k].t, &mut coarse[0].f);
            coarse[0].u.fill_with(|_| 0.0);
        }
        // Coarsest solve: extra smoothing.
        Self::smooth(ep, &mut self.levels[last], 32);
        // Upward leg.
        for k in (0..last).rev() {
            // Stage the coarse correction into t at even-even points and
            // interpolate the rest.
            let (fine, coarse) = self.levels.split_at_mut(k + 1);
            fine[k].t.fill_with(|_| 0.0);
            parti_copy(ep, &self.prolong[k], &coarse[0].u, &mut fine[k].t);
            Self::interpolate_and_correct(ep, &mut fine[k]);
            Self::smooth(ep, &mut fine[k], self.nu_post);
        }
        // Finest residual norm.
        Self::residual(ep, &mut self.levels[0]);
        let local: f64 = {
            let lvl = &self.levels[0];
            let boxx = lvl.r.my_box();
            let mut acc = 0.0;
            for i in boxx[0].0..boxx[0].1 {
                for j in boxx[1].0..boxx[1].1 {
                    let v = lvl.r.get(&[i, j]);
                    acc += v * v;
                }
            }
            acc
        };
        let mut comm = Comm::new(ep, prog.clone());
        comm.allreduce_sum(local).sqrt()
    }

    /// Read the finest solution at `coords` (must be owned by this rank).
    pub fn solution_at(&self, coords: &[usize]) -> f64 {
        self.levels[0].u.get(coords)
    }

    /// True if this rank owns finest-level `coords`.
    pub fn owns(&self, coords: &[usize]) -> bool {
        self.levels[0].u.owns(coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim::model::MachineModel;
    use mcsim::world::World;

    #[test]
    fn v_cycles_reduce_the_residual() {
        for p in [1, 2, 4] {
            let world = World::with_model(p, MachineModel::zero());
            world.run(move |ep| {
                let g = Group::world(p);
                // 17x17 finest grid, 3 levels (17 -> 9 -> 5).
                let mut mg = Multigrid::new(ep, &g, 17, 3, 2, 2);
                mg.set_rhs(|x, y| {
                    2.0 * std::f64::consts::PI
                        * std::f64::consts::PI
                        * (std::f64::consts::PI * x).sin()
                        * (std::f64::consts::PI * y).sin()
                });
                let r0 = mg.v_cycle(ep, &g);
                let mut r_prev = r0;
                for _ in 0..4 {
                    let r = mg.v_cycle(ep, &g);
                    assert!(r < r_prev, "p={p}: residual must shrink ({r} vs {r_prev})");
                    r_prev = r;
                }
                assert!(
                    r_prev < r0 * 0.1,
                    "p={p}: 5 V-cycles must cut the residual 10x ({r_prev} vs {r0})"
                );
            });
        }
    }

    #[test]
    fn solution_approaches_the_analytic_answer() {
        // -Δu = 2π² sin(πx) sin(πy) has u = sin(πx) sin(πy).
        let world = World::with_model(2, MachineModel::zero());
        world.run(|ep| {
            let g = Group::world(2);
            let mut mg = Multigrid::new(ep, &g, 33, 4, 2, 2);
            let pi = std::f64::consts::PI;
            mg.set_rhs(move |x, y| 2.0 * pi * pi * (pi * x).sin() * (pi * y).sin());
            for _ in 0..12 {
                mg.v_cycle(ep, &g);
            }
            let h = 1.0 / 32.0;
            let mut worst = 0.0f64;
            for i in 0..33 {
                for j in 0..33 {
                    if mg.owns(&[i, j]) {
                        let want = (pi * i as f64 * h).sin() * (pi * j as f64 * h).sin();
                        worst = worst.max((mg.solution_at(&[i, j]) - want).abs());
                    }
                }
            }
            // Second-order discretization error on a 33-point grid.
            assert!(worst < 5e-3, "max error {worst}");
        });
    }

    #[test]
    fn parallel_and_serial_agree() {
        let run = |p: usize| {
            let world = World::with_model(p, MachineModel::zero());
            let out = world.run(move |ep| {
                let g = Group::world(p);
                let mut mg = Multigrid::new(ep, &g, 17, 2, 1, 1);
                mg.set_rhs(|x, y| x + y);
                let mut last = 0.0;
                for _ in 0..3 {
                    last = mg.v_cycle(ep, &g);
                }
                last
            });
            out.results[0]
        };
        let serial = run(1);
        let parallel = run(4);
        assert!(
            (serial - parallel).abs() < 1e-10 * serial.abs().max(1.0),
            "{serial} vs {parallel}"
        );
    }
}
