//! General n-dimensional stencils over block-distributed arrays.
//!
//! [`Stencil`] describes an arbitrary set of (offset, coefficient) taps;
//! [`StencilOp`] is its inspector/executor pairing: the halo schedule is
//! built once for the stencil's radius, and each application performs one
//! halo exchange plus a Jacobi-style update of every interior point.  The
//! hardwired 5-point [`RegularSweep`](crate::sweep::RegularSweep) is the
//! special case `Stencil::five_point()` (in 2-D).

use mcsim::prelude::Endpoint;

use crate::array::MultiblockArray;
use crate::ghost::{build_ghost_schedule, exchange_halo, GhostSchedule};

/// One tap of a stencil: a per-dimension offset and a coefficient.
#[derive(Debug, Clone, PartialEq)]
pub struct Tap {
    /// Offset per dimension (e.g. `[-1, 0]` = north neighbour in 2-D).
    pub offset: Vec<isize>,
    /// Multiplicative coefficient.
    pub coef: f64,
}

/// An n-dimensional linear stencil.
#[derive(Debug, Clone, PartialEq)]
pub struct Stencil {
    taps: Vec<Tap>,
    radius: usize,
    ndim: usize,
}

impl Stencil {
    /// Build from taps (all with the same dimensionality, at least one).
    pub fn new(taps: Vec<Tap>) -> Self {
        assert!(!taps.is_empty(), "stencil needs at least one tap");
        let ndim = taps[0].offset.len();
        assert!(ndim > 0);
        let mut radius = 0usize;
        for t in &taps {
            assert_eq!(t.offset.len(), ndim, "mixed-dimensional taps");
            for &o in &t.offset {
                radius = radius.max(o.unsigned_abs());
            }
        }
        Stencil { taps, radius, ndim }
    }

    /// The classic 2-D 5-point average (the paper's Figure 1 Loop 1).
    pub fn five_point() -> Self {
        Stencil::new(
            [[0isize, -1], [-1, 0], [1, 0], [0, 1]]
                .into_iter()
                .map(|o| Tap {
                    offset: o.to_vec(),
                    coef: 0.25,
                })
                .collect(),
        )
    }

    /// A 2-D 9-point box average.
    pub fn nine_point() -> Self {
        let mut taps = Vec::new();
        for di in -1isize..=1 {
            for dj in -1isize..=1 {
                taps.push(Tap {
                    offset: vec![di, dj],
                    coef: 1.0 / 9.0,
                });
            }
        }
        Stencil::new(taps)
    }

    /// Maximum absolute offset (halo width required).
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Dimensionality.
    pub fn ndim(&self) -> usize {
        self.ndim
    }

    /// The taps.
    pub fn taps(&self) -> &[Tap] {
        &self.taps
    }
}

/// A stencil bound to an array's distribution: reusable halo schedule plus
/// the update kernel.
#[derive(Debug, Clone)]
pub struct StencilOp {
    stencil: Stencil,
    ghost: GhostSchedule,
    shape: Vec<usize>,
}

impl StencilOp {
    /// Inspector: build the halo schedule for applying `stencil` to `arr`.
    ///
    /// The array's halo must be at least the stencil radius, and corners
    /// are not exchanged, so diagonal taps require the blocks to be
    /// face-adjacent only in the dimensions they reach through — for the
    /// diagonal-free stencils (`five_point`, axis-aligned Laplacians) any
    /// block grid works; for `nine_point` the grid must be 1-D in one of
    /// the two dimensions or the interior must not touch block corners.
    pub fn new(ep: &mut Endpoint, arr: &MultiblockArray<f64>, stencil: Stencil) -> Self {
        assert_eq!(
            arr.dist().shape().len(),
            stencil.ndim(),
            "stencil dimensionality must match the array"
        );
        assert!(
            arr.dist().halo() >= stencil.radius(),
            "array halo {} smaller than stencil radius {}",
            arr.dist().halo(),
            stencil.radius()
        );
        StencilOp {
            ghost: build_ghost_schedule(ep, arr),
            shape: arr.dist().shape().to_vec(),
            stencil,
        }
    }

    /// The stencil.
    pub fn stencil(&self) -> &Stencil {
        &self.stencil
    }

    /// Executor: one Jacobi application over all interior points (those
    /// whose every tap stays inside the global domain).  Returns the
    /// number of points this rank updated.
    pub fn apply(&self, ep: &mut Endpoint, arr: &mut MultiblockArray<f64>) -> usize {
        exchange_halo(ep, arr, &self.ghost);

        let r = self.stencil.radius();
        let boxx = arr.my_box();
        let ndim = self.shape.len();
        // Interior bounds per dim: intersect my box with [r, n - r).
        let lo: Vec<usize> = (0..ndim).map(|d| boxx[d].0.max(r)).collect();
        let hi: Vec<usize> = (0..ndim)
            .map(|d| boxx[d].1.min(self.shape[d] - r))
            .collect();
        if (0..ndim).any(|d| lo[d] >= hi[d]) {
            return 0;
        }

        // Gather new values first (Jacobi), then store.
        let mut coords = lo.clone();
        let mut new_vals = Vec::new();
        let mut neighbor = vec![0usize; ndim];
        loop {
            let mut acc = 0.0;
            for t in self.stencil.taps() {
                for d in 0..ndim {
                    neighbor[d] = (coords[d] as isize + t.offset[d]) as usize;
                }
                acc += t.coef * arr.get(&neighbor);
            }
            new_vals.push(acc);
            let mut d = ndim;
            loop {
                if d == 0 {
                    break;
                }
                d -= 1;
                coords[d] += 1;
                if coords[d] < hi[d] {
                    break;
                }
                coords[d] = lo[d];
                if d == 0 {
                    // done
                    coords = lo.clone();
                    let updated = new_vals.len();
                    let mut k = 0;
                    loop {
                        arr.set(&coords, new_vals[k]);
                        k += 1;
                        let mut dd = ndim;
                        loop {
                            if dd == 0 {
                                ep.charge_flops(updated * 2 * self.stencil.taps().len());
                                return updated;
                            }
                            dd -= 1;
                            coords[dd] += 1;
                            if coords[dd] < hi[dd] {
                                break;
                            }
                            coords[dd] = lo[dd];
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim::group::Group;
    use mcsim::model::MachineModel;
    use mcsim::world::World;

    fn run_parallel(stencil: Stencil, n: usize, p: usize, steps: usize) -> Vec<Vec<f64>> {
        let world = World::with_model(p, MachineModel::zero());
        let out = world.run(move |ep| {
            let g = Group::world(p);
            let r = stencil.radius();
            let mut a = MultiblockArray::<f64>::with_halo(&g, ep.rank(), &[n, n], r);
            a.fill_with(|c| ((c[0] * 5 + c[1] * 11) % 7) as f64);
            let op = StencilOp::new(ep, &a, stencil.clone());
            for _ in 0..steps {
                op.apply(ep, &mut a);
            }
            let boxx = a.my_box();
            let mut vals = Vec::new();
            for i in boxx[0].0..boxx[0].1 {
                for j in boxx[1].0..boxx[1].1 {
                    vals.push((i, j, a.get(&[i, j])));
                }
            }
            vals
        });
        let mut grid = vec![vec![0.0; n]; n];
        for vals in out.results {
            for (i, j, v) in vals {
                grid[i][j] = v;
            }
        }
        grid
    }

    fn run_reference(stencil: &Stencil, n: usize, steps: usize) -> Vec<Vec<f64>> {
        let r = stencil.radius();
        let mut a: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| ((i * 5 + j * 11) % 7) as f64).collect())
            .collect();
        for _ in 0..steps {
            let old = a.clone();
            for i in r..n - r {
                for j in r..n - r {
                    let mut acc = 0.0;
                    for t in stencil.taps() {
                        let ni = (i as isize + t.offset[0]) as usize;
                        let nj = (j as isize + t.offset[1]) as usize;
                        acc += t.coef * old[ni][nj];
                    }
                    a[i][j] = acc;
                }
            }
        }
        a
    }

    #[test]
    fn five_point_matches_hardwired_sweep_semantics() {
        let got = run_parallel(Stencil::five_point(), 10, 2, 2);
        let want = run_reference(&Stencil::five_point(), 10, 2);
        for i in 0..10 {
            for j in 0..10 {
                assert!((got[i][j] - want[i][j]).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn axis_laplacian_radius_two() {
        // 1-D-in-each-axis radius-2 stencil: no diagonal taps, so any grid
        // shape is fine.
        let taps = vec![
            Tap {
                offset: vec![-2, 0],
                coef: -1.0 / 12.0,
            },
            Tap {
                offset: vec![-1, 0],
                coef: 4.0 / 3.0,
            },
            Tap {
                offset: vec![0, 0],
                coef: -2.5,
            },
            Tap {
                offset: vec![1, 0],
                coef: 4.0 / 3.0,
            },
            Tap {
                offset: vec![2, 0],
                coef: -1.0 / 12.0,
            },
            Tap {
                offset: vec![0, -2],
                coef: -1.0 / 12.0,
            },
            Tap {
                offset: vec![0, -1],
                coef: 4.0 / 3.0,
            },
            Tap {
                offset: vec![0, 1],
                coef: 4.0 / 3.0,
            },
            Tap {
                offset: vec![0, 2],
                coef: -1.0 / 12.0,
            },
        ];
        let st = Stencil::new(taps);
        assert_eq!(st.radius(), 2);
        // Use a 1-D process decomposition so radius-2 halos along the
        // split dimension suffice (faces only, no corners needed).
        let got = run_parallel(st.clone(), 12, 3, 1);
        let want = run_reference(&st, 12, 1);
        for i in 0..12 {
            for j in 0..12 {
                assert!((got[i][j] - want[i][j]).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn three_dimensional_seven_point() {
        // 3-D 7-point average on a 6x6x6 box over 4 procs.
        let mut taps = vec![Tap {
            offset: vec![0, 0, 0],
            coef: 0.4,
        }];
        for d in 0..3 {
            for s in [-1isize, 1] {
                let mut o = vec![0isize; 3];
                o[d] = s;
                taps.push(Tap {
                    offset: o,
                    coef: 0.1,
                });
            }
        }
        let st = Stencil::new(taps);
        let n = 6;
        let world = World::with_model(4, MachineModel::zero());
        let out = world.run(move |ep| {
            let g = Group::world(4);
            let mut a = MultiblockArray::<f64>::with_halo(&g, ep.rank(), &[n, n, n], 1);
            a.fill_with(|c| ((c[0] * 3 + c[1] * 5 + c[2] * 7) % 4) as f64);
            let op = StencilOp::new(ep, &a, st.clone());
            op.apply(ep, &mut a);
            let boxx = a.my_box();
            let mut vals = Vec::new();
            for i in boxx[0].0..boxx[0].1 {
                for j in boxx[1].0..boxx[1].1 {
                    for k in boxx[2].0..boxx[2].1 {
                        vals.push((i, j, k, a.get(&[i, j, k])));
                    }
                }
            }
            vals
        });
        // Sequential reference.
        let f = |i: usize, j: usize, k: usize| ((i * 3 + j * 5 + k * 7) % 4) as f64;
        let mut want = vec![vec![vec![0.0f64; n]; n]; n];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    want[i][j][k] = f(i, j, k);
                }
            }
        }
        let old = want.clone();
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                for k in 1..n - 1 {
                    want[i][j][k] = 0.4 * old[i][j][k]
                        + 0.1
                            * (old[i - 1][j][k]
                                + old[i + 1][j][k]
                                + old[i][j - 1][k]
                                + old[i][j + 1][k]
                                + old[i][j][k - 1]
                                + old[i][j][k + 1]);
                }
            }
        }
        for vals in out.results {
            for (i, j, k, v) in vals {
                assert!((v - want[i][j][k]).abs() < 1e-12, "({i},{j},{k})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "halo")]
    fn insufficient_halo_rejected() {
        let world = World::with_model(1, MachineModel::zero());
        world.run(|ep| {
            let g = Group::world(1);
            let a = MultiblockArray::<f64>::with_halo(&g, ep.rank(), &[8, 8], 1);
            let st = Stencil::new(vec![Tap {
                offset: vec![2, 0],
                coef: 1.0,
            }]);
            let _ = StencilOp::new(ep, &a, st);
        });
    }

    #[test]
    fn one_dimensional_stencil() {
        let st = Stencil::new(vec![
            Tap {
                offset: vec![-1],
                coef: 0.5,
            },
            Tap {
                offset: vec![1],
                coef: 0.5,
            },
        ]);
        let world = World::with_model(2, MachineModel::zero());
        let out = world.run(move |ep| {
            let g = Group::world(2);
            let mut a = MultiblockArray::<f64>::with_halo(&g, ep.rank(), &[8], 1);
            a.fill_with(|c| c[0] as f64);
            let op = StencilOp::new(ep, &a, st.clone());
            let updated = op.apply(ep, &mut a);
            let boxx = a.my_box();
            let vals: Vec<(usize, f64)> =
                (boxx[0].0..boxx[0].1).map(|x| (x, a.get(&[x]))).collect();
            (updated, vals)
        });
        let total: usize = out.results.iter().map(|(u, _)| u).sum();
        assert_eq!(total, 6); // interior 1..7
        for (_, vals) in out.results {
            for (x, v) in vals {
                // Interior points average x-1 and x+1 (= x); the edges are
                // untouched and still hold their initial value x.
                assert_eq!(v, x as f64, "a[{x}]");
            }
        }
    }
}
