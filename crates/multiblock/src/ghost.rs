//! Ghost-cell (overlap) exchange — Multiblock Parti's intra-mesh
//! communication, in inspector/executor form.
//!
//! The *inspector* ([`build_ghost_schedule`]) walks the distribution once
//! and records, per grid neighbour, which local addresses to send (the
//! owned boundary slab) and which to fill (the halo slab).  The *executor*
//! ([`exchange_halo`]) replays the schedule every time step — the classic
//! Saltz inspector/executor split the paper's Table 1 measures.
//!
//! Exchanges are face-only (no corner propagation), sufficient for the
//! 5-point stencil of the paper's Figure 1.

use mcsim::prelude::{Endpoint, Tag};

use crate::array::MultiblockArray;

/// One neighbour's worth of exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GhostTransfer {
    /// Peer's global rank.
    pub peer: usize,
    /// Local addresses to pack and send (owned boundary slab).
    pub send_addrs: Vec<usize>,
    /// Local addresses to fill from the peer (halo slab).
    pub recv_addrs: Vec<usize>,
}

/// A reusable halo-exchange schedule for one array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GhostSchedule {
    transfers: Vec<GhostTransfer>,
    seq: u32,
}

/// Scratch key of the per-rank ghost-schedule sequence counter
/// (SPMD-consistent: every rank builds schedules in the same order).
const GHOST_SEQ_KEY: u32 = 0x4748_5351; // "GHSQ"

impl GhostSchedule {
    /// The per-neighbour transfers.
    pub fn transfers(&self) -> &[GhostTransfer] {
        &self.transfers
    }

    /// Total elements sent per exchange.
    pub fn elems_out(&self) -> usize {
        self.transfers.iter().map(|t| t.send_addrs.len()).sum()
    }

    fn tag(&self, from_global: usize) -> Tag {
        // Ghost traffic lives in the world context with a high user-tag
        // base; `seq` separates schedules, the sender disambiguates peers.
        let _ = from_global;
        Tag::user(0x2000_0000 | self.seq)
    }
}

/// Enumerate the local addresses of a slab: the owned box with dimension
/// `dim` replaced by `[lo, hi)`.
fn slab_addrs<T: Copy + Default>(
    arr: &MultiblockArray<T>,
    dim: usize,
    lo: usize,
    hi: usize,
) -> Vec<usize> {
    let mut boxx = arr.my_box();
    boxx[dim] = (lo, hi);
    let ndim = boxx.len();
    let mut coords: Vec<usize> = boxx.iter().map(|&(l, _)| l).collect();
    let count: usize = boxx.iter().map(|&(l, h)| h - l).product();
    let mut out = Vec::with_capacity(count);
    if count == 0 {
        return out;
    }
    loop {
        out.push(arr.dist().local_addr(arr.my_local(), &coords));
        let mut d = ndim;
        loop {
            if d == 0 {
                return out;
            }
            d -= 1;
            coords[d] += 1;
            if coords[d] < boxx[d].1 {
                break;
            }
            coords[d] = boxx[d].0;
        }
    }
}

/// Inspector: build the halo-exchange schedule for `arr`.
///
/// Cost: one closed-form pass over the boundary slabs (charged as
/// dereference + schedule-insertion work).
pub fn build_ghost_schedule<T: Copy + Default>(
    ep: &mut Endpoint,
    arr: &MultiblockArray<T>,
) -> GhostSchedule {
    let halo = arr.dist().halo();
    let mut transfers = Vec::new();
    if halo > 0 {
        let grid = arr.dist().grid().clone();
        let me_local = arr.my_local();
        let boxx = arr.my_box();
        for dim in 0..grid.ndim() {
            for dir in [-1isize, 1] {
                let Some(peer_local) = grid.neighbor(me_local, dim, dir) else {
                    continue;
                };
                let (lo, hi) = boxx[dim];
                let width = halo.min(hi - lo);
                let (send_lo, send_hi, recv_lo, recv_hi) = if dir > 0 {
                    (hi - width, hi, hi, hi + width)
                } else {
                    (lo, lo + width, lo - width, lo)
                };
                let send_addrs = slab_addrs(arr, dim, send_lo, send_hi);
                let recv_addrs = slab_addrs(arr, dim, recv_lo, recv_hi);
                ep.charge_owner_calc(send_addrs.len() + recv_addrs.len());
                ep.charge_schedule_insert(send_addrs.len() + recv_addrs.len());
                transfers.push(GhostTransfer {
                    peer: arr.members()[peer_local],
                    send_addrs,
                    recv_addrs,
                });
            }
        }
    }
    let seq = ep.next_seq(GHOST_SEQ_KEY);
    GhostSchedule { transfers, seq }
}

/// Executor: perform one halo exchange using a prebuilt schedule.
pub fn exchange_halo<T>(ep: &mut Endpoint, arr: &mut MultiblockArray<T>, sched: &GhostSchedule)
where
    T: Copy + Default + mcsim::wire::Wire,
{
    // Post all sends, then drain receives (buffered channels, no deadlock).
    for t in &sched.transfers {
        let buf: Vec<T> = t.send_addrs.iter().map(|&a| arr.local()[a]).collect();
        ep.charge_copy_bytes(buf.len() * std::mem::size_of::<T>());
        ep.send_t(t.peer, sched.tag(ep.rank()), &buf);
    }
    for t in &sched.transfers {
        let buf: Vec<T> = ep.recv_t(t.peer, sched.tag(t.peer));
        assert_eq!(buf.len(), t.recv_addrs.len(), "halo slab size mismatch");
        ep.charge_copy_bytes(buf.len() * std::mem::size_of::<T>());
        let data = arr.local_mut();
        for (&a, &v) in t.recv_addrs.iter().zip(&buf) {
            data[a] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim::group::Group;
    use mcsim::model::MachineModel;
    use mcsim::world::World;

    #[test]
    fn halo_receives_neighbor_boundary_2d() {
        let world = World::with_model(4, MachineModel::zero());
        world.run(|ep| {
            let g = Group::world(ep.world_size());
            let mut a = MultiblockArray::<f64>::with_halo(&g, ep.rank(), &[8, 8], 1);
            a.fill_with(|c| (c[0] * 100 + c[1]) as f64);
            let sched = build_ghost_schedule(ep, &a);
            exchange_halo(ep, &mut a, &sched);
            // After exchange, every interior-global neighbour coordinate of
            // an owned cell is readable and correct.
            let boxx = a.my_box();
            for i in boxx[0].0..boxx[0].1 {
                for j in boxx[1].0..boxx[1].1 {
                    for (di, dj) in [(0i64, 1i64), (0, -1), (1, 0), (-1, 0)] {
                        let ni = i as i64 + di;
                        let nj = j as i64 + dj;
                        if ni < 0 || nj < 0 || ni >= 8 || nj >= 8 {
                            continue;
                        }
                        let (ni, nj) = (ni as usize, nj as usize);
                        assert_eq!(
                            a.get(&[ni, nj]),
                            (ni * 100 + nj) as f64,
                            "rank {} reading ({ni},{nj})",
                            ep.rank()
                        );
                    }
                }
            }
        });
    }

    #[test]
    fn reuse_schedule_many_times() {
        let world = World::with_model(2, MachineModel::zero());
        world.run(|ep| {
            let g = Group::world(ep.world_size());
            let mut a = MultiblockArray::<f64>::with_halo(&g, ep.rank(), &[6], 1);
            let sched = build_ghost_schedule(ep, &a);
            for it in 0..3 {
                a.fill_with(|c| (c[0] * 10 + it) as f64);
                exchange_halo(ep, &mut a, &sched);
                // Rank boundary: global 2|3 split for 6 over 2.
                let boxx = a.my_box();
                if boxx[0].0 > 0 {
                    assert_eq!(a.get(&[boxx[0].0 - 1]), ((boxx[0].0 - 1) * 10 + it) as f64);
                }
                if boxx[0].1 < 6 {
                    assert_eq!(a.get(&[boxx[0].1]), (boxx[0].1 * 10 + it) as f64);
                }
            }
        });
    }

    #[test]
    fn no_halo_means_no_transfers() {
        let world = World::with_model(2, MachineModel::zero());
        world.run(|ep| {
            let g = Group::world(ep.world_size());
            let a = MultiblockArray::<f64>::new(&g, ep.rank(), &[8]);
            let sched = build_ghost_schedule(ep, &a);
            assert!(sched.transfers().is_empty());
            assert_eq!(sched.elems_out(), 0);
        });
    }

    #[test]
    fn single_rank_has_no_neighbors() {
        let world = World::with_model(1, MachineModel::zero());
        world.run(|ep| {
            let g = Group::world(1);
            let mut a = MultiblockArray::<f64>::with_halo(&g, ep.rank(), &[5, 5], 1);
            let sched = build_ghost_schedule(ep, &a);
            assert!(sched.transfers().is_empty());
            exchange_halo(ep, &mut a, &sched); // must be a no-op
        });
    }
}
