//! Regular-mesh stencil sweep — Loop 1 of the paper's Figure 1.
//!
//! The paper's motivating code sweeps a structured mesh with
//! `a(i,j) = a(i,j-1) + a(i-1,j) + a(i+1,j) + a(i,j+1)` inside a `forall`
//! (Jacobi semantics: all right-hand sides read old values).  We scale by
//! ¼ so iterates stay bounded; the data motion and operation count per
//! point are identical.
//!
//! Structure follows the inspector/executor pattern: [`RegularSweep::new`]
//! is the inspector (builds the halo schedule once), [`RegularSweep::step`]
//! is the executor (halo exchange + compute, reusable every time step).

use mcsim::prelude::Endpoint;

use crate::array::MultiblockArray;
use crate::ghost::{build_ghost_schedule, exchange_halo, GhostSchedule};

/// Floating-point operations charged per updated mesh point
/// (3 adds + 1 multiply).
pub const FLOPS_PER_POINT: usize = 4;

/// A reusable 2-D 5-point stencil sweep over a block-distributed array.
#[derive(Debug, Clone)]
pub struct RegularSweep {
    ghost: GhostSchedule,
    shape: [usize; 2],
}

impl RegularSweep {
    /// Inspector: build the communication schedule for sweeping `arr`.
    ///
    /// `arr` must be 2-D with halo ≥ 1.
    pub fn new(ep: &mut Endpoint, arr: &MultiblockArray<f64>) -> Self {
        let shape = arr.dist().shape();
        assert_eq!(shape.len(), 2, "RegularSweep is specialized to 2-D");
        assert!(arr.dist().halo() >= 1, "stencil sweep needs halo >= 1");
        RegularSweep {
            ghost: build_ghost_schedule(ep, arr),
            shape: [shape[0], shape[1]],
        }
    }

    /// The halo schedule (exposed for tests and accounting).
    pub fn ghost(&self) -> &GhostSchedule {
        &self.ghost
    }

    /// Executor: one time step — exchange halos, then update all interior
    /// points (global `1..n-1` in each dimension) from their 4 neighbours.
    ///
    /// Returns the number of points this rank updated.
    pub fn step(&self, ep: &mut Endpoint, arr: &mut MultiblockArray<f64>) -> usize {
        exchange_halo(ep, arr, &self.ghost);

        let boxx = arr.my_box();
        let ilo = boxx[0].0.max(1);
        let ihi = boxx[0].1.min(self.shape[0] - 1);
        let jlo = boxx[1].0.max(1);
        let jhi = boxx[1].1.min(self.shape[1] - 1);
        if ilo >= ihi || jlo >= jhi {
            return 0;
        }

        // Compute into a temporary (forall/Jacobi semantics), then store.
        let mut new_vals = Vec::with_capacity((ihi - ilo) * (jhi - jlo));
        for i in ilo..ihi {
            for j in jlo..jhi {
                let v = 0.25
                    * (arr.get(&[i, j - 1])
                        + arr.get(&[i - 1, j])
                        + arr.get(&[i + 1, j])
                        + arr.get(&[i, j + 1]));
                new_vals.push(v);
            }
        }
        let mut k = 0;
        for i in ilo..ihi {
            for j in jlo..jhi {
                arr.set(&[i, j], new_vals[k]);
                k += 1;
            }
        }
        let updated = new_vals.len();
        ep.charge_flops(updated * FLOPS_PER_POINT);
        updated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim::group::Group;
    use mcsim::model::MachineModel;
    use mcsim::world::World;

    /// Sequential reference sweep for cross-checking.
    fn reference_step(a: &mut [Vec<f64>]) {
        let n = a.len();
        let m = a[0].len();
        let old = a.to_vec();
        for (i, row) in a.iter_mut().enumerate().take(n - 1).skip(1) {
            for (j, cell) in row.iter_mut().enumerate().take(m - 1).skip(1) {
                *cell = 0.25 * (old[i][j - 1] + old[i - 1][j] + old[i + 1][j] + old[i][j + 1]);
            }
        }
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let n = 12;
        for p in [1, 2, 4, 6] {
            let world = World::with_model(p, MachineModel::zero());
            let out = world.run(move |ep| {
                let g = Group::world(ep.world_size());
                let mut a = MultiblockArray::<f64>::with_halo(&g, ep.rank(), &[n, n], 1);
                a.fill_with(|c| ((c[0] * 7 + c[1] * 3) % 11) as f64);
                let sweep = RegularSweep::new(ep, &a);
                for _ in 0..3 {
                    sweep.step(ep, &mut a);
                }
                // Return owned values with coords for global reassembly.
                let boxx = a.my_box();
                let mut vals = Vec::new();
                for i in boxx[0].0..boxx[0].1 {
                    for j in boxx[1].0..boxx[1].1 {
                        vals.push((i, j, a.get(&[i, j])));
                    }
                }
                vals
            });

            let mut reference: Vec<Vec<f64>> = (0..n)
                .map(|i| (0..n).map(|j| ((i * 7 + j * 3) % 11) as f64).collect())
                .collect();
            for _ in 0..3 {
                reference_step(&mut reference);
            }
            for vals in out.results {
                for (i, j, v) in vals {
                    assert!(
                        (v - reference[i][j]).abs() < 1e-12,
                        "p={p} ({i},{j}): {v} vs {}",
                        reference[i][j]
                    );
                }
            }
        }
    }

    #[test]
    fn step_counts_updated_points() {
        let world = World::with_model(2, MachineModel::zero());
        let out = world.run(|ep| {
            let g = Group::world(ep.world_size());
            let mut a = MultiblockArray::<f64>::with_halo(&g, ep.rank(), &[6, 6], 1);
            let sweep = RegularSweep::new(ep, &a);
            sweep.step(ep, &mut a)
        });
        // 4x4 interior points total, split across 2 ranks.
        assert_eq!(out.results.iter().sum::<usize>(), 16);
    }

    #[test]
    fn executor_charges_time() {
        let world = World::with_model(2, MachineModel::sp2());
        let out = world.run(|ep| {
            let g = Group::world(ep.world_size());
            let mut a = MultiblockArray::<f64>::with_halo(&g, ep.rank(), &[32, 32], 1);
            let sweep = RegularSweep::new(ep, &a);
            let t0 = ep.clock();
            sweep.step(ep, &mut a);
            ep.clock() - t0
        });
        assert!(out.results.iter().all(|&t| t > 0.0));
    }
}
