//! Meta-Chaos interface functions for [`MultiblockArray`] (paper §4.1.3).
//!
//! The Region type is a [`RegularSection`] in the array's *global* index
//! space — exactly the paper's choice for Multiblock Parti and HPF.  All
//! owner queries are closed-form block arithmetic, so `deref_owned`
//! enumerates only the elements this rank owns (no communication) and the
//! descriptor is a handful of integers.

use mcsim::error::SimError;
use mcsim::group::Comm;
use mcsim::prelude::Endpoint;
use mcsim::wire::{Wire, WireReader};

use meta_chaos::adapter::{Location, McDescriptor, McObject};
use meta_chaos::region::{Region, RegularSection};
use meta_chaos::runs::{LocatedRun, OwnedRun, RunBuilder};
use meta_chaos::schedule::AddrRuns;
use meta_chaos::setof::SetOfRegions;
use meta_chaos::LocalAddr;

use crate::array::MultiblockArray;
use crate::dist::BlockDist;
use crate::grid::ProcGrid;

/// Shippable descriptor of a block-distributed array: distribution
/// parameters plus the owning program's global ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockDesc {
    /// The block distribution (shape, grid, halo).
    pub dist: BlockDist,
    /// Global ranks of the owning program, in grid order.
    pub members: Vec<usize>,
}

impl Wire for BlockDesc {
    fn write(&self, out: &mut Vec<u8>) {
        self.dist.shape().to_vec().write(out);
        self.dist.grid().dims().to_vec().write(out);
        self.dist.halo().write(out);
        self.members.write(out);
    }
    fn read(r: &mut WireReader<'_>) -> Result<Self, SimError> {
        let shape = Vec::<usize>::read(r)?;
        let grid_dims = Vec::<usize>::read(r)?;
        let halo = usize::read(r)?;
        let members = Vec::<usize>::read(r)?;
        if grid_dims.iter().product::<usize>() != members.len() {
            return Err(SimError::Decode(
                "grid size does not match member count".into(),
            ));
        }
        Ok(BlockDesc {
            dist: BlockDist::new(shape, ProcGrid::new(grid_dims), halo),
            members,
        })
    }
}

impl McDescriptor for BlockDesc {
    type Region = RegularSection;

    fn locate(&self, set: &SetOfRegions<RegularSection>, pos: usize) -> Location {
        let (ri, off) = set.locate_position(pos);
        let coords = set.regions()[ri].coords_of(off);
        let local = self.dist.owner(&coords);
        Location {
            rank: self.members[local],
            addr: self.dist.local_addr(local, &coords),
        }
    }

    fn locate_run(
        &self,
        set: &SetOfRegions<RegularSection>,
        pos: usize,
        max_len: usize,
    ) -> LocatedRun {
        debug_assert!(max_len >= 1);
        let (ri, off) = set.locate_position(pos);
        let region = &set.regions()[ri];
        let nd = region.ndim();
        let coords = region.coords_of(off);
        let local = self.dist.owner(&coords);
        let rank = self.members[local];
        let addr = self.dist.local_addr(local, &coords);
        if nd == 0 {
            return LocatedRun {
                pos,
                len: 1,
                rank,
                addr,
                stride: 1,
            };
        }
        // Consecutive positions step the last (fastest) dimension: stay in
        // this section row, on this owner's block, within max_len.
        let ls = &region.dims()[nd - 1];
        let c = coords[nd - 1];
        let k = ls.position_of(c).expect("coords came from coords_of");
        let row_left = ls.count() - k;
        let bc = self.dist.owner_in_dim(nd - 1, c);
        let (_, bhi) = self.dist.bounds_in_dim(nd - 1, bc);
        let steps = (bhi - c).div_ceil(ls.stride);
        LocatedRun {
            pos,
            len: row_left.min(steps).min(max_len),
            rank,
            addr,
            stride: ls.stride as isize,
        }
    }

    fn locate_all(&self, set: &SetOfRegions<RegularSection>) -> Vec<Location> {
        // Batch version: avoid re-resolving the region per element.
        let mut out = Vec::with_capacity(set.total_len());
        for region in set.regions() {
            let mut it = region.iter_coords();
            while let Some(coords) = it.advance() {
                let local = self.dist.owner(coords);
                out.push(Location {
                    rank: self.members[local],
                    addr: self.dist.local_addr(local, coords),
                });
            }
        }
        out
    }
}

impl<T: Copy + Default> McObject<T> for MultiblockArray<T> {
    type Region = RegularSection;
    type Descriptor = BlockDesc;

    fn deref_owned(
        &self,
        comm: &mut Comm<'_>,
        set: &SetOfRegions<RegularSection>,
    ) -> Vec<(usize, LocalAddr)> {
        let my_box = self.my_box();
        let mut out = Vec::new();
        let mut region_offset = 0;
        let mut inspected = 0usize;
        for region in set.regions() {
            if let Some(sub) = region.intersect_box(&my_box) {
                let mut it = sub.iter_coords();
                while let Some(coords) = it.advance() {
                    let pos = region_offset
                        + region
                            .position_of(coords)
                            .expect("intersection is a subset");
                    let addr = self.dist().local_addr(self.my_local(), coords);
                    out.push((pos, addr));
                }
                inspected += sub.len();
            }
            region_offset += region.len();
        }
        // Closed-form arithmetic per owned element, plus a constant per
        // region for the intersection itself.
        comm.ep().charge_owner_calc(inspected + set.num_regions());
        out
    }

    fn deref_owned_runs(
        &self,
        comm: &mut Comm<'_>,
        set: &SetOfRegions<RegularSection>,
    ) -> Vec<OwnedRun> {
        // Row-at-a-time version of `deref_owned`: each row of an
        // intersected sub-section is one run of consecutive positions whose
        // local addresses advance by the section's last-dim stride.  Work is
        // O(rows), not O(elements); the virtual-clock charge is identical.
        let my_box = self.my_box();
        let dist = self.dist();
        let me = self.my_local();
        let mut builder = RunBuilder::new();
        let mut region_offset = 0;
        let mut inspected = 0usize;
        for region in set.regions() {
            if let Some(sub) = region.intersect_box(&my_box) {
                let nd = sub.ndim();
                let (row_len, stride) = if nd == 0 {
                    (sub.len(), 1isize)
                } else {
                    let ls = &sub.dims()[nd - 1];
                    (ls.count(), ls.stride as isize)
                };
                let rows = sub.len().checked_div(row_len).unwrap_or(0);
                let mut coords = vec![0usize; nd];
                for r in 0..rows {
                    sub.coords_into(r * row_len, &mut coords);
                    let pos = region_offset
                        + region
                            .position_of(&coords)
                            .expect("intersection is a subset");
                    let addr = dist.local_addr(me, &coords);
                    builder.push_run(pos, row_len, addr, stride);
                }
                inspected += sub.len();
            }
            region_offset += region.len();
        }
        comm.ep().charge_owner_calc(inspected + set.num_regions());
        builder.finish()
    }

    fn locate_positions(
        &self,
        comm: &mut Comm<'_>,
        set: &SetOfRegions<RegularSection>,
        positions: &[usize],
    ) -> Vec<Location> {
        // Closed-form block arithmetic per query; no communication.
        let dist = self.dist();
        comm.ep().charge_owner_calc(positions.len());
        positions
            .iter()
            .map(|&pos| {
                let (ri, off) = set.locate_position(pos);
                let coords = set.regions()[ri].coords_of(off);
                let local = dist.owner(&coords);
                Location {
                    rank: self.members()[local],
                    addr: dist.local_addr(local, &coords),
                }
            })
            .collect()
    }

    fn descriptor(&self, _comm: &mut Comm<'_>) -> BlockDesc {
        // Purely local: a block descriptor is a few integers.
        BlockDesc {
            dist: self.dist().clone(),
            members: self.members().to_vec(),
        }
    }

    fn epoch(&self) -> u64 {
        MultiblockArray::epoch(self)
    }

    fn pack(&self, ep: &mut Endpoint, addrs: &[LocalAddr], out: &mut Vec<T>) {
        let data = self.local();
        out.extend(addrs.iter().map(|&a| data[a]));
        ep.charge_copy_bytes(addrs.len() * std::mem::size_of::<T>());
    }

    fn unpack(&mut self, ep: &mut Endpoint, addrs: &[LocalAddr], vals: &[T]) {
        assert_eq!(addrs.len(), vals.len());
        let data = self.local_mut();
        for (&a, &v) in addrs.iter().zip(vals) {
            data[a] = v;
        }
        ep.charge_copy_bytes(addrs.len() * std::mem::size_of::<T>());
    }

    fn pack_runs(&self, ep: &mut Endpoint, runs: &AddrRuns, out: &mut Vec<T>) {
        let data = self.local();
        for &(start, len) in runs.runs() {
            out.extend_from_slice(&data[start..start + len]);
        }
        ep.charge_copy_bytes(runs.len() * std::mem::size_of::<T>());
    }

    fn unpack_runs(&mut self, ep: &mut Endpoint, runs: &AddrRuns, vals: &[T]) {
        assert_eq!(runs.len(), vals.len());
        let data = self.local_mut();
        let mut off = 0;
        for &(start, len) in runs.runs() {
            data[start..start + len].copy_from_slice(&vals[off..off + len]);
            off += len;
        }
        ep.charge_copy_bytes(runs.len() * std::mem::size_of::<T>());
    }

    fn pack_runs_wire(&self, ep: &mut Endpoint, runs: &AddrRuns, out: &mut Vec<u8>)
    where
        T: Wire,
    {
        let data = self.local();
        for &(start, len) in runs.runs() {
            T::write_slice(&data[start..start + len], out);
        }
        ep.charge_copy_bytes(runs.len() * std::mem::size_of::<T>());
    }

    fn unpack_runs_wire(
        &mut self,
        ep: &mut Endpoint,
        runs: &AddrRuns,
        r: &mut WireReader<'_>,
    ) -> Result<(), SimError>
    where
        T: Wire,
    {
        let data = self.local_mut();
        for &(start, len) in runs.runs() {
            T::read_slice(r, &mut data[start..start + len])?;
        }
        ep.charge_copy_bytes(runs.len() * std::mem::size_of::<T>());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim::group::Group;
    use mcsim::model::MachineModel;
    use mcsim::world::World;
    use meta_chaos::build::{compute_schedule, BuildMethod};
    use meta_chaos::datamove::data_move;
    use meta_chaos::Side;

    #[test]
    fn desc_wire_roundtrip() {
        let d = BlockDesc {
            dist: BlockDist::new(vec![8, 6], ProcGrid::new(vec![2, 2]), 1),
            members: vec![0, 1, 2, 3],
        };
        let b = d.to_bytes();
        assert_eq!(BlockDesc::from_bytes(&b).unwrap(), d);
    }

    #[test]
    fn locate_agrees_with_deref_owned() {
        let world = World::with_model(4, MachineModel::zero());
        world.run(|ep| {
            let g = Group::world(ep.world_size());
            let a = MultiblockArray::<f64>::new(&g, ep.rank(), &[9, 7]);
            let set = SetOfRegions::from_regions(vec![
                RegularSection::of_bounds(&[(1, 6), (2, 7)]),
                RegularSection::of_bounds(&[(7, 9), (0, 3)]),
            ]);
            let mut comm = Comm::world(ep);
            let owned = a.deref_owned(&mut comm, &set);
            let desc = a.descriptor(&mut comm);
            let me = comm.ep_ref().rank();
            let all = desc.locate_all(&set);
            // Every owned (pos, addr) must agree with the descriptor.
            for &(pos, addr) in &owned {
                assert_eq!(all[pos], Location { rank: me, addr });
            }
            // And the descriptor claims exactly those positions for me.
            let mine: Vec<usize> = all
                .iter()
                .enumerate()
                .filter(|(_, l)| l.rank == me)
                .map(|(p, _)| p)
                .collect();
            assert_eq!(mine, owned.iter().map(|&(p, _)| p).collect::<Vec<_>>());
        });
    }

    #[test]
    fn deref_owned_runs_expand_to_deref_owned() {
        let world = World::with_model(4, MachineModel::zero());
        world.run(|ep| {
            let g = Group::world(ep.world_size());
            let a = MultiblockArray::<f64>::new(&g, ep.rank(), &[9, 7]);
            let set = SetOfRegions::from_regions(vec![
                RegularSection::of_bounds(&[(1, 6), (2, 7)]),
                RegularSection::new(vec![
                    meta_chaos::DimSlice::strided(0, 9, 2),
                    meta_chaos::DimSlice::strided(1, 7, 3),
                ]),
            ]);
            let mut comm = Comm::world(ep);
            let owned = a.deref_owned(&mut comm, &set);
            let runs = a.deref_owned_runs(&mut comm, &set);
            let mut expanded = Vec::new();
            for r in &runs {
                for k in 0..r.len {
                    expanded.push((r.pos + k, r.addr_at(k)));
                }
            }
            assert_eq!(expanded, owned);
            // Runs are sorted, disjoint and maximal is implied by equality
            // with the sorted element list plus the builder invariants.
            for w in runs.windows(2) {
                assert!(w[0].end() <= w[1].pos);
            }
        });
    }

    #[test]
    fn locate_run_agrees_with_locate_and_tiles() {
        let d = BlockDesc {
            dist: BlockDist::new(vec![10, 10], ProcGrid::new(vec![2, 2]), 1),
            members: vec![5, 6, 7, 8],
        };
        let set = SetOfRegions::from_regions(vec![
            RegularSection::of_bounds(&[(2, 9), (3, 8)]),
            RegularSection::new(vec![
                meta_chaos::DimSlice::strided(0, 10, 3),
                meta_chaos::DimSlice::strided(0, 10, 2),
            ]),
        ]);
        let n = set.total_len();
        let mut pos = 0;
        while pos < n {
            let run = d.locate_run(&set, pos, n - pos);
            assert!(run.pos == pos && run.len >= 1 && run.end() <= n);
            for k in 0..run.len {
                let loc = d.locate(&set, pos + k);
                assert_eq!(loc.rank, run.rank, "pos {}", pos + k);
                assert_eq!(loc.addr, run.addr_at(k), "pos {}", pos + k);
            }
            pos = run.end();
        }
        // And the batched form tiles the whole span after merging.
        let runs = d.locate_runs(&set, 0, n);
        assert_eq!(runs.iter().map(|r| r.len).sum::<usize>(), n);
        for w in runs.windows(2) {
            assert_eq!(w[0].end(), w[1].pos);
        }
    }

    #[test]
    fn locate_all_matches_locate() {
        let d = BlockDesc {
            dist: BlockDist::new(vec![10, 10], ProcGrid::new(vec![2, 2]), 0),
            members: vec![5, 6, 7, 8],
        };
        let set = SetOfRegions::single(RegularSection::of_bounds(&[(2, 9), (3, 8)]));
        let all = d.locate_all(&set);
        for pos in 0..set.total_len() {
            assert_eq!(all[pos], d.locate(&set, pos));
        }
    }

    #[test]
    fn section_copy_between_two_block_arrays() {
        // The paper's Fig. 9 example, shrunk: A[1:5, 1:6] = B[5:9, 5:10].
        let world = World::with_model(4, MachineModel::zero());
        let out = world.run(|ep| {
            let g = Group::world(ep.world_size());
            let mut b = MultiblockArray::<f64>::new(&g, ep.rank(), &[12, 12]);
            b.fill_with(|c| (c[0] * 100 + c[1]) as f64);
            let mut a = MultiblockArray::<f64>::new(&g, ep.rank(), &[8, 8]);
            let sset = SetOfRegions::single(RegularSection::of_bounds(&[(5, 9), (5, 11)]));
            let dset = SetOfRegions::single(RegularSection::of_bounds(&[(1, 5), (1, 7)]));
            let sched = compute_schedule(
                ep,
                &g,
                &g,
                Some(Side::new(&b, &sset)),
                &g,
                Some(Side::new(&a, &dset)),
                BuildMethod::Cooperation,
            )
            .unwrap();
            data_move(ep, &sched, &b, &mut a);
            // Collect owned values of A for checking.
            let boxx = a.my_box();
            let mut vals = Vec::new();
            for i in boxx[0].0..boxx[0].1 {
                for j in boxx[1].0..boxx[1].1 {
                    vals.push((i, j, a.get(&[i, j])));
                }
            }
            vals
        });
        for vals in out.results {
            for (i, j, v) in vals {
                let expect = if (1..5).contains(&i) && (1..7).contains(&j) {
                    ((i + 4) * 100 + (j + 4)) as f64
                } else {
                    0.0
                };
                assert_eq!(v, expect, "A[{i}][{j}]");
            }
        }
    }
}
