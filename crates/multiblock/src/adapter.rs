//! Meta-Chaos interface functions for [`MultiblockArray`] (paper §4.1.3).
//!
//! The Region type is a [`RegularSection`] in the array's *global* index
//! space — exactly the paper's choice for Multiblock Parti and HPF.  All
//! owner queries are closed-form block arithmetic, so `deref_owned`
//! enumerates only the elements this rank owns (no communication) and the
//! descriptor is a handful of integers.

use mcsim::error::SimError;
use mcsim::group::Comm;
use mcsim::prelude::Endpoint;
use mcsim::wire::{Wire, WireReader};

use meta_chaos::adapter::{Location, McDescriptor, McObject};
use meta_chaos::region::{Region, RegularSection};
use meta_chaos::schedule::AddrRuns;
use meta_chaos::setof::SetOfRegions;
use meta_chaos::LocalAddr;

use crate::array::MultiblockArray;
use crate::dist::BlockDist;
use crate::grid::ProcGrid;

/// Shippable descriptor of a block-distributed array: distribution
/// parameters plus the owning program's global ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockDesc {
    /// The block distribution (shape, grid, halo).
    pub dist: BlockDist,
    /// Global ranks of the owning program, in grid order.
    pub members: Vec<usize>,
}

impl Wire for BlockDesc {
    fn write(&self, out: &mut Vec<u8>) {
        self.dist.shape().to_vec().write(out);
        self.dist.grid().dims().to_vec().write(out);
        self.dist.halo().write(out);
        self.members.write(out);
    }
    fn read(r: &mut WireReader<'_>) -> Result<Self, SimError> {
        let shape = Vec::<usize>::read(r)?;
        let grid_dims = Vec::<usize>::read(r)?;
        let halo = usize::read(r)?;
        let members = Vec::<usize>::read(r)?;
        if grid_dims.iter().product::<usize>() != members.len() {
            return Err(SimError::Decode(
                "grid size does not match member count".into(),
            ));
        }
        Ok(BlockDesc {
            dist: BlockDist::new(shape, ProcGrid::new(grid_dims), halo),
            members,
        })
    }
}

impl McDescriptor for BlockDesc {
    type Region = RegularSection;

    fn locate(&self, set: &SetOfRegions<RegularSection>, pos: usize) -> Location {
        let (ri, off) = set.locate_position(pos);
        let coords = set.regions()[ri].coords_of(off);
        let local = self.dist.owner(&coords);
        Location {
            rank: self.members[local],
            addr: self.dist.local_addr(local, &coords),
        }
    }

    fn locate_all(&self, set: &SetOfRegions<RegularSection>) -> Vec<Location> {
        // Batch version: avoid re-resolving the region per element.
        let mut out = Vec::with_capacity(set.total_len());
        for region in set.regions() {
            let mut it = region.iter_coords();
            while let Some(coords) = it.advance() {
                let local = self.dist.owner(coords);
                out.push(Location {
                    rank: self.members[local],
                    addr: self.dist.local_addr(local, coords),
                });
            }
        }
        out
    }
}

impl<T: Copy + Default> McObject<T> for MultiblockArray<T> {
    type Region = RegularSection;
    type Descriptor = BlockDesc;

    fn deref_owned(
        &self,
        comm: &mut Comm<'_>,
        set: &SetOfRegions<RegularSection>,
    ) -> Vec<(usize, LocalAddr)> {
        let my_box = self.my_box();
        let mut out = Vec::new();
        let mut region_offset = 0;
        let mut inspected = 0usize;
        for region in set.regions() {
            if let Some(sub) = region.intersect_box(&my_box) {
                let mut it = sub.iter_coords();
                while let Some(coords) = it.advance() {
                    let pos = region_offset
                        + region
                            .position_of(coords)
                            .expect("intersection is a subset");
                    let addr = self.dist().local_addr(self.my_local(), coords);
                    out.push((pos, addr));
                }
                inspected += sub.len();
            }
            region_offset += region.len();
        }
        // Closed-form arithmetic per owned element, plus a constant per
        // region for the intersection itself.
        comm.ep().charge_owner_calc(inspected + set.num_regions());
        out
    }

    fn locate_positions(
        &self,
        comm: &mut Comm<'_>,
        set: &SetOfRegions<RegularSection>,
        positions: &[usize],
    ) -> Vec<Location> {
        // Closed-form block arithmetic per query; no communication.
        let dist = self.dist();
        comm.ep().charge_owner_calc(positions.len());
        positions
            .iter()
            .map(|&pos| {
                let (ri, off) = set.locate_position(pos);
                let coords = set.regions()[ri].coords_of(off);
                let local = dist.owner(&coords);
                Location {
                    rank: self.members()[local],
                    addr: dist.local_addr(local, &coords),
                }
            })
            .collect()
    }

    fn descriptor(&self, _comm: &mut Comm<'_>) -> BlockDesc {
        // Purely local: a block descriptor is a few integers.
        BlockDesc {
            dist: self.dist().clone(),
            members: self.members().to_vec(),
        }
    }

    fn epoch(&self) -> u64 {
        MultiblockArray::epoch(self)
    }

    fn pack(&self, ep: &mut Endpoint, addrs: &[LocalAddr], out: &mut Vec<T>) {
        let data = self.local();
        out.extend(addrs.iter().map(|&a| data[a]));
        ep.charge_copy_bytes(addrs.len() * std::mem::size_of::<T>());
    }

    fn unpack(&mut self, ep: &mut Endpoint, addrs: &[LocalAddr], vals: &[T]) {
        assert_eq!(addrs.len(), vals.len());
        let data = self.local_mut();
        for (&a, &v) in addrs.iter().zip(vals) {
            data[a] = v;
        }
        ep.charge_copy_bytes(addrs.len() * std::mem::size_of::<T>());
    }

    fn pack_runs(&self, ep: &mut Endpoint, runs: &AddrRuns, out: &mut Vec<T>) {
        let data = self.local();
        for &(start, len) in runs.runs() {
            out.extend_from_slice(&data[start..start + len]);
        }
        ep.charge_copy_bytes(runs.len() * std::mem::size_of::<T>());
    }

    fn unpack_runs(&mut self, ep: &mut Endpoint, runs: &AddrRuns, vals: &[T]) {
        assert_eq!(runs.len(), vals.len());
        let data = self.local_mut();
        let mut off = 0;
        for &(start, len) in runs.runs() {
            data[start..start + len].copy_from_slice(&vals[off..off + len]);
            off += len;
        }
        ep.charge_copy_bytes(runs.len() * std::mem::size_of::<T>());
    }

    fn pack_runs_wire(&self, ep: &mut Endpoint, runs: &AddrRuns, out: &mut Vec<u8>)
    where
        T: Wire,
    {
        let data = self.local();
        for &(start, len) in runs.runs() {
            T::write_slice(&data[start..start + len], out);
        }
        ep.charge_copy_bytes(runs.len() * std::mem::size_of::<T>());
    }

    fn unpack_runs_wire(
        &mut self,
        ep: &mut Endpoint,
        runs: &AddrRuns,
        r: &mut WireReader<'_>,
    ) -> Result<(), SimError>
    where
        T: Wire,
    {
        let data = self.local_mut();
        for &(start, len) in runs.runs() {
            T::read_slice(r, &mut data[start..start + len])?;
        }
        ep.charge_copy_bytes(runs.len() * std::mem::size_of::<T>());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim::group::Group;
    use mcsim::model::MachineModel;
    use mcsim::world::World;
    use meta_chaos::build::{compute_schedule, BuildMethod};
    use meta_chaos::datamove::data_move;
    use meta_chaos::Side;

    #[test]
    fn desc_wire_roundtrip() {
        let d = BlockDesc {
            dist: BlockDist::new(vec![8, 6], ProcGrid::new(vec![2, 2]), 1),
            members: vec![0, 1, 2, 3],
        };
        let b = d.to_bytes();
        assert_eq!(BlockDesc::from_bytes(&b).unwrap(), d);
    }

    #[test]
    fn locate_agrees_with_deref_owned() {
        let world = World::with_model(4, MachineModel::zero());
        world.run(|ep| {
            let g = Group::world(ep.world_size());
            let a = MultiblockArray::<f64>::new(&g, ep.rank(), &[9, 7]);
            let set = SetOfRegions::from_regions(vec![
                RegularSection::of_bounds(&[(1, 6), (2, 7)]),
                RegularSection::of_bounds(&[(7, 9), (0, 3)]),
            ]);
            let mut comm = Comm::world(ep);
            let owned = a.deref_owned(&mut comm, &set);
            let desc = a.descriptor(&mut comm);
            let me = comm.ep_ref().rank();
            let all = desc.locate_all(&set);
            // Every owned (pos, addr) must agree with the descriptor.
            for &(pos, addr) in &owned {
                assert_eq!(all[pos], Location { rank: me, addr });
            }
            // And the descriptor claims exactly those positions for me.
            let mine: Vec<usize> = all
                .iter()
                .enumerate()
                .filter(|(_, l)| l.rank == me)
                .map(|(p, _)| p)
                .collect();
            assert_eq!(mine, owned.iter().map(|&(p, _)| p).collect::<Vec<_>>());
        });
    }

    #[test]
    fn locate_all_matches_locate() {
        let d = BlockDesc {
            dist: BlockDist::new(vec![10, 10], ProcGrid::new(vec![2, 2]), 0),
            members: vec![5, 6, 7, 8],
        };
        let set = SetOfRegions::single(RegularSection::of_bounds(&[(2, 9), (3, 8)]));
        let all = d.locate_all(&set);
        for pos in 0..set.total_len() {
            assert_eq!(all[pos], d.locate(&set, pos));
        }
    }

    #[test]
    fn section_copy_between_two_block_arrays() {
        // The paper's Fig. 9 example, shrunk: A[1:5, 1:6] = B[5:9, 5:10].
        let world = World::with_model(4, MachineModel::zero());
        let out = world.run(|ep| {
            let g = Group::world(ep.world_size());
            let mut b = MultiblockArray::<f64>::new(&g, ep.rank(), &[12, 12]);
            b.fill_with(|c| (c[0] * 100 + c[1]) as f64);
            let mut a = MultiblockArray::<f64>::new(&g, ep.rank(), &[8, 8]);
            let sset = SetOfRegions::single(RegularSection::of_bounds(&[(5, 9), (5, 11)]));
            let dset = SetOfRegions::single(RegularSection::of_bounds(&[(1, 5), (1, 7)]));
            let sched = compute_schedule(
                ep,
                &g,
                &g,
                Some(Side::new(&b, &sset)),
                &g,
                Some(Side::new(&a, &dset)),
                BuildMethod::Cooperation,
            )
            .unwrap();
            data_move(ep, &sched, &b, &mut a);
            // Collect owned values of A for checking.
            let boxx = a.my_box();
            let mut vals = Vec::new();
            for i in boxx[0].0..boxx[0].1 {
                for j in boxx[1].0..boxx[1].1 {
                    vals.push((i, j, a.get(&[i, j])));
                }
            }
            vals
        });
        for vals in out.results {
            for (i, j, v) in vals {
                let expect = if (1..5).contains(&i) && (1..7).contains(&j) {
                    ((i + 4) * 100 + (j + 4)) as f64
                } else {
                    0.0
                };
                assert_eq!(v, expect, "A[{i}][{j}]");
            }
        }
    }
}
