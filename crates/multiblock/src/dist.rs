//! Block distributions with closed-form owner arithmetic.
//!
//! A [`BlockDist`] splits an n-dimensional global index space over a
//! [`ProcGrid`], dimension by dimension, into near-equal contiguous blocks
//! (the HPF `(BLOCK, BLOCK, …)` distribution Multiblock Parti uses).  All
//! owner/address queries are O(1) arithmetic — the reason Parti schedule
//! construction is cheap (paper Table 5).

use mcsim::rng::Rng;

use crate::grid::ProcGrid;

/// All grid factorizations of `p` into `shape.len()` factors whose
/// extents fit `shape` (so [`BlockDist::new`]'s per-dim check holds).
fn fitting_grids(p: usize, shape: &[usize]) -> Vec<Vec<usize>> {
    fn rec(p: usize, shape: &[usize], acc: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if shape.len() == 1 {
            if p <= shape[0] {
                acc.push(p);
                out.push(acc.clone());
                acc.pop();
            }
            return;
        }
        for g in 1..=p.min(shape[0]) {
            if p.is_multiple_of(g) {
                acc.push(g);
                rec(p / g, &shape[1..], acc, out);
                acc.pop();
            }
        }
    }
    let mut out = Vec::new();
    rec(p, shape, &mut Vec::new(), &mut out);
    out
}

/// Block distribution of a `shape`-sized index space over a processor grid,
/// with `halo` ghost cells per side in the local allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockDist {
    shape: Vec<usize>,
    grid: ProcGrid,
    halo: usize,
}

impl BlockDist {
    /// Distribute `shape` over `grid` with `halo` ghost layers.
    pub fn new(shape: Vec<usize>, grid: ProcGrid, halo: usize) -> Self {
        assert_eq!(
            shape.len(),
            grid.ndim(),
            "shape and grid dimensionality differ"
        );
        assert!(shape.iter().all(|&n| n > 0), "zero-extent dimension");
        for (d, (&n, &g)) in shape.iter().zip(grid.dims()).enumerate() {
            assert!(
                n >= g,
                "dim {d}: cannot block-distribute extent {n} over {g} procs"
            );
        }
        BlockDist { shape, grid, halo }
    }

    /// A random valid distribution of `shape` over `procs` ranks, for
    /// generated scenarios (the fuzz harness): a uniformly chosen grid
    /// factorization whose extents fit the shape, plus a small random
    /// halo.  Panics when no factorization fits (e.g. more procs than
    /// elements in every dimension).
    pub fn random(rng: &mut Rng, shape: Vec<usize>, procs: usize) -> Self {
        let grids = fitting_grids(procs, &shape);
        assert!(
            !grids.is_empty(),
            "no grid factorization of {procs} procs fits shape {shape:?}"
        );
        let dims = grids[rng.gen_range(grids.len())].clone();
        let halo = rng.gen_range(3);
        BlockDist::new(shape, ProcGrid::new(dims), halo)
    }

    /// Global array shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The processor grid.
    pub fn grid(&self) -> &ProcGrid {
        &self.grid
    }

    /// Ghost width.
    pub fn halo(&self) -> usize {
        self.halo
    }

    /// `[lo, hi)` owned along `dim` by grid coordinate `c`.
    pub fn bounds_in_dim(&self, dim: usize, c: usize) -> (usize, usize) {
        let n = self.shape[dim];
        let g = self.grid.dims()[dim];
        let base = n / g;
        let rem = n % g;
        let lo = c * base + c.min(rem);
        let hi = lo + base + usize::from(c < rem);
        (lo, hi)
    }

    /// Grid coordinate owning index `x` along `dim`.
    pub fn owner_in_dim(&self, dim: usize, x: usize) -> usize {
        let n = self.shape[dim];
        debug_assert!(x < n, "index {x} outside dim {dim} extent {n}");
        let g = self.grid.dims()[dim];
        let base = n / g;
        let rem = n % g;
        let cut = rem * (base + 1);
        if x < cut {
            x / (base + 1)
        } else {
            rem + (x - cut) / base
        }
    }

    /// Program-local rank owning global coordinates `coords`.
    pub fn owner(&self, coords: &[usize]) -> usize {
        // Allocation-free: fold the grid coordinates directly.
        let gdims = self.grid.dims();
        let mut r = 0;
        for (d, &c) in coords.iter().enumerate() {
            r = r * gdims[d] + self.owner_in_dim(d, c);
        }
        r
    }

    /// The owned box (per-dim `[lo, hi)`) of program-local rank `rank`.
    pub fn owned_box(&self, rank: usize) -> Vec<(usize, usize)> {
        let gc = self.grid.coords_of(rank);
        (0..self.shape.len())
            .map(|d| self.bounds_in_dim(d, gc[d]))
            .collect()
    }

    /// Extents of rank `rank`'s local allocation (owned block + halos).
    pub fn local_alloc_shape(&self, rank: usize) -> Vec<usize> {
        self.owned_box(rank)
            .iter()
            .map(|&(lo, hi)| hi - lo + 2 * self.halo)
            .collect()
    }

    /// Number of elements in the local allocation of `rank`.
    pub fn local_alloc_len(&self, rank: usize) -> usize {
        self.local_alloc_shape(rank).iter().product()
    }

    /// Local address (row-major over the haloed allocation) of global
    /// coordinates `coords` on their owning rank.
    ///
    /// Allocation-free (hot path: every element access goes through here).
    pub fn local_addr(&self, rank: usize, coords: &[usize]) -> usize {
        let gdims = self.grid.dims();
        let mut addr = 0;
        let mut rank_rem = rank;
        let mut suffix: usize = gdims.iter().product();
        for (d, &c) in coords.iter().enumerate() {
            suffix /= gdims[d];
            let gc = rank_rem / suffix;
            rank_rem %= suffix;
            let (lo, hi) = self.bounds_in_dim(d, gc);
            // Halo cells make coordinates just outside the owned box
            // addressable too (they hold neighbours' boundary copies).
            debug_assert!(
                c + self.halo >= lo && c < hi + self.halo,
                "coord {c} outside haloed block [{lo},{hi}) of rank {rank}"
            );
            let off = c + self.halo - lo;
            addr = addr * (hi - lo + 2 * self.halo) + off;
        }
        addr
    }

    /// Inverse of [`Self::local_addr`] for owned (non-halo) addresses:
    /// global coordinates of local address `addr` on `rank`, or `None` if
    /// the address is a ghost cell.
    pub fn global_coords(&self, rank: usize, mut addr: usize) -> Option<Vec<usize>> {
        let boxx = self.owned_box(rank);
        let alloc = self.local_alloc_shape(rank);
        let mut out = vec![0; self.shape.len()];
        for d in (0..self.shape.len()).rev() {
            let off = addr % alloc[d];
            addr /= alloc[d];
            let (lo, hi) = boxx[d];
            let c = (lo + off).checked_sub(self.halo)?;
            if c < lo || c >= hi {
                return None;
            }
            out[d] = c;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist2(shape: [usize; 2], grid: [usize; 2], halo: usize) -> BlockDist {
        BlockDist::new(shape.to_vec(), ProcGrid::new(grid.to_vec()), halo)
    }

    #[test]
    fn bounds_partition_each_dim() {
        let d = dist2([10, 7], [3, 2], 0);
        // dim 0: 10 over 3 = 4,3,3
        assert_eq!(d.bounds_in_dim(0, 0), (0, 4));
        assert_eq!(d.bounds_in_dim(0, 1), (4, 7));
        assert_eq!(d.bounds_in_dim(0, 2), (7, 10));
        // dim 1: 7 over 2 = 4,3
        assert_eq!(d.bounds_in_dim(1, 0), (0, 4));
        assert_eq!(d.bounds_in_dim(1, 1), (4, 7));
    }

    #[test]
    fn owner_matches_bounds() {
        let d = dist2([10, 7], [3, 2], 0);
        for dim in 0..2 {
            for x in 0..d.shape()[dim] {
                let c = d.owner_in_dim(dim, x);
                let (lo, hi) = d.bounds_in_dim(dim, c);
                assert!(x >= lo && x < hi, "dim {dim} x {x} owner {c}");
            }
        }
    }

    #[test]
    fn every_element_owned_exactly_once() {
        let d = dist2([9, 8], [2, 3], 1);
        let mut count = vec![0usize; 6];
        for i in 0..9 {
            for j in 0..8 {
                count[d.owner(&[i, j])] += 1;
            }
        }
        assert_eq!(count.iter().sum::<usize>(), 72);
        // Block sizes: dim0 {5,4}, dim1 {3,3,2}
        assert_eq!(count, vec![15, 15, 10, 12, 12, 8]);
    }

    #[test]
    fn local_addr_roundtrip_with_halo() {
        let d = dist2([9, 8], [2, 3], 2);
        for rank in 0..6 {
            let boxx = d.owned_box(rank);
            for i in boxx[0].0..boxx[0].1 {
                for j in boxx[1].0..boxx[1].1 {
                    let a = d.local_addr(rank, &[i, j]);
                    assert!(a < d.local_alloc_len(rank));
                    assert_eq!(d.global_coords(rank, a), Some(vec![i, j]));
                }
            }
        }
    }

    #[test]
    fn ghost_addresses_report_none() {
        let d = dist2([8, 8], [2, 2], 1);
        // Address 0 on rank 0 is the halo corner.
        assert_eq!(d.global_coords(0, 0), None);
    }

    #[test]
    fn halo_cells_are_addressable() {
        let d = dist2([8, 8], [2, 2], 1);
        // Rank 0 owns [0,4)x[0,4); coord (4, 0) is its +i halo.
        let a = d.local_addr(0, &[4, 0]);
        assert!(a < d.local_alloc_len(0));
        // That halo address corresponds to no owned coord.
        assert_eq!(d.global_coords(0, a), None);
    }

    #[test]
    #[should_panic(expected = "cannot block-distribute")]
    fn too_many_procs_rejected() {
        let _ = dist2([2, 8], [3, 1], 0);
    }
}
