//! The block-distributed multidimensional array.

use mcsim::group::Group;

use crate::dist::BlockDist;
use crate::grid::ProcGrid;

/// One program rank's piece of a block-distributed n-D array
/// (owned block plus `halo` ghost layers per side).
#[derive(Debug, Clone)]
pub struct MultiblockArray<T> {
    dist: BlockDist,
    members: Vec<usize>,
    my_local: usize,
    data: Vec<T>,
    /// Distribution epoch: bumped by [`crate::regrid::regrid`] so
    /// schedules built against the old block layout are detectably stale.
    epoch: u64,
}

impl<T: Copy + Default> MultiblockArray<T> {
    /// Create the array on each rank of `prog`, distributed `(BLOCK, …)`
    /// over a near-square grid, zero halo.
    pub fn new(prog: &Group, me_global: usize, shape: &[usize]) -> Self {
        Self::with_halo(prog, me_global, shape, 0)
    }

    /// Create with `halo` ghost layers (for stencil sweeps).
    pub fn with_halo(prog: &Group, me_global: usize, shape: &[usize], halo: usize) -> Self {
        let grid = ProcGrid::factor(prog.size(), shape.len());
        let dist = BlockDist::new(shape.to_vec(), grid, halo);
        Self::from_dist(prog, me_global, dist)
    }

    /// Create from an explicit distribution.
    pub fn from_dist(prog: &Group, me_global: usize, dist: BlockDist) -> Self {
        assert_eq!(
            dist.grid().size(),
            prog.size(),
            "grid size must match program size"
        );
        let my_local = prog
            .local_of(me_global)
            .expect("creating rank must belong to the program");
        let data = vec![T::default(); dist.local_alloc_len(my_local)];
        MultiblockArray {
            dist,
            members: prog.members().to_vec(),
            my_local,
            data,
            epoch: 0,
        }
    }

    /// Distribution epoch (see `meta_chaos::McObject::epoch`): 0 at
    /// creation, +1 per [`crate::regrid::regrid`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Set the distribution epoch (regrid installs `source + 1`).
    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The distribution.
    pub fn dist(&self) -> &BlockDist {
        &self.dist
    }

    /// Global ranks of the owning program, in program order.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// This rank's program-local index.
    pub fn my_local(&self) -> usize {
        self.my_local
    }

    /// The owned box (per-dim `[lo, hi)`) of this rank.
    pub fn my_box(&self) -> Vec<(usize, usize)> {
        self.dist.owned_box(self.my_local)
    }

    /// Raw local storage (owned block + halo, row-major).
    pub fn local(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw local storage.
    pub fn local_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// True if this rank owns `coords`.
    pub fn owns(&self, coords: &[usize]) -> bool {
        self.dist.owner(coords) == self.my_local
    }

    /// Read the element at global `coords` (must be owned or in the halo).
    pub fn get(&self, coords: &[usize]) -> T {
        self.data[self.dist.local_addr(self.my_local, coords)]
    }

    /// Write the element at global `coords` (must be owned or in the halo).
    pub fn set(&mut self, coords: &[usize], v: T) {
        let a = self.dist.local_addr(self.my_local, coords);
        self.data[a] = v;
    }

    /// Fill every owned element from `f(global coords)` (halo untouched).
    pub fn fill_with(&mut self, f: impl Fn(&[usize]) -> T) {
        let boxx = self.my_box();
        let mut coords: Vec<usize> = boxx.iter().map(|&(lo, _)| lo).collect();
        loop {
            let a = self.dist.local_addr(self.my_local, &coords);
            self.data[a] = f(&coords);
            // Odometer increment over the owned box.
            let mut d = coords.len();
            loop {
                if d == 0 {
                    return;
                }
                d -= 1;
                coords[d] += 1;
                if coords[d] < boxx[d].1 {
                    break;
                }
                coords[d] = boxx[d].0;
            }
        }
    }

    /// Sum of all owned elements on this rank (halo excluded).
    pub fn local_sum(&self) -> T
    where
        T: std::ops::Add<Output = T>,
    {
        let boxx = self.my_box();
        let mut acc = T::default();
        let mut coords: Vec<usize> = boxx.iter().map(|&(lo, _)| lo).collect();
        loop {
            acc = acc + self.get(&coords);
            let mut d = coords.len();
            loop {
                if d == 0 {
                    return acc;
                }
                d -= 1;
                coords[d] += 1;
                if coords[d] < boxx[d].1 {
                    break;
                }
                coords[d] = boxx[d].0;
            }
        }
    }
}

impl MultiblockArray<f64> {
    /// Global sum over every owned element (collective over the program).
    pub fn global_sum(&self, comm: &mut mcsim::group::Comm<'_>) -> f64 {
        let local = self.local_sum();
        comm.ep()
            .charge_flops(self.dist.local_alloc_len(self.my_local));
        comm.allreduce_sum(local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim::model::MachineModel;
    use mcsim::world::World;

    #[test]
    fn fill_get_set_roundtrip() {
        let world = World::with_model(4, MachineModel::zero());
        world.run(|ep| {
            let g = Group::world(ep.world_size());
            let mut a = MultiblockArray::<f64>::new(&g, ep.rank(), &[8, 6]);
            a.fill_with(|c| (c[0] * 10 + c[1]) as f64);
            let boxx = a.my_box();
            for i in boxx[0].0..boxx[0].1 {
                for j in boxx[1].0..boxx[1].1 {
                    assert!(a.owns(&[i, j]));
                    assert_eq!(a.get(&[i, j]), (i * 10 + j) as f64);
                }
            }
            a.set(&[boxx[0].0, boxx[1].0], -5.0);
            assert_eq!(a.get(&[boxx[0].0, boxx[1].0]), -5.0);
        });
    }

    #[test]
    fn global_sum_across_ranks() {
        let world = World::with_model(3, MachineModel::zero());
        let out = world.run(|ep| {
            let g = Group::world(ep.world_size());
            let mut a = MultiblockArray::<f64>::new(&g, ep.rank(), &[6, 6]);
            a.fill_with(|_| 1.0);
            a.local_sum()
        });
        let total: f64 = out.results.iter().sum();
        assert_eq!(total, 36.0);
    }

    #[test]
    fn global_sum_collective() {
        let world = World::with_model(4, MachineModel::zero());
        world.run(|ep| {
            let g = Group::world(4);
            let mut a = MultiblockArray::<f64>::new(&g, ep.rank(), &[8, 8]);
            a.fill_with(|c| (c[0] + c[1]) as f64);
            let mut comm = mcsim::group::Comm::new(ep, g);
            let want: f64 = (0..8)
                .flat_map(|i| (0..8).map(move |j| (i + j) as f64))
                .sum();
            assert_eq!(a.global_sum(&mut comm), want);
        });
    }

    #[test]
    fn halo_storage_is_distinct_from_owned() {
        let world = World::with_model(1, MachineModel::zero());
        world.run(|ep| {
            let g = Group::world(1);
            let mut a = MultiblockArray::<f64>::with_halo(&g, ep.rank(), &[4], 1);
            assert_eq!(a.local().len(), 6); // 4 owned + 2 halo
            a.fill_with(|c| c[0] as f64 + 1.0);
            assert_eq!(a.local()[0], 0.0); // halo untouched
            assert_eq!(a.get(&[0]), 1.0);
            assert_eq!(a.get(&[3]), 4.0);
        });
    }
}
