//! Multiblock Parti's *native* regular-section copy — the specialized
//! baseline Meta-Chaos is compared against in the paper's Table 5.
//!
//! Parti builds the same aggregated schedule Meta-Chaos would (one message
//! per processor pair, linearization order), but:
//!
//! * schedule construction is pure closed-form arithmetic over the caller's
//!   *owned* elements only — the cheapest possible inspector;
//! * local (same-rank) copies are staged through an intermediate buffer,
//!   one extra copy Meta-Chaos does not pay (§5.3: "Meta-Chaos performs a
//!   direct copy ... while Multiblock Parti requires an intermediate
//!   buffer").

use mcsim::group::{Comm, Group};
use mcsim::prelude::Endpoint;
use mcsim::wire::Wire;

use meta_chaos::region::{Region, RegularSection};
use meta_chaos::schedule::Schedule;

use crate::array::MultiblockArray;

/// Scratch key of the per-rank Parti schedule sequence counter.
const PARTI_SEQ_KEY: u32 = 0x5041_5351; // "PASQ"

/// Build Parti's schedule for `dst[dsec] = src[ssec]` within one program.
///
/// Both arrays must live on the same program `prog`; the two sections must
/// have the same element count.
pub fn build_copy_schedule<T: Copy + Default>(
    ep: &mut Endpoint,
    prog: &Group,
    src: &MultiblockArray<T>,
    ssec: &RegularSection,
    dst: &MultiblockArray<T>,
    dsec: &RegularSection,
) -> Schedule {
    assert_eq!(ssec.len(), dsec.len(), "section element counts must match");
    let p = prog.size();
    let me_local = prog.local_of(ep.rank()).expect("caller in program");

    let mut sends: Vec<Vec<usize>> = (0..p).map(|_| Vec::new()).collect();
    let mut recvs: Vec<Vec<usize>> = (0..p).map(|_| Vec::new()).collect();

    // Send half: my owned part of the source section, in section order.
    let mut inspected = 0usize;
    if let Some(sub) = ssec.intersect_box(&src.my_box()) {
        let mut it = sub.iter_coords();
        while let Some(coords) = it.advance() {
            let pos = ssec.position_of(coords).expect("subset");
            let dcoords = dsec.coords_of(pos);
            let downer = dst.dist().owner(&dcoords);
            let saddr = src.dist().local_addr(me_local, coords);
            sends[downer].push(saddr);
        }
        inspected += sub.len();
    }
    // Receive half: my owned part of the destination section.
    if let Some(sub) = dsec.intersect_box(&dst.my_box()) {
        let mut it = sub.iter_coords();
        while let Some(coords) = it.advance() {
            let pos = dsec.position_of(coords).expect("subset");
            let scoords = ssec.coords_of(pos);
            let sowner = src.dist().owner(&scoords);
            let daddr = dst.dist().local_addr(me_local, coords);
            recvs[sowner].push(daddr);
        }
        inspected += sub.len();
    }
    // Two closed-form lookups per inspected element.
    ep.charge_owner_calc(2 * inspected);
    ep.charge_schedule_insert(inspected);

    // Keep the self entry as explicit local pairs; the Parti executor
    // stages them through a buffer (see `parti_copy`).
    let self_send = std::mem::take(&mut sends[me_local]);
    let self_recv = std::mem::take(&mut recvs[me_local]);
    assert_eq!(self_send.len(), self_recv.len());
    let local_pairs = self_send.into_iter().zip(self_recv).collect();

    // SPMD-consistent sequence number (all program ranks build native
    // schedules in the same order).
    let seq = ep.next_seq(PARTI_SEQ_KEY);

    Schedule::new(
        prog.clone(),
        0x0100_0000 | seq,
        sends.into_iter().enumerate().collect(),
        recvs.into_iter().enumerate().collect(),
        local_pairs,
        ssec.len(),
    )
}

/// Execute a native Parti copy with a prebuilt schedule.  Reusable.
pub fn parti_copy<T>(
    ep: &mut Endpoint,
    sched: &Schedule,
    src: &MultiblockArray<T>,
    dst: &mut MultiblockArray<T>,
) where
    T: Copy + Default + Wire,
{
    let elem = std::mem::size_of::<T>();
    // Class 0x2 keeps this raw stream clear of the tag classes mcsim's
    // reliable transport reserves (0x5/0x6).
    let t = 0x2000_0000 | sched.seq();
    for (peer, addrs) in &sched.sends {
        let buf: Vec<T> = addrs.iter().map(|a| src.local()[a]).collect();
        ep.charge_copy_bytes(buf.len() * elem);
        let mut comm = Comm::borrowed(ep, sched.group());
        comm.send_t(*peer, t, &buf);
    }
    // Local part: staged through an intermediate buffer (pack, stage,
    // unpack — one more copy than Meta-Chaos's direct local transfer).
    if !sched.local_pairs.is_empty() {
        let staged: Vec<T> = sched
            .local_pairs
            .iter()
            .map(|(s, _)| src.local()[s])
            .collect();
        ep.charge_copy_bytes(2 * staged.len() * elem);
        let data = dst.local_mut();
        for ((_, d), &v) in sched.local_pairs.iter().zip(&staged) {
            data[d] = v;
        }
        ep.charge_copy_bytes(staged.len() * elem);
    }
    for (peer, addrs) in &sched.recvs {
        let buf: Vec<T> = {
            let mut comm = Comm::borrowed(ep, sched.group());
            comm.recv_t(*peer, t)
        };
        assert_eq!(buf.len(), addrs.len());
        ep.charge_copy_bytes(buf.len() * elem);
        let data = dst.local_mut();
        for (a, &v) in addrs.iter().zip(&buf) {
            data[a] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim::model::MachineModel;
    use mcsim::world::World;
    use meta_chaos::build::{compute_schedule, BuildMethod};
    use meta_chaos::setof::SetOfRegions;
    use meta_chaos::Side;

    fn collect_owned(a: &MultiblockArray<f64>) -> Vec<(usize, usize, f64)> {
        let boxx = a.my_box();
        let mut vals = Vec::new();
        for i in boxx[0].0..boxx[0].1 {
            for j in boxx[1].0..boxx[1].1 {
                vals.push((i, j, a.get(&[i, j])));
            }
        }
        vals
    }

    #[test]
    fn native_copy_is_correct() {
        for p in [1, 2, 4] {
            let world = World::with_model(p, MachineModel::zero());
            let out = world.run(|ep| {
                let g = Group::world(ep.world_size());
                let mut b = MultiblockArray::<f64>::new(&g, ep.rank(), &[10, 10]);
                b.fill_with(|c| (c[0] * 10 + c[1]) as f64);
                let mut a = MultiblockArray::<f64>::new(&g, ep.rank(), &[10, 10]);
                let ssec = RegularSection::of_bounds(&[(0, 5), (0, 10)]);
                let dsec = RegularSection::of_bounds(&[(5, 10), (0, 10)]);
                let sched = build_copy_schedule(ep, &g, &b, &ssec, &a, &dsec);
                parti_copy(ep, &sched, &b, &mut a);
                collect_owned(&a)
            });
            for vals in out.results {
                for (i, j, v) in vals {
                    let expect = if i >= 5 {
                        ((i - 5) * 10 + j) as f64
                    } else {
                        0.0
                    };
                    assert_eq!(v, expect, "p={p} A[{i}][{j}]");
                }
            }
        }
    }

    #[test]
    fn native_schedule_matches_meta_chaos_motion() {
        // Parti and Meta-Chaos must generate identical message structure
        // (the paper's §4.1.4 claim, checked per rank).
        let world = World::with_model(4, MachineModel::zero());
        world.run(|ep| {
            let g = Group::world(ep.world_size());
            let b = MultiblockArray::<f64>::new(&g, ep.rank(), &[12, 12]);
            let a = MultiblockArray::<f64>::new(&g, ep.rank(), &[12, 12]);
            let ssec = RegularSection::of_bounds(&[(0, 6), (2, 12)]);
            let dsec = RegularSection::of_bounds(&[(6, 12), (0, 10)]);
            let native = build_copy_schedule(ep, &g, &b, &ssec, &a, &dsec);
            let sset = SetOfRegions::single(ssec.clone());
            let dset = SetOfRegions::single(dsec.clone());
            let mc = compute_schedule(
                ep,
                &g,
                &g,
                Some(Side::new(&b, &sset)),
                &g,
                Some(Side::new(&a, &dset)),
                BuildMethod::Duplication,
            )
            .unwrap();
            assert_eq!(native.sends, mc.sends);
            assert_eq!(native.recvs, mc.recvs);
            assert_eq!(native.local_pairs, mc.local_pairs);
        });
    }

    #[test]
    fn reuse_native_schedule() {
        let world = World::with_model(2, MachineModel::zero());
        world.run(|ep| {
            let g = Group::world(ep.world_size());
            let mut b = MultiblockArray::<f64>::new(&g, ep.rank(), &[8, 8]);
            let mut a = MultiblockArray::<f64>::new(&g, ep.rank(), &[8, 8]);
            let sec = RegularSection::of_bounds(&[(0, 8), (0, 8)]);
            let sched = build_copy_schedule(ep, &g, &b, &sec, &a, &sec);
            for round in 0..3 {
                b.fill_with(|c| (c[0] + c[1] + round) as f64);
                parti_copy(ep, &sched, &b, &mut a);
                let boxx = a.my_box();
                for i in boxx[0].0..boxx[0].1 {
                    for j in boxx[1].0..boxx[1].1 {
                        assert_eq!(a.get(&[i, j]), (i + j + round) as f64);
                    }
                }
            }
        });
    }

    #[test]
    fn parti_local_copy_costs_more_than_meta_chaos() {
        // Single rank: the whole copy is local.  Parti stages through a
        // buffer; Meta-Chaos copies directly — so Parti's virtual time for
        // the copy must be strictly larger (§5.3).
        let world = World::with_model(1, MachineModel::sp2());
        let out = world.run(|ep| {
            let g = Group::world(1);
            let mut b = MultiblockArray::<f64>::new(&g, ep.rank(), &[64, 64]);
            b.fill_with(|c| c[0] as f64);
            let mut a = MultiblockArray::<f64>::new(&g, ep.rank(), &[64, 64]);
            let sec = RegularSection::of_bounds(&[(0, 64), (0, 64)]);
            let native = build_copy_schedule(ep, &g, &b, &sec, &a, &sec);
            let t0 = ep.clock();
            parti_copy(ep, &native, &b, &mut a);
            let parti_time = ep.clock() - t0;

            let sset = SetOfRegions::single(sec.clone());
            let dset = SetOfRegions::single(sec.clone());
            let mc = compute_schedule(
                ep,
                &g,
                &g,
                Some(Side::new(&b, &sset)),
                &g,
                Some(Side::new(&a, &dset)),
                BuildMethod::Duplication,
            )
            .unwrap();
            let t1 = ep.clock();
            meta_chaos::datamove::data_move(ep, &mc, &b, &mut a);
            let mc_time = ep.clock() - t1;
            (parti_time, mc_time)
        });
        let (parti_time, mc_time) = out.results[0];
        assert!(
            parti_time > mc_time,
            "parti {parti_time} should exceed meta-chaos {mc_time}"
        );
    }
}
