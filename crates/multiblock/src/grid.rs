//! Processor grids: mapping program-local ranks onto an n-dimensional grid.

/// An n-dimensional arrangement of `P` processors (row-major rank order,
/// last dimension fastest — matching the array layout convention).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcGrid {
    dims: Vec<usize>,
}

impl ProcGrid {
    /// Build from explicit extents.
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(!dims.is_empty(), "grid needs at least one dimension");
        assert!(dims.iter().all(|&d| d > 0), "grid extents must be positive");
        ProcGrid { dims }
    }

    /// Factor `p` processors into an `ndim` grid as close to cubic as
    /// possible (e.g. 12 → 4×3, 16 → 4×4, 8 in 3-D → 2×2×2).
    pub fn factor(p: usize, ndim: usize) -> Self {
        assert!(p > 0 && ndim > 0);
        let mut dims = vec![1; ndim];
        let mut rem = p;
        for (d, slot) in dims.iter_mut().enumerate() {
            let dims_left = ndim - d;
            if dims_left == 1 {
                *slot = rem;
                break;
            }
            // Smallest divisor of `rem` that is >= ceil(rem^(1/dims_left)):
            // keeps extents non-increasing and as balanced as the divisor
            // structure of `rem` allows (same rule as MPI_Dims_create).
            let ideal = (rem as f64).powf(1.0 / dims_left as f64).ceil() as usize;
            let mut f = ideal.clamp(1, rem);
            while !rem.is_multiple_of(f) {
                f += 1;
            }
            *slot = f;
            rem /= f;
        }
        debug_assert_eq!(dims.iter().product::<usize>(), p);
        ProcGrid { dims }
    }

    /// Total processors.
    pub fn size(&self) -> usize {
        self.dims.iter().product()
    }

    /// Dimensionality.
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Per-dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Grid coordinates of program-local rank `rank`.
    pub fn coords_of(&self, mut rank: usize) -> Vec<usize> {
        assert!(rank < self.size(), "rank {rank} outside grid");
        let mut out = vec![0; self.ndim()];
        for d in (0..self.ndim()).rev() {
            out[d] = rank % self.dims[d];
            rank /= self.dims[d];
        }
        out
    }

    /// Program-local rank of grid coordinates `coords`.
    pub fn rank_of(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.ndim());
        let mut r = 0;
        for (d, &c) in coords.iter().enumerate() {
            assert!(c < self.dims[d], "coord {c} outside grid dim {d}");
            r = r * self.dims[d] + c;
        }
        r
    }

    /// The neighbouring rank one step along `dim` in direction `dir`
    /// (−1 or +1), or `None` at the grid edge (non-periodic).
    pub fn neighbor(&self, rank: usize, dim: usize, dir: isize) -> Option<usize> {
        let mut c = self.coords_of(rank);
        let x = c[dim] as isize + dir;
        if x < 0 || x as usize >= self.dims[dim] {
            return None;
        }
        c[dim] = x as usize;
        Some(self.rank_of(&c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_products_are_exact() {
        for p in 1..=32 {
            for ndim in 1..=3 {
                let g = ProcGrid::factor(p, ndim);
                assert_eq!(g.size(), p, "p={p} ndim={ndim} dims={:?}", g.dims());
                assert_eq!(g.ndim(), ndim);
            }
        }
    }

    #[test]
    fn factor_is_nearly_square() {
        assert_eq!(ProcGrid::factor(16, 2).dims(), &[4, 4]);
        assert_eq!(ProcGrid::factor(12, 2).dims(), &[4, 3]);
        assert_eq!(ProcGrid::factor(8, 3).dims(), &[2, 2, 2]);
        assert_eq!(ProcGrid::factor(2, 2).dims(), &[2, 1]);
        assert_eq!(ProcGrid::factor(7, 2).dims(), &[7, 1]);
    }

    #[test]
    fn coords_roundtrip() {
        let g = ProcGrid::new(vec![3, 4]);
        for r in 0..12 {
            assert_eq!(g.rank_of(&g.coords_of(r)), r);
        }
        assert_eq!(g.coords_of(0), vec![0, 0]);
        assert_eq!(g.coords_of(1), vec![0, 1]); // last dim fastest
        assert_eq!(g.coords_of(4), vec![1, 0]);
    }

    #[test]
    fn neighbors_respect_edges() {
        let g = ProcGrid::new(vec![2, 2]);
        // rank 0 = (0,0)
        assert_eq!(g.neighbor(0, 0, 1), Some(2));
        assert_eq!(g.neighbor(0, 0, -1), None);
        assert_eq!(g.neighbor(0, 1, 1), Some(1));
        assert_eq!(g.neighbor(3, 1, 1), None);
        assert_eq!(g.neighbor(3, 0, -1), Some(1));
    }
}
