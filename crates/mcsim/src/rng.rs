//! A tiny deterministic PRNG so the workspace needs no external `rand`.
//!
//! [`Rng`] is SplitMix64 (Steele, Lea & Flood 2014): one 64-bit state word,
//! a Weyl increment and two xor-shift-multiply mixes per output.  It passes
//! BigCrush, is trivially seedable, and — most important here — produces the
//! same stream on every platform, which keeps partitions, meshes and the
//! seeded test loops reproducible.

/// SplitMix64 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator seeded with `seed` (any value, including 0, is fine).
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.  `bound` must be non-zero.
    ///
    /// Uses the widening-multiply technique (Lemire 2019) with a rejection
    /// loop, so the distribution is exactly uniform.
    pub fn gen_range(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_range bound must be positive");
        let bound = bound as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= lo.wrapping_neg() % bound {
                return (m >> 64) as usize;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle of `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 1234567, from the reference SplitMix64.
        let mut r = Rng::seed_from_u64(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut r = Rng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(99);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seed 99 should not yield identity");
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
