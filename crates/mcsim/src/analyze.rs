//! Causal critical-path analysis over traced runs.
//!
//! PR 4 gave runs raw spans and counters; this module turns them into
//! answers.  From the per-rank [`TraceEvent`] timelines of a traced run
//! it reconstructs a cross-rank happens-before DAG — program order
//! within a rank, send→recv edges matched exactly by reconstructed
//! frame sequence numbers (robust to drops, duplicates, corruption and
//! retransmission), window-stall edges (a `WindowStall` resolves at the
//! next `WindowAdvance` on the same stream), and recovery edges
//! (`LeaseExpired` → `Recovered`) — and walks the **critical path** of
//! each coupled transfer backward on the virtual clock, attributing
//! every second of it to a fixed phase taxonomy:
//!
//! > `inspect / manifest / pack / wire / window_stall / retransmit /
//! > stage / commit / recovery / other`
//!
//! The walk tiles the interval `[path start, transfer end]` with
//! contiguous segments (a local segment labelled by the innermost open
//! span, a wire segment per cross-rank hop, a stall or recovery
//! segment per overlay interval), so per-phase attributions sum to the
//! end-to-end virtual time *by construction* — the only slack is
//! floating-point association, checked by
//! [`CriticalPathReport::self_check`] at a 1 ns tolerance.
//!
//! ## Send→recv matching
//!
//! Every physical copy the fault injector emits records its own `Send`
//! event, preceded by the `Fault` events that describe what happened to
//! it (dup/drop/corrupt/delay), and every retransmission is announced
//! by a `Retransmit` event naming its frame sequence number.  Walking a
//! sender timeline in order therefore reconstructs, per `(peer, tag)`
//! stream, each copy's sequence number and whether it was destroyed in
//! flight.  The reliable layer delivers frames strictly in sequence
//! order and FIFO channels deliver copies in send order, so the k-th
//! `Recv` on a stream corresponds to the first surviving copy with
//! sequence number k — an exact match even under dup/drop/retransmit
//! fault plans.  Streams the analyzer cannot pin down (e.g. across an
//! incarnation purge after a crash recovery) degrade gracefully: the
//! receive wait is attributed to `wire` on the waiting rank instead of
//! hopping to the sender.

use std::collections::{BTreeMap, HashMap};

use crate::metrics::Histogram;
use crate::model::{LinkId, MachineModel, Topology};
use crate::span::{pair_spans, PairedSpan, Phase};
use crate::trace::{FaultKind, TraceEvent};

/// The attribution taxonomy, in report order.  `other` is local compute
/// inside a transfer that no sub-span claims (scheduling, bookkeeping).
pub const TAXONOMY: [&str; 10] = [
    "inspect",
    "manifest",
    "pack",
    "wire",
    "window_stall",
    "retransmit",
    "stage",
    "commit",
    "recovery",
    "other",
];

/// Map a span phase onto its attribution bucket.
fn bucket_of(phase: Phase) -> &'static str {
    match phase {
        Phase::Inspect => "inspect",
        Phase::Manifest => "manifest",
        Phase::Pack => "pack",
        Phase::Wire => "wire",
        Phase::Stage => "stage",
        Phase::Commit => "commit",
        // Abort processing is failure handling, bucketed with recovery.
        Phase::Abort => "recovery",
        Phase::Transfer => "other",
    }
}

/// Association slack allowed between a tiled attribution sum and the
/// end-to-end difference it telescopes to (seconds, on second-scale
/// clocks).
pub const SUM_TOLERANCE: f64 = 1e-9;

/// The matched sender of one received message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SendInfo {
    /// Sender's global rank.
    pub rank: usize,
    /// Virtual time of the matched physical copy's send.
    pub at: f64,
    /// Its arrival stamp at the receiver.
    pub arrival: f64,
    /// Transmission attempt (0 = original, ≥1 = retransmission).
    pub attempt: u32,
}

/// One `Recv` event with its matched sender (if the stream could be
/// reconstructed).
#[derive(Debug, Clone, PartialEq)]
pub struct RecvMatch {
    /// Virtual time the receive completed.
    pub at: f64,
    /// Virtual time the receiver's clock waited on the arrival.
    pub waited: f64,
    /// Source global rank.
    pub from: usize,
    /// Raw tag bits of the stream.
    pub tag: u64,
    /// Payload bytes.
    pub bytes: usize,
    /// The physical copy this receive consumed, when matched.
    pub send: Option<SendInfo>,
}

/// One physical send copy on a `(sender, peer, tag)` stream.
#[derive(Debug, Clone, Copy)]
struct SendCopy {
    at: f64,
    arrival: f64,
    seq: u64,
    attempt: u32,
    /// Destroyed in flight (dropped tombstone or corrupted payload):
    /// can never be the copy a receive consumed.
    lost: bool,
    matched: bool,
}

type StreamKey = (usize, usize, u64); // (sender rank, receiver rank, tag bits)

/// Match every `Recv` in the timelines to the physical `Send` copy it
/// consumed.  Returns, per rank, the receives in timeline order.
pub fn match_sends(traces: &[Vec<TraceEvent>]) -> Vec<Vec<RecvMatch>> {
    let mut streams: HashMap<StreamKey, Vec<SendCopy>> = HashMap::new();
    for (rank, tl) in traces.iter().enumerate() {
        // Per-stream sequence reconstruction state.
        let mut next_seq: HashMap<(usize, u64), u64> = HashMap::new();
        let mut pending_faults: HashMap<(usize, u64), Vec<FaultKind>> = HashMap::new();
        let mut pending_retx: HashMap<(usize, u64), (u64, u32)> = HashMap::new();
        let mut last_seq: HashMap<(usize, u64), (u64, u32)> = HashMap::new();
        for ev in tl {
            match ev {
                TraceEvent::Fault { kind, to, tag, .. } => {
                    pending_faults.entry((*to, tag.0)).or_default().push(*kind);
                }
                TraceEvent::Retransmit {
                    to,
                    tag,
                    seq,
                    attempt,
                    ..
                } => {
                    pending_retx.insert((*to, tag.0), (*seq, *attempt));
                }
                TraceEvent::Send {
                    at,
                    to,
                    tag,
                    arrival,
                    ..
                } => {
                    let key = (*to, tag.0);
                    let faults = pending_faults.remove(&key).unwrap_or_default();
                    let dup = faults.contains(&FaultKind::Duplicate);
                    let lost =
                        faults.contains(&FaultKind::Drop) || faults.contains(&FaultKind::Corrupt);
                    let (seq, attempt) = if dup {
                        // An injected duplicate repeats the previous
                        // copy's frame verbatim.
                        last_seq.get(&key).copied().unwrap_or((0, 0))
                    } else if let Some(sa) = pending_retx.remove(&key) {
                        sa
                    } else {
                        let s = next_seq.entry(key).or_insert(0);
                        let cur = *s;
                        *s += 1;
                        (cur, 0)
                    };
                    last_seq.insert(key, (seq, attempt));
                    streams
                        .entry((rank, *to, tag.0))
                        .or_default()
                        .push(SendCopy {
                            at: *at,
                            arrival: *arrival,
                            seq,
                            attempt,
                            lost,
                            matched: false,
                        });
                }
                _ => {}
            }
        }
    }
    let mut out: Vec<Vec<RecvMatch>> = Vec::with_capacity(traces.len());
    for (rank, tl) in traces.iter().enumerate() {
        let mut recvs = Vec::new();
        // The k-th delivered message on a stream carries sequence k.
        let mut delivered: HashMap<(usize, u64), u64> = HashMap::new();
        for ev in tl {
            if let TraceEvent::Recv {
                at,
                from,
                tag,
                bytes,
                waited,
            } = ev
            {
                let k = delivered.entry((*from, tag.0)).or_insert(0);
                let seq = *k;
                *k += 1;
                let send = streams.get_mut(&(*from, rank, tag.0)).and_then(|copies| {
                    let c = copies.iter_mut().find(|c| {
                        c.seq == seq && !c.lost && !c.matched && c.arrival <= at + 1e-12
                    })?;
                    c.matched = true;
                    Some(SendInfo {
                        rank: *from,
                        at: c.at,
                        arrival: c.arrival,
                        attempt: c.attempt,
                    })
                });
                recvs.push(RecvMatch {
                    at: *at,
                    waited: *waited,
                    from: *from,
                    tag: tag.0,
                    bytes: *bytes,
                    send,
                });
            }
        }
        out.push(recvs);
    }
    out
}

/// A window-stall or recovery overlay interval on one rank.
#[derive(Debug, Clone, Copy)]
struct Overlay {
    begin: f64,
    end: f64,
    label: &'static str,
}

/// Everything the backward walk needs about one rank.
struct RankData {
    spans: Vec<PairedSpan>,
    recvs: Vec<RecvMatch>,
    overlays: Vec<Overlay>,
}

fn overlays_of(tl: &[TraceEvent]) -> Vec<Overlay> {
    let mut out = Vec::new();
    // Window stalls: a stall resolves at the first window advance on the
    // same stream after it began; residual multi-advance stall time
    // stays with the enclosing (wire) span.
    let mut advances: HashMap<(usize, u64), Vec<f64>> = HashMap::new();
    let mut retx_at: HashMap<(usize, u64), Vec<f64>> = HashMap::new();
    for ev in tl {
        match ev {
            TraceEvent::WindowAdvance { at, to, tag, .. } => {
                advances.entry((*to, tag.0)).or_default().push(*at);
            }
            TraceEvent::Retransmit { at, to, tag, .. } => {
                retx_at.entry((*to, tag.0)).or_default().push(*at);
            }
            _ => {}
        }
    }
    for ev in tl {
        if let TraceEvent::WindowStall { at, to, tag, .. } = ev {
            let key = (*to, tag.0);
            let end = advances
                .get(&key)
                .and_then(|v| v.iter().copied().find(|&a| a > *at))
                .unwrap_or(*at);
            if end > *at {
                let retransmitting = retx_at
                    .get(&key)
                    .is_some_and(|v| v.iter().any(|&r| r >= *at && r <= end));
                out.push(Overlay {
                    begin: *at,
                    end,
                    label: if retransmitting {
                        "retransmit"
                    } else {
                        "window_stall"
                    },
                });
            }
        }
    }
    // Recovery: an eviction wait runs from the lease expiry to the next
    // recovery (or replay) observation on this rank.
    let last_at = tl.last().map_or(0.0, |e| e.at());
    for (i, ev) in tl.iter().enumerate() {
        if let TraceEvent::LeaseExpired { at, .. } = ev {
            let end = tl[i + 1..]
                .iter()
                .find_map(|e| match e {
                    TraceEvent::Recovered { at, .. } | TraceEvent::PartReplayed { at, .. } => {
                        Some(*at)
                    }
                    _ => None,
                })
                .unwrap_or(last_at);
            if end > *at {
                out.push(Overlay {
                    begin: *at,
                    end,
                    label: "recovery",
                });
            }
        }
    }
    out
}

/// Innermost-span attribution of a purely local interval `[x, y]` on
/// one rank, with stall/recovery overlays taking precedence.
fn attribute_local(
    rd: &RankData,
    x: f64,
    y: f64,
    phases: &mut BTreeMap<&'static str, f64>,
    segments: &mut usize,
) {
    if y <= x {
        return;
    }
    let mut cuts: Vec<f64> = vec![x, y];
    for s in &rd.spans {
        for t in [s.begin, s.end] {
            if t > x && t < y {
                cuts.push(t);
            }
        }
    }
    for o in &rd.overlays {
        for t in [o.begin, o.end] {
            if t > x && t < y {
                cuts.push(t);
            }
        }
    }
    cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite virtual times"));
    cuts.dedup();
    for w in cuts.windows(2) {
        let (a, b) = (w[0], w[1]);
        if b <= a {
            continue;
        }
        let mid = 0.5 * (a + b);
        let label = rd
            .overlays
            .iter()
            .find(|o| o.begin <= mid && mid < o.end)
            .map(|o| o.label)
            .unwrap_or_else(|| {
                // Innermost open span: proper nesting makes it the one
                // with the latest begin among those containing `mid`.
                rd.spans
                    .iter()
                    .filter(|s| s.begin <= mid && mid < s.end)
                    .max_by(|p, q| p.begin.partial_cmp(&q.begin).expect("finite"))
                    .map(|s| bucket_of(s.phase))
                    .unwrap_or("other")
            });
        *phases.entry(label).or_insert(0.0) += b - a;
        *segments += 1;
    }
}

/// Critical path of one coupled transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferPath {
    /// Schedule sequence number parsed from the transfer span detail
    /// (`u64::MAX` when the span carried none).
    pub seq: u64,
    /// Which repetition of this sequence number (0-based) — repeated
    /// moves over one schedule are distinct transfers.
    pub occurrence: usize,
    /// Earliest participant transfer-span begin.
    pub span_begin: f64,
    /// Where the backward walk bottomed out (the causal start).
    pub start: f64,
    /// Latest participant transfer-span end.
    pub end: f64,
    /// Rank whose span ends last (the walk's origin).
    pub end_rank: usize,
    /// Rank the walk bottomed out on.
    pub start_rank: usize,
    /// Cross-rank hops the critical path took.
    pub hops: usize,
    /// Contiguous segments the path was tiled into.
    pub segments: usize,
    /// Seconds of critical-path time per taxonomy bucket.
    pub phases: BTreeMap<&'static str, f64>,
}

impl TransferPath {
    /// End-to-end critical-path time (virtual seconds).
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Sum of the per-phase attributions — equal to [`Self::duration`]
    /// up to floating-point association.
    pub fn attributed(&self) -> f64 {
        self.phases.values().sum()
    }

    /// The phase holding the largest share, with its fraction of the
    /// end-to-end time.
    pub fn dominant(&self) -> Option<(&'static str, f64)> {
        let total = self.attributed();
        if total <= 0.0 {
            return None;
        }
        self.phases
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(k, v)| (*k, v / total))
    }
}

/// Critical-path analysis of a whole traced run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CriticalPathReport {
    /// One entry per coupled transfer, in `(seq, occurrence)` order.
    pub transfers: Vec<TransferPath>,
    /// Critical-path wire + retransmit seconds per `(src, dst)` link.
    pub per_link: BTreeMap<(usize, usize), f64>,
    /// Total `Recv` events seen across all ranks.
    pub recvs: usize,
    /// Receives whose sending copy could not be pinned down.
    pub unmatched_recvs: usize,
}

impl CriticalPathReport {
    /// Total critical-path seconds per taxonomy bucket, summed over
    /// transfers.
    pub fn phase_totals(&self) -> BTreeMap<&'static str, f64> {
        let mut out = BTreeMap::new();
        for t in &self.transfers {
            for (k, v) in &t.phases {
                *out.entry(*k).or_insert(0.0) += v;
            }
        }
        out
    }

    /// Per-phase share of the summed end-to-end time, in `[0, 1]`.
    pub fn phase_shares(&self) -> BTreeMap<&'static str, f64> {
        let total: f64 = self.transfers.iter().map(|t| t.duration()).sum();
        let mut out = BTreeMap::new();
        if total <= 0.0 {
            return out;
        }
        for (k, v) in self.phase_totals() {
            out.insert(k, v / total);
        }
        out
    }

    /// The dominant bottleneck across all transfers.
    pub fn dominant(&self) -> Option<(&'static str, f64)> {
        let shares = self.phase_shares();
        shares
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
    }

    /// Histogram of per-transfer end-to-end latency (virtual seconds);
    /// quantiles come from [`Histogram::quantile`].
    pub fn latency_histogram(&self) -> Histogram {
        let mut h = Histogram::default();
        for t in &self.transfers {
            h.record(t.duration());
        }
        h
    }

    /// Verify the tiling invariants: every transfer's per-phase
    /// attribution sums to its end-to-end virtual time (within
    /// [`SUM_TOLERANCE`] of association slack), the path is monotone
    /// (`start ≤ end`), and no bucket is negative.
    pub fn self_check(&self) -> Result<(), String> {
        for t in &self.transfers {
            // NaN must fail too, so compare for the failing case directly.
            if t.start > t.end || t.start.is_nan() || t.end.is_nan() {
                return Err(format!(
                    "transfer seq={} occ={}: path not monotone ({} > {})",
                    t.seq, t.occurrence, t.start, t.end
                ));
            }
            for (k, v) in &t.phases {
                if !v.is_finite() || *v < 0.0 {
                    return Err(format!(
                        "transfer seq={} occ={}: negative/non-finite {k} attribution {v}",
                        t.seq, t.occurrence
                    ));
                }
            }
            let residual = (t.attributed() - t.duration()).abs();
            let tol = SUM_TOLERANCE * t.duration().abs().max(1.0);
            if residual > tol {
                return Err(format!(
                    "transfer seq={} occ={}: attribution sum {} != end-to-end {} (residual {residual:e})",
                    t.seq, t.occurrence,
                    t.attributed(),
                    t.duration()
                ));
            }
        }
        Ok(())
    }

    /// One-paragraph human summary — what post-mortems embed.
    pub fn render(&self) -> String {
        if self.transfers.is_empty() {
            return "critical path: no transfer spans in trace".to_string();
        }
        let total: f64 = self.transfers.iter().map(|t| t.duration()).sum();
        let (dom, dom_share) = self.dominant().unwrap_or(("other", 0.0));
        let h = self.latency_histogram();
        let shares = self.phase_shares();
        let mut parts = Vec::new();
        for name in TAXONOMY {
            let s = shares.get(name).copied().unwrap_or(0.0);
            if s > 0.0005 {
                parts.push(format!("{name} {:.1}%", s * 100.0));
            }
        }
        let attribution = match self.self_check() {
            Ok(()) => "attribution=ok".to_string(),
            Err(e) => format!("attribution=BROKEN ({e})"),
        };
        format!(
            "critical path: {} transfer(s), end-to-end {:.6}s total, dominant bottleneck \
             {dom} ({:.1}% of critical-path time); shares: {}; per-transfer latency \
             p50 {:.6}s p95 {:.6}s p99 {:.6}s max {:.6}s; {}/{} recvs matched; {attribution}",
            self.transfers.len(),
            total,
            dom_share * 100.0,
            parts.join(", "),
            h.quantile(0.50),
            h.quantile(0.95),
            h.quantile(0.99),
            h.max,
            self.recvs - self.unmatched_recvs,
            self.recvs,
        )
    }
}

/// Parse `seq=N` out of a span detail string.
fn parse_seq(detail: &str) -> Option<u64> {
    let rest = detail.split("seq=").nth(1)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One participant's transfer span.
struct Participant {
    rank: usize,
    begin: f64,
    end: f64,
}

/// Reconstruct the happens-before DAG from per-rank timelines and walk
/// each coupled transfer's critical path backward on the virtual clock.
pub fn analyze(traces: &[Vec<TraceEvent>]) -> CriticalPathReport {
    let matches = match_sends(traces);
    let recvs_total: usize = matches.iter().map(|m| m.len()).sum();
    let unmatched: usize = matches
        .iter()
        .flatten()
        .filter(|m| m.send.is_none())
        .count();
    let ranks: Vec<RankData> = traces
        .iter()
        .zip(matches)
        .map(|(tl, recvs)| RankData {
            spans: pair_spans(tl),
            recvs,
            overlays: overlays_of(tl),
        })
        .collect();

    // Group transfer spans into cross-rank transfers keyed by
    // (seq, occurrence-of-that-seq-on-the-rank).
    let mut groups: BTreeMap<(u64, usize), Vec<Participant>> = BTreeMap::new();
    for (rank, rd) in ranks.iter().enumerate() {
        let mut occ: HashMap<u64, usize> = HashMap::new();
        for s in &rd.spans {
            if s.phase != Phase::Transfer {
                continue;
            }
            let seq = parse_seq(&s.detail).unwrap_or(u64::MAX);
            let k = occ.entry(seq).or_insert(0);
            groups.entry((seq, *k)).or_default().push(Participant {
                rank,
                begin: s.begin,
                end: s.end,
            });
            *k += 1;
        }
    }

    let mut report = CriticalPathReport {
        recvs: recvs_total,
        unmatched_recvs: unmatched,
        ..CriticalPathReport::default()
    };

    for ((seq, occurrence), parts) in groups {
        let span_begin = parts.iter().map(|p| p.begin).fold(f64::INFINITY, f64::min);
        let (end, end_rank) =
            parts
                .iter()
                .map(|p| (p.end, p.rank))
                .fold(
                    (f64::NEG_INFINITY, 0),
                    |acc, x| {
                        if x.0 > acc.0 {
                            x
                        } else {
                            acc
                        }
                    },
                );
        let floor_of = |rank: usize| -> f64 {
            parts
                .iter()
                .find(|p| p.rank == rank)
                .map(|p| p.begin)
                .unwrap_or(span_begin)
        };

        let mut phases: BTreeMap<&'static str, f64> = BTreeMap::new();
        let mut segments = 0usize;
        let mut hops = 0usize;
        let mut t = end;
        let mut r = end_rank;
        // Per-rank high-water pointer into the (time-ordered) recv list:
        // each receive is consumed at most once, bounding the walk.
        let mut ptr: HashMap<usize, usize> = HashMap::new();
        loop {
            let floor = floor_of(r).min(t);
            let hi = *ptr.entry(r).or_insert(ranks[r].recvs.len());
            let pick = ranks[r].recvs[..hi]
                .iter()
                .enumerate()
                .rev()
                .find(|(_, m)| m.waited > 0.0 && m.at <= t && m.at > floor);
            let Some((idx, m)) = pick else {
                attribute_local(&ranks[r], floor, t, &mut phases, &mut segments);
                t = floor;
                break;
            };
            let m = m.clone();
            ptr.insert(r, idx);
            // Local compute after the receive completed.
            attribute_local(&ranks[r], m.at, t, &mut phases, &mut segments);
            let wait_start = (m.at - m.waited).max(floor);
            let wire_label = match &m.send {
                Some(s) if s.attempt > 0 => "retransmit",
                _ => "wire",
            };
            match m.send {
                Some(s) if s.at > wait_start && s.at < m.at => {
                    // The sender was the bottleneck: hop across the
                    // flight edge and continue on its timeline.
                    *phases.entry(wire_label).or_insert(0.0) += m.at - s.at;
                    *report.per_link.entry((s.rank, r)).or_insert(0.0) += m.at - s.at;
                    segments += 1;
                    hops += 1;
                    t = s.at;
                    r = s.rank;
                }
                _ => {
                    // The message was already (or unknowably) in flight
                    // when this rank started waiting: the residual wait
                    // is wire time and the path stays on this rank.
                    *phases.entry(wire_label).or_insert(0.0) += m.at - wait_start;
                    *report.per_link.entry((m.from, r)).or_insert(0.0) += m.at - wait_start;
                    segments += 1;
                    t = wait_start;
                }
            }
            if t <= span_begin && floor_of(r).min(t) >= t {
                // Bottomed out exactly on a span boundary.
                break;
            }
        }
        report.transfers.push(TransferPath {
            seq,
            occurrence,
            span_begin,
            start: t,
            end,
            end_rank,
            start_rank: r,
            hops,
            segments,
            phases,
        });
    }
    report
}

/// Load on one directed physical link of a [`Topology`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkLoad {
    /// Messages that crossed the link.
    pub msgs: u64,
    /// Payload bytes serialized through it.
    pub bytes: u64,
    /// Seconds the link spent serializing those bytes
    /// (`bytes * byte_wire_cost`).
    pub wire_secs: f64,
}

/// Fold every traced `Send` onto the physical links its route crossed,
/// producing the per-link load table of the run.  Self-sends and
/// crossbar worlds contribute nothing (no shared links).  The hottest
/// links are where a topology bottlenecks — compare against the same
/// traffic on [`Topology::Crossbar`] to see what the interconnect
/// shape costs.
pub fn attribute_links(
    traces: &[Vec<TraceEvent>],
    topo: Topology,
    model: &MachineModel,
) -> BTreeMap<LinkId, LinkLoad> {
    let mut out: BTreeMap<LinkId, LinkLoad> = BTreeMap::new();
    for (rank, tl) in traces.iter().enumerate() {
        for e in tl {
            if let TraceEvent::Send { to, bytes, .. } = e {
                for link in topo.route(rank, *to) {
                    let l = out.entry(link).or_default();
                    l.msgs += 1;
                    l.bytes += *bytes as u64;
                    l.wire_secs += *bytes as f64 * model.byte_wire_cost;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanId;
    use crate::tag::Tag;

    fn begin(at: f64, id: u64, parent: Option<u64>, phase: Phase, detail: &str) -> TraceEvent {
        TraceEvent::SpanBegin {
            at,
            id: SpanId(id),
            parent: parent.map(SpanId),
            phase,
            detail: detail.to_string(),
        }
    }

    fn end(at: f64, id: u64) -> TraceEvent {
        TraceEvent::SpanEnd { at, id: SpanId(id) }
    }

    /// Two ranks: sender packs then sends at t=3 (arrival 5); receiver
    /// waits from t=1, recv completes at 5; commits until 6.
    fn two_rank_traces() -> Vec<Vec<TraceEvent>> {
        let tag = Tag::user(9);
        let sender = vec![
            begin(0.0, 1, None, Phase::Transfer, "mode=send seq=1"),
            begin(0.0, 2, Some(1), Phase::Pack, ""),
            end(3.0, 2),
            TraceEvent::Send {
                at: 3.0,
                to: 1,
                tag,
                bytes: 64,
                arrival: 5.0,
            },
            end(3.0, 1),
        ];
        let receiver = vec![
            begin(1.0, 1, None, Phase::Transfer, "mode=recv seq=1"),
            TraceEvent::Recv {
                at: 5.0,
                from: 0,
                tag,
                bytes: 64,
                waited: 4.0,
            },
            begin(5.0, 2, Some(1), Phase::Commit, ""),
            end(6.0, 2),
            end(6.0, 1),
        ];
        vec![sender, receiver]
    }

    #[test]
    fn critical_path_hops_to_the_sender() {
        let report = analyze(&two_rank_traces());
        assert_eq!(report.transfers.len(), 1);
        let t = &report.transfers[0];
        assert_eq!(t.seq, 1);
        assert_eq!(t.end_rank, 1);
        assert_eq!(t.start_rank, 0);
        assert_eq!(t.hops, 1);
        // Path: commit [5,6] on rank 1, wire [3,5], pack [0,3] on rank 0.
        assert!((t.phases["commit"] - 1.0).abs() < 1e-12);
        assert!((t.phases["wire"] - 2.0).abs() < 1e-12);
        assert!((t.phases["pack"] - 3.0).abs() < 1e-12);
        assert_eq!(t.start, 0.0);
        assert_eq!(t.end, 6.0);
        report.self_check().expect("tiling holds");
        assert!((report.per_link[&(0, 1)] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn early_send_keeps_path_on_receiver() {
        // Sender posts at t=0 (arrival 2); the receiver only starts
        // waiting at t=3 after local stage work — the receiver is the
        // bottleneck and its own phases own the path.
        let tag = Tag::user(9);
        let traces = vec![
            vec![
                begin(0.0, 1, None, Phase::Transfer, "mode=send seq=2"),
                TraceEvent::Send {
                    at: 0.0,
                    to: 1,
                    tag,
                    bytes: 8,
                    arrival: 2.0,
                },
                end(0.5, 1),
            ],
            vec![
                begin(0.0, 1, None, Phase::Transfer, "mode=recv seq=2"),
                begin(0.0, 2, Some(1), Phase::Stage, ""),
                end(3.0, 2),
                TraceEvent::Recv {
                    at: 3.0,
                    from: 0,
                    tag,
                    bytes: 8,
                    waited: 0.0,
                },
                begin(3.0, 3, Some(1), Phase::Commit, ""),
                end(4.0, 3),
                end(4.0, 1),
            ],
        ];
        let report = analyze(&traces);
        let t = &report.transfers[0];
        assert_eq!(t.hops, 0);
        assert!((t.phases["stage"] - 3.0).abs() < 1e-12);
        assert!((t.phases["commit"] - 1.0).abs() < 1e-12);
        assert!(!t.phases.contains_key("wire"));
        report.self_check().expect("tiling holds");
    }

    #[test]
    fn matching_skips_dropped_copies_and_retransmits() {
        let tag = Tag::user(3);
        // Copy of seq 0 dropped, then retransmitted; seq 1 clean.
        let sender = vec![
            TraceEvent::Fault {
                at: 1.0,
                kind: FaultKind::Drop,
                to: 1,
                tag,
                bytes: 10,
            },
            TraceEvent::Send {
                at: 1.0,
                to: 1,
                tag,
                bytes: 10,
                arrival: 1.5,
            },
            TraceEvent::Retransmit {
                at: 2.0,
                to: 1,
                tag,
                seq: 0,
                attempt: 1,
            },
            TraceEvent::Send {
                at: 2.0,
                to: 1,
                tag,
                bytes: 10,
                arrival: 2.5,
            },
            TraceEvent::Send {
                at: 3.0,
                to: 1,
                tag,
                bytes: 10,
                arrival: 3.5,
            },
        ];
        let receiver = vec![
            TraceEvent::Recv {
                at: 2.5,
                from: 0,
                tag,
                bytes: 10,
                waited: 2.5,
            },
            TraceEvent::Recv {
                at: 3.5,
                from: 0,
                tag,
                bytes: 10,
                waited: 1.0,
            },
        ];
        let m = match_sends(&[sender, receiver]);
        let r = &m[1];
        assert_eq!(r.len(), 2);
        let s0 = r[0].send.expect("seq 0 matched");
        assert_eq!(
            s0.attempt, 1,
            "must match the retransmission, not the tombstone"
        );
        assert_eq!(s0.at, 2.0);
        let s1 = r[1].send.expect("seq 1 matched");
        assert_eq!(s1.attempt, 0);
        assert_eq!(s1.at, 3.0);
    }

    #[test]
    fn matching_dedupes_injected_duplicates() {
        let tag = Tag::user(3);
        let sender = vec![
            TraceEvent::Send {
                at: 1.0,
                to: 1,
                tag,
                bytes: 10,
                arrival: 1.5,
            },
            TraceEvent::Fault {
                at: 1.0,
                kind: FaultKind::Duplicate,
                to: 1,
                tag,
                bytes: 10,
            },
            TraceEvent::Send {
                at: 1.0,
                to: 1,
                tag,
                bytes: 10,
                arrival: 1.5,
            },
            TraceEvent::Send {
                at: 2.0,
                to: 1,
                tag,
                bytes: 10,
                arrival: 2.5,
            },
        ];
        let receiver = vec![
            TraceEvent::Recv {
                at: 1.5,
                from: 0,
                tag,
                bytes: 10,
                waited: 1.5,
            },
            TraceEvent::Recv {
                at: 2.5,
                from: 0,
                tag,
                bytes: 10,
                waited: 1.0,
            },
        ];
        let m = match_sends(&[sender, receiver]);
        let r = &m[1];
        // The second Recv is seq 1 and must match the t=2 send, not the
        // leftover duplicate copy of seq 0.
        assert_eq!(r[1].send.expect("matched").at, 2.0);
    }

    #[test]
    fn window_stall_overlay_relabels_wire_time() {
        let tag = Tag::user(5);
        let traces = vec![vec![
            begin(0.0, 1, None, Phase::Transfer, "mode=send seq=4"),
            begin(0.0, 2, Some(1), Phase::Wire, ""),
            TraceEvent::WindowStall {
                at: 1.0,
                to: 1,
                tag,
                inflight: 64,
                bytes: 1 << 20,
            },
            TraceEvent::WindowAdvance {
                at: 3.0,
                to: 1,
                tag,
                acked: 7,
                inflight: 0,
            },
            end(4.0, 2),
            end(4.0, 1),
        ]];
        let report = analyze(&traces);
        let t = &report.transfers[0];
        assert!((t.phases["window_stall"] - 2.0).abs() < 1e-12);
        assert!((t.phases["wire"] - 2.0).abs() < 1e-12);
        report.self_check().expect("tiling holds");
    }

    #[test]
    fn empty_trace_renders_gracefully() {
        let report = analyze(&[]);
        assert!(report.transfers.is_empty());
        assert!(report.self_check().is_ok());
        assert!(report.render().contains("no transfer spans"));
        assert!(report.dominant().is_none());
    }

    #[test]
    fn seq_parses_from_detail() {
        assert_eq!(parse_seq("mode=send seq=12 te=3"), Some(12));
        assert_eq!(parse_seq("seq=7"), Some(7));
        assert_eq!(parse_seq("pairs=3"), None);
    }
}
