//! # mcsim — a simulated distributed-memory parallel machine
//!
//! The Meta-Chaos paper ran on a 16-node IBM SP2 (MPL) and an 8-node DEC
//! Alpha farm connected by ATM (PVM/UDP).  This crate substitutes those
//! machines with a *simulated* message-passing machine:
//!
//! * every logical processor ("rank") is a cooperatively scheduled green
//!   task, multiplexed M:N over a small worker pool by [`sched`] (a
//!   legacy one-OS-thread-per-rank runner remains for comparison, but the
//!   cooperative runner is the default and the only one that scales to
//!   1024-rank worlds),
//! * ranks exchange real byte messages through channels (so data motion is
//!   bit-exact and testable),
//! * each rank carries a deterministic **virtual clock**: sends, receives and
//!   modeled computation charge time according to a configurable
//!   [`MachineModel`] (message latency, per-byte wire cost, per-message CPU
//!   overheads, per-element compute costs).
//!
//! Because all receives name their source and tag, virtual time is a pure
//! function of the program and the model — independent of host scheduling and
//! host core count.  Reported times are *simulated seconds*, which is what
//! the reproduction harness prints.
//!
//! ## Layers
//!
//! * [`world`] — spawns a world of ranks and runs an SPMD closure on each.
//! * [`endpoint`] — per-rank handle: point-to-point `send`/`recv`, the
//!   virtual clock, and compute charging.
//! * [`group`] / [`collectives`] — communicators over rank subsets with
//!   barrier, broadcast, gather, allgather, reductions and alltoallv, all
//!   built on the point-to-point layer (so their cost is modeled faithfully).
//! * [`wire`] — a tiny self-describing codec for typed messages.
//! * [`stats`] — per-pair message and byte counters, used by tests to assert
//!   the paper's claim that Meta-Chaos sends exactly the hand-coded number
//!   of messages.
//!
//! ## Example
//!
//! ```
//! use mcsim::prelude::*;
//!
//! let world = World::new(4);
//! let out = world.run(|ep| {
//!     let mut comm = Comm::world(ep);
//!     let me = comm.rank();
//!     let sum: u64 = comm.allreduce_sum(me as u64);
//!     sum
//! });
//! assert!(out.results.iter().all(|&s| s == 0 + 1 + 2 + 3));
//! ```

// Indexed loops over multiple parallel arrays are the clearest idiom in
// this numerical code.
#![allow(clippy::needless_range_loop)]

pub mod analyze;
pub mod collectives;
pub mod endpoint;
pub mod error;
pub mod export;
pub mod fault;
pub mod group;
pub mod message;
pub mod metrics;
pub mod model;
pub mod onesided;
pub mod recovery;
pub mod reliable;
pub mod rng;
pub mod sched;
pub mod span;
pub mod stats;
pub mod tag;
pub mod trace;
pub mod wire;
pub mod world;

pub use analyze::{
    analyze, attribute_links, match_sends, CriticalPathReport, LinkLoad, RecvMatch, SendInfo,
    TransferPath,
};
pub use endpoint::Endpoint;
pub use error::SimError;
pub use export::{chrome_trace_json, jsonl_events, validate_jsonl, TraceCheck};
pub use fault::{test_seed, test_seeds, FaultPlan, FaultRates};
pub use group::{Comm, Group};
pub use message::Rank;
pub use metrics::{Histogram, MetricsRegistry};
pub use model::{MachineModel, NetState, Topology};
pub use onesided::{expose, get, put, put_flush, put_notify, wait_notify, window_bytes};
pub use recovery::{CkptStore, RecoveryConfig};
pub use reliable::{ReliableConfig, StreamTag};
pub use rng::Rng;
pub use span::{pair_spans, FlightRing, PairedSpan, Phase, SpanId, FLIGHT_RING_CAP};
pub use stats::{FaultStats, NetStats, RecoveryStats, SessionStats, StatsSnapshot};
pub use tag::Tag;
pub use trace::{summarize, FaultKind, TraceEvent, TraceSummary};
pub use wire::{Wire, WireReader};
pub use world::{RunOutput, RunReport, Runner, World};

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::endpoint::Endpoint;
    pub use crate::fault::{test_seed, test_seeds, FaultPlan, FaultRates};
    pub use crate::group::{Comm, Group};
    pub use crate::message::Rank;
    pub use crate::metrics::MetricsRegistry;
    pub use crate::model::{MachineModel, Topology};
    pub use crate::onesided::{expose, get, put, put_flush, put_notify, wait_notify, window_bytes};
    pub use crate::recovery::{CkptStore, RecoveryConfig};
    pub use crate::reliable::{ReliableConfig, StreamTag};
    pub use crate::span::{Phase, SpanId};
    pub use crate::tag::Tag;
    pub use crate::wire::{Wire, WireReader};
    pub use crate::world::{RunOutput, RunReport, Runner, World};
}
