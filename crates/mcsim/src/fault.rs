//! Deterministic fault injection for the simulated network.
//!
//! A [`FaultPlan`] attached to a [`crate::world::World`] makes the machine
//! imperfect: messages on selected tag classes are dropped, duplicated,
//! bit-flipped, or extra-delayed with configurable per-link rates, and
//! ranks can be scripted to crash at a virtual time.  Everything is a pure
//! function of the plan's seed:
//!
//! * The fate of a message is drawn from a small PRNG seeded by
//!   `(plan seed, src, dst, tag, per-link message counter)` — never from a
//!   shared sequential stream — so the same program under the same seed
//!   sees the same faults regardless of how the host scheduler interleaves
//!   rank threads.
//! * A *dropped* message is still physically delivered as a
//!   [`crate::message::Body::Dropped`] tombstone carrying only its
//!   envelope.  Loss is therefore an observable event at the receiver,
//!   which lets the reliable layer model timeout-driven retransmission on
//!   the virtual clock without any real timers (see [`crate::reliable`]).
//!
//! By default only the reliable-transport tag classes
//! ([`Tag::CLASS_RELIABLE_DATA`], [`Tag::CLASS_RELIABLE_CTRL`]) are
//! faulted; library-internal traffic (collectives, control), raw tags,
//! and the one-sided control class ([`Tag::CLASS_ONESIDED_CTRL`], pure
//! control plane with no retry protocol of its own) are untouched unless
//! the mask says otherwise.  Control frames are never bit-flipped (they
//! are a few bytes against multi-megabyte payloads; see `DESIGN.md` for
//! the rationale).

use std::collections::HashMap;

use crate::message::Rank;
use crate::rng::Rng;
use crate::tag::Tag;

/// Per-link fault probabilities. All rates are in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRates {
    /// Probability a message copy is destroyed in flight.
    pub drop: f64,
    /// Probability a message is duplicated (a second, independently
    /// faulted copy is sent).
    pub dup: f64,
    /// Probability a surviving data frame has one uniformly chosen bit
    /// flipped.  Never applied to control-class frames.
    pub corrupt: f64,
    /// Probability a message copy is delayed by [`FaultRates::delay_secs`]
    /// of extra virtual wire time.
    pub delay: f64,
    /// Extra virtual latency added to delayed copies, in seconds.
    pub delay_secs: f64,
}

impl FaultRates {
    /// True when every rate is zero (the link is clean).
    pub fn is_quiet(&self) -> bool {
        self.drop == 0.0 && self.dup == 0.0 && self.corrupt == 0.0 && self.delay == 0.0
    }

    /// Random rates drawn from `rng`, each in `[0, cap]`, for generated
    /// fault plans (the fuzz harness).  Delay is kept small relative to
    /// the retry budget so delayed copies stress reordering, not liveness.
    pub fn random(rng: &mut Rng, cap: f64) -> Self {
        let r = |rng: &mut Rng| rng.gen_f64() * cap;
        FaultRates {
            drop: r(rng),
            dup: r(rng),
            corrupt: r(rng),
            delay: r(rng),
            delay_secs: 1e-4 + rng.gen_f64() * 1e-3,
        }
    }
}

/// The seeds the deterministic robustness suites run under: either the
/// single seed in `MC_FAULT_SEED`, or the committed default set.  Shared
/// by tests/fault_matrix.rs, tests/robustness.rs, and the fuzz driver so
/// "re-run under seed N" means the same thing everywhere.
pub fn test_seeds() -> Vec<u64> {
    match std::env::var("MC_FAULT_SEED") {
        Ok(s) => vec![s.parse().expect("MC_FAULT_SEED must be a u64")],
        Err(_) => vec![11, 42, 20260805],
    }
}

/// The first seed from [`test_seeds`] — for suites that derive their own
/// per-case streams from one base seed.
pub fn test_seed() -> u64 {
    test_seeds()[0]
}

/// A deterministic script of network faults and rank crashes.
///
/// Build one with [`FaultPlan::new`] and the chained setters, then attach
/// it via [`crate::world::World::with_faults`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    rates: FaultRates,
    /// `(src filter, dst filter, rates)` — first match wins; `None`
    /// matches any rank.
    links: Vec<(Option<Rank>, Option<Rank>, FaultRates)>,
    class_mask: u32,
    crashes: Vec<(Rank, f64)>,
}

impl FaultPlan {
    /// An empty plan (no faults, no crashes) with the given seed, faulting
    /// the reliable-transport classes when rates are added.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rates: FaultRates::default(),
            links: Vec::new(),
            class_mask: (1 << Tag::CLASS_RELIABLE_DATA) | (1 << Tag::CLASS_RELIABLE_CTRL),
            crashes: Vec::new(),
        }
    }

    /// Set the default rates applied to every faulted link.
    pub fn rates(mut self, rates: FaultRates) -> Self {
        self.rates = rates;
        self
    }

    /// Override rates for messages from `src` to `dst` (`None` = any).
    /// Earlier overrides win.
    pub fn link(mut self, src: Option<Rank>, dst: Option<Rank>, rates: FaultRates) -> Self {
        self.links.push((src, dst, rates));
        self
    }

    /// Replace the faulted tag-class mask (bit `c` set ⇒ user-context tags
    /// of class `c` are faulted).  The default faults only the reliable
    /// transport's classes.
    pub fn classes(mut self, mask: u32) -> Self {
        self.class_mask = mask;
        self
    }

    /// Script `rank` to crash (panic, poisoning its peers) at the first
    /// communication operation at or after virtual time `at`.
    pub fn crash(mut self, rank: Rank, at: f64) -> Self {
        self.crashes.push((rank, at));
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scripted crash time for `rank`, if any (earliest wins).
    pub fn crash_time(&self, rank: Rank) -> Option<f64> {
        self.crashes
            .iter()
            .filter(|(r, _)| *r == rank)
            .map(|(_, t)| *t)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.min(t))))
    }

    /// Effective rates on the `src → dst` link.
    pub fn rates_for(&self, src: Rank, dst: Rank) -> FaultRates {
        for (s, d, r) in &self.links {
            if s.is_none_or(|s| s == src) && d.is_none_or(|d| d == dst) {
                return *r;
            }
        }
        self.rates
    }

    /// Whether messages on `tag` are subject to this plan at all.
    pub fn applies_to(&self, tag: Tag) -> bool {
        tag.ctx() >= Tag::FIRST_USER_CTX && (self.class_mask >> tag.class()) & 1 == 1
    }
}

/// The fate of one physical copy of a message.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CopyFate {
    pub(crate) drop: bool,
    pub(crate) corrupt_bit: Option<usize>,
    pub(crate) extra_delay: f64,
}

/// The injector's decision for one logical send: one copy, or two when the
/// duplication fault fired.
#[derive(Debug, Clone)]
pub(crate) struct FaultDraw {
    pub(crate) copies: Vec<CopyFate>,
}

/// Per-endpoint injection state: the plan plus the per-link message
/// counters that key the deterministic fate draws, and the crash script.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    /// Messages sent so far per `(dst, tag)` — the draw key.
    link_seq: HashMap<(Rank, u64), u64>,
    /// Pending scripted crash time (cleared once fired).
    crash_at: Option<f64>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, rank: Rank) -> Self {
        let crash_at = plan.crash_time(rank);
        FaultState {
            plan,
            link_seq: HashMap::new(),
            crash_at,
        }
    }

    /// Returns the scripted crash time the first time `clock` reaches it.
    pub(crate) fn crash_due(&mut self, clock: f64) -> Option<f64> {
        match self.crash_at {
            Some(t) if clock >= t => {
                self.crash_at = None;
                Some(t)
            }
            _ => None,
        }
    }

    /// Decide the fate of a message about to be sent.  `None` means the
    /// message is untouched (unfaulted class, quiet link, or clean draw).
    pub(crate) fn draw(&mut self, src: Rank, dst: Rank, tag: Tag, len: usize) -> Option<FaultDraw> {
        if !self.plan.applies_to(tag) {
            return None;
        }
        let rates = self.plan.rates_for(src, dst);
        if rates.is_quiet() {
            return None;
        }
        let n = {
            let c = self.link_seq.entry((dst, tag.0)).or_insert(0);
            let v = *c;
            *c += 1;
            v
        };
        // Fates are a pure function of (seed, src, dst, tag, n): thread
        // interleaving cannot perturb them.
        let mut rng = Rng::seed_from_u64(
            self.plan
                .seed
                .wrapping_add((src as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add((dst as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
                .wrapping_add(tag.0.wrapping_mul(0x1656_67B1_9E37_79F9))
                .wrapping_add(n.wrapping_mul(0xD6E8_FEB8_6659_FD93)),
        );
        let copies = 1 + usize::from(rng.gen_f64() < rates.dup);
        let mut fates = Vec::with_capacity(copies);
        for _ in 0..copies {
            let drop = rng.gen_f64() < rates.drop;
            let corruptible = !drop
                && tag.class() != Tag::CLASS_RELIABLE_CTRL
                && tag.class() != Tag::CLASS_ONESIDED_CTRL
                && len > 0;
            let corrupt = corruptible && rng.gen_f64() < rates.corrupt;
            let corrupt_bit = if corrupt {
                Some(rng.gen_range(len * 8))
            } else {
                None
            };
            let delayed = rng.gen_f64() < rates.delay;
            fates.push(CopyFate {
                drop,
                corrupt_bit,
                extra_delay: if delayed { rates.delay_secs } else { 0.0 },
            });
        }
        let clean = copies == 1
            && !fates[0].drop
            && fates[0].corrupt_bit.is_none()
            && fates[0].extra_delay == 0.0;
        if clean {
            None
        } else {
            Some(FaultDraw { copies: fates })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_tag() -> Tag {
        Tag::new(20, (Tag::CLASS_RELIABLE_DATA << 28) | 7)
    }

    #[test]
    fn default_mask_spares_raw_and_library_traffic() {
        let p = FaultPlan::new(1).rates(FaultRates {
            drop: 1.0,
            ..FaultRates::default()
        });
        assert!(p.applies_to(data_tag()));
        assert!(!p.applies_to(Tag::user(5)));
        assert!(!p.applies_to(Tag::new(Tag::COLL_CTX, 0x5000_0000)));
        assert!(!p.applies_to(Tag::new(20, 0x4000_0001))); // raw data-move
    }

    #[test]
    fn link_overrides_beat_defaults() {
        let quiet = FaultRates::default();
        let noisy = FaultRates { drop: 0.5, ..quiet };
        let p = FaultPlan::new(1).rates(noisy).link(Some(0), Some(1), quiet);
        assert!(p.rates_for(0, 1).is_quiet());
        assert_eq!(p.rates_for(1, 0).drop, 0.5);
    }

    #[test]
    fn draws_are_deterministic_and_order_free() {
        let plan = FaultPlan::new(42).rates(FaultRates {
            drop: 0.3,
            dup: 0.3,
            corrupt: 0.3,
            delay: 0.3,
            delay_secs: 1e-3,
        });
        let draw_seq = |order: &[(Rank, u64)]| {
            let mut st = FaultState::new(plan.clone(), 0);
            let mut out = Vec::new();
            for &(dst, _) in order {
                let d = st.draw(0, dst, data_tag(), 64);
                out.push((
                    dst,
                    d.as_ref().map(|d| {
                        d.copies
                            .iter()
                            .map(|c| (c.drop, c.corrupt_bit, c.extra_delay > 0.0))
                            .collect::<Vec<_>>()
                    }),
                ));
            }
            out
        };
        // Same per-link sequences regardless of interleaving across links.
        let a = draw_seq(&[(1, 0), (1, 1), (2, 0), (2, 1)]);
        let b = draw_seq(&[(1, 0), (2, 0), (1, 1), (2, 1)]);
        type Fates = Option<Vec<(bool, Option<usize>, bool)>>;
        let per_link = |v: &[(Rank, Fates)], d: Rank| {
            v.iter()
                .filter(|(dst, _)| *dst == d)
                .map(|(_, f)| f.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(per_link(&a, 1), per_link(&b, 1));
        assert_eq!(per_link(&a, 2), per_link(&b, 2));
    }

    #[test]
    fn crash_script_fires_once() {
        let p = FaultPlan::new(0).crash(2, 1e-3).crash(2, 5e-3);
        assert_eq!(p.crash_time(2), Some(1e-3));
        assert_eq!(p.crash_time(0), None);
        let mut st = FaultState::new(p, 2);
        assert_eq!(st.crash_due(0.5e-3), None);
        assert_eq!(st.crash_due(2e-3), Some(1e-3));
        assert_eq!(st.crash_due(9e-3), None);
    }
}
