//! A reliable delivery layer over the (possibly faulted) simulated network.
//!
//! The raw [`Endpoint`](crate::endpoint::Endpoint) channel is physically
//! FIFO and lossless, but a [`crate::fault::FaultPlan`] makes it lossy:
//! frames are dropped (delivered as tombstones), duplicated, bit-flipped,
//! or delayed.  This module implements a stop-and-wait protocol per
//! `(peer, stream)` that survives all of that:
//!
//! * **DATA frames** are the payload plus a 24-byte trailer
//!   `[seq u64][attempt u32][magic u32][checksum u64]` — trailer at the
//!   end so the payload is recovered by a zero-copy truncate.
//! * **Control frames** are 9 bytes, `[kind u8][seq u64]`, with kinds
//!   ACK / NACK / GIVEUP, and are never bit-flipped by the injector (a
//!   few bytes against multi-megabyte payloads).
//! * The receiver acks in-order frames, NACKs tombstones and checksum
//!   failures, and drops duplicates (`seq` below the expected counter).
//! * The sender retransmits only on NACK-class events, with an
//!   exponential-backoff virtual-clock deadline used for timeout
//!   accounting; after [`ReliableConfig::max_retries`] attempts it sends
//!   GIVEUP and the stream turns into [`SimError::PeerTimeout`] on both
//!   sides — a permanent partition degrades into an error, not a hang.
//!
//! Two modeling choices keep virtual time deterministic regardless of how
//! rank threads interleave:
//!
//! * All protocol sends happen on the **NIC plane**: their timestamps
//!   derive from the *arrival* of the frame that triggered them, not from
//!   whenever the receiving thread got around to draining its channel,
//!   and they charge nothing to the app-level clock.
//! * Loss is **observable**: a dropped frame still delivers a tombstone
//!   carrying a prefix of the original bytes, so a lost ACK is decoded
//!   from its tombstone and still confirms delivery (the simulator grants
//!   the timer knowledge a real NIC gets from its retransmission clock),
//!   while a lost DATA frame triggers an immediate NACK.
//!
//! Checksums are computed and verified only when a fault plan is active;
//! the fault-free fast path pays just the trailer bytes and the ack
//! round-trip in virtual time.

use std::collections::HashMap;

use crate::endpoint::Endpoint;
use crate::error::SimError;
use crate::message::{Body, Message, Rank};
use crate::model::MachineModel;
use crate::tag::Tag;
use crate::trace::TraceEvent;

/// Trailer appended to every DATA frame.
pub const TRAILER_LEN: usize = 24;
/// Length of a control frame.
pub const CTRL_LEN: usize = 9;
/// Frame-format magic ("MCR1").
const MAGIC: u32 = 0x4D43_5231;

const K_ACK: u8 = 1;
const K_NACK: u8 = 2;
const K_GIVEUP: u8 = 3;
/// NACK sequence meaning "retransmit whatever is pending".
const SEQ_ANY: u64 = u64::MAX;

/// The tag pair a reliable stream runs on: DATA frames on the
/// [`Tag::CLASS_RELIABLE_DATA`] class, control frames on
/// [`Tag::CLASS_RELIABLE_CTRL`], same context and stream id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamTag {
    data: Tag,
    ctrl: Tag,
}

impl StreamTag {
    /// A stream identified by `(ctx, stream)`; only the low 28 bits of
    /// `stream` are used (the high nibble is the class).
    pub fn new(ctx: u32, stream: u32) -> Self {
        let s = stream & 0x0FFF_FFFF;
        StreamTag {
            data: Tag::new(ctx, (Tag::CLASS_RELIABLE_DATA << 28) | s),
            ctrl: Tag::new(ctx, (Tag::CLASS_RELIABLE_CTRL << 28) | s),
        }
    }

    /// The DATA-frame tag.
    pub fn data(&self) -> Tag {
        self.data
    }

    /// The control-frame tag.
    pub fn ctrl(&self) -> Tag {
        self.ctrl
    }
}

fn data_tag_of_ctrl(ctrl: Tag) -> Tag {
    Tag::new(
        ctrl.ctx(),
        (Tag::CLASS_RELIABLE_DATA << 28) | (ctrl.value() & 0x0FFF_FFFF),
    )
}

fn ctrl_tag_of_data(data: Tag) -> Tag {
    Tag::new(
        data.ctx(),
        (Tag::CLASS_RELIABLE_CTRL << 28) | (data.value() & 0x0FFF_FFFF),
    )
}

/// Retry/backoff policy for reliable streams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliableConfig {
    /// Slack added to the modeled round trip before an ack counts as late.
    pub base_timeout: f64,
    /// Deadline multiplier per retransmission attempt.
    pub backoff: f64,
    /// Retransmissions before the sender gives up on the peer.
    pub max_retries: u32,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            base_timeout: 200e-6,
            backoff: 2.0,
            max_retries: 24,
        }
    }
}

impl ReliableConfig {
    /// Ack deadline for a frame of `bytes` on its `attempt`-th try.
    pub fn timeout_for(&self, model: &MachineModel, bytes: usize, attempt: u32) -> f64 {
        let rtt = model.transit(bytes)
            + model.transit(CTRL_LEN)
            + model.send_overhead
            + model.recv_overhead
            + self.base_timeout;
        rtt * self.backoff.powi(attempt as i32)
    }
}

#[derive(Debug)]
struct PendingSend {
    seq: u64,
    attempt: u32,
    /// Retransmission copy — kept only when faults are enabled, so the
    /// fault-free fast path never clones the payload.
    frame: Option<Vec<u8>>,
    bytes: usize,
    deadline: f64,
}

#[derive(Debug, Default)]
struct SendStream {
    next_seq: u64,
    pending: Option<PendingSend>,
    dead: bool,
    dead_at: f64,
    complete_at: f64,
}

#[derive(Debug, Default)]
struct RecvStream {
    expected: u64,
    dead: bool,
    dead_at: f64,
}

/// Per-endpoint reliable-transport state: one stream table per direction,
/// keyed by `(peer global rank, data-tag bits)`.
#[derive(Debug, Default)]
pub(crate) struct ReliableState {
    cfg: ReliableConfig,
    send: HashMap<(Rank, u64), SendStream>,
    recv: HashMap<(Rank, u64), RecvStream>,
}

/// Lane-summed checksum over `region`; detects any single bit flip.
fn checksum64(region: &[u8]) -> u64 {
    let mut sum = region.len() as u64;
    let mut chunks = region.chunks_exact(8);
    for c in &mut chunks {
        sum = sum.wrapping_add(u64::from_le_bytes(c.try_into().unwrap()));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        sum = sum.wrapping_add(u64::from_le_bytes(tail));
    }
    sum
}

fn append_trailer(frame: &mut Vec<u8>, seq: u64, attempt: u32, with_checksum: bool) {
    // A packed payload usually arrives with exact capacity; without this,
    // the 24-byte extend would trip Vec's doubling policy and copy the
    // whole multi-megabyte frame.
    frame.reserve_exact(TRAILER_LEN);
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.extend_from_slice(&attempt.to_le_bytes());
    frame.extend_from_slice(&MAGIC.to_le_bytes());
    let ck = if with_checksum { checksum64(frame) } else { 0 };
    frame.extend_from_slice(&ck.to_le_bytes());
}

fn frame_seq(frame: &[u8]) -> u64 {
    let n = frame.len();
    u64::from_le_bytes(frame[n - 24..n - 16].try_into().unwrap())
}

fn frame_ok(frame: &[u8], verify_checksum: bool) -> bool {
    let n = frame.len();
    if n < TRAILER_LEN {
        return false;
    }
    if u32::from_le_bytes(frame[n - 12..n - 8].try_into().unwrap()) != MAGIC {
        return false;
    }
    if verify_checksum {
        let stored = u64::from_le_bytes(frame[n - 8..].try_into().unwrap());
        if checksum64(&frame[..n - 8]) != stored {
            return false;
        }
    }
    true
}

fn patch_attempt(frame: &mut [u8], attempt: u32) {
    let n = frame.len();
    frame[n - 16..n - 12].copy_from_slice(&attempt.to_le_bytes());
    let ck = checksum64(&frame[..n - 8]);
    frame[n - 8..].copy_from_slice(&ck.to_le_bytes());
}

fn ctrl_frame(kind: u8, seq: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(CTRL_LEN);
    v.push(kind);
    v.extend_from_slice(&seq.to_le_bytes());
    v
}

fn decode_ctrl(bytes: &[u8]) -> Option<(u8, u64)> {
    if bytes.len() < CTRL_LEN {
        return None;
    }
    let kind = bytes[0];
    if !(K_ACK..=K_GIVEUP).contains(&kind) {
        return None;
    }
    Some((kind, u64::from_le_bytes(bytes[1..9].try_into().unwrap())))
}

/// Post one payload on the stream toward `to`.  Any previous frame on the
/// stream is flushed first (stop-and-wait); call [`flush_send`] afterwards
/// to wait for this frame's acknowledgement.  Posting to all peers before
/// flushing any of them avoids cross-pair ordering stalls.
pub fn reliable_send(
    ep: &mut Endpoint,
    to: Rank,
    st: StreamTag,
    payload: Vec<u8>,
) -> Result<(), SimError> {
    flush_send(ep, to, st)?;
    let faulted = ep.faults_enabled();
    let mut frame = payload;
    let seq = ep.rel.send.entry((to, st.data.0)).or_default().next_seq;
    append_trailer(&mut frame, seq, 0, faulted);
    let bytes = frame.len();
    let retx = faulted.then(|| frame.clone());
    ep.send(to, st.data, frame);
    let deadline = ep.clock + ep.rel.cfg.timeout_for(&ep.model, bytes, 0);
    let stream = ep.rel.send.get_mut(&(to, st.data.0)).expect("just created");
    stream.next_seq += 1;
    stream.pending = Some(PendingSend {
        seq,
        attempt: 0,
        frame: retx,
        bytes,
        deadline,
    });
    Ok(())
}

/// Wait (pumping the protocol) until the stream toward `to` has no
/// unacknowledged frame.  Returns [`SimError::PeerTimeout`] once the retry
/// budget has been exhausted and the stream declared dead.
pub fn flush_send(ep: &mut Endpoint, to: Rank, st: StreamTag) -> Result<(), SimError> {
    let key = (to, st.data.0);
    loop {
        match ep.rel.send.get(&key) {
            None => return Ok(()),
            Some(s) if s.dead => {
                let t = s.dead_at;
                ep.advance_to(t);
                ep.mark(|| format!("reliable give-up peer={to} tag={:?} side=send", st.data));
                return Err(SimError::PeerTimeout { rank: to });
            }
            Some(s) if s.pending.is_none() => {
                let t = s.complete_at;
                ep.advance_to(t);
                return Ok(());
            }
            Some(_) => ep.pump_one()?,
        }
    }
}

/// Receive the next in-order payload on the stream from `from`.  The
/// transport trailer is already verified and stripped; duplicates never
/// surface.  Returns [`SimError::PeerTimeout`] if the sender gave the
/// stream up (or a partition exhausted its budget), and
/// [`SimError::PeerFailed`] if the peer crashed.
pub fn reliable_recv(ep: &mut Endpoint, from: Rank, st: StreamTag) -> Result<Vec<u8>, SimError> {
    ep.check_crash();
    let key = (from, st.data.0);
    loop {
        if let Some(s) = ep.rel.recv.get(&key) {
            if s.dead {
                let t = s.dead_at;
                ep.advance_to(t);
                ep.mark(|| format!("reliable give-up peer={from} tag={:?} side=recv", st.data));
                return Err(SimError::PeerTimeout { rank: from });
            }
        }
        if let Some(idx) = ep
            .stash
            .iter()
            .position(|m| m.src == from && m.tag == st.data && matches!(m.body, Body::Data(_)))
        {
            let msg = ep.stash.remove(idx).expect("index valid");
            let mut frame = ep.accept(msg);
            frame.truncate(frame.len() - TRAILER_LEN);
            return Ok(frame);
        }
        ep.pump_one()?;
    }
}

/// Protocol intake, called by the endpoint on every message drained from
/// the wire.  Reliable DATA frames are verified, deduped, and acked *at
/// drain time* — even while the draining rank is blocked on an unrelated
/// receive — which is what lets symmetric exchanges make progress.
/// Returns the message if it should be stashed for a later receive.
pub(crate) fn intake(ep: &mut Endpoint, msg: Message) -> Option<Message> {
    if msg.tag.ctx() < Tag::FIRST_USER_CTX {
        return Some(msg);
    }
    match msg.tag.class() {
        Tag::CLASS_RELIABLE_DATA => intake_data(ep, msg),
        Tag::CLASS_RELIABLE_CTRL => {
            intake_ctrl(ep, msg);
            None
        }
        _ => Some(msg),
    }
}

/// NIC-plane turnaround: a protocol response to a frame that arrived at
/// `arrival` leaves the NIC one send overhead later.
fn turnaround(ep: &Endpoint, arrival: f64) -> f64 {
    arrival + ep.model.send_overhead
}

fn intake_data(ep: &mut Endpoint, msg: Message) -> Option<Message> {
    let ctrl = ctrl_tag_of_data(msg.tag);
    let at = turnaround(ep, msg.arrival);
    let src = msg.src;
    match &msg.body {
        Body::Dropped { .. } => {
            // The frame was destroyed in flight: ask for it again.
            ep.stats.faults.nacks_sent += 1;
            ep.nic_send(src, ctrl, ctrl_frame(K_NACK, SEQ_ANY), at);
            None
        }
        Body::Data(frame) => {
            if !frame_ok(frame, ep.faults_enabled()) {
                ep.stats.faults.nacks_sent += 1;
                ep.nic_send(src, ctrl, ctrl_frame(K_NACK, SEQ_ANY), at);
                return None;
            }
            let seq = frame_seq(frame);
            let stream = ep.rel.recv.entry((src, msg.tag.0)).or_default();
            if seq < stream.expected {
                ep.stats.faults.dup_frames_dropped += 1;
                return None;
            }
            if seq > stream.expected {
                // Impossible under stop-and-wait; treat like loss.
                ep.stats.faults.nacks_sent += 1;
                ep.nic_send(src, ctrl, ctrl_frame(K_NACK, SEQ_ANY), at);
                return None;
            }
            stream.expected += 1;
            ep.stats.faults.acks_sent += 1;
            ep.nic_send(src, ctrl, ctrl_frame(K_ACK, seq), at);
            Some(msg)
        }
        Body::Poison(_) => unreachable!("poison filtered before intake"),
    }
}

fn intake_ctrl(ep: &mut Endpoint, msg: Message) {
    // A dropped control frame still tells us what it was: the tombstone
    // prefix covers the whole 9-byte frame.  A lost ACK therefore still
    // confirms delivery, and a lost NACK/GIVEUP still drives the protocol.
    let decoded = match &msg.body {
        Body::Data(b) => decode_ctrl(b),
        Body::Dropped { prefix, .. } => decode_ctrl(prefix),
        Body::Poison(_) => unreachable!("poison filtered before intake"),
    };
    let Some((kind, seq)) = decoded else { return };
    let data_tag = data_tag_of_ctrl(msg.tag);
    let src = msg.src;
    match kind {
        K_GIVEUP => {
            // The data sender abandoned the stream we receive on.
            let stream = ep.rel.recv.entry((src, data_tag.0)).or_default();
            if !stream.dead {
                stream.dead = true;
                stream.dead_at = msg.arrival;
            }
        }
        K_ACK => {
            let Some(stream) = ep.rel.send.get_mut(&(src, data_tag.0)) else {
                ep.stats.faults.stale_acks_dropped += 1;
                return;
            };
            match stream.pending.take() {
                Some(p) if p.seq == seq => {
                    stream.complete_at = msg.arrival;
                    if msg.arrival > p.deadline {
                        // The ack beat no deadline, but it did arrive:
                        // count the timeout, accept the ack.  (Never
                        // retransmit here — the receiver may already have
                        // moved on and would not ack again.)
                        ep.stats.faults.timeouts += 1;
                    }
                }
                other => {
                    stream.pending = other;
                    ep.stats.faults.stale_acks_dropped += 1;
                }
            }
        }
        K_NACK => {
            let send_ov = ep.model.send_overhead;
            let key = (src, data_tag.0);
            let Some(stream) = ep.rel.send.get_mut(&key) else {
                ep.stats.faults.stale_acks_dropped += 1;
                return;
            };
            let Some(p) = &mut stream.pending else {
                ep.stats.faults.stale_acks_dropped += 1;
                return;
            };
            if seq != SEQ_ANY && seq != p.seq {
                ep.stats.faults.stale_acks_dropped += 1;
                return;
            }
            p.attempt += 1;
            if p.attempt > ep.rel.cfg.max_retries {
                // Budget exhausted: declare the peer unreachable, tell it
                // so (best effort), and surface PeerTimeout at the flush.
                stream.pending = None;
                stream.dead = true;
                stream.dead_at = msg.arrival;
                ep.nic_send(
                    src,
                    msg.tag,
                    ctrl_frame(K_GIVEUP, seq),
                    msg.arrival + send_ov,
                );
                return;
            }
            let attempt = p.attempt;
            let pseq = p.seq;
            let bytes = p.bytes;
            let mut frame = p
                .frame
                .clone()
                .expect("retransmission copy kept while faults are enabled");
            patch_attempt(&mut frame, attempt);
            // The retransmit timer fires at the later of the loss report
            // and the previous attempt's deadline.
            let t_retx = msg.arrival.max(p.deadline) + send_ov;
            let deadline = t_retx + ep.rel.cfg.timeout_for(&ep.model, bytes, attempt);
            p.deadline = deadline;
            ep.stats.faults.timeouts += 1;
            ep.stats.faults.retransmits += 1;
            ep.trace_push(TraceEvent::Retransmit {
                at: t_retx,
                to: src,
                tag: data_tag,
                seq: pseq,
                attempt,
            });
            ep.nic_send(src, data_tag, frame, t_retx);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_tag_classes() {
        let st = StreamTag::new(20, 7);
        assert_eq!(st.data().class(), Tag::CLASS_RELIABLE_DATA);
        assert_eq!(st.ctrl().class(), Tag::CLASS_RELIABLE_CTRL);
        assert_eq!(st.data().ctx(), 20);
        assert_eq!(data_tag_of_ctrl(st.ctrl()), st.data());
        assert_eq!(ctrl_tag_of_data(st.data()), st.ctrl());
    }

    #[test]
    fn trailer_roundtrip_and_checksum() {
        let mut frame = vec![7u8; 100];
        append_trailer(&mut frame, 42, 0, true);
        assert_eq!(frame.len(), 100 + TRAILER_LEN);
        assert!(frame_ok(&frame, true));
        assert_eq!(frame_seq(&frame), 42);
        // Any single bit flip is detected — try a few positions.
        for bit in [0usize, 7, 399, 800, 991] {
            let mut bad = frame.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(!frame_ok(&bad, true), "flip at bit {bit} undetected");
        }
        // Patching the attempt keeps the frame valid.
        let mut f2 = frame.clone();
        patch_attempt(&mut f2, 3);
        assert!(frame_ok(&f2, true));
        assert_eq!(frame_seq(&f2), 42);
    }

    #[test]
    fn unchecksummed_frames_still_validate_shape() {
        let mut frame = vec![1u8; 10];
        append_trailer(&mut frame, 0, 0, false);
        assert!(frame_ok(&frame, false));
        assert!(!frame_ok(&frame[..10], false));
    }

    #[test]
    fn ctrl_frames_roundtrip_and_fit_tombstone_prefix() {
        let f = ctrl_frame(K_NACK, SEQ_ANY);
        assert_eq!(f.len(), CTRL_LEN);
        const { assert!(CTRL_LEN <= crate::message::DROP_PREFIX) };
        assert_eq!(decode_ctrl(&f), Some((K_NACK, SEQ_ANY)));
        assert_eq!(decode_ctrl(&f[..5]), None);
        assert_eq!(decode_ctrl(&[9u8; 9]), None);
    }

    #[test]
    fn backoff_grows_deadlines() {
        let cfg = ReliableConfig::default();
        let m = crate::model::MachineModel::sp2();
        let t0 = cfg.timeout_for(&m, 1024, 0);
        let t1 = cfg.timeout_for(&m, 1024, 1);
        let t3 = cfg.timeout_for(&m, 1024, 3);
        assert!(t0 > 0.0);
        assert!((t1 / t0 - cfg.backoff).abs() < 1e-9);
        assert!(t3 > t1);
    }
}
