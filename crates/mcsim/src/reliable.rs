//! A reliable delivery layer over the (possibly faulted) simulated network.
//!
//! The raw [`Endpoint`](crate::endpoint::Endpoint) channel is physically
//! FIFO and lossless, but a [`crate::fault::FaultPlan`] makes it lossy:
//! frames are dropped (delivered as tombstones), duplicated, bit-flipped,
//! or delayed.  This module implements a **sliding-window** protocol per
//! `(peer, stream)` that survives all of that while keeping many frames in
//! flight:
//!
//! * **DATA frames** are the payload plus a 24-byte trailer
//!   `[seq u64][attempt u16][flags u16][magic u32][checksum u64]` —
//!   trailer at the end so the payload is recovered by a zero-copy
//!   truncate.  The `FLAG_LAST` bit marks the final frame of a logical
//!   message; [`reliable_send`] chunks large payloads into
//!   [`ReliableConfig::chunk_bytes`]-sized frames so a multi-megabyte move
//!   streams as many moderate frames instead of one giant frame.
//! * **Control frames** are 9 bytes, `[kind u8][seq u64]`, with kinds
//!   ACK / NACK / GIVEUP, and are never bit-flipped by the injector (a
//!   few bytes against multi-megabyte payloads).
//! * The sender admits up to [`ReliableConfig::window_frames`] frames (or
//!   [`ReliableConfig::window_bytes`] bytes) before stalling; a stall
//!   pumps the protocol until acks open the window again.
//! * **ACKs are cumulative**: `ACK(n)` retires every pending frame with
//!   `seq <= n`.  The receiver acks on every in-order delivery, so one ack
//!   can advance the window over several frames at once.
//! * **NACKs are selective**: a tombstone or checksum failure NACKs the
//!   first sequence number the receiver has not yet seen (FIFO channels
//!   make that inference exact for single losses); the sender retransmits
//!   the named frame, or its oldest pending frame when the name has
//!   already been retired (which heals lost retransmissions and tail
//!   loss).
//! * Frames arriving **out of order inside the window** (a retransmission
//!   overtaken by later frames) are buffered and delivered in sequence;
//!   duplicates (`seq` below the expected counter, or already buffered)
//!   are dropped.
//! * Every frame carries an exponential-backoff virtual-clock deadline.
//!   When an ack arrives after a pending frame's deadline has passed, the
//!   sweep retransmits every such frame in one **retransmit burst** (the
//!   windowed analogue of a timeout firing).  After
//!   [`ReliableConfig::max_retries`] attempts on any frame the sender
//!   sends GIVEUP and the stream turns into [`SimError::PeerTimeout`] on
//!   both sides — a permanent partition degrades into an error, not a
//!   hang.
//!
//! Streams whose id carries the one-sided sink bits (see
//! [`crate::onesided`]) deliver into exposed windows at intake instead of
//! queueing for a matching `reliable_recv` — that is the put/get data
//! plane.
//!
//! Two modeling choices keep virtual time deterministic regardless of how
//! rank threads interleave:
//!
//! * All protocol sends happen on the **NIC plane**: their timestamps
//!   derive from the *arrival* of the frame that triggered them, not from
//!   whenever the receiving thread got around to draining its channel,
//!   and they charge nothing to the app-level clock.
//! * Loss is **observable**: a dropped frame still delivers a tombstone
//!   carrying a prefix of the original bytes, so a lost ACK is decoded
//!   from its tombstone and still confirms delivery (the simulator grants
//!   the timer knowledge a real NIC gets from its retransmission clock),
//!   while a lost DATA frame triggers an immediate NACK.
//!
//! Checksums are computed and verified only when a fault plan is active;
//! the fault-free fast path pays just the trailer bytes and the ack
//! round-trip in virtual time.

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::endpoint::Endpoint;
use crate::error::SimError;
use crate::message::{Body, Message, Rank};
use crate::model::MachineModel;
use crate::tag::Tag;
use crate::trace::TraceEvent;

/// Trailer appended to every DATA frame.
pub const TRAILER_LEN: usize = 24;
/// Length of a control frame.
pub const CTRL_LEN: usize = 9;
/// Frame-format magic ("MCR2" — the windowed revision).
const MAGIC: u32 = 0x4D43_5232;

/// Trailer flag: this frame completes its logical message.
const FLAG_LAST: u16 = 1;

const K_ACK: u8 = 1;
const K_NACK: u8 = 2;
const K_GIVEUP: u8 = 3;

/// The tag pair a reliable stream runs on: DATA frames on the
/// [`Tag::CLASS_RELIABLE_DATA`] class, control frames on
/// [`Tag::CLASS_RELIABLE_CTRL`], same context and stream id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamTag {
    data: Tag,
    ctrl: Tag,
}

impl StreamTag {
    /// A stream identified by `(ctx, stream)`; only the low 28 bits of
    /// `stream` are used (the high nibble is the class).
    pub fn new(ctx: u32, stream: u32) -> Self {
        let s = stream & 0x0FFF_FFFF;
        StreamTag {
            data: Tag::new(ctx, (Tag::CLASS_RELIABLE_DATA << 28) | s),
            ctrl: Tag::new(ctx, (Tag::CLASS_RELIABLE_CTRL << 28) | s),
        }
    }

    /// The DATA-frame tag.
    pub fn data(&self) -> Tag {
        self.data
    }

    /// The control-frame tag.
    pub fn ctrl(&self) -> Tag {
        self.ctrl
    }
}

fn data_tag_of_ctrl(ctrl: Tag) -> Tag {
    Tag::new(
        ctrl.ctx(),
        (Tag::CLASS_RELIABLE_DATA << 28) | (ctrl.value() & 0x0FFF_FFFF),
    )
}

fn ctrl_tag_of_data(data: Tag) -> Tag {
    Tag::new(
        data.ctx(),
        (Tag::CLASS_RELIABLE_CTRL << 28) | (data.value() & 0x0FFF_FFFF),
    )
}

/// Window, chunking, and retry/backoff policy for reliable streams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliableConfig {
    /// Slack added to the modeled round trip before an ack counts as late.
    pub base_timeout: f64,
    /// Deadline multiplier per retransmission attempt.
    pub backoff: f64,
    /// Retransmissions before the sender gives up on the peer.
    pub max_retries: u32,
    /// Maximum unacknowledged frames in flight per `(peer, stream)`.
    /// `1` degenerates to stop-and-wait.
    pub window_frames: usize,
    /// Maximum unacknowledged bytes in flight per `(peer, stream)`.
    pub window_bytes: usize,
    /// Payloads longer than this are split into frames of at most this
    /// many bytes, so packing/unpacking can overlap wire time.
    pub chunk_bytes: usize,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            base_timeout: 200e-6,
            backoff: 2.0,
            max_retries: 24,
            window_frames: 64,
            window_bytes: 32 << 20,
            chunk_bytes: 256 << 10,
        }
    }
}

/// Backoff exponents above this are clamped: `2^20` already multiplies the
/// deadline by a million, and larger exponents only invite `inf`.
const MAX_BACKOFF_EXP: u32 = 20;
/// Hard cap on any single ack deadline, in virtual seconds.  A hostile
/// backoff factor cannot push a deadline past this (let alone to `inf`,
/// which would make a stream unretirable).
const MAX_TIMEOUT: f64 = 600.0;

impl ReliableConfig {
    /// The stop-and-wait ablation: one frame in flight, same chunking and
    /// retry policy as the default.  Used by benches to measure what the
    /// sliding window buys.
    pub fn stop_and_wait() -> Self {
        ReliableConfig {
            window_frames: 1,
            ..ReliableConfig::default()
        }
    }

    /// Ack deadline for a frame of `bytes` on its `attempt`-th try.
    ///
    /// The exponent is clamped and the result capped so a hostile fault
    /// plan driving `attempt` high (or a huge `backoff`) cannot overflow
    /// the deadline to `inf` — an infinite deadline would never expire.
    pub fn timeout_for(&self, model: &MachineModel, bytes: usize, attempt: u32) -> f64 {
        let rtt = model.transit(bytes)
            + model.transit(CTRL_LEN)
            + model.send_overhead
            + model.recv_overhead
            + self.base_timeout;
        let exp = attempt.min(MAX_BACKOFF_EXP) as i32;
        (rtt * self.backoff.powi(exp)).min(MAX_TIMEOUT)
    }
}

#[derive(Debug)]
struct PendingSend {
    seq: u64,
    attempt: u32,
    /// Retransmission copy — kept only when faults are enabled, so the
    /// fault-free fast path never clones the payload.
    frame: Option<Vec<u8>>,
    bytes: usize,
    deadline: f64,
}

#[derive(Debug, Default)]
struct SendStream {
    next_seq: u64,
    /// Unacknowledged frames, oldest first (seq-ordered).
    pending: VecDeque<PendingSend>,
    /// Total bytes of `pending` frames.
    in_flight_bytes: usize,
    /// Sequence number already fast-retransmitted in response to a
    /// duplicate cumulative ack — at most one fast retransmit per
    /// distinct blocking frame, so dup-ack bursts cannot burn the retry
    /// budget.
    fast_retx: Option<u64>,
    dead: bool,
    dead_at: f64,
    complete_at: f64,
}

/// One logical message ready for `reliable_recv`.
#[derive(Debug)]
enum ReadyFrame {
    /// A single-frame message: delivered zero-copy (accept + truncate),
    /// byte- and trace-identical to the pre-window protocol.
    Whole(Message),
    /// A chunked message reassembled at intake; `chunks` records each
    /// frame's `(arrival, frame bytes)` so the receive charge mirrors
    /// per-frame accepts.
    Assembled {
        payload: Vec<u8>,
        chunks: Vec<(f64, usize)>,
    },
}

#[derive(Debug, Default)]
struct RecvStream {
    /// Next sequence number to deliver.
    expected: u64,
    /// One past the highest sequence number seen or inferred from a
    /// tombstone — what a NACK asks for after a loss.
    next_unseen: u64,
    /// Valid frames ahead of `expected` (retransmission overtaken by later
    /// frames), waiting for the gap to fill.
    reorder: BTreeMap<u64, Message>,
    /// The gap sequence a NACK was already sent for — one gap NACK per
    /// distinct blocking frame, so a long out-of-order run does not flood
    /// the sender with loss reports for the same frame.
    gap_nacked: Option<u64>,
    /// Payload bytes of a partially assembled chunked message.
    assembly: Vec<u8>,
    /// `(arrival, frame bytes)` of each chunk in `assembly`.
    assembly_chunks: Vec<(f64, usize)>,
    /// Complete messages awaiting `reliable_recv`.
    ready: VecDeque<ReadyFrame>,
    dead: bool,
    dead_at: f64,
}

/// Per-endpoint reliable-transport state: one stream table per direction,
/// keyed by `(peer global rank, data-tag bits)`.
#[derive(Debug, Default)]
pub(crate) struct ReliableState {
    cfg: ReliableConfig,
    send: HashMap<(Rank, u64), SendStream>,
    recv: HashMap<(Rank, u64), RecvStream>,
}

impl ReliableState {
    pub(crate) fn new(cfg: ReliableConfig) -> Self {
        ReliableState {
            cfg,
            send: HashMap::new(),
            recv: HashMap::new(),
        }
    }

    pub(crate) fn config(&self) -> &ReliableConfig {
        &self.cfg
    }

    /// Forget every stream keyed to `peer`, both directions.  Called when
    /// a heartbeat reveals the peer restarted under a new incarnation:
    /// the old life's sequence space is void, and the new life's streams
    /// must start from seq 0 on both sides.
    pub(crate) fn purge_peer(&mut self, peer: Rank) {
        self.send.retain(|k, _| k.0 != peer);
        self.recv.retain(|k, _| k.0 != peer);
    }

    /// Forget every stream in both directions — the restarting rank's own
    /// reset: its peers will purge their half when its recovery beat
    /// arrives.
    pub(crate) fn purge_all(&mut self) {
        self.send.clear();
        self.recv.clear();
    }

    /// Drop only the *dead* streams keyed to `peer`, so a session-layer
    /// retry can reopen them from seq 0.  Live streams are kept: within
    /// one life their sequence space is still coherent, and clearing them
    /// would alias sequence numbers against frames still in flight.
    pub(crate) fn clear_dead(&mut self, peer: Rank) {
        self.send.retain(|k, s| k.0 != peer || !s.dead);
        self.recv.retain(|k, s| k.0 != peer || !s.dead);
    }
}

/// Lane-summed checksum over `region`; detects any single bit flip.
fn checksum64(region: &[u8]) -> u64 {
    let mut sum = region.len() as u64;
    let mut chunks = region.chunks_exact(8);
    for c in &mut chunks {
        sum = sum.wrapping_add(u64::from_le_bytes(c.try_into().unwrap()));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        sum = sum.wrapping_add(u64::from_le_bytes(tail));
    }
    sum
}

fn append_trailer(frame: &mut Vec<u8>, seq: u64, attempt: u16, flags: u16, with_checksum: bool) {
    // A packed payload usually arrives with exact capacity; without this,
    // the 24-byte extend would trip Vec's doubling policy and copy the
    // whole multi-megabyte frame.
    frame.reserve_exact(TRAILER_LEN);
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.extend_from_slice(&attempt.to_le_bytes());
    frame.extend_from_slice(&flags.to_le_bytes());
    frame.extend_from_slice(&MAGIC.to_le_bytes());
    let ck = if with_checksum { checksum64(frame) } else { 0 };
    frame.extend_from_slice(&ck.to_le_bytes());
}

fn frame_seq(frame: &[u8]) -> u64 {
    let n = frame.len();
    u64::from_le_bytes(frame[n - 24..n - 16].try_into().unwrap())
}

fn frame_flags(frame: &[u8]) -> u16 {
    let n = frame.len();
    u16::from_le_bytes(frame[n - 14..n - 12].try_into().unwrap())
}

fn frame_ok(frame: &[u8], verify_checksum: bool) -> bool {
    let n = frame.len();
    if n < TRAILER_LEN {
        return false;
    }
    if u32::from_le_bytes(frame[n - 12..n - 8].try_into().unwrap()) != MAGIC {
        return false;
    }
    if verify_checksum {
        let stored = u64::from_le_bytes(frame[n - 8..].try_into().unwrap());
        if checksum64(&frame[..n - 8]) != stored {
            return false;
        }
    }
    true
}

fn patch_attempt(frame: &mut [u8], attempt: u16) {
    let n = frame.len();
    frame[n - 16..n - 14].copy_from_slice(&attempt.to_le_bytes());
    let ck = checksum64(&frame[..n - 8]);
    frame[n - 8..].copy_from_slice(&ck.to_le_bytes());
}

fn ctrl_frame(kind: u8, seq: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(CTRL_LEN);
    v.push(kind);
    v.extend_from_slice(&seq.to_le_bytes());
    v
}

fn decode_ctrl(bytes: &[u8]) -> Option<(u8, u64)> {
    if bytes.len() < CTRL_LEN {
        return None;
    }
    let kind = bytes[0];
    if !(K_ACK..=K_GIVEUP).contains(&kind) {
        return None;
    }
    Some((kind, u64::from_le_bytes(bytes[1..9].try_into().unwrap())))
}

/// Post one logical message on the stream toward `to`.  Payloads larger
/// than [`ReliableConfig::chunk_bytes`] are split into frames; each frame
/// is admitted as soon as the sliding window has room, so the wire carries
/// chunk `k` while chunk `k+1` is being posted.  Call [`flush_send`]
/// afterwards to wait for acknowledgement of everything posted.
pub fn reliable_send(
    ep: &mut Endpoint,
    to: Rank,
    st: StreamTag,
    payload: Vec<u8>,
) -> Result<(), SimError> {
    let chunk = ep.rel.cfg.chunk_bytes.max(1);
    if payload.len() <= chunk {
        return post_frame(ep, to, st, payload, FLAG_LAST);
    }
    let total = payload.len();
    let mut off = 0;
    while off < total {
        let hi = (off + chunk).min(total);
        let mut buf = ep.take_buf();
        buf.extend_from_slice(&payload[off..hi]);
        let flags = if hi == total { FLAG_LAST } else { 0 };
        post_frame(ep, to, st, buf, flags)?;
        off = hi;
    }
    ep.recycle_buf(payload);
    Ok(())
}

/// Admit one frame into the window and send it.
fn post_frame(
    ep: &mut Endpoint,
    to: Rank,
    st: StreamTag,
    payload: Vec<u8>,
    flags: u16,
) -> Result<(), SimError> {
    wait_for_window(ep, to, st)?;
    let faulted = ep.faults_enabled();
    let mut frame = payload;
    let key = (to, st.data.0);
    let seq = ep.rel.send.entry(key).or_default().next_seq;
    // Stamp the incarnation we believe the receiver is at into flags bits
    // 1..16 (bit 0 is FLAG_LAST).  A frame that was in flight across the
    // receiver's restart carries the old incarnation and is silently
    // dropped at intake — the new life must never absorb old-life data.
    // Without recovery armed every incarnation is 0, so frames are
    // bit-identical to the pre-recovery protocol.
    let flags = flags | (((ep.peer_incarnation(to) & 0x7FFF) as u16) << 1);
    append_trailer(&mut frame, seq, 0, flags, faulted);
    let bytes = frame.len();
    let retx = faulted.then(|| frame.clone());
    ep.send(to, st.data, frame);
    let stream = ep.rel.send.get_mut(&key).expect("just created");
    stream.next_seq += 1;
    stream.in_flight_bytes += bytes;
    // Queue-aware deadline: the link drains frames in FIFO order, so this
    // frame's ack cannot arrive before every in-flight byte ahead of it
    // has cleared the wire.  Sizing the timeout on the whole backlog keeps
    // a full window from reading as loss.
    let deadline = ep.clock + ep.rel.cfg.timeout_for(&ep.model, stream.in_flight_bytes, 0);
    stream.pending.push_back(PendingSend {
        seq,
        attempt: 0,
        frame: retx,
        bytes,
        deadline,
    });
    Ok(())
}

/// Pump the protocol until the stream toward `to` has window room (or is
/// dead).  A stall is counted and traced once per episode; when acks open
/// the window the sender's clock advances to the retiring ack's arrival —
/// the virtual time the window actually opened.
fn wait_for_window(ep: &mut Endpoint, to: Rank, st: StreamTag) -> Result<(), SimError> {
    ep.check_crash();
    // A purged stream reads as Gate::Open without a single pump; the
    // entry check keeps an evicted peer from looking like fresh room.
    ep.check_evicted(to)?;
    let key = (to, st.data.0);
    let max_frames = ep.rel.cfg.window_frames.max(1);
    let max_bytes = ep.rel.cfg.window_bytes.max(1);
    let mut stalled = false;
    let mut misses = 0u32;
    loop {
        enum Gate {
            Open(f64),
            Dead(f64),
            Full(usize, usize),
        }
        let gate = match ep.rel.send.get(&key) {
            None => Gate::Open(0.0),
            Some(s) if s.dead => Gate::Dead(s.dead_at),
            Some(s) if s.pending.len() >= max_frames || s.in_flight_bytes >= max_bytes => {
                Gate::Full(s.pending.len(), s.in_flight_bytes)
            }
            Some(s) => Gate::Open(s.complete_at),
        };
        match gate {
            Gate::Dead(t) => {
                ep.advance_to(t);
                ep.mark(|| format!("reliable give-up peer={to} tag={:?} side=send", st.data));
                return Err(SimError::PeerTimeout { rank: to });
            }
            Gate::Open(complete_at) => {
                if stalled {
                    // The window was full and has just opened: this
                    // sender's program order waited on the retiring ack.
                    ep.advance_to(complete_at);
                }
                return Ok(());
            }
            Gate::Full(inflight, bytes) => {
                if !stalled {
                    stalled = true;
                    ep.stats.faults.window_stalls += 1;
                    let at = ep.clock;
                    ep.trace_push(TraceEvent::WindowStall {
                        at,
                        to,
                        tag: st.data,
                        inflight,
                        bytes,
                    });
                }
                ep.pump_guarded(to, &mut misses)?;
            }
        }
    }
}

/// Wait (pumping the protocol) until the stream toward `to` has no
/// unacknowledged frames.  Returns [`SimError::PeerTimeout`] once the
/// retry budget has been exhausted and the stream declared dead.
pub fn flush_send(ep: &mut Endpoint, to: Rank, st: StreamTag) -> Result<(), SimError> {
    // An eviction purge removes the stream entirely — without this check
    // the `None` arm below would report a clean flush for a dead peer.
    ep.check_evicted(to)?;
    let key = (to, st.data.0);
    let mut misses = 0u32;
    loop {
        match ep.rel.send.get(&key) {
            None => return Ok(()),
            Some(s) if s.dead => {
                let t = s.dead_at;
                ep.advance_to(t);
                ep.mark(|| format!("reliable give-up peer={to} tag={:?} side=send", st.data));
                return Err(SimError::PeerTimeout { rank: to });
            }
            Some(s) if s.pending.is_empty() => {
                let t = s.complete_at;
                ep.advance_to(t);
                return Ok(());
            }
            Some(_) => ep.pump_guarded(to, &mut misses)?,
        }
    }
}

/// Receive the next in-order logical message on the stream from `from`.
/// The transport trailer is already verified and stripped; duplicates and
/// reordering never surface.  Returns [`SimError::PeerTimeout`] if the
/// sender gave the stream up (or a partition exhausted its budget), and
/// [`SimError::PeerFailed`] if the peer crashed.
pub fn reliable_recv(ep: &mut Endpoint, from: Rank, st: StreamTag) -> Result<Vec<u8>, SimError> {
    ep.check_crash();
    ep.check_evicted(from)?;
    let key = (from, st.data.0);
    let mut misses = 0u32;
    loop {
        let popped = ep.rel.recv.get_mut(&key).and_then(|s| s.ready.pop_front());
        if let Some(ready) = popped {
            match ready {
                ReadyFrame::Whole(msg) => {
                    let mut frame = ep.accept(msg);
                    frame.truncate(frame.len() - TRAILER_LEN);
                    return Ok(frame);
                }
                ReadyFrame::Assembled { payload, chunks } => {
                    for (arrival, bytes) in chunks {
                        ep.accept_chunk(from, st.data, arrival, bytes);
                    }
                    return Ok(payload);
                }
            }
        }
        // Messages already assembled are served even on a dead stream:
        // death only cuts off what never fully arrived.
        let dead_at = ep
            .rel
            .recv
            .get(&key)
            .and_then(|s| s.dead.then_some(s.dead_at));
        if let Some(t) = dead_at {
            ep.advance_to(t);
            ep.mark(|| format!("reliable give-up peer={from} tag={:?} side=recv", st.data));
            return Err(SimError::PeerTimeout { rank: from });
        }
        ep.pump_guarded(from, &mut misses)?;
    }
}

/// Protocol intake, called by the endpoint on every message drained from
/// the wire.  Reliable DATA frames are verified, deduped, reordered, and
/// acked *at drain time* — even while the draining rank is blocked on an
/// unrelated receive — which is what lets symmetric exchanges make
/// progress.  Returns the message if it should be stashed for a later raw
/// receive.
pub(crate) fn intake(ep: &mut Endpoint, msg: Message) -> Option<Message> {
    if msg.tag.ctx() < Tag::FIRST_USER_CTX {
        return Some(msg);
    }
    match msg.tag.class() {
        Tag::CLASS_RELIABLE_DATA => intake_data(ep, msg),
        Tag::CLASS_RELIABLE_CTRL => {
            intake_ctrl(ep, msg);
            None
        }
        Tag::CLASS_ONESIDED_CTRL => {
            crate::onesided::intake_ctrl(ep, msg);
            None
        }
        _ => Some(msg),
    }
}

/// NIC-plane turnaround: a protocol response to a frame that arrived at
/// `arrival` leaves the NIC one send overhead later.
pub(crate) fn turnaround(ep: &Endpoint, arrival: f64) -> f64 {
    arrival + ep.model.send_overhead
}

/// Append one validated in-order frame to its stream: single-frame
/// messages become zero-copy [`ReadyFrame::Whole`] entries, chunked
/// messages accumulate until their `FLAG_LAST` frame.  Frames on one-sided
/// sink streams complete into `completions` (applied by the caller once
/// the stream borrow ends) instead of the ready queue.
fn deliver_frame(
    st: &mut RecvStream,
    msg: Message,
    sink: bool,
    completions: &mut Vec<(Tag, Vec<u8>, f64)>,
) {
    let Body::Data(frame) = &msg.body else {
        unreachable!("only validated data frames are delivered");
    };
    let last = frame_flags(frame) & FLAG_LAST != 0;
    if sink {
        let arrival = msg.arrival;
        let tag = msg.tag;
        let Body::Data(mut frame) = msg.body else {
            unreachable!();
        };
        if last && st.assembly_chunks.is_empty() {
            frame.truncate(frame.len() - TRAILER_LEN);
            completions.push((tag, frame, arrival));
        } else {
            st.assembly_chunks.push((arrival, frame.len()));
            st.assembly
                .extend_from_slice(&frame[..frame.len() - TRAILER_LEN]);
            if last {
                let payload = std::mem::take(&mut st.assembly);
                st.assembly_chunks.clear();
                completions.push((tag, payload, arrival));
            }
        }
    } else if last && st.assembly_chunks.is_empty() {
        st.ready.push_back(ReadyFrame::Whole(msg));
    } else {
        st.assembly_chunks.push((msg.arrival, frame.len()));
        st.assembly
            .extend_from_slice(&frame[..frame.len() - TRAILER_LEN]);
        if last {
            let payload = std::mem::take(&mut st.assembly);
            let chunks = std::mem::take(&mut st.assembly_chunks);
            st.ready
                .push_back(ReadyFrame::Assembled { payload, chunks });
        }
    }
}

fn intake_data(ep: &mut Endpoint, msg: Message) -> Option<Message> {
    let ctrl = ctrl_tag_of_data(msg.tag);
    let at = turnaround(ep, msg.arrival);
    let src = msg.src;
    let key = (src, msg.tag.0);
    let valid = match &msg.body {
        Body::Dropped { .. } => false,
        Body::Data(frame) => frame_ok(frame, ep.faults_enabled()),
        Body::Poison(_) => unreachable!("poison filtered before intake"),
    };
    if !valid {
        // The frame was destroyed or corrupted in flight: ask for the
        // first sequence number we have not seen.  FIFO channels make the
        // inference exact for a single loss; a wrong guess (the tombstone
        // was a duplicate) at worst triggers one spurious retransmission,
        // which the dedup below absorbs.
        let stream = ep.rel.recv.entry(key).or_default();
        let miss = stream.next_unseen.max(stream.expected);
        stream.next_unseen = miss + 1;
        ep.stats.faults.nacks_sent += 1;
        ep.nic_send(src, ctrl, ctrl_frame(K_NACK, miss), at);
        return None;
    }
    let Body::Data(frame) = &msg.body else {
        unreachable!();
    };
    // A frame stamped with an incarnation other than ours was sent toward
    // a previous (or not-yet-seen) life of this rank: drop it silently.
    // No NACK — the sender's stream for the old life is void, and its new
    // stream will start from seq 0 once it observes our recovery beat.
    let inc_bits = (frame_flags(frame) >> 1) & 0x7FFF;
    if inc_bits != (ep.incarnation() & 0x7FFF) as u16 {
        return None;
    }
    let seq = frame_seq(frame);
    let sink = crate::onesided::is_sink_tag(msg.tag);
    let mut completions: Vec<(Tag, Vec<u8>, f64)> = Vec::new();
    /// What the intake decided to answer with, sent once the stream
    /// borrow has ended.
    enum Answer {
        Ack(u64),
        DupAck(u64),
        GapNack(u64),
        Silent,
    }
    let answer;
    {
        let stream = ep.rel.recv.entry(key).or_default();
        stream.next_unseen = stream.next_unseen.max(seq + 1);
        if seq < stream.expected {
            // Late duplicate: re-ack the cumulative state so the sender is
            // never left without a control signal (a silent drop here
            // could strand its last pending frame forever).
            answer = Answer::DupAck(stream.expected - 1);
        } else if seq > stream.expected {
            // A retransmission of an earlier loss overtook this frame (or
            // will): buffer it inside the window until the gap fills, and
            // name the exact gap in a NACK (once per distinct gap) — the
            // tombstone-based inference below can misattribute repeated
            // losses of the same frame.
            match stream.reorder.entry(seq) {
                std::collections::btree_map::Entry::Occupied(_) => {
                    ep.stats.faults.dup_frames_dropped += 1;
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(msg);
                }
            }
            let gap = stream.expected;
            if stream.gap_nacked != Some(gap) {
                stream.gap_nacked = Some(gap);
                answer = Answer::GapNack(gap);
            } else {
                answer = Answer::Silent;
            }
        } else {
            deliver_frame(stream, msg, sink, &mut completions);
            stream.expected += 1;
            while let Some(m) = stream.reorder.remove(&stream.expected) {
                deliver_frame(stream, m, sink, &mut completions);
                stream.expected += 1;
            }
            stream.gap_nacked = None;
            answer = Answer::Ack(stream.expected - 1);
        }
    }
    match answer {
        Answer::Ack(acked) => {
            ep.stats.faults.acks_sent += 1;
            ep.nic_send(src, ctrl, ctrl_frame(K_ACK, acked), at);
        }
        Answer::DupAck(acked) => {
            ep.stats.faults.dup_frames_dropped += 1;
            ep.stats.faults.acks_sent += 1;
            ep.nic_send(src, ctrl, ctrl_frame(K_ACK, acked), at);
        }
        Answer::GapNack(gap) => {
            ep.stats.faults.nacks_sent += 1;
            ep.nic_send(src, ctrl, ctrl_frame(K_NACK, gap), at);
        }
        Answer::Silent => {}
    }
    for (tag, payload, arrival) in completions {
        crate::onesided::apply_put(ep, src, tag, payload, arrival);
    }
    None
}

/// Retransmit the pending frame at `idx` on the stream toward `to`,
/// triggered at virtual time `trigger_at`.  Returns `false` when the retry
/// budget is exhausted and the stream has been declared dead.
fn retransmit_pending(
    ep: &mut Endpoint,
    to: Rank,
    data_tag: Tag,
    idx: usize,
    trigger_at: f64,
) -> bool {
    let send_ov = ep.model.send_overhead;
    let max_retries = ep.rel.cfg.max_retries;
    let key = (to, data_tag.0);
    let stream = ep.rel.send.get_mut(&key).expect("caller checked");
    let p = &mut stream.pending[idx];
    p.attempt += 1;
    if p.attempt > max_retries {
        // Budget exhausted: declare the peer unreachable, tell it so
        // (best effort), and surface PeerTimeout at the flush.
        let seq = p.seq;
        stream.pending.clear();
        stream.in_flight_bytes = 0;
        stream.dead = true;
        stream.dead_at = trigger_at;
        ep.nic_send(
            to,
            ctrl_tag_of_data(data_tag),
            ctrl_frame(K_GIVEUP, seq),
            trigger_at + send_ov,
        );
        return false;
    }
    let attempt = p.attempt;
    let seq = p.seq;
    let mut frame = p
        .frame
        .clone()
        .expect("retransmission copy kept while faults are enabled");
    patch_attempt(&mut frame, attempt as u16);
    // The retransmit timer fires at the later of the loss report and the
    // previous attempt's deadline.
    let t_retx = trigger_at.max(p.deadline) + send_ov;
    // Same queue-aware sizing as the original post: the retry drains
    // behind everything still in flight.
    let backlog = stream.in_flight_bytes;
    let deadline = t_retx + ep.rel.cfg.timeout_for(&ep.model, backlog, attempt);
    stream.pending[idx].deadline = deadline;
    ep.stats.faults.timeouts += 1;
    ep.stats.faults.retransmits += 1;
    ep.trace_push(TraceEvent::Retransmit {
        at: t_retx,
        to,
        tag: data_tag,
        seq,
        attempt,
    });
    ep.nic_send(to, data_tag, frame, t_retx);
    true
}

/// After an ack retired frames at `now`, retransmit every remaining
/// pending frame whose deadline has already passed — the windowed
/// analogue of a timeout firing, traced as one retransmit burst.
fn sweep_expired(ep: &mut Endpoint, to: Rank, data_tag: Tag, now: f64) {
    // Without fault injection nothing is ever lost, so a blown deadline
    // can only mean ack queueing — retransmitting would be pure waste
    // (and no retransmission copy is kept on the fault-free path).
    if !ep.faults_enabled() {
        return;
    }
    let key = (to, data_tag.0);
    let mut burst = 0usize;
    loop {
        let idx = match ep.rel.send.get(&key) {
            Some(s) if !s.dead => s.pending.iter().position(|p| p.deadline < now),
            _ => None,
        };
        let Some(idx) = idx else { break };
        let alive = retransmit_pending(ep, to, data_tag, idx, now);
        burst += 1;
        if !alive {
            break;
        }
    }
    if burst > 0 {
        ep.stats.faults.retransmit_bursts += 1;
        ep.trace_push(TraceEvent::RetransmitBurst {
            at: now,
            to,
            tag: data_tag,
            frames: burst,
        });
    }
}

fn intake_ctrl(ep: &mut Endpoint, msg: Message) {
    // A dropped control frame still tells us what it was: the tombstone
    // prefix covers the whole 9-byte frame.  A lost ACK therefore still
    // confirms delivery, and a lost NACK/GIVEUP still drives the protocol.
    let decoded = match &msg.body {
        Body::Data(b) => decode_ctrl(b),
        Body::Dropped { prefix, .. } => decode_ctrl(prefix),
        Body::Poison(_) => unreachable!("poison filtered before intake"),
    };
    let Some((kind, seq)) = decoded else { return };
    let data_tag = data_tag_of_ctrl(msg.tag);
    let src = msg.src;
    let key = (src, data_tag.0);
    match kind {
        K_GIVEUP => {
            // The data sender abandoned the stream we receive on.
            let stream = ep.rel.recv.entry(key).or_default();
            if !stream.dead {
                stream.dead = true;
                stream.dead_at = msg.arrival;
            }
        }
        K_ACK => {
            let Some(stream) = ep.rel.send.get_mut(&key) else {
                ep.stats.faults.stale_acks_dropped += 1;
                return;
            };
            // Cumulative: retire every pending frame with seq <= acked.
            let mut retired = 0u64;
            let mut late = 0u64;
            let mut inflight = stream.pending.len();
            while stream.pending.front().is_some_and(|p| p.seq <= seq) {
                let p = stream.pending.pop_front().expect("front checked");
                stream.in_flight_bytes -= p.bytes;
                if msg.arrival > p.deadline {
                    // The ack beat no deadline, but it did arrive: count
                    // the timeout, accept the ack.
                    late += 1;
                }
                retired += 1;
            }
            if retired == 0 {
                // Duplicate cumulative ack: the receiver saw a frame it
                // could not deliver, so the oldest pending frame is the
                // blocker.  Fast-retransmit it — once per distinct
                // blocking frame — because no timer will ever fire if the
                // wire goes quiet here.
                ep.stats.faults.stale_acks_dropped += 1;
                let front = match stream.pending.front() {
                    Some(p) if !stream.dead && stream.fast_retx != Some(p.seq) => Some(p.seq),
                    _ => None,
                };
                if let Some(s) = front {
                    stream.fast_retx = Some(s);
                    retransmit_pending(ep, src, data_tag, 0, msg.arrival);
                }
                return;
            }
            stream.fast_retx = None;
            inflight -= retired as usize;
            stream.complete_at = stream.complete_at.max(msg.arrival);
            ep.stats.faults.timeouts += late;
            ep.stats.faults.window_advances += 1;
            ep.trace_push(TraceEvent::WindowAdvance {
                at: msg.arrival,
                to: src,
                tag: data_tag,
                acked: seq,
                inflight,
            });
            // Frames still pending whose deadlines this (late) ack blew
            // past will not be acked spontaneously — resend them now.
            sweep_expired(ep, src, data_tag, msg.arrival);
        }
        K_NACK => {
            let Some(stream) = ep.rel.send.get_mut(&key) else {
                ep.stats.faults.stale_acks_dropped += 1;
                return;
            };
            if stream.dead {
                return;
            }
            // Retransmit the named frame; when it was already retired (a
            // duplicated NACK, or a loss the receiver misattributed),
            // retransmit the oldest pending frame instead — that is the
            // one blocking the receiver, and resending it heals dropped
            // retransmissions and tail loss.
            let idx = match stream.pending.iter().position(|p| p.seq == seq) {
                Some(i) => Some(i),
                None if !stream.pending.is_empty() => Some(0),
                None => None,
            };
            let Some(idx) = idx else {
                ep.stats.faults.stale_acks_dropped += 1;
                return;
            };
            retransmit_pending(ep, src, data_tag, idx, msg.arrival);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MachineModel;
    use crate::world::World;

    #[test]
    fn stream_tag_classes() {
        let st = StreamTag::new(20, 7);
        assert_eq!(st.data().class(), Tag::CLASS_RELIABLE_DATA);
        assert_eq!(st.ctrl().class(), Tag::CLASS_RELIABLE_CTRL);
        assert_eq!(st.data().ctx(), 20);
        assert_eq!(data_tag_of_ctrl(st.ctrl()), st.data());
        assert_eq!(ctrl_tag_of_data(st.data()), st.ctrl());
    }

    #[test]
    fn trailer_roundtrip_and_checksum() {
        let mut frame = vec![7u8; 100];
        append_trailer(&mut frame, 42, 0, FLAG_LAST, true);
        assert_eq!(frame.len(), 100 + TRAILER_LEN);
        assert!(frame_ok(&frame, true));
        assert_eq!(frame_seq(&frame), 42);
        assert_eq!(frame_flags(&frame) & FLAG_LAST, FLAG_LAST);
        // Any single bit flip is detected — try a few positions.
        for bit in [0usize, 7, 399, 800, 991] {
            let mut bad = frame.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(!frame_ok(&bad, true), "flip at bit {bit} undetected");
        }
        // Patching the attempt keeps the frame valid and its flags intact.
        let mut f2 = frame.clone();
        patch_attempt(&mut f2, 3);
        assert!(frame_ok(&f2, true));
        assert_eq!(frame_seq(&f2), 42);
        assert_eq!(frame_flags(&f2) & FLAG_LAST, FLAG_LAST);
    }

    #[test]
    fn unchecksummed_frames_still_validate_shape() {
        let mut frame = vec![1u8; 10];
        append_trailer(&mut frame, 0, 0, 0, false);
        assert!(frame_ok(&frame, false));
        assert!(!frame_ok(&frame[..10], false));
    }

    #[test]
    fn ctrl_frames_roundtrip_and_fit_tombstone_prefix() {
        let f = ctrl_frame(K_NACK, 7);
        assert_eq!(f.len(), CTRL_LEN);
        const { assert!(CTRL_LEN <= crate::message::DROP_PREFIX) };
        assert_eq!(decode_ctrl(&f), Some((K_NACK, 7)));
        assert_eq!(decode_ctrl(&f[..5]), None);
        assert_eq!(decode_ctrl(&[9u8; 9]), None);
    }

    #[test]
    fn backoff_grows_deadlines() {
        let cfg = ReliableConfig::default();
        let m = MachineModel::sp2();
        let t0 = cfg.timeout_for(&m, 1024, 0);
        let t1 = cfg.timeout_for(&m, 1024, 1);
        let t3 = cfg.timeout_for(&m, 1024, 3);
        assert!(t0 > 0.0);
        assert!((t1 / t0 - cfg.backoff).abs() < 1e-9);
        assert!(t3 > t1);
    }

    #[test]
    fn backoff_overflow_is_clamped() {
        // A hostile attempt count must not overflow the deadline to inf:
        // the exponent clamps and the result caps.
        let cfg = ReliableConfig {
            backoff: 10.0,
            ..ReliableConfig::default()
        };
        let m = MachineModel::sp2();
        let t_huge = cfg.timeout_for(&m, 1 << 20, u32::MAX);
        assert!(t_huge.is_finite());
        assert!(t_huge <= MAX_TIMEOUT);
        // Clamped region is flat: more attempts never shrink or blow it.
        assert_eq!(t_huge, cfg.timeout_for(&m, 1 << 20, 1_000_000));
        assert_eq!(t_huge, cfg.timeout_for(&m, 1 << 20, MAX_BACKOFF_EXP + 1));
    }

    #[test]
    fn stop_and_wait_is_one_frame_window() {
        let cfg = ReliableConfig::stop_and_wait();
        assert_eq!(cfg.window_frames, 1);
        assert_eq!(cfg.chunk_bytes, ReliableConfig::default().chunk_bytes);
    }

    #[test]
    fn chunked_payload_streams_and_reassembles() {
        let cfg = ReliableConfig {
            chunk_bytes: 1024,
            window_frames: 8,
            ..ReliableConfig::default()
        };
        let payload: Vec<u8> = (0..10_240u32).map(|i| (i % 251) as u8).collect();
        let sent = payload.clone();
        let world = World::with_model(2, MachineModel::zero()).with_reliable_config(cfg);
        let out = world.run(move |ep| {
            let st = StreamTag::new(20, 1);
            if ep.rank() == 0 {
                reliable_send(ep, 1, st, sent.clone()).unwrap();
                flush_send(ep, 1, st).unwrap();
                Vec::new()
            } else {
                reliable_recv(ep, 0, st).unwrap()
            }
        });
        assert_eq!(out.results[1], payload);
        // 10240 bytes at 1 KiB per chunk = 10 data frames.
        assert_eq!(out.stats.msgs[0][1], 10);
        // Cumulative acks advanced the window at least once.
        assert!(out.stats.faults.window_advances >= 1);
        assert_eq!(out.stats.faults.retransmits, 0);
    }

    #[test]
    fn tight_window_stalls_sender() {
        let cfg = ReliableConfig {
            chunk_bytes: 512,
            window_frames: 2,
            ..ReliableConfig::default()
        };
        let payload = vec![0xA5u8; 8 * 512];
        let expect = payload.clone();
        let world = World::with_model(2, MachineModel::sp2()).with_reliable_config(cfg);
        let out = world.run(move |ep| {
            let st = StreamTag::new(20, 1);
            if ep.rank() == 0 {
                reliable_send(ep, 1, st, payload.clone()).unwrap();
                flush_send(ep, 1, st).unwrap();
                Vec::new()
            } else {
                reliable_recv(ep, 0, st).unwrap()
            }
        });
        assert_eq!(out.results[1], expect);
        assert!(
            out.stats.faults.window_stalls >= 1,
            "8 frames through a 2-frame window must stall"
        );
    }

    #[test]
    fn single_frame_messages_deliver_in_order() {
        let world = World::with_model(2, MachineModel::zero());
        world.run(|ep| {
            let st = StreamTag::new(20, 3);
            if ep.rank() == 0 {
                for i in 0..5u64 {
                    reliable_send(ep, 1, st, i.to_le_bytes().to_vec()).unwrap();
                }
                flush_send(ep, 1, st).unwrap();
            } else {
                for i in 0..5u64 {
                    let got = reliable_recv(ep, 0, st).unwrap();
                    assert_eq!(got, i.to_le_bytes().to_vec());
                }
            }
        });
    }

    #[test]
    fn windowed_pipeline_beats_stop_and_wait() {
        let elapsed = |cfg: ReliableConfig| {
            let world = World::with_model(2, MachineModel::sp2()).with_reliable_config(cfg);
            let out = world.run(|ep| {
                let st = StreamTag::new(20, 1);
                if ep.rank() == 0 {
                    reliable_send(ep, 1, st, vec![0x5Au8; 1 << 20]).unwrap();
                    flush_send(ep, 1, st).unwrap();
                } else {
                    let got = reliable_recv(ep, 0, st).unwrap();
                    assert_eq!(got.len(), 1 << 20);
                }
            });
            out.elapsed
        };
        let windowed = elapsed(ReliableConfig::default());
        let stopwait = elapsed(ReliableConfig::stop_and_wait());
        assert!(
            stopwait > windowed * 2.0,
            "stop-and-wait {stopwait} not >2x windowed {windowed}"
        );
    }
}
