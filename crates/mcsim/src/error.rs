//! Error types for the simulated machine.

use std::fmt;

/// Errors surfaced by the simulation layer.
///
/// Most misuse (sending to an out-of-range rank, decoding a malformed
/// payload) is a programming error and panics with context, matching how an
/// MPI implementation aborts the job; `SimError` covers the conditions a
/// caller can meaningfully observe and handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A peer rank panicked; its failure is propagated instead of hanging.
    PeerFailed {
        /// Rank that failed.
        rank: usize,
        /// Panic message from the failed rank.
        reason: String,
    },
    /// A typed receive could not decode the payload.
    Decode(String),
    /// A virtual-clock deadline elapsed before the peer delivered: either a
    /// [`crate::endpoint::Endpoint::recv_timeout`] deadline passed, or the
    /// reliable layer exhausted its retry budget against this peer.
    PeerTimeout {
        /// The peer rank that never delivered (or never acknowledged).
        rank: usize,
    },
    /// The failure detector evicted the peer: either its lease lapsed
    /// (no heartbeat for the configured number of windows) or it was
    /// observed restarting under a bumped incarnation mid-wait.  Distinct
    /// from [`SimError::PeerTimeout`] (a transport retry-budget give-up):
    /// eviction is a *membership* decision, and under a supervisor the
    /// peer may come back — callers with a checkpoint can retry the step.
    PeerEvicted {
        /// The evicted peer's global rank.
        rank: usize,
        /// The peer's incarnation as known at eviction time (bumped once
        /// per supervisor restart; 0 for a never-restarted rank).
        incarnation: u64,
    },
    /// The world's channels closed while waiting — every other rank has
    /// already torn down.
    Shutdown,
    /// The world-level virtual-clock deadline (see
    /// [`crate::world::World::with_deadline`]) elapsed, or the rank sat in
    /// a blocking receive past the real-time silence cap while a deadline
    /// was armed.  The run is declared wedged rather than allowed to hang.
    DeadlineExceeded,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::PeerFailed { rank, reason } => {
                write!(f, "rank {rank} failed: {reason}")
            }
            SimError::Decode(msg) => write!(f, "wire decode error: {msg}"),
            SimError::PeerTimeout { rank } => {
                write!(f, "timed out waiting for rank {rank}")
            }
            SimError::PeerEvicted { rank, incarnation } => {
                write!(f, "evicted rank {rank} (incarnation {incarnation})")
            }
            SimError::Shutdown => write!(f, "world tore down"),
            SimError::DeadlineExceeded => {
                write!(f, "virtual-clock deadline exceeded (run declared wedged)")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = SimError::PeerFailed {
            rank: 3,
            reason: "boom".into(),
        };
        assert_eq!(e.to_string(), "rank 3 failed: boom");
        let d = SimError::Decode("short read".into());
        assert!(d.to_string().contains("short read"));
    }
}
