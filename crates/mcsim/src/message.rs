//! The message envelope exchanged between ranks.

use crate::tag::Tag;

/// A processor index in the world (0-based, dense).
pub type Rank = usize;

/// How many leading payload bytes a drop tombstone preserves — enough for
/// the reliable layer to recognize which control frame was lost.
pub(crate) const DROP_PREFIX: usize = 16;

/// What a message carries.
#[derive(Debug)]
pub enum Body {
    /// Ordinary data payload.
    Data(Vec<u8>),
    /// Tombstone left where a [`crate::fault::FaultPlan`] destroyed a
    /// message in flight.  The payload is gone; the envelope (and a short
    /// prefix of the original bytes) still arrives so loss detection can be
    /// modeled deterministically without wall-clock timers.  Raw receives
    /// never match tombstones — only the reliable layer consumes them.
    Dropped {
        /// Length of the destroyed payload.
        orig_len: usize,
        /// First few bytes of the destroyed payload (header recovery).
        prefix: Vec<u8>,
    },
    /// A rank panicked; receivers must propagate the failure instead of
    /// hanging forever on a receive that will never be matched.
    Poison(String),
}

/// A message in flight between two ranks.
#[derive(Debug)]
pub struct Message {
    /// Global rank of the sender.
    pub src: Rank,
    /// Tag the sender attached.
    pub tag: Tag,
    /// Payload (or poison marker).
    pub body: Body,
    /// Virtual time at which the message becomes available at the receiver
    /// (sender clock at send + latency + size / bandwidth).
    pub arrival: f64,
}

impl Message {
    /// Payload length in bytes (0 for poison and drop tombstones).
    pub fn len(&self) -> usize {
        match &self.body {
            Body::Data(d) => d.len(),
            Body::Dropped { .. } | Body::Poison(_) => 0,
        }
    }

    /// True if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_len() {
        let m = Message {
            src: 0,
            tag: Tag::user(0),
            body: Body::Data(vec![1, 2, 3]),
            arrival: 0.0,
        };
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        let p = Message {
            src: 0,
            tag: Tag::user(0),
            body: Body::Poison("x".into()),
            arrival: 0.0,
        };
        assert_eq!(p.len(), 0);
        assert!(p.is_empty());
    }
}
