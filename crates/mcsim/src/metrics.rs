//! Named, typed metrics derived from a run.
//!
//! The registry folds the ad-hoc counters ([`NetStats`]:
//! `sched_cache_*`, [`crate::stats::FaultStats`],
//! [`crate::stats::SessionStats`]) into one flat namespace of named
//! counters, and — when the run was traced — adds per-phase
//! *virtual-time* histograms: message flight time, receive wait,
//! retransmit latency, and one `phase.<name>` histogram per span phase.
//! Everything is deterministic because it is computed from virtual
//! clocks.
//!
//! Naming convention: `<subsystem>.<what>` — `net.msgs`,
//! `sched_cache.hits`, `fault.retransmits`, `session.frames_staged`,
//! `msg.flight_time`, `phase.inspect`, …

use std::collections::BTreeMap;

use crate::span::pair_spans;
use crate::stats::NetStats;
use crate::trace::TraceEvent;

/// A simple summary histogram over virtual-time samples (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Histogram {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
}

impl Histogram {
    /// Add one sample.
    pub fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Flat registry of named counters and histograms for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Build the registry from a run's aggregate stats and (possibly
    /// empty) per-rank timelines.
    pub fn from_run(stats: &NetStats, traces: &[Vec<TraceEvent>]) -> Self {
        let mut m = MetricsRegistry::default();
        m.set("net.msgs", stats.total_msgs());
        m.set("net.bytes", stats.total_bytes());
        m.set("sched_cache.hits", stats.sched_cache_hits);
        m.set("sched_cache.misses", stats.sched_cache_misses);
        let f = &stats.faults;
        m.set("fault.drops_injected", f.drops_injected);
        m.set("fault.dups_injected", f.dups_injected);
        m.set("fault.corrupts_injected", f.corrupts_injected);
        m.set("fault.delays_injected", f.delays_injected);
        m.set("fault.retransmits", f.retransmits);
        m.set("fault.timeouts", f.timeouts);
        m.set("fault.acks_sent", f.acks_sent);
        m.set("fault.nacks_sent", f.nacks_sent);
        m.set("fault.dup_frames_dropped", f.dup_frames_dropped);
        m.set("fault.stale_acks_dropped", f.stale_acks_dropped);
        m.set("fault.window_stalls", f.window_stalls);
        m.set("fault.window_advances", f.window_advances);
        m.set("fault.retransmit_bursts", f.retransmit_bursts);
        let s = &stats.session;
        m.set("session.frames_staged", s.frames_staged);
        m.set("session.transfers_aborted", s.transfers_aborted);
        m.set("session.transfers_committed", s.transfers_committed);
        m.set("session.stale_halves_dropped", s.stale_halves_dropped);
        m.set("session.stale_schedules", s.stale_schedules);
        let r = &stats.recovery;
        m.set("recovery.heartbeats_sent", r.heartbeats_sent);
        m.set("recovery.leases_expired", r.leases_expired);
        m.set("recovery.ranks_recovered", r.ranks_recovered);
        m.set("recovery.parts_replayed", r.parts_replayed);
        m.fold_traces(traces);
        m
    }

    fn set(&mut self, name: &str, v: u64) {
        self.counters.insert(name.to_string(), v);
    }

    fn fold_traces(&mut self, traces: &[Vec<TraceEvent>]) {
        for tl in traces {
            // Histogram sources with duration semantics.
            let mut last_send: BTreeMap<(usize, u64), f64> = BTreeMap::new();
            for e in tl {
                match e {
                    TraceEvent::Send {
                        at,
                        to,
                        tag,
                        arrival,
                        ..
                    } => {
                        self.histo_mut("msg.flight_time").record(arrival - at);
                        last_send.insert((*to, tag.0), *at);
                    }
                    TraceEvent::Recv { waited, .. } => {
                        self.histo_mut("recv.wait").record(*waited);
                    }
                    TraceEvent::Retransmit { at, to, tag, .. } => {
                        // Latency from the most recent original
                        // transmission on the same stream to the resend.
                        if let Some(t0) = last_send.get(&(*to, tag.0)) {
                            self.histo_mut("retransmit.latency").record(at - t0);
                        }
                    }
                    TraceEvent::WindowAdvance { inflight, .. } => {
                        // Pipeline occupancy: frames still in flight each
                        // time an ack advanced the window (a count, not a
                        // duration).
                        self.histo_mut("window.inflight").record(*inflight as f64);
                    }
                    _ => {}
                }
            }
            for span in pair_spans(tl) {
                self.histo_mut(&format!("phase.{}", span.phase.as_str()))
                    .record(span.duration());
            }
        }
    }

    fn histo_mut(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_string()).or_default()
    }

    /// Value of a named counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, name-ordered.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms, name-ordered.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Inspector vs executor share of modeled wall time, as fractions of
    /// their combined span time: `(inspect, transfer)`.  `None` when the
    /// run recorded neither phase (e.g. tracing off).
    pub fn inspector_executor_share(&self) -> Option<(f64, f64)> {
        let i = self.histogram("phase.inspect").map_or(0.0, |h| h.sum);
        let x = self.histogram("phase.transfer").map_or(0.0, |h| h.sum);
        let total = i + x;
        if total <= 0.0 {
            return None;
        }
        Some((i / total, x / total))
    }

    /// Human-readable `name value` lines (counters, then histograms).
    pub fn lines(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("{k} {v}"))
            .collect();
        for (k, h) in &self.histograms {
            out.push(format!(
                "{k} count={} sum={:.9} min={:.9} max={:.9} mean={:.9}",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Phase, SpanId};
    use crate::stats::StatsSnapshot;
    use crate::tag::Tag;

    #[test]
    fn histogram_summary() {
        let mut h = Histogram::default();
        h.record(2.0);
        h.record(4.0);
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 4.0);
        assert_eq!(h.mean(), 3.0);
    }

    #[test]
    fn registry_folds_stats_and_traces() {
        let mut local = StatsSnapshot::new(2);
        local.faults.retransmits = 3;
        local.session.frames_staged = 2;
        let stats = NetStats::from_locals(vec![local, StatsSnapshot::new(2)]);
        let traces = vec![vec![
            TraceEvent::SpanBegin {
                at: 0.0,
                id: SpanId(1),
                parent: None,
                phase: Phase::Inspect,
                detail: String::new(),
            },
            TraceEvent::SpanEnd {
                at: 1.0,
                id: SpanId(1),
            },
            TraceEvent::Send {
                at: 1.0,
                to: 1,
                tag: Tag::user(0),
                bytes: 8,
                arrival: 1.5,
            },
            TraceEvent::Retransmit {
                at: 2.0,
                to: 1,
                tag: Tag::user(0),
                seq: 0,
                attempt: 1,
            },
            TraceEvent::SpanBegin {
                at: 2.0,
                id: SpanId(2),
                parent: None,
                phase: Phase::Transfer,
                detail: String::new(),
            },
            TraceEvent::SpanEnd {
                at: 5.0,
                id: SpanId(2),
            },
        ]];
        let m = MetricsRegistry::from_run(&stats, &traces);
        assert_eq!(m.counter("fault.retransmits"), 3);
        assert_eq!(m.counter("session.frames_staged"), 2);
        let flight = m.histogram("msg.flight_time").unwrap();
        assert_eq!(flight.count, 1);
        assert!((flight.mean() - 0.5).abs() < 1e-12);
        let rtx = m.histogram("retransmit.latency").unwrap();
        assert!((rtx.max - 1.0).abs() < 1e-12);
        let (i, x) = m.inspector_executor_share().unwrap();
        assert!((i - 0.25).abs() < 1e-12);
        assert!((x - 0.75).abs() < 1e-12);
        assert!(!m.lines().is_empty());
    }
}
