//! Named, typed metrics derived from a run.
//!
//! The registry folds the ad-hoc counters ([`NetStats`]:
//! `sched_cache_*`, [`crate::stats::FaultStats`],
//! [`crate::stats::SessionStats`]) into one flat namespace of named
//! counters, and — when the run was traced — adds per-phase
//! *virtual-time* histograms: message flight time, receive wait,
//! retransmit latency, and one `phase.<name>` histogram per span phase.
//! Everything is deterministic because it is computed from virtual
//! clocks.
//!
//! Naming convention: `<subsystem>.<what>` — `net.msgs`,
//! `sched_cache.hits`, `fault.retransmits`, `session.frames_staged`,
//! `msg.flight_time`, `phase.inspect`, …

use std::collections::BTreeMap;

use crate::span::pair_spans;
use crate::stats::NetStats;
use crate::trace::TraceEvent;

/// Number of logarithmic buckets ([`HIST_PER_OCTAVE`] per factor of 2).
pub const HIST_BUCKETS: usize = 160;
/// Lower edge of bucket 0 (seconds): 1 ns — the virtual clock's natural
/// resolution.  160 buckets at 4/octave span 1 ns … ~1100 s.
pub const HIST_V0: f64 = 1e-9;
/// Buckets per octave (~19% bucket width — fine enough for p99 reads).
pub const HIST_PER_OCTAVE: u32 = 4;

/// A log-bucketed summary histogram over virtual-time samples (seconds).
///
/// Alongside exact `count`/`sum`/`min`/`max`, samples land in one of
/// [`HIST_BUCKETS`] logarithmic buckets ([`HIST_PER_OCTAVE`] per factor
/// of 2 starting at [`HIST_V0`]), so [`Histogram::quantile`] reads
/// p50/p95/p99 with ~19% relative resolution.  Samples at or below 0
/// (and below `HIST_V0`) count in bucket 0; samples beyond the top edge
/// clamp into the last bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    buckets: [u32; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    /// Index of the bucket a sample lands in.
    fn bucket_index(v: f64) -> usize {
        if v.is_nan() || v <= HIST_V0 {
            return 0;
        }
        let idx = ((v / HIST_V0).log2() * HIST_PER_OCTAVE as f64).ceil() as isize;
        idx.clamp(0, HIST_BUCKETS as isize - 1) as usize
    }

    /// Upper edge of bucket `i` (seconds).
    fn bucket_edge(i: usize) -> f64 {
        HIST_V0 * 2f64.powf(i as f64 / HIST_PER_OCTAVE as f64)
    }

    /// Add one sample.
    pub fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        self.buckets[Self::bucket_index(v)] += 1;
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]` (0 when empty).
    ///
    /// Reads the upper edge of the bucket holding the `ceil(q·count)`-th
    /// sample, clamped into the exact `[min, max]` envelope; the
    /// endpoints are exact (`quantile(0.0) == min`,
    /// `quantile(1.0) == max`), interior quantiles are within one
    /// bucket (~19%), and single-sample histograms are exact.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c as u64;
            if seen >= rank {
                return Self::bucket_edge(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// Flat registry of named counters and histograms for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Build the registry from a run's aggregate stats and (possibly
    /// empty) per-rank timelines.
    pub fn from_run(stats: &NetStats, traces: &[Vec<TraceEvent>]) -> Self {
        let mut m = MetricsRegistry::default();
        m.set("net.msgs", stats.total_msgs());
        m.set("net.bytes", stats.total_bytes());
        m.set("sched_cache.hits", stats.sched_cache_hits);
        m.set("sched_cache.misses", stats.sched_cache_misses);
        let f = &stats.faults;
        m.set("fault.drops_injected", f.drops_injected);
        m.set("fault.dups_injected", f.dups_injected);
        m.set("fault.corrupts_injected", f.corrupts_injected);
        m.set("fault.delays_injected", f.delays_injected);
        m.set("fault.retransmits", f.retransmits);
        m.set("fault.timeouts", f.timeouts);
        m.set("fault.acks_sent", f.acks_sent);
        m.set("fault.nacks_sent", f.nacks_sent);
        m.set("fault.dup_frames_dropped", f.dup_frames_dropped);
        m.set("fault.stale_acks_dropped", f.stale_acks_dropped);
        m.set("fault.window_stalls", f.window_stalls);
        m.set("fault.window_advances", f.window_advances);
        m.set("fault.retransmit_bursts", f.retransmit_bursts);
        let s = &stats.session;
        m.set("session.frames_staged", s.frames_staged);
        m.set("session.transfers_aborted", s.transfers_aborted);
        m.set("session.transfers_committed", s.transfers_committed);
        m.set("session.stale_halves_dropped", s.stale_halves_dropped);
        m.set("session.stale_schedules", s.stale_schedules);
        let r = &stats.recovery;
        m.set("recovery.heartbeats_sent", r.heartbeats_sent);
        m.set("recovery.leases_expired", r.leases_expired);
        m.set("recovery.ranks_recovered", r.ranks_recovered);
        m.set("recovery.parts_replayed", r.parts_replayed);
        m.fold_traces(traces);
        m
    }

    fn set(&mut self, name: &str, v: u64) {
        self.counters.insert(name.to_string(), v);
    }

    fn fold_traces(&mut self, traces: &[Vec<TraceEvent>]) {
        for tl in traces {
            // Histogram sources with duration semantics.
            let mut last_send: BTreeMap<(usize, u64), f64> = BTreeMap::new();
            for e in tl {
                match e {
                    TraceEvent::Send {
                        at,
                        to,
                        tag,
                        arrival,
                        ..
                    } => {
                        self.histo_mut("msg.flight_time").record(arrival - at);
                        last_send.insert((*to, tag.0), *at);
                    }
                    TraceEvent::Recv { waited, .. } => {
                        self.histo_mut("recv.wait").record(*waited);
                    }
                    TraceEvent::Retransmit { at, to, tag, .. } => {
                        // Latency from the most recent original
                        // transmission on the same stream to the resend.
                        if let Some(t0) = last_send.get(&(*to, tag.0)) {
                            self.histo_mut("retransmit.latency").record(at - t0);
                        }
                    }
                    TraceEvent::WindowAdvance { inflight, .. } => {
                        // Pipeline occupancy: frames still in flight each
                        // time an ack advanced the window (a count, not a
                        // duration).
                        self.histo_mut("window.inflight").record(*inflight as f64);
                    }
                    _ => {}
                }
            }
            for span in pair_spans(tl) {
                self.histo_mut(&format!("phase.{}", span.phase.as_str()))
                    .record(span.duration());
            }
        }
    }

    fn histo_mut(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_string()).or_default()
    }

    /// Value of a named counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, name-ordered.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms, name-ordered.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Inspector vs executor share of modeled wall time, as fractions of
    /// their combined span time: `(inspect, transfer)`.  `None` when the
    /// run recorded neither phase (e.g. tracing off).
    pub fn inspector_executor_share(&self) -> Option<(f64, f64)> {
        let i = self.histogram("phase.inspect").map_or(0.0, |h| h.sum);
        let x = self.histogram("phase.transfer").map_or(0.0, |h| h.sum);
        let total = i + x;
        if total <= 0.0 {
            return None;
        }
        Some((i / total, x / total))
    }

    /// Human-readable `name value` lines (counters, then histograms).
    pub fn lines(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("{k} {v}"))
            .collect();
        for (k, h) in &self.histograms {
            out.push(format!(
                "{k} count={} sum={:.9} min={:.9} max={:.9} mean={:.9} p50={:.9} p95={:.9} p99={:.9}",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Phase, SpanId};
    use crate::stats::StatsSnapshot;
    use crate::tag::Tag;

    #[test]
    fn histogram_summary() {
        let mut h = Histogram::default();
        h.record(2.0);
        h.record(4.0);
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 4.0);
        assert_eq!(h.mean(), 3.0);
    }

    #[test]
    fn empty_histogram_has_no_nans() {
        let h = Histogram::default();
        assert_eq!(h.mean(), 0.0);
        assert!(!h.mean().is_nan());
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.p99(), 0.0);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 0.0);
    }

    #[test]
    fn quantiles_read_log_buckets() {
        let mut h = Histogram::default();
        // 100 samples: 1ms ×90, 100ms ×9, 1s ×1.
        for _ in 0..90 {
            h.record(1e-3);
        }
        for _ in 0..9 {
            h.record(0.1);
        }
        h.record(1.0);
        assert_eq!(h.count, 100);
        // ~19% bucket resolution: p50 near 1ms, p95 near 100ms, p99
        // near 100ms (the 99th sample), p100 exactly max.
        assert!((h.p50() - 1e-3).abs() / 1e-3 < 0.2, "p50={}", h.p50());
        assert!((h.p95() - 0.1).abs() / 0.1 < 0.2, "p95={}", h.p95());
        assert!((h.p99() - 0.1).abs() / 0.1 < 0.2, "p99={}", h.p99());
        assert_eq!(h.quantile(1.0), 1.0);
        assert_eq!(h.quantile(0.0), h.min);
    }

    #[test]
    fn quantile_clamps_to_envelope() {
        let mut h = Histogram::default();
        h.record(3.5e-4);
        // Single sample: every quantile is exactly that sample.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 3.5e-4);
        }
        // Out-of-range and sub-resolution samples stay finite.
        let mut tiny = Histogram::default();
        tiny.record(0.0);
        tiny.record(-1.0);
        tiny.record(1e20);
        assert!(tiny.quantile(0.5).is_finite());
        assert_eq!(tiny.quantile(1.0), 1e20);
        assert_eq!(tiny.min, -1.0);
    }

    #[test]
    fn share_is_none_without_phase_time_never_nan() {
        let m = MetricsRegistry::default();
        assert!(m.inspector_executor_share().is_none());
    }

    #[test]
    fn registry_folds_stats_and_traces() {
        let mut local = StatsSnapshot::new(2);
        local.faults.retransmits = 3;
        local.session.frames_staged = 2;
        let stats = NetStats::from_locals(vec![local, StatsSnapshot::new(2)]);
        let traces = vec![vec![
            TraceEvent::SpanBegin {
                at: 0.0,
                id: SpanId(1),
                parent: None,
                phase: Phase::Inspect,
                detail: String::new(),
            },
            TraceEvent::SpanEnd {
                at: 1.0,
                id: SpanId(1),
            },
            TraceEvent::Send {
                at: 1.0,
                to: 1,
                tag: Tag::user(0),
                bytes: 8,
                arrival: 1.5,
            },
            TraceEvent::Retransmit {
                at: 2.0,
                to: 1,
                tag: Tag::user(0),
                seq: 0,
                attempt: 1,
            },
            TraceEvent::SpanBegin {
                at: 2.0,
                id: SpanId(2),
                parent: None,
                phase: Phase::Transfer,
                detail: String::new(),
            },
            TraceEvent::SpanEnd {
                at: 5.0,
                id: SpanId(2),
            },
        ]];
        let m = MetricsRegistry::from_run(&stats, &traces);
        assert_eq!(m.counter("fault.retransmits"), 3);
        assert_eq!(m.counter("session.frames_staged"), 2);
        let flight = m.histogram("msg.flight_time").unwrap();
        assert_eq!(flight.count, 1);
        assert!((flight.mean() - 0.5).abs() < 1e-12);
        let rtx = m.histogram("retransmit.latency").unwrap();
        assert!((rtx.max - 1.0).abs() < 1e-12);
        let (i, x) = m.inspector_executor_share().unwrap();
        assert!((i - 0.25).abs() < 1e-12);
        assert!((x - 0.75).abs() < 1e-12);
        assert!(!m.lines().is_empty());
    }
}
