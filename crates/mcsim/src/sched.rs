//! M:N cooperative rank scheduler: green tasks on a virtual clock.
//!
//! The historical runner spawns one OS thread per rank, which tops out at
//! a few hundred ranks (stack + scheduler pressure) and makes every
//! real-time wait (lease windows, silence caps) a source of
//! wall-clock-dependent behavior.  This module replaces threads with
//! **stackful coroutines**: each rank is a green task with its own call
//! stack, multiplexed over a small pool of worker threads.
//!
//! ## Determinism by total order
//!
//! The scheduler runs **exactly one task at a time**, always the runnable
//! task with the lowest `(virtual_time, rank)` key:
//!
//! * a task runs until it blocks on a communication wait (recv, ack wait,
//!   lease window, get retry) and *parks*, reporting its virtual clock;
//! * a send marks the destination runnable with key
//!   `max(dest_clock, arrival)` — the earliest virtual instant the
//!   receiver can observe the message;
//! * the worker pool resumes the lowest-keyed runnable task.
//!
//! Because the execution order is a pure function of virtual timestamps,
//! the same seed and scenario produce the same schedule — and therefore
//! byte-identical traces and `NetStats` — for *any* worker-pool size,
//! which is exactly what the parity tests assert.  Workers buy stack
//! multiplexing and scale (1024 ranks in one process), not parallelism;
//! parallelism would require relaxing the total order and is explicitly
//! traded away for reproducibility.
//!
//! ## Silence without wall clocks
//!
//! The threaded runner bounded "peer never sends" waits with real-time
//! caps (250 ms recv-timeout silence, 50 ms lease windows, 400 ms
//! deadline caps).  Cooperatively, silence is *observable*: when no task
//! is runnable and none is running, the world is **quiescent** — no
//! message is in flight, so no wait can ever be satisfied.  The scheduler
//! then wakes, deterministically (lowest `(clock, rank)` first):
//!
//! 1. if every task finished its program: all service-mode tasks, with
//!    [`WakeCause::Shutdown`] — the run is complete;
//! 2. else one silence-capable waiter with [`WakeCause::Silence`] — it
//!    counts a lease miss / get retry / recv timeout exactly where the
//!    threaded runner counted a real-time window;
//! 3. else (armed deadline) one blocked waiter with `Silence`, surfacing
//!    `DeadlineExceeded`;
//! 4. else every waiter with `Shutdown`: the world is deadlocked, and a
//!    deterministic teardown error beats a hang.
//!
//! ## Park/resume protocol
//!
//! A parking task writes its request into its [`TaskCell`] and switches
//! back to the hosting worker; the *worker* publishes the new state under
//! the scheduler lock only after the context is fully saved, so another
//! worker can never resume a half-parked continuation.  Wake causes flow
//! the other way: the worker writes [`TaskCell::wake`] before switching
//! in, and [`CoopHandle::park`] returns it to the endpoint.
//!
//! ## Stacks
//!
//! Task stacks are allocated raw (`std::alloc`) and never pre-touched, so
//! an idle rank costs a few resident pages regardless of
//! [`COOP_STACK_BYTES`]; 1024 ranks fit comfortably in the documented
//! budget (see `DESIGN.md` §4j).  A canary word at the base of each stack
//! is checked on every switch-out; an overwrite aborts the process,
//! since a silently corrupted frame is not recoverable.
//!
//! The context switch itself is ~30 instructions of inline assembly
//! (x86_64 SysV: callee-saved registers + stack pointer).  On other
//! architectures the world falls back to the thread-per-rank runner.

use std::collections::BinaryHeap;
use std::sync::{Arc, Condvar, Mutex};

/// Default stack size for one cooperative task.  Virtual memory only:
/// untouched pages are never resident.  Override per world with
/// [`crate::world::World::with_stack_bytes`].
pub const COOP_STACK_BYTES: usize = 1 << 20;

/// Why a parked task was resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WakeCause {
    /// At least one message arrived for this rank since it parked.
    Message,
    /// Global quiescence: nothing can ever arrive unless this task acts.
    /// Stands in for the threaded runner's real-time silence windows.
    Silence,
    /// The world is tearing down (run complete, or deterministic
    /// deadlock teardown).
    Shutdown,
}

/// What a task is waiting for when it parks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum ParkKind {
    /// Blocked in a communication wait.  `expiry` is the virtual time at
    /// which the wait would give up on its own (a recv timeout deadline,
    /// a world deadline, or the current clock for settle-now polls).  At
    /// global quiescence the waiter with the *earliest finite* expiry is
    /// woken with [`WakeCause::Silence`]; `f64::INFINITY` waits only wake
    /// on a message (or teardown).
    Wait { expiry: f64 },
    /// The rank's program returned; it keeps answering protocol traffic
    /// until the whole world completes.
    Service,
    /// Cooperative yield: stay runnable at the current clock so
    /// lower-keyed ranks can run (used by non-blocking probe loops).
    Yield,
}

// ---------------------------------------------------------------------------
// Context switch (x86_64 SysV).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
core::arch::global_asm!(
    r#"
    .text
    .globl mcsim_ctx_switch
    .p2align 4
mcsim_ctx_switch:
    push rbp
    push rbx
    push r12
    push r13
    push r14
    push r15
    mov [rdi], rsp
    mov rsp, rsi
    pop r15
    pop r14
    pop r13
    pop r12
    pop rbx
    pop rbp
    ret

    .globl mcsim_coro_thunk
    .p2align 4
mcsim_coro_thunk:
    mov rdi, r12
    xor ebp, ebp
    sub rsp, 8
    call mcsim_coro_entry
    ud2
"#
);

#[cfg(target_arch = "x86_64")]
extern "sysv64" {
    /// Save the current continuation's stack pointer into `*save`, then
    /// restore `target` as the stack pointer and return into it.  The
    /// saved continuation resumes right after this call when someone
    /// switches back.
    fn mcsim_ctx_switch(save: *mut usize, target: usize);
}

#[cfg(target_arch = "x86_64")]
extern "C" {
    /// Initial `ret` target of a fresh task stack (defined in the
    /// `global_asm!` block above): moves the cell pointer from `r12`
    /// into the first argument register and calls [`mcsim_coro_entry`].
    fn mcsim_coro_thunk();
}

/// True when the cooperative runner is available on this target.
pub(crate) const fn coop_supported() -> bool {
    cfg!(target_arch = "x86_64")
}

/// Sentinel written at the base (lowest address) of every task stack.
const STACK_CANARY: u64 = 0x6d63_7369_6d5f_6f6b; // "mcsim_ok"

struct StackMem {
    ptr: *mut u8,
    layout: std::alloc::Layout,
}

impl StackMem {
    fn new(bytes: usize) -> StackMem {
        let size = bytes.max(64 * 1024) & !15;
        let layout = std::alloc::Layout::from_size_align(size, 16).expect("stack layout");
        // Deliberately uninitialized: pages must stay untouched (and
        // therefore non-resident) until the task actually grows into
        // them.
        let ptr = unsafe { std::alloc::alloc(layout) };
        assert!(!ptr.is_null(), "task stack allocation failed");
        StackMem { ptr, layout }
    }

    fn top(&self) -> usize {
        self.ptr as usize + self.layout.size()
    }
}

impl Drop for StackMem {
    fn drop(&mut self) {
        unsafe { std::alloc::dealloc(self.ptr, self.layout) };
    }
}

/// Lifetime-erased task body.  Safety: the world drives every task to
/// completion (or never starts it) before `execute_coop` returns, so the
/// borrows captured inside never outlive their owners.
pub(crate) type TaskBody = Box<dyn FnOnce(*mut TaskCell) + Send>;

/// Per-task control block shared between the hosting worker and the code
/// running *inside* the task (via [`CoopHandle`]).
///
/// Concurrency discipline: fields are only ever touched by (a) the worker
/// currently resuming this task, or (b) the task itself while running on
/// that worker.  Handoff between workers is ordered by the scheduler
/// mutex, which provides the necessary happens-before edges.
pub(crate) struct TaskCell {
    /// Saved stack pointer of the suspended task.
    ctx: usize,
    /// Saved stack pointer of the worker hosting the current slice.
    host: usize,
    /// Set once the task body has returned and the stack is dead.
    finished: bool,
    /// Park request, written by the task just before switching out.
    park: ParkKind,
    /// The task's virtual clock at park time (the scheduler's key input).
    clock: f64,
    /// Wake cause, written by the worker just before switching in.
    wake: WakeCause,
    /// A panic that escaped the task body's own catch (a harness bug);
    /// re-raised on the main thread so it is not silently lost.
    escaped: Option<Box<dyn std::any::Any + Send>>,
    body: Option<TaskBody>,
    stack: StackMem,
}

unsafe impl Send for TaskCell {}

impl TaskCell {
    fn new(stack_bytes: usize, body: TaskBody) -> Box<TaskCell> {
        let stack = StackMem::new(stack_bytes);
        let mut cell = Box::new(TaskCell {
            ctx: 0,
            host: 0,
            finished: false,
            park: ParkKind::Yield,
            clock: 0.0,
            wake: WakeCause::Message,
            escaped: None,
            body: Some(body),
            stack,
        });
        unsafe {
            // Plant the canary at the base (lowest address) of the stack.
            (cell.stack.ptr as *mut u64).write(STACK_CANARY);
            cell.init_stack();
        }
        cell
    }

    /// Lay out the initial frame so the first switch-in pops zeroed
    /// callee-saved registers (with `r12` = cell pointer) and `ret`s into
    /// `mcsim_coro_thunk`, which calls [`mcsim_coro_entry`] with SysV
    /// stack alignment.
    #[cfg(target_arch = "x86_64")]
    unsafe fn init_stack(&mut self) {
        let top = self.stack.top();
        debug_assert_eq!(top % 16, 0);
        let slot = |i: usize| (top - 8 * i) as *mut u64;
        slot(1).write(0); // never-returned-to slot (keeps alignment)
        slot(2).write(mcsim_coro_thunk as *const () as usize as u64); // ret target
        slot(3).write(0); // rbp
        slot(4).write(0); // rbx
        slot(5).write(self as *mut TaskCell as u64); // r12 -> rdi in thunk
        slot(6).write(0); // r13
        slot(7).write(0); // r14
        slot(8).write(0); // r15
        self.ctx = top - 64;
    }

    #[cfg(not(target_arch = "x86_64"))]
    unsafe fn init_stack(&mut self) {
        unreachable!("cooperative runner is x86_64-only; world falls back to threads");
    }

    fn canary_ok(&self) -> bool {
        unsafe { (self.stack.ptr as *const u64).read() == STACK_CANARY }
    }
}

/// Entry point every fresh task stack starts in (called from the asm
/// thunk).  Never returns: on completion it marks the cell finished and
/// switches back to the host forever.
#[cfg(target_arch = "x86_64")]
#[no_mangle]
unsafe extern "sysv64" fn mcsim_coro_entry(cell: *mut TaskCell) -> ! {
    let body = (*cell).body.take().expect("task body runs once");
    // The body contains its own catch_unwind (the supervisor loop); this
    // backstop only exists because unwinding must never reach the asm
    // frame below us.
    if let Err(e) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(cell))) {
        (*cell).escaped = Some(e);
    }
    (*cell).finished = true;
    loop {
        mcsim_ctx_switch(&mut (*cell).ctx, (*cell).host);
    }
}

/// Switch from inside a task back to its hosting worker.  Must only be
/// called on the task's own stack.
unsafe fn switch_to_host(cell: *mut TaskCell) {
    #[cfg(target_arch = "x86_64")]
    mcsim_ctx_switch(&mut (*cell).ctx, (*cell).host);
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = cell;
        unreachable!("cooperative runner is x86_64-only");
    }
}

/// Switch from a worker into a (fresh or parked) task.  Must only be
/// called by the worker that owns the `Running` transition.
unsafe fn switch_to_task(cell: *mut TaskCell) {
    #[cfg(target_arch = "x86_64")]
    mcsim_ctx_switch(&mut (*cell).host, (*cell).ctx);
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = cell;
        unreachable!("cooperative runner is x86_64-only");
    }
}

// ---------------------------------------------------------------------------
// Scheduler.
// ---------------------------------------------------------------------------

/// Heap entry ordering: min (key, rank) first.  `key` is finite by
/// construction (virtual clocks and arrivals are finite).
#[derive(PartialEq)]
struct HeapEntry {
    key: f64,
    rank: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the minimum first.
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.rank.cmp(&self.rank))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Whether a task is still executing its program or only answering
/// protocol traffic (the cooperative analogue of the threaded runner's
/// post-return `service_protocol` loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Program,
    Service,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Queued in the heap under `Slot::key`.
    Runnable,
    /// Currently executing on some worker (at most one world-wide).
    Running,
    /// Parked in a communication wait.
    Waiting,
    /// Task body returned; stack is dead.
    Done,
}

struct Slot {
    mode: Mode,
    state: State,
    /// Valid when `Waiting`: virtual expiry of the wait.  Finite values
    /// compete for the Silence wake at quiescence; infinity means the
    /// wait only ends on a message or teardown.
    expiry: f64,
    /// Virtual clock the task last reported when parking.
    clock: f64,
    /// Scheduling key while `Runnable` (stale heap entries carry an old
    /// key and are discarded on pop).
    key: f64,
    /// At least one message arrived since the task last started running.
    mail: bool,
    /// Minimum arrival time among those messages.
    mail_min: f64,
    /// Cause to deliver at the next dispatch.
    wake: WakeCause,
}

struct Inner {
    slots: Vec<Slot>,
    heap: BinaryHeap<HeapEntry>,
    /// A task is currently executing; dispatch is strictly serialized.
    running: bool,
    /// Tasks still in `Mode::Program`.
    unfinished: usize,
    /// Tasks not yet `Done`.
    live: usize,
}

/// Shared scheduler state: one per cooperative world run.
pub(crate) struct Sched {
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl Sched {
    pub(crate) fn new(size: usize) -> Sched {
        let slots = (0..size)
            .map(|_| Slot {
                mode: Mode::Program,
                state: State::Runnable,
                expiry: f64::INFINITY,
                clock: 0.0,
                key: 0.0,
                mail: false,
                mail_min: f64::INFINITY,
                wake: WakeCause::Message,
            })
            .collect();
        let heap = (0..size).map(|rank| HeapEntry { key: 0.0, rank }).collect();
        Sched {
            inner: Mutex::new(Inner {
                slots,
                heap,
                running: false,
                unfinished: size,
                live: size,
            }),
            cv: Condvar::new(),
        }
    }

    /// A message (data, protocol frame, or poison) was enqueued for
    /// `to` with the given modeled arrival time.  Called from the
    /// sender's slice; makes the destination runnable if it was parked.
    pub(crate) fn notify(&self, to: usize, arrival: f64) {
        let mut g = self.inner.lock().unwrap();
        let s = &mut g.slots[to];
        s.mail = true;
        if arrival < s.mail_min {
            s.mail_min = arrival;
        }
        match s.state {
            State::Waiting => {
                s.state = State::Runnable;
                s.wake = WakeCause::Message;
                s.key = s.clock.max(s.mail_min);
                let key = s.key;
                g.heap.push(HeapEntry { key, rank: to });
                drop(g);
                self.cv.notify_one();
            }
            State::Runnable => {
                // Decrease-key: push a better duplicate, the stale entry
                // is discarded on pop.
                let nk = s.clock.max(s.mail_min);
                if nk < s.key {
                    s.key = nk;
                    g.heap.push(HeapEntry { key: nk, rank: to });
                }
            }
            // Running: its own drain will pick the message up (mail is
            // latched for the park decision).  Done: every program has
            // finished; the message can no longer matter.
            State::Running | State::Done => {}
        }
    }

    /// Wake reason the dispatcher decided for `rank`; read by the worker
    /// right before switching in.
    fn take_dispatch(&self, g: &mut Inner) -> Option<(usize, WakeCause)> {
        while let Some(e) = g.heap.pop() {
            let s = &mut g.slots[e.rank];
            if s.state != State::Runnable || e.key != s.key {
                continue; // stale duplicate
            }
            s.state = State::Running;
            s.mail = false;
            s.mail_min = f64::INFINITY;
            return Some((e.rank, s.wake));
        }
        None
    }

    /// Handle global quiescence: nothing runnable, nothing running, but
    /// live tasks remain.  Always enqueues at least one wake.
    fn quiesce(&self, g: &mut Inner) {
        if g.unfinished == 0 {
            // Every program returned; release the service loops.
            for rank in 0..g.slots.len() {
                let s = &mut g.slots[rank];
                if s.state == State::Waiting {
                    s.state = State::Runnable;
                    s.wake = WakeCause::Shutdown;
                    s.key = s.clock;
                    let key = s.key;
                    g.heap.push(HeapEntry { key, rank });
                }
            }
            return;
        }
        // One silence-capable program waiter: earliest virtual expiry
        // wins (rank breaks ties), so a short recv timeout fires before a
        // distant world deadline — the same order the threaded runner's
        // real-time windows would resolve in.
        let pick = g
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.mode == Mode::Program && s.state == State::Waiting && s.expiry.is_finite()
            })
            .min_by(|(ar, a), (br, b)| a.expiry.total_cmp(&b.expiry).then(ar.cmp(br)))
            .map(|(r, _)| r);
        if let Some(rank) = pick {
            let s = &mut g.slots[rank];
            s.state = State::Runnable;
            s.wake = WakeCause::Silence;
            s.key = s.clock;
            let key = s.key;
            g.heap.push(HeapEntry { key, rank });
            return;
        }
        // True deadlock: no message in flight, nobody silence-capable.
        // Deterministic teardown (SimError::Shutdown at every waiter)
        // instead of a hang.
        if std::env::var_os("MCSIM_SCHED_DEBUG").is_some() {
            for (r, s) in g.slots.iter().enumerate() {
                eprintln!(
                    "mcsim-sched deadlock: rank={r} mode={:?} state={:?} clock={} mail={} expiry={}",
                    s.mode, s.state, s.clock, s.mail, s.expiry
                );
            }
        }
        for rank in 0..g.slots.len() {
            let s = &mut g.slots[rank];
            if s.state == State::Waiting {
                s.state = State::Runnable;
                s.wake = WakeCause::Shutdown;
                s.key = s.clock;
                let key = s.key;
                g.heap.push(HeapEntry { key, rank });
            }
        }
    }

    /// Process a park (or completion) after the worker regained control.
    /// Returns true when the whole world is done.
    fn after_slice(&self, rank: usize, cell: &TaskCell) -> bool {
        let mut g = self.inner.lock().unwrap();
        g.running = false;
        if cell.finished {
            let was_program = {
                let s = &mut g.slots[rank];
                s.state = State::Done;
                let was = s.mode == Mode::Program;
                // Defensive: bodies park Service before finishing, but a
                // panic escaping the harness could skip that.
                s.mode = Mode::Service;
                was
            };
            if was_program {
                g.unfinished -= 1;
            }
            g.live -= 1;
        } else {
            let left_program = {
                let s = &mut g.slots[rank];
                s.clock = cell.clock;
                matches!(cell.park, ParkKind::Service) && s.mode == Mode::Program
            };
            if left_program {
                g.slots[rank].mode = Mode::Service;
                g.unfinished -= 1;
            }
            let requeue = {
                let s = &mut g.slots[rank];
                match cell.park {
                    // A yielding task stays runnable at its own clock.
                    ParkKind::Yield => true,
                    // Mail that raced in during the slice (a self-send or
                    // a protocol echo) wakes the task immediately.
                    ParkKind::Wait { expiry } => {
                        if s.mail {
                            true
                        } else {
                            s.state = State::Waiting;
                            s.expiry = expiry;
                            false
                        }
                    }
                    ParkKind::Service => {
                        if s.mail {
                            true
                        } else {
                            s.state = State::Waiting;
                            s.expiry = f64::INFINITY;
                            false
                        }
                    }
                }
            };
            if requeue {
                let s = &mut g.slots[rank];
                s.state = State::Runnable;
                s.wake = WakeCause::Message;
                s.key = if s.mail {
                    s.clock.max(s.mail_min)
                } else {
                    s.clock
                };
                let key = s.key;
                g.heap.push(HeapEntry { key, rank });
            }
        }
        let done = g.live == 0;
        drop(g);
        self.cv.notify_all();
        done
    }
}

/// The cell table workers index into.  Access discipline: the worker
/// holding the `running` transition for rank `r` is the only one touching
/// cell `r`; the scheduler mutex orders handoffs.
pub(crate) struct CellTable {
    // Boxed on purpose: each cell's coroutine context stores
    // `self as *mut TaskCell` at construction, so the cell's address
    // must survive being collected into (or moved with) the Vec.
    #[allow(clippy::vec_box)]
    cells: Vec<Box<TaskCell>>,
}

unsafe impl Sync for CellTable {}

impl CellTable {
    pub(crate) fn new(stack_bytes: usize, bodies: Vec<TaskBody>) -> CellTable {
        CellTable {
            cells: bodies
                .into_iter()
                .map(|b| TaskCell::new(stack_bytes, b))
                .collect(),
        }
    }

    pub(crate) fn cell_ptr(&self, rank: usize) -> *mut TaskCell {
        let b: &TaskCell = &self.cells[rank];
        b as *const TaskCell as *mut TaskCell
    }

    /// Panics that escaped task harnesses (bugs), to re-raise.
    pub(crate) fn take_escaped(&mut self) -> Option<Box<dyn std::any::Any + Send>> {
        for c in &mut self.cells {
            if let Some(e) = c.escaped.take() {
                return Some(e);
            }
        }
        None
    }
}

/// Worker loop: dispatch the lowest-keyed runnable task, run its slice,
/// publish its park.  Exits when every task is done.
pub(crate) fn worker_loop(sched: &Sched, table: &CellTable) {
    loop {
        let (rank, wake) = {
            let mut g = sched.inner.lock().unwrap();
            loop {
                if g.live == 0 {
                    return;
                }
                if !g.running {
                    if let Some((rank, wake)) = sched.take_dispatch(&mut g) {
                        g.running = true;
                        break (rank, wake);
                    }
                    // Quiescent: manufacture the deterministic wake-up.
                    sched.quiesce(&mut g);
                    continue;
                }
                g = sched.cv.wait(g).unwrap();
            }
        };
        let cell = table.cell_ptr(rank);
        unsafe {
            (*cell).wake = wake;
            switch_to_task(cell);
            if !(*cell).canary_ok() {
                // The guard word at the stack base was overwritten: frames
                // below it are already corrupt, so unwinding is unsafe.
                eprintln!(
                    "mcsim: task stack overflow on rank {rank} \
                     (raise World::with_stack_bytes); aborting"
                );
                std::process::abort();
            }
        }
        let done = sched.after_slice(rank, unsafe { &*cell });
        if done {
            return;
        }
    }
}

/// Handle the endpoint holds on its own task + the scheduler: park and
/// notify entry points used by the communication layer.
pub(crate) struct CoopHandle {
    cell: *mut TaskCell,
    sched: Arc<Sched>,
}

unsafe impl Send for CoopHandle {}

impl CoopHandle {
    pub(crate) fn new(cell: *mut TaskCell, sched: Arc<Sched>) -> CoopHandle {
        CoopHandle { cell, sched }
    }

    /// Park the current task and return why it was resumed.  Must be
    /// called from inside the task (on its coroutine stack).
    pub(crate) fn park(&self, kind: ParkKind, clock: f64) -> WakeCause {
        unsafe {
            (*self.cell).park = kind;
            (*self.cell).clock = clock;
            switch_to_host(self.cell);
            (*self.cell).wake
        }
    }

    /// Mark `to` runnable because a message with `arrival` was enqueued.
    pub(crate) fn notify(&self, to: usize, arrival: f64) {
        self.sched.notify(to, arrival);
    }
}

impl std::fmt::Debug for CoopHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CoopHandle")
    }
}

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    use super::*;

    /// Bare coroutine round trip: resume / park / resume-to-completion.
    #[test]
    fn coroutine_switches_and_finishes() {
        let sched = Arc::new(Sched::new(1));
        let log: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let log2 = log.clone();
        let sched2 = sched.clone();
        let body: TaskBody = Box::new(move |cell| {
            let h = CoopHandle::new(cell, sched2.clone());
            log2.lock().unwrap().push("first");
            let w = h.park(ParkKind::Yield, 1.0);
            assert_eq!(w, WakeCause::Message);
            log2.lock().unwrap().push("second");
        });
        let table = CellTable::new(COOP_STACK_BYTES, vec![body]);
        worker_loop(&sched, &table);
        assert_eq!(*log.lock().unwrap(), vec!["first", "second"]);
    }

    /// Two tasks ping-ponging runnability purely through notify: the
    /// scheduler picks the lowest (clock, rank) key every time.
    #[test]
    fn lowest_key_runs_first() {
        let sched = Arc::new(Sched::new(2));
        let order: Arc<Mutex<Vec<(usize, u32)>>> = Arc::new(Mutex::new(Vec::new()));
        let mut bodies: Vec<TaskBody> = Vec::new();
        for rank in 0..2usize {
            let order = order.clone();
            let sched = sched.clone();
            bodies.push(Box::new(move |cell| {
                let h = CoopHandle::new(cell, sched.clone());
                for round in 0..3u32 {
                    order.lock().unwrap().push((rank, round));
                    // Wake the peer "now" and wait for it to wake us.
                    h.notify(1 - rank, (round + 1) as f64);
                    if round < 2 {
                        let w = h.park(
                            ParkKind::Wait {
                                expiry: f64::INFINITY,
                            },
                            (round + 1) as f64,
                        );
                        assert_eq!(w, WakeCause::Message);
                    }
                }
                // Completion protocol: park in service mode once.
                loop {
                    if h.park(ParkKind::Service, 3.0) == WakeCause::Shutdown {
                        break;
                    }
                }
            }));
        }
        let table = CellTable::new(COOP_STACK_BYTES, bodies);
        worker_loop(&sched, &table);
        let got = order.lock().unwrap().clone();
        // Rank 0 starts (tie on key 0 broken by rank), and rounds
        // alternate deterministically.
        assert_eq!(got, vec![(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2)]);
    }

    /// With no messages in flight and no silence-capable waiter, the
    /// scheduler tears the world down instead of hanging.
    #[test]
    fn deadlock_becomes_shutdown() {
        let sched = Arc::new(Sched::new(1));
        let sched2 = sched.clone();
        let saw: Arc<Mutex<Option<WakeCause>>> = Arc::new(Mutex::new(None));
        let saw2 = saw.clone();
        let body: TaskBody = Box::new(move |cell| {
            let h = CoopHandle::new(cell, sched2.clone());
            let w = h.park(
                ParkKind::Wait {
                    expiry: f64::INFINITY,
                },
                0.0,
            );
            *saw2.lock().unwrap() = Some(w);
        });
        let table = CellTable::new(COOP_STACK_BYTES, vec![body]);
        worker_loop(&sched, &table);
        assert_eq!(*saw.lock().unwrap(), Some(WakeCause::Shutdown));
    }

    /// Silence-capable waits get a Silence wake at quiescence, earliest
    /// expiry first.
    #[test]
    fn silence_wakes_lowest_clock_first() {
        let sched = Arc::new(Sched::new(2));
        let order: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let mut bodies: Vec<TaskBody> = Vec::new();
        for rank in 0..2usize {
            let order = order.clone();
            let sched = sched.clone();
            bodies.push(Box::new(move |cell| {
                let h = CoopHandle::new(cell, sched.clone());
                // Rank 1 parks at a lower clock than rank 0.
                let clock = if rank == 0 { 5.0 } else { 2.0 };
                let w = h.park(ParkKind::Wait { expiry: clock }, clock);
                assert_eq!(w, WakeCause::Silence);
                order.lock().unwrap().push(rank);
            }));
        }
        let table = CellTable::new(COOP_STACK_BYTES, bodies);
        worker_loop(&sched, &table);
        assert_eq!(*order.lock().unwrap(), vec![1, 0]);
    }

    /// The deepest stack user: make sure slices survive real frames.
    #[test]
    fn coroutine_survives_deep_call_chain() {
        fn burn(n: usize, acc: u64) -> u64 {
            // Enough locals to consume real stack without overflowing.
            let pad = [acc; 8];
            if n == 0 {
                pad.iter().sum()
            } else {
                burn(n - 1, acc + 1) + pad[0]
            }
        }
        let sched = Arc::new(Sched::new(1));
        let out: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
        let out2 = out.clone();
        let body: TaskBody = Box::new(move |_cell| {
            *out2.lock().unwrap() = burn(2000, 0);
        });
        let table = CellTable::new(COOP_STACK_BYTES, vec![body]);
        worker_loop(&sched, &table);
        assert!(*out.lock().unwrap() > 0);
    }
}
