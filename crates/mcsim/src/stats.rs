//! Message traffic accounting.
//!
//! Each endpoint counts messages and bytes per destination.  The paper
//! argues (§4.1.4) that Meta-Chaos generates *exactly* the same number and
//! sizes of messages as hand-crafted message passing; the integration tests
//! use these counters to assert that property.

use crate::message::Rank;

/// Fault-injection and reliable-transport counters for one rank.
///
/// The injection counters (`*_injected`) are charged on the *sender* and
/// are deterministic per [`crate::fault::FaultPlan`] seed, as are
/// `retransmits` and `timeouts`.  The receiver-side hygiene counters
/// (`dup_frames_dropped`, `stale_acks_dropped`) depend on how late traffic
/// drains during teardown and are best-effort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Message copies destroyed in flight by the fault plan.
    pub drops_injected: u64,
    /// Extra message copies created by the duplication fault.
    pub dups_injected: u64,
    /// Data frames bit-flipped in flight.
    pub corrupts_injected: u64,
    /// Message copies given extra virtual latency.
    pub delays_injected: u64,
    /// Reliable-layer data-frame retransmissions performed by this rank.
    pub retransmits: u64,
    /// Virtual-clock timeouts observed while waiting for acks (each
    /// precedes a retransmit or a give-up) plus `recv_timeout` expiries.
    pub timeouts: u64,
    /// ACK control frames this rank sent.
    pub acks_sent: u64,
    /// NACK control frames this rank sent (tombstone or checksum failure).
    pub nacks_sent: u64,
    /// Duplicate data frames discarded by receiver-side dedup.
    pub dup_frames_dropped: u64,
    /// Control frames that matched no pending send (late/duplicate acks).
    pub stale_acks_dropped: u64,
    /// Sender stalls on a full sliding window (frames or bytes).  Depends
    /// on wall-clock thread interleaving like the hygiene counters:
    /// best-effort, not seed-deterministic.
    pub window_stalls: u64,
    /// Cumulative acks that retired at least one pending frame and
    /// advanced a send window.
    pub window_advances: u64,
    /// Ack-triggered sweeps that retransmitted one or more
    /// deadline-expired frames in a burst.
    pub retransmit_bursts: u64,
}

impl FaultStats {
    fn since(&self, earlier: &FaultStats) -> FaultStats {
        FaultStats {
            drops_injected: self.drops_injected.saturating_sub(earlier.drops_injected),
            dups_injected: self.dups_injected.saturating_sub(earlier.dups_injected),
            corrupts_injected: self
                .corrupts_injected
                .saturating_sub(earlier.corrupts_injected),
            delays_injected: self.delays_injected.saturating_sub(earlier.delays_injected),
            retransmits: self.retransmits.saturating_sub(earlier.retransmits),
            timeouts: self.timeouts.saturating_sub(earlier.timeouts),
            acks_sent: self.acks_sent.saturating_sub(earlier.acks_sent),
            nacks_sent: self.nacks_sent.saturating_sub(earlier.nacks_sent),
            dup_frames_dropped: self
                .dup_frames_dropped
                .saturating_sub(earlier.dup_frames_dropped),
            stale_acks_dropped: self
                .stale_acks_dropped
                .saturating_sub(earlier.stale_acks_dropped),
            window_stalls: self.window_stalls.saturating_sub(earlier.window_stalls),
            window_advances: self.window_advances.saturating_sub(earlier.window_advances),
            retransmit_bursts: self
                .retransmit_bursts
                .saturating_sub(earlier.retransmit_bursts),
        }
    }

    fn add(&mut self, other: &FaultStats) {
        self.drops_injected += other.drops_injected;
        self.dups_injected += other.dups_injected;
        self.corrupts_injected += other.corrupts_injected;
        self.delays_injected += other.delays_injected;
        self.retransmits += other.retransmits;
        self.timeouts += other.timeouts;
        self.acks_sent += other.acks_sent;
        self.nacks_sent += other.nacks_sent;
        self.dup_frames_dropped += other.dup_frames_dropped;
        self.stale_acks_dropped += other.stale_acks_dropped;
        self.window_stalls += other.window_stalls;
        self.window_advances += other.window_advances;
        self.retransmit_bursts += other.retransmit_bursts;
    }
}

/// Session-layer (transactional transfer) counters for one rank: the
/// staging / manifest machinery `meta_chaos::datamove` builds on top of the
/// reliable link layer records its decisions here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Data halves staged on the receive side before commit.
    pub frames_staged: u64,
    /// Coupled transfers aborted before touching the destination
    /// (manifest mismatch, stale schedule, or peer failure mid-transfer).
    pub transfers_aborted: u64,
    /// Replayed data halves from an earlier transfer attempt discarded by
    /// transfer-epoch dedup (idempotent retry).
    pub stale_halves_dropped: u64,
    /// Stale-schedule rejections (`McError::StaleSchedule`) reported by
    /// executors on this rank.
    pub stale_schedules: u64,
    /// Coupled transfers whose staged halves were unpacked into the
    /// destination (the all-or-nothing commit ran).  The exactly-once
    /// oracle of the recovery subsystem asserts this never exceeds the
    /// number of logical transfer steps per rank.
    pub transfers_committed: u64,
}

impl SessionStats {
    fn since(&self, earlier: &SessionStats) -> SessionStats {
        SessionStats {
            frames_staged: self.frames_staged.saturating_sub(earlier.frames_staged),
            transfers_aborted: self
                .transfers_aborted
                .saturating_sub(earlier.transfers_aborted),
            stale_halves_dropped: self
                .stale_halves_dropped
                .saturating_sub(earlier.stale_halves_dropped),
            stale_schedules: self.stale_schedules.saturating_sub(earlier.stale_schedules),
            transfers_committed: self
                .transfers_committed
                .saturating_sub(earlier.transfers_committed),
        }
    }

    fn add(&mut self, other: &SessionStats) {
        self.frames_staged += other.frames_staged;
        self.transfers_aborted += other.transfers_aborted;
        self.stale_halves_dropped += other.stale_halves_dropped;
        self.stale_schedules += other.stale_schedules;
        self.transfers_committed += other.transfers_committed;
    }
}

/// Crash-recovery counters for one rank: the lease-based failure detector
/// and the supervisor restart path record their decisions here.  All four
/// have an exact trace-event counterpart (count-parity tested).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryStats {
    /// Heartbeat broadcasts this rank sent (one per beat, not per peer).
    pub heartbeats_sent: u64,
    /// Lease expiries observed: a wait gave up on a silent peer after the
    /// configured number of missed lease windows.
    pub leases_expired: u64,
    /// Times *this* rank was respawned from its checkpoint by the
    /// supervisor (its incarnation number equals this count).
    pub ranks_recovered: u64,
    /// Already-committed transfer parts re-received and discarded while
    /// resuming an interrupted transfer (the replay the dedup machinery
    /// absorbed instead of double-committing).
    pub parts_replayed: u64,
}

impl RecoveryStats {
    fn since(&self, earlier: &RecoveryStats) -> RecoveryStats {
        RecoveryStats {
            heartbeats_sent: self.heartbeats_sent.saturating_sub(earlier.heartbeats_sent),
            leases_expired: self.leases_expired.saturating_sub(earlier.leases_expired),
            ranks_recovered: self.ranks_recovered.saturating_sub(earlier.ranks_recovered),
            parts_replayed: self.parts_replayed.saturating_sub(earlier.parts_replayed),
        }
    }

    fn add(&mut self, other: &RecoveryStats) {
        self.heartbeats_sent += other.heartbeats_sent;
        self.leases_expired += other.leases_expired;
        self.ranks_recovered += other.ranks_recovered;
        self.parts_replayed += other.parts_replayed;
    }
}

/// Counters local to one rank, snapshot-able at any point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Messages sent to each destination rank.
    pub msgs_to: Vec<u64>,
    /// Payload bytes sent to each destination rank.
    pub bytes_to: Vec<u64>,
    /// Schedule-cache hits recorded on this rank (see `meta_chaos::api`).
    pub sched_cache_hits: u64,
    /// Schedule-cache misses (full inspector runs) recorded on this rank.
    pub sched_cache_misses: u64,
    /// Fault-injection and reliable-transport counters.
    pub faults: FaultStats,
    /// Transactional-transfer (session layer) counters.
    pub session: SessionStats,
    /// Crash-recovery (failure detector / supervisor) counters.
    pub recovery: RecoveryStats,
}

impl StatsSnapshot {
    pub(crate) fn new(world: usize) -> Self {
        StatsSnapshot {
            msgs_to: vec![0; world],
            bytes_to: vec![0; world],
            sched_cache_hits: 0,
            sched_cache_misses: 0,
            faults: FaultStats::default(),
            session: SessionStats::default(),
            recovery: RecoveryStats::default(),
        }
    }

    /// Total messages sent.
    pub fn total_msgs(&self) -> u64 {
        self.msgs_to.iter().sum()
    }

    /// Total payload bytes sent.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_to.iter().sum()
    }

    /// Counter delta `self - earlier` (for bracketing one operation).
    ///
    /// Saturating: a snapshot taken from a different (e.g. reused or
    /// fresh) `World`, where some counter went backwards, clamps that
    /// field to zero instead of panicking on u64 underflow.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        assert_eq!(self.msgs_to.len(), earlier.msgs_to.len());
        StatsSnapshot {
            msgs_to: self
                .msgs_to
                .iter()
                .zip(&earlier.msgs_to)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            bytes_to: self
                .bytes_to
                .iter()
                .zip(&earlier.bytes_to)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            sched_cache_hits: self
                .sched_cache_hits
                .saturating_sub(earlier.sched_cache_hits),
            sched_cache_misses: self
                .sched_cache_misses
                .saturating_sub(earlier.sched_cache_misses),
            faults: self.faults.since(&earlier.faults),
            session: self.session.since(&earlier.session),
            recovery: self.recovery.since(&earlier.recovery),
        }
    }

    pub(crate) fn record(&mut self, to: Rank, bytes: usize) {
        self.msgs_to[to] += 1;
        self.bytes_to[to] += bytes as u64;
    }

    pub(crate) fn record_sched_cache(&mut self, hit: bool) {
        if hit {
            self.sched_cache_hits += 1;
        } else {
            self.sched_cache_misses += 1;
        }
    }
}

/// Whole-world traffic: `pair[s][d]` = messages sent from rank `s` to `d`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetStats {
    /// Per source rank: messages sent to each destination.
    pub msgs: Vec<Vec<u64>>,
    /// Per source rank: bytes sent to each destination.
    pub bytes: Vec<Vec<u64>>,
    /// Schedule-cache hits summed over all ranks.
    pub sched_cache_hits: u64,
    /// Schedule-cache misses summed over all ranks.
    pub sched_cache_misses: u64,
    /// Fault/reliability counters summed over all ranks.
    pub faults: FaultStats,
    /// Session-layer (transactional transfer) counters summed over all
    /// ranks.
    pub session: SessionStats,
    /// Crash-recovery counters summed over all ranks.
    pub recovery: RecoveryStats,
}

impl NetStats {
    pub(crate) fn from_locals(locals: Vec<StatsSnapshot>) -> Self {
        let mut faults = FaultStats::default();
        let mut session = SessionStats::default();
        let mut recovery = RecoveryStats::default();
        let mut sched_cache_hits = 0;
        let mut sched_cache_misses = 0;
        for s in &locals {
            faults.add(&s.faults);
            session.add(&s.session);
            recovery.add(&s.recovery);
            sched_cache_hits += s.sched_cache_hits;
            sched_cache_misses += s.sched_cache_misses;
        }
        NetStats {
            msgs: locals.iter().map(|s| s.msgs_to.clone()).collect(),
            bytes: locals.into_iter().map(|s| s.bytes_to).collect(),
            sched_cache_hits,
            sched_cache_misses,
            faults,
            session,
            recovery,
        }
    }

    /// Total number of messages in the run.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().flatten().sum()
    }

    /// Total payload bytes in the run.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().flatten().sum()
    }

    /// Every link that carried traffic, as `(src, dst, msgs, bytes)` in
    /// `(src, dst)` order — what the critical-path analyzer joins its
    /// per-link wire attribution against.
    pub fn active_links(&self) -> Vec<(usize, usize, u64, u64)> {
        let mut out = Vec::new();
        for (src, row) in self.msgs.iter().enumerate() {
            for (dst, &n) in row.iter().enumerate() {
                if n > 0 {
                    let b = self.bytes.get(src).and_then(|r| r.get(dst)).copied();
                    out.push((src, dst, n, b.unwrap_or(0)));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = StatsSnapshot::new(3);
        s.record(1, 100);
        s.record(1, 50);
        s.record(2, 8);
        assert_eq!(s.total_msgs(), 3);
        assert_eq!(s.total_bytes(), 158);
        assert_eq!(s.msgs_to, vec![0, 2, 1]);
    }

    #[test]
    fn since_gives_delta() {
        let mut a = StatsSnapshot::new(2);
        a.record(0, 10);
        let before = a.clone();
        a.record(1, 20);
        a.record(1, 5);
        let d = a.since(&before);
        assert_eq!(d.msgs_to, vec![0, 2]);
        assert_eq!(d.bytes_to, vec![0, 25]);
    }

    #[test]
    fn since_saturates_instead_of_underflowing() {
        // A snapshot from a fresh `World` compared against one from an
        // earlier, busier run: every counter went "backwards".  `since`
        // must clamp to zero, not panic on u64 underflow.
        let mut busy = StatsSnapshot::new(2);
        busy.record(1, 100);
        busy.record(1, 50);
        busy.sched_cache_hits = 3;
        busy.faults.retransmits = 7;
        busy.session.frames_staged = 4;
        let fresh = StatsSnapshot::new(2);
        let d = fresh.since(&busy);
        assert_eq!(d.total_msgs(), 0);
        assert_eq!(d.total_bytes(), 0);
        assert_eq!(d.sched_cache_hits, 0);
        assert_eq!(d.faults.retransmits, 0);
        assert_eq!(d.session.frames_staged, 0);
    }

    #[test]
    fn netstats_aggregates() {
        let mut a = StatsSnapshot::new(2);
        a.record(1, 7);
        let mut b = StatsSnapshot::new(2);
        b.record(0, 3);
        let n = NetStats::from_locals(vec![a, b]);
        assert_eq!(n.total_msgs(), 2);
        assert_eq!(n.total_bytes(), 10);
        assert_eq!(n.msgs[0][1], 1);
        assert_eq!(n.msgs[1][0], 1);
        assert_eq!(n.active_links(), vec![(0, 1, 1, 7), (1, 0, 1, 3)]);
    }

    #[test]
    fn session_counters_delta_and_aggregate() {
        let mut a = StatsSnapshot::new(2);
        a.session.frames_staged = 4;
        a.session.transfers_aborted = 1;
        let before = a.clone();
        a.session.frames_staged = 7;
        a.session.stale_halves_dropped = 2;
        let d = a.since(&before);
        assert_eq!(d.session.frames_staged, 3);
        assert_eq!(d.session.transfers_aborted, 0);
        assert_eq!(d.session.stale_halves_dropped, 2);
        let mut b = StatsSnapshot::new(2);
        b.session.stale_schedules = 5;
        let n = NetStats::from_locals(vec![a, b]);
        assert_eq!(n.session.frames_staged, 7);
        assert_eq!(n.session.stale_schedules, 5);
    }
}
