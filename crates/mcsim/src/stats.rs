//! Message traffic accounting.
//!
//! Each endpoint counts messages and bytes per destination.  The paper
//! argues (§4.1.4) that Meta-Chaos generates *exactly* the same number and
//! sizes of messages as hand-crafted message passing; the integration tests
//! use these counters to assert that property.

use crate::message::Rank;

/// Counters local to one rank, snapshot-able at any point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Messages sent to each destination rank.
    pub msgs_to: Vec<u64>,
    /// Payload bytes sent to each destination rank.
    pub bytes_to: Vec<u64>,
    /// Schedule-cache hits recorded on this rank (see `meta_chaos::api`).
    pub sched_cache_hits: u64,
    /// Schedule-cache misses (full inspector runs) recorded on this rank.
    pub sched_cache_misses: u64,
}

impl StatsSnapshot {
    pub(crate) fn new(world: usize) -> Self {
        StatsSnapshot {
            msgs_to: vec![0; world],
            bytes_to: vec![0; world],
            sched_cache_hits: 0,
            sched_cache_misses: 0,
        }
    }

    /// Total messages sent.
    pub fn total_msgs(&self) -> u64 {
        self.msgs_to.iter().sum()
    }

    /// Total payload bytes sent.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_to.iter().sum()
    }

    /// Counter delta `self - earlier` (for bracketing one operation).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        assert_eq!(self.msgs_to.len(), earlier.msgs_to.len());
        StatsSnapshot {
            msgs_to: self
                .msgs_to
                .iter()
                .zip(&earlier.msgs_to)
                .map(|(a, b)| a - b)
                .collect(),
            bytes_to: self
                .bytes_to
                .iter()
                .zip(&earlier.bytes_to)
                .map(|(a, b)| a - b)
                .collect(),
            sched_cache_hits: self.sched_cache_hits - earlier.sched_cache_hits,
            sched_cache_misses: self.sched_cache_misses - earlier.sched_cache_misses,
        }
    }

    pub(crate) fn record(&mut self, to: Rank, bytes: usize) {
        self.msgs_to[to] += 1;
        self.bytes_to[to] += bytes as u64;
    }

    pub(crate) fn record_sched_cache(&mut self, hit: bool) {
        if hit {
            self.sched_cache_hits += 1;
        } else {
            self.sched_cache_misses += 1;
        }
    }
}

/// Whole-world traffic: `pair[s][d]` = messages sent from rank `s` to `d`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetStats {
    /// Per source rank: messages sent to each destination.
    pub msgs: Vec<Vec<u64>>,
    /// Per source rank: bytes sent to each destination.
    pub bytes: Vec<Vec<u64>>,
}

impl NetStats {
    pub(crate) fn from_locals(locals: Vec<StatsSnapshot>) -> Self {
        NetStats {
            msgs: locals.iter().map(|s| s.msgs_to.clone()).collect(),
            bytes: locals.into_iter().map(|s| s.bytes_to).collect(),
        }
    }

    /// Total number of messages in the run.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().flatten().sum()
    }

    /// Total payload bytes in the run.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().flatten().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = StatsSnapshot::new(3);
        s.record(1, 100);
        s.record(1, 50);
        s.record(2, 8);
        assert_eq!(s.total_msgs(), 3);
        assert_eq!(s.total_bytes(), 158);
        assert_eq!(s.msgs_to, vec![0, 2, 1]);
    }

    #[test]
    fn since_gives_delta() {
        let mut a = StatsSnapshot::new(2);
        a.record(0, 10);
        let before = a.clone();
        a.record(1, 20);
        a.record(1, 5);
        let d = a.since(&before);
        assert_eq!(d.msgs_to, vec![0, 2]);
        assert_eq!(d.bytes_to, vec![0, 25]);
    }

    #[test]
    fn netstats_aggregates() {
        let mut a = StatsSnapshot::new(2);
        a.record(1, 7);
        let mut b = StatsSnapshot::new(2);
        b.record(0, 3);
        let n = NetStats::from_locals(vec![a, b]);
        assert_eq!(n.total_msgs(), 2);
        assert_eq!(n.total_bytes(), 10);
        assert_eq!(n.msgs[0][1], 1);
        assert_eq!(n.msgs[1][0], 1);
    }
}
