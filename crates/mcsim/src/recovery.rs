//! Crash-recovery knobs and the in-world checkpoint store.
//!
//! Recovery has three moving parts, all configured here:
//!
//! * **Leases** — when heartbeats are armed, every rank broadcasts a
//!   periodic beat (virtual-clock cadence, NIC plane) carrying its
//!   *incarnation*.  A rank waiting on a peer counts real-time silence
//!   windows against the peer's lease; when the configured number of
//!   windows lapse with nothing heard, the wait fails with
//!   [`SimError::PeerEvicted`](crate::SimError::PeerEvicted) — a
//!   membership decision, distinct from the transport retry-budget
//!   give-up (`PeerTimeout`).
//! * **Incarnations** — each supervisor restart bumps the rank's
//!   incarnation.  Peers learn the new incarnation from the recovery
//!   beat, purge any reliable streams still keyed to the old life, and
//!   waits armed against the old incarnation fail fast so session-layer
//!   retry loops can re-settle.
//! * **Checkpoints** — the [`CkptStore`] is a world-level, thread-safe
//!   key/value store every endpoint holds a handle to.  It survives a
//!   rank's crash (it lives outside the rank closure), which is what
//!   makes restart-from-checkpoint possible: the respawned closure
//!   restores objects and schedules instead of recomputing them.

use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Tunables for failure detection and bounded control-plane retries.
///
/// The default configuration keeps heartbeats **off** and reproduces the
/// historical one-sided get retry policy (4 attempts × 80 ms silence), so
/// worlds that never opt in behave exactly as before.
///
/// The [`Duration`] fields are *real-time* caps only under the legacy
/// threaded runner.  The cooperative runner observes silence exactly —
/// the scheduler wakes a waiter at global quiescence, the only virtual
/// instant a real-time window could meaningfully have expired — so under
/// it these durations act as silence *windows* whose length never burns
/// wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Attempts for an unacknowledged one-sided `get` request before the
    /// caller sees a typed `PeerTimeout`.
    pub get_attempts: u32,
    /// Real-time silence allowed per one-sided `get` attempt.
    pub get_silence: Duration,
    /// Arm the lease-based failure detector: ranks broadcast heartbeats
    /// and waits evict peers whose lease lapses.
    pub heartbeats: bool,
    /// Virtual seconds between heartbeat broadcasts from one rank.
    pub beat_interval: f64,
    /// One lease window: real-time silence a waiting rank tolerates from
    /// the watched peer before counting a missed lease.
    pub lease_window: Duration,
    /// Missed lease windows before the watched peer is evicted.
    pub lease_misses: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            get_attempts: 4,
            get_silence: Duration::from_millis(80),
            heartbeats: false,
            beat_interval: 1e-3,
            lease_window: Duration::from_millis(50),
            lease_misses: 4,
        }
    }
}

/// One checkpointed value: a serialized payload plus an optional opaque
/// in-memory snapshot (e.g. a cloned object or schedule) that a restarted
/// rank can restore without redoing collective work.
pub struct CkptEntry {
    /// Wire-serialized payload (whatever the writer chose to pack).
    pub bytes: Vec<u8>,
    /// Opaque typed snapshot, downcast on restore.
    pub state: Option<Box<dyn Any + Send>>,
}

/// World-level checkpoint store shared by every rank's endpoint.
///
/// Keys are `(rank, name)` so ranks never collide; the store is kept
/// outside the rank closures, which is what lets a supervisor restart a
/// crashed rank *from* it.  Locking is poison-tolerant: a rank that
/// panicked while holding the lock must not wedge its own recovery.
#[derive(Clone, Default)]
pub struct CkptStore {
    inner: Arc<Mutex<HashMap<(usize, String), CkptEntry>>>,
}

impl CkptStore {
    fn lock(&self) -> MutexGuard<'_, HashMap<(usize, String), CkptEntry>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Store serialized bytes under `(rank, key)`, replacing any previous
    /// checkpoint there.
    pub fn put(&self, rank: usize, key: &str, bytes: Vec<u8>) {
        self.lock()
            .insert((rank, key.to_string()), CkptEntry { bytes, state: None });
    }

    /// Store serialized bytes plus a typed in-memory snapshot.
    pub fn put_with_state<T: Any + Send>(&self, rank: usize, key: &str, bytes: Vec<u8>, state: T) {
        self.lock().insert(
            (rank, key.to_string()),
            CkptEntry {
                bytes,
                state: Some(Box::new(state)),
            },
        );
    }

    /// The serialized payload checkpointed under `(rank, key)`, if any.
    pub fn bytes(&self, rank: usize, key: &str) -> Option<Vec<u8>> {
        self.lock()
            .get(&(rank, key.to_string()))
            .map(|e| e.bytes.clone())
    }

    /// A clone of the typed snapshot under `(rank, key)`.  `None` when no
    /// checkpoint exists, it carries no state, or the type does not match.
    pub fn state<T: Any + Clone>(&self, rank: usize, key: &str) -> Option<T> {
        self.lock()
            .get(&(rank, key.to_string()))
            .and_then(|e| e.state.as_ref())
            .and_then(|s| s.downcast_ref::<T>())
            .cloned()
    }

    /// True when a checkpoint exists under `(rank, key)`.
    pub fn has(&self, rank: usize, key: &str) -> bool {
        self.lock().contains_key(&(rank, key.to_string()))
    }

    /// Remove the checkpoint under `(rank, key)` (no-op if absent).
    pub fn remove(&self, rank: usize, key: &str) {
        self.lock().remove(&(rank, key.to_string()));
    }

    /// Number of checkpoints currently stored, across all ranks.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when no checkpoints are stored.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

impl fmt::Debug for CkptStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CkptStore({} entries)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip_and_replace() {
        let store = CkptStore::default();
        assert!(store.is_empty());
        store.put(0, "obj", vec![1, 2, 3]);
        assert_eq!(store.bytes(0, "obj"), Some(vec![1, 2, 3]));
        // Same key, other rank: independent.
        assert_eq!(store.bytes(1, "obj"), None);
        store.put(0, "obj", vec![9]);
        assert_eq!(store.bytes(0, "obj"), Some(vec![9]));
        assert_eq!(store.len(), 1);
        store.remove(0, "obj");
        assert!(!store.has(0, "obj"));
    }

    #[test]
    fn typed_state_restores_by_clone() {
        let store = CkptStore::default();
        store.put_with_state(2, "sched", vec![], vec![7u64, 8, 9]);
        // Restoring twice must work: a double fault restores again.
        let a: Vec<u64> = store.state(2, "sched").expect("typed state");
        let b: Vec<u64> = store.state(2, "sched").expect("typed state");
        assert_eq!(a, vec![7, 8, 9]);
        assert_eq!(a, b);
        // Wrong type: None, not a panic.
        assert!(store.state::<String>(2, "sched").is_none());
        // Bytes-only entries carry no state.
        store.put(2, "flag", vec![1]);
        assert!(store.state::<Vec<u64>>(2, "flag").is_none());
    }

    #[test]
    fn default_config_matches_historical_get_policy() {
        let cfg = RecoveryConfig::default();
        assert_eq!(cfg.get_attempts, 4);
        assert_eq!(cfg.get_silence, Duration::from_millis(80));
        assert!(!cfg.heartbeats);
    }
}
