//! A small, explicit, little-endian wire codec.
//!
//! The simulated machine moves raw bytes; this module gives the runtime
//! libraries a typed layer on top without pulling in a serialization
//! framework.  Everything is fixed-layout little-endian, with lengths for
//! variable-size values, so encode/decode round-trips are exact and cheap.

use crate::error::SimError;

/// Types that can be written to and read from a message payload.
pub trait Wire: Sized {
    /// Append this value's encoding to `out`.
    fn write(&self, out: &mut Vec<u8>);
    /// Decode a value from the reader.
    fn read(r: &mut WireReader<'_>) -> Result<Self, SimError>;

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write(&mut out);
        out
    }

    /// Decode from a complete buffer, requiring all bytes to be consumed.
    fn from_bytes(bytes: &[u8]) -> Result<Self, SimError> {
        let mut r = WireReader::new(bytes);
        let v = Self::read(&mut r)?;
        r.finish()?;
        Ok(v)
    }

    /// Append the encoding of every element of `slice` to `out`.
    ///
    /// The byte layout is identical to writing each element in turn; scalar
    /// types override this with a single bulk byte copy, which is what makes
    /// `Vec<f64>`-style payloads (the executor's data messages) encode in
    /// one `memcpy` instead of N codec calls.
    fn write_slice(slice: &[Self], out: &mut Vec<u8>) {
        for v in slice {
            v.write(out);
        }
    }

    /// Decode `n` consecutive values, appending them to `out`.  Bulk
    /// counterpart of [`Wire::write_slice`]; same layout as `n` reads.
    fn read_extend(r: &mut WireReader<'_>, n: usize, out: &mut Vec<Self>) -> Result<(), SimError> {
        for _ in 0..n {
            out.push(Self::read(r)?);
        }
        Ok(())
    }

    /// Decode `out.len()` consecutive values straight into an existing
    /// slice — the allocation-free counterpart of [`Wire::read_extend`],
    /// used to unpack message payloads directly into library storage.
    fn read_slice(r: &mut WireReader<'_>, out: &mut [Self]) -> Result<(), SimError> {
        for slot in out.iter_mut() {
            *slot = Self::read(r)?;
        }
        Ok(())
    }
}

/// Cursor over a received payload.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Start reading `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SimError> {
        if self.remaining() < n {
            return Err(SimError::Decode(format!(
                "need {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Assert the payload was fully consumed.
    pub fn finish(&self) -> Result<(), SimError> {
        if self.remaining() != 0 {
            return Err(SimError::Decode(format!(
                "{} trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

macro_rules! impl_wire_numeric {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            #[inline]
            fn write(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read(r: &mut WireReader<'_>) -> Result<Self, SimError> {
                let n = std::mem::size_of::<$t>();
                let b = r.take(n)?;
                Ok(<$t>::from_le_bytes(b.try_into().expect("sized take")))
            }

            fn write_slice(slice: &[Self], out: &mut Vec<u8>) {
                if cfg!(target_endian = "little") {
                    // The wire format *is* the little-endian in-memory
                    // layout, so the whole slice is one byte copy.
                    // SAFETY: any initialized scalar slice is valid as bytes.
                    let bytes = unsafe {
                        std::slice::from_raw_parts(
                            slice.as_ptr().cast::<u8>(),
                            std::mem::size_of_val(slice),
                        )
                    };
                    out.extend_from_slice(bytes);
                } else {
                    for v in slice {
                        v.write(out);
                    }
                }
            }

            fn read_extend(
                r: &mut WireReader<'_>,
                n: usize,
                out: &mut Vec<Self>,
            ) -> Result<(), SimError> {
                let size = std::mem::size_of::<$t>();
                let total = n
                    .checked_mul(size)
                    .ok_or_else(|| SimError::Decode("element count overflows".into()))?;
                // Taking all bytes up front also guards allocation against
                // hostile lengths: the bytes must actually be present.
                let b = r.take(total)?;
                if cfg!(target_endian = "little") {
                    out.reserve(n);
                    // SAFETY: the reserved tail is writable for `total`
                    // bytes, scalars have no invalid bit patterns, and the
                    // source/destination cannot overlap.
                    unsafe {
                        std::ptr::copy_nonoverlapping(
                            b.as_ptr(),
                            out.as_mut_ptr().add(out.len()).cast::<u8>(),
                            total,
                        );
                        out.set_len(out.len() + n);
                    }
                } else {
                    out.reserve(n);
                    for chunk in b.chunks_exact(size) {
                        out.push(<$t>::from_le_bytes(chunk.try_into().expect("sized chunk")));
                    }
                }
                Ok(())
            }

            fn read_slice(r: &mut WireReader<'_>, out: &mut [Self]) -> Result<(), SimError> {
                let size = std::mem::size_of::<$t>();
                let total = out
                    .len()
                    .checked_mul(size)
                    .ok_or_else(|| SimError::Decode("element count overflows".into()))?;
                let b = r.take(total)?;
                if cfg!(target_endian = "little") {
                    // SAFETY: `out` is an initialized scalar slice of
                    // exactly `total` bytes; source and destination are
                    // distinct allocations.
                    unsafe {
                        std::ptr::copy_nonoverlapping(
                            b.as_ptr(),
                            out.as_mut_ptr().cast::<u8>(),
                            total,
                        );
                    }
                } else {
                    for (slot, chunk) in out.iter_mut().zip(b.chunks_exact(size)) {
                        *slot = <$t>::from_le_bytes(chunk.try_into().expect("sized chunk"));
                    }
                }
                Ok(())
            }
        }
    )*};
}

impl_wire_numeric!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl Wire for usize {
    fn write(&self, out: &mut Vec<u8>) {
        (*self as u64).write(out);
    }
    fn read(r: &mut WireReader<'_>) -> Result<Self, SimError> {
        Ok(u64::read(r)? as usize)
    }
}

impl Wire for bool {
    fn write(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn read(r: &mut WireReader<'_>) -> Result<Self, SimError> {
        Ok(r.take(1)?[0] != 0)
    }
}

impl Wire for () {
    fn write(&self, _out: &mut Vec<u8>) {}
    fn read(_r: &mut WireReader<'_>) -> Result<Self, SimError> {
        Ok(())
    }
}

impl Wire for String {
    fn write(&self, out: &mut Vec<u8>) {
        self.len().write(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn read(r: &mut WireReader<'_>) -> Result<Self, SimError> {
        let n = usize::read(r)?;
        let b = r.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|e| SimError::Decode(e.to_string()))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn write(&self, out: &mut Vec<u8>) {
        self.len().write(out);
        T::write_slice(self, out);
    }
    fn read(r: &mut WireReader<'_>) -> Result<Self, SimError> {
        let n = usize::read(r)?;
        // Guard against hostile/corrupt lengths blowing up allocation.
        let mut v = Vec::with_capacity(n.min(r.remaining().max(16)));
        T::read_extend(r, n, &mut v)?;
        Ok(v)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn write(&self, out: &mut Vec<u8>) {
        match self {
            None => false.write(out),
            Some(v) => {
                true.write(out);
                v.write(out);
            }
        }
    }
    fn read(r: &mut WireReader<'_>) -> Result<Self, SimError> {
        if bool::read(r)? {
            Ok(Some(T::read(r)?))
        } else {
            Ok(None)
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn write(&self, out: &mut Vec<u8>) {
        self.0.write(out);
        self.1.write(out);
    }
    fn read(r: &mut WireReader<'_>) -> Result<Self, SimError> {
        Ok((A::read(r)?, B::read(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn write(&self, out: &mut Vec<u8>) {
        self.0.write(out);
        self.1.write(out);
        self.2.write(out);
    }
    fn read(r: &mut WireReader<'_>) -> Result<Self, SimError> {
        Ok((A::read(r)?, B::read(r)?, C::read(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire> Wire for (A, B, C, D) {
    fn write(&self, out: &mut Vec<u8>) {
        self.0.write(out);
        self.1.write(out);
        self.2.write(out);
        self.3.write(out);
    }
    fn read(r: &mut WireReader<'_>) -> Result<Self, SimError> {
        Ok((A::read(r)?, B::read(r)?, C::read(r)?, D::read(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let b = v.to_bytes();
        assert_eq!(T::from_bytes(&b).unwrap(), v);
    }

    #[test]
    fn numeric_roundtrips() {
        roundtrip(0u8);
        roundtrip(0xfeedu16);
        roundtrip(123456789u32);
        roundtrip(u64::MAX);
        roundtrip(-5i32);
        roundtrip(-5_000_000_000i64);
        roundtrip(1.5f32);
        roundtrip(std::f64::consts::PI);
        roundtrip(usize::MAX / 2);
    }

    #[test]
    fn composite_roundtrips() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip("hello Meta-Chaos".to_string());
        roundtrip(Some(vec![(1usize, 2.0f64), (3, 4.0)]));
        roundtrip(Option::<u32>::None);
        roundtrip(((1u8, 2u16, 3u32), vec![true, false]));
        roundtrip((1usize, 2usize, 3usize, vec![0.5f64]));
        roundtrip(());
        roundtrip(Vec::<f64>::new());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut b = 5u32.to_bytes();
        b.push(0);
        assert!(matches!(u32::from_bytes(&b), Err(SimError::Decode(_))));
    }

    #[test]
    fn short_read_rejected() {
        let b = 5u64.to_bytes();
        assert!(matches!(u64::from_bytes(&b[..3]), Err(SimError::Decode(_))));
    }

    #[test]
    fn corrupt_length_does_not_overallocate() {
        // A Vec<u64> claiming usize::MAX elements with no bytes behind it
        // must fail cleanly, not OOM.
        let b = usize::MAX.to_bytes();
        assert!(Vec::<u64>::from_bytes(&b).is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut b = Vec::new();
        2usize.write(&mut b);
        b.extend_from_slice(&[0xff, 0xfe]);
        assert!(String::from_bytes(&b).is_err());
    }
}
