//! One-sided communication: exposed windows with `put`/`get` and
//! remote-completion notification.
//!
//! The latency-hiding designs this follows (BCL's distributed containers,
//! DART-MPI's put/get with local-completion semantics) decouple data
//! movement from the target's program: the target *exposes* a window once
//! and keeps computing; origins write into it (`put`) or read from it
//! (`get`) without the target posting a matching receive.
//!
//! * [`expose`] registers a local byte window under a small integer id.
//! * [`put`] streams bytes into a remote window.  Puts ride the sliding-
//!   window reliable transport on a *sink stream* — a
//!   [`StreamTag`](crate::reliable::StreamTag) whose stream id carries the
//!   sink bits — so they get chunking, retransmission, and dedup for
//!   free, and they are applied to the target's window **at intake** (the
//!   simulated NIC), charging nothing to the target's program clock.
//!   [`put_notify`] additionally bumps the window's notification count on
//!   completion; the target observes it with [`wait_notify`].
//!   [`put_flush`] waits for transport-level remote completion (all
//!   frames acked) of every put this origin issued to one window.
//! * [`get`] is a request/reply RPC on the dedicated
//!   [`Tag::CLASS_ONESIDED_CTRL`] class: the target's NIC answers from
//!   the exposed window at protocol turnaround time, again without
//!   involving the target's program.
//!
//! Puts that arrive before the target has exposed the window are held and
//! applied (in arrival order) when [`expose`] runs — an origin never has
//! to synchronize with the target's exposure.
//!
//! The control class `0x7` is excluded from the default fault mask (it is
//! pure control plane, like the reliable ACK path); the put data plane
//! inherits the full fault tolerance of the reliable transport.
//! Notification ordering is deterministic for a single writer per window
//! (frames of one stream are delivered in order); with multiple
//! concurrent writers the *count* is deterministic but the interleaving
//! of their arrival times is not specified.

use std::collections::HashMap;

use crate::endpoint::Endpoint;
use crate::error::SimError;
use crate::message::{Body, Message, Rank};
use crate::reliable::{self, StreamTag};
use crate::tag::Tag;

/// Bit pattern marking a reliable stream id as a one-sided sink.
const SINK_BITS: u32 = 0x0800_0000;
/// Two-bit discriminator field: both bits set (e.g. the manifest stream
/// `0x0FFF_FFFF`) is *not* a sink, so session streams can keep using ids
/// with high bits.
const SINK_MASK: u32 = 0x0C00_0000;
/// Window ids live in the low 26 bits of a sink stream id.
const WIN_MASK: u32 = 0x03FF_FFFF;

const OP_PUT: u8 = 1;
const OP_PUT_NOTIFY: u8 = 2;

/// Put payload header: `[op u8][offset u64]`.
const PUT_HDR: usize = 9;

const K_GET: u8 = 1;
const K_GET_REPLY: u8 = 2;
/// Heartbeat frame: `[K_BEAT][incarnation u64][clock f64]`, broadcast by
/// the failure detector (see [`crate::recovery::RecoveryConfig`]).
pub(crate) const K_BEAT: u8 = 3;

/// Stream id heartbeats ride on: class `0x7`, discriminator bits clear
/// (not a sink), below the session streams' high range.
const BEAT_STREAM: u32 = 0x02FF_FFFF;

/// The control tag heartbeat broadcasts travel on.
pub(crate) fn beat_tag() -> Tag {
    Tag::new(
        Tag::FIRST_USER_CTX,
        (Tag::CLASS_ONESIDED_CTRL << 28) | BEAT_STREAM,
    )
}

/// True when a reliable DATA tag addresses a one-sided sink window
/// rather than a matched-receive stream.
pub(crate) fn is_sink_tag(t: Tag) -> bool {
    t.value() & SINK_MASK == SINK_BITS
}

fn sink_stream(win: u32) -> u32 {
    SINK_BITS | (win & WIN_MASK)
}

fn win_of_tag(t: Tag) -> u32 {
    t.value() & WIN_MASK
}

/// The reliable stream an origin's puts to `(ctx, win)` travel on.
fn sink_tag(ctx: u32, win: u32) -> StreamTag {
    StreamTag::new(ctx, sink_stream(win))
}

/// The control tag get-RPC traffic for `(ctx, win)` uses.
fn get_tag(ctx: u32, win: u32) -> Tag {
    Tag::new(ctx, (Tag::CLASS_ONESIDED_CTRL << 28) | sink_stream(win))
}

#[derive(Debug)]
struct OsWindow {
    data: Vec<u8>,
    /// Arrival times of completed notifying puts, in application order.
    notify_times: Vec<f64>,
}

#[derive(Debug)]
struct PutOp {
    offset: usize,
    data: Vec<u8>,
    notify: bool,
    arrival: f64,
}

#[derive(Debug)]
struct GetReply {
    arrival: f64,
    ok: bool,
    data: Vec<u8>,
}

/// Per-endpoint one-sided state: exposed windows, early puts, and
/// outstanding get requests.
#[derive(Debug, Default)]
pub(crate) struct OnesidedState {
    windows: HashMap<u32, OsWindow>,
    /// Puts that arrived before their window was exposed, in arrival
    /// order, keyed by window id.
    pending_puts: Vec<(u32, PutOp)>,
    get_replies: HashMap<u64, GetReply>,
    next_req: u64,
}

impl OnesidedState {
    /// Drop all one-sided state from the crashed life — exposed windows,
    /// early puts, buffered replies — but keep the request-id counter
    /// monotone so a late reply from the old life can never satisfy a
    /// request issued by the new one.
    pub(crate) fn reset_keep_reqs(&mut self) {
        self.windows.clear();
        self.pending_puts.clear();
        self.get_replies.clear();
    }
}

/// Expose `data` as one-sided window `win` on this rank.  Puts that
/// already arrived for `win` are applied now, in arrival order.  Exposing
/// a window id twice replaces the previous window (its bytes are
/// returned, as from [`window_bytes`]).
pub fn expose(ep: &mut Endpoint, win: u32, data: Vec<u8>) -> Option<Vec<u8>> {
    let win = win & WIN_MASK;
    let prev = ep.os.windows.insert(
        win,
        OsWindow {
            data,
            notify_times: Vec::new(),
        },
    );
    let mut early: Vec<PutOp> = Vec::new();
    ep.os.pending_puts.retain_mut(|(w, op)| {
        if *w == win {
            early.push(PutOp {
                offset: op.offset,
                data: std::mem::take(&mut op.data),
                notify: op.notify,
                arrival: op.arrival,
            });
            false
        } else {
            true
        }
    });
    for op in early {
        apply_op(ep, win, op);
    }
    prev.map(|w| w.data)
}

/// Withdraw window `win`, returning its current bytes (with every applied
/// put visible).  Subsequent puts to `win` are held as pending again.
pub fn window_bytes(ep: &mut Endpoint, win: u32) -> Option<Vec<u8>> {
    ep.os.windows.remove(&(win & WIN_MASK)).map(|w| w.data)
}

/// Notifications observed so far on local window `win`.
pub fn notify_count(ep: &Endpoint, win: u32) -> usize {
    ep.os
        .windows
        .get(&(win & WIN_MASK))
        .map_or(0, |w| w.notify_times.len())
}

fn post_put(
    ep: &mut Endpoint,
    target: Rank,
    ctx: u32,
    win: u32,
    offset: usize,
    data: &[u8],
    op: u8,
) -> Result<(), SimError> {
    let mut payload = ep.take_buf();
    payload.push(op);
    payload.extend_from_slice(&(offset as u64).to_le_bytes());
    payload.extend_from_slice(data);
    reliable_put_send(ep, target, ctx, win, payload)
}

fn reliable_put_send(
    ep: &mut Endpoint,
    target: Rank,
    ctx: u32,
    win: u32,
    payload: Vec<u8>,
) -> Result<(), SimError> {
    reliable::reliable_send(ep, target, sink_tag(ctx, win), payload)
}

/// Stream `data` into remote window `win` on `target` at byte `offset`.
/// Returns once every frame is posted (local completion); use
/// [`put_flush`] for transport-level remote completion.
pub fn put(
    ep: &mut Endpoint,
    target: Rank,
    ctx: u32,
    win: u32,
    offset: usize,
    data: &[u8],
) -> Result<(), SimError> {
    post_put(ep, target, ctx, win, offset, data, OP_PUT)
}

/// Like [`put`], but the target's window records a completion
/// notification (observable via [`wait_notify`]) when the final frame is
/// applied.
pub fn put_notify(
    ep: &mut Endpoint,
    target: Rank,
    ctx: u32,
    win: u32,
    offset: usize,
    data: &[u8],
) -> Result<(), SimError> {
    post_put(ep, target, ctx, win, offset, data, OP_PUT_NOTIFY)
}

/// Wait until every put this origin issued toward `(target, ctx, win)`
/// has been acknowledged by the target's transport (remote completion).
pub fn put_flush(ep: &mut Endpoint, target: Rank, ctx: u32, win: u32) -> Result<(), SimError> {
    reliable::flush_send(ep, target, sink_tag(ctx, win))
}

/// Block until local window `win` has observed at least `n` notifying
/// puts, advancing this rank's clock to the `n`-th notification's arrival.
pub fn wait_notify(ep: &mut Endpoint, win: u32, n: usize) -> Result<(), SimError> {
    let win = win & WIN_MASK;
    if n == 0 {
        return Ok(());
    }
    loop {
        let t = ep
            .os
            .windows
            .get(&win)
            .and_then(|w| w.notify_times.get(n - 1).copied());
        if let Some(t) = t {
            ep.advance_to(t);
            return Ok(());
        }
        ep.pump_one()?;
    }
}

/// Read `len` bytes at `offset` from remote window `win` on `target`.
/// The target's NIC answers from the exposed window at protocol
/// turnaround time; the target's program is not involved.  Fails with
/// [`SimError::Decode`] when the window is not exposed or the range is
/// out of bounds, and with [`SimError::PeerTimeout`] when the request or
/// reply is lost for the whole retry budget (a faulted 0x7 class).
///
/// The request and reply ride tag class 0x7 with no sequencing of their
/// own, so a faulted control plane loses them whole; re-sending under the
/// same request id is idempotent (a late or duplicated reply just
/// overwrites the same `get_replies` slot).  The attempt budget and the
/// real-time silence window separating attempts come from the world's
/// [`crate::recovery::RecoveryConfig`] (default: 4 × 80 ms).
pub fn get(
    ep: &mut Endpoint,
    target: Rank,
    ctx: u32,
    win: u32,
    offset: usize,
    len: usize,
) -> Result<Vec<u8>, SimError> {
    let tag = get_tag(ctx, win);
    let req = ep.os.next_req;
    ep.os.next_req += 1;
    let attempts = ep.recovery.get_attempts;
    let silence = ep.recovery.get_silence;
    for attempt in 0..attempts {
        let mut frame = ep.take_buf();
        frame.push(K_GET);
        frame.extend_from_slice(&req.to_le_bytes());
        frame.extend_from_slice(&(offset as u64).to_le_bytes());
        frame.extend_from_slice(&(len as u64).to_le_bytes());
        ep.send(target, tag, frame);
        loop {
            if let Some(reply) = ep.os.get_replies.remove(&req) {
                // Mirror a matched receive: wait for the reply's arrival
                // and pay the receive cost on its frame bytes.
                ep.accept_chunk(target, tag, reply.arrival, reply.data.len() + 10);
                if !reply.ok {
                    return Err(SimError::Decode(format!(
                        "one-sided get: window {win} rejected [{offset}, +{len}) on rank {target}"
                    )));
                }
                return Ok(reply.data);
            }
            // An armed eviction baseline fails the RPC fast: the target
            // restarted, and its new life serves a different world of
            // windows.
            ep.check_evicted(target)?;
            // Silence means the request or its reply was lost in flight —
            // fall out to re-send the same request id.
            if !ep.pump_some(silence)? {
                ep.mark(|| {
                    format!(
                        "onesided get retry req={req} win={win} attempt={}",
                        attempt + 1
                    )
                });
                break;
            }
        }
    }
    Err(SimError::PeerTimeout { rank: target })
}

fn apply_op(ep: &mut Endpoint, win: u32, op: PutOp) {
    let Some(w) = ep.os.windows.get_mut(&win) else {
        ep.os.pending_puts.push((win, op));
        return;
    };
    let end = op.offset.checked_add(op.data.len());
    match end {
        Some(end) if end <= w.data.len() => {
            w.data[op.offset..end].copy_from_slice(&op.data);
            if op.notify {
                w.notify_times.push(op.arrival);
            }
        }
        _ => {
            let (off, len, wlen) = (op.offset, op.data.len(), w.data.len());
            ep.mark(|| {
                format!("onesided put out of range win={win} off={off} len={len} window={wlen}")
            });
        }
    }
}

/// Apply one completed put message to its sink window.  Called by the
/// reliable intake (NIC plane) once all frames of the put assembled; the
/// target's program clock is never charged.
pub(crate) fn apply_put(ep: &mut Endpoint, src: Rank, tag: Tag, payload: Vec<u8>, arrival: f64) {
    let win = win_of_tag(tag);
    if payload.len() < PUT_HDR {
        ep.mark(|| format!("onesided put truncated from rank {src} win={win}"));
        return;
    }
    let op = payload[0];
    if op != OP_PUT && op != OP_PUT_NOTIFY {
        ep.mark(|| format!("onesided put bad op {op} from rank {src} win={win}"));
        return;
    }
    let offset = u64::from_le_bytes(payload[1..9].try_into().unwrap()) as usize;
    apply_op(
        ep,
        win,
        PutOp {
            offset,
            data: payload[PUT_HDR..].to_vec(),
            notify: op == OP_PUT_NOTIFY,
            arrival,
        },
    );
}

/// Intake for [`Tag::CLASS_ONESIDED_CTRL`] traffic: GET requests are
/// answered from the exposed window at NIC turnaround; GET replies are
/// filed for the waiting origin.  The class is excluded from the default
/// fault mask; under a plan that faults it anyway, lost requests or
/// replies are re-issued by [`get`]'s bounded retry (same request id, so
/// duplicate service is idempotent) and surface as
/// [`SimError::PeerTimeout`] once the attempt budget is spent.
pub(crate) fn intake_ctrl(ep: &mut Endpoint, msg: Message) {
    let Body::Data(bytes) = &msg.body else {
        // Tombstones and poison never carry a usable control frame;
        // poison is filtered before intake, dropped requests are lost.
        return;
    };
    if bytes.is_empty() {
        return;
    }
    let src = msg.src;
    let tag = msg.tag;
    let arrival = msg.arrival;
    match bytes[0] {
        K_GET if bytes.len() >= 25 => {
            let req = u64::from_le_bytes(bytes[1..9].try_into().unwrap());
            let offset = u64::from_le_bytes(bytes[9..17].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[17..25].try_into().unwrap()) as usize;
            let win = win_of_tag(tag);
            let slice = ep.os.windows.get(&win).and_then(|w| {
                let end = offset.checked_add(len)?;
                w.data.get(offset..end)
            });
            let mut reply = Vec::with_capacity(10 + slice.map_or(0, |s| s.len()));
            reply.push(K_GET_REPLY);
            reply.extend_from_slice(&req.to_le_bytes());
            match slice {
                Some(s) => {
                    reply.push(1);
                    reply.extend_from_slice(s);
                }
                None => reply.push(0),
            }
            let at = reliable::turnaround(ep, arrival);
            ep.nic_send(src, tag, reply, at);
        }
        K_GET_REPLY if bytes.len() >= 10 => {
            let req = u64::from_le_bytes(bytes[1..9].try_into().unwrap());
            let ok = bytes[9] == 1;
            let data = bytes[10..].to_vec();
            ep.os
                .get_replies
                .insert(req, GetReply { arrival, ok, data });
        }
        K_BEAT if bytes.len() >= 17 => {
            let inc = u64::from_le_bytes(bytes[1..9].try_into().unwrap());
            ep.note_peer_incarnation(src, inc);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MachineModel;
    use crate::reliable::ReliableConfig;
    use crate::world::World;

    const CTX: u32 = Tag::FIRST_USER_CTX;

    #[test]
    fn sink_tags_are_disjoint_from_session_streams() {
        let st = sink_tag(CTX, 5);
        assert!(is_sink_tag(st.data()));
        // Ordinary session streams (small ids) are not sinks.
        assert!(!is_sink_tag(StreamTag::new(CTX, 3).data()));
        // The manifest stream has both discriminator bits set: not a sink.
        assert!(!is_sink_tag(StreamTag::new(CTX, 0x0FFF_FFFF).data()));
        assert_eq!(get_tag(CTX, 5).class(), Tag::CLASS_ONESIDED_CTRL);
    }

    #[test]
    fn put_lands_in_exposed_window_without_target_recv() {
        let world = World::with_model(2, MachineModel::sp2());
        let out = world.run(|ep| {
            if ep.rank() == 0 {
                expose(ep, 1, vec![0u8; 64]);
                wait_notify(ep, 1, 1).unwrap();
                window_bytes(ep, 1).unwrap()
            } else {
                put(ep, 0, CTX, 1, 8, &[7u8; 16]).unwrap();
                put_notify(ep, 0, CTX, 1, 40, &[9u8; 4]).unwrap();
                put_flush(ep, 0, CTX, 1).unwrap();
                Vec::new()
            }
        });
        let win = &out.results[0];
        assert_eq!(&win[8..24], &[7u8; 16]);
        assert_eq!(&win[40..44], &[9u8; 4]);
        assert_eq!(win[0], 0);
        assert_eq!(win[24], 0);
    }

    #[test]
    fn put_before_expose_is_held_and_applied() {
        // Self-puts on a 1-rank world: the put is pumped (and applied, or
        // held) during the flush, strictly before the window exists.
        let world = World::with_model(1, MachineModel::zero());
        let out = world.run(|ep| {
            put_notify(ep, 0, CTX, 2, 4, &[0xABu8; 8]).unwrap();
            put_flush(ep, 0, CTX, 2).unwrap();
            expose(ep, 2, vec![0u8; 16]);
            assert_eq!(notify_count(ep, 2), 1);
            wait_notify(ep, 2, 1).unwrap();
            window_bytes(ep, 2).unwrap()
        });
        assert_eq!(&out.results[0][4..12], &[0xABu8; 8]);
    }

    #[test]
    fn large_put_streams_in_chunks() {
        let cfg = ReliableConfig {
            chunk_bytes: 1024,
            ..ReliableConfig::default()
        };
        let n = 10 * 1024;
        let world = World::with_model(2, MachineModel::zero()).with_reliable_config(cfg);
        let out = world.run(move |ep| {
            if ep.rank() == 0 {
                expose(ep, 3, vec![0u8; n]);
                wait_notify(ep, 3, 1).unwrap();
                window_bytes(ep, 3).unwrap()
            } else {
                let data: Vec<u8> = (0..n).map(|i| (i % 249) as u8).collect();
                put_notify(ep, 0, CTX, 3, 0, &data).unwrap();
                put_flush(ep, 0, CTX, 3).unwrap();
                data
            }
        });
        assert_eq!(out.results[0], out.results[1]);
        // The put went out as multiple reliable frames (header + 10 KiB
        // over 1 KiB chunks), not one giant frame.
        assert!(out.stats.msgs[1][0] > 9);
    }

    #[test]
    fn get_reads_remote_window_and_checks_bounds() {
        let world = World::with_model(2, MachineModel::sp2());
        let out = world.run(|ep| {
            if ep.rank() == 0 {
                let data: Vec<u8> = (0..64u8).collect();
                expose(ep, 4, data);
                // Return immediately: the teardown service loop answers
                // the RPC from the NIC plane.
                Vec::new()
            } else {
                let got = get(ep, 0, CTX, 4, 16, 8).unwrap();
                assert!(get(ep, 0, CTX, 4, 60, 8).is_err(), "oob get must fail");
                assert!(get(ep, 0, CTX, 9, 0, 1).is_err(), "unknown window");
                got
            }
        });
        assert_eq!(out.results[1], (16..24u8).collect::<Vec<_>>());
    }

    #[test]
    fn out_of_range_put_is_dropped_not_applied() {
        let world = World::with_model(2, MachineModel::zero());
        let out = world.run(|ep| {
            if ep.rank() == 0 {
                expose(ep, 5, vec![0u8; 8]);
                // A valid notifying put sequences after the bad one on the
                // same stream, so waiting for it bounds the test.
                wait_notify(ep, 5, 1).unwrap();
                window_bytes(ep, 5).unwrap()
            } else {
                put(ep, 0, CTX, 5, 6, &[1u8; 8]).unwrap();
                put_notify(ep, 0, CTX, 5, 0, &[2u8; 2]).unwrap();
                put_flush(ep, 0, CTX, 5).unwrap();
                Vec::new()
            }
        });
        assert_eq!(out.results[0], vec![2, 2, 0, 0, 0, 0, 0, 0]);
    }
}
