//! Hierarchical spans on the virtual clock, and the bounded flight
//! recorder.
//!
//! A *span* brackets one phase of work on one rank — a whole coupled
//! transfer, or one of its sub-phases (inspector run, manifest settle,
//! pack, wire, stage, commit, abort).  Spans nest: each
//! [`SpanBegin`](crate::trace::TraceEvent::SpanBegin) records its parent,
//! so an exported trace reconstructs the tree `transfer > {inspect,
//! manifest, pack, wire, stage, commit/abort}` with virtual-time
//! durations.  Span IDs are unique within a rank and stable across runs
//! (they are allocated in program order on a deterministic simulation).
//!
//! Two recording sinks exist per endpoint:
//!
//! * the **full timeline** (`Vec<TraceEvent>`), only allocated when
//!   tracing is enabled (`Endpoint::enable_trace` /
//!   [`World::with_trace`](crate::world::World::with_trace)) — the
//!   zero-cost-when-disabled guard for the executor hot path;
//! * the **flight recorder**: a bounded ring of the last
//!   [`FLIGHT_RING_CAP`] events, always on.  Its per-event cost is one
//!   bounded `VecDeque` push — noise next to any modeled message — and it
//!   is what turns an abort (`StaleSchedule`, `ScheduleMismatch`,
//!   `PeerTimeout`, …) into a post-mortem instead of a bare error code
//!   (see `meta_chaos::obs`).

use std::collections::VecDeque;

use crate::trace::TraceEvent;

/// How many events the per-rank flight recorder retains by default.
/// Large worlds shrink it (see [`FlightRing::set_cap`]) so aggregate
/// post-mortem memory stays bounded as P grows.
pub const FLIGHT_RING_CAP: usize = 64;

/// Identifier of one span, unique within its rank's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// The phase of work a span brackets.  The hierarchy the instrumentation
/// produces is `Transfer > {Inspect, Manifest, Pack, Wire, Stage,
/// Commit, Abort}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// One whole data move (raw or transactional), end to end.
    Transfer,
    /// Inspector run: schedule construction (or cache probe).
    Inspect,
    /// Transactional settle: manifest exchange and verdicts.
    Manifest,
    /// Gathering source elements into contiguous wire buffers.
    Pack,
    /// Time on the wire: reliable sends and their flush.
    Wire,
    /// Receive side buffering data halves before the commit decision.
    Stage,
    /// All-or-nothing application of staged halves to the destination.
    Commit,
    /// Abort processing after a failed transfer.
    Abort,
}

impl Phase {
    /// Stable lower-case name used by exporters and metric names.
    pub fn as_str(&self) -> &'static str {
        match self {
            Phase::Transfer => "transfer",
            Phase::Inspect => "inspect",
            Phase::Manifest => "manifest",
            Phase::Pack => "pack",
            Phase::Wire => "wire",
            Phase::Stage => "stage",
            Phase::Commit => "commit",
            Phase::Abort => "abort",
        }
    }

    /// All phases, in hierarchy order (parent first).
    pub fn all() -> [Phase; 8] {
        [
            Phase::Transfer,
            Phase::Inspect,
            Phase::Manifest,
            Phase::Pack,
            Phase::Wire,
            Phase::Stage,
            Phase::Commit,
            Phase::Abort,
        ]
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Bounded ring of the most recent trace events (the flight recorder).
///
/// The backing storage is allocated lazily on the first push — a world
/// of 1024 idle ranks pays nothing for its recorders — and sized exactly
/// to the cap, which large worlds shrink (see
/// [`crate::endpoint::Endpoint`] construction) to keep aggregate
/// post-mortem memory O(P · small constant).
#[derive(Debug)]
pub struct FlightRing {
    ring: VecDeque<TraceEvent>,
    cap: usize,
}

impl Default for FlightRing {
    fn default() -> Self {
        FlightRing {
            ring: VecDeque::new(),
            cap: FLIGHT_RING_CAP,
        }
    }
}

impl FlightRing {
    /// Shrink (or grow) the retention cap.  Existing overflow is evicted
    /// oldest-first.
    pub fn set_cap(&mut self, cap: usize) {
        assert!(cap > 0, "flight recorder needs at least one slot");
        while self.ring.len() > cap {
            self.ring.pop_front();
        }
        self.cap = cap;
    }

    /// The retention cap in effect.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Record one event, evicting the oldest when full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.ring.capacity() == 0 {
            // Lazy, exact-size allocation on first use.
            self.ring.reserve_exact(self.cap);
        }
        if self.ring.len() >= self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(ev);
    }

    /// Events currently retained, oldest first (non-destructive).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.ring.iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

/// Per-endpoint observability state: span bookkeeping plus both sinks.
#[derive(Debug, Default)]
pub(crate) struct ObsState {
    /// Full timeline; `Some` only while tracing is enabled.
    pub(crate) events: Option<Vec<TraceEvent>>,
    /// Always-on bounded ring for post-mortems.
    pub(crate) flight: FlightRing,
    /// Stack of open spans (innermost last) — parents for new spans.
    pub(crate) stack: Vec<SpanId>,
    next_id: u64,
}

impl ObsState {
    /// Record an event into the ring and (when tracing) the timeline.
    pub(crate) fn push(&mut self, ev: TraceEvent) {
        if let Some(v) = &mut self.events {
            v.push(ev.clone());
        }
        self.flight.push(ev);
    }

    /// Allocate the next span id (unique within the rank).
    pub(crate) fn alloc_id(&mut self) -> SpanId {
        self.next_id += 1;
        SpanId(self.next_id)
    }

    /// The innermost open span, if any.
    pub(crate) fn parent(&self) -> Option<SpanId> {
        self.stack.last().copied()
    }
}

/// A span reconstructed by pairing `SpanBegin`/`SpanEnd` events; see
/// [`pair_spans`].
#[derive(Debug, Clone, PartialEq)]
pub struct PairedSpan {
    /// The span's id.
    pub id: SpanId,
    /// Its parent span, if it was nested.
    pub parent: Option<SpanId>,
    /// The phase it bracketed.
    pub phase: Phase,
    /// Free-form provenance (`seq=3 strategy=coop cache=miss …`).
    pub detail: String,
    /// Virtual begin time.
    pub begin: f64,
    /// Virtual end time (`begin` for a span never closed, e.g. after a
    /// crash mid-phase).
    pub end: f64,
}

impl PairedSpan {
    /// Virtual-time duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.begin
    }
}

/// Reconstruct spans from one rank's timeline, in begin order.  Spans
/// left open (no `SpanEnd`, e.g. the rank crashed mid-phase) get
/// `end == begin`.
pub fn pair_spans(events: &[TraceEvent]) -> Vec<PairedSpan> {
    let mut spans: Vec<PairedSpan> = Vec::new();
    let mut open: std::collections::HashMap<SpanId, usize> = std::collections::HashMap::new();
    for ev in events {
        match ev {
            TraceEvent::SpanBegin {
                at,
                id,
                parent,
                phase,
                detail,
            } => {
                open.insert(*id, spans.len());
                spans.push(PairedSpan {
                    id: *id,
                    parent: *parent,
                    phase: *phase,
                    detail: detail.clone(),
                    begin: *at,
                    end: *at,
                });
            }
            TraceEvent::SpanEnd { at, id } => {
                if let Some(&idx) = open.get(id) {
                    spans[idx].end = *at;
                    open.remove(id);
                }
            }
            _ => {}
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn begin(at: f64, id: u64, parent: Option<u64>, phase: Phase) -> TraceEvent {
        TraceEvent::SpanBegin {
            at,
            id: SpanId(id),
            parent: parent.map(SpanId),
            phase,
            detail: String::new(),
        }
    }

    #[test]
    fn ring_is_bounded_and_keeps_latest() {
        let mut r = FlightRing::default();
        for i in 0..(FLIGHT_RING_CAP + 10) {
            r.push(TraceEvent::Mark {
                at: i as f64,
                label: format!("m{i}"),
            });
        }
        assert_eq!(r.len(), FLIGHT_RING_CAP);
        let snap = r.snapshot();
        assert_eq!(snap[0].at(), 10.0);
        assert_eq!(snap.last().unwrap().at(), (FLIGHT_RING_CAP + 9) as f64);
    }

    #[test]
    fn pairing_reconstructs_nesting_and_durations() {
        let events = vec![
            begin(1.0, 1, None, Phase::Transfer),
            begin(1.5, 2, Some(1), Phase::Pack),
            TraceEvent::SpanEnd {
                at: 2.0,
                id: SpanId(2),
            },
            begin(2.0, 3, Some(1), Phase::Wire),
            TraceEvent::SpanEnd {
                at: 3.5,
                id: SpanId(3),
            },
            TraceEvent::SpanEnd {
                at: 4.0,
                id: SpanId(1),
            },
        ];
        let spans = pair_spans(&events);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].phase, Phase::Transfer);
        assert_eq!(spans[0].duration(), 3.0);
        assert_eq!(spans[1].parent, Some(SpanId(1)));
        assert_eq!(spans[1].duration(), 0.5);
        assert_eq!(spans[2].phase, Phase::Wire);
    }

    #[test]
    fn unclosed_spans_get_zero_duration() {
        let events = vec![begin(7.0, 1, None, Phase::Stage)];
        let spans = pair_spans(&events);
        assert_eq!(spans[0].duration(), 0.0);
        assert_eq!(spans[0].begin, 7.0);
    }
}
